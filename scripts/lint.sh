#!/usr/bin/env bash
# Repo lint driver: custom repo rules and the hot-path contract analyzer
# (always; both are dependency-free Python), clang-format and clang-tidy
# (when the tools are installed — CI installs them; local runs degrade
# gracefully). Exits non-zero on any finding.
#
# Usage: scripts/lint.sh [--no-tidy]
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

echo "== repo rules (scripts/repo_lint.py) =="
python3 scripts/repo_lint.py || fail=1

echo "== hot-path contracts (scripts/hotpath_check.py) =="
python3 scripts/hotpath_check.py || fail=1

if command -v clang-format >/dev/null 2>&1; then
  echo "== clang-format (dry run) =="
  mapfile -t cxx_files < <(git ls-files 'src/**/*.cc' 'src/**/*.h' \
      'tools/*.cc' 'bench/*.cc' 'bench/*.h' 'tests/*.cc' 'examples/*.cc')
  if ! clang-format --dry-run -Werror "${cxx_files[@]}"; then
    fail=1
  fi
else
  echo "clang-format not found; skipping format check"
fi

run_tidy=1
for arg in "$@"; do
  [[ "${arg}" == "--no-tidy" ]] && run_tidy=0
done

if [[ ${run_tidy} -eq 1 ]] && command -v clang-tidy >/dev/null 2>&1; then
  echo "== clang-tidy (cached) =="
  tidy_build=build-tidy
  cmake -B "${tidy_build}" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
      -DKGE_BUILD_BENCHMARKS=OFF -DKGE_BUILD_EXAMPLES=OFF > /dev/null
  if ! python3 scripts/run_clang_tidy.py -p "${tidy_build}"; then
    fail=1
  fi
elif [[ ${run_tidy} -eq 1 ]]; then
  echo "clang-tidy not found; skipping (CI runs it)"
fi

if [[ ${fail} -ne 0 ]]; then
  echo "LINT FAILED"
  exit 1
fi
echo "LINT OK"
