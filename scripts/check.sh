#!/usr/bin/env bash
# Full verification sweep: lint, configure, build, run the test suite, and
# smoke-run every bench and example at tiny scale. This is the command a
# CI job would run.
#
# Environment knobs:
#   CMAKE_BUILD_TYPE   build type (default Release), propagated to CMake so
#                      sanitizer builds can reuse this script, e.g.
#                      CMAKE_BUILD_TYPE=RelWithDebInfo KGE_SANITIZE=thread \
#                        BUILD_DIR=build-tsan scripts/check.sh
#   KGE_SANITIZE       sanitizer list passed to -DKGE_SANITIZE (default none)
#   KGE_FAILPOINTS     "ON" compiles in the fault-injection failpoints
#                      (-DKGE_FAILPOINTS=ON), which un-skips the crash-site
#                      test matrix and runs the kill-and-resume smoke
#   BUILD_DIR          build directory (default "build")
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"

# Consume the failpoints knob and drop it from the environment: the
# same variable name doubles as the runtime site-arming spec, and the
# armed binaries would otherwise warn about the malformed value "ON".
FAILPOINTS="${KGE_FAILPOINTS:-}"
unset KGE_FAILPOINTS

scripts/lint.sh --no-tidy

# Prefer Ninja when installed, but fall back to CMake's default generator
# (typically Unix Makefiles) instead of hard-failing without it. Only pick a
# generator on first configure: an existing build directory keeps whatever
# generator it was created with (CMake rejects a mismatch).
generator_args=()
if [[ ! -f "${BUILD_DIR}/CMakeCache.txt" ]] \
    && command -v ninja >/dev/null 2>&1; then
  generator_args+=(-G Ninja)
fi

cmake -B "${BUILD_DIR}" "${generator_args[@]}" \
    -DCMAKE_BUILD_TYPE="${CMAKE_BUILD_TYPE:-Release}" \
    ${KGE_SANITIZE:+-DKGE_SANITIZE="${KGE_SANITIZE}"} \
    ${FAILPOINTS:+-DKGE_FAILPOINTS="${FAILPOINTS}"}
cmake --build "${BUILD_DIR}"
ctest --test-dir "${BUILD_DIR}" --output-on-failure

if [[ "${FAILPOINTS}" == "ON" ]]; then
  echo "== kill-and-resume smoke =="
  scripts/kill_resume_smoke.sh "${BUILD_DIR}"
fi

echo "== bench smoke runs (--quick) =="
"./${BUILD_DIR}/bench/table1_equivalence" --trials=20
for bench in table2_derived_weights table3_auto_weights table4_quaternion \
             ablation_negatives ablation_quaternion_order \
             ablation_regularization ablation_dim ablation_optimizer \
             ablation_leakage ablation_training_regime \
             extension_hypercomplex relation_breakdown model_zoo \
             seed_variance; do
  echo "--- ${bench} ---"
  "./${BUILD_DIR}/bench/${bench}" --quick > /dev/null
done
"./${BUILD_DIR}/bench/micro_score" --benchmark_min_time=0.01 > /dev/null
"./${BUILD_DIR}/bench/micro_train" --benchmark_min_time=0.01 > /dev/null

echo "== example smoke runs =="
"./${BUILD_DIR}/examples/quickstart" > /dev/null
"./${BUILD_DIR}/examples/recommender" --users=60 --items=80 --epochs=20 > /dev/null
"./${BUILD_DIR}/examples/embedding_analysis" --entities=300 --epochs=30 > /dev/null
"./${BUILD_DIR}/examples/weight_search" --candidates=200 --train-top=1 \
    --entities=200 --epochs=20 > /dev/null
"./${BUILD_DIR}/examples/cph_two_ways" --entities=200 --epochs=30 > /dev/null

echo "== tool smoke runs =="
"./${BUILD_DIR}/tools/kge_datagen" --family=wordnet --entities=300 > /dev/null
"./${BUILD_DIR}/tools/kge_train" --model=complex --entities=300 --dim-budget=32 \
    --max-epochs=20 --checkpoint=/tmp/kge_check.ckpt > /dev/null
"./${BUILD_DIR}/tools/kge_eval" --model=complex --entities=300 --dim-budget=32 \
    --checkpoint=/tmp/kge_check.ckpt > /dev/null
rm -f /tmp/kge_check.ckpt

echo "ALL CHECKS PASSED"
