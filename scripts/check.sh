#!/usr/bin/env bash
# Full verification sweep: configure, build, run the test suite, and
# smoke-run every bench and example at tiny scale. This is the command a
# CI job would run.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

echo "== bench smoke runs (--quick) =="
./build/bench/table1_equivalence --trials=20
for bench in table2_derived_weights table3_auto_weights table4_quaternion \
             ablation_negatives ablation_quaternion_order \
             ablation_regularization ablation_dim ablation_optimizer \
             ablation_leakage ablation_training_regime \
             extension_hypercomplex relation_breakdown model_zoo \
             seed_variance; do
  echo "--- ${bench} ---"
  "./build/bench/${bench}" --quick > /dev/null
done
./build/bench/micro_score --benchmark_min_time=0.01 > /dev/null
./build/bench/micro_train --benchmark_min_time=0.01 > /dev/null

echo "== example smoke runs =="
./build/examples/quickstart > /dev/null
./build/examples/recommender --users=60 --items=80 --epochs=20 > /dev/null
./build/examples/embedding_analysis --entities=300 --epochs=30 > /dev/null
./build/examples/weight_search --candidates=200 --train-top=1 \
    --entities=200 --epochs=20 > /dev/null
./build/examples/cph_two_ways --entities=200 --epochs=30 > /dev/null

echo "== tool smoke runs =="
./build/tools/kge_datagen --family=wordnet --entities=300 > /dev/null
./build/tools/kge_train --model=complex --entities=300 --dim-budget=32 \
    --max-epochs=20 --checkpoint=/tmp/kge_check.ckpt > /dev/null
./build/tools/kge_eval --model=complex --entities=300 --dim-budget=32 \
    --checkpoint=/tmp/kge_check.ckpt > /dev/null
rm -f /tmp/kge_check.ckpt

echo "ALL CHECKS PASSED"
