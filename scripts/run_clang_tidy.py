#!/usr/bin/env python3
"""Cached clang-tidy runner (driven by scripts/lint.sh and CI).

Runs clang-tidy over every TU in compile_commands.json, skipping files
whose previous run was clean and whose inputs are unchanged. The cache
key for a TU is the SHA-256 of

  * the .clang-tidy config,
  * the TU's compile command (flags, defines, include dirs),
  * the TU's own content,
  * the content of every repo header (src/tools/bench) — headers are
    shared inputs, so a header edit invalidates every TU, which is
    exactly the conservative behavior a gate needs,
  * the clang-tidy version string.

Only CLEAN results are cached: a TU with findings is always re-run, so
fix-then-rerun loops behave as expected. The cache directory defaults to
.cache/clang-tidy/ (gitignored); CI persists it via actions/cache keyed
on the same inputs.

Exit status: 0 clean, 1 findings, 2 infrastructure error.

Usage:
  scripts/run_clang_tidy.py -p build           # all src/ TUs
  scripts/run_clang_tidy.py -p build src/math  # filter by path prefix
  scripts/run_clang_tidy.py -p build -j 8 --cache-dir /tmp/tidy-cache
"""

import argparse
import concurrent.futures
import hashlib
import json
import os
import shutil
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
HEADER_DIRS = ("src", "tools", "bench")


def sha256_file(path, chunk=1 << 16):
    h = hashlib.sha256()
    with open(path, "rb") as f:
        while True:
            block = f.read(chunk)
            if not block:
                break
            h.update(block)
    return h.hexdigest()


def repo_headers_digest():
    """One digest over every repo header, in sorted path order."""
    h = hashlib.sha256()
    for d in HEADER_DIRS:
        base = os.path.join(REPO_ROOT, d)
        for dirpath, _, names in sorted(os.walk(base)):
            for name in sorted(names):
                if name.endswith(".h"):
                    path = os.path.join(dirpath, name)
                    h.update(os.path.relpath(path, REPO_ROOT).encode())
                    h.update(sha256_file(path).encode())
    return h.hexdigest()


def main():
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("prefixes", nargs="*",
                    help="only TUs whose repo-relative path starts with one "
                         "of these (default: all src/ TUs)")
    ap.add_argument("-p", "--build-dir", default="build")
    ap.add_argument("-j", "--jobs", type=int, default=os.cpu_count() or 2)
    ap.add_argument("--cache-dir",
                    default=os.path.join(REPO_ROOT, ".cache", "clang-tidy"))
    ap.add_argument("--clang-tidy", default="clang-tidy")
    args = ap.parse_args()

    tidy = shutil.which(args.clang_tidy)
    if tidy is None:
        sys.stderr.write(f"run_clang_tidy: {args.clang_tidy} not found\n")
        return 2

    build_dir = args.build_dir
    if not os.path.isabs(build_dir):
        build_dir = os.path.join(REPO_ROOT, build_dir)
    cc_path = os.path.join(build_dir, "compile_commands.json")
    try:
        with open(cc_path, encoding="utf-8") as f:
            entries = json.load(f)
    except OSError as e:
        sys.stderr.write(f"run_clang_tidy: cannot read {cc_path}: {e}\n"
                         "(configure with CMAKE_EXPORT_COMPILE_COMMANDS=ON)\n")
        return 2

    version = subprocess.run([tidy, "--version"], capture_output=True,
                             text=True).stdout.strip()
    config_path = os.path.join(REPO_ROOT, ".clang-tidy")
    config_digest = sha256_file(config_path)
    headers_digest = repo_headers_digest()

    os.makedirs(args.cache_dir, exist_ok=True)

    jobs = []
    seen = set()
    for entry in entries:
        src = os.path.normpath(os.path.join(entry["directory"],
                                            entry["file"]))
        rel = os.path.relpath(src, REPO_ROOT)
        if not rel.startswith("src" + os.sep) or src in seen:
            continue
        if args.prefixes and not any(rel.startswith(p.rstrip("/"))
                                     for p in args.prefixes):
            continue
        seen.add(src)
        command = entry.get("command") or " ".join(entry.get("arguments", []))
        key = hashlib.sha256("\n".join([
            version, config_digest, headers_digest, rel, command,
            sha256_file(src),
        ]).encode()).hexdigest()
        jobs.append((src, rel, key))

    if not jobs:
        sys.stderr.write("run_clang_tidy: no TUs matched\n")
        return 0

    def run_one(job):
        src, rel, key = job
        marker = os.path.join(args.cache_dir, key)
        if os.path.exists(marker):
            return rel, True, 0, ""
        proc = subprocess.run(
            [tidy, "-p", build_dir, "--quiet", src],
            capture_output=True, text=True)
        # Cache only clean runs; findings must re-run until fixed.
        if proc.returncode == 0 and "warning:" not in proc.stdout \
                and "error:" not in proc.stdout:
            with open(marker, "w", encoding="utf-8") as f:
                f.write(rel + "\n")
            return rel, False, 0, ""
        return rel, False, proc.returncode or 1, proc.stdout + proc.stderr

    failed = []
    cached = 0
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        for rel, was_cached, rc, output in pool.map(run_one, jobs):
            if was_cached:
                cached += 1
            elif rc != 0:
                failed.append(rel)
                sys.stdout.write(output)
    sys.stderr.write(
        f"run_clang_tidy: {len(jobs)} TU(s), {cached} cached, "
        f"{len(failed)} with findings: "
        f"{'FAILED' if failed else 'OK'}\n")
    for rel in failed:
        sys.stderr.write(f"  finding(s) in {rel}\n")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
