#!/usr/bin/env python3
"""Static hot-path contract analyzer (driven by scripts/lint.sh and CI).

Verifies the KGE_HOT_NOALLOC contract (src/util/hotpath.h): starting from
every annotated hot-path root, the transitive call graph must not reach

  * an allocation          operator new/delete, malloc-family calls,
                           allocating STL container methods (push_back,
                           resize, insert, ...), container constructions,
                           make_unique/make_shared, std::function,
                           KGE_LOG (each line builds an ostringstream);
  * a throwing construct   `throw`, std::*::at();
  * a nondeterminism source clocks (time/clock_gettime/::now), rand,
                           std::random_device, getenv, or any use of an
                           unordered container (iteration order varies
                           across libraries and runs).

Roots are marked with the KGE_HOT_NOALLOC macro. A root that is a class
method propagates to every same-named method in the tree, so overrides of
an annotated virtual (e.g. a new model's ScoreAllTails) are checked
automatically without annotating them.

Escape hatch, mirroring repo_lint: a finding is suppressed by a trailing
comment on the offending line or the line immediately above it:

    buf.resize(n);  // kge-hotpath: allow(cold-start high-water growth)

Suppressions must carry a reason and are counted in the report so the
allowlist stays auditable.

Frontends
---------
  textual (default)  A self-contained lexer over the sources: tracks
                     namespace/class scopes, function definitions and
                     declarations, call sites, constructor calls, and the
                     banned constructs above. Needs no compiler, so it
                     runs identically on every machine and is the CI
                     gate. Virtual calls are over-approximated by method
                     name (a member call x->F() edges to every definition
                     of F), which is exactly the conservatism the
                     contract wants.
  clang              Parses `clang++ -Xclang -ast-dump=json` output for
                     every TU in compile_commands.json and builds the
                     graph from real AST call/new/throw nodes. Higher
                     precision (no false edges from name collisions) but
                     requires clang and is slow on large TUs; CI runs it
                     as a cross-check when clang is installed. Roots are
                     still located by the annotation macro in the source
                     text, so both frontends agree on the root set.

Exit status: 0 clean, 1 findings, 2 usage/infrastructure error.

Usage:
  scripts/hotpath_check.py                         # analyze src/ (textual)
  scripts/hotpath_check.py --report graph.json     # + machine-readable report
  scripts/hotpath_check.py --frontend=clang -p build
  scripts/hotpath_check.py fixture.cc [...]        # explicit file list
  scripts/hotpath_check.py --list-roots            # debug: print root set
"""

import argparse
import json
import os
import re
import shutil
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

ANNOTATION = "KGE_HOT_NOALLOC"
ALLOW_RE = re.compile(r"//\s*kge-hotpath:\s*allow\(([^)]+)\)")

# ---------------------------------------------------------------------------
# Banned / safe construct tables (shared by both frontends)
# ---------------------------------------------------------------------------

# Free calls that allocate.
BAD_ALLOC_CALLS = {
    "malloc", "calloc", "realloc", "free", "aligned_alloc", "posix_memalign",
    "strdup", "strndup",
    "make_unique", "make_shared", "make_pair",  # make_pair of owning types
    "to_string", "stoi", "stol", "stod", "stof",
    "stable_sort", "stable_partition", "inplace_merge",
    # Constructor calls of allocating types (detected as `Type name(...)`).
    "vector", "string", "basic_string", "deque", "list", "map", "set",
    "multimap", "multiset", "unordered_map", "unordered_set",
    "unordered_multimap", "unordered_multiset", "function",
    "stringstream", "ostringstream", "istringstream",
}
# make_pair of trivial types does not allocate, but it never appears on a
# hot path here; keeping it banned is cheap and conservative.

# Member calls that (may) allocate.
BAD_ALLOC_MEMBERS = {
    "push_back", "emplace_back", "push_front", "emplace_front",
    "resize", "reserve", "insert", "emplace", "try_emplace",
    "insert_or_assign", "assign", "append", "substr", "str",
    "shrink_to_fit", "push", "pop",
}

# Macros that expand to allocating code.
BAD_MACROS = {
    "KGE_LOG": ("alloc", "KGE_LOG builds an ostringstream per line"),
}

# Nondeterminism sources (free or member calls).
BAD_NONDET_CALLS = {
    "time", "clock", "clock_gettime", "gettimeofday", "now",
    "rand", "srand", "random", "random_device", "getenv",
    "system_clock", "steady_clock", "high_resolution_clock",
}

# Unordered-container identifiers: any appearance inside a hot function is
# flagged (iteration order is the hazard and is invisible syntactically).
BAD_NONDET_TYPES = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset",
}

# Throwing constructs beyond the `throw` keyword itself.
BAD_THROW_MEMBERS = {"at"}

# Lowercase std-style names never resolved against repo functions: the
# repo's own functions are CamelCase, so skipping these avoids bogus edges
# from e.g. `.size()` into an unrelated `size` while losing nothing.
SAFE_CALLS = {
    "size", "data", "begin", "end", "cbegin", "cend", "rbegin", "rend",
    "empty", "front", "back", "first", "last", "subspan", "span", "get",
    "clear", "find", "contains", "count", "value", "has_value", "length",
    "min", "max", "abs", "fabs", "sqrt", "cbrt", "exp", "log", "log2",
    "log1p", "expm1", "pow", "fmod", "fma", "floor", "ceil", "round",
    "trunc", "lround", "copysign", "isnan", "isinf", "isfinite", "signbit",
    "tanh", "sinh", "cosh", "sin", "cos", "tan", "atan", "atan2", "asin",
    "acos", "clamp", "swap", "move", "forward", "exchange", "as_const",
    "fill", "fill_n", "copy", "copy_n", "transform", "accumulate",
    "inner_product", "iota", "sort", "partial_sort", "nth_element",
    "binary_search", "lower_bound", "upper_bound", "equal_range", "unique",
    "distance", "advance", "next", "prev", "all_of", "any_of", "none_of",
    "memcpy", "memmove", "memset", "memcmp", "strlen", "strcmp", "strncmp",
    "load", "store", "fetch_add", "fetch_sub", "compare_exchange_weak",
    "compare_exchange_strong", "test_and_set", "notify_one", "notify_all",
    "numeric_limits", "declval", "tie", "tuple_size", "index",
}

KEYWORDS = {
    "if", "else", "for", "while", "do", "switch", "case", "default",
    "break", "continue", "return", "goto", "sizeof", "alignof", "alignas",
    "new", "delete", "throw", "try", "catch", "static_assert", "decltype",
    "typeid", "noexcept", "asm", "using", "typedef", "template", "typename",
    "class", "struct", "enum", "union", "namespace", "public", "private",
    "protected", "virtual", "override", "final", "const", "constexpr",
    "consteval", "constinit", "static", "inline", "extern", "friend",
    "explicit", "operator", "this", "nullptr", "true", "false", "auto",
    "void", "bool", "char", "int", "short", "long", "float", "double",
    "unsigned", "signed", "mutable", "volatile", "register", "thread_local",
    "static_cast", "dynamic_cast", "const_cast", "reinterpret_cast",
    "co_await", "co_return", "co_yield", "requires", "concept", "and",
    "or", "not", "xor", "compl", "bitand", "bitor",
}

ALL_CAPS_RE = re.compile(r"^[A-Z][A-Z0-9_]*$")
IDENT_RE = re.compile(r"[A-Za-z_]\w*")


# ---------------------------------------------------------------------------
# Shared model
# ---------------------------------------------------------------------------

class Event:
    __slots__ = ("kind", "detail", "line", "allow")

    def __init__(self, kind, detail, line, allow):
        self.kind = kind        # "alloc" | "throw" | "nondet"
        self.detail = detail
        self.line = line
        self.allow = allow      # suppression reason or None


class Call:
    __slots__ = ("name", "qual", "line", "is_member")

    def __init__(self, name, qual, line, is_member):
        self.name = name        # last component
        self.qual = qual        # tuple of qualifier components (may be empty)
        self.line = line
        self.is_member = is_member


class Function:
    __slots__ = ("qname", "file", "line", "is_root", "is_method", "calls",
                 "events")

    def __init__(self, qname, file, line, is_method):
        self.qname = qname
        self.file = file
        self.line = line
        self.is_root = False
        self.is_method = is_method
        self.calls = []
        self.events = []

    @property
    def last(self):
        return self.qname.rsplit("::", 1)[-1]


# ---------------------------------------------------------------------------
# Textual frontend
# ---------------------------------------------------------------------------

# Multi-character punctuation we must keep intact for parsing.
_PUNCT2 = {"::", "->", "<<", ">>", "==", "!=", "<=", ">=", "&&", "||",
           "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--"}

_TOKEN_RE = re.compile(
    r"[A-Za-z_]\w*"                     # identifier
    r"|\d[\w.+-]*"                      # number (incl. 1e-3, 0x1f)
    r"|::|->|<<|>>|==|!=|<=|>=|&&|\|\||\+=|-=|\*=|/=|%=|&=|\|=|\^=|\+\+|--"
    r"|[{}()\[\];,:<>=!&|^~*/+\-.%?]")


def _strip_comments_strings(text, allows):
    """Returns `text` with comments, string and char literals blanked
    (newlines preserved), recording `// kge-hotpath: allow(...)` reasons
    into `allows` keyed by 1-based line number."""
    out = []
    i, n = 0, len(text)
    line = 1
    state = None  # None | "line" | "block" | '"' | "'" | "raw"
    raw_delim = ""
    while i < n:
        c = text[i]
        if c == "\n":
            if state == "line":
                state = None
            out.append("\n")
            line += 1
            i += 1
            continue
        if state == "line":
            i += 1
            continue
        if state == "block":
            if c == "*" and i + 1 < n and text[i + 1] == "/":
                state = None
                i += 2
            else:
                i += 1
            continue
        if state in ('"', "'"):
            if c == "\\":
                i += 2
                continue
            if c == state:
                state = None
            i += 1
            continue
        if state == "raw":
            end = ')' + raw_delim + '"'
            if text.startswith(end, i):
                state = None
                i += len(end)
            else:
                if c == "\n":
                    line += 1
                    out.append("\n")
                i += 1
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            m = ALLOW_RE.match(text[i:text.find("\n", i) if
                               text.find("\n", i) >= 0 else n])
            if m:
                allows[line] = m.group(1).strip()
            state = "line"
            i += 2
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "*":
            state = "block"
            i += 2
            continue
        if c == 'R' and text.startswith('R"', i):
            m = re.match(r'R"([^(\s"\\]{0,16})\(', text[i:])
            if m:
                raw_delim = m.group(1)
                state = "raw"
                i += len(m.group(0))
                continue
        if c in "\"'":
            state = c
            out.append(" ")
            i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


def _strip_preprocessor(text):
    """Blanks preprocessor directives (including backslash continuations),
    preserving line structure."""
    lines = text.split("\n")
    i = 0
    while i < len(lines):
        stripped = lines[i].lstrip()
        if stripped.startswith("#"):
            while lines[i].rstrip().endswith("\\") and i + 1 < len(lines):
                lines[i] = ""
                i += 1
            lines[i] = ""
        i += 1
    return "\n".join(lines)


def _tokenize(text):
    """Yields (value, line) tokens."""
    tokens = []
    line = 1
    pos = 0
    for m in _TOKEN_RE.finditer(text):
        line += text.count("\n", pos, m.start())
        pos = m.start()
        tokens.append((m.group(0), line))
    return tokens


class _TextualParser:
    """Parses one file into Function records."""

    def __init__(self, path, rel, class_names):
        self.path = path
        self.rel = rel
        self.functions = []
        self.declared_roots = []   # qualified names annotated on decls
        self.class_names = class_names
        self.allows = {}

    def parse(self):
        with open(self.path, encoding="utf-8") as f:
            text = f.read()
        text = _strip_comments_strings(text, self.allows)
        text = _strip_preprocessor(text)
        toks = _tokenize(text)
        self._parse_scope(toks, 0, len(toks), [])
        return self

    # -- scope / statement structure ---------------------------------------

    def _match_brace(self, toks, i, end):
        """toks[i] == '{'; returns index just past the matching '}'."""
        depth = 0
        while i < end:
            v = toks[i][0]
            if v == "{":
                depth += 1
            elif v == "}":
                depth -= 1
                if depth == 0:
                    return i + 1
            i += 1
        return end

    def _parse_scope(self, toks, i, end, scopes):
        pending = []  # (value, line) of current statement head
        while i < end:
            v, line = toks[i]
            if v == ";":
                self._finish_declaration(pending, scopes)
                pending = []
                i += 1
            elif v == "}":
                return i + 1
            elif v == "{":
                i = self._dispatch_brace(toks, i, end, pending, scopes)
                pending = []
            else:
                # Access specifiers at class scope end with ':' — drop them
                # so they never pollute the statement head.
                if (v in ("public", "private", "protected") and i + 1 < end
                        and toks[i + 1][0] == ":"):
                    i += 2
                    continue
                pending.append((v, line))
                i += 1
        self._finish_declaration(pending, scopes)
        return end

    def _dispatch_brace(self, toks, i, end, pending, scopes):
        vals = [p[0] for p in pending]
        if "namespace" in vals:
            k = vals.index("namespace")
            name_parts = []
            for v in vals[k + 1:]:
                if v == "::" or IDENT_RE.fullmatch(v):
                    if v != "::":
                        name_parts.append(v)
                else:
                    break
            name = "::".join(name_parts)  # "" for anonymous namespaces
            close = self._match_brace(toks, i, end)
            self._parse_scope(toks, i + 1, close - 1,
                              scopes + ([("namespace", name)] if name
                                        else []))
            return close
        if self._is_function_header(vals):
            fn = self._begin_function(pending, scopes)
            close = self._match_brace(toks, i, end)
            self._scan_body(toks, i + 1, close - 1, fn)
            self.functions.append(fn)
            return close
        for key in ("class", "struct", "union"):
            if key in vals:
                k = vals.index(key)
                name = None
                for v in vals[k + 1:]:
                    if IDENT_RE.fullmatch(v) and v not in ("final",
                                                           "alignas"):
                        name = v
                        break
                close = self._match_brace(toks, i, end)
                if name:
                    self.class_names.add(name)
                    self._parse_scope(toks, i + 1, close - 1,
                                      scopes + [("class", name)])
                return close
        # enum bodies, aggregate initializers, extern "C", unknown: skip.
        if not vals or vals == ["extern"]:
            close = self._match_brace(toks, i, end)
            self._parse_scope(toks, i + 1, close - 1, scopes)
            return close
        return self._match_brace(toks, i, end)

    def _is_function_header(self, vals):
        if not vals or vals[0] in ("using", "typedef", "enum"):
            return False
        try:
            k = vals.index("(")
        except ValueError:
            return False
        if k == 0:
            return False
        prev = vals[k - 1]
        if not IDENT_RE.fullmatch(prev) or prev in KEYWORDS:
            # operator overloads: `operator` + symbol tokens before '('.
            if "operator" in vals[:k]:
                return True
            return False
        # Reject control-flow-looking heads and macro invocations at scope.
        if prev in ("if", "for", "while", "switch", "catch"):
            return False
        return True

    def _header_name(self, vals):
        """Qualified-name chain of the function named in a header/decl."""
        k = vals.index("(")
        if (not IDENT_RE.fullmatch(vals[k - 1]) or vals[k - 1] in KEYWORDS) \
                and "operator" in vals[:k]:
            # operator<<, operator(), operator[] ...
            j = vals.index("operator")
            name = "operator" + "".join(vals[j + 1:k])
            chain = [name]
            j -= 1
        else:
            chain = [vals[k - 1]]
            j = k - 2
        while j >= 1 and vals[j] == "::" and IDENT_RE.fullmatch(vals[j - 1]):
            chain.insert(0, vals[j - 1])
            j -= 2
        return chain

    def _qualify(self, chain, scopes):
        parts = [name for _, name in scopes if name]
        return "::".join(parts + chain)

    def _begin_function(self, pending, scopes):
        vals = [p[0] for p in pending]
        chain = self._header_name(vals)
        qname = self._qualify(chain, scopes)
        is_method = (any(kind == "class" for kind, _ in scopes)
                     or len(chain) > 1 and chain[-2] in self.class_names)
        fn = Function(qname, self.rel, pending[0][1], is_method)
        if ANNOTATION in vals:
            fn.is_root = True
        # Unordered containers in the signature matter too: iterating an
        # unordered parameter is the classic nondeterminism hazard.
        for v, line in pending:
            if v in BAD_NONDET_TYPES:
                fn.events.append(Event(
                    "nondet", f"{v} (unordered iteration order)", line,
                    self._allow_for(line)))
        return fn

    def _finish_declaration(self, pending, scopes):
        """A statement ending in ';' — record annotated declarations as
        roots (the definition may live in another file)."""
        vals = [p[0] for p in pending]
        if ANNOTATION not in vals or not self._is_function_header(vals):
            return
        chain = self._header_name(vals)
        qname = self._qualify(chain, scopes)
        is_method = (any(kind == "class" for kind, _ in scopes)
                     or len(chain) > 1 and chain[-2] in self.class_names)
        self.declared_roots.append((qname, is_method))

    # -- body scanning ------------------------------------------------------

    def _allow_for(self, line):
        return self.allows.get(line) or self.allows.get(line - 1)

    def _scan_body(self, toks, i, end, fn):
        while i < end:
            v, line = toks[i]
            if v == "new":
                fn.events.append(Event("alloc", "operator new", line,
                                       self._allow_for(line)))
                i += 1
                continue
            if v == "delete":
                fn.events.append(Event("alloc", "operator delete", line,
                                       self._allow_for(line)))
                i += 1
                continue
            if v == "throw":
                fn.events.append(Event("throw", "throw expression", line,
                                       self._allow_for(line)))
                i += 1
                continue
            if v in BAD_NONDET_TYPES:
                fn.events.append(Event(
                    "nondet", f"{v} (unordered iteration order)", line,
                    self._allow_for(line)))
                i += 1
                continue
            if not IDENT_RE.fullmatch(v) or v in KEYWORDS:
                i += 1
                continue
            # Identifier: is it called? Allow `Name(`, `Name<...>(`.
            j = i + 1
            if j < end and toks[j][0] == "<":
                j2 = self._match_angles(toks, j, end)
                if j2 is not None and j2 < end and toks[j2][0] == "(":
                    j = j2
            if j >= end or toks[j][0] != "(":
                i += 1
                continue
            self._record_call(toks, i, fn, line)
            i += 1

    def _match_angles(self, toks, i, end):
        """toks[i] == '<'; best-effort balanced match. Returns index past
        matching '>' or None if this is not a template argument list."""
        depth = 0
        steps = 0
        while i < end and steps < 64:
            v = toks[i][0]
            if v == "<":
                depth += 1
            elif v == ">":
                depth -= 1
                if depth == 0:
                    return i + 1
            elif v == ">>":
                depth -= 2
                if depth <= 0:
                    return i + 1
            elif v in (";", "{", "}", "&&", "||") or v in _PUNCT2 - {"::"}:
                return None
            i += 1
            steps += 1
        return None

    def _record_call(self, toks, i, fn, line):
        name = toks[i][0]
        if ALL_CAPS_RE.match(name):
            bad = BAD_MACROS.get(name)
            if bad:
                fn.events.append(Event(bad[0], bad[1] + f" ({name})", line,
                                       self._allow_for(line)))
            return
        # Preceding context.
        prev = toks[i - 1][0] if i > 0 else ""
        qual = []
        k = i
        while k >= 2 and toks[k - 1][0] == "::" and \
                IDENT_RE.fullmatch(toks[k - 2][0]):
            qual.insert(0, toks[k - 2][0])
            k -= 2
        is_member = k > 0 and toks[k - 1][0] in (".", "->")
        # `Type name(...)`: a constructor call of `Type`.
        if not qual and not is_member and i > 0 and (
                IDENT_RE.fullmatch(prev) and prev not in KEYWORDS
                or prev == ">"):
            ctor = None
            if prev == ">":
                # Scan back over template args to the template head.
                depth = 0
                k2 = i - 1
                while k2 >= 0:
                    v2 = toks[k2][0]
                    if v2 == ">":
                        depth += 1
                    elif v2 == ">>":
                        depth += 2
                    elif v2 == "<":
                        depth -= 1
                        if depth == 0:
                            if k2 >= 1 and IDENT_RE.fullmatch(toks[k2 - 1][0]):
                                ctor = toks[k2 - 1][0]
                            break
                    k2 -= 1
                    if i - k2 > 64:
                        break
            elif not ALL_CAPS_RE.match(prev):
                ctor = prev
            if ctor and ctor not in KEYWORDS:
                if ctor in BAD_ALLOC_CALLS:
                    fn.events.append(Event(
                        "alloc", f"construction of std::{ctor}", line,
                        self._allow_for(line)))
                    return
                if ctor in BAD_NONDET_CALLS:
                    fn.events.append(Event("nondet", f"{ctor}()", line,
                                           self._allow_for(line)))
                    return
                fn.calls.append(Call(ctor, (), line, False))
                # Fall through: `name` itself is a variable, not a call.
                return
        # Banned constructs.
        if is_member and name in BAD_ALLOC_MEMBERS:
            fn.events.append(Event("alloc", f".{name}()", line,
                                   self._allow_for(line)))
            return
        if is_member and name in BAD_THROW_MEMBERS:
            fn.events.append(Event("throw", f".{name}() throws on bad index",
                                   line, self._allow_for(line)))
            return
        if name in BAD_ALLOC_CALLS:
            fn.events.append(Event("alloc", f"{name}()", line,
                                   self._allow_for(line)))
            return
        if name in BAD_NONDET_CALLS:
            fn.events.append(Event("nondet", f"{name}()", line,
                                   self._allow_for(line)))
            return
        if name in SAFE_CALLS:
            return
        fn.calls.append(Call(name, tuple(qual), line, is_member))


def textual_frontend(files):
    """Parses all files; returns (functions, declared_roots, class_names)."""
    class_names = set()
    parsers = []
    # Two passes so `Class::Method` definitions in .cc files can consult
    # class names discovered in headers parsed later in the list.
    for path in files:
        rel = os.path.relpath(path, REPO_ROOT)
        parsers.append(_TextualParser(path, rel, class_names).parse())
    functions = []
    declared_roots = []
    for p in parsers:
        functions.extend(p.functions)
        declared_roots.extend(p.declared_roots)
    # Re-derive is_method for definitions whose class was parsed later.
    for fn in functions:
        if not fn.is_method:
            parts = fn.qname.split("::")
            if len(parts) >= 2 and parts[-2] in class_names:
                fn.is_method = True
    return functions, declared_roots


# ---------------------------------------------------------------------------
# Clang AST frontend
# ---------------------------------------------------------------------------

def _clang_collect_allows(path, allows_by_file):
    allows = {}
    try:
        with open(path, encoding="utf-8") as f:
            for lineno, raw in enumerate(f, 1):
                m = ALLOW_RE.search(raw)
                if m:
                    allows[lineno] = m.group(1).strip()
    except OSError:
        pass
    allows_by_file[path] = allows
    return allows


class _ClangWalker:
    """Walks one TU's -ast-dump=json tree into Function records."""

    def __init__(self, tu_file, functions):
        self.tu_file = tu_file
        self.functions = functions
        self.ctx = []            # qualified-name context
        self.cur_file = tu_file  # clang omits unchanged loc fields
        self.cur_line = 0
        self.allows_by_file = {}

    def _update_loc(self, node):
        loc = node.get("loc") or {}
        if "spellingLoc" in loc:
            loc = loc["spellingLoc"]
        if "file" in loc:
            self.cur_file = loc["file"]
        if "line" in loc:
            self.cur_line = loc["line"]

    def _allow_for(self, file, line):
        allows = self.allows_by_file.get(file)
        if allows is None:
            allows = _clang_collect_allows(file, self.allows_by_file)
        return allows.get(line) or allows.get(line - 1)

    def _in_repo(self, file):
        return os.path.abspath(file).startswith(REPO_ROOT + os.sep)

    def walk(self, node, fn=None):
        if not isinstance(node, dict):
            return
        kind = node.get("kind", "")
        self._update_loc(node)
        file, line = self.cur_file, self.cur_line

        if kind in ("NamespaceDecl", "CXXRecordDecl", "ClassTemplateDecl"):
            name = node.get("name")
            self.ctx.append(name or "")
            for child in node.get("inner", []) or []:
                self.walk(child, fn)
            self.ctx.pop()
            return

        if kind in ("FunctionDecl", "CXXMethodDecl", "CXXConstructorDecl",
                    "CXXDestructorDecl", "CXXConversionDecl",
                    "FunctionTemplateDecl"):
            has_body = any(isinstance(c, dict) and
                           c.get("kind") == "CompoundStmt"
                           for c in node.get("inner", []) or [])
            if has_body and self._in_repo(file):
                qname = "::".join([c for c in self.ctx if c] +
                                  [node.get("name", "?")])
                new_fn = Function(qname, os.path.relpath(file, REPO_ROOT),
                                  line, kind != "FunctionDecl")
                self.functions.append(new_fn)
                for child in node.get("inner", []) or []:
                    self.walk(child, new_fn)
            else:
                for child in node.get("inner", []) or []:
                    self.walk(child, fn)
            return

        if fn is not None and self._in_repo(file):
            allow = None

            def note(kind2, detail):
                fn.events.append(Event(kind2, detail, line,
                                       self._allow_for(file, line)))

            if kind == "CXXNewExpr":
                note("alloc", "operator new")
            elif kind == "CXXDeleteExpr":
                note("alloc", "operator delete")
            elif kind == "CXXThrowExpr":
                note("throw", "throw expression")
            elif kind in ("CallExpr", "CXXMemberCallExpr",
                          "CXXOperatorCallExpr", "CXXConstructExpr"):
                callee = self._callee_name(node)
                if callee:
                    is_member = kind == "CXXMemberCallExpr"
                    if is_member and callee in BAD_ALLOC_MEMBERS:
                        note("alloc", f".{callee}()")
                    elif is_member and callee in BAD_THROW_MEMBERS:
                        note("throw", f".{callee}() throws on bad index")
                    elif callee in BAD_ALLOC_CALLS:
                        note("alloc", f"{callee}()")
                    elif callee in BAD_NONDET_CALLS:
                        note("nondet", f"{callee}()")
                    elif callee not in SAFE_CALLS:
                        fn.calls.append(Call(callee, (), line, is_member))
            elif kind in ("VarDecl", "FieldDecl"):
                qual_type = (node.get("type") or {}).get("qualType", "")
                for t in BAD_NONDET_TYPES:
                    if t in qual_type:
                        note("nondet", f"{t} (unordered iteration order)")
                        break

        for child in node.get("inner", []) or []:
            self.walk(child, fn)

    def _callee_name(self, node):
        # The callee is the first inner expression; find the referenced
        # declaration name inside it.
        inner = node.get("inner", []) or []
        if not inner:
            return None
        def find_ref(n, depth=0):
            if not isinstance(n, dict) or depth > 6:
                return None
            ref = n.get("referencedDecl") or n.get("referencedMemberDecl")
            if isinstance(ref, dict) and ref.get("name"):
                return ref["name"]
            if n.get("kind") in ("DeclRefExpr", "MemberExpr") and \
                    n.get("name"):
                return n.get("name")
            for c in n.get("inner", []) or []:
                got = find_ref(c, depth + 1)
                if got:
                    return got
            return None
        return find_ref(inner[0])


def clang_frontend(compile_commands_path, files_filter):
    clang = shutil.which("clang++") or shutil.which("clang")
    if clang is None:
        raise RuntimeError("clang++ not found in PATH "
                           "(required by --frontend=clang)")
    try:
        with open(compile_commands_path, encoding="utf-8") as f:
            entries = json.load(f)
    except OSError as e:
        raise RuntimeError(f"cannot read {compile_commands_path}: {e}")
    functions = []
    seen = set()
    for entry in entries:
        src = os.path.normpath(os.path.join(entry["directory"],
                                            entry["file"]))
        if src in seen or not src.startswith(
                os.path.join(REPO_ROOT, "src") + os.sep):
            continue
        if files_filter and src not in files_filter:
            continue
        seen.add(src)
        args = entry.get("arguments")
        if args is None:
            args = entry["command"].split()
        # Keep -I/-D/-std flags; drop compile/output directives.
        flags = []
        skip_next = False
        for a in args[1:]:
            if skip_next:
                skip_next = False
                continue
            if a in ("-c", src) or a.endswith(".o"):
                continue
            if a == "-o":
                skip_next = True
                continue
            flags.append(a)
        cmd = [clang, *flags, "-fsyntax-only", "-Xclang", "-ast-dump=json",
               src]
        proc = subprocess.run(cmd, cwd=entry["directory"],
                              capture_output=True, text=True)
        if proc.returncode != 0 or not proc.stdout:
            sys.stderr.write(f"hotpath_check: clang failed on {src}:\n"
                             f"{proc.stderr[:2000]}\n")
            raise RuntimeError("clang frontend failed")
        walker = _ClangWalker(src, functions)
        walker.walk(json.loads(proc.stdout))
    return functions


# ---------------------------------------------------------------------------
# Core: root propagation, reachability, reporting
# ---------------------------------------------------------------------------

def analyze(functions, declared_roots):
    by_last = {}
    by_qname = {}
    for fn in functions:
        by_last.setdefault(fn.last, []).append(fn)
        by_qname.setdefault(fn.qname, []).append(fn)

    # Seed roots: annotated definitions + definitions matching annotated
    # declarations (by qualified-name suffix).
    root_names = set()
    method_root_lasts = set()
    for fn in functions:
        if fn.is_root:
            root_names.add(fn.qname)
            if fn.is_method:
                method_root_lasts.add(fn.last)
    for qname, is_method in declared_roots:
        root_names.add(qname)
        if is_method:
            method_root_lasts.add(qname.rsplit("::", 1)[-1])
        for fn in functions:
            if fn.qname == qname or fn.qname.endswith("::" + qname):
                fn.is_root = True

    # Virtual-override propagation: a method root extends to every
    # same-named method (conservative: covers overrides without relying
    # on hierarchy reconstruction).
    for fn in functions:
        if fn.is_method and fn.last in method_root_lasts:
            fn.is_root = True

    roots = [fn for fn in functions if fn.is_root]

    # Resolve call edges.
    def resolve(call):
        if call.qual:
            suffix = "::".join(call.qual + (call.name,))
            exact = []
            for qname, fns in by_qname.items():
                if qname == suffix or qname.endswith("::" + suffix):
                    exact.extend(fns)
            if exact:
                return exact
            # Qualified into an external namespace (std:: etc.): ignore.
            return []
        return by_last.get(call.name, [])

    edges = {}
    for fn in functions:
        targets = []
        for call in fn.calls:
            for target in resolve(call):
                if target is not fn:
                    targets.append((target, call))
        edges[id(fn)] = targets

    # BFS from every root, tracking one witness path per function.
    reachable = {}
    for root in roots:
        stack = [(root, None)]
        while stack:
            fn, parent = stack.pop()
            if id(fn) in reachable:
                continue
            reachable[id(fn)] = (fn, parent, root)
            for target, _ in edges[id(fn)]:
                if id(target) not in reachable:
                    stack.append((target, id(fn)))

    findings = []
    suppressions = []
    seen_events = set()
    for fid, (fn, _, root) in reachable.items():
        for ev in fn.events:
            key = (fn.file, ev.line, ev.kind, ev.detail)
            if key in seen_events:
                continue
            seen_events.add(key)
            path = []
            cursor = fid
            while cursor is not None:
                cfn, parent, _ = reachable[cursor]
                path.append(cfn.qname)
                cursor = parent
            path.reverse()
            record = {
                "file": fn.file, "line": ev.line, "kind": ev.kind,
                "detail": ev.detail, "function": fn.qname,
                "root": root.qname, "path": path,
            }
            if ev.allow:
                record["allow"] = ev.allow
                suppressions.append(record)
            else:
                findings.append(record)

    edge_count = sum(len(t) for t in edges.values())
    return {
        "roots": sorted({fn.qname for fn in roots}),
        "num_functions": len(functions),
        "num_edges": edge_count,
        "num_reachable": len(reachable),
        "findings": sorted(findings,
                           key=lambda r: (r["file"], r["line"])),
        "suppressions": sorted(suppressions,
                               key=lambda r: (r["file"], r["line"])),
    }


def default_files():
    files = []
    for dirpath, _, names in os.walk(os.path.join(REPO_ROOT, "src")):
        for name in sorted(names):
            if name.endswith((".cc", ".h")):
                files.append(os.path.join(dirpath, name))
    return sorted(files)


def main():
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("paths", nargs="*",
                    help="files to analyze (default: src/)")
    ap.add_argument("--frontend", choices=["textual", "clang"],
                    default="textual")
    ap.add_argument("-p", "--build-dir", default="build",
                    help="build dir holding compile_commands.json "
                         "(clang frontend)")
    ap.add_argument("--report", help="write a JSON call-graph report here")
    ap.add_argument("--list-roots", action="store_true")
    ap.add_argument("-v", "--verbose", action="store_true")
    args = ap.parse_args()

    files = [os.path.abspath(p) for p in args.paths] or default_files()
    for f in files:
        if not os.path.isfile(f):
            sys.stderr.write(f"hotpath_check: no such file: {f}\n")
            return 2

    try:
        if args.frontend == "clang":
            cc = os.path.join(args.build_dir, "compile_commands.json")
            if not os.path.isabs(cc):
                cc = os.path.join(REPO_ROOT, cc)
            functions = clang_frontend(cc, set(files) if args.paths
                                       else None)
            # Roots come from the annotation macro in the sources either
            # way, so both frontends agree on the root set: textual
            # declarations AND definitions both seed the root list here.
            tex_functions, declared_roots = textual_frontend(files)
            declared_roots = list(declared_roots) + [
                (fn.qname, fn.is_method) for fn in tex_functions
                if fn.is_root]
        else:
            functions, declared_roots = textual_frontend(files)
    except RuntimeError as e:
        sys.stderr.write(f"hotpath_check: {e}\n")
        return 2

    result = analyze(functions, declared_roots)

    if args.list_roots:
        for r in result["roots"]:
            print(r)

    for rec in result["findings"]:
        print(f"{rec['file']}:{rec['line']}: [{rec['kind']}] "
              f"{rec['detail']} reachable from hot root {rec['root']}")
        print("    path: " + " -> ".join(rec["path"]))
    if args.verbose:
        for rec in result["suppressions"]:
            print(f"{rec['file']}:{rec['line']}: suppressed [{rec['kind']}] "
                  f"{rec['detail']}: allow({rec['allow']})")

    if args.report:
        with open(args.report, "w", encoding="utf-8") as f:
            json.dump(result, f, indent=2, sort_keys=True)
            f.write("\n")

    sys.stderr.write(
        f"hotpath_check[{args.frontend}]: {result['num_functions']} "
        f"functions, {result['num_edges']} edges, "
        f"{len(result['roots'])} roots, {result['num_reachable']} "
        f"reachable, {len(result['findings'])} finding(s), "
        f"{len(result['suppressions'])} suppression(s): "
        f"{'FAILED' if result['findings'] else 'OK'}\n")
    return 1 if result["findings"] else 0


if __name__ == "__main__":
    sys.exit(main())
