#!/usr/bin/env bash
# Kill-and-resume smoke test for the crash-safe training path.
#
# Requires a build configured with -DKGE_FAILPOINTS=ON. The script
#   1. trains a small model to completion (the reference run),
#   2. repeats the run with a failpoint that simulates a hard kill
#      (_exit, no cleanup) mid-training and checks the process died with
#      the failpoint exit code,
#   3. resumes from <checkpoint-dir>/LATEST and checks the final model
#      checkpoint is byte-identical to the reference (`cmp`).
#
# Usage: scripts/kill_resume_smoke.sh [BUILD_DIR]
#   BUILD_DIR  build tree with failpoints compiled in (default build-fp)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-${BUILD_DIR:-build-fp}}"
TRAIN="./${BUILD_DIR}/tools/kge_train"
if [[ ! -x "${TRAIN}" ]]; then
  echo "kill_resume_smoke: ${TRAIN} not found; build with" \
       "cmake -B ${BUILD_DIR} -DKGE_FAILPOINTS=ON first" >&2
  exit 2
fi

WORK_DIR="$(mktemp -d /tmp/kge_kill_resume.XXXXXX)"
trap 'rm -rf "${WORK_DIR}"' EXIT

# Small but non-trivial: 12 epochs with validation every 4, crash after
# epoch 7 so the resumed run replays epochs 8..12 including one
# validation point. Patience is large enough that neither run stops
# early (early-stopping phase restoration is covered by unit tests).
COMMON_ARGS=(--model=complex --entities=300 --dim-budget=32
             --max-epochs=12 --eval-every=4 --patience=1000 --seed=7)
KILL_EPOCH=7
# _exit code used by failpoint crashes (util/failpoint.h).
FAILPOINT_EXIT=42

echo "== reference run (uninterrupted) =="
"${TRAIN}" "${COMMON_ARGS[@]}" \
    --checkpoint="${WORK_DIR}/reference.ckpt" > /dev/null

echo "== crash run (failpoint kill after epoch ${KILL_EPOCH}) =="
set +e
KGE_FAILPOINTS="train.epoch.end=crash@${KILL_EPOCH}" \
    "${TRAIN}" "${COMMON_ARGS[@]}" \
    --checkpoint-dir="${WORK_DIR}/ckpts" --checkpoint-every=1 \
    --checkpoint="${WORK_DIR}/crashed.ckpt" > /dev/null 2> "${WORK_DIR}/crash.log"
crash_rc=$?
set -e
if [[ ${crash_rc} -ne ${FAILPOINT_EXIT} ]]; then
  echo "kill_resume_smoke: expected exit ${FAILPOINT_EXIT} from the" \
       "failpoint kill, got ${crash_rc} (is the build missing" \
       "-DKGE_FAILPOINTS=ON?)" >&2
  cat "${WORK_DIR}/crash.log" >&2
  exit 1
fi
if [[ -e "${WORK_DIR}/crashed.ckpt" ]]; then
  echo "kill_resume_smoke: killed run should not have written its final" \
       "checkpoint" >&2
  exit 1
fi
if [[ ! -f "${WORK_DIR}/ckpts/LATEST" ]]; then
  echo "kill_resume_smoke: no LATEST pointer survived the kill" >&2
  exit 1
fi

echo "== resume run =="
"${TRAIN}" "${COMMON_ARGS[@]}" \
    --checkpoint-dir="${WORK_DIR}/ckpts" --checkpoint-every=1 --resume \
    --checkpoint="${WORK_DIR}/resumed.ckpt" > /dev/null

echo "== comparing final model checkpoints =="
cmp "${WORK_DIR}/reference.ckpt" "${WORK_DIR}/resumed.ckpt"

echo "KILL-AND-RESUME SMOKE PASSED (resume is byte-identical)"
