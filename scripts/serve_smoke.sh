#!/usr/bin/env bash
# End-to-end smoke test for the serving layer (kge_serve + kge_query).
#
# The script
#   1. trains a small model with durable checkpoints (ckpt_*.kge2 +
#      LATEST pointer),
#   2. serves an older checkpoint and answers a query over TCP,
#   3. repoints LATEST at a newer checkpoint and waits for the watcher
#      to hot-swap (snapshot_version bumps in responses),
#   4. repoints LATEST at a corrupt checkpoint and checks it is
#      quarantined (renamed to *.quarantine) while queries keep being
#      answered from the last good snapshot,
#   5. kills the server with SIGKILL and restarts it against the same
#      directory, checking it resumes from the newest CRC-valid
#      checkpoint even though LATEST still names the quarantined file.
#
# Usage: scripts/serve_smoke.sh [BUILD_DIR]
#   BUILD_DIR  build tree with kge_train/kge_serve/kge_query (default build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-${BUILD_DIR:-build}}"
TRAIN="./${BUILD_DIR}/tools/kge_train"
SERVE="./${BUILD_DIR}/tools/kge_serve"
QUERY="./${BUILD_DIR}/tools/kge_query"
for bin in "${TRAIN}" "${SERVE}" "${QUERY}"; do
  if [[ ! -x "${bin}" ]]; then
    echo "serve_smoke: ${bin} not found; build the tools first" >&2
    exit 2
  fi
done

WORK_DIR="$(mktemp -d /tmp/kge_serve_smoke.XXXXXX)"
SERVER_PID=""
cleanup() {
  if [[ -n "${SERVER_PID}" ]]; then kill "${SERVER_PID}" 2>/dev/null || true; fi
  rm -rf "${WORK_DIR}"
}
trap cleanup EXIT

CKPTS="${WORK_DIR}/ckpts"
MODEL_ARGS=(--model=complex --generate=wordnet --entities=300
            --dim-budget=32 --seed=7)

echo "== training checkpoints =="
"${TRAIN}" "${MODEL_ARGS[@]}" --max-epochs=4 --eval-every=100 \
    --checkpoint-dir="${CKPTS}" --checkpoint-every=1 --keep-last=10 \
    > /dev/null
if [[ ! -f "${CKPTS}/ckpt_2.kge2" || ! -f "${CKPTS}/ckpt_4.kge2" ]]; then
  echo "serve_smoke: expected ckpt_2/ckpt_4 after training" >&2
  ls "${CKPTS}" >&2
  exit 1
fi

start_server() {
  : > "${WORK_DIR}/serve.log"
  "${SERVE}" "${MODEL_ARGS[@]}" --checkpoint-dir="${CKPTS}" \
      --watch-latest --poll-ms=50 --port=0 --deadline-ms=5000 \
      >> "${WORK_DIR}/serve.log" 2>&1 &
  SERVER_PID=$!
  disown "${SERVER_PID}"  # silence bash's job notice on the SIGKILL leg
  PORT=""
  for _ in $(seq 1 300); do
    PORT="$(sed -n 's/.* port=\([0-9][0-9]*\).*/\1/p' \
        "${WORK_DIR}/serve.log" | head -n 1)"
    if [[ -n "${PORT}" ]]; then return 0; fi
    if ! kill -0 "${SERVER_PID}" 2>/dev/null; then
      echo "serve_smoke: server exited during startup" >&2
      cat "${WORK_DIR}/serve.log" >&2
      return 1
    fi
    sleep 0.1
  done
  echo "serve_smoke: server never reported its port" >&2
  return 1
}

# Answers the snapshot_version of one successful query, or "".
query_snapshot() {
  "${QUERY}" --port="${PORT}" --entity=1 --relation=0 --topk=5 \
      | sed -n 's/.*snapshot=\([0-9][0-9]*\).*/\1/p' | head -n 1
}

# Polls until a query reports the wanted snapshot version.
await_snapshot() {
  local want="$1"
  for _ in $(seq 1 100); do
    if [[ "$(query_snapshot)" == "${want}" ]]; then return 0; fi
    sleep 0.1
  done
  echo "serve_smoke: never observed snapshot_version=${want}" >&2
  cat "${WORK_DIR}/serve.log" >&2
  return 1
}

echo "== serving ckpt_2, querying =="
printf 'ckpt_2.kge2\n' > "${CKPTS}/LATEST"
start_server
await_snapshot 1

echo "== hot swap to ckpt_4 =="
printf 'ckpt_4.kge2\n' > "${CKPTS}/LATEST"
await_snapshot 2

echo "== corrupt checkpoint is quarantined, serving continues =="
head -c 512 "${CKPTS}/ckpt_4.kge2" > "${CKPTS}/ckpt_9.kge2"
printf 'ckpt_9.kge2\n' > "${CKPTS}/LATEST"
for _ in $(seq 1 100); do
  if [[ -f "${CKPTS}/ckpt_9.kge2.quarantine" ]]; then break; fi
  sleep 0.1
done
if [[ ! -f "${CKPTS}/ckpt_9.kge2.quarantine" ]]; then
  echo "serve_smoke: corrupt checkpoint was never quarantined" >&2
  cat "${WORK_DIR}/serve.log" >&2
  exit 1
fi
if [[ "$(query_snapshot)" != "2" ]]; then
  echo "serve_smoke: quarantine changed the served snapshot" >&2
  exit 1
fi

echo "== SIGKILL, restart, resume from last CRC-valid checkpoint =="
kill -9 "${SERVER_PID}"
wait "${SERVER_PID}" 2>/dev/null || true
SERVER_PID=""
# LATEST still names the quarantined file; startup must fall back to
# the newest checkpoint that passes CRC verification (ckpt_4).
start_server
await_snapshot 1
"${QUERY}" --port="${PORT}" --entity=1 --relation=0 --topk=5 \
    --expect-status=ok --quiet

echo "== medium scale: 100k-entity snapshot, sharded + pruned top-10 =="
kill "${SERVER_PID}" 2>/dev/null || true
wait "${SERVER_PID}" 2>/dev/null || true
SERVER_PID=""
MEDIUM_CKPTS="${WORK_DIR}/ckpts_medium"
# One cheap epoch is enough: the leg tests the serving data path at
# vocabulary scale, not model quality. --scale=medium on the serve side
# must resolve to the same 100k-entity vocabulary the trainer saw.
"${TRAIN}" --model=complex --generate=wordnet --entities=100000 \
    --dim-budget=32 --seed=11 --max-epochs=1 --eval-every=100 \
    --checkpoint-dir="${MEDIUM_CKPTS}" --checkpoint-every=1 --keep-last=2 \
    > /dev/null
: > "${WORK_DIR}/serve_medium.log"
"${SERVE}" --model=complex --generate=wordnet --scale=medium \
    --dim-budget=32 --seed=11 --checkpoint-dir="${MEDIUM_CKPTS}" \
    --shards=4 --prune --port=0 --deadline-ms=2000 \
    >> "${WORK_DIR}/serve_medium.log" 2>&1 &
SERVER_PID=$!
PORT=""
for _ in $(seq 1 300); do
  PORT="$(sed -n 's/.* port=\([0-9][0-9]*\).*/\1/p' \
      "${WORK_DIR}/serve_medium.log" | head -n 1)"
  if [[ -n "${PORT}" ]]; then break; fi
  if ! kill -0 "${SERVER_PID}" 2>/dev/null; then
    echo "serve_smoke: medium-scale server exited during startup" >&2
    cat "${WORK_DIR}/serve_medium.log" >&2
    exit 1
  fi
  sleep 0.1
done
if [[ -z "${PORT}" ]]; then
  echo "serve_smoke: medium-scale server never reported its port" >&2
  exit 1
fi
# A single client must get top-10 answers back with OK status — no SHED
# (admission control never binds at 1 client) and no DEADLINE (the
# sharded + pruned reduction keeps a 100k-entity scan well inside the
# 2 s budget).
"${QUERY}" --port="${PORT}" --entity=17 --relation=0 --topk=10 \
    --count=20 --expect-status=ok --quiet
# Graceful stop prints the batcher counters; the sharded + pruned
# reduction must have processed tiles through the full server stack.
# (tiles_SKIPPED is not gated here: a one-epoch model has near-uniform
# row norms, so bounds rarely prove a tile dead — skip effectiveness on
# skewed models is gated by bench-smoke and the property tests.)
kill "${SERVER_PID}"
wait "${SERVER_PID}" 2>/dev/null || true
SERVER_PID=""
TILES_TOTAL="$(sed -n 's/.*tiles_skipped=[0-9][0-9]*\/\([0-9][0-9]*\).*/\1/p' \
    "${WORK_DIR}/serve_medium.log" | head -n 1)"
if [[ -z "${TILES_TOTAL}" || "${TILES_TOTAL}" == "0" ]]; then
  echo "serve_smoke: sharded+pruned reduction never ran a range scan" >&2
  cat "${WORK_DIR}/serve_medium.log" >&2
  exit 1
fi

echo "SERVE SMOKE PASSED (swap, quarantine, crash-restart, and medium-scale pruned serving verified)"
