#!/usr/bin/env python3
"""Repo-rule checker for the kge codebase (driven by scripts/lint.sh).

Rules enforced (each can be suppressed on a specific line with a trailing
`// kge-lint: allow(<rule>)` comment):

  include-guard   Every header uses an #ifndef/#define/#endif guard named
                  KGE_<PATH>_H_, where <PATH> is the file path relative to
                  src/ (or to the repo root for headers outside src/),
                  upper-cased with /, ., - mapped to _. No #pragma once.
  banned-random   No rand()/srand()/random()/time(nullptr|NULL|0) seeding
                  outside src/util/random.*: all stochastic behavior must
                  flow through kge::Rng so runs stay reproducible.
  naked-new       No naked `new` in src/: allocation goes through
                  std::make_unique / std::make_shared / containers.
  raw-mutex       No new std::mutex / std::lock_guard / std::scoped_lock in
                  src/ outside util/thread_annotations.h: use the annotated
                  kge::Mutex / kge::MutexLock wrappers so -Wthread-safety
                  can verify locking.
  banned-thread   No detached std::thread in src/ (thread lifecycle must be
                  owned, e.g. by ThreadPool).
  banned-iostream No std::cout/std::cerr/std::clog and no
                  #include <iostream> in src/ outside the logging utility
                  (src/util/logging.*): diagnostics go through KGE_LOG,
                  which is leveled, thread-safe at line granularity, and
                  silenceable in tests; tool/bench stdout goes through
                  their printf-based writers. <iostream> also drags a
                  static-init fiasco guard into every TU that includes it.

Exit status: 0 if clean, 1 if any finding. Findings are printed one per
line as `path:line: [rule] message`.
"""

import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

SOURCE_DIRS = ("src", "tools", "bench", "tests", "examples")
HEADER_DIRS = ("src", "tools", "bench", "tests", "examples")

ALLOW_RE = re.compile(r"//\s*kge-lint:\s*allow\(([a-z-]+)\)")

BANNED_RANDOM = [
    (re.compile(r"(?<![\w:.])(?:std::)?s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"(?<![\w:.])(?:std::)?random\s*\(\s*\)"), "random()"),
    (re.compile(r"(?<![\w:.])(?:std::)?time\s*\(\s*(?:nullptr|NULL|0)\s*\)"),
     "time(nullptr)"),
    (re.compile(r"(?<![\w:])std::mt19937"), "std::mt19937"),
]

NAKED_NEW_RE = re.compile(r"(?<![\w:])new\b(?!\s*\()")
RAW_MUTEX_RE = re.compile(
    r"(?<![\w:])std::(?:mutex|shared_mutex|recursive_mutex|lock_guard|"
    r"scoped_lock|unique_lock)\b")
DETACH_RE = re.compile(r"\.detach\s*\(\s*\)")
PRAGMA_ONCE_RE = re.compile(r"^\s*#\s*pragma\s+once")
IOSTREAM_USE_RE = re.compile(r"(?<![\w:])std::(?:cout|cerr|clog|wcout|wcerr)\b")
IOSTREAM_INCLUDE_RE = re.compile(r"^\s*#\s*include\s*<iostream>")


def strip_comments_and_strings(line):
    """Best-effort removal of // comments and string/char literals so that
    banned identifiers inside text do not trigger findings. (Block comments
    spanning lines are handled by the caller.)"""
    out = []
    i, n = 0, len(line)
    in_str = None
    while i < n:
        c = line[i]
        if in_str:
            if c == "\\":
                i += 2
                continue
            if c == in_str:
                in_str = None
            i += 1
            continue
        if c in "\"'":
            in_str = c
            out.append(c)
            i += 1
            continue
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        out.append(c)
        i += 1
    return "".join(out)


def expected_guard(rel_path):
    if rel_path.startswith("src/"):
        stem = rel_path[len("src/"):]
    else:
        stem = rel_path
    return "KGE_" + re.sub(r"[/.\-]", "_", stem.upper()) + "_"


def is_allowed(raw_line, rule):
    m = ALLOW_RE.search(raw_line)
    return m is not None and m.group(1) == rule


class Linter:
    def __init__(self):
        self.findings = []

    def report(self, path, lineno, rule, message, raw_line=""):
        if is_allowed(raw_line, rule):
            return
        rel = os.path.relpath(path, REPO_ROOT)
        self.findings.append(f"{rel}:{lineno}: [{rule}] {message}")

    def check_include_guard(self, path, rel, lines):
        for i, raw in enumerate(lines, 1):
            if PRAGMA_ONCE_RE.match(raw):
                self.report(path, i, "include-guard",
                            "use an #ifndef guard, not #pragma once", raw)
                return
        guard = expected_guard(rel)
        ifndef = None
        for i, raw in enumerate(lines, 1):
            stripped = raw.strip()
            if not stripped or stripped.startswith("//"):
                continue
            m = re.match(r"#\s*ifndef\s+(\S+)", stripped)
            ifndef = (i, m.group(1)) if m else None
            break
        if ifndef is None:
            self.report(path, 1, "include-guard",
                        f"missing include guard (expected {guard})")
            return
        lineno, got = ifndef
        if got != guard:
            self.report(path, lineno, "include-guard",
                        f"guard is {got}, expected {guard}", lines[lineno - 1])
            return
        define_re = re.compile(r"#\s*define\s+" + re.escape(guard) + r"\s*$")
        if not any(define_re.match(l.strip()) for l in lines):
            self.report(path, lineno, "include-guard",
                        f"#ifndef {guard} without matching #define")
        endif_re = re.compile(r"#\s*endif\s*//\s*" + re.escape(guard))
        tail = [l.strip() for l in lines if l.strip()]
        if not tail or not endif_re.match(tail[-1]):
            self.report(path, len(lines), "include-guard",
                        f"file should end with '#endif  // {guard}'")

    def check_file(self, path, rel):
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()

        if rel.endswith(".h") and any(rel.startswith(d + "/") for d in HEADER_DIRS):
            self.check_include_guard(path, rel, lines)

        in_util_random = rel.startswith("src/util/random")
        in_src = rel.startswith("src/")
        is_annotations_header = rel == "src/util/thread_annotations.h"
        is_logging_util = rel.startswith("src/util/logging")

        in_block_comment = False
        for i, raw in enumerate(lines, 1):
            line = raw
            if in_block_comment:
                end = line.find("*/")
                if end < 0:
                    continue
                line = line[end + 2:]
                in_block_comment = False
            start = line.find("/*")
            if start >= 0 and line.find("*/", start) < 0:
                in_block_comment = True
                line = line[:start]
            code = strip_comments_and_strings(line)
            if not code.strip():
                continue

            if not in_util_random:
                for pattern, what in BANNED_RANDOM:
                    if pattern.search(code):
                        self.report(path, i, "banned-random",
                                    f"{what}: use kge::Rng (util/random.h) "
                                    "for reproducible randomness", raw)
            if in_src:
                if NAKED_NEW_RE.search(code):
                    self.report(path, i, "naked-new",
                                "naked new: use std::make_unique / containers",
                                raw)
                if not is_annotations_header and RAW_MUTEX_RE.search(code):
                    self.report(path, i, "raw-mutex",
                                "use kge::Mutex / kge::MutexLock "
                                "(util/thread_annotations.h) so "
                                "-Wthread-safety can check locking", raw)
                if DETACH_RE.search(code) and "thread" in code:
                    self.report(path, i, "banned-thread",
                                "detached threads are banned; own the "
                                "lifecycle (e.g. ThreadPool)", raw)
                if not is_logging_util and (
                        IOSTREAM_USE_RE.search(code)
                        or IOSTREAM_INCLUDE_RE.match(code)):
                    self.report(path, i, "banned-iostream",
                                "iostream is banned in src/: use KGE_LOG "
                                "(util/logging.h) for diagnostics", raw)


def main():
    targets = sys.argv[1:]
    linter = Linter()
    count = 0
    for d in SOURCE_DIRS:
        base = os.path.join(REPO_ROOT, d)
        for dirpath, _, files in os.walk(base):
            for name in sorted(files):
                if not name.endswith((".cc", ".h")):
                    continue
                path = os.path.join(dirpath, name)
                rel = os.path.relpath(path, REPO_ROOT)
                if targets and not any(rel.startswith(t) for t in targets):
                    continue
                count += 1
                linter.check_file(path, rel)
    for finding in linter.findings:
        print(finding)
    status = "FAILED" if linter.findings else "OK"
    print(f"repo_lint: {count} files checked, {len(linter.findings)} "
          f"finding(s): {status}", file=sys.stderr)
    return 1 if linter.findings else 0


if __name__ == "__main__":
    sys.exit(main())
