// kge_serve: fault-tolerant link-prediction server over a trained
// checkpoint. Answers top-k head/tail queries on a loopback TCP port
// using the binary protocol from serve_protocol.h (see tools/kge_query
// for a client).
//
// The model configuration (name, entities, dim budget, seed) must match
// the training run, exactly as for kge_eval — shape mismatches are
// rejected at load time.
//
//   kge_serve --model=complex --dim-budget=200 \
//       --checkpoint-dir=/tmp/run --watch-latest --port=7071
//
// Robustness properties (exercised by tests/serve_*_test.cc and
// scripts/serve_smoke.sh):
//   * admission control: queue beyond --max-queue answers SHED
//   * deadlines: queries stuck past --deadline-ms answer DEADLINE
//   * degradation: sustained pressure downshifts scoring toward
//     --degrade-precision; responses report the tier used
//   * hot swap: --watch-latest polls LATEST, CRC-verifies new
//     checkpoints before an atomic swap, quarantines corrupt ones, and
//     keeps serving the last good snapshot meanwhile
#include <csignal>
#include <cstdio>

#include <chrono>
#include <thread>

#include "kge.h"

namespace {

using namespace kge;

volatile std::sig_atomic_t g_stop_requested = 0;

void HandleStopSignal(int /*signum*/) { g_stop_requested = 1; }

int Run(int argc, char** argv) {
  std::string model_name = "complex";
  std::string data_dir;
  std::string generate = "wordnet";
  std::string checkpoint;
  std::string checkpoint_dir;
  std::string degrade_precision = "double";
  int64_t entities = 2000;
  int64_t dim_budget = 200;
  int64_t seed = 42;
  int64_t port = 0;
  int64_t topk = 64;
  int64_t deadline_ms = 50;
  int64_t max_queue = 256;
  int64_t max_batch = 32;
  int64_t workers = 1;
  int64_t poll_ms = 200;
  int64_t shards = 1;
  bool prune = false;
  std::string scale;
  bool watch_latest = false;

  FlagParser parser("kge_serve: serve top-k link prediction over TCP");
  parser.AddString("model", &model_name, "model name used at training time");
  parser.AddString("data-dir", &data_dir,
                   "dataset directory; empty = regenerate synthetic (only "
                   "the vocabulary sizes are used)");
  parser.AddString("generate", &generate, "wordnet | freebase");
  parser.AddString("checkpoint", &checkpoint,
                   "serve this checkpoint file (no LATEST indirection)");
  parser.AddString("checkpoint-dir", &checkpoint_dir,
                   "resolve the newest checkpoint via this directory's "
                   "LATEST pointer (with fallback to the newest CRC-valid "
                   "ckpt_*.kge2)");
  parser.AddInt("entities", &entities, "entities for generated datasets");
  parser.AddInt("dim-budget", &dim_budget, "per-entity parameter budget");
  parser.AddInt("seed", &seed, "seed used at training time");
  parser.AddInt("port", &port, "TCP port (loopback); 0 = ephemeral");
  parser.AddInt("topk", &topk, "server-side cap on per-request k");
  parser.AddInt("deadline-ms", &deadline_ms,
                "default per-query deadline when the request carries none");
  parser.AddInt("max-queue", &max_queue,
                "admission-queue slots; requests beyond this are SHED");
  parser.AddInt("max-batch", &max_batch,
                "max queries coalesced into one kernel dispatch");
  parser.AddInt("workers", &workers, "scoring worker threads");
  parser.AddInt("shards", &shards,
                "entity-table shards for the top-k reduction; > 1 runs "
                "range-scoped per-shard scans in parallel and merges "
                "(results identical at every setting)");
  parser.AddBool("prune", &prune,
                 "skip candidate tiles whose Cauchy-Schwarz score bound "
                 "cannot beat the current top-k minimum (exact, never "
                 "approximate)");
  parser.AddString("scale", &scale,
                   "generated-vocabulary preset: small (3k) | medium "
                   "(100k) | xl (1M); overrides --entities");
  parser.AddString("degrade-precision", &degrade_precision,
                   "lowest scoring tier load may downshift to: double "
                   "(never degrade) | float32 | int8");
  parser.AddBool("watch-latest", &watch_latest,
                 "poll <checkpoint-dir>/LATEST and hot-swap new "
                 "checkpoints (corrupt ones are quarantined)");
  parser.AddInt("poll-ms", &poll_ms, "LATEST poll interval");
  const Status status = parser.Parse(argc, argv);
  if (status.code() == StatusCode::kNotFound) return 0;
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 2;
  }
  if (checkpoint.empty() == checkpoint_dir.empty()) {
    std::fprintf(stderr,
                 "exactly one of --checkpoint / --checkpoint-dir is "
                 "required\n");
    return 2;
  }
  if (watch_latest && checkpoint_dir.empty()) {
    std::fprintf(stderr, "--watch-latest requires --checkpoint-dir\n");
    return 2;
  }
  if (!scale.empty()) {
    int32_t preset = 0;
    if (!ParseWordNetScale(scale, &preset)) {
      std::fprintf(stderr, "unknown --scale=%s (small|medium|xl)\n",
                   scale.c_str());
      return 2;
    }
    entities = preset;
  }
  if (shards < 1) {
    std::fprintf(stderr, "--shards must be >= 1\n");
    return 2;
  }

  BatcherOptions batcher_options;
  batcher_options.max_queue = int(max_queue);
  batcher_options.max_batch = int(max_batch);
  batcher_options.num_workers = int(workers);
  batcher_options.max_topk = uint32_t(topk > 0 ? topk : 1);
  batcher_options.default_deadline_ms = uint32_t(deadline_ms);
  batcher_options.num_shards = int(shards);
  batcher_options.prune = prune;
  if (!ParseScorePrecision(degrade_precision,
                           &batcher_options.degrade_floor)) {
    std::fprintf(stderr,
                 "--degrade-precision must be double, float32, or int8 "
                 "(got \"%s\")\n",
                 degrade_precision.c_str());
    return 2;
  }

  // Vocabulary sizes come from the dataset, exactly as at training
  // time, so the factory builds block shapes the checkpoint must match.
  int32_t num_entities = 0;
  int32_t num_relations = 0;
  {
    Dataset data;
    if (!data_dir.empty()) {
      Result<Dataset> loaded = LoadDatasetFromDirectory(
          data_dir, TripleFileFormat::kHeadRelationTail);
      KGE_CHECK_OK(loaded.status());
      data = std::move(*loaded);
    } else if (generate == "wordnet") {
      WordNetLikeOptions options;
      options.num_entities = int32_t(entities);
      options.seed = uint64_t(seed);
      data = GenerateWordNetLike(options);
    } else {
      FreebaseLikeOptions options;
      options.num_entities = int32_t(entities);
      options.seed = uint64_t(seed);
      data = GenerateFreebaseLike(options);
    }
    num_entities = data.num_entities();
    num_relations = data.num_relations();
  }

  ModelFactory factory = [model_name, num_entities, num_relations,
                          dim_budget, seed] {
    return MakeModelByName(model_name, num_entities, num_relations,
                           int32_t(dim_budget), uint64_t(seed));
  };

  CheckpointWatcher::Options watcher_options;
  watcher_options.dir = checkpoint_dir;
  watcher_options.poll_ms = int(poll_ms);
  watcher_options.prepare_tiers = {ScorePrecision::kDouble};
  if (int(batcher_options.degrade_floor) >=
      int(ScorePrecision::kFloat32)) {
    watcher_options.prepare_tiers.push_back(ScorePrecision::kFloat32);
  }
  if (int(batcher_options.degrade_floor) >= int(ScorePrecision::kInt8)) {
    watcher_options.prepare_tiers.push_back(ScorePrecision::kInt8);
  }
  // Pruned scans read per-tile score bounds that must be rebuilt before
  // a snapshot sees concurrent workers, so the loader prepares them.
  watcher_options.prepare_bounds = prune;

  SnapshotRegistry registry;
  CheckpointWatcher watcher(&registry, factory, watcher_options);
  const Status loaded = checkpoint.empty() ? watcher.LoadInitial()
                                           : watcher.AdoptPath(checkpoint);
  if (!loaded.ok()) {
    std::fprintf(stderr, "cannot load a serving checkpoint: %s\n",
                 loaded.ToString().c_str());
    return 1;
  }

  MicroBatcher batcher(&registry, batcher_options);
  batcher.Start();
  KgeServer server(&batcher, ServerOptions{int(port), 64});
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "cannot start server: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  if (watch_latest) watcher.Start();

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  std::printf("kge_serve: model=%s snapshot_version=%llu port=%d\n",
              model_name.c_str(),
              static_cast<unsigned long long>(registry.current_version()),
              server.port());
  std::fflush(stdout);

  while (g_stop_requested == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::printf("kge_serve: draining\n");
  if (watch_latest) watcher.Stop();
  server.Stop();  // drains the batcher too
  const BatcherStatsView bstats = batcher.stats();
  const CheckpointWatcher::StatsView wstats = watcher.stats();
  std::printf(
      "kge_serve: served=%llu shed=%llu expired=%llu invalid=%llu "
      "batches=%llu swaps=%llu quarantines=%llu tiles_skipped=%llu/%llu\n",
      static_cast<unsigned long long>(bstats.completed),
      static_cast<unsigned long long>(bstats.shed),
      static_cast<unsigned long long>(bstats.expired),
      static_cast<unsigned long long>(bstats.invalid),
      static_cast<unsigned long long>(bstats.batches),
      static_cast<unsigned long long>(wstats.swaps),
      static_cast<unsigned long long>(wstats.quarantines),
      static_cast<unsigned long long>(bstats.tiles_skipped),
      static_cast<unsigned long long>(bstats.tiles_total));
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
