// kge_train: command-line training driver. Loads a WN18-format dataset
// directory (train.txt/valid.txt/test.txt, head<TAB>relation<TAB>tail) or
// generates a synthetic one, trains any registered model with early
// stopping on validation filtered MRR, reports test metrics (with an
// optional per-relation breakdown), and optionally writes a checkpoint.
//
//   kge_train --model=complex --data-dir=/data/wn18 ...
//     ... --dim-budget=400 --checkpoint=/tmp/complex.ckpt
//   kge_train --model=cph --generate=wordnet --entities=2000 --report
//   kge_train --model=distmult --generate=wordnet --grid-search
#include <cstdio>

#include "kge.h"

namespace {

using namespace kge;

int Run(int argc, char** argv) {
  std::string model_name = "complex";
  std::string data_dir;
  std::string generate = "wordnet";
  std::string checkpoint;
  int64_t entities = 2000;
  int64_t dim_budget = 200;
  int64_t max_epochs = 200;
  int64_t batch_size = 1024;
  int64_t negatives = 1;
  int64_t eval_every = 20;
  int64_t patience = 60;
  int64_t seed = 42;
  int64_t threads = 1;
  double learning_rate = 1e-3;
  double l2_lambda = 1e-5;
  std::string optimizer = "adam";
  bool report = false;
  bool grid_search = false;
  bool eval_train = false;

  FlagParser parser("kge_train: train a knowledge graph embedding model");
  parser.AddString("model", &model_name,
                   "model name (see models/model_factory.h)");
  parser.AddString("data-dir", &data_dir,
                   "dataset directory with train/valid/test.txt "
                   "(head<TAB>relation<TAB>tail); empty = generate");
  parser.AddString("generate", &generate,
                   "synthetic dataset family: wordnet | freebase");
  parser.AddString("checkpoint", &checkpoint,
                   "write the trained model checkpoint here");
  std::string checkpoint_dir;
  int64_t checkpoint_every = 1;
  int64_t keep_last = 3;
  bool resume = false;
  parser.AddString("checkpoint-dir", &checkpoint_dir,
                   "directory for durable training checkpoints (with "
                   "optimizer/RNG state for exact resume); empty = off");
  parser.AddInt("checkpoint-every", &checkpoint_every,
                "training-checkpoint cadence in epochs");
  parser.AddInt("keep-last", &keep_last,
                "training checkpoints retained (best + latest always kept)");
  parser.AddBool("resume", &resume,
                 "resume bit-identically from <checkpoint-dir>/LATEST");
  std::string export_tsv;
  parser.AddString("export-tsv", &export_tsv,
                   "write entity embeddings to <prefix>_vectors.tsv and "
                   "<prefix>_metadata.tsv (projector format)");
  parser.AddInt("entities", &entities, "entities for generated datasets");
  parser.AddInt("dim-budget", &dim_budget,
                "total embedding parameters per entity");
  parser.AddInt("max-epochs", &max_epochs, "maximum epochs");
  parser.AddInt("batch-size", &batch_size, "mini-batch size");
  parser.AddInt("negatives", &negatives, "negatives per positive");
  parser.AddInt("eval-every", &eval_every, "validation cadence (epochs)");
  parser.AddInt("patience", &patience, "early stopping patience (epochs)");
  parser.AddInt("seed", &seed, "random seed");
  parser.AddInt("threads", &threads, "evaluation threads");
  int64_t eval_batch = 0;
  parser.AddInt("eval-batch", &eval_batch,
                "queries per batched ranking call during validation and "
                "test evaluation; 1 = per-query GEMV, 0 = auto from entity "
                "count (metrics are identical either way)");
  std::string eval_precision = "double";
  parser.AddString("eval-precision", &eval_precision,
                   "candidate-scoring tier for validation and test "
                   "ranking: double (exact) | float32 | int8 (quantized "
                   "scoring replica; bounded metric drift)");
  int64_t train_threads = 0;
  parser.AddInt("train-threads", &train_threads,
                "sample/gradient/merge/apply threads; 0 = auto-detect "
                "hardware concurrency (results are identical for every "
                "value)");
  int64_t pipeline_depth = 2;
  parser.AddInt("pipeline-depth", &pipeline_depth,
                "training batches in flight (1-3): depth d overlaps "
                "negative sampling of the next d-1 batches with "
                "score/merge/apply (results are identical for every "
                "depth)");
  bool fast_merge = false;
  parser.AddBool("fast-merge", &fast_merge,
                 "merge shard gradients in completion order, overlapped "
                 "with scoring (deterministic=false fast mode: results "
                 "vary at float rounding level across runs/threads)");
  parser.AddDouble("learning-rate", &learning_rate, "optimizer step size");
  parser.AddDouble("l2-lambda", &l2_lambda, "L2 regularization strength");
  parser.AddString("optimizer", &optimizer, "sgd | adagrad | adam");
  parser.AddBool("report", &report,
                 "print per-relation / per-category breakdown");
  parser.AddBool("grid-search", &grid_search,
                 "run the paper's hyperparameter grid (slow)");
  parser.AddBool("eval-train", &eval_train,
                 "also evaluate on (a sample of) the training set");
  const Status status = parser.Parse(argc, argv);
  if (status.code() == StatusCode::kNotFound) return 0;
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 2;
  }

  // ---- Dataset -------------------------------------------------------------
  Dataset data;
  if (!data_dir.empty()) {
    Result<Dataset> loaded = LoadDatasetFromDirectory(
        data_dir, TripleFileFormat::kHeadRelationTail);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    data = std::move(*loaded);
  } else if (generate == "wordnet") {
    WordNetLikeOptions options;
    options.num_entities = int32_t(entities);
    options.seed = uint64_t(seed);
    data = GenerateWordNetLike(options);
  } else if (generate == "freebase") {
    FreebaseLikeOptions options;
    options.num_entities = int32_t(entities);
    options.seed = uint64_t(seed);
    data = GenerateFreebaseLike(options);
  } else {
    std::fprintf(stderr, "unknown --generate=%s\n", generate.c_str());
    return 2;
  }
  KGE_CHECK_OK(data.Validate());
  std::printf("dataset: %s\n", data.StatsString().c_str());

  // ---- Model ---------------------------------------------------------------
  Result<std::unique_ptr<KgeModel>> model =
      MakeModelByName(model_name, data.num_entities(), data.num_relations(),
                      int32_t(dim_budget), uint64_t(seed));
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return 2;
  }
  std::printf("model: %s (%lld parameters)\n", (*model)->name().c_str(),
              (long long)(*model)->NumParameters());

  ScorePrecision score_precision = ScorePrecision::kDouble;
  if (!ParseScorePrecision(eval_precision, &score_precision)) {
    std::fprintf(stderr,
                 "--eval-precision must be double, float32, or int8 "
                 "(got \"%s\")\n",
                 eval_precision.c_str());
    return 2;
  }
  if (!(*model)->SupportsScorePrecision(score_precision)) {
    std::fprintf(stderr,
                 "model %s does not support --eval-precision=%s; "
                 "use double\n",
                 (*model)->name().c_str(), eval_precision.c_str());
    return 2;
  }

  FilterIndex filter;
  filter.Build(data.train, data.valid, data.test);
  Evaluator evaluator(&filter, data.num_relations());
  EvalOptions valid_eval;
  valid_eval.max_triples = 500;
  valid_eval.num_threads = int(threads);
  valid_eval.batch_queries = int(eval_batch);
  valid_eval.score_precision = score_precision;
  std::printf("eval batch: %d queries per ranking call (precision %s)\n",
              ResolveEvalBatchQueries(int(eval_batch), data.num_entities(),
                                      score_precision),
              ScorePrecisionName(score_precision));
  auto validate = [&](KgeModel* m) {
    return evaluator.EvaluateOverall(*m, data.valid, valid_eval).Mrr();
  };

  TrainerOptions options;
  options.max_epochs = int(max_epochs);
  options.batch_size = int(batch_size);
  options.num_negatives = int(negatives);
  options.learning_rate = learning_rate;
  options.l2_lambda = l2_lambda;
  options.optimizer = optimizer;
  options.eval_every_epochs = int(eval_every);
  options.patience_epochs = int(patience);
  options.seed = uint64_t(seed);
  options.log_every_epochs = 20;
  options.num_threads = int(train_threads);
  options.pipeline_depth = int(pipeline_depth);
  options.deterministic = !fast_merge;
  const size_t resolved_train_threads = ResolveNumThreads(int(train_threads));
  std::printf("train threads: %zu%s, pipeline depth %d%s\n",
              resolved_train_threads,
              train_threads == 0 ? " (auto-detected)" : "",
              int(pipeline_depth),
              fast_merge ? ", fast (non-deterministic) merge" : "");
  options.checkpointing.dir = checkpoint_dir;
  options.checkpointing.every_epochs = int(checkpoint_every);
  options.checkpointing.keep_last = int(keep_last);
  options.checkpointing.resume = resume;
  if (resume && checkpoint_dir.empty()) {
    std::fprintf(stderr, "--resume requires --checkpoint-dir\n");
    return 2;
  }

  Stopwatch watch;
  if (grid_search) {
    GridSearchSpace space;
    space.batch_sizes = {int(batch_size)};  // keep the CLI grid 2-D
    GridSearch search(space, options);
    Result<GridSearchResult> best = search.Run(
        [&] {
          Result<std::unique_ptr<KgeModel>> fresh = MakeModelByName(
              model_name, data.num_entities(), data.num_relations(),
              int32_t(dim_budget), uint64_t(seed));
          KGE_CHECK_OK(fresh.status());
          return std::move(*fresh);
        },
        data.train, validate);
    KGE_CHECK_OK(best.status());
    std::printf("grid search best: %s (valid MRR %.3f)\n",
                best->best.ToString().c_str(), best->best_metric);
    options.learning_rate = best->best.learning_rate;
    options.l2_lambda = best->best.l2_lambda;
    options.batch_size = best->best.batch_size;
  }

  Trainer trainer(model->get(), options);
  Result<TrainResult> trained = trainer.Train(
      data.train,
      data.valid.empty()
          ? Trainer::ValidationFn()
          : [&](int) { return validate(model->get()); });
  if (!trained.ok()) {
    std::fprintf(stderr, "%s\n", trained.status().ToString().c_str());
    return 1;
  }
  std::printf("trained %d epochs in %.1fs (best valid MRR %.3f @ epoch %d)\n",
              trained->epochs_run, watch.ElapsedSeconds(),
              trained->best_validation_metric, trained->best_epoch);
  double train_seconds = 0.0;
  for (double s : trained->epoch_seconds) train_seconds += s;
  if (train_seconds > 0.0 && trained->epochs_run > 0) {
    const double epochs = double(trained->epochs_run);
    const double triples_per_sec =
        double(data.train.size()) * epochs / train_seconds;
    std::printf(
        "throughput: %.0f triples/s, %.0f examples/s "
        "(%d train threads, %.3fs/epoch)\n",
        triples_per_sec, triples_per_sec * double(1 + negatives),
        int(resolved_train_threads), train_seconds / epochs);
  }

  // ---- Evaluation ------------------------------------------------------
  EvalOptions test_eval;
  test_eval.num_threads = int(threads);
  test_eval.batch_queries = int(eval_batch);
  test_eval.score_precision = score_precision;
  Stopwatch eval_watch;
  const EvalResult result =
      evaluator.Evaluate(**model, data.test, test_eval);
  const double eval_seconds = eval_watch.ElapsedSeconds();
  std::printf("test: %s\n", result.overall.ToString().c_str());
  if (eval_seconds > 0.0 && !data.test.empty()) {
    std::printf("eval throughput: %.0f triples/s (%d threads, eval batch %d)\n",
                double(data.test.size()) / eval_seconds, int(threads),
                ResolveEvalBatchQueries(int(eval_batch), data.num_entities(),
                                        score_precision));
  }
  if (eval_train) {
    EvalOptions train_eval = test_eval;
    train_eval.max_triples = 2000;
    std::printf("train: %s\n",
                evaluator.EvaluateOverall(**model, data.train, train_eval)
                    .ToString()
                    .c_str());
  }
  if (report) {
    const auto stats = AnalyzeRelations(data.train, data.num_entities(),
                                        data.num_relations());
    std::printf("\n%s",
                RenderEvaluationReport(result, stats, data.relations).c_str());
  }

  if (!checkpoint.empty()) {
    KGE_CHECK_OK(SaveModelCheckpoint(**model, checkpoint));
    std::printf("checkpoint written to %s\n", checkpoint.c_str());
  }
  if (!export_tsv.empty()) {
    // Every registered model keeps entity embeddings in block 0.
    ParameterBlock* entity_block = (*model)->Blocks()[0];
    EmbeddingStore view("export", data.num_entities(), 1,
                        int32_t(entity_block->row_dim()));
    std::copy(entity_block->Flat().begin(), entity_block->Flat().end(),
              view.block()->Flat().begin());
    KGE_CHECK_OK(ExportEmbeddingsTsv(view, &data.entities,
                                     export_tsv + "_vectors.tsv",
                                     export_tsv + "_metadata.tsv"));
    std::printf("embeddings exported to %s_{vectors,metadata}.tsv\n",
                export_tsv.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
