// kge_eval: evaluates a trained checkpoint (written by kge_train) on a
// dataset with the filtered link-prediction protocol. The model
// configuration (name, dim budget, seed) must match the training run so
// the checkpoint's block shapes line up — mismatches are detected and
// reported.
//
//   kge_eval --model=complex --dim-budget=400 --data-dir=/data/wn18 ...
//     ... --checkpoint=/tmp/complex.ckpt --report
#include <cstdio>

#include "kge.h"

namespace {

using namespace kge;

int Run(int argc, char** argv) {
  std::string model_name = "complex";
  std::string data_dir;
  std::string generate = "wordnet";
  std::string checkpoint;
  std::string split = "test";
  int64_t entities = 2000;
  int64_t dim_budget = 200;
  int64_t seed = 42;
  int64_t threads = 1;
  int64_t eval_batch = 0;
  int64_t eval_shards = 1;
  bool prune = false;
  std::string eval_precision = "double";
  std::string scale;
  bool report = false;
  bool raw = false;
  std::string dump_ranks;

  FlagParser parser("kge_eval: evaluate a saved model checkpoint");
  parser.AddString("model", &model_name, "model name used at training time");
  parser.AddString("data-dir", &data_dir,
                   "dataset directory; empty = regenerate synthetic");
  parser.AddString("generate", &generate, "wordnet | freebase");
  parser.AddString("checkpoint", &checkpoint, "checkpoint path (required)");
  parser.AddString("split", &split, "which split to rank: test | valid");
  parser.AddInt("entities", &entities, "entities for generated datasets");
  parser.AddString("scale", &scale,
                   "generated-dataset preset: small (3k) | medium (100k) | "
                   "xl (1M); overrides --entities");
  parser.AddInt("dim-budget", &dim_budget, "per-entity parameter budget");
  parser.AddInt("seed", &seed, "seed used at training time");
  parser.AddInt("threads", &threads, "evaluation threads");
  parser.AddInt("eval-batch", &eval_batch,
                "queries per batched ranking call; 1 = per-query GEMV, "
                "0 = auto from entity count (metrics are identical "
                "either way)");
  parser.AddInt("eval-shards", &eval_shards,
                "entity-table shards for the range-scoped ranking path; "
                "> 1 ranks shard by shard instead of materializing "
                "per-query score rows (metrics are identical at every "
                "setting)");
  parser.AddBool("prune", &prune,
                 "skip candidate tiles whose Cauchy-Schwarz score bound "
                 "cannot reach the true score (exact; implies the "
                 "range-scoped path)");
  parser.AddString("eval-precision", &eval_precision,
                   "candidate-scoring tier: double (exact) | float32 | "
                   "int8 (quantized scoring replica; bounded metric "
                   "drift, measured in BENCH_eval.json)");
  parser.AddBool("report", &report, "per-relation breakdown");
  parser.AddBool("raw", &raw, "also print raw (unfiltered) metrics");
  parser.AddString("dump-ranks", &dump_ranks,
                   "write per-triple filtered ranks to this TSV file "
                   "(head, relation, tail, tail_rank, head_rank) for "
                   "error analysis");
  const Status status = parser.Parse(argc, argv);
  if (status.code() == StatusCode::kNotFound) return 0;
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 2;
  }
  if (checkpoint.empty()) {
    std::fprintf(stderr, "--checkpoint is required\n");
    return 2;
  }
  if (!scale.empty()) {
    int32_t preset = 0;
    if (!ParseWordNetScale(scale, &preset)) {
      std::fprintf(stderr, "unknown --scale=%s (small|medium|xl)\n",
                   scale.c_str());
      return 2;
    }
    entities = preset;
  }
  if (eval_shards < 1) {
    std::fprintf(stderr, "--eval-shards must be >= 1\n");
    return 2;
  }

  Dataset data;
  if (!data_dir.empty()) {
    Result<Dataset> loaded = LoadDatasetFromDirectory(
        data_dir, TripleFileFormat::kHeadRelationTail);
    KGE_CHECK_OK(loaded.status());
    data = std::move(*loaded);
  } else if (generate == "wordnet") {
    WordNetLikeOptions options;
    options.num_entities = int32_t(entities);
    options.seed = uint64_t(seed);
    data = GenerateWordNetLike(options);
  } else {
    FreebaseLikeOptions options;
    options.num_entities = int32_t(entities);
    options.seed = uint64_t(seed);
    data = GenerateFreebaseLike(options);
  }

  Result<std::unique_ptr<KgeModel>> model =
      MakeModelByName(model_name, data.num_entities(), data.num_relations(),
                      int32_t(dim_budget), uint64_t(seed));
  KGE_CHECK_OK(model.status());
  const Status load_status = LoadModelCheckpoint(model->get(), checkpoint);
  if (!load_status.ok()) {
    std::fprintf(stderr, "cannot load checkpoint: %s\n",
                 load_status.ToString().c_str());
    return 1;
  }

  const std::vector<Triple>& eval_triples =
      split == "valid" ? data.valid : data.test;
  FilterIndex filter;
  filter.Build(data.train, data.valid, data.test);
  Evaluator evaluator(&filter, data.num_relations());
  EvalOptions options;
  options.num_threads = int(threads);
  options.batch_queries = int(eval_batch);
  options.num_shards = int(eval_shards);
  options.prune = prune;
  if (!ParseScorePrecision(eval_precision, &options.score_precision)) {
    std::fprintf(stderr,
                 "--eval-precision must be double, float32, or int8 "
                 "(got \"%s\")\n",
                 eval_precision.c_str());
    return 2;
  }
  if (!(*model)->SupportsScorePrecision(options.score_precision)) {
    std::fprintf(stderr,
                 "model %s does not support --eval-precision=%s; "
                 "use double\n",
                 (*model)->name().c_str(), eval_precision.c_str());
    return 2;
  }
  const int resolved_batch =
      ResolveEvalBatchQueries(options.batch_queries, data.num_entities(),
                              options.score_precision, options.num_shards);
  Stopwatch eval_watch;
  const EvalResult result =
      evaluator.Evaluate(**model, eval_triples, options);
  const double eval_seconds = eval_watch.ElapsedSeconds();
  std::printf("%s (filtered): %s\n", split.c_str(),
              result.overall.ToString().c_str());
  if (eval_seconds > 0.0 && !eval_triples.empty()) {
    std::printf(
        "eval throughput: %.0f triples/s (%zu triples, %d threads, "
        "eval batch %d, precision %s, shards %d%s)\n",
        double(eval_triples.size()) / eval_seconds, eval_triples.size(),
        int(threads), resolved_batch,
        ScorePrecisionName(options.score_precision), options.num_shards,
        options.prune ? ", pruned" : "");
  }
  if (result.scan_stats.tiles_total > 0) {
    std::printf("pruning: %llu / %llu tiles skipped (%.1f%%)\n",
                (unsigned long long)result.scan_stats.tiles_skipped,
                (unsigned long long)result.scan_stats.tiles_total,
                100.0 * double(result.scan_stats.tiles_skipped) /
                    double(result.scan_stats.tiles_total));
  }
  if (raw) {
    EvalOptions raw_options = options;
    raw_options.filtered = false;
    std::printf("%s (raw):      %s\n", split.c_str(),
                evaluator.EvaluateOverall(**model, eval_triples, raw_options)
                    .ToString()
                    .c_str());
  }
  if (report) {
    const auto stats = AnalyzeRelations(data.train, data.num_entities(),
                                        data.num_relations());
    std::printf("\n%s",
                RenderEvaluationReport(result, stats, data.relations).c_str());
  }
  if (!dump_ranks.empty()) {
    std::string tsv = "head\trelation\ttail\ttail_rank\thead_rank\n";
    std::vector<float> scores(size_t(data.num_entities()));
    for (const Triple& t : eval_triples) {
      (*model)->ScoreAllTails(t.head, t.relation, scores);
      const double tail_rank = evaluator.RankTail(t, scores, true);
      (*model)->ScoreAllHeads(t.tail, t.relation, scores);
      const double head_rank = evaluator.RankHead(t, scores, true);
      tsv += StrFormat("%s\t%s\t%s\t%.1f\t%.1f\n",
                       data.entities.NameOf(t.head).c_str(),
                       data.relations.NameOf(t.relation).c_str(),
                       data.entities.NameOf(t.tail).c_str(), tail_rank,
                       head_rank);
    }
    KGE_CHECK_OK(WriteStringToFile(dump_ranks, tsv));
    std::printf("per-triple ranks written to %s\n", dump_ranks.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
