// kge_query: command-line client for kge_serve. Sends one or more
// top-k link-prediction requests over the binary protocol and prints
// the responses. Exit code 0 iff every response carried the expected
// status (--expect-status, default "ok") — smoke scripts use this to
// assert SHED/INVALID behavior as well as the happy path.
//
//   kge_query --port=7071 --side=tail --entity=12 --relation=3 --topk=5
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "kge.h"

namespace {

using namespace kge;

int Run(int argc, char** argv) {
  std::string side = "tail";
  std::string expect_status = "ok";
  int64_t port = 0;
  int64_t entity = 0;
  int64_t relation = 0;
  int64_t topk = 10;
  int64_t deadline_ms = 0;
  int64_t count = 1;
  bool quiet = false;

  FlagParser parser("kge_query: query a running kge_serve instance");
  parser.AddInt("port", &port, "kge_serve port on loopback (required)");
  parser.AddString("side", &side, "tail | head");
  parser.AddInt("entity", &entity, "known entity of the partial triple");
  parser.AddInt("relation", &relation, "relation id");
  parser.AddInt("topk", &topk, "results to request");
  parser.AddInt("deadline-ms", &deadline_ms, "0 = server default");
  parser.AddInt("count", &count, "send this many identical requests");
  parser.AddString("expect-status", &expect_status,
                   "exit 0 only if every response has this status: ok | "
                   "shed | invalid | error | deadline_exceeded | "
                   "shutting_down");
  parser.AddBool("quiet", &quiet, "suppress per-result output");
  const Status status = parser.Parse(argc, argv);
  if (status.code() == StatusCode::kNotFound) return 0;
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 2;
  }
  if (port <= 0) {
    std::fprintf(stderr, "--port is required\n");
    return 2;
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::fprintf(stderr, "socket() failed\n");
    return 1;
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(uint16_t(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    std::fprintf(stderr, "cannot connect to 127.0.0.1:%d\n", int(port));
    ::close(fd);
    return 1;
  }

  ServeRequest request;
  request.side = side == "head" ? QuerySide::kHead : QuerySide::kTail;
  request.entity = EntityId(entity);
  request.relation = RelationId(relation);
  request.k = uint32_t(topk > 0 ? topk : 0);
  request.deadline_ms = uint32_t(deadline_ms);

  std::vector<uint8_t> frame(kRequestFrameBytes);
  std::vector<uint8_t> response(MaxResponseFrameBytes(kServeMaxTopK));
  std::vector<ScoredEntity> results;
  int mismatches = 0;
  for (int64_t i = 0; i < count; ++i) {
    request.request_id = uint64_t(i) + 1;
    const size_t encoded = EncodeServeRequest(request, frame);
    if (encoded == 0 || !WriteAll(fd, frame.data(), encoded)) {
      std::fprintf(stderr, "send failed\n");
      ::close(fd);
      return 1;
    }
    if (!ReadExact(fd, response.data(), kFrameHeaderBytes)) {
      std::fprintf(stderr, "connection closed before response\n");
      ::close(fd);
      return 1;
    }
    uint32_t magic = 0;
    uint32_t body_len = 0;
    DecodeFrameHeader(
        std::span<const uint8_t>(response.data(), kFrameHeaderBytes), &magic,
        &body_len);
    if (magic != kServeResponseMagic ||
        body_len > response.size() - kFrameHeaderBytes) {
      std::fprintf(stderr, "malformed response frame\n");
      ::close(fd);
      return 1;
    }
    if (!ReadExact(fd, response.data() + kFrameHeaderBytes, body_len)) {
      std::fprintf(stderr, "truncated response\n");
      ::close(fd);
      return 1;
    }
    ServeResponseHeader header;
    results.clear();
    const Status decoded = DecodeServeResponseFrame(
        std::span<const uint8_t>(response.data(),
                                 kFrameHeaderBytes + body_len),
        &header, &results);
    if (!decoded.ok()) {
      std::fprintf(stderr, "bad response: %s\n", decoded.ToString().c_str());
      ::close(fd);
      return 1;
    }
    const char* status_name = ServeStatusCodeName(header.status);
    if (expect_status != status_name) ++mismatches;
    if (!quiet) {
      std::printf("status=%s tier=%s snapshot=%llu count=%u\n", status_name,
                  ScorePrecisionName(header.tier),
                  static_cast<unsigned long long>(header.snapshot_version),
                  header.count);
      for (const ScoredEntity& entry : results) {
        std::printf("  entity=%d score=%.6f\n", entry.entity,
                    double(entry.score));
      }
    }
  }
  ::close(fd);
  if (mismatches > 0) {
    std::fprintf(stderr, "%d/%lld responses did not have status \"%s\"\n",
                 mismatches, static_cast<long long>(count),
                 expect_status.c_str());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
