// kge_datagen: materializes the synthetic benchmark datasets to standard
// WN18-format text files (head<TAB>relation<TAB>tail) so they can be
// inspected, versioned, or fed to other KGE implementations, and prints
// the relation structure analysis used to verify the pattern mix.
//
//   kge_datagen --family=wordnet --entities=5000 --out=/tmp/wn-like
#include <sys/stat.h>

#include <cstdio>

#include "kge.h"

namespace {

using namespace kge;

int Run(int argc, char** argv) {
  std::string family = "wordnet";
  std::string out_dir;
  std::string scale;
  int64_t entities = 2000;
  int64_t seed = 42;
  bool analyze = true;
  FlagParser parser("kge_datagen: generate synthetic KGE benchmarks");
  parser.AddString("family", &family, "wordnet | freebase");
  parser.AddString("out", &out_dir,
                   "output directory (created if missing); empty = analyze "
                   "only");
  parser.AddInt("entities", &entities, "number of entities");
  parser.AddString("scale", &scale,
                   "entity-count preset: small (3k) | medium (100k) | xl "
                   "(1M); overrides --entities");
  parser.AddInt("seed", &seed, "random seed");
  parser.AddBool("analyze", &analyze, "print relation structure analysis");
  const Status status = parser.Parse(argc, argv);
  if (status.code() == StatusCode::kNotFound) return 0;
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 2;
  }
  if (!scale.empty()) {
    int32_t preset = 0;
    if (!ParseWordNetScale(scale, &preset)) {
      std::fprintf(stderr, "unknown --scale=%s (small|medium|xl)\n",
                   scale.c_str());
      return 2;
    }
    entities = preset;
  }

  Dataset data;
  if (family == "wordnet") {
    WordNetLikeOptions options;
    options.num_entities = int32_t(entities);
    options.seed = uint64_t(seed);
    data = GenerateWordNetLike(options);
  } else if (family == "freebase") {
    FreebaseLikeOptions options;
    options.num_entities = int32_t(entities);
    options.seed = uint64_t(seed);
    data = GenerateFreebaseLike(options);
  } else {
    std::fprintf(stderr, "unknown --family=%s\n", family.c_str());
    return 2;
  }
  KGE_CHECK_OK(data.Validate());
  std::printf("generated: %s\n", data.StatsString().c_str());

  if (analyze) {
    std::vector<Triple> all = data.train;
    all.insert(all.end(), data.valid.begin(), data.valid.end());
    all.insert(all.end(), data.test.begin(), data.test.end());
    const auto stats =
        AnalyzeRelations(all, data.num_entities(), data.num_relations());
    std::printf("\nrelation structure (tph/hpt = mean tails-per-head / "
                "heads-per-tail; sym = symmetry; inv = best inverse)\n");
    std::printf("%s", RelationStatsTable(stats).c_str());
    for (const RelationStats& s : stats) {
      std::printf("rel %-3d = %s\n", s.relation,
                  data.relations.NameOf(s.relation).c_str());
    }
  }

  if (!out_dir.empty()) {
    ::mkdir(out_dir.c_str(), 0755);
    KGE_CHECK_OK(SaveDatasetToDirectory(
        out_dir, TripleFileFormat::kHeadRelationTail, data));
    std::printf("\nwrote %s/{train,valid,test}.txt\n", out_dir.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
