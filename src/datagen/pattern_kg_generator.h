// PatternKgGenerator: synthesizes a knowledge graph whose relations follow
// prescribed algebraic patterns (symmetric, antisymmetric, inverse pairs,
// compositions). This is the controllable workload for capacity and
// generalization experiments: the paper's findings hinge on exactly these
// patterns (DistMult cannot model asymmetry, CP cannot exploit inverse
// structure without augmentation).
#ifndef KGE_DATAGEN_PATTERN_KG_GENERATOR_H_
#define KGE_DATAGEN_PATTERN_KG_GENERATOR_H_

#include <string>
#include <vector>

#include "kg/dataset.h"
#include "kg/triple.h"

namespace kge {

enum class RelationPattern {
  // Unordered pairs; both directions always present.
  kSymmetric,
  // Ordered pairs; the reverse direction is never present.
  kAntisymmetric,
  // Ordered pairs under relation r; the reverses are present under the
  // paired relation r+1 (declared by the same spec).
  kInversePair,
  // r composes two antisymmetric "step" relations over a chain structure
  // (grandparent-style): r(x, z) holds when step(x, y) and step(y, z).
  kComposition,
};

struct PatternRelationSpec {
  RelationPattern pattern = RelationPattern::kSymmetric;
  // Number of base pairs to generate (an inverse pair spec consumes two
  // relation ids and yields 2 * num_pairs triples).
  int num_pairs = 0;
  std::string name_prefix;  // optional, for vocabulary names
};

struct PatternKgOptions {
  int32_t num_entities = 1000;
  std::vector<PatternRelationSpec> relations;
  uint64_t seed = 13;
};

// Generates the triples (no splitting). Relation ids are assigned in spec
// order; a kInversePair spec takes ids (r, r+1), kComposition takes
// (step, r) = (r, r+1) as well. Entity and relation names are synthesized
// into `dataset` if it is non-null.
std::vector<Triple> GeneratePatternKg(const PatternKgOptions& options,
                                      Dataset* dataset);

// Total relation ids consumed by the spec list.
int32_t CountPatternRelations(const std::vector<PatternRelationSpec>& specs);

}  // namespace kge

#endif  // KGE_DATAGEN_PATTERN_KG_GENERATOR_H_
