#include "datagen/split.h"

#include <algorithm>
#include <unordered_map>

#include "util/check.h"

namespace kge {

SplitResult SplitTriples(std::vector<Triple> all, const SplitOptions& options) {
  KGE_CHECK(options.valid_fraction >= 0.0 && options.test_fraction >= 0.0);
  KGE_CHECK(options.valid_fraction + options.test_fraction < 1.0);

  // Deduplicate.
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());

  Rng rng(options.seed);
  rng.Shuffle(&all);

  // Occurrence counts over the not-yet-held-out pool.
  std::unordered_map<EntityId, int> entity_count;
  std::unordered_map<RelationId, int> relation_count;
  for (const Triple& t : all) {
    ++entity_count[t.head];
    ++entity_count[t.tail];
    ++relation_count[t.relation];
  }

  const size_t want_valid =
      static_cast<size_t>(double(all.size()) * options.valid_fraction);
  const size_t want_test =
      static_cast<size_t>(double(all.size()) * options.test_fraction);

  SplitResult result;
  result.valid.reserve(want_valid);
  result.test.reserve(want_test);
  result.train.reserve(all.size());

  for (const Triple& t : all) {
    const bool need_more =
        result.valid.size() < want_valid || result.test.size() < want_test;
    // A self-loop triple (h == h) contributes 2 to its entity's count, so
    // the >= 2 checks below still guarantee a remaining train occurrence.
    const bool removable = need_more && entity_count[t.head] >= 2 &&
                           entity_count[t.tail] >= 2 &&
                           relation_count[t.relation] >= 2;
    if (removable) {
      --entity_count[t.head];
      --entity_count[t.tail];
      --relation_count[t.relation];
      if (result.valid.size() < want_valid) {
        result.valid.push_back(t);
      } else {
        result.test.push_back(t);
      }
    } else {
      result.train.push_back(t);
    }
  }
  return result;
}

}  // namespace kge
