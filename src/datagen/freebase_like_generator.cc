#include "datagen/freebase_like_generator.h"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "datagen/split.h"
#include "util/check.h"
#include "util/random.h"
#include "util/string_utils.h"

namespace kge {
namespace {

enum EntityType {
  kPerson = 0,
  kFilm,
  kLocation,
  kOrganization,
  kGenre,
  kNumTypes,
};

const char* const kTypeNames[kNumTypes] = {"person", "film", "location",
                                           "organization", "genre"};

// Relation schema: subject type, object type, expected out-degree of the
// subject side, whether the object side is hub-like (few popular objects
// attract most edges).
struct RelationSpec {
  const char* name;
  EntityType subject;
  EntityType object;
  double subject_participation;  // fraction of subject entities with edges
  int max_out_degree;
  bool hub_objects;
};

constexpr RelationSpec kSchema[] = {
    {"/film/director", kPerson, kFilm, 0.10, 4, false},
    {"/film/actor", kPerson, kFilm, 0.50, 6, false},
    {"/film/producer", kPerson, kFilm, 0.08, 3, false},
    {"/film/genre", kFilm, kGenre, 0.90, 3, true},
    {"/film/country", kFilm, kLocation, 0.80, 1, true},
    {"/person/born_in", kPerson, kLocation, 0.85, 1, true},
    {"/person/lives_in", kPerson, kLocation, 0.60, 2, true},
    {"/person/nationality", kPerson, kLocation, 0.80, 1, true},
    {"/person/spouse", kPerson, kPerson, 0.20, 1, false},  // symmetric-ish
    {"/person/works_for", kPerson, kOrganization, 0.40, 2, true},
    {"/organization/headquarters", kOrganization, kLocation, 0.90, 1, true},
    {"/location/contains", kLocation, kLocation, 0.30, 4, false},
    {"/organization/founded_by", kOrganization, kPerson, 0.30, 2, false},
    {"/film/sequel", kFilm, kFilm, 0.10, 1, false},
    {"/person/award", kPerson, kGenre, 0.15, 2, true},
};

}  // namespace

Dataset GenerateFreebaseLike(const FreebaseLikeOptions& options) {
  KGE_CHECK(options.num_entities >= 200);
  Rng rng(options.seed);
  Dataset dataset;

  // Type partition: 45% person, 25% film, 15% location, 10% org, 5% genre.
  const double type_fractions[kNumTypes] = {0.45, 0.25, 0.15, 0.10, 0.05};
  std::vector<std::vector<EntityId>> by_type(kNumTypes);
  {
    int32_t next = 0;
    for (int type = 0; type < kNumTypes; ++type) {
      int32_t count = std::max<int32_t>(
          5, int32_t(type_fractions[type] * double(options.num_entities)));
      if (type == kNumTypes - 1) count = options.num_entities - next;
      for (int32_t i = 0; i < count && next < options.num_entities; ++i) {
        const EntityId id = dataset.entities.GetOrAdd(
            StrFormat("/m/%s_%05d", kTypeNames[type], i));
        by_type[size_t(type)].push_back(id);
        ++next;
      }
    }
  }

  std::vector<Triple> triples;
  int32_t num_relations = 0;
  for (const RelationSpec& spec : kSchema) {
    const RelationId forward = dataset.relations.GetOrAdd(spec.name);
    ++num_relations;
    const bool has_inverse = rng.NextBool(options.inverse_fraction);
    RelationId inverse = -1;
    if (has_inverse) {
      inverse =
          dataset.relations.GetOrAdd(std::string(spec.name) + "_inverse");
      ++num_relations;
    }
    const auto& subjects = by_type[size_t(spec.subject)];
    const auto& objects = by_type[size_t(spec.object)];
    // Hub-object relations draw objects from a small popular subset with
    // a squared-uniform bias.
    const size_t hub_pool =
        spec.hub_objects ? std::max<size_t>(3, objects.size() / 10)
                         : objects.size();
    std::unordered_set<uint64_t> seen;
    for (EntityId subject : subjects) {
      if (!rng.NextBool(spec.subject_participation)) continue;
      const int degree = 1 + int(rng.NextBounded(uint64_t(spec.max_out_degree)));
      for (int edge = 0; edge < degree; ++edge) {
        const double u = rng.NextDouble();
        const size_t index = spec.hub_objects
                                 ? size_t(double(hub_pool) * u * u)
                                 : size_t(rng.NextBounded(objects.size()));
        const EntityId object = objects[std::min(index, objects.size() - 1)];
        if (object == subject) continue;
        const uint64_t key =
            (uint64_t(uint32_t(subject)) << 32) | uint32_t(object);
        if (!seen.insert(key).second) continue;
        triples.push_back({subject, object, forward});
        if (has_inverse) triples.push_back({object, subject, inverse});
      }
    }
  }
  KGE_CHECK(num_relations == dataset.num_relations());

  SplitOptions split_options;
  split_options.valid_fraction = options.valid_fraction;
  split_options.test_fraction = options.test_fraction;
  split_options.seed = rng.NextUint64();
  SplitResult split = SplitTriples(std::move(triples), split_options);
  dataset.train = std::move(split.train);
  dataset.valid = std::move(split.valid);
  dataset.test = std::move(split.test);
  return dataset;
}

}  // namespace kge
