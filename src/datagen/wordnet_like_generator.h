// WordNetLikeGenerator: the WN18 stand-in (see DESIGN.md §2). Builds a
// deterministic synthetic lexical knowledge graph with the same relation
// inventory and pattern mix as WN18:
//
//   * a hypernym taxonomy forest with the exact-inverse hyponym relation,
//   * meronymy inverse pairs (member/part/substance-style),
//   * instance hypernymy from leaves,
//   * symmetric relations (similar_to, verb_group,
//     derivationally_related_form),
//   * a mostly-symmetric also_see,
//   * hub-structured N-1 domain relations with their 1-N inverses.
//
// The crucial WN18 property this reproduces is *inverse leakage*: for
// nearly every pair related by an inverse-paired relation, both directions
// exist in the graph, so after a random split a test triple's inverse is
// almost always in train. Models able to exploit inverse structure
// (ComplEx, CPh, the quaternion model) excel; DistMult (symmetric) and CP
// (decoupled roles) cannot — which is exactly the paper's Table 2 story.
#ifndef KGE_DATAGEN_WORDNET_LIKE_GENERATOR_H_
#define KGE_DATAGEN_WORDNET_LIKE_GENERATOR_H_

#include <string_view>
#include <vector>

#include "datagen/split.h"
#include "kg/dataset.h"

namespace kge {

struct WordNetLikeOptions {
  // Number of synset entities. WN18 has 40,943; the default is scaled to
  // keep full grid training practical on one core. The generator is
  // reserve-based (one pre-sized pass per relation family, ~5.5 triples
  // per entity), so the million-entity tier builds in one streaming
  // sweep without rehash/regrow churn — see kWordNetScale* and the
  // tools' --scale presets.
  int32_t num_entities = 3000;
  // Split fractions mirror WN18 (5,000 / 141,442 each for valid/test).
  double valid_fraction = 0.035;
  double test_fraction = 0.035;
  // WN18RR-style mode: drop the inverse direction of every inverse-paired
  // relation (hyponym, holonym, has_part, instance_hyponym, and the
  // domain_of relations) before splitting, removing the inverse leakage
  // that makes WN18 easy. Symmetric relations are kept, as in the real
  // WN18RR. Relation ids keep the 18-relation numbering; the dropped
  // relations simply have no triples.
  bool remove_inverse_leakage = false;
  uint64_t seed = 42;
};

// Relation ids assigned by the generator (18 relations, like WN18).
enum WordNetRelation : RelationId {
  kHypernym = 0,
  kHyponym,
  kMemberMeronym,
  kMemberHolonym,
  kPartOf,
  kHasPart,
  kInstanceHypernym,
  kInstanceHyponym,
  kSimilarTo,
  kVerbGroup,
  kDerivationallyRelatedForm,
  kAlsoSee,
  kMemberOfDomainTopic,
  kSynsetDomainTopicOf,
  kMemberOfDomainRegion,
  kSynsetDomainRegionOf,
  kMemberOfDomainUsage,
  kSynsetDomainUsageOf,
  kNumWordNetRelations,
};

// Entity-count presets behind the tools' --scale flag: `small` is the
// grid-training default, `medium` the 100k serving-smoke tier, `xl` the
// million-entity ranking tier that exercises the sharded/pruned paths.
inline constexpr int32_t kWordNetScaleSmall = 3000;
inline constexpr int32_t kWordNetScaleMedium = 100000;
inline constexpr int32_t kWordNetScaleXl = 1000000;

// Parses a --scale preset name ("small" | "medium" | "xl") into its
// entity count. Returns false on an unknown name.
bool ParseWordNetScale(std::string_view text, int32_t* num_entities);

// Generates the dataset (vocabularies + split triples). Deterministic in
// `options.seed`.
Dataset GenerateWordNetLike(const WordNetLikeOptions& options);

}  // namespace kge

#endif  // KGE_DATAGEN_WORDNET_LIKE_GENERATOR_H_
