// FreebaseLikeGenerator: a denser, typed synthetic knowledge graph in the
// style of FB15k (the other standard benchmark family the paper's line
// of work evaluates on). Compared with the WordNet-like graph it has:
//
//   * typed entities (person / film / location / organization / genre),
//   * many more relations with type signatures (director_of, acted_in,
//     born_in, located_in, has_genre, ...),
//   * heavier N-N structure and hub entities,
//   * a configurable fraction of relations with explicit inverses
//     (FB15k's well-known inverse leakage).
//
// Used by tests and benches to check that the paper's model ordering is
// not an artifact of the WordNet-style taxonomy shape.
#ifndef KGE_DATAGEN_FREEBASE_LIKE_GENERATOR_H_
#define KGE_DATAGEN_FREEBASE_LIKE_GENERATOR_H_

#include "kg/dataset.h"

namespace kge {

struct FreebaseLikeOptions {
  int32_t num_entities = 3000;
  // Fraction of relations that get a paired inverse relation.
  double inverse_fraction = 0.6;
  double valid_fraction = 0.04;
  double test_fraction = 0.04;
  uint64_t seed = 77;
};

Dataset GenerateFreebaseLike(const FreebaseLikeOptions& options);

}  // namespace kge

#endif  // KGE_DATAGEN_FREEBASE_LIKE_GENERATOR_H_
