#include "datagen/pattern_kg_generator.h"

#include <unordered_set>

#include "util/check.h"
#include "util/random.h"
#include "util/string_utils.h"

namespace kge {
namespace {

// Samples a distinct ordered entity pair.
std::pair<EntityId, EntityId> SamplePair(int32_t num_entities, Rng* rng) {
  const uint64_t bound = uint64_t(num_entities);
  const auto a = static_cast<EntityId>(rng->NextBounded(bound));
  EntityId b = a;
  while (b == a) b = static_cast<EntityId>(rng->NextBounded(bound));
  return {a, b};
}

uint64_t PairKey(EntityId a, EntityId b) {
  return (uint64_t(uint32_t(a)) << 32) | uint32_t(b);
}

}  // namespace

int32_t CountPatternRelations(const std::vector<PatternRelationSpec>& specs) {
  int32_t count = 0;
  for (const PatternRelationSpec& spec : specs) {
    count += (spec.pattern == RelationPattern::kInversePair ||
              spec.pattern == RelationPattern::kComposition)
                 ? 2
                 : 1;
  }
  return count;
}

std::vector<Triple> GeneratePatternKg(const PatternKgOptions& options,
                                      Dataset* dataset) {
  KGE_CHECK(options.num_entities > 2);
  Rng rng(options.seed);
  std::vector<Triple> triples;

  if (dataset != nullptr) {
    for (int32_t e = 0; e < options.num_entities; ++e) {
      dataset->entities.GetOrAdd(StrFormat("e%05d", e));
    }
  }

  RelationId next_relation = 0;
  auto add_relation_name = [&](const PatternRelationSpec& spec,
                               const char* suffix) {
    if (dataset == nullptr) return;
    const std::string base =
        spec.name_prefix.empty() ? StrFormat("rel%d", next_relation)
                                 : spec.name_prefix;
    dataset->relations.GetOrAdd(base + suffix);
  };

  for (const PatternRelationSpec& spec : options.relations) {
    KGE_CHECK(spec.num_pairs >= 0);
    switch (spec.pattern) {
      case RelationPattern::kSymmetric: {
        add_relation_name(spec, "");
        const RelationId r = next_relation++;
        std::unordered_set<uint64_t> seen;
        while (seen.size() < static_cast<size_t>(spec.num_pairs)) {
          auto [a, b] = SamplePair(options.num_entities, &rng);
          if (a > b) std::swap(a, b);
          if (!seen.insert(PairKey(a, b)).second) continue;
          triples.push_back({a, b, r});
          triples.push_back({b, a, r});
        }
        break;
      }
      case RelationPattern::kAntisymmetric: {
        add_relation_name(spec, "");
        const RelationId r = next_relation++;
        std::unordered_set<uint64_t> seen;
        while (seen.size() < static_cast<size_t>(spec.num_pairs)) {
          auto [a, b] = SamplePair(options.num_entities, &rng);
          // Direct both edges low id -> high id so the reverse is never
          // generated, keeping the relation perfectly antisymmetric.
          if (a > b) std::swap(a, b);
          if (!seen.insert(PairKey(a, b)).second) continue;
          triples.push_back({a, b, r});
        }
        break;
      }
      case RelationPattern::kInversePair: {
        add_relation_name(spec, "");
        const RelationId r = next_relation++;
        add_relation_name(spec, "_inv");
        const RelationId r_inv = next_relation++;
        std::unordered_set<uint64_t> seen;
        while (seen.size() < static_cast<size_t>(spec.num_pairs)) {
          auto [a, b] = SamplePair(options.num_entities, &rng);
          if (a > b) std::swap(a, b);
          if (!seen.insert(PairKey(a, b)).second) continue;
          triples.push_back({a, b, r});
          triples.push_back({b, a, r_inv});
        }
        break;
      }
      case RelationPattern::kComposition: {
        add_relation_name(spec, "_step");
        const RelationId step = next_relation++;
        add_relation_name(spec, "");
        const RelationId composed = next_relation++;
        // Random chains x -> y -> z; step edges plus the composed edge.
        std::unordered_set<uint64_t> seen;
        while (seen.size() < static_cast<size_t>(spec.num_pairs)) {
          const uint64_t bound = uint64_t(options.num_entities);
          const auto x = static_cast<EntityId>(rng.NextBounded(bound));
          const auto y = static_cast<EntityId>(rng.NextBounded(bound));
          const auto z = static_cast<EntityId>(rng.NextBounded(bound));
          if (x == y || y == z || x == z) continue;
          if (!seen.insert(PairKey(x, z)).second) continue;
          triples.push_back({x, y, step});
          triples.push_back({y, z, step});
          triples.push_back({x, z, composed});
        }
        break;
      }
    }
  }
  return triples;
}

}  // namespace kge
