#include "datagen/wordnet_like_generator.h"

#include <algorithm>
#include <unordered_set>

#include "util/check.h"
#include "util/random.h"
#include "util/string_utils.h"

namespace kge {
namespace {

const char* const kRelationNames[kNumWordNetRelations] = {
    "_hypernym",
    "_hyponym",
    "_member_meronym",
    "_member_holonym",
    "_part_of",
    "_has_part",
    "_instance_hypernym",
    "_instance_hyponym",
    "_similar_to",
    "_verb_group",
    "_derivationally_related_form",
    "_also_see",
    "_member_of_domain_topic",
    "_synset_domain_topic_of",
    "_member_of_domain_region",
    "_synset_domain_region_of",
    "_member_of_domain_usage",
    "_synset_domain_usage_of",
};

uint64_t PairKey(EntityId a, EntityId b) {
  return (uint64_t(uint32_t(a)) << 32) | uint32_t(b);
}

}  // namespace

bool ParseWordNetScale(std::string_view text, int32_t* num_entities) {
  KGE_CHECK(num_entities != nullptr);
  if (text == "small") {
    *num_entities = kWordNetScaleSmall;
  } else if (text == "medium") {
    *num_entities = kWordNetScaleMedium;
  } else if (text == "xl") {
    *num_entities = kWordNetScaleXl;
  } else {
    return false;
  }
  return true;
}

Dataset GenerateWordNetLike(const WordNetLikeOptions& options) {
  KGE_CHECK(options.num_entities >= 100);
  const int32_t n = options.num_entities;
  Rng rng(options.seed);

  Dataset dataset;
  dataset.entities.Reserve(n);
  for (int32_t e = 0; e < n; ++e) {
    // Names shaped like WN18 synset offsets.
    dataset.entities.GetOrAdd(StrFormat("%08d", e));
  }
  for (const char* name : kRelationNames) dataset.relations.GetOrAdd(name);

  std::vector<Triple> triples;
  // One up-front reservation covers every relation family below: the
  // emission rates sum to ~5.3 triples per entity, so 6n never regrows
  // — at the xl (1M-entity) tier that is one 72 MB block instead of a
  // realloc-and-copy ladder through it.
  triples.reserve(size_t(n) * 6);
  auto emit_pair = [&triples](EntityId a, EntityId b, RelationId r,
                              RelationId r_inv) {
    triples.push_back({a, b, r});
    triples.push_back({b, a, r_inv});
  };

  // ---- Taxonomy forest: hypernym / hyponym -------------------------------
  // Entities 0..num_roots-1 are roots; every other entity e picks a parent
  // uniformly among lower-indexed entities, biased toward small indexes to
  // get a WordNet-ish shallow-fat hierarchy with hub parents.
  const int32_t num_roots = std::max<int32_t>(4, n / 200);
  std::vector<EntityId> parent(static_cast<size_t>(n), -1);
  for (int32_t e = num_roots; e < n; ++e) {
    // Square the uniform draw to bias toward low ids (earlier = higher in
    // the hierarchy = more children).
    const double u = rng.NextDouble();
    const auto p = static_cast<EntityId>(double(e) * u * u);
    parent[static_cast<size_t>(e)] = std::min<EntityId>(p, e - 1);
    emit_pair(e, parent[static_cast<size_t>(e)], kHypernym, kHyponym);
  }

  // Leaves = entities that are nobody's parent.
  std::vector<bool> is_parent(static_cast<size_t>(n), false);
  for (int32_t e = num_roots; e < n; ++e)
    is_parent[static_cast<size_t>(parent[static_cast<size_t>(e)])] = true;
  std::vector<EntityId> leaves;
  std::vector<EntityId> internal;
  for (int32_t e = 0; e < n; ++e) {
    if (is_parent[static_cast<size_t>(e)]) {
      internal.push_back(e);
    } else {
      leaves.push_back(e);
    }
  }
  KGE_CHECK(!internal.empty() && !leaves.empty());

  auto random_of = [&rng](const std::vector<EntityId>& pool) {
    return pool[rng.NextBounded(pool.size())];
  };

  // ---- Meronymy: member_meronym/member_holonym, part_of/has_part ---------
  // Whole -> member links roughly follow the hierarchy: a whole entity
  // links to a few entities below it in index order (antisymmetric by
  // construction, moderate 1-N structure).
  {
    std::unordered_set<uint64_t> seen;
    const int want = int(0.35 * n);
    seen.reserve(size_t(want));
    while (int(seen.size()) < want) {
      const EntityId whole =
          static_cast<EntityId>(rng.NextBounded(uint64_t(n)));
      if (whole + 1 >= n) continue;
      const EntityId member = static_cast<EntityId>(
          whole + 1 + EntityId(rng.NextBounded(uint64_t(n - whole - 1))));
      if (!seen.insert(PairKey(whole, member)).second) continue;
      emit_pair(whole, member, kMemberMeronym, kMemberHolonym);
    }
  }
  {
    std::unordered_set<uint64_t> seen;
    const int want = int(0.25 * n);
    seen.reserve(size_t(want));
    while (int(seen.size()) < want) {
      const EntityId part = static_cast<EntityId>(rng.NextBounded(uint64_t(n)));
      if (part + 1 >= n) continue;
      const EntityId whole = static_cast<EntityId>(
          part + 1 + EntityId(rng.NextBounded(uint64_t(n - part - 1))));
      if (!seen.insert(PairKey(part, whole)).second) continue;
      emit_pair(part, whole, kPartOf, kHasPart);
    }
  }

  // ---- Instance hypernymy: leaf instances of internal classes ------------
  {
    std::unordered_set<uint64_t> seen;
    const int want = int(0.06 * n);
    seen.reserve(size_t(want));
    while (int(seen.size()) < want) {
      const EntityId instance = random_of(leaves);
      const EntityId cls = random_of(internal);
      if (instance == cls) continue;
      if (!seen.insert(PairKey(instance, cls)).second) continue;
      emit_pair(instance, cls, kInstanceHypernym, kInstanceHyponym);
    }
  }

  // ---- Symmetric relations ------------------------------------------------
  // similar_to / verb_group: clusters of 3..5 entities, fully connected.
  auto emit_symmetric_clusters = [&](RelationId r, int num_clusters) {
    for (int c = 0; c < num_clusters; ++c) {
      const int cluster_size = 3 + int(rng.NextBounded(3));
      std::vector<EntityId> members;
      std::unordered_set<EntityId> used;
      while (int(members.size()) < cluster_size) {
        const EntityId e = static_cast<EntityId>(rng.NextBounded(uint64_t(n)));
        if (used.insert(e).second) members.push_back(e);
      }
      for (size_t i = 0; i < members.size(); ++i) {
        for (size_t j = i + 1; j < members.size(); ++j) {
          emit_pair(members[i], members[j], r, r);
        }
      }
    }
  };
  emit_symmetric_clusters(kSimilarTo, int(0.03 * n));
  emit_symmetric_clusters(kVerbGroup, int(0.015 * n));

  // derivationally_related_form: the big symmetric relation of WN18 —
  // random matching pairs, both directions.
  {
    std::unordered_set<uint64_t> seen;
    const int want = int(0.45 * n);
    seen.reserve(size_t(want));
    while (int(seen.size()) < want) {
      EntityId a = static_cast<EntityId>(rng.NextBounded(uint64_t(n)));
      EntityId b = static_cast<EntityId>(rng.NextBounded(uint64_t(n)));
      if (a == b) continue;
      if (a > b) std::swap(a, b);
      if (!seen.insert(PairKey(a, b)).second) continue;
      emit_pair(a, b, kDerivationallyRelatedForm, kDerivationallyRelatedForm);
    }
  }

  // also_see: mostly symmetric (≈70% of pairs get both directions).
  {
    std::unordered_set<uint64_t> seen;
    const int want = int(0.1 * n);
    seen.reserve(size_t(want));
    while (int(seen.size()) < want) {
      EntityId a = static_cast<EntityId>(rng.NextBounded(uint64_t(n)));
      EntityId b = static_cast<EntityId>(rng.NextBounded(uint64_t(n)));
      if (a == b) continue;
      if (!seen.insert(PairKey(a, b)).second) continue;
      triples.push_back({a, b, kAlsoSee});
      if (rng.NextBool(0.7)) triples.push_back({b, a, kAlsoSee});
    }
  }

  // ---- Domain relations: hub-structured N-1 with 1-N inverses -------------
  struct DomainSpec {
    RelationId member_of;
    RelationId domain_of;
    double membership_rate;
    int num_hubs;
  };
  const DomainSpec domains[] = {
      {kMemberOfDomainTopic, kSynsetDomainTopicOf, 0.12,
       std::max(3, n / 150)},
      {kMemberOfDomainRegion, kSynsetDomainRegionOf, 0.04,
       std::max(2, n / 400)},
      {kMemberOfDomainUsage, kSynsetDomainUsageOf, 0.03,
       std::max(2, n / 500)},
  };
  for (const DomainSpec& spec : domains) {
    std::vector<EntityId> hubs;
    std::unordered_set<EntityId> hub_set;
    while (int(hubs.size()) < spec.num_hubs) {
      const EntityId hub = random_of(internal);
      if (hub_set.insert(hub).second) hubs.push_back(hub);
    }
    for (int32_t e = 0; e < n; ++e) {
      if (hub_set.contains(e)) continue;
      if (!rng.NextBool(spec.membership_rate)) continue;
      const EntityId hub = random_of(hubs);
      emit_pair(e, hub, spec.member_of, spec.domain_of);
    }
  }

  // ---- WN18RR-style leakage removal ---------------------------------------
  if (options.remove_inverse_leakage) {
    auto is_dropped = [](RelationId r) {
      switch (r) {
        case kHyponym:
        case kMemberHolonym:
        case kHasPart:
        case kInstanceHyponym:
        case kSynsetDomainTopicOf:
        case kSynsetDomainRegionOf:
        case kSynsetDomainUsageOf:
          return true;
        default:
          return false;
      }
    };
    std::erase_if(triples,
                  [&](const Triple& t) { return is_dropped(t.relation); });
  }

  // ---- Split ---------------------------------------------------------------
  SplitOptions split_options;
  split_options.valid_fraction = options.valid_fraction;
  split_options.test_fraction = options.test_fraction;
  split_options.seed = rng.NextUint64();
  SplitResult split = SplitTriples(std::move(triples), split_options);
  dataset.train = std::move(split.train);
  dataset.valid = std::move(split.valid);
  dataset.test = std::move(split.test);
  return dataset;
}

}  // namespace kge
