// Train / validation / test splitting for generated knowledge graphs,
// with the standard benchmark guarantee that every entity and relation
// appearing in valid or test also appears in train (otherwise link
// prediction on them is ill-posed — WN18 was built the same way).
#ifndef KGE_DATAGEN_SPLIT_H_
#define KGE_DATAGEN_SPLIT_H_

#include <vector>

#include "kg/triple.h"
#include "util/random.h"

namespace kge {

struct SplitOptions {
  double valid_fraction = 0.035;
  double test_fraction = 0.035;
  uint64_t seed = 7;
};

struct SplitResult {
  std::vector<Triple> train;
  std::vector<Triple> valid;
  std::vector<Triple> test;
};

// Shuffles `all` and greedily moves triples into valid/test only when
// doing so leaves every one of the triple's entities and its relation with
// at least one remaining occurrence in train. Deduplicates the input
// first. The achieved fractions can fall slightly short of the requested
// ones on adversarial graphs; they never overshoot.
SplitResult SplitTriples(std::vector<Triple> all, const SplitOptions& options);

}  // namespace kge

#endif  // KGE_DATAGEN_SPLIT_H_
