// The link-prediction evaluation protocol of Bordes et al. [4] as used by
// the paper (§5.2): for each true triple (h, t, r), rank t among all
// (h, t', r) corruptions and h among all (h', t, r) corruptions. With
// `filtered` set, corruptions that are themselves known valid triples
// (anywhere in train ∪ valid ∪ test) are excluded before ranking.
//
// Ties: a true triple whose score equals some corruptions' scores gets
// the tie-averaged rank 1 + |better| + |equal|/2, so constant score
// functions receive chance-level (not perfect) metrics.
#ifndef KGE_EVAL_EVALUATOR_H_
#define KGE_EVAL_EVALUATOR_H_

#include <vector>

#include "eval/metrics.h"
#include "kg/filter_index.h"
#include "kg/relation_analysis.h"
#include "kg/triple.h"
#include "models/kge_model.h"
#include "util/hotpath.h"
#include "util/thread_pool.h"

namespace kge {

struct EvalOptions {
  bool filtered = true;
  // Evaluate at most this many triples (0 = all); a deterministic
  // stride-based subsample is used, which keeps validation checks cheap
  // during training.
  size_t max_triples = 0;
  // Threads for the candidate-scoring loop (1 = inline).
  int num_threads = 1;
  // Queries ranked per ScoreAllTailsBatch/ScoreAllHeadsBatch call. Test
  // queries are grouped by (relation, side) and scored B at a time, so
  // each entity-table tile is streamed from DRAM once per B queries
  // instead of once per query. 0 = auto (see ResolveEvalBatchQueries);
  // 1 = the legacy per-query ScoreAllTails/ScoreAllHeads path. Metrics
  // are bit-identical at every setting: ranks are computed per triple
  // either way and accumulated in the original triple order.
  int batch_queries = 0;
  // Numeric tier for full-vocabulary candidate scoring (see
  // core/scoring_replica.h): kDouble is the exact protocol; kFloat32 and
  // kInt8 trade bounded metric drift (measured in BENCH_eval.json's
  // precision section) for ranking throughput. The model must report
  // SupportsScorePrecision(score_precision); non-double tiers always
  // take the batched path, and Evaluate refreshes the model's scoring
  // replicas once (PrepareForScoring) before fanning out.
  ScorePrecision score_precision = ScorePrecision::kDouble;
  // Entity-table shards for the range-scoped ranking path (DESIGN.md
  // §5h). With > 1 (or prune set) ranking runs per-(triple, side, shard)
  // count scans instead of materializing B × num_entities score
  // matrices, so million-entity vocabularies rank inside the cache
  // budget. Metrics are exactly invariant to this setting: range counts
  // are additive over any partition of [0, num_entities) and scores are
  // the same kernel values the exhaustive path produces.
  int num_shards = 1;
  // Skip candidate tiles whose Cauchy–Schwarz score bound proves no
  // candidate in them can reach the true triple's score. Conservative
  // and never approximate — metrics stay bit-identical; only the work
  // (RankScanStats::tiles_skipped) changes. Implies the range-scoped
  // path even at num_shards == 1.
  bool prune = false;
};

// Resolves EvalOptions::batch_queries: values >= 1 pass through; 0 picks
// 32 and halves it while the per-thread B × ceil(num_entities /
// num_shards) score matrix would exceed 64 MiB (never below 1). The
// budget charges each score at the precision tier's streamed-candidate
// width — 8 bytes at kDouble (double accumulators live per candidate),
// 4 at kFloat32, 1 at kInt8 — so the narrower tiers keep proportionally
// larger batches when the budget binds instead of inheriting the double
// tier's cap, and sharded rankers only pay for the widest shard they
// actually materialize. All sizing math is size_t: at num_entities ≥ 1M
// a B × E product already exceeds int32 range at kDouble, so nothing in
// the budget walk may round-trip through int. Exposed so tools can log
// the effective batch size.
int ResolveEvalBatchQueries(int requested, int32_t num_entities,
                            ScorePrecision precision = ScorePrecision::kDouble,
                            int num_shards = 1);

struct PerRelationMetrics {
  RelationId relation = 0;
  RankingMetrics tail_queries;  // ranking the tail given (h, ?, r)
  RankingMetrics head_queries;  // ranking the head given (?, t, r)
};

struct EvalResult {
  RankingMetrics overall;
  std::vector<PerRelationMetrics> per_relation;
  // Tile counters aggregated over every range scan of the run (only
  // populated by the sharded/pruned path; zero on the matrix paths).
  // tiles_skipped / tiles_total is the pruning effectiveness BENCH_eval
  // reports as tiles_skipped_frac.
  RankScanStats scan_stats;
};

class Evaluator {
 public:
  // `filter` must outlive the evaluator; pass the index over all splits.
  Evaluator(const FilterIndex* filter, int32_t num_relations);

  // Full protocol over `triples`.
  EvalResult Evaluate(const KgeModel& model,
                      const std::vector<Triple>& triples,
                      const EvalOptions& options) const;

  // Convenience: overall metrics only.
  RankingMetrics EvaluateOverall(const KgeModel& model,
                                 const std::vector<Triple>& triples,
                                 const EvalOptions& options) const;

  // Rank of the true tail for one query, using `scores` =
  // model.ScoreAllTails(h, r) (exposed for testing).
  KGE_HOT_NOALLOC
  double RankTail(const Triple& triple, std::span<const float> scores,
                  bool filtered) const;
  KGE_HOT_NOALLOC
  double RankHead(const Triple& triple, std::span<const float> scores,
                  bool filtered) const;

  // Number of ranked candidates (the true answer plus surviving
  // corruptions) for each query direction; feeds the adjusted mean rank.
  KGE_HOT_NOALLOC
  size_t CountTailCandidates(const Triple& triple, int32_t num_entities,
                             bool filtered) const;
  KGE_HOT_NOALLOC
  size_t CountHeadCandidates(const Triple& triple, int32_t num_entities,
                             bool filtered) const;

 private:
  const FilterIndex* filter_;
  int32_t num_relations_;
};

}  // namespace kge

#endif  // KGE_EVAL_EVALUATOR_H_
