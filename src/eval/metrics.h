// Rank-based link-prediction metrics (§5.2): MRR (mean reciprocal rank),
// MR (mean rank), and Hits@k for k ∈ {1, 3, 10}.
#ifndef KGE_EVAL_METRICS_H_
#define KGE_EVAL_METRICS_H_

#include <cstddef>
#include <string>

namespace kge {

class RankingMetrics {
 public:
  // Records one query whose true answer obtained `rank` (1 = best).
  // Fractional ranks are allowed (tie-averaged ranks). `num_candidates`
  // (the true answer plus all non-filtered corruptions) feeds the
  // adjusted mean rank; pass 0 if unknown.
  void AddRank(double rank, size_t num_candidates = 0);

  void Merge(const RankingMetrics& other);

  size_t count() const { return count_; }
  double Mrr() const;
  double MeanRank() const;
  double HitsAt(int k) const;  // k in {1, 3, 10}

  // Adjusted Mean Rank Index (Berrendorf et al.):
  //   AMRI = 1 − (MR − 1) / (E[MR] − 1),
  // where E[MR] is the mean rank of a uniformly random scorer given each
  // query's candidate count: (num_candidates + 1) / 2. 1 = perfect,
  // 0 = random, < 0 = worse than random. Returns 0 when candidate counts
  // were never supplied.
  double AdjustedMeanRankIndex() const;

  // "MRR 0.937 H@1 0.928 H@3 0.946 H@10 0.951 (n=10000)"
  std::string ToString() const;

 private:
  size_t count_ = 0;
  double reciprocal_sum_ = 0.0;
  double rank_sum_ = 0.0;
  double expected_rank_sum_ = 0.0;
  size_t counted_candidates_ = 0;  // queries with known candidate counts
  size_t hits1_ = 0;
  size_t hits3_ = 0;
  size_t hits10_ = 0;
};

}  // namespace kge

#endif  // KGE_EVAL_METRICS_H_
