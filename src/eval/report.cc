#include "eval/report.h"

#include <functional>
#include <map>

#include "util/check.h"
#include "util/string_utils.h"
#include "util/table_printer.h"

namespace kge {
namespace {

RankingMetrics CombinedDirections(const PerRelationMetrics& per_relation) {
  RankingMetrics combined = per_relation.tail_queries;
  combined.Merge(per_relation.head_queries);
  return combined;
}

std::vector<CategoryMetrics> GroupBy(
    const EvalResult& result, const std::vector<RelationStats>& stats,
    const std::function<std::string(const RelationStats&)>& bucket_of) {
  KGE_CHECK(result.per_relation.size() == stats.size());
  std::map<std::string, RankingMetrics> buckets;
  for (size_t r = 0; r < stats.size(); ++r) {
    const RankingMetrics combined = CombinedDirections(result.per_relation[r]);
    if (combined.count() == 0) continue;
    buckets[bucket_of(stats[r])].Merge(combined);
  }
  std::vector<CategoryMetrics> grouped;
  for (auto& [category, metrics] : buckets) {
    grouped.push_back({category, metrics});
  }
  return grouped;
}

}  // namespace

std::vector<CategoryMetrics> GroupByMappingCategory(
    const EvalResult& result, const std::vector<RelationStats>& stats) {
  return GroupBy(result, stats, [](const RelationStats& s) {
    return std::string(MappingCategoryToString(s.category));
  });
}

std::vector<CategoryMetrics> GroupBySymmetry(
    const EvalResult& result, const std::vector<RelationStats>& stats) {
  return GroupBy(result, stats, [](const RelationStats& s) -> std::string {
    if (s.symmetry >= 0.8) return "symmetric";
    if (s.symmetry <= 0.2) return "antisymmetric";
    return "mixed";
  });
}

std::string RenderEvaluationReport(const EvalResult& result,
                                   const std::vector<RelationStats>& stats,
                                   const Vocabulary& relations) {
  std::string report = "== per-relation breakdown ==\n";
  TablePrinter per_relation(
      {"relation", "cat", "sym", "n", "MRR", "H@1", "H@10"});
  for (size_t r = 0; r < result.per_relation.size(); ++r) {
    const RankingMetrics combined = CombinedDirections(result.per_relation[r]);
    if (combined.count() == 0) continue;
    const std::string name =
        int32_t(r) < relations.size() ? relations.NameOf(int32_t(r))
                                      : StrFormat("rel%zu", r);
    const RelationStats& s = stats[r];
    per_relation.AddRow(
        {name, MappingCategoryToString(s.category),
         StrFormat("%.2f", s.symmetry), StrFormat("%zu", combined.count()),
         StrFormat("%.3f", combined.Mrr()),
         StrFormat("%.3f", combined.HitsAt(1)),
         StrFormat("%.3f", combined.HitsAt(10))});
  }
  report += per_relation.ToString();

  report += "\n== by mapping category ==\n";
  TablePrinter by_category({"category", "n", "MRR", "H@1", "H@10"});
  for (const CategoryMetrics& c : GroupByMappingCategory(result, stats)) {
    by_category.AddRow({c.category, StrFormat("%zu", c.metrics.count()),
                        StrFormat("%.3f", c.metrics.Mrr()),
                        StrFormat("%.3f", c.metrics.HitsAt(1)),
                        StrFormat("%.3f", c.metrics.HitsAt(10))});
  }
  report += by_category.ToString();

  report += "\n== by symmetry class ==\n";
  TablePrinter by_symmetry({"class", "n", "MRR", "H@1", "H@10"});
  for (const CategoryMetrics& c : GroupBySymmetry(result, stats)) {
    by_symmetry.AddRow({c.category, StrFormat("%zu", c.metrics.count()),
                        StrFormat("%.3f", c.metrics.Mrr()),
                        StrFormat("%.3f", c.metrics.HitsAt(1)),
                        StrFormat("%.3f", c.metrics.HitsAt(10))});
  }
  report += by_symmetry.ToString();
  return report;
}

}  // namespace kge
