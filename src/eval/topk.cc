#include "eval/topk.h"

#include <algorithm>
#include <vector>

#include "util/check.h"

namespace kge {
namespace {

// Runs the range-scoped top-k scan shard by shard (sequentially — this
// is the offline convenience API; the serving layer runs the same scans
// thread-per-shard) and merges deterministically. With num_shards == 1
// and prune off this degenerates to one exhaustive pass, so the result
// is identical for every option combination by the scan contract.
std::vector<ScoredEntity> SelectTopK(
    const KgeModel& model, EntityId query_entity, RelationId relation,
    bool tails, std::span<const EntityId> excluded,
    const TopKOptions& options) {
  const int shards = std::max(options.num_shards, 1);
  const EntityId num_entities = model.num_entities();
  if (options.prune) {
    model.PrepareForPrunedScoring(ScorePrecision::kDouble);
  }
  RankScanStats stats;
  TopKHeap<float, EntityId> merged(options.k);
  TopKHeap<float, EntityId> shard_heap(options.k);
  // Sharded + pruned: a shard heap's own minimum only reflects its
  // shard, so prime a shared floor from an exhaustive prefix scan. The
  // k-th best of any >= k candidates lower-bounds the global k-th best,
  // so skipping tiles strictly below it stays exact. The prefix is
  // padded by the excluded count so the heap still sees >= k admissible
  // candidates.
  float prune_floor = 0.0f;
  bool have_floor = false;
  if (options.prune && shards > 1) {
    const int64_t prime_span =
        std::max<int64_t>(options.k, int64_t(KgeModel::kPrunePrimePrefix)) +
        int64_t(excluded.size());
    const EntityId prime_end =
        EntityId(std::min<int64_t>(int64_t(num_entities), prime_span));
    shard_heap.ResetCapacity(options.k);
    if (tails) {
      model.TopKTailsInRange(query_entity, relation, 0, prime_end, excluded,
                             ScorePrecision::kDouble, /*prune=*/false,
                             &shard_heap, &stats);
    } else {
      model.TopKHeadsInRange(query_entity, relation, 0, prime_end, excluded,
                             ScorePrecision::kDouble, /*prune=*/false,
                             &shard_heap, &stats);
    }
    if (shard_heap.full()) {
      prune_floor = shard_heap.WorstScore();
      have_floor = true;
    }
  }
  for (int s = 0; s < shards; ++s) {
    const EntityId begin = ShardBegin(num_entities, shards, s);
    const EntityId end = ShardBegin(num_entities, shards, s + 1);
    TopKHeap<float, EntityId>* heap = shards == 1 ? &merged : &shard_heap;
    if (shards != 1) {
      shard_heap.ResetCapacity(options.k);
      if (have_floor) shard_heap.SetPruneFloor(prune_floor);
    }
    if (tails) {
      model.TopKTailsInRange(query_entity, relation, begin, end, excluded,
                             ScorePrecision::kDouble, options.prune, heap,
                             &stats);
    } else {
      model.TopKHeadsInRange(query_entity, relation, begin, end, excluded,
                             ScorePrecision::kDouble, options.prune, heap,
                             &stats);
    }
    if (shards != 1) merged.MergeFrom(shard_heap);
  }
  std::vector<ScoredEntity> result;
  result.reserve(size_t(merged.size()));
  for (const auto& entry : merged.TakeSorted()) {
    result.push_back({entry.entity, entry.score});
  }
  return result;
}

}  // namespace

std::vector<ScoredEntity> PredictTails(const KgeModel& model, EntityId head,
                                       RelationId relation,
                                       const TopKOptions& options) {
  KGE_CHECK(head >= 0 && head < model.num_entities());
  const std::span<const EntityId> excluded =
      options.exclude_known != nullptr
          ? options.exclude_known->KnownTails(head, relation)
          : std::span<const EntityId>();
  return SelectTopK(model, head, relation, /*tails=*/true, excluded, options);
}

std::vector<ScoredEntity> PredictHeads(const KgeModel& model, EntityId tail,
                                       RelationId relation,
                                       const TopKOptions& options) {
  KGE_CHECK(tail >= 0 && tail < model.num_entities());
  const std::span<const EntityId> excluded =
      options.exclude_known != nullptr
          ? options.exclude_known->KnownHeads(tail, relation)
          : std::span<const EntityId>();
  return SelectTopK(model, tail, relation, /*tails=*/false, excluded,
                    options);
}

}  // namespace kge
