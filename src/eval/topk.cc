#include "eval/topk.h"

#include <algorithm>
#include <vector>

#include "util/check.h"

namespace kge {
namespace {

std::vector<ScoredEntity> SelectTopK(std::span<const float> scores,
                                     std::span<const EntityId> excluded,
                                     int k) {
  std::vector<ScoredEntity> candidates;
  candidates.reserve(scores.size());
  size_t cursor = 0;
  for (size_t e = 0; e < scores.size(); ++e) {
    while (cursor < excluded.size() && size_t(excluded[cursor]) < e) ++cursor;
    if (cursor < excluded.size() && size_t(excluded[cursor]) == e) continue;
    candidates.push_back({EntityId(e), scores[e]});
  }
  const size_t keep = std::min<size_t>(size_t(std::max(k, 0)),
                                       candidates.size());
  std::partial_sort(candidates.begin(),
                    candidates.begin() + std::ptrdiff_t(keep),
                    candidates.end(),
                    [](const ScoredEntity& a, const ScoredEntity& b) {
                      if (a.score != b.score) return a.score > b.score;
                      return a.entity < b.entity;
                    });
  candidates.resize(keep);
  return candidates;
}

}  // namespace

std::vector<ScoredEntity> PredictTails(const KgeModel& model, EntityId head,
                                       RelationId relation,
                                       const TopKOptions& options) {
  KGE_CHECK(head >= 0 && head < model.num_entities());
  std::vector<float> scores(size_t(model.num_entities()));
  model.ScoreAllTails(head, relation, scores);
  const std::span<const EntityId> excluded =
      options.exclude_known != nullptr
          ? options.exclude_known->KnownTails(head, relation)
          : std::span<const EntityId>();
  return SelectTopK(scores, excluded, options.k);
}

std::vector<ScoredEntity> PredictHeads(const KgeModel& model, EntityId tail,
                                       RelationId relation,
                                       const TopKOptions& options) {
  KGE_CHECK(tail >= 0 && tail < model.num_entities());
  std::vector<float> scores(size_t(model.num_entities()));
  model.ScoreAllHeads(tail, relation, scores);
  const std::span<const EntityId> excluded =
      options.exclude_known != nullptr
          ? options.exclude_known->KnownHeads(tail, relation)
          : std::span<const EntityId>();
  return SelectTopK(scores, excluded, options.k);
}

}  // namespace kge
