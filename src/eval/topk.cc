#include "eval/topk.h"

#include <vector>

#include "util/check.h"

namespace kge {
namespace {

std::vector<ScoredEntity> SelectTopK(std::span<const float> scores,
                                     std::span<const EntityId> excluded,
                                     int k) {
  TopKHeap<float, EntityId> heap(k);
  heap.PushScoresExcluding(scores, excluded);
  std::vector<ScoredEntity> result;
  result.reserve(size_t(heap.size()));
  for (const auto& entry : heap.TakeSorted()) {
    result.push_back({entry.entity, entry.score});
  }
  return result;
}

}  // namespace

std::vector<ScoredEntity> PredictTails(const KgeModel& model, EntityId head,
                                       RelationId relation,
                                       const TopKOptions& options) {
  KGE_CHECK(head >= 0 && head < model.num_entities());
  std::vector<float> scores(size_t(model.num_entities()));
  model.ScoreAllTails(head, relation, scores);
  const std::span<const EntityId> excluded =
      options.exclude_known != nullptr
          ? options.exclude_known->KnownTails(head, relation)
          : std::span<const EntityId>();
  return SelectTopK(scores, excluded, options.k);
}

std::vector<ScoredEntity> PredictHeads(const KgeModel& model, EntityId tail,
                                       RelationId relation,
                                       const TopKOptions& options) {
  KGE_CHECK(tail >= 0 && tail < model.num_entities());
  std::vector<float> scores(size_t(model.num_entities()));
  model.ScoreAllHeads(tail, relation, scores);
  const std::span<const EntityId> excluded =
      options.exclude_known != nullptr
          ? options.exclude_known->KnownHeads(tail, relation)
          : std::span<const EntityId>();
  return SelectTopK(scores, excluded, options.k);
}

}  // namespace kge
