// Embedding export for visualization and downstream analysis — the
// paper's §1 motivation that learned embeddings "contain rich semantic
// information ... enabling them to be used in visualization or browsing
// for data analysis [or] as extracted or pretrained feature vectors".
//
// Writes TSV files compatible with common projector tools: one row of
// tab-separated floats per entity (vectors.tsv) and a parallel metadata
// file of entity names (metadata.tsv). Multi-embedding models export the
// concatenation of their embedding vectors (§3.2's recipe).
#ifndef KGE_EVAL_EXPORT_H_
#define KGE_EVAL_EXPORT_H_

#include <string>

#include "core/embedding_store.h"
#include "kg/vocabulary.h"
#include "util/status.h"

namespace kge {

// Writes `store`'s per-id concatenated embeddings to `vectors_path` and,
// when `names` is non-null, the id names to `metadata_path` (skipped when
// empty). Row order is id order.
Status ExportEmbeddingsTsv(const EmbeddingStore& store,
                           const Vocabulary* names,
                           const std::string& vectors_path,
                           const std::string& metadata_path);

}  // namespace kge

#endif  // KGE_EVAL_EXPORT_H_
