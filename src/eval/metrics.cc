#include "eval/metrics.h"

#include "util/check.h"
#include "util/string_utils.h"

namespace kge {

void RankingMetrics::AddRank(double rank, size_t num_candidates) {
  KGE_DCHECK(rank >= 1.0);
  ++count_;
  reciprocal_sum_ += 1.0 / rank;
  rank_sum_ += rank;
  if (num_candidates > 0) {
    expected_rank_sum_ += (double(num_candidates) + 1.0) / 2.0;
    ++counted_candidates_;
  }
  if (rank <= 1.0) ++hits1_;
  if (rank <= 3.0) ++hits3_;
  if (rank <= 10.0) ++hits10_;
}

void RankingMetrics::Merge(const RankingMetrics& other) {
  count_ += other.count_;
  reciprocal_sum_ += other.reciprocal_sum_;
  rank_sum_ += other.rank_sum_;
  expected_rank_sum_ += other.expected_rank_sum_;
  counted_candidates_ += other.counted_candidates_;
  hits1_ += other.hits1_;
  hits3_ += other.hits3_;
  hits10_ += other.hits10_;
}

double RankingMetrics::AdjustedMeanRankIndex() const {
  // Only meaningful when every recorded rank carried a candidate count.
  if (counted_candidates_ == 0 || counted_candidates_ != count_) return 0.0;
  const double expected_mean = expected_rank_sum_ / double(count_);
  if (expected_mean <= 1.0) return 0.0;
  return 1.0 - (MeanRank() - 1.0) / (expected_mean - 1.0);
}

double RankingMetrics::Mrr() const {
  return count_ == 0 ? 0.0 : reciprocal_sum_ / double(count_);
}

double RankingMetrics::MeanRank() const {
  return count_ == 0 ? 0.0 : rank_sum_ / double(count_);
}

double RankingMetrics::HitsAt(int k) const {
  if (count_ == 0) return 0.0;
  switch (k) {
    case 1:
      return double(hits1_) / double(count_);
    case 3:
      return double(hits3_) / double(count_);
    case 10:
      return double(hits10_) / double(count_);
    default:
      KGE_CHECK(false && "HitsAt supports k in {1, 3, 10}");
      return 0.0;
  }
}

std::string RankingMetrics::ToString() const {
  std::string out =
      StrFormat("MRR %.3f H@1 %.3f H@3 %.3f H@10 %.3f MR %.1f", Mrr(),
                HitsAt(1), HitsAt(3), HitsAt(10), MeanRank());
  if (counted_candidates_ == count_ && count_ > 0) {
    out += StrFormat(" AMRI %.3f", AdjustedMeanRankIndex());
  }
  out += StrFormat(" (n=%zu)", count_);
  return out;
}

}  // namespace kge
