// Top-k link prediction — the serving-side API: given a partial triple
// (h, ?, r) or (?, t, r), return the k best completions, optionally
// excluding already-known triples (the "new facts only" mode a
// recommender or completion UI wants).
#ifndef KGE_EVAL_TOPK_H_
#define KGE_EVAL_TOPK_H_

#include <vector>

#include "kg/filter_index.h"
#include "models/kge_model.h"

namespace kge {

struct ScoredEntity {
  EntityId entity = 0;
  float score = 0.0f;
};

struct TopKOptions {
  int k = 10;
  // When non-null, entities forming known triples with the query are
  // excluded from the results.
  const FilterIndex* exclude_known = nullptr;
};

// Completions for (head, ?, relation), best first. Ties broken by entity
// id for determinism.
std::vector<ScoredEntity> PredictTails(const KgeModel& model, EntityId head,
                                       RelationId relation,
                                       const TopKOptions& options);

// Completions for (?, tail, relation).
std::vector<ScoredEntity> PredictHeads(const KgeModel& model, EntityId tail,
                                       RelationId relation,
                                       const TopKOptions& options);

}  // namespace kge

#endif  // KGE_EVAL_TOPK_H_
