// Top-k link prediction — the serving-side API: given a partial triple
// (h, ?, r) or (?, t, r), return the k best completions, optionally
// excluding already-known triples (the "new facts only" mode a
// recommender or completion UI wants).
//
// The selection core is `TopKHeap` (core/topk_heap.h), a reusable
// fixed-size bounded heap (template over score/id type) shared by the
// offline predictors below, the online serving layer in src/serve/, and
// the sharded/pruned ranking scans. Ordering is deterministic: higher
// score first, ties broken by smaller id.
#ifndef KGE_EVAL_TOPK_H_
#define KGE_EVAL_TOPK_H_

#include <vector>

#include "core/topk_heap.h"
#include "kg/filter_index.h"
#include "models/kge_model.h"

namespace kge {

struct ScoredEntity {
  EntityId entity = 0;
  float score = 0.0f;
};

struct TopKOptions {
  int k = 10;
  // When non-null, entities forming known triples with the query are
  // excluded from the results.
  const FilterIndex* exclude_known = nullptr;
  // Entity-table shards ranked independently and merged (values < 1 are
  // treated as 1). The result is exactly shard-count invariant.
  int num_shards = 1;
  // Skip score tiles whose Cauchy–Schwarz upper bound cannot beat the
  // current heap minimum. Exact: bounds are conservative, never
  // approximate. Effective for models with a fold-then-dot scan
  // (the trilinear family); others fall back to the exhaustive scan.
  bool prune = false;
};

// Completions for (head, ?, relation), best first. Ties broken by entity
// id for determinism.
std::vector<ScoredEntity> PredictTails(const KgeModel& model, EntityId head,
                                       RelationId relation,
                                       const TopKOptions& options);

// Completions for (?, tail, relation).
std::vector<ScoredEntity> PredictHeads(const KgeModel& model, EntityId tail,
                                       RelationId relation,
                                       const TopKOptions& options);

}  // namespace kge

#endif  // KGE_EVAL_TOPK_H_
