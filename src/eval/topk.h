// Top-k link prediction — the serving-side API: given a partial triple
// (h, ?, r) or (?, t, r), return the k best completions, optionally
// excluding already-known triples (the "new facts only" mode a
// recommender or completion UI wants).
//
// The selection core is `TopKHeap`, a reusable fixed-size bounded heap
// (template over score/id type) shared by the offline predictors below
// and the online serving layer in src/serve/. Ordering is deterministic:
// higher score first, ties broken by smaller id.
#ifndef KGE_EVAL_TOPK_H_
#define KGE_EVAL_TOPK_H_

#include <algorithm>
#include <span>
#include <vector>

#include "kg/filter_index.h"
#include "models/kge_model.h"
#include "util/hotpath.h"

namespace kge {

template <typename ScoreT, typename IdT>
struct ScoredItem {
  IdT entity{};
  ScoreT score{};
};

struct ScoredEntity {
  EntityId entity = 0;
  float score = 0.0f;
};

// Bounded top-k selector. `ResetCapacity(k)` arms the heap for one
// selection pass; `PushCandidate` offers one (id, score) pair;
// `TakeSorted` returns the k best seen so far, best first (score
// descending, ties by ascending id — fully deterministic regardless of
// push order). The backing storage is reused across resets so the push
// path performs no allocation in steady state, making it safe to call
// from KGE_HOT_NOALLOC roots.
//
// Internally a min-heap of the k best candidates: the root is the worst
// kept entry, so a new candidate is accepted iff it beats the root under
// the (score, id) order.
template <typename ScoreT, typename IdT>
class TopKHeap {
 public:
  using Entry = ScoredItem<ScoreT, IdT>;

  TopKHeap() = default;
  explicit TopKHeap(int k) { ResetCapacity(k); }

  // Clears the heap and sets the number of entries to keep. Negative k
  // is treated as 0. Grows the backing storage on first use only.
  void ResetCapacity(int k) {
    capacity_ = std::max(k, 0);
    if (entries_.size() < size_t(capacity_)) {
      // kge-hotpath: allow(cold-start high-water growth of a reused buffer)
      entries_.resize(size_t(capacity_));
    }
    size_ = 0;
  }

  int capacity() const { return capacity_; }
  int size() const { return size_; }

  // Offers one candidate. O(log k) worst case, O(1) when the candidate
  // is worse than the current k-th best (the common case once warm).
  KGE_HOT_NOALLOC
  void PushCandidate(IdT id, ScoreT score) {
    if (capacity_ == 0) return;
    if (size_ < capacity_) {
      entries_[size_t(size_)] = Entry{id, score};
      ++size_;
      SiftUpFromBack();
      return;
    }
    if (!BeatsEntry(id, score, entries_[0])) return;
    entries_[0] = Entry{id, score};
    SiftDownFromRoot();
  }

  // Offers scores[e] for every id e in [0, scores.size()) that does not
  // appear in `excluded` (which must be sorted ascending, as
  // FilterIndex::Known* spans are).
  KGE_HOT_NOALLOC
  void PushScoresExcluding(std::span<const ScoreT> scores,
                           std::span<const IdT> excluded) {
    size_t cursor = 0;
    for (size_t e = 0; e < scores.size(); ++e) {
      while (cursor < excluded.size() && size_t(excluded[cursor]) < e) {
        ++cursor;
      }
      if (cursor < excluded.size() && size_t(excluded[cursor]) == e) continue;
      PushCandidate(IdT(e), scores[e]);
    }
  }

  // Sorts the kept entries best-first and returns a view into the
  // heap's storage. Invalidates the heap order: call ResetCapacity
  // before the next selection pass. The span is valid until then.
  KGE_HOT_NOALLOC
  std::span<const Entry> TakeSorted() {
    std::sort(entries_.begin(), entries_.begin() + size_,
              [](const Entry& a, const Entry& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.entity < b.entity;
              });
    return std::span<const Entry>(entries_.data(), size_t(size_));
  }

 private:
  // True when candidate (id, score) ranks strictly better than `e`:
  // higher score, or equal score with smaller id.
  static bool BeatsEntry(IdT id, ScoreT score, const Entry& e) {
    if (score != e.score) return score > e.score;
    return id < e.entity;
  }

  KGE_HOT_NOALLOC
  void SiftUpFromBack() {
    size_t i = size_t(size_) - 1;
    while (i > 0) {
      const size_t parent = (i - 1) / 2;
      // Heap property: every parent ranks worse than its children, so
      // the root is the worst kept entry. Swap while violated.
      if (!BeatsEntry(entries_[parent].entity, entries_[parent].score,
                      entries_[i])) {
        break;
      }
      const Entry tmp = entries_[parent];
      entries_[parent] = entries_[i];
      entries_[i] = tmp;
      i = parent;
    }
  }

  KGE_HOT_NOALLOC
  void SiftDownFromRoot() {
    size_t i = 0;
    const size_t n = size_t(size_);
    while (true) {
      const size_t left = 2 * i + 1;
      const size_t right = left + 1;
      size_t worst = i;
      if (left < n && !BeatsEntry(entries_[left].entity, entries_[left].score,
                                  entries_[worst])) {
        worst = left;
      }
      if (right < n &&
          !BeatsEntry(entries_[right].entity, entries_[right].score,
                      entries_[worst])) {
        worst = right;
      }
      if (worst == i) break;
      const Entry tmp = entries_[worst];
      entries_[worst] = entries_[i];
      entries_[i] = tmp;
      i = worst;
    }
  }

  std::vector<Entry> entries_;
  int capacity_ = 0;
  int size_ = 0;
};

struct TopKOptions {
  int k = 10;
  // When non-null, entities forming known triples with the query are
  // excluded from the results.
  const FilterIndex* exclude_known = nullptr;
};

// Completions for (head, ?, relation), best first. Ties broken by entity
// id for determinism.
std::vector<ScoredEntity> PredictTails(const KgeModel& model, EntityId head,
                                       RelationId relation,
                                       const TopKOptions& options);

// Completions for (?, tail, relation).
std::vector<ScoredEntity> PredictHeads(const KgeModel& model, EntityId tail,
                                       RelationId relation,
                                       const TopKOptions& options);

}  // namespace kge

#endif  // KGE_EVAL_TOPK_H_
