#include "eval/evaluator.h"

#include <algorithm>
#include <vector>

#include "util/check.h"
#include "util/scratch.h"

namespace kge {
namespace {

// Computes the tie-averaged rank of `true_score` among the candidate
// scores, skipping filtered ids. The true entity's own slot is always
// skipped (its score is `true_score` by definition).
double RankAmong(std::span<const float> scores, float true_score,
                 EntityId true_entity, std::span<const EntityId> filtered) {
  size_t better = 0;
  size_t equal = 0;
  size_t filter_cursor = 0;
  for (size_t e = 0; e < scores.size(); ++e) {
    // `filtered` is sorted; advance the cursor lazily.
    while (filter_cursor < filtered.size() &&
           size_t(filtered[filter_cursor]) < e) {
      ++filter_cursor;
    }
    const bool is_filtered = filter_cursor < filtered.size() &&
                             size_t(filtered[filter_cursor]) == e;
    if (is_filtered || EntityId(e) == true_entity) continue;
    if (scores[e] > true_score) {
      ++better;
    } else if (scores[e] == true_score) {
      ++equal;
    }
  }
  return 1.0 + double(better) + double(equal) / 2.0;
}

}  // namespace

Evaluator::Evaluator(const FilterIndex* filter, int32_t num_relations)
    : filter_(filter), num_relations_(num_relations) {
  KGE_CHECK(filter_ != nullptr);
}

double Evaluator::RankTail(const Triple& triple,
                           std::span<const float> scores,
                           bool filtered) const {
  const std::span<const EntityId> known =
      filtered ? filter_->KnownTails(triple.head, triple.relation)
               : std::span<const EntityId>();
  return RankAmong(scores, scores[size_t(triple.tail)], triple.tail, known);
}

double Evaluator::RankHead(const Triple& triple,
                           std::span<const float> scores,
                           bool filtered) const {
  const std::span<const EntityId> known =
      filtered ? filter_->KnownHeads(triple.tail, triple.relation)
               : std::span<const EntityId>();
  return RankAmong(scores, scores[size_t(triple.head)], triple.head, known);
}

namespace {

// Candidates = all entities minus filtered corruptions; the true entity
// always ranks (whether or not it is in the filtered set).
size_t CountCandidates(int32_t num_entities,
                       std::span<const EntityId> known, EntityId truth) {
  const bool truth_known =
      std::binary_search(known.begin(), known.end(), truth);
  return size_t(num_entities) - known.size() + (truth_known ? 1 : 0);
}

}  // namespace

size_t Evaluator::CountTailCandidates(const Triple& triple,
                                      int32_t num_entities,
                                      bool filtered) const {
  if (!filtered) return size_t(num_entities);
  return CountCandidates(num_entities,
                         filter_->KnownTails(triple.head, triple.relation),
                         triple.tail);
}

size_t Evaluator::CountHeadCandidates(const Triple& triple,
                                      int32_t num_entities,
                                      bool filtered) const {
  if (!filtered) return size_t(num_entities);
  return CountCandidates(num_entities,
                         filter_->KnownHeads(triple.tail, triple.relation),
                         triple.head);
}

int ResolveEvalBatchQueries(int requested, int32_t num_entities,
                            ScorePrecision precision, int num_shards) {
  if (requested >= 1) return requested;
  // Auto: start at 32 queries per batch and halve while the per-thread
  // B × ceil(E / num_shards) scoring footprint would exceed 64 MiB, so
  // huge vocabularies never blow the cache budget (or the heap) just
  // because batching is on. Each score is charged at the tier's
  // streamed-candidate width (kDouble keeps a double accumulator group
  // per candidate cell, float32 streams 4-byte rows, int8 1-byte rows),
  // so the narrower tiers hold 2x/8x more queries per batch when the
  // budget binds. Every term stays size_t: at 1M+ entities B × E ×
  // bytes_per_score exceeds int32 range long before the budget halves
  // the batch, so int math anywhere here would wrap instead of shrink.
  constexpr size_t kMaxScoreMatrixBytes = 64u << 20;
  size_t bytes_per_score = sizeof(double);
  switch (precision) {
    case ScorePrecision::kDouble:
      bytes_per_score = 8;
      break;
    case ScorePrecision::kFloat32:
      bytes_per_score = 4;
      break;
    case ScorePrecision::kInt8:
      bytes_per_score = 1;
      break;
  }
  const size_t shards = size_t(std::max(num_shards, 1));
  const size_t entities = size_t(std::max(num_entities, 1));
  const size_t widest_shard = (entities + shards - 1) / shards;
  int batch = 32;
  while (batch > 1 &&
         size_t(batch) * widest_shard * bytes_per_score >
             kMaxScoreMatrixBytes) {
    batch /= 2;
  }
  return batch;
}

namespace {

// One batched scoring call: `count` queries sharing a relation and a
// side, covering eval-order triple indices order[begin .. begin+count).
struct QueryBatch {
  uint32_t begin = 0;
  uint32_t count = 0;
  RelationId relation = 0;
  bool head_side = false;  // false: rank tails, true: rank heads
};

}  // namespace

EvalResult Evaluator::Evaluate(const KgeModel& model,
                               const std::vector<Triple>& triples,
                               const EvalOptions& options) const {
  EvalResult result;
  result.per_relation.resize(size_t(num_relations_));
  for (int32_t r = 0; r < num_relations_; ++r) {
    result.per_relation[size_t(r)].relation = r;
  }

  // Deterministic stride subsample when capped.
  std::vector<Triple> subset;
  const std::vector<Triple>* eval_triples = &triples;
  if (options.max_triples > 0 && triples.size() > options.max_triples) {
    const size_t stride = triples.size() / options.max_triples;
    for (size_t i = 0; i < triples.size() && subset.size() < options.max_triples;
         i += stride) {
      subset.push_back(triples[i]);
    }
    eval_triples = &subset;
  }

  // Ranks are pure per-triple functions of the scores, so they are
  // computed in parallel into per-triple slots and the metrics are
  // accumulated SERIALLY in the original triple order afterwards. That
  // makes the result exactly invariant to both the thread count and the
  // batching schedule (and equal to the pre-batching single-thread
  // accumulation order).
  const size_t num_triples = eval_triples->size();
  const int32_t num_entities = model.num_entities();
  std::vector<double> tail_ranks(num_triples), head_ranks(num_triples);
  std::vector<size_t> tail_cands(num_triples), head_cands(num_triples);

  const ScorePrecision precision = options.score_precision;
  KGE_CHECK(model.SupportsScorePrecision(precision));
  const int num_shards = std::max(options.num_shards, 1);
  const bool range_scan = options.prune || num_shards > 1;
  // Refresh any scoring replica the tier needs ONCE, before the fanout:
  // the rebuild mutates the replica, the scoring reads below do not.
  // The pruned path additionally refreshes the per-tile score bounds.
  if (options.prune) {
    model.PrepareForPrunedScoring(precision);
  } else {
    model.PrepareForScoring(precision);
  }
  const int batch_queries =
      ResolveEvalBatchQueries(options.batch_queries, num_entities, precision);
  ThreadPool pool(size_t(std::max(1, options.num_threads)));

  if (range_scan) {
    // Sharded / pruned ranking (DESIGN.md §5h): instead of materializing
    // B × num_entities score matrices, each (triple, side, shard) task
    // counts candidates above the true score inside its entity range
    // with CountTailsAbove/CountHeadsAbove. Counts are additive over the
    // shard partition and the scores are the exact kernel values the
    // matrix paths produce, so the serial reduction below yields
    // bit-identical ranks for every shard count, thread count, and prune
    // setting. Each task re-derives the true score via ScoreOneTail/
    // ScoreOneHead — deterministic and race-free, so no cross-task
    // ordering matters.
    const size_t tasks_per_triple = 2 * size_t(num_shards);
    const size_t num_tasks = num_triples * tasks_per_triple;
    std::vector<uint64_t> better(num_tasks, 0), equal(num_tasks, 0);
    std::vector<RankScanStats> task_stats(num_tasks);
    pool.ParallelFor(0, num_tasks, [&](size_t begin, size_t end) {
      for (size_t task = begin; task < end; ++task) {
        const size_t i = task / tasks_per_triple;
        const size_t rem = task % tasks_per_triple;
        const bool head_side = rem >= size_t(num_shards);
        const int s = int(rem % size_t(num_shards));
        const Triple& triple = (*eval_triples)[i];
        const EntityId shard_begin = ShardBegin(num_entities, num_shards, s);
        const EntityId shard_end =
            ShardBegin(num_entities, num_shards, s + 1);
        if (head_side) {
          const std::span<const EntityId> known =
              options.filtered
                  ? filter_->KnownHeads(triple.tail, triple.relation)
                  : std::span<const EntityId>();
          const float truth = model.ScoreOneHead(
              triple.head, triple.tail, triple.relation, precision);
          model.CountHeadsAbove(triple.tail, triple.relation, truth,
                                shard_begin, shard_end, known, triple.head,
                                precision, options.prune, &better[task],
                                &equal[task], &task_stats[task]);
        } else {
          const std::span<const EntityId> known =
              options.filtered
                  ? filter_->KnownTails(triple.head, triple.relation)
                  : std::span<const EntityId>();
          const float truth = model.ScoreOneTail(
              triple.head, triple.tail, triple.relation, precision);
          model.CountTailsAbove(triple.head, triple.relation, truth,
                                shard_begin, shard_end, known, triple.tail,
                                precision, options.prune, &better[task],
                                &equal[task], &task_stats[task]);
        }
      }
    });
    for (size_t i = 0; i < num_triples; ++i) {
      const Triple& triple = (*eval_triples)[i];
      uint64_t tail_better = 0, tail_equal = 0;
      uint64_t head_better = 0, head_equal = 0;
      for (size_t s = 0; s < size_t(num_shards); ++s) {
        const size_t tail_task = i * tasks_per_triple + s;
        const size_t head_task = tail_task + size_t(num_shards);
        tail_better += better[tail_task];
        tail_equal += equal[tail_task];
        head_better += better[head_task];
        head_equal += equal[head_task];
      }
      tail_ranks[i] = 1.0 + double(tail_better) + double(tail_equal) / 2.0;
      head_ranks[i] = 1.0 + double(head_better) + double(head_equal) / 2.0;
      tail_cands[i] =
          CountTailCandidates(triple, num_entities, options.filtered);
      head_cands[i] =
          CountHeadCandidates(triple, num_entities, options.filtered);
    }
    for (const RankScanStats& stats : task_stats) {
      result.scan_stats.tiles_total += stats.tiles_total;
      result.scan_stats.tiles_skipped += stats.tiles_skipped;
    }
  } else if (batch_queries <= 1 && precision == ScorePrecision::kDouble) {
    // Reduced-precision tiers only exist on the batched interface, so
    // they take the batched path even at B = 1.
    // Legacy per-query GEMV path: one ScoreAllTails/Heads per triple.
    pool.ParallelFor(0, num_triples, [&](size_t begin, size_t end) {
      static thread_local std::vector<float> score_buf;
      const std::span<float> scores =
          ScratchSpan(score_buf, size_t(num_entities));
      for (size_t i = begin; i < end; ++i) {
        const Triple& triple = (*eval_triples)[i];
        model.ScoreAllTails(triple.head, triple.relation, scores);
        tail_ranks[i] = RankTail(triple, scores, options.filtered);
        tail_cands[i] =
            CountTailCandidates(triple, num_entities, options.filtered);
        model.ScoreAllHeads(triple.tail, triple.relation, scores);
        head_ranks[i] = RankHead(triple, scores, options.filtered);
        head_cands[i] =
            CountHeadCandidates(triple, num_entities, options.filtered);
      }
    });
  } else {
    // Batched GEMM path. Counting-sort the triple indices by relation
    // (stable, deterministic), then cover each relation segment with
    // tail-side and head-side batches of at most batch_queries queries:
    // every batch folds once per query and streams each entity-table
    // tile once per batch instead of once per query.
    std::vector<uint32_t> order(num_triples);
    std::vector<size_t> relation_counts(size_t(num_relations_) + 1, 0);
    for (const Triple& t : *eval_triples) {
      ++relation_counts[size_t(t.relation) + 1];
    }
    for (size_t r = 1; r < relation_counts.size(); ++r) {
      relation_counts[r] += relation_counts[r - 1];
    }
    std::vector<size_t> cursor(relation_counts.begin(),
                               relation_counts.end() - 1);
    for (size_t i = 0; i < num_triples; ++i) {
      order[cursor[size_t((*eval_triples)[i].relation)]++] = uint32_t(i);
    }

    std::vector<QueryBatch> batches;
    batches.reserve(2 * (num_triples / size_t(batch_queries) +
                         size_t(num_relations_) + 1));
    for (int32_t r = 0; r < num_relations_; ++r) {
      const size_t seg_begin = relation_counts[size_t(r)];
      const size_t seg_end = relation_counts[size_t(r) + 1];
      for (int side = 0; side < 2; ++side) {
        for (size_t b = seg_begin; b < seg_end; b += size_t(batch_queries)) {
          QueryBatch batch;
          batch.begin = uint32_t(b);
          batch.count = uint32_t(
              std::min(size_t(batch_queries), seg_end - b));
          batch.relation = r;
          batch.head_side = side == 1;
          batches.push_back(batch);
        }
      }
    }

    pool.ParallelFor(0, batches.size(), [&](size_t begin, size_t end) {
      static thread_local std::vector<float> score_buf;
      static thread_local std::vector<EntityId> query_buf;
      for (size_t bi = begin; bi < end; ++bi) {
        const QueryBatch& batch = batches[bi];
        const std::span<EntityId> queries =
            ScratchSpan(query_buf, size_t(batch.count));
        for (uint32_t q = 0; q < batch.count; ++q) {
          const Triple& triple = (*eval_triples)[order[batch.begin + q]];
          queries[q] = batch.head_side ? triple.tail : triple.head;
        }
        const std::span<float> scores = ScratchSpan(
            score_buf, size_t(batch.count) * size_t(num_entities));
        if (batch.head_side) {
          model.ScoreAllHeadsBatch(queries, batch.relation, scores,
                                   precision);
        } else {
          model.ScoreAllTailsBatch(queries, batch.relation, scores,
                                   precision);
        }
        for (uint32_t q = 0; q < batch.count; ++q) {
          const size_t i = order[batch.begin + q];
          const Triple& triple = (*eval_triples)[i];
          const std::span<const float> row =
              scores.subspan(size_t(q) * size_t(num_entities),
                             size_t(num_entities));
          if (batch.head_side) {
            head_ranks[i] = RankHead(triple, row, options.filtered);
            head_cands[i] =
                CountHeadCandidates(triple, num_entities, options.filtered);
          } else {
            tail_ranks[i] = RankTail(triple, row, options.filtered);
            tail_cands[i] =
                CountTailCandidates(triple, num_entities, options.filtered);
          }
        }
      }
    });
  }

  // Serial accumulation in original triple order: tail rank then head
  // rank per triple, exactly like the pre-batching inner loop.
  for (size_t i = 0; i < num_triples; ++i) {
    const Triple& triple = (*eval_triples)[i];
    result.overall.AddRank(tail_ranks[i], tail_cands[i]);
    result.overall.AddRank(head_ranks[i], head_cands[i]);
    PerRelationMetrics& rel = result.per_relation[size_t(triple.relation)];
    rel.tail_queries.AddRank(tail_ranks[i], tail_cands[i]);
    rel.head_queries.AddRank(head_ranks[i], head_cands[i]);
  }
  return result;
}

RankingMetrics Evaluator::EvaluateOverall(const KgeModel& model,
                                          const std::vector<Triple>& triples,
                                          const EvalOptions& options) const {
  return Evaluate(model, triples, options).overall;
}

}  // namespace kge
