#include "eval/evaluator.h"

#include <algorithm>

#include "util/check.h"
#include "util/thread_annotations.h"

namespace kge {
namespace {

// Computes the tie-averaged rank of `true_score` among the candidate
// scores, skipping filtered ids. The true entity's own slot is always
// skipped (its score is `true_score` by definition).
double RankAmong(std::span<const float> scores, float true_score,
                 EntityId true_entity, std::span<const EntityId> filtered) {
  size_t better = 0;
  size_t equal = 0;
  size_t filter_cursor = 0;
  for (size_t e = 0; e < scores.size(); ++e) {
    // `filtered` is sorted; advance the cursor lazily.
    while (filter_cursor < filtered.size() &&
           size_t(filtered[filter_cursor]) < e) {
      ++filter_cursor;
    }
    const bool is_filtered = filter_cursor < filtered.size() &&
                             size_t(filtered[filter_cursor]) == e;
    if (is_filtered || EntityId(e) == true_entity) continue;
    if (scores[e] > true_score) {
      ++better;
    } else if (scores[e] == true_score) {
      ++equal;
    }
  }
  return 1.0 + double(better) + double(equal) / 2.0;
}

}  // namespace

Evaluator::Evaluator(const FilterIndex* filter, int32_t num_relations)
    : filter_(filter), num_relations_(num_relations) {
  KGE_CHECK(filter_ != nullptr);
}

double Evaluator::RankTail(const Triple& triple,
                           std::span<const float> scores,
                           bool filtered) const {
  const std::span<const EntityId> known =
      filtered ? filter_->KnownTails(triple.head, triple.relation)
               : std::span<const EntityId>();
  return RankAmong(scores, scores[size_t(triple.tail)], triple.tail, known);
}

double Evaluator::RankHead(const Triple& triple,
                           std::span<const float> scores,
                           bool filtered) const {
  const std::span<const EntityId> known =
      filtered ? filter_->KnownHeads(triple.tail, triple.relation)
               : std::span<const EntityId>();
  return RankAmong(scores, scores[size_t(triple.head)], triple.head, known);
}

namespace {

// Candidates = all entities minus filtered corruptions; the true entity
// always ranks (whether or not it is in the filtered set).
size_t CountCandidates(int32_t num_entities,
                       std::span<const EntityId> known, EntityId truth) {
  const bool truth_known =
      std::binary_search(known.begin(), known.end(), truth);
  return size_t(num_entities) - known.size() + (truth_known ? 1 : 0);
}

}  // namespace

size_t Evaluator::CountTailCandidates(const Triple& triple,
                                      int32_t num_entities,
                                      bool filtered) const {
  if (!filtered) return size_t(num_entities);
  return CountCandidates(num_entities,
                         filter_->KnownTails(triple.head, triple.relation),
                         triple.tail);
}

size_t Evaluator::CountHeadCandidates(const Triple& triple,
                                      int32_t num_entities,
                                      bool filtered) const {
  if (!filtered) return size_t(num_entities);
  return CountCandidates(num_entities,
                         filter_->KnownHeads(triple.tail, triple.relation),
                         triple.head);
}

EvalResult Evaluator::Evaluate(const KgeModel& model,
                               const std::vector<Triple>& triples,
                               const EvalOptions& options) const {
  EvalResult result;
  result.per_relation.resize(size_t(num_relations_));
  for (int32_t r = 0; r < num_relations_; ++r) {
    result.per_relation[size_t(r)].relation = r;
  }

  // Deterministic stride subsample when capped.
  std::vector<Triple> subset;
  const std::vector<Triple>* eval_triples = &triples;
  if (options.max_triples > 0 && triples.size() > options.max_triples) {
    const size_t stride = triples.size() / options.max_triples;
    for (size_t i = 0; i < triples.size() && subset.size() < options.max_triples;
         i += stride) {
      subset.push_back(triples[i]);
    }
    eval_triples = &subset;
  }

  ThreadPool pool(size_t(std::max(1, options.num_threads)));
  // Guards `result` during shard merges; shards accumulate into
  // thread-local `local` buffers and merge exactly once at the end.
  Mutex merge_mutex;
  pool.ParallelFor(0, eval_triples->size(), [&](size_t begin, size_t end) {
    std::vector<float> scores(size_t(model.num_entities()));
    EvalResult local;
    local.per_relation.resize(size_t(num_relations_));
    for (size_t i = begin; i < end; ++i) {
      const Triple& triple = (*eval_triples)[i];
      const int32_t num_entities = model.num_entities();
      model.ScoreAllTails(triple.head, triple.relation, scores);
      const double tail_rank = RankTail(triple, scores, options.filtered);
      const size_t tail_candidates =
          CountTailCandidates(triple, num_entities, options.filtered);
      model.ScoreAllHeads(triple.tail, triple.relation, scores);
      const double head_rank = RankHead(triple, scores, options.filtered);
      const size_t head_candidates =
          CountHeadCandidates(triple, num_entities, options.filtered);
      local.overall.AddRank(tail_rank, tail_candidates);
      local.overall.AddRank(head_rank, head_candidates);
      PerRelationMetrics& rel =
          local.per_relation[size_t(triple.relation)];
      rel.tail_queries.AddRank(tail_rank, tail_candidates);
      rel.head_queries.AddRank(head_rank, head_candidates);
    }
    MutexLock lock(merge_mutex);
    result.overall.Merge(local.overall);
    for (int32_t r = 0; r < num_relations_; ++r) {
      result.per_relation[size_t(r)].tail_queries.Merge(
          local.per_relation[size_t(r)].tail_queries);
      result.per_relation[size_t(r)].head_queries.Merge(
          local.per_relation[size_t(r)].head_queries);
    }
  });
  return result;
}

RankingMetrics Evaluator::EvaluateOverall(const KgeModel& model,
                                          const std::vector<Triple>& triples,
                                          const EvalOptions& options) const {
  return Evaluate(model, triples, options).overall;
}

}  // namespace kge
