#include "eval/export.h"

#include "util/io.h"
#include "util/string_utils.h"

namespace kge {

Status ExportEmbeddingsTsv(const EmbeddingStore& store,
                           const Vocabulary* names,
                           const std::string& vectors_path,
                           const std::string& metadata_path) {
  if (names != nullptr && names->size() != store.num_ids()) {
    return Status::InvalidArgument(
        StrFormat("vocabulary size %d != embedding ids %d", names->size(),
                  store.num_ids()));
  }
  std::string vectors;
  vectors.reserve(size_t(store.num_ids()) *
                  size_t(store.num_vectors() * store.dim()) * 10);
  for (int32_t id = 0; id < store.num_ids(); ++id) {
    const auto embedding = store.Of(id);
    for (size_t d = 0; d < embedding.size(); ++d) {
      if (d > 0) vectors += '\t';
      vectors += StrFormat("%.6g", embedding[d]);
    }
    vectors += '\n';
  }
  KGE_RETURN_IF_ERROR(WriteStringToFile(vectors_path, vectors));

  if (names != nullptr && !metadata_path.empty()) {
    std::string metadata;
    for (int32_t id = 0; id < store.num_ids(); ++id) {
      metadata += names->NameOf(id);
      metadata += '\n';
    }
    KGE_RETURN_IF_ERROR(WriteStringToFile(metadata_path, metadata));
  }
  return Status::Ok();
}

}  // namespace kge
