// Structured evaluation reports: groups the per-relation ranking metrics
// by relation structure (mapping category, symmetry class, inverse
// availability), making the paper's qualitative claims inspectable —
// e.g. DistMult's deficit concentrates on asymmetric relations, and
// ComplEx's advantage on relations whose inverse appears in training.
#ifndef KGE_EVAL_REPORT_H_
#define KGE_EVAL_REPORT_H_

#include <string>
#include <vector>

#include "eval/evaluator.h"
#include "kg/relation_analysis.h"
#include "kg/vocabulary.h"

namespace kge {

struct CategoryMetrics {
  std::string category;
  RankingMetrics metrics;
};

// Aggregates per-relation results into mapping-category buckets
// (1-1 / 1-N / N-1 / N-N), counting both query directions.
std::vector<CategoryMetrics> GroupByMappingCategory(
    const EvalResult& result, const std::vector<RelationStats>& stats);

// Aggregates into symmetry buckets: "symmetric" (symmetry >= 0.8),
// "antisymmetric" (<= 0.2), "mixed" otherwise.
std::vector<CategoryMetrics> GroupBySymmetry(
    const EvalResult& result, const std::vector<RelationStats>& stats);

// Renders the full per-relation breakdown plus both groupings as an
// aligned text report. `relations` supplies names; may be empty.
std::string RenderEvaluationReport(const EvalResult& result,
                                   const std::vector<RelationStats>& stats,
                                   const Vocabulary& relations);

}  // namespace kge

#endif  // KGE_EVAL_REPORT_H_
