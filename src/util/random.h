// Deterministic pseudo-random number generation for all stochastic
// components (initialization, shuffling, negative sampling, data
// generation). Xoshiro256++ seeded via SplitMix64: fast, high quality,
// and reproducible across platforms (unlike std::mt19937 distributions,
// whose outputs are implementation-defined for std::normal_distribution).
#ifndef KGE_UTIL_RANDOM_H_
#define KGE_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace kge {

// SplitMix64 step; used for seeding and as a cheap standalone generator.
uint64_t SplitMix64Next(uint64_t* state);

// Derives an independent RNG stream seed for shard `b` of unit-of-work
// `a` under a user seed, by chaining full SplitMix64 finalizations:
//   mix(mix(mix(seed) ^ a) ^ b).
// Unlike a `seed ^ a*K1 ^ b*K2` folding, two different (a, b) pairs can
// only collide if the avalanched intermediate hashes collide (a ~2^-64
// event), not whenever the XOR of scaled counters happens to cancel.
uint64_t DeriveStreamSeed(uint64_t seed, uint64_t a, uint64_t b);

// Complete serializable state of an Rng: the xoshiro256++ words plus the
// Box-Muller cache (a gaussian draw produces two values; the spare one
// must survive a checkpoint/resume cycle or the stream diverges).
struct RngState {
  uint64_t s[4] = {0, 0, 0, 0};
  bool has_cached_gaussian = false;
  double cached_gaussian = 0.0;
};

// Xoshiro256++ engine wrapped with distribution helpers. Copyable so that
// per-thread streams can be forked deterministically via Fork().
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  // Next raw 64 random bits.
  uint64_t NextUint64();

  // Uniform in [0, bound). `bound` must be > 0. Uses rejection sampling to
  // avoid modulo bias.
  uint64_t NextBounded(uint64_t bound);

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform float in [lo, hi).
  float NextUniform(float lo, float hi);

  // Standard normal via Box-Muller (deterministic, platform independent).
  double NextGaussian();

  // Bernoulli draw with probability `p` of true.
  bool NextBool(double p);

  // Deterministic Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    if (values->empty()) return;
    for (std::size_t i = values->size() - 1; i > 0; --i) {
      std::size_t j = static_cast<std::size_t>(NextBounded(i + 1));
      std::swap((*values)[i], (*values)[j]);
    }
  }

  // Returns an independent generator derived from this one's stream.
  Rng Fork();

  // Snapshot / restore the full generator state (for exact training
  // resume): SetState(GetState()) round-trips bit-exactly.
  RngState GetState() const;
  void SetState(const RngState& state);

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace kge

#endif  // KGE_UTIL_RANDOM_H_
