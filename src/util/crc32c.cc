#include "util/crc32c.h"

#include <array>

namespace kge {
namespace {

// Reflected CRC32C polynomial.
constexpr uint32_t kPoly = 0x82F63B78u;

constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = MakeTable();

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t count) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  uint32_t state = ~crc;
  for (size_t i = 0; i < count; ++i) {
    state = (state >> 8) ^ kTable[(state ^ bytes[i]) & 0xFFu];
  }
  return ~state;
}

uint32_t Crc32c(const void* data, size_t count) {
  return Crc32cExtend(0, data, count);
}

}  // namespace kge
