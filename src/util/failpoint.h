// Failpoints: named fault-injection sites for crash-safety testing.
//
// A failpoint is a `KGE_FAILPOINT("site.name")` expression placed at a
// point where a crash or I/O error must be survivable (checkpoint
// writes, the epoch loop). In normal builds the macro is a constant
// `Status::Ok()` and the site costs nothing. When the build opts in
// with -DKGE_FAILPOINTS (CMake option KGE_FAILPOINTS=ON), each site
// consults a process-wide registry that can be armed:
//
//   * programmatically — failpoint::Set("ckpt.save.latest", "crash@2");
//   * via the environment — KGE_FAILPOINTS="train.epoch.end=crash@2"
//     (comma-separated site=spec pairs, parsed on first evaluation).
//
// A spec is `<action>[@<hit>]` with 1-based `hit` (default 1):
//   crash@N   call _exit(kFailpointExitCode) on the N-th evaluation of
//             the site — simulates SIGKILL/power loss at that point
//   error@N   return Status::IoError on the N-th evaluation (one-shot;
//             later evaluations pass), for testing error-path handling
//   off       disarm the site
//
// The kill-and-resume harness (tests/checkpoint_resume_test.cc and the
// CI smoke job) arms each registered crash site in a child process and
// proves that the `latest` checkpoint pointer never references a torn
// or checksum-invalid file, no matter where the process died.
#ifndef KGE_UTIL_FAILPOINT_H_
#define KGE_UTIL_FAILPOINT_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace kge {
namespace failpoint {

// Exit code used by `crash` actions (distinguishable from normal exits
// and from sanitizer aborts in test harnesses).
inline constexpr int kFailpointExitCode = 42;

// True when the build was configured with KGE_FAILPOINTS and sites are
// live; false when KGE_FAILPOINT compiles to a constant Ok.
bool Enabled();

// Arms `site` with `spec` ("crash", "crash@3", "error@2", "off").
// Returns InvalidArgument for a malformed spec. Works even in builds
// without KGE_FAILPOINTS (the registry exists; sites just never consult
// it), which keeps tests compilable everywhere.
Status Set(const std::string& site, const std::string& spec);

// Disarms every site and resets hit counters and the env-parsed flag.
void ClearAll();

// Evaluates a site: counts the hit and performs the armed action, if
// any. Called via KGE_FAILPOINT; exposed for the registry's own tests.
Status Evaluate(const char* site);

// Every site name compiled into the library, for harnesses that iterate
// "arm each crash site in a child and prove recovery". Kept in one
// place so a new KGE_FAILPOINT site cannot be forgotten by the matrix
// test (which cross-checks this list).
std::vector<std::string> KnownSites();

}  // namespace failpoint
}  // namespace kge

#if defined(KGE_FAILPOINTS)
#define KGE_FAILPOINT(site) ::kge::failpoint::Evaluate(site)
#else
#define KGE_FAILPOINT(site) ::kge::Status::Ok()
#endif

#endif  // KGE_UTIL_FAILPOINT_H_
