#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace kge {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code_);
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

namespace internal {

void AbortOnBadResultAccess(const Status& status) {
  std::fprintf(stderr, "FATAL: accessed value of error Result: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace kge
