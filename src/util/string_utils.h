// Small string helpers shared by dataset loading and CLI parsing.
#ifndef KGE_UTIL_STRING_UTILS_H_
#define KGE_UTIL_STRING_UTILS_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace kge {

// Splits on a single character; keeps empty fields.
std::vector<std::string> SplitString(std::string_view text, char sep);

// Splits on any run of whitespace; drops empty fields.
std::vector<std::string> SplitWhitespace(std::string_view text);

// Removes leading/trailing whitespace.
std::string_view TrimString(std::string_view text);

// Joins `parts` with `sep`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

// Strict numeric parsing: the whole string must be consumed.
Result<int64_t> ParseInt64(std::string_view text);
Result<double> ParseDouble(std::string_view text);

// printf-style formatting into std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace kge

#endif  // KGE_UTIL_STRING_UTILS_H_
