#include "util/table_printer.h"

#include <algorithm>
#include <cstdio>

#include "util/string_utils.h"

namespace kge {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TablePrinter::AddMetricsRow(const std::string& label,
                                 const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.push_back(label);
  for (double v : values) cells.push_back(StrFormat("%.3f", v));
  AddRow(std::move(cells));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : "";
      line += cell;
      if (c + 1 < widths.size()) {
        line.append(widths[c] - cell.size() + 2, ' ');
      }
    }
    line += '\n';
    return line;
  };
  std::string out = render_row(header_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  out.append(total > 2 ? total - 2 : total, '-');
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace kge
