#include "util/logging.h"

#include <atomic>
#include <cstdio>

#include "util/thread_annotations.h"

namespace kge {
namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};
// Serializes writes to stderr so concurrent log lines never interleave.
// Mutex is constant-initialized, so it is safe to use from any static
// initialization context. The guarded "state" is the stderr stream itself,
// which has no member to annotate; keep all writes in LogMessage::~LogMessage.
Mutex g_log_mutex;

char LevelLetter(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return 'D';
    case LogLevel::kInfo:
      return 'I';
    case LogLevel::kWarning:
      return 'W';
    case LogLevel::kError:
      return 'E';
    case LogLevel::kOff:
      return '?';
  }
  return '?';
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >=
               g_log_level.load(std::memory_order_relaxed)),
      level_(level) {
  if (!enabled_) return;
  // Keep only the basename of the file for compact lines.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << LevelLetter(level_) << ' ' << base << ':' << line << "] ";
}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  stream_ << '\n';
  const std::string line = stream_.str();
  MutexLock lock(g_log_mutex);
  std::fputs(line.c_str(), stderr);
}

}  // namespace internal
}  // namespace kge
