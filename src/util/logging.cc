#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <mutex>

namespace kge {
namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_log_mutex;

char LevelLetter(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return 'D';
    case LogLevel::kInfo:
      return 'I';
    case LogLevel::kWarning:
      return 'W';
    case LogLevel::kError:
      return 'E';
    case LogLevel::kOff:
      return '?';
  }
  return '?';
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >=
               g_log_level.load(std::memory_order_relaxed)),
      level_(level) {
  if (!enabled_) return;
  // Keep only the basename of the file for compact lines.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << LevelLetter(level_) << ' ' << base << ':' << line << "] ";
}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  stream_ << '\n';
  const std::string line = stream_.str();
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fputs(line.c_str(), stderr);
}

}  // namespace internal
}  // namespace kge
