// Clang thread-safety annotations and capability-annotated lock wrappers.
//
// Under Clang, `-Wthread-safety` statically verifies that every access to a
// `KGE_GUARDED_BY(mu)` member happens with `mu` held, that functions marked
// `KGE_REQUIRES(mu)` are only called under the lock, and that scoped lock
// objects pair acquire/release correctly. Under other compilers the macros
// expand to nothing and the wrappers behave exactly like std::mutex /
// std::lock_guard / std::condition_variable_any.
//
// Conventions for new code (see docs/API.md, "Sanitizers & lint"):
//   * Use kge::Mutex + kge::MutexLock instead of std::mutex + std::lock_guard
//     whenever the mutex guards class or namespace state.
//   * Annotate every guarded member with KGE_GUARDED_BY(mutex_).
//   * Annotate private helpers that expect the lock held with
//     KGE_REQUIRES(mutex_), and write condition-variable waits as explicit
//     `while (!pred) cv_.Wait(mutex_);` loops so the analysis can see them.
#ifndef KGE_UTIL_THREAD_ANNOTATIONS_H_
#define KGE_UTIL_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define KGE_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define KGE_THREAD_ANNOTATION(x)
#endif

// Data members: which capability protects them.
#define KGE_GUARDED_BY(x) KGE_THREAD_ANNOTATION(guarded_by(x))
#define KGE_PT_GUARDED_BY(x) KGE_THREAD_ANNOTATION(pt_guarded_by(x))

// Functions: capabilities that must be held (or must not be held) on entry.
#define KGE_REQUIRES(...) \
  KGE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define KGE_REQUIRES_SHARED(...) \
  KGE_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define KGE_EXCLUDES(...) KGE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Functions: capabilities acquired / released by the call.
#define KGE_ACQUIRE(...) \
  KGE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define KGE_ACQUIRE_SHARED(...) \
  KGE_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define KGE_RELEASE(...) \
  KGE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define KGE_RELEASE_SHARED(...) \
  KGE_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define KGE_TRY_ACQUIRE(...) \
  KGE_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define KGE_RETURN_CAPABILITY(x) KGE_THREAD_ANNOTATION(lock_returned(x))

// Types.
#define KGE_CAPABILITY(x) KGE_THREAD_ANNOTATION(capability(x))
#define KGE_SCOPED_CAPABILITY KGE_THREAD_ANNOTATION(scoped_lockable)

// Escape hatch for code the analysis cannot model.
#define KGE_NO_THREAD_SAFETY_ANALYSIS \
  KGE_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace kge {

// std::mutex with the capability annotation attached, so members can be
// declared KGE_GUARDED_BY(mutex_). Satisfies Lockable, which also lets
// CondVar (condition_variable_any) wait on it directly.
class KGE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() KGE_ACQUIRE() { mu_.lock(); }
  void unlock() KGE_RELEASE() { mu_.unlock(); }
  bool try_lock() KGE_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

// Scoped lock holding a Mutex for its lifetime (std::lock_guard shape).
class KGE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) KGE_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() KGE_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable usable with kge::Mutex. Wait() is annotated as
// requiring the mutex; write waits as explicit predicate loops:
//
//   MutexLock lock(mutex_);
//   while (!ready_) cv_.Wait(mutex_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Atomically releases `mu`, blocks, and re-acquires `mu` before
  // returning. Spurious wakeups are possible, as with std::condition_variable.
  void Wait(Mutex& mu) KGE_REQUIRES(mu) { cv_.wait(mu); }

  // Wait with a relative timeout. Returns false if the timeout elapsed
  // without a notification (the mutex is re-acquired either way). Used
  // by pollers that must both wake promptly on shutdown and tick on a
  // schedule (the serve-layer LATEST watcher).
  template <typename Rep, typename Period>
  bool WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout)
      KGE_REQUIRES(mu) {
    return cv_.wait_for(mu, timeout) == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace kge

#endif  // KGE_UTIL_THREAD_ANNOTATIONS_H_
