#include "util/random.h"

#include <cmath>

#include "util/check.h"

namespace kge {
namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64Next(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t DeriveStreamSeed(uint64_t seed, uint64_t a, uint64_t b) {
  uint64_t s = seed;
  uint64_t h = SplitMix64Next(&s);
  s = h ^ a;
  h = SplitMix64Next(&s);
  s = h ^ b;
  return SplitMix64Next(&s);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (uint64_t& s : state_) s = SplitMix64Next(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  KGE_DCHECK(bound > 0);
  // Rejection sampling over the largest multiple of `bound`.
  const uint64_t threshold = (~bound + 1) % bound;  // == 2^64 mod bound
  for (;;) {
    const uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  // 53 top bits into the mantissa.
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

float Rng::NextUniform(float lo, float hi) {
  return lo + static_cast<float>(NextDouble()) * (hi - lo);
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller transform.
  double u1 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  const double u2 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

Rng Rng::Fork() { return Rng(NextUint64()); }

RngState Rng::GetState() const {
  RngState state;
  for (int i = 0; i < 4; ++i) state.s[i] = state_[i];
  state.has_cached_gaussian = has_cached_gaussian_;
  state.cached_gaussian = cached_gaussian_;
  return state;
}

void Rng::SetState(const RngState& state) {
  for (int i = 0; i < 4; ++i) state_[i] = state.s[i];
  has_cached_gaussian_ = state.has_cached_gaussian;
  cached_gaussian_ = state.cached_gaussian;
}

}  // namespace kge
