// Console table formatting for the bench harness: the bench binaries print
// the same rows the paper's tables report, aligned for reading and easy to
// diff against EXPERIMENTS.md.
#ifndef KGE_UTIL_TABLE_PRINTER_H_
#define KGE_UTIL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace kge {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);

  // Convenience: first cell is a label, the rest are %.3f-formatted.
  void AddMetricsRow(const std::string& label,
                     const std::vector<double>& values);

  // Renders with column alignment and a header separator.
  std::string ToString() const;

  // Renders to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace kge

#endif  // KGE_UTIL_TABLE_PRINTER_H_
