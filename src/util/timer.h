// Wall-clock stopwatch for progress reporting and benches.
#ifndef KGE_UTIL_TIMER_H_
#define KGE_UTIL_TIMER_H_

#include <chrono>

namespace kge {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace kge

#endif  // KGE_UTIL_TIMER_H_
