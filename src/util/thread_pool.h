// Fixed-size thread pool with a ParallelFor helper. Used to parallelize
// ranking evaluation over candidate entities and batch gradient
// computation. With num_threads == 1 all work runs inline on the calling
// thread, which keeps single-core runs (and tests) deterministic.
#ifndef KGE_UTIL_THREAD_POOL_H_
#define KGE_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace kge {

class ThreadPool {
 public:
  // Creates `num_threads` workers. 0 or 1 means "run inline".
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.empty() ? 1 : threads_.size(); }

  // Schedules `task`; Wait() blocks until all scheduled tasks are done.
  void Schedule(std::function<void()> task);
  void Wait();

  // Splits [begin, end) into contiguous shards, runs
  // `body(shard_begin, shard_end)` on the pool, and waits for completion.
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t, size_t)>& body);

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable work_done_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace kge

#endif  // KGE_UTIL_THREAD_POOL_H_
