// Fixed-size thread pool with a ParallelFor helper. Used to parallelize
// ranking evaluation over candidate entities and batch gradient
// computation. With num_threads == 1 all work runs inline on the calling
// thread, which keeps single-core runs (and tests) deterministic.
//
// ParallelFor may be called from inside a pool task (nested parallelism):
// the calling thread helps drain the queue while it waits for its own
// shards, so nesting cannot deadlock even on a single-worker pool.
#ifndef KGE_UTIL_THREAD_POOL_H_
#define KGE_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace kge {

class ThreadPool {
 public:
  // Creates `num_threads` workers. 0 or 1 means "run inline".
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.empty() ? 1 : threads_.size(); }

  // Schedules `task`; Wait() blocks until all scheduled tasks are done.
  // Tasks may themselves call Schedule; Wait() covers those too.
  void Schedule(std::function<void()> task) KGE_EXCLUDES(mutex_);
  void Wait() KGE_EXCLUDES(mutex_);

  // Splits [begin, end) into contiguous shards, runs
  // `body(shard_begin, shard_end)` on the pool, and waits for completion.
  // Safe to call from inside a pool task; the caller helps run queued
  // work while waiting.
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t, size_t)>& body)
      KGE_EXCLUDES(mutex_);

 private:
  void WorkerLoop() KGE_EXCLUDES(mutex_);
  // Pops and runs one queued task on the calling thread. Returns false if
  // the queue was empty.
  bool RunOneTask() KGE_EXCLUDES(mutex_);
  void FinishTask() KGE_EXCLUDES(mutex_);

  std::vector<std::thread> threads_;
  Mutex mutex_;
  CondVar work_available_;
  CondVar work_done_;
  std::deque<std::function<void()>> queue_ KGE_GUARDED_BY(mutex_);
  // Scheduled-but-not-finished task count (queued + running).
  size_t in_flight_ KGE_GUARDED_BY(mutex_) = 0;
  bool shutting_down_ KGE_GUARDED_BY(mutex_) = false;
};

}  // namespace kge

#endif  // KGE_UTIL_THREAD_POOL_H_
