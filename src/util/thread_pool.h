// Fixed-size thread pool with per-stage completion groups. Used to
// parallelize ranking evaluation over candidate entities and the
// pipelined trainers' stage machines. With num_threads == 1 all work
// runs inline on the calling thread, which keeps single-core runs (and
// tests) deterministic.
//
// Two scheduling surfaces:
//
//   * Schedule(std::function) + Wait(): the legacy global-barrier API.
//     Wait() blocks until every function task is done. Convenient for
//     cold paths; each call may heap-allocate the closure.
//
//   * StageGroup + ScheduleRange()/StageFor() + WaitStage(): per-stage
//     completion groups. Tasks are plain (function pointer, context,
//     range) records stored in a pre-reserved ring, so the steady state
//     enqueues and completes without a single heap allocation, and
//     WaitStage(group) waits for exactly that group's tasks — other
//     stages keep flowing through the pool concurrently. This is what
//     lets the trainers overlap sampling of batch N+1 with the
//     score/merge/apply stages of batch N without a global barrier.
//
// Both Wait flavors may be called from inside a pool task (nested
// parallelism): the calling thread helps drain the queue while it waits,
// so nesting cannot deadlock even on a single-worker pool.
#ifndef KGE_UTIL_THREAD_POOL_H_
#define KGE_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace kge {

class ThreadPool {
 public:
  // Plain task shape for the allocation-free stage queue: runs
  // fn(ctx, begin, end). `ctx` must stay valid until the task's group
  // has been waited on.
  using RangeFn = void (*)(void* ctx, size_t begin, size_t end);

  // A per-stage completion group. Create one per pipeline stage (or on
  // the stack for a fork-join region), schedule tasks into it, and
  // WaitStage() for just those tasks — scheduling into other groups
  // proceeds concurrently. A group may be reused after WaitStage()
  // returns; it must not be destroyed with tasks pending.
  class StageGroup {
   public:
    StageGroup() = default;
    StageGroup(const StageGroup&) = delete;
    StageGroup& operator=(const StageGroup&) = delete;

   private:
    friend class ThreadPool;
    // Scheduled-but-unfinished tasks; guarded by the owning pool's
    // mutex_ (the annotation cannot name another object's member).
    size_t pending_ = 0;
  };

  // Creates `num_threads` workers. 0 or 1 means "run inline".
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.empty() ? 1 : threads_.size(); }

  // Schedules `task`; Wait() blocks until all scheduled tasks are done.
  // Tasks may themselves call Schedule; Wait() covers those too. Stage
  // tasks are NOT counted by Wait() — use WaitStage for those.
  void Schedule(std::function<void()> task) KGE_EXCLUDES(mutex_);
  void Wait() KGE_EXCLUDES(mutex_);

  // Enqueues fn(ctx, begin, end) into `group`. Inline pools run the task
  // immediately. Steady-state allocation-free once the ring has grown to
  // (or been ReserveStageTasks'd at) the high-water task count.
  void ScheduleRange(StageGroup* group, RangeFn fn, void* ctx, size_t begin,
                     size_t end) KGE_EXCLUDES(mutex_);

  // Blocks until every task scheduled into `group` has finished. The
  // caller helps drain the queue (any group's tasks) while waiting, so
  // WaitStage is safe from inside a pool task.
  void WaitStage(StageGroup* group) KGE_EXCLUDES(mutex_);

  // Pre-sizes the stage-task ring so the steady state never grows it.
  void ReserveStageTasks(size_t capacity) KGE_EXCLUDES(mutex_);

  // Shards [begin, end) across the pool into `group` without waiting:
  // the allocation-free fan-out primitive for pipeline stages. `body`
  // (callable as body(shard_begin, shard_end)) must outlive the group's
  // WaitStage. No std::function is formed — the body is passed by
  // context pointer through the POD ring.
  template <typename Body>
  void StageFanOut(StageGroup* group, size_t begin, size_t end,
                   const Body& body) {
    if (begin >= end) return;
    const size_t n = end - begin;
    const size_t workers = num_threads();
    RangeFn tramp = [](void* ctx, size_t b, size_t e) {
      (*static_cast<const Body*>(ctx))(b, e);
    };
    void* ctx = const_cast<void*>(static_cast<const void*>(&body));
    if (workers == 1 || n == 1) {
      ScheduleRange(group, tramp, ctx, begin, end);
      return;
    }
    // Over-shard lightly so uneven tasks balance.
    const size_t shards = n < workers * 4 ? n : workers * 4;
    const size_t chunk = (n + shards - 1) / shards;
    for (size_t s = begin; s < end; s += chunk) {
      ScheduleRange(group, tramp, ctx, s, s + chunk < end ? s + chunk : end);
    }
  }

  // Fork-join over [begin, end): StageFanOut into a stack group and
  // WaitStage. Unlike ParallelFor this forms no std::function, so hot
  // per-batch callers (gradient merge, optimizer apply) stay
  // allocation-free.
  template <typename Body>
  void StageFor(size_t begin, size_t end, const Body& body) {
    if (begin >= end) return;
    if (threads_.empty()) {
      body(begin, end);
      return;
    }
    StageGroup group;
    StageFanOut(&group, begin, end, body);
    WaitStage(&group);
  }

  // Splits [begin, end) into contiguous shards, runs
  // `body(shard_begin, shard_end)` on the pool, and waits for completion.
  // Safe to call from inside a pool task; the caller helps run queued
  // work while waiting. (Thin std::function wrapper over StageFor; cold
  // callers only — the closure may allocate.)
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t, size_t)>& body)
      KGE_EXCLUDES(mutex_);

 private:
  struct RangeTask {
    RangeFn fn;
    void* ctx;
    size_t begin;
    size_t end;
    StageGroup* group;
  };

  void WorkerLoop() KGE_EXCLUDES(mutex_);
  // Pops and runs one queued task (stage ring first, then the function
  // queue) on the calling thread. Returns false if both were empty.
  bool RunOneTask() KGE_EXCLUDES(mutex_);
  void FinishTask() KGE_EXCLUDES(mutex_);
  void FinishRangeTask(StageGroup* group) KGE_EXCLUDES(mutex_);
  bool PopRangeTask(RangeTask* task) KGE_EXCLUDES(mutex_);
  void PushRangeTask(const RangeTask& task) KGE_REQUIRES(mutex_);

  std::vector<std::thread> threads_;
  Mutex mutex_;
  CondVar work_available_;
  CondVar work_done_;
  CondVar stage_done_;
  std::deque<std::function<void()>> queue_ KGE_GUARDED_BY(mutex_);
  // Stage-task ring buffer (power-of-two capacity, FIFO). Grows only
  // until the high-water in-flight task count is reached.
  std::vector<RangeTask> ring_ KGE_GUARDED_BY(mutex_);
  size_t ring_head_ KGE_GUARDED_BY(mutex_) = 0;
  size_t ring_count_ KGE_GUARDED_BY(mutex_) = 0;
  // Scheduled-but-not-finished function-task count (queued + running).
  size_t in_flight_ KGE_GUARDED_BY(mutex_) = 0;
  bool shutting_down_ KGE_GUARDED_BY(mutex_) = false;
};

// Resolves a user-facing thread-count knob: values >= 1 pass through,
// 0 (the "auto" default) detects std::thread::hardware_concurrency()
// (falling back to 1 when the runtime reports 0). Results never depend
// on the resolved count — the trainers' determinism contract — so auto
// is always safe to default.
size_t ResolveNumThreads(int requested);

}  // namespace kge

#endif  // KGE_UTIL_THREAD_POOL_H_
