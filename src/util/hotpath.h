// Static hot-path contract annotations.
//
// KGE_HOT_NOALLOC marks a function as a *hot-path root*: every function
// transitively reachable from it must not allocate, must not throw, and
// must not consult any nondeterminism source (clocks, rand, environment,
// unordered-container iteration). The contract is verified statically by
// scripts/hotpath_check.py, which builds the transitive call graph from
// every annotated root and fails on any reachable violation; the runtime
// side of the same contract is the operator-new counter in
// bench/perf_report (allocs-per-triple gates in CI).
//
// Placement: put the macro on its own line immediately before the
// function declaration (headers) or definition (.cc files):
//
//   KGE_HOT_NOALLOC
//   double Dot(const float* a, const float* b, size_t n);
//
// Virtual methods: annotating the base declaration is sufficient — the
// analyzer treats every same-named override as a root too, so a new
// model's ScoreAll* overrides inherit the contract automatically. The
// overrides in this tree are annotated anyway, as documentation.
//
// Escape hatch: a violation that is intentional (e.g. the cold-start
// high-water growth of a reused scratch buffer) is suppressed with a
// trailing comment on the offending line, or on the line above it:
//
//   if (buf.size() < n) buf.resize(n);  // kge-hotpath: allow(cold-start)
//
// Suppressions must name a reason and are reported (counted) by the
// analyzer, so the allowlist stays auditable. See DESIGN.md §5d for the
// analyzer algorithm and the allow-policy.
//
// Under Clang the macro also emits [[clang::annotate("kge_hot_noalloc")]]
// so AST-level tooling (scripts/hotpath_check.py --frontend=clang) can
// recover the root set without the textual scan; under other compilers it
// expands to nothing and the textual frontend recognizes the macro name
// itself.
#ifndef KGE_UTIL_HOTPATH_H_
#define KGE_UTIL_HOTPATH_H_

#if defined(__clang__)
#define KGE_HOT_NOALLOC [[clang::annotate("kge_hot_noalloc")]]
#else
#define KGE_HOT_NOALLOC
#endif

#endif  // KGE_UTIL_HOTPATH_H_
