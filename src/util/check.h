// CHECK macros for programmer-error invariants (always on, also in release
// builds), in the style of database systems' assertion macros. Use Status
// (util/status.h) for expected runtime failures instead.
#ifndef KGE_UTIL_CHECK_H_
#define KGE_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace kge::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "FATAL %s:%d: KGE_CHECK(%s) failed\n", file, line,
               expr);
  std::abort();
}

}  // namespace kge::internal

#define KGE_CHECK(expr)                                          \
  do {                                                           \
    if (!(expr)) ::kge::internal::CheckFailed(__FILE__, __LINE__, #expr); \
  } while (0)

#define KGE_CHECK_OK(expr)                                                 \
  do {                                                                     \
    ::kge::Status kge_check_status_ = (expr);                              \
    if (!kge_check_status_.ok()) {                                         \
      std::fprintf(stderr, "FATAL %s:%d: status not OK: %s\n", __FILE__,   \
                   __LINE__, kge_check_status_.ToString().c_str());        \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

// Debug-only check for hot paths; compiled out in NDEBUG builds.
#ifdef NDEBUG
#define KGE_DCHECK(expr) \
  do {                   \
  } while (0)
#else
#define KGE_DCHECK(expr) KGE_CHECK(expr)
#endif

#endif  // KGE_UTIL_CHECK_H_
