// Tiny declarative command-line flag parser used by the bench and example
// binaries. Supports --name=value and --name value forms, plus --help.
#ifndef KGE_UTIL_FLAGS_H_
#define KGE_UTIL_FLAGS_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace kge {

class FlagParser {
 public:
  // `program_description` is printed by --help.
  explicit FlagParser(std::string program_description);

  // Registration. The pointed-to variable holds the default value and
  // receives the parsed value. Pointers must outlive Parse().
  void AddInt(const std::string& name, int64_t* value,
              const std::string& help);
  void AddDouble(const std::string& name, double* value,
                 const std::string& help);
  void AddBool(const std::string& name, bool* value, const std::string& help);
  void AddString(const std::string& name, std::string* value,
                 const std::string& help);

  // Parses argv. Unknown flags are errors. If --help is present, prints
  // usage and returns a NotFound status the caller should treat as "exit 0".
  Status Parse(int argc, char** argv);

  // Positional (non-flag) arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

  std::string UsageString() const;

 private:
  enum class Type { kInt, kDouble, kBool, kString };
  struct Flag {
    std::string name;
    Type type;
    void* target;
    std::string help;
    std::string default_repr;
  };

  const Flag* FindFlag(const std::string& name) const;
  static Status SetValue(const Flag& flag, const std::string& text);

  std::string description_;
  std::vector<Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace kge

#endif  // KGE_UTIL_FLAGS_H_
