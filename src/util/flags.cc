#include "util/flags.h"

#include <cstdio>

#include "util/check.h"
#include "util/string_utils.h"

namespace kge {

FlagParser::FlagParser(std::string program_description)
    : description_(std::move(program_description)) {}

void FlagParser::AddInt(const std::string& name, int64_t* value,
                        const std::string& help) {
  KGE_CHECK(FindFlag(name) == nullptr);
  flags_.push_back(
      {name, Type::kInt, value, help, StrFormat("%lld", (long long)*value)});
}

void FlagParser::AddDouble(const std::string& name, double* value,
                           const std::string& help) {
  KGE_CHECK(FindFlag(name) == nullptr);
  flags_.push_back({name, Type::kDouble, value, help, StrFormat("%g", *value)});
}

void FlagParser::AddBool(const std::string& name, bool* value,
                         const std::string& help) {
  KGE_CHECK(FindFlag(name) == nullptr);
  flags_.push_back(
      {name, Type::kBool, value, help, *value ? "true" : "false"});
}

void FlagParser::AddString(const std::string& name, std::string* value,
                           const std::string& help) {
  KGE_CHECK(FindFlag(name) == nullptr);
  flags_.push_back({name, Type::kString, value, help, *value});
}

const FlagParser::Flag* FlagParser::FindFlag(const std::string& name) const {
  for (const Flag& f : flags_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

Status FlagParser::SetValue(const Flag& flag, const std::string& text) {
  switch (flag.type) {
    case Type::kInt: {
      Result<int64_t> parsed = ParseInt64(text);
      if (!parsed.ok()) return parsed.status();
      *static_cast<int64_t*>(flag.target) = *parsed;
      return Status::Ok();
    }
    case Type::kDouble: {
      Result<double> parsed = ParseDouble(text);
      if (!parsed.ok()) return parsed.status();
      *static_cast<double*>(flag.target) = *parsed;
      return Status::Ok();
    }
    case Type::kBool: {
      if (text == "true" || text == "1") {
        *static_cast<bool*>(flag.target) = true;
      } else if (text == "false" || text == "0") {
        *static_cast<bool*>(flag.target) = false;
      } else {
        return Status::InvalidArgument("bad bool value for --" + flag.name +
                                       ": " + text);
      }
      return Status::Ok();
    }
    case Type::kString:
      *static_cast<std::string*>(flag.target) = text;
      return Status::Ok();
  }
  return Status::Internal("unreachable");
}

Status FlagParser::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    if (arg == "help") {
      std::fputs(UsageString().c_str(), stdout);
      return Status::NotFound("--help requested");
    }
    std::string name = arg;
    std::string value;
    bool has_value = false;
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      has_value = true;
    }
    const Flag* flag = FindFlag(name);
    if (flag == nullptr)
      return Status::InvalidArgument("unknown flag --" + name);
    if (!has_value) {
      if (flag->type == Type::kBool) {
        // Bare --flag sets a bool to true.
        value = "true";
      } else {
        if (i + 1 >= argc)
          return Status::InvalidArgument("missing value for --" + name);
        value = argv[++i];
      }
    }
    KGE_RETURN_IF_ERROR(SetValue(*flag, value));
  }
  return Status::Ok();
}

std::string FlagParser::UsageString() const {
  std::string usage = description_ + "\n\nFlags:\n";
  for (const Flag& f : flags_) {
    usage += StrFormat("  --%-24s %s (default: %s)\n", f.name.c_str(),
                       f.help.c_str(), f.default_repr.c_str());
  }
  return usage;
}

}  // namespace kge
