#include "util/string_utils.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cerrno>

namespace kge {

std::vector<std::string> SplitString(std::string_view text, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      parts.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> parts;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
    size_t start = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
    if (i > start) parts.emplace_back(text.substr(start, i - start));
  }
  return parts;
}

std::string_view TrimString(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin])))
    ++begin;
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1])))
    --end;
  return text.substr(begin, end - begin);
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string result;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) result.append(sep);
    result.append(parts[i]);
  }
  return result;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

Result<int64_t> ParseInt64(std::string_view text) {
  const std::string buffer(TrimString(text));
  if (buffer.empty())
    return Status::InvalidArgument("empty string is not an integer");
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(buffer.c_str(), &end, 10);
  if (errno == ERANGE)
    return Status::OutOfRange("integer out of range: " + buffer);
  if (end != buffer.c_str() + buffer.size())
    return Status::InvalidArgument("not an integer: " + buffer);
  return static_cast<int64_t>(value);
}

Result<double> ParseDouble(std::string_view text) {
  const std::string buffer(TrimString(text));
  if (buffer.empty())
    return Status::InvalidArgument("empty string is not a number");
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(buffer.c_str(), &end);
  if (errno == ERANGE)
    return Status::OutOfRange("number out of range: " + buffer);
  if (end != buffer.c_str() + buffer.size())
    return Status::InvalidArgument("not a number: " + buffer);
  return value;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string result;
  if (needed > 0) {
    result.resize(static_cast<size_t>(needed));
    std::vsnprintf(result.data(), result.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return result;
}

}  // namespace kge
