// Status and Result<T>: lightweight error propagation in the style used by
// database systems (RocksDB's Status, Arrow's Result). Expected failures
// (I/O, malformed input, bad configuration) return a Status; programmer
// errors abort via the KGE_CHECK macros in util/check.h.
#ifndef KGE_UTIL_STATUS_H_
#define KGE_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace kge {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIoError,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
};

// Returns a human-readable name for `code`, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

// Value-semantic status: either OK or a code plus message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Result<T> holds either a value or an error Status. Access to the value of
// an error Result aborts the process (checked access).
template <typename T>
class Result {
 public:
  // Intentionally implicit so functions can `return value;` / `return status;`.
  Result(T value) : data_(std::move(value)) {}
  Result(Status status) : data_(std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(data_);
  }

  const T& value() const& {
    AbortIfError();
    return std::get<T>(data_);
  }
  T& value() & {
    AbortIfError();
    return std::get<T>(data_);
  }
  T&& value() && {
    AbortIfError();
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void AbortIfError() const;

  std::variant<T, Status> data_;
};

namespace internal {
// Aborts the process with `status` printed to stderr. Out-of-line so the
// template above stays small.
[[noreturn]] void AbortOnBadResultAccess(const Status& status);
}  // namespace internal

template <typename T>
void Result<T>::AbortIfError() const {
  if (!ok()) internal::AbortOnBadResultAccess(std::get<Status>(data_));
}

// Propagates a non-OK Status from an expression, RocksDB-style.
#define KGE_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::kge::Status kge_status_ = (expr);          \
    if (!kge_status_.ok()) return kge_status_;   \
  } while (0)

}  // namespace kge

#endif  // KGE_UTIL_STATUS_H_
