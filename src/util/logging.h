// Minimal leveled logger writing to stderr. Thread-safe at the line level.
//
//   KGE_LOG(INFO) << "epoch " << epoch << " loss " << loss;
//
// The global level can be raised to silence progress output in tests.
#ifndef KGE_UTIL_LOGGING_H_
#define KGE_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace kge {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

// Sets / gets the global minimum level that is actually emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

// Accumulates one log line and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define KGE_LOG(severity)                                  \
  ::kge::internal::LogMessage(::kge::LogLevel::k##severity, \
                              __FILE__, __LINE__)

}  // namespace kge

#endif  // KGE_UTIL_LOGGING_H_
