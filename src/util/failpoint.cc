#include "util/failpoint.h"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <unordered_map>

#include "util/string_utils.h"
#include "util/thread_annotations.h"

namespace kge {
namespace failpoint {
namespace {

enum class Action { kCrash, kError };

struct Armed {
  Action action;
  // 1-based evaluation count on which the action fires.
  uint64_t fire_on_hit;
  uint64_t hits = 0;
  bool fired = false;
};

struct Registry {
  Mutex mutex;
  std::unordered_map<std::string, Armed> sites KGE_GUARDED_BY(mutex);
  bool env_parsed KGE_GUARDED_BY(mutex) = false;
};

Registry& GetRegistry() {
  static Registry registry;
  return registry;
}

Result<Armed> ParseSpec(const std::string& spec) {
  std::string action = spec;
  uint64_t fire_on_hit = 1;
  const size_t at = spec.find('@');
  if (at != std::string::npos) {
    action = spec.substr(0, at);
    const std::string count = spec.substr(at + 1);
    if (count.empty()) {
      return Status::InvalidArgument("failpoint spec has empty hit count: " +
                                     spec);
    }
    // Digits only: strtoull would silently accept "-1" (wrapping) and
    // leading whitespace.
    for (char c : count) {
      if (c < '0' || c > '9') {
        return Status::InvalidArgument("failpoint spec has bad hit count: " +
                                       spec);
      }
    }
    char* end = nullptr;
    fire_on_hit = std::strtoull(count.c_str(), &end, 10);
    if (*end != '\0' || fire_on_hit == 0) {
      return Status::InvalidArgument("failpoint spec has bad hit count: " +
                                     spec);
    }
  }
  if (action == "crash") return Armed{Action::kCrash, fire_on_hit};
  if (action == "error") return Armed{Action::kError, fire_on_hit};
  return Status::InvalidArgument("unknown failpoint action: " + spec);
}

// Parses KGE_FAILPOINTS="site=spec,site=spec". Malformed entries are
// reported on stderr and skipped (an armed test harness should fail
// loudly later when the site never fires, not crash the trainee here).
void ParseEnvLocked(Registry& registry) KGE_REQUIRES(registry.mutex) {
  if (registry.env_parsed) return;
  registry.env_parsed = true;
  const char* env = std::getenv("KGE_FAILPOINTS");
  if (env == nullptr) return;
  for (const std::string& entry : SplitString(env, ',')) {
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr, "KGE_FAILPOINTS: ignoring malformed '%s'\n",
                   entry.c_str());
      continue;
    }
    const std::string site = entry.substr(0, eq);
    Result<Armed> armed = ParseSpec(entry.substr(eq + 1));
    if (!armed.ok()) {
      std::fprintf(stderr, "KGE_FAILPOINTS: %s\n",
                   armed.status().ToString().c_str());
      continue;
    }
    registry.sites[site] = *armed;
  }
}

}  // namespace

bool Enabled() {
#if defined(KGE_FAILPOINTS)
  return true;
#else
  return false;
#endif
}

Status Set(const std::string& site, const std::string& spec) {
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mutex);
  ParseEnvLocked(registry);
  if (spec == "off") {
    registry.sites.erase(site);
    return Status::Ok();
  }
  Result<Armed> armed = ParseSpec(spec);
  if (!armed.ok()) return armed.status();
  registry.sites[site] = *armed;
  return Status::Ok();
}

void ClearAll() {
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mutex);
  registry.sites.clear();
  // Leave env_parsed set: ClearAll means "disarm everything", including
  // whatever the environment configured.
  registry.env_parsed = true;
}

Status Evaluate(const char* site) {
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mutex);
  ParseEnvLocked(registry);
  auto it = registry.sites.find(site);
  if (it == registry.sites.end()) return Status::Ok();
  Armed& armed = it->second;
  ++armed.hits;
  if (armed.fired || armed.hits != armed.fire_on_hit) return Status::Ok();
  armed.fired = true;
  switch (armed.action) {
    case Action::kCrash:
      std::fprintf(stderr, "failpoint %s: simulating crash (hit %llu)\n",
                   site, (unsigned long long)armed.hits);
      std::fflush(stderr);
      // _exit, not abort/exit: no atexit handlers, no stream flushing,
      // no destructors — the closest portable stand-in for SIGKILL.
      ::_exit(kFailpointExitCode);
    case Action::kError:
      return Status::IoError(std::string("failpoint ") + site);
  }
  return Status::Ok();
}

std::vector<std::string> KnownSites() {
  // Sites prefixed "serve." fire only in the serving layer
  // (src/serve/); the training-side crash matrix skips them.
  return {
      "io.writer.close",     "io.writer.rename", "ckpt.save.begin",
      "ckpt.save.latest",    "ckpt.save.retention", "ckpt.load.begin",
      "train.epoch.end",     "train.epoch.after_ckpt",
      "serve.load.map",      "serve.load.verify",
      "serve.swap.publish",  "serve.respond.write",
  };
}

}  // namespace failpoint
}  // namespace kge
