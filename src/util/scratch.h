// Per-thread scratch buffers for hot-path code that must not allocate.
//
// The evaluator's inner loop calls ScoreAllTails/ScoreAllHeads twice per
// ranked triple; the trainer calls Score/AccumulateGradients per example.
// Any `std::vector` constructed inside those calls is a heap allocation
// per triple. The pattern below replaces them with a function-local
// thread_local vector that grows to the high-water mark once per thread
// and is reused forever after:
//
//   static thread_local std::vector<float> fold_buf;
//   std::span<float> fold = ScratchSpan(fold_buf, n);
//
// Per-thread storage means concurrent evaluator/trainer shards never
// share a buffer (no locks, no races — TSan-clean by construction). The
// returned span's contents are UNINITIALIZED: whatever the previous use
// left there. Zero it explicitly if the caller accumulates into it.
#ifndef KGE_UTIL_SCRATCH_H_
#define KGE_UTIL_SCRATCH_H_

#include <cstddef>
#include <span>
#include <vector>

namespace kge {

// Returns a span of `n` elements backed by `buf`, growing it if needed.
// Never shrinks, so steady-state calls perform zero heap allocations.
template <typename T>
inline std::span<T> ScratchSpan(std::vector<T>& buf, size_t n) {
  // kge-hotpath: allow(cold-start high-water growth of a reused buffer)
  if (buf.size() < n) buf.resize(n);
  return std::span<T>(buf.data(), n);
}

}  // namespace kge

#endif  // KGE_UTIL_SCRATCH_H_
