#include "util/thread_pool.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "util/check.h"

namespace kge {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads <= 1) return;  // Inline mode.
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.NotifyAll();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Schedule(std::function<void()> task) {
  if (threads_.empty()) {
    task();
    return;
  }
  {
    MutexLock lock(mutex_);
    // kge-hotpath: allow(task dispatch is batch-granularity, not per-triple)
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.NotifyOne();
}

void ThreadPool::Wait() {
  if (threads_.empty()) return;
  MutexLock lock(mutex_);
  while (in_flight_ != 0) work_done_.Wait(mutex_);
}

void ThreadPool::PushRangeTask(const RangeTask& task) {
  if (ring_count_ == ring_.size()) {
    // Grow to the high-water in-flight count once, then never again.
    const size_t capacity = ring_.empty() ? 64 : ring_.size() * 2;
    std::vector<RangeTask> grown;
    // kge-hotpath: allow(ring growth to high-water in-flight task count)
    grown.resize(capacity);
    for (size_t i = 0; i < ring_count_; ++i) {
      grown[i] = ring_[(ring_head_ + i) & (ring_.size() - 1)];
    }
    ring_ = std::move(grown);
    ring_head_ = 0;
  }
  ring_[(ring_head_ + ring_count_) & (ring_.size() - 1)] = task;
  ++ring_count_;
}

void ThreadPool::ReserveStageTasks(size_t capacity) {
  size_t rounded = 64;
  while (rounded < capacity) rounded *= 2;
  MutexLock lock(mutex_);
  if (rounded <= ring_.size()) return;
  std::vector<RangeTask> grown;
  grown.resize(rounded);
  for (size_t i = 0; i < ring_count_; ++i) {
    grown[i] = ring_[(ring_head_ + i) & (ring_.size() - 1)];
  }
  ring_ = std::move(grown);
  ring_head_ = 0;
}

void ThreadPool::ScheduleRange(StageGroup* group, RangeFn fn, void* ctx,
                               size_t begin, size_t end) {
  KGE_CHECK(group != nullptr && fn != nullptr);
  if (threads_.empty()) {
    fn(ctx, begin, end);
    return;
  }
  {
    MutexLock lock(mutex_);
    PushRangeTask({fn, ctx, begin, end, group});
    ++group->pending_;
  }
  work_available_.NotifyOne();
}

bool ThreadPool::PopRangeTask(RangeTask* task) {
  MutexLock lock(mutex_);
  if (ring_count_ == 0) return false;
  *task = ring_[ring_head_ & (ring_.size() - 1)];
  ring_head_ = (ring_head_ + 1) & (ring_.size() - 1);
  --ring_count_;
  return true;
}

void ThreadPool::FinishRangeTask(StageGroup* group) {
  MutexLock lock(mutex_);
  if (--group->pending_ == 0) stage_done_.NotifyAll();
}

void ThreadPool::WaitStage(StageGroup* group) {
  if (threads_.empty()) return;
  for (;;) {
    {
      MutexLock lock(mutex_);
      if (group->pending_ == 0) return;
    }
    if (!RunOneTask()) {
      // Queues empty: the group's remaining tasks are running on
      // workers. (Tasks they spawn into this group extend the wait; the
      // workers that spawned them are free to run them.)
      MutexLock lock(mutex_);
      while (group->pending_ != 0) stage_done_.Wait(mutex_);
      return;
    }
  }
}

bool ThreadPool::RunOneTask() {
  RangeTask range;
  if (PopRangeTask(&range)) {
    range.fn(range.ctx, range.begin, range.end);
    FinishRangeTask(range.group);
    return true;
  }
  std::function<void()> task;
  {
    MutexLock lock(mutex_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  FinishTask();
  return true;
}

void ThreadPool::FinishTask() {
  MutexLock lock(mutex_);
  --in_flight_;
  if (in_flight_ == 0) work_done_.NotifyAll();
}

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t, size_t)>& body) {
  KGE_CHECK(begin <= end);
  if (begin == end) return;
  if (threads_.empty() || end - begin == 1) {
    body(begin, end);
    return;
  }
  StageFor(begin, end, body);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    RangeTask range;
    bool have_range = false;
    std::function<void()> task;
    bool have_task = false;
    {
      MutexLock lock(mutex_);
      while (!shutting_down_ && queue_.empty() && ring_count_ == 0) {
        work_available_.Wait(mutex_);
      }
      if (ring_count_ != 0) {
        range = ring_[ring_head_ & (ring_.size() - 1)];
        ring_head_ = (ring_head_ + 1) & (ring_.size() - 1);
        --ring_count_;
        have_range = true;
      } else if (!queue_.empty()) {
        task = std::move(queue_.front());
        queue_.pop_front();
        have_task = true;
      } else {
        return;  // Shutting down and drained.
      }
    }
    if (have_range) {
      range.fn(range.ctx, range.begin, range.end);
      FinishRangeTask(range.group);
    } else if (have_task) {
      task();
      FinishTask();
    }
  }
}

size_t ResolveNumThreads(int requested) {
  if (requested >= 1) return size_t(requested);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : size_t(hw);
}

}  // namespace kge
