#include "util/thread_pool.h"

#include <algorithm>

#include "util/check.h"

namespace kge {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads <= 1) return;  // Inline mode.
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Schedule(std::function<void()> task) {
  if (threads_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  if (threads_.empty()) return;
  std::unique_lock<std::mutex> lock(mutex_);
  work_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t, size_t)>& body) {
  KGE_CHECK(begin <= end);
  if (begin == end) return;
  const size_t n = end - begin;
  const size_t workers = num_threads();
  if (workers == 1 || n == 1) {
    body(begin, end);
    return;
  }
  // Over-shard lightly so uneven tasks balance.
  const size_t shards = std::min(n, workers * 4);
  const size_t chunk = (n + shards - 1) / shards;
  for (size_t s = begin; s < end; s += chunk) {
    const size_t e = std::min(s + chunk, end);
    Schedule([&body, s, e] { body(s, e); });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) work_done_.notify_all();
    }
  }
}

}  // namespace kge
