#include "util/thread_pool.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "util/check.h"

namespace kge {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads <= 1) return;  // Inline mode.
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.NotifyAll();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Schedule(std::function<void()> task) {
  if (threads_.empty()) {
    task();
    return;
  }
  {
    MutexLock lock(mutex_);
    // kge-hotpath: allow(task dispatch is batch-granularity, not per-triple)
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.NotifyOne();
}

void ThreadPool::Wait() {
  if (threads_.empty()) return;
  MutexLock lock(mutex_);
  while (in_flight_ != 0) work_done_.Wait(mutex_);
}

bool ThreadPool::RunOneTask() {
  std::function<void()> task;
  {
    MutexLock lock(mutex_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  FinishTask();
  return true;
}

void ThreadPool::FinishTask() {
  MutexLock lock(mutex_);
  --in_flight_;
  if (in_flight_ == 0) work_done_.NotifyAll();
}

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t, size_t)>& body) {
  KGE_CHECK(begin <= end);
  if (begin == end) return;
  const size_t n = end - begin;
  const size_t workers = num_threads();
  if (workers == 1 || n == 1) {
    body(begin, end);
    return;
  }
  // Over-shard lightly so uneven tasks balance.
  const size_t shards = std::min(n, workers * 4);
  const size_t chunk = (n + shards - 1) / shards;

  // Completion is tracked per call, not via the pool-global in_flight_
  // counter: a nested ParallelFor runs inside a task that is itself in
  // flight, so waiting for in_flight_ == 0 would deadlock.
  struct Group {
    Mutex mutex;
    CondVar done;
    size_t remaining KGE_GUARDED_BY(mutex) = 0;
  };
  auto group = std::make_shared<Group>();
  {
    MutexLock lock(group->mutex);
    for (size_t s = begin; s < end; s += chunk) group->remaining += 1;
  }
  for (size_t s = begin; s < end; s += chunk) {
    const size_t e = std::min(s + chunk, end);
    Schedule([group, &body, s, e] {
      body(s, e);
      MutexLock lock(group->mutex);
      if (--group->remaining == 0) group->done.NotifyAll();
    });
  }
  // Help drain the queue while this call's shards are pending. The helped
  // task may belong to another (possibly nested) ParallelFor; running it
  // here is what guarantees forward progress when every worker is blocked
  // inside an outer ParallelFor.
  for (;;) {
    {
      MutexLock lock(group->mutex);
      if (group->remaining == 0) return;
    }
    if (!RunOneTask()) {
      // Queue empty: the remaining shards are running on workers.
      MutexLock lock(group->mutex);
      while (group->remaining != 0) group->done.Wait(group->mutex);
      return;
    }
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!shutting_down_ && queue_.empty()) work_available_.Wait(mutex_);
      if (queue_.empty()) return;  // Shutting down and drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    FinishTask();
  }
}

}  // namespace kge
