// File I/O helpers: whole-file text reads, line reading, and a simple
// binary serialization format (little-endian, length-prefixed) used for
// embedding checkpoints.
//
// Durability: BinaryWriter::OpenAtomic writes to `<path>.tmp` and
// Close() publishes it with fflush + fsync + rename + parent-directory
// fsync, so a crash at any point leaves either the old file or the new
// file — never a torn one. Both writer and reader maintain a running
// CRC32C over every byte written/read, which the checkpoint format uses
// to detect corruption.
#ifndef KGE_UTIL_IO_H_
#define KGE_UTIL_IO_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "util/status.h"

namespace kge {

// Reads the entire file into a string.
Result<std::string> ReadFileToString(const std::string& path);

// Writes `content` to `path`, truncating.
Status WriteStringToFile(const std::string& path, const std::string& content);

// Durable variant of WriteStringToFile: temp file + fsync + rename, so
// readers never observe a partially written file. Used for the LATEST
// checkpoint pointer.
Status AtomicWriteStringToFile(const std::string& path,
                               const std::string& content);

bool FileExists(const std::string& path);

// mkdir -p: creates `path` and any missing parents (0755). Existing
// directories are fine; a non-directory in the way is an error.
Status CreateDirectories(const std::string& path);

// Buffered binary writer. All integers little-endian (we assume a
// little-endian host, which is static_asserted in io.cc).
class BinaryWriter {
 public:
  BinaryWriter() = default;
  ~BinaryWriter();
  BinaryWriter(const BinaryWriter&) = delete;
  BinaryWriter& operator=(const BinaryWriter&) = delete;

  Status Open(const std::string& path);

  // Opens `<path>.tmp` for writing; Close() renames it onto `path` after
  // flushing and fsyncing, then fsyncs the parent directory. If the
  // writer is destroyed (or Abandon()ed) before Close(), the temp file
  // is removed and `path` is untouched.
  Status OpenAtomic(const std::string& path);

  // Flushes, (in atomic mode) fsyncs and renames into place. On any
  // failure the temp file is removed and the target left untouched.
  Status Close();

  // Discards the file: closes the handle and, in atomic mode, unlinks
  // the temp file. Safe to call at any point; idempotent.
  void Abandon();

  Status WriteUint32(uint32_t value);
  Status WriteUint64(uint64_t value);
  Status WriteFloat(float value);
  Status WriteDouble(double value);
  Status WriteString(const std::string& value);
  Status WriteFloatArray(const float* data, size_t count);
  Status WriteBytes(const void* data, size_t count);

  // Running CRC32C over every byte written so far.
  uint32_t crc() const { return crc_; }
  uint64_t bytes_written() const { return bytes_written_; }

 private:
  std::FILE* file_ = nullptr;
  bool atomic_ = false;
  std::string temp_path_;
  std::string final_path_;
  uint32_t crc_ = 0;
  uint64_t bytes_written_ = 0;
};

// Buffered binary reader matching BinaryWriter. Length prefixes read
// from the file are validated against the bytes actually remaining, so
// a corrupt or hostile file yields a clean Status instead of a giant
// allocation or a blocking read.
class BinaryReader {
 public:
  BinaryReader() = default;
  ~BinaryReader();
  BinaryReader(const BinaryReader&) = delete;
  BinaryReader& operator=(const BinaryReader&) = delete;

  Status Open(const std::string& path);
  Status Close();

  Result<uint32_t> ReadUint32();
  Result<uint64_t> ReadUint64();
  Result<float> ReadFloat();
  Result<double> ReadDouble();
  Result<std::string> ReadString();
  Status ReadFloatArray(float* data, size_t count);

  // Skips `count` bytes, feeding them through the running CRC.
  Status Skip(uint64_t count);

  // Running CRC32C over every byte read so far.
  uint32_t crc() const { return crc_; }
  uint64_t file_size() const { return file_size_; }
  uint64_t bytes_read() const { return bytes_read_; }
  uint64_t remaining() const { return file_size_ - bytes_read_; }

 private:
  Status ReadBytes(void* data, size_t count);

  std::FILE* file_ = nullptr;
  uint64_t file_size_ = 0;
  uint64_t bytes_read_ = 0;
  uint32_t crc_ = 0;
};

}  // namespace kge

#endif  // KGE_UTIL_IO_H_
