// File I/O helpers: whole-file text reads, line reading, and a simple
// binary serialization format (little-endian, length-prefixed) used for
// embedding checkpoints.
#ifndef KGE_UTIL_IO_H_
#define KGE_UTIL_IO_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "util/status.h"

namespace kge {

// Reads the entire file into a string.
Result<std::string> ReadFileToString(const std::string& path);

// Writes `content` to `path`, truncating.
Status WriteStringToFile(const std::string& path, const std::string& content);

bool FileExists(const std::string& path);

// Buffered binary writer. All integers little-endian (we assume a
// little-endian host, which KGE_CHECKed at open time).
class BinaryWriter {
 public:
  BinaryWriter() = default;
  ~BinaryWriter();
  BinaryWriter(const BinaryWriter&) = delete;
  BinaryWriter& operator=(const BinaryWriter&) = delete;

  Status Open(const std::string& path);
  Status Close();

  Status WriteUint32(uint32_t value);
  Status WriteUint64(uint64_t value);
  Status WriteFloat(float value);
  Status WriteDouble(double value);
  Status WriteString(const std::string& value);
  Status WriteFloatArray(const float* data, size_t count);
  Status WriteBytes(const void* data, size_t count);

 private:
  std::FILE* file_ = nullptr;
};

// Buffered binary reader matching BinaryWriter.
class BinaryReader {
 public:
  BinaryReader() = default;
  ~BinaryReader();
  BinaryReader(const BinaryReader&) = delete;
  BinaryReader& operator=(const BinaryReader&) = delete;

  Status Open(const std::string& path);
  Status Close();

  Result<uint32_t> ReadUint32();
  Result<uint64_t> ReadUint64();
  Result<float> ReadFloat();
  Result<double> ReadDouble();
  Result<std::string> ReadString();
  Status ReadFloatArray(float* data, size_t count);

 private:
  Status ReadBytes(void* data, size_t count);

  std::FILE* file_ = nullptr;
};

}  // namespace kge

#endif  // KGE_UTIL_IO_H_
