// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78) — the
// checksum used by the checkpoint format to detect torn writes and bit
// rot. Software table implementation; checkpoint I/O is far from the hot
// path, so portability beats SSE4.2 intrinsics here.
#ifndef KGE_UTIL_CRC32C_H_
#define KGE_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace kge {

// Extends a running CRC32C with `count` bytes. Start a fresh checksum by
// passing crc = 0; the returned value is the standard (xor-out applied)
// CRC32C, so chained calls compose: Crc32cExtend(Crc32cExtend(0, a), b)
// == Crc32c(a ++ b).
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t count);

// CRC32C of a single buffer (== Crc32cExtend(0, data, count)).
uint32_t Crc32c(const void* data, size_t count);

}  // namespace kge

#endif  // KGE_UTIL_CRC32C_H_
