#include "util/io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstring>

#include "util/check.h"
#include "util/crc32c.h"
#include "util/failpoint.h"

namespace kge {

static_assert(std::endian::native == std::endian::little,
              "binary format assumes a little-endian host");

namespace {

// Parent directory of `path` ("." for bare filenames), for fsync after
// rename so the directory entry itself is durable.
std::string DirName(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status FsyncDirectory(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Status::IoError("cannot open directory " + dir);
  const int sync_result = ::fsync(fd);
  ::close(fd);
  if (sync_result != 0) return Status::IoError("fsync failed on " + dir);
  return Status::Ok();
}

}  // namespace

Result<std::string> ReadFileToString(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return Status::IoError("cannot open " + path);
  std::string content;
  char buffer[1 << 16];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    content.append(buffer, n);
  }
  const bool had_error = std::ferror(file) != 0;
  std::fclose(file);
  if (had_error) return Status::IoError("read error on " + path);
  return content;
}

Status WriteStringToFile(const std::string& path, const std::string& content) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return Status::IoError("cannot open " + path);
  const size_t written = std::fwrite(content.data(), 1, content.size(), file);
  const int close_result = std::fclose(file);
  if (written != content.size() || close_result != 0)
    return Status::IoError("write error on " + path);
  return Status::Ok();
}

Status AtomicWriteStringToFile(const std::string& path,
                               const std::string& content) {
  BinaryWriter writer;
  KGE_RETURN_IF_ERROR(writer.OpenAtomic(path));
  KGE_RETURN_IF_ERROR(writer.WriteBytes(content.data(), content.size()));
  return writer.Close();
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Status CreateDirectories(const std::string& path) {
  if (path.empty()) return Status::InvalidArgument("empty directory path");
  std::string prefix;
  size_t pos = 0;
  while (pos <= path.size()) {
    const size_t slash = path.find('/', pos);
    prefix = (slash == std::string::npos) ? path : path.substr(0, slash);
    pos = (slash == std::string::npos) ? path.size() + 1 : slash + 1;
    if (prefix.empty()) continue;  // Leading '/' of an absolute path.
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST)
      return Status::IoError("cannot create directory " + prefix);
    struct stat st;
    if (::stat(prefix.c_str(), &st) != 0 || !S_ISDIR(st.st_mode))
      return Status::IoError("not a directory: " + prefix);
  }
  return Status::Ok();
}

BinaryWriter::~BinaryWriter() { Abandon(); }

Status BinaryWriter::Open(const std::string& path) {
  KGE_CHECK(file_ == nullptr);
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) return Status::IoError("cannot open " + path);
  atomic_ = false;
  crc_ = 0;
  bytes_written_ = 0;
  return Status::Ok();
}

Status BinaryWriter::OpenAtomic(const std::string& path) {
  KGE_CHECK(file_ == nullptr);
  temp_path_ = path + ".tmp";
  final_path_ = path;
  file_ = std::fopen(temp_path_.c_str(), "wb");
  if (file_ == nullptr) return Status::IoError("cannot open " + temp_path_);
  atomic_ = true;
  crc_ = 0;
  bytes_written_ = 0;
  return Status::Ok();
}

Status BinaryWriter::Close() {
  if (file_ == nullptr) return Status::Ok();
  {
    Status injected = KGE_FAILPOINT("io.writer.close");
    if (!injected.ok()) {
      Abandon();
      return injected;
    }
  }
  if (std::fflush(file_) != 0) {
    Abandon();
    return Status::IoError("flush failed");
  }
  if (!atomic_) {
    const int result = std::fclose(file_);
    file_ = nullptr;
    if (result != 0) return Status::IoError("close failed");
    return Status::Ok();
  }
  // Durable publish: data to disk, then the rename, then the directory
  // entry. A crash between any two steps leaves either no file or the
  // complete new file at final_path_.
  if (::fsync(::fileno(file_)) != 0) {
    Abandon();
    return Status::IoError("fsync failed on " + temp_path_);
  }
  const int close_result = std::fclose(file_);
  file_ = nullptr;
  if (close_result != 0) {
    ::unlink(temp_path_.c_str());
    return Status::IoError("close failed on " + temp_path_);
  }
  {
    Status injected = KGE_FAILPOINT("io.writer.rename");
    if (!injected.ok()) {
      ::unlink(temp_path_.c_str());
      return injected;
    }
  }
  if (::rename(temp_path_.c_str(), final_path_.c_str()) != 0) {
    ::unlink(temp_path_.c_str());
    return Status::IoError("rename failed for " + final_path_);
  }
  return FsyncDirectory(DirName(final_path_));
}

void BinaryWriter::Abandon() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
    if (atomic_) ::unlink(temp_path_.c_str());
  }
}

Status BinaryWriter::WriteBytes(const void* data, size_t count) {
  KGE_CHECK(file_ != nullptr);
  if (std::fwrite(data, 1, count, file_) != count)
    return Status::IoError("short write");
  crc_ = Crc32cExtend(crc_, data, count);
  bytes_written_ += count;
  return Status::Ok();
}

Status BinaryWriter::WriteUint32(uint32_t value) {
  return WriteBytes(&value, sizeof(value));
}
Status BinaryWriter::WriteUint64(uint64_t value) {
  return WriteBytes(&value, sizeof(value));
}
Status BinaryWriter::WriteFloat(float value) {
  return WriteBytes(&value, sizeof(value));
}
Status BinaryWriter::WriteDouble(double value) {
  return WriteBytes(&value, sizeof(value));
}

Status BinaryWriter::WriteString(const std::string& value) {
  KGE_RETURN_IF_ERROR(WriteUint64(value.size()));
  return WriteBytes(value.data(), value.size());
}

Status BinaryWriter::WriteFloatArray(const float* data, size_t count) {
  KGE_RETURN_IF_ERROR(WriteUint64(count));
  return WriteBytes(data, count * sizeof(float));
}

BinaryReader::~BinaryReader() {
  if (file_ != nullptr) std::fclose(file_);
}

Status BinaryReader::Open(const std::string& path) {
  KGE_CHECK(file_ == nullptr);
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) return Status::IoError("cannot open " + path);
  struct stat st;
  if (::fstat(::fileno(file_), &st) != 0 || st.st_size < 0) {
    std::fclose(file_);
    file_ = nullptr;
    return Status::IoError("cannot stat " + path);
  }
  file_size_ = static_cast<uint64_t>(st.st_size);
  bytes_read_ = 0;
  crc_ = 0;
  return Status::Ok();
}

Status BinaryReader::Close() {
  if (file_ == nullptr) return Status::Ok();
  std::fclose(file_);
  file_ = nullptr;
  return Status::Ok();
}

Status BinaryReader::ReadBytes(void* data, size_t count) {
  KGE_CHECK(file_ != nullptr);
  if (count > remaining())
    return Status::IoError("short read / unexpected EOF");
  if (std::fread(data, 1, count, file_) != count)
    return Status::IoError("short read / unexpected EOF");
  crc_ = Crc32cExtend(crc_, data, count);
  bytes_read_ += count;
  return Status::Ok();
}

Result<uint32_t> BinaryReader::ReadUint32() {
  uint32_t value = 0;
  KGE_RETURN_IF_ERROR(ReadBytes(&value, sizeof(value)));
  return value;
}

Result<uint64_t> BinaryReader::ReadUint64() {
  uint64_t value = 0;
  KGE_RETURN_IF_ERROR(ReadBytes(&value, sizeof(value)));
  return value;
}

Result<float> BinaryReader::ReadFloat() {
  float value = 0;
  KGE_RETURN_IF_ERROR(ReadBytes(&value, sizeof(value)));
  return value;
}

Result<double> BinaryReader::ReadDouble() {
  double value = 0;
  KGE_RETURN_IF_ERROR(ReadBytes(&value, sizeof(value)));
  return value;
}

Result<std::string> BinaryReader::ReadString() {
  Result<uint64_t> size = ReadUint64();
  if (!size.ok()) return size.status();
  // Validate the prefix before allocating: a corrupt length must not
  // turn into a multi-gigabyte allocation.
  if (*size > remaining())
    return Status::IoError("string length exceeds file size");
  std::string value(*size, '\0');
  KGE_RETURN_IF_ERROR(ReadBytes(value.data(), value.size()));
  return value;
}

Status BinaryReader::ReadFloatArray(float* data, size_t count) {
  Result<uint64_t> stored = ReadUint64();
  if (!stored.ok()) return stored.status();
  if (*stored != count)
    return Status::InvalidArgument("float array size mismatch");
  if (count * sizeof(float) > remaining())
    return Status::IoError("float array exceeds file size");
  return ReadBytes(data, count * sizeof(float));
}

Status BinaryReader::Skip(uint64_t count) {
  if (count > remaining())
    return Status::IoError("skip past end of file");
  char buffer[1 << 16];
  while (count > 0) {
    const size_t chunk =
        static_cast<size_t>(std::min<uint64_t>(count, sizeof(buffer)));
    KGE_RETURN_IF_ERROR(ReadBytes(buffer, chunk));
    count -= chunk;
  }
  return Status::Ok();
}

}  // namespace kge
