#include "util/io.h"

#include <sys/stat.h>

#include <bit>
#include <cstring>

#include "util/check.h"

namespace kge {

static_assert(std::endian::native == std::endian::little,
              "binary format assumes a little-endian host");

Result<std::string> ReadFileToString(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return Status::IoError("cannot open " + path);
  std::string content;
  char buffer[1 << 16];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    content.append(buffer, n);
  }
  const bool had_error = std::ferror(file) != 0;
  std::fclose(file);
  if (had_error) return Status::IoError("read error on " + path);
  return content;
}

Status WriteStringToFile(const std::string& path, const std::string& content) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return Status::IoError("cannot open " + path);
  const size_t written = std::fwrite(content.data(), 1, content.size(), file);
  const int close_result = std::fclose(file);
  if (written != content.size() || close_result != 0)
    return Status::IoError("write error on " + path);
  return Status::Ok();
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

BinaryWriter::~BinaryWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status BinaryWriter::Open(const std::string& path) {
  KGE_CHECK(file_ == nullptr);
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) return Status::IoError("cannot open " + path);
  return Status::Ok();
}

Status BinaryWriter::Close() {
  if (file_ == nullptr) return Status::Ok();
  const int result = std::fclose(file_);
  file_ = nullptr;
  if (result != 0) return Status::IoError("close failed");
  return Status::Ok();
}

Status BinaryWriter::WriteBytes(const void* data, size_t count) {
  KGE_CHECK(file_ != nullptr);
  if (std::fwrite(data, 1, count, file_) != count)
    return Status::IoError("short write");
  return Status::Ok();
}

Status BinaryWriter::WriteUint32(uint32_t value) {
  return WriteBytes(&value, sizeof(value));
}
Status BinaryWriter::WriteUint64(uint64_t value) {
  return WriteBytes(&value, sizeof(value));
}
Status BinaryWriter::WriteFloat(float value) {
  return WriteBytes(&value, sizeof(value));
}
Status BinaryWriter::WriteDouble(double value) {
  return WriteBytes(&value, sizeof(value));
}

Status BinaryWriter::WriteString(const std::string& value) {
  KGE_RETURN_IF_ERROR(WriteUint64(value.size()));
  return WriteBytes(value.data(), value.size());
}

Status BinaryWriter::WriteFloatArray(const float* data, size_t count) {
  KGE_RETURN_IF_ERROR(WriteUint64(count));
  return WriteBytes(data, count * sizeof(float));
}

BinaryReader::~BinaryReader() {
  if (file_ != nullptr) std::fclose(file_);
}

Status BinaryReader::Open(const std::string& path) {
  KGE_CHECK(file_ == nullptr);
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) return Status::IoError("cannot open " + path);
  return Status::Ok();
}

Status BinaryReader::Close() {
  if (file_ == nullptr) return Status::Ok();
  std::fclose(file_);
  file_ = nullptr;
  return Status::Ok();
}

Status BinaryReader::ReadBytes(void* data, size_t count) {
  KGE_CHECK(file_ != nullptr);
  if (std::fread(data, 1, count, file_) != count)
    return Status::IoError("short read / unexpected EOF");
  return Status::Ok();
}

Result<uint32_t> BinaryReader::ReadUint32() {
  uint32_t value = 0;
  KGE_RETURN_IF_ERROR(ReadBytes(&value, sizeof(value)));
  return value;
}

Result<uint64_t> BinaryReader::ReadUint64() {
  uint64_t value = 0;
  KGE_RETURN_IF_ERROR(ReadBytes(&value, sizeof(value)));
  return value;
}

Result<float> BinaryReader::ReadFloat() {
  float value = 0;
  KGE_RETURN_IF_ERROR(ReadBytes(&value, sizeof(value)));
  return value;
}

Result<double> BinaryReader::ReadDouble() {
  double value = 0;
  KGE_RETURN_IF_ERROR(ReadBytes(&value, sizeof(value)));
  return value;
}

Result<std::string> BinaryReader::ReadString() {
  Result<uint64_t> size = ReadUint64();
  if (!size.ok()) return size.status();
  std::string value(*size, '\0');
  KGE_RETURN_IF_ERROR(ReadBytes(value.data(), value.size()));
  return value;
}

Status BinaryReader::ReadFloatArray(float* data, size_t count) {
  Result<uint64_t> stored = ReadUint64();
  if (!stored.ok()) return stored.status();
  if (*stored != count)
    return Status::InvalidArgument("float array size mismatch");
  return ReadBytes(data, count * sizeof(float));
}

}  // namespace kge
