// A minimal 2D convolution layer (valid padding, stride 1) with manual
// backpropagation — the substrate for ConvE (§2.2.2: "Recent models such
// as ConvE use convolution networks instead of fully-connected
// networks"). Layout: images and feature maps are CHW (channel-major,
// row-major within a channel); filters live in a ParameterBlock with one
// row per output channel holding in_channels * kh * kw weights, plus a
// one-row bias block.
#ifndef KGE_NN_CONV2D_H_
#define KGE_NN_CONV2D_H_

#include <span>
#include <string>

#include "core/parameter_block.h"

namespace kge {

class Conv2dLayer {
 public:
  Conv2dLayer(std::string name, int32_t in_channels, int32_t in_height,
              int32_t in_width, int32_t out_channels, int32_t kernel_height,
              int32_t kernel_width);

  int32_t in_channels() const { return in_channels_; }
  int32_t in_height() const { return in_height_; }
  int32_t in_width() const { return in_width_; }
  int32_t out_channels() const { return out_channels_; }
  int32_t out_height() const { return in_height_ - kernel_height_ + 1; }
  int32_t out_width() const { return in_width_ - kernel_width_ + 1; }
  // Elements in one input (in_channels * H * W) / output volume.
  int64_t input_size() const;
  int64_t output_size() const;

  ParameterBlock* filters() { return &filters_; }
  ParameterBlock* bias() { return &bias_; }

  void Init(Rng* rng);

  // out = conv(x) + b; no activation (apply ReLU etc. outside).
  void Forward(std::span<const float> x, std::span<float> out) const;

  // Accumulates dL/dfilters and dL/dbias into `grads` (block indices
  // given) and dL/dx into dx (+=, may be empty to skip).
  void Backward(std::span<const float> x, std::span<const float> dout,
                GradientBuffer* grads, size_t filters_block,
                size_t bias_block, std::span<float> dx) const;

 private:
  int32_t in_channels_, in_height_, in_width_;
  int32_t out_channels_, kernel_height_, kernel_width_;
  ParameterBlock filters_;  // out_channels rows of in_channels*kh*kw
  ParameterBlock bias_;     // 1 row of out_channels
};

// Elementwise ReLU helpers used between layers.
void Relu(std::span<float> values);
// dx_i += dout_i * 1[forward_out_i > 0]
void ReluBackward(std::span<const float> forward_out,
                  std::span<const float> dout, std::span<float> dx);

}  // namespace kge

#endif  // KGE_NN_CONV2D_H_
