#include "nn/dense_layer.h"

#include <cmath>

#include "math/activations.h"
#include "math/vec_ops.h"
#include "util/check.h"

namespace kge {

DenseLayer::DenseLayer(std::string name, int32_t in_dim, int32_t out_dim,
                       Activation activation)
    : in_dim_(in_dim),
      out_dim_(out_dim),
      activation_(activation),
      weights_(name + ".W", out_dim, in_dim),
      bias_(name + ".b", 1, out_dim) {
  KGE_CHECK(in_dim > 0 && out_dim > 0);
}

void DenseLayer::Init(Rng* rng) {
  weights_.InitXavierUniform(rng, in_dim_ + out_dim_);
  bias_.Zero();
}

void DenseLayer::Forward(std::span<const float> x,
                         std::span<float> out) const {
  KGE_DCHECK(x.size() == size_t(in_dim_) && out.size() == size_t(out_dim_));
  const auto b = bias_.Row(0);
  for (int32_t o = 0; o < out_dim_; ++o) {
    double z = double(b[size_t(o)]) + Dot(weights_.Row(o), x);
    out[size_t(o)] = activation_ == Activation::kTanh
                         ? static_cast<float>(std::tanh(z))
                         : static_cast<float>(z);
  }
}

void DenseLayer::Backward(std::span<const float> x,
                          std::span<const float> out,
                          std::span<const float> dout, GradientBuffer* grads,
                          size_t weights_block, size_t bias_block,
                          std::span<float> dx) const {
  KGE_DCHECK(x.size() == size_t(in_dim_));
  KGE_DCHECK(out.size() == size_t(out_dim_) &&
             dout.size() == size_t(out_dim_));
  std::span<float> db = grads->GradFor(bias_block, 0);
  for (int32_t o = 0; o < out_dim_; ++o) {
    float dz = dout[size_t(o)];
    if (activation_ == Activation::kTanh) {
      dz *= static_cast<float>(TanhDerivFromOutput(out[size_t(o)]));
    }
    if (dz == 0.0f) continue;
    db[size_t(o)] += dz;
    std::span<float> dw = grads->GradFor(weights_block, o);
    Axpy(dz, x, dw);
    if (!dx.empty()) Axpy(dz, weights_.Row(o), dx);
  }
}

}  // namespace kge
