#include "nn/conv2d.h"

#include <cmath>

#include "util/check.h"

namespace kge {

Conv2dLayer::Conv2dLayer(std::string name, int32_t in_channels,
                         int32_t in_height, int32_t in_width,
                         int32_t out_channels, int32_t kernel_height,
                         int32_t kernel_width)
    : in_channels_(in_channels),
      in_height_(in_height),
      in_width_(in_width),
      out_channels_(out_channels),
      kernel_height_(kernel_height),
      kernel_width_(kernel_width),
      filters_(name + ".filters", out_channels,
               int64_t(in_channels) * kernel_height * kernel_width),
      bias_(name + ".bias", 1, out_channels) {
  KGE_CHECK(in_channels > 0 && out_channels > 0);
  KGE_CHECK(in_height >= kernel_height && in_width >= kernel_width);
}

int64_t Conv2dLayer::input_size() const {
  return int64_t(in_channels_) * in_height_ * in_width_;
}

int64_t Conv2dLayer::output_size() const {
  return int64_t(out_channels_) * out_height() * out_width();
}

void Conv2dLayer::Init(Rng* rng) {
  const int64_t fan_in =
      int64_t(in_channels_) * kernel_height_ * kernel_width_;
  filters_.InitXavierUniform(rng, fan_in + out_channels_);
  bias_.Zero();
}

void Conv2dLayer::Forward(std::span<const float> x,
                          std::span<float> out) const {
  KGE_DCHECK(int64_t(x.size()) == input_size());
  KGE_DCHECK(int64_t(out.size()) == output_size());
  const int32_t oh = out_height();
  const int32_t ow = out_width();
  for (int32_t oc = 0; oc < out_channels_; ++oc) {
    const std::span<const float> filter = filters_.Row(oc);
    const float b = bias_.Row(0)[size_t(oc)];
    float* out_map = out.data() + size_t(oc) * size_t(oh) * size_t(ow);
    for (int32_t oy = 0; oy < oh; ++oy) {
      for (int32_t ox = 0; ox < ow; ++ox) {
        double sum = b;
        for (int32_t ic = 0; ic < in_channels_; ++ic) {
          const float* in_map =
              x.data() + size_t(ic) * size_t(in_height_) * size_t(in_width_);
          const float* w = filter.data() +
                           size_t(ic) * size_t(kernel_height_) *
                               size_t(kernel_width_);
          for (int32_t ky = 0; ky < kernel_height_; ++ky) {
            const float* in_row = in_map + size_t(oy + ky) * size_t(in_width_);
            const float* w_row = w + size_t(ky) * size_t(kernel_width_);
            for (int32_t kx = 0; kx < kernel_width_; ++kx) {
              sum += double(in_row[ox + kx]) * double(w_row[kx]);
            }
          }
        }
        out_map[size_t(oy) * size_t(ow) + size_t(ox)] =
            static_cast<float>(sum);
      }
    }
  }
}

void Conv2dLayer::Backward(std::span<const float> x,
                           std::span<const float> dout,
                           GradientBuffer* grads, size_t filters_block,
                           size_t bias_block, std::span<float> dx) const {
  KGE_DCHECK(int64_t(x.size()) == input_size());
  KGE_DCHECK(int64_t(dout.size()) == output_size());
  const int32_t oh = out_height();
  const int32_t ow = out_width();
  std::span<float> db = grads->GradFor(bias_block, 0);
  for (int32_t oc = 0; oc < out_channels_; ++oc) {
    const std::span<const float> filter = filters_.Row(oc);
    std::span<float> dfilter = grads->GradFor(filters_block, oc);
    const float* dout_map =
        dout.data() + size_t(oc) * size_t(oh) * size_t(ow);
    for (int32_t oy = 0; oy < oh; ++oy) {
      for (int32_t ox = 0; ox < ow; ++ox) {
        const float g = dout_map[size_t(oy) * size_t(ow) + size_t(ox)];
        if (g == 0.0f) continue;
        db[size_t(oc)] += g;
        for (int32_t ic = 0; ic < in_channels_; ++ic) {
          const size_t in_base =
              size_t(ic) * size_t(in_height_) * size_t(in_width_);
          const size_t w_base = size_t(ic) * size_t(kernel_height_) *
                                size_t(kernel_width_);
          for (int32_t ky = 0; ky < kernel_height_; ++ky) {
            const size_t in_row = in_base + size_t(oy + ky) * size_t(in_width_);
            const size_t w_row = w_base + size_t(ky) * size_t(kernel_width_);
            for (int32_t kx = 0; kx < kernel_width_; ++kx) {
              dfilter[w_row + size_t(kx)] += g * x[in_row + size_t(ox + kx)];
              if (!dx.empty()) {
                dx[in_row + size_t(ox + kx)] +=
                    g * filter[w_row + size_t(kx)];
              }
            }
          }
        }
      }
    }
  }
}

void Relu(std::span<float> values) {
  for (float& v : values) v = v > 0.0f ? v : 0.0f;
}

void ReluBackward(std::span<const float> forward_out,
                  std::span<const float> dout, std::span<float> dx) {
  KGE_DCHECK(forward_out.size() == dout.size() &&
             dout.size() == dx.size());
  for (size_t i = 0; i < dx.size(); ++i) {
    if (forward_out[i] > 0.0f) dx[i] += dout[i];
  }
}

}  // namespace kge
