// A minimal dense (fully-connected) layer with manual backpropagation,
// the substrate for the neural-network-based KGE category of §2.2.2
// (ER-MLP). Parameters live in ParameterBlocks so the same sparse
// optimizers used for embeddings update them (a dense layer is simply a
// block whose rows are all touched every batch).
#ifndef KGE_NN_DENSE_LAYER_H_
#define KGE_NN_DENSE_LAYER_H_

#include <span>
#include <string>

#include "core/parameter_block.h"

namespace kge {

enum class Activation {
  kLinear,
  kTanh,
};

class DenseLayer {
 public:
  DenseLayer(std::string name, int32_t in_dim, int32_t out_dim,
             Activation activation);

  int32_t in_dim() const { return in_dim_; }
  int32_t out_dim() const { return out_dim_; }

  ParameterBlock* weights() { return &weights_; }
  ParameterBlock* bias() { return &bias_; }

  void Init(Rng* rng);

  // out = act(W x + b); out must have out_dim floats.
  void Forward(std::span<const float> x, std::span<float> out) const;

  // Given the input x, this layer's activations `out` (from Forward) and
  // upstream gradient dL/dout, accumulates:
  //   * dL/dW into grads->GradFor(weights_block, row) per output row,
  //   * dL/db into grads->GradFor(bias_block, 0),
  //   * dL/dx into dx (+=), if dx is non-empty.
  void Backward(std::span<const float> x, std::span<const float> out,
                std::span<const float> dout, GradientBuffer* grads,
                size_t weights_block, size_t bias_block,
                std::span<float> dx) const;

 private:
  int32_t in_dim_;
  int32_t out_dim_;
  Activation activation_;
  ParameterBlock weights_;  // out_dim rows of in_dim
  ParameterBlock bias_;     // 1 row of out_dim
};

}  // namespace kge

#endif  // KGE_NN_DENSE_LAYER_H_
