// An in-memory collection of triples with optional adjacency indexes for
// by-head / by-tail / by-relation access. This is the storage substrate the
// dataset splits, generators, and analysis code operate on.
#ifndef KGE_KG_TRIPLE_STORE_H_
#define KGE_KG_TRIPLE_STORE_H_

#include <span>
#include <unordered_set>
#include <vector>

#include "kg/triple.h"

namespace kge {

class TripleStore {
 public:
  TripleStore() = default;
  explicit TripleStore(std::vector<Triple> triples)
      : triples_(std::move(triples)) {}

  void Add(const Triple& triple) {
    triples_.push_back(triple);
    indexes_valid_ = false;
  }
  void Add(EntityId head, EntityId tail, RelationId relation) {
    Add(Triple{head, tail, relation});
  }

  size_t size() const { return triples_.size(); }
  bool empty() const { return triples_.empty(); }
  const Triple& operator[](size_t i) const { return triples_[i]; }
  const std::vector<Triple>& triples() const { return triples_; }
  std::vector<Triple>& mutable_triples() {
    indexes_valid_ = false;
    return triples_;
  }

  // True if the exact triple is present (O(1) after BuildIndexes).
  bool Contains(const Triple& triple) const;

  // Builds adjacency + membership indexes. Must be called before the
  // ByX() accessors; Add() invalidates them.
  void BuildIndexes(int32_t num_entities, int32_t num_relations);
  bool indexes_valid() const { return indexes_valid_; }

  // Triple positions (indexes into triples()) grouped by field value.
  std::span<const uint32_t> ByHead(EntityId head) const;
  std::span<const uint32_t> ByTail(EntityId tail) const;
  std::span<const uint32_t> ByRelation(RelationId relation) const;

  int32_t num_entities() const { return num_entities_; }
  int32_t num_relations() const { return num_relations_; }

  // Largest entity / relation ids present, for generators and validation.
  EntityId MaxEntityId() const;
  RelationId MaxRelationId() const;

 private:
  // One CSR-style grouping: offsets_[v]..offsets_[v+1] in positions_.
  struct Grouping {
    std::vector<uint32_t> offsets;
    std::vector<uint32_t> positions;
    std::span<const uint32_t> Of(int32_t value) const;
  };
  static Grouping BuildGrouping(const std::vector<Triple>& triples,
                                int32_t num_values, int field);

  std::vector<Triple> triples_;
  bool indexes_valid_ = false;
  int32_t num_entities_ = 0;
  int32_t num_relations_ = 0;
  Grouping by_head_;
  Grouping by_tail_;
  Grouping by_relation_;
  std::unordered_set<Triple, TripleHash> membership_;
};

}  // namespace kge

#endif  // KGE_KG_TRIPLE_STORE_H_
