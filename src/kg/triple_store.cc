#include "kg/triple_store.h"

#include <algorithm>

#include "util/check.h"

namespace kge {

bool TripleStore::Contains(const Triple& triple) const {
  if (indexes_valid_) return membership_.contains(triple);
  return std::find(triples_.begin(), triples_.end(), triple) !=
         triples_.end();
}

std::span<const uint32_t> TripleStore::Grouping::Of(int32_t value) const {
  if (value < 0 || static_cast<size_t>(value) + 1 >= offsets.size())
    return {};
  const size_t v = static_cast<size_t>(value);
  return std::span<const uint32_t>(positions)
      .subspan(offsets[v], offsets[v + 1] - offsets[v]);
}

TripleStore::Grouping TripleStore::BuildGrouping(
    const std::vector<Triple>& triples, int32_t num_values, int field) {
  Grouping g;
  g.offsets.assign(static_cast<size_t>(num_values) + 1, 0);
  auto value_of = [field](const Triple& t) -> int32_t {
    switch (field) {
      case 0:
        return t.head;
      case 1:
        return t.tail;
      default:
        return t.relation;
    }
  };
  for (const Triple& t : triples) {
    const int32_t v = value_of(t);
    KGE_CHECK(v >= 0 && v < num_values);
    ++g.offsets[static_cast<size_t>(v) + 1];
  }
  for (size_t i = 1; i < g.offsets.size(); ++i) g.offsets[i] += g.offsets[i - 1];
  g.positions.resize(triples.size());
  std::vector<uint32_t> cursor(g.offsets.begin(), g.offsets.end() - 1);
  for (uint32_t pos = 0; pos < triples.size(); ++pos) {
    const int32_t v = value_of(triples[pos]);
    g.positions[cursor[static_cast<size_t>(v)]++] = pos;
  }
  return g;
}

void TripleStore::BuildIndexes(int32_t num_entities, int32_t num_relations) {
  KGE_CHECK(num_entities > MaxEntityId());
  KGE_CHECK(num_relations > MaxRelationId());
  num_entities_ = num_entities;
  num_relations_ = num_relations;
  by_head_ = BuildGrouping(triples_, num_entities, 0);
  by_tail_ = BuildGrouping(triples_, num_entities, 1);
  by_relation_ = BuildGrouping(triples_, num_relations, 2);
  membership_.clear();
  membership_.reserve(triples_.size() * 2);
  for (const Triple& t : triples_) membership_.insert(t);
  indexes_valid_ = true;
}

std::span<const uint32_t> TripleStore::ByHead(EntityId head) const {
  KGE_CHECK(indexes_valid_);
  return by_head_.Of(head);
}

std::span<const uint32_t> TripleStore::ByTail(EntityId tail) const {
  KGE_CHECK(indexes_valid_);
  return by_tail_.Of(tail);
}

std::span<const uint32_t> TripleStore::ByRelation(RelationId relation) const {
  KGE_CHECK(indexes_valid_);
  return by_relation_.Of(relation);
}

EntityId TripleStore::MaxEntityId() const {
  EntityId max_id = -1;
  for (const Triple& t : triples_) {
    max_id = std::max(max_id, std::max(t.head, t.tail));
  }
  return max_id;
}

RelationId TripleStore::MaxRelationId() const {
  RelationId max_id = -1;
  for (const Triple& t : triples_) max_id = std::max(max_id, t.relation);
  return max_id;
}

}  // namespace kge
