#include "kg/relation_analysis.h"

#include <unordered_map>
#include <unordered_set>

#include "util/string_utils.h"

namespace kge {

const char* MappingCategoryToString(MappingCategory category) {
  switch (category) {
    case MappingCategory::kOneToOne:
      return "1-1";
    case MappingCategory::kOneToMany:
      return "1-N";
    case MappingCategory::kManyToOne:
      return "N-1";
    case MappingCategory::kManyToMany:
      return "N-N";
  }
  return "?";
}

std::vector<RelationStats> AnalyzeRelations(const std::vector<Triple>& triples,
                                            int32_t num_entities,
                                            int32_t num_relations) {
  (void)num_entities;
  // Group triples by relation.
  std::vector<std::vector<Triple>> by_relation(
      static_cast<size_t>(num_relations));
  for (const Triple& t : triples) {
    by_relation[static_cast<size_t>(t.relation)].push_back(t);
  }
  // Pair sets for inverse / symmetry detection: (h,t) pairs per relation.
  auto pair_key = [](EntityId h, EntityId t) {
    return (uint64_t(uint32_t(h)) << 32) | uint32_t(t);
  };
  std::vector<std::unordered_set<uint64_t>> pairs(
      static_cast<size_t>(num_relations));
  for (const Triple& t : triples) {
    pairs[static_cast<size_t>(t.relation)].insert(pair_key(t.head, t.tail));
  }

  std::vector<RelationStats> stats(static_cast<size_t>(num_relations));
  for (int32_t r = 0; r < num_relations; ++r) {
    RelationStats& s = stats[static_cast<size_t>(r)];
    s.relation = r;
    const auto& group = by_relation[static_cast<size_t>(r)];
    s.num_triples = group.size();
    if (group.empty()) continue;

    std::unordered_map<EntityId, std::unordered_set<EntityId>> tails_of_head;
    std::unordered_map<EntityId, std::unordered_set<EntityId>> heads_of_tail;
    for (const Triple& t : group) {
      tails_of_head[t.head].insert(t.tail);
      heads_of_tail[t.tail].insert(t.head);
    }
    double tph = 0.0;
    for (const auto& [head, tails] : tails_of_head) tph += double(tails.size());
    tph /= double(tails_of_head.size());
    double hpt = 0.0;
    for (const auto& [tail, heads] : heads_of_tail) hpt += double(heads.size());
    hpt /= double(heads_of_tail.size());
    s.tails_per_head = tph;
    s.heads_per_tail = hpt;
    // Bordes et al. threshold: a side is "N" if its mean multiplicity
    // exceeds 1.5.
    constexpr double kManyThreshold = 1.5;
    const bool many_tails = tph > kManyThreshold;
    const bool many_heads = hpt > kManyThreshold;
    if (many_tails && many_heads) {
      s.category = MappingCategory::kManyToMany;
    } else if (many_tails) {
      s.category = MappingCategory::kOneToMany;
    } else if (many_heads) {
      s.category = MappingCategory::kManyToOne;
    } else {
      s.category = MappingCategory::kOneToOne;
    }

    // Symmetry within r.
    size_t non_loop = 0;
    size_t reversed_present = 0;
    for (const Triple& t : group) {
      if (t.head == t.tail) continue;
      ++non_loop;
      if (pairs[static_cast<size_t>(r)].contains(pair_key(t.tail, t.head)))
        ++reversed_present;
    }
    s.symmetry = non_loop == 0 ? 1.0 : double(reversed_present) / double(non_loop);

    // Inverse partner: fraction of (h,t) whose reverse appears under s.
    for (int32_t other = 0; other < num_relations; ++other) {
      if (other == r || pairs[static_cast<size_t>(other)].empty()) continue;
      size_t hits = 0;
      for (const Triple& t : group) {
        if (pairs[static_cast<size_t>(other)].contains(
                pair_key(t.tail, t.head)))
          ++hits;
      }
      const double score = double(hits) / double(group.size());
      if (score > s.best_inverse_score) {
        s.best_inverse_score = score;
        s.best_inverse = other;
      }
    }
  }
  return stats;
}

std::string RelationStatsTable(const std::vector<RelationStats>& stats) {
  std::string out = StrFormat("%-4s %-8s %-6s %-6s %-4s %-5s %-9s %-6s\n",
                              "rel", "triples", "tph", "hpt", "cat", "sym",
                              "inv-rel", "inv");
  for (const RelationStats& s : stats) {
    out += StrFormat("%-4d %-8zu %-6.2f %-6.2f %-4s %-5.2f %-9d %-6.2f\n",
                     s.relation, s.num_triples, s.tails_per_head,
                     s.heads_per_tail, MappingCategoryToString(s.category),
                     s.symmetry, s.best_inverse, s.best_inverse_score);
  }
  return out;
}

}  // namespace kge
