#include "kg/dataset.h"

#include <unordered_set>

#include "util/io.h"
#include "util/string_utils.h"

namespace kge {

std::string Dataset::StatsString() const {
  return StrFormat(
      "entities=%d relations=%d train=%zu valid=%zu test=%zu",
      num_entities(), num_relations(), train.size(), valid.size(),
      test.size());
}

Status Dataset::Validate() const {
  auto check_split = [this](const std::vector<Triple>& split,
                            const char* name) -> Status {
    for (const Triple& t : split) {
      if (t.head < 0 || t.head >= num_entities() || t.tail < 0 ||
          t.tail >= num_entities() || t.relation < 0 ||
          t.relation >= num_relations()) {
        return Status::InvalidArgument(
            StrFormat("%s split has out-of-range triple (%d,%d,%d)", name,
                      t.head, t.tail, t.relation));
      }
    }
    return Status::Ok();
  };
  KGE_RETURN_IF_ERROR(check_split(train, "train"));
  KGE_RETURN_IF_ERROR(check_split(valid, "valid"));
  KGE_RETURN_IF_ERROR(check_split(test, "test"));

  std::unordered_set<int32_t> train_entities;
  std::unordered_set<int32_t> train_relations;
  for (const Triple& t : train) {
    train_entities.insert(t.head);
    train_entities.insert(t.tail);
    train_relations.insert(t.relation);
  }
  auto check_seen = [&](const std::vector<Triple>& split,
                        const char* name) -> Status {
    for (const Triple& t : split) {
      if (!train_entities.contains(t.head) ||
          !train_entities.contains(t.tail)) {
        return Status::FailedPrecondition(
            StrFormat("%s split contains an entity unseen in train", name));
      }
      if (!train_relations.contains(t.relation)) {
        return Status::FailedPrecondition(
            StrFormat("%s split contains a relation unseen in train", name));
      }
    }
    return Status::Ok();
  };
  KGE_RETURN_IF_ERROR(check_seen(valid, "valid"));
  KGE_RETURN_IF_ERROR(check_seen(test, "test"));
  return Status::Ok();
}

Status ReadTripleFile(const std::string& path, TripleFileFormat format,
                      Dataset* dataset, std::vector<Triple>* out) {
  Result<std::string> content = ReadFileToString(path);
  if (!content.ok()) return content.status();
  size_t line_number = 0;
  for (std::string_view remaining = *content; !remaining.empty();) {
    ++line_number;
    const size_t newline = remaining.find('\n');
    std::string_view line = remaining.substr(0, newline);
    remaining = newline == std::string_view::npos
                    ? std::string_view()
                    : remaining.substr(newline + 1);
    line = TrimString(line);
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> fields = SplitString(line, '\t');
    if (fields.size() != 3) fields = SplitWhitespace(line);
    if (fields.size() != 3) {
      return Status::InvalidArgument(
          StrFormat("%s:%zu: expected 3 fields", path.c_str(), line_number));
    }
    Triple triple;
    triple.head = dataset->entities.GetOrAdd(fields[0]);
    if (format == TripleFileFormat::kHeadRelationTail) {
      triple.relation = dataset->relations.GetOrAdd(fields[1]);
      triple.tail = dataset->entities.GetOrAdd(fields[2]);
    } else {
      triple.tail = dataset->entities.GetOrAdd(fields[1]);
      triple.relation = dataset->relations.GetOrAdd(fields[2]);
    }
    out->push_back(triple);
  }
  return Status::Ok();
}

Result<Dataset> LoadDatasetFromDirectory(const std::string& dir,
                                         TripleFileFormat format) {
  Dataset dataset;
  KGE_RETURN_IF_ERROR(
      ReadTripleFile(dir + "/train.txt", format, &dataset, &dataset.train));
  KGE_RETURN_IF_ERROR(
      ReadTripleFile(dir + "/valid.txt", format, &dataset, &dataset.valid));
  KGE_RETURN_IF_ERROR(
      ReadTripleFile(dir + "/test.txt", format, &dataset, &dataset.test));
  return dataset;
}

Status WriteTripleFile(const std::string& path, TripleFileFormat format,
                       const Dataset& dataset,
                       const std::vector<Triple>& triples) {
  std::string content;
  content.reserve(triples.size() * 32);
  for (const Triple& t : triples) {
    const std::string& head = dataset.entities.NameOf(t.head);
    const std::string& tail = dataset.entities.NameOf(t.tail);
    const std::string& relation = dataset.relations.NameOf(t.relation);
    if (format == TripleFileFormat::kHeadRelationTail) {
      content += head + '\t' + relation + '\t' + tail + '\n';
    } else {
      content += head + '\t' + tail + '\t' + relation + '\n';
    }
  }
  return WriteStringToFile(path, content);
}

Status SaveDatasetToDirectory(const std::string& dir, TripleFileFormat format,
                              const Dataset& dataset) {
  KGE_RETURN_IF_ERROR(
      WriteTripleFile(dir + "/train.txt", format, dataset, dataset.train));
  KGE_RETURN_IF_ERROR(
      WriteTripleFile(dir + "/valid.txt", format, dataset, dataset.valid));
  return WriteTripleFile(dir + "/test.txt", format, dataset, dataset.test);
}

}  // namespace kge
