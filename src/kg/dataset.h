// A knowledge graph benchmark dataset: entity/relation vocabularies plus
// train / validation / test triple splits, in the format of the standard
// link-prediction benchmarks (WN18, FB15k): one "head<TAB>relation<TAB>tail"
// or "head<TAB>tail<TAB>relation" line per triple.
#ifndef KGE_KG_DATASET_H_
#define KGE_KG_DATASET_H_

#include <string>
#include <vector>

#include "kg/triple.h"
#include "kg/vocabulary.h"
#include "util/status.h"

namespace kge {

struct Dataset {
  Vocabulary entities;
  Vocabulary relations;
  std::vector<Triple> train;
  std::vector<Triple> valid;
  std::vector<Triple> test;

  int32_t num_entities() const { return entities.size(); }
  int32_t num_relations() const { return relations.size(); }

  // Human-readable size summary.
  std::string StatsString() const;

  // Checks referential integrity: all ids in range, all valid/test
  // entities and relations appear in train (the standard benchmark
  // property that makes link prediction well-posed).
  Status Validate() const;
};

// Column order of the text files.
enum class TripleFileFormat {
  kHeadRelationTail,  // WN18 / FB15k convention
  kHeadTailRelation,  // the paper's (h, t, r) ordering
};

// Reads one split file, interning names into `dataset`'s vocabularies.
Status ReadTripleFile(const std::string& path, TripleFileFormat format,
                      Dataset* dataset, std::vector<Triple>* out);

// Loads <dir>/train.txt, <dir>/valid.txt, <dir>/test.txt.
Result<Dataset> LoadDatasetFromDirectory(const std::string& dir,
                                         TripleFileFormat format);

// Writes one split to a TSV file using the given format.
Status WriteTripleFile(const std::string& path, TripleFileFormat format,
                       const Dataset& dataset,
                       const std::vector<Triple>& triples);

// Writes train/valid/test files under `dir` (which must exist).
Status SaveDatasetToDirectory(const std::string& dir, TripleFileFormat format,
                              const Dataset& dataset);

}  // namespace kge

#endif  // KGE_KG_DATASET_H_
