#include "kg/filter_index.h"

#include <algorithm>
#include <array>

namespace kge {

void FilterIndex::Build(
    std::span<const std::vector<Triple>* const> splits) {
  tails_by_head_relation_.clear();
  heads_by_tail_relation_.clear();
  num_triples_ = 0;
  for (const std::vector<Triple>* split : splits) {
    num_triples_ += split->size();
    for (const Triple& t : *split) {
      tails_by_head_relation_[MakeKey(t.relation, t.head)].push_back(t.tail);
      heads_by_tail_relation_[MakeKey(t.relation, t.tail)].push_back(t.head);
    }
  }
  auto sort_and_dedupe = [](std::vector<EntityId>& v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  };
  for (auto& [key, v] : tails_by_head_relation_) sort_and_dedupe(v);
  for (auto& [key, v] : heads_by_tail_relation_) sort_and_dedupe(v);
}

void FilterIndex::Build(const std::vector<Triple>& train,
                        const std::vector<Triple>& valid,
                        const std::vector<Triple>& test) {
  const std::array<const std::vector<Triple>*, 3> splits = {&train, &valid,
                                                            &test};
  Build(std::span<const std::vector<Triple>* const>(splits));
}

bool FilterIndex::Contains(const Triple& triple) const {
  const auto it =
      tails_by_head_relation_.find(MakeKey(triple.relation, triple.head));
  if (it == tails_by_head_relation_.end()) return false;
  return std::binary_search(it->second.begin(), it->second.end(),
                            triple.tail);
}

std::span<const EntityId> FilterIndex::KnownTails(EntityId head,
                                                  RelationId relation) const {
  const auto it = tails_by_head_relation_.find(MakeKey(relation, head));
  if (it == tails_by_head_relation_.end()) return {};
  return it->second;
}

std::span<const EntityId> FilterIndex::KnownHeads(EntityId tail,
                                                  RelationId relation) const {
  const auto it = heads_by_tail_relation_.find(MakeKey(relation, tail));
  if (it == heads_by_tail_relation_.end()) return {};
  return it->second;
}

}  // namespace kge
