// Structural analysis of relations in a triple collection:
//   * mapping category (1-1 / 1-N / N-1 / N-N) after Bordes et al.,
//   * symmetry / antisymmetry scores,
//   * inverse-relation detection.
// Used to characterize generated datasets (tests assert the WordNet-like
// generator produces the intended pattern mix) and for per-relation
// result breakdowns.
#ifndef KGE_KG_RELATION_ANALYSIS_H_
#define KGE_KG_RELATION_ANALYSIS_H_

#include <string>
#include <vector>

#include "kg/triple.h"

namespace kge {

enum class MappingCategory {
  kOneToOne,
  kOneToMany,
  kManyToOne,
  kManyToMany,
};

const char* MappingCategoryToString(MappingCategory category);

struct RelationStats {
  RelationId relation = 0;
  size_t num_triples = 0;
  // Mean tails per head and heads per tail.
  double tails_per_head = 0.0;
  double heads_per_tail = 0.0;
  MappingCategory category = MappingCategory::kOneToOne;
  // Fraction of triples (h,t,r) with h != t whose reverse (t,h,r) is also
  // present. 1.0 for fully symmetric relations, 0.0 for antisymmetric.
  double symmetry = 0.0;
  // Best inverse partner: relation s maximizing the fraction of (h,t,r)
  // with (t,h,s) present (s != r). -1 when the relation has no triples.
  RelationId best_inverse = -1;
  double best_inverse_score = 0.0;
};

// Computes stats for every relation id in [0, num_relations).
std::vector<RelationStats> AnalyzeRelations(const std::vector<Triple>& triples,
                                            int32_t num_entities,
                                            int32_t num_relations);

// Formats the analysis as an aligned table (one relation per row).
std::string RelationStatsTable(const std::vector<RelationStats>& stats);

}  // namespace kge

#endif  // KGE_KG_RELATION_ANALYSIS_H_
