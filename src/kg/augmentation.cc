#include "kg/augmentation.h"

#include "util/check.h"

namespace kge {

RelationId AugmentedRelationOf(RelationId relation, int32_t num_relations) {
  KGE_DCHECK(relation >= 0 && relation < num_relations);
  return relation + num_relations;
}

AugmentedTriples AugmentWithInverses(const std::vector<Triple>& train,
                                     int32_t num_relations) {
  AugmentedTriples result;
  result.num_relations = num_relations * 2;
  result.triples.reserve(train.size() * 2);
  result.triples = train;
  for (const Triple& t : train) {
    result.triples.push_back(
        Triple{t.tail, t.head, AugmentedRelationOf(t.relation, num_relations)});
  }
  return result;
}

}  // namespace kge
