// The CPh data-augmentation heuristic of Lacroix et al. [17] (§2.2.3):
// for each training triple (h, t, r), add the inverse triple (t, h, r_a)
// where r_a is a fresh "augmented" relation paired with r. The paper shows
// (Eq. 11) that training CP on the augmented data is equivalent, under
// SGD, to the two-embedding weight vector CPh in Table 1.
#ifndef KGE_KG_AUGMENTATION_H_
#define KGE_KG_AUGMENTATION_H_

#include <vector>

#include "kg/triple.h"

namespace kge {

struct AugmentedTriples {
  // Original triples followed by their inverses.
  std::vector<Triple> triples;
  // Total relation count after augmentation (2 * original).
  int32_t num_relations = 0;
};

// Maps relation r to its augmented inverse relation id r_a = r + original
// count. Involutive only on the original range.
RelationId AugmentedRelationOf(RelationId relation, int32_t num_relations);

// Builds the augmented training set.
AugmentedTriples AugmentWithInverses(const std::vector<Triple>& train,
                                     int32_t num_relations);

}  // namespace kge

#endif  // KGE_KG_AUGMENTATION_H_
