#include "kg/vocabulary.h"

#include "util/check.h"

namespace kge {

int32_t Vocabulary::GetOrAdd(const std::string& name) {
  auto [it, inserted] = ids_.try_emplace(name, static_cast<int32_t>(names_.size()));
  if (inserted) names_.push_back(name);
  return it->second;
}

void Vocabulary::Reserve(int32_t capacity) {
  if (capacity <= 0) return;
  ids_.reserve(static_cast<size_t>(capacity));
  names_.reserve(static_cast<size_t>(capacity));
}

int32_t Vocabulary::Find(const std::string& name) const {
  auto it = ids_.find(name);
  return it == ids_.end() ? -1 : it->second;
}

const std::string& Vocabulary::NameOf(int32_t id) const {
  KGE_CHECK(id >= 0 && id < size());
  return names_[static_cast<size_t>(id)];
}

}  // namespace kge
