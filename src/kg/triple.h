// The fundamental fact type: a triple (head, tail, relation) of integer ids
// after vocabulary interning. Follows the paper's (h, t, r) ordering.
#ifndef KGE_KG_TRIPLE_H_
#define KGE_KG_TRIPLE_H_

#include <cstdint>
#include <functional>

namespace kge {

using EntityId = int32_t;
using RelationId = int32_t;

struct Triple {
  EntityId head = 0;
  EntityId tail = 0;
  RelationId relation = 0;

  friend bool operator==(const Triple& x, const Triple& y) = default;
  friend auto operator<=>(const Triple& x, const Triple& y) = default;
};

// 64-bit mix hash over the three ids; used by FilterIndex hash sets.
struct TripleHash {
  size_t operator()(const Triple& t) const {
    uint64_t x = (uint64_t(uint32_t(t.head)) << 32) ^
                 (uint64_t(uint32_t(t.tail)) << 13) ^
                 uint64_t(uint32_t(t.relation));
    // SplitMix64 finalizer.
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return size_t(x ^ (x >> 31));
  }
};

}  // namespace kge

#endif  // KGE_KG_TRIPLE_H_
