// FilterIndex: the known-triple index used by the *filtered* ranking
// protocol of Bordes et al. [4], as adopted by the paper (§5.2). When
// ranking a test triple (h, t, r) against corruptions, every corruption
// that is itself a valid triple anywhere in train ∪ valid ∪ test must be
// excluded so true triples are not counted as errors ("false negatives").
//
// Layout: two hash maps keyed by (relation, head) -> set of tails and
// (relation, tail) -> set of heads, with sorted vectors as the set
// representation (membership via binary search; cache friendly and
// compact for WN18-scale data).
#ifndef KGE_KG_FILTER_INDEX_H_
#define KGE_KG_FILTER_INDEX_H_

#include <span>
#include <unordered_map>
#include <vector>

#include "kg/triple.h"

namespace kge {

class FilterIndex {
 public:
  FilterIndex() = default;

  // Builds the index over the union of the given splits.
  void Build(std::span<const std::vector<Triple>* const> splits);

  // Convenience overload for {train, valid, test}.
  void Build(const std::vector<Triple>& train,
             const std::vector<Triple>& valid,
             const std::vector<Triple>& test);

  bool Contains(const Triple& triple) const;

  // All known tails t' such that (h, t', r) is a known triple; sorted.
  std::span<const EntityId> KnownTails(EntityId head,
                                       RelationId relation) const;
  // All known heads h' such that (h', t, r) is a known triple; sorted.
  std::span<const EntityId> KnownHeads(EntityId tail,
                                       RelationId relation) const;

  size_t num_triples() const { return num_triples_; }

 private:
  using Key = uint64_t;  // (relation << 32) | entity
  static Key MakeKey(RelationId relation, EntityId entity) {
    return (uint64_t(uint32_t(relation)) << 32) | uint32_t(entity);
  }

  std::unordered_map<Key, std::vector<EntityId>> tails_by_head_relation_;
  std::unordered_map<Key, std::vector<EntityId>> heads_by_tail_relation_;
  size_t num_triples_ = 0;
};

}  // namespace kge

#endif  // KGE_KG_FILTER_INDEX_H_
