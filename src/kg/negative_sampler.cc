#include "kg/negative_sampler.h"

#include <map>
#include <set>

#include "util/check.h"

namespace kge {

NegativeSampler::NegativeSampler(int32_t num_entities, int32_t num_relations,
                                 const std::vector<Triple>& train,
                                 const NegativeSamplerOptions& options)
    : num_entities_(num_entities), options_(options) {
  KGE_CHECK(num_entities_ > 1);
  head_probability_.assign(static_cast<size_t>(num_relations), 0.5);
  if (options_.side != CorruptionSide::kBernoulli) return;

  // tph: mean tails per (head, relation); hpt: mean heads per
  // (tail, relation). P(corrupt head) = tph / (tph + hpt): relations with
  // many tails per head get their *head* corrupted more often, because a
  // random tail corruption is more likely to be accidentally true.
  std::map<std::pair<RelationId, EntityId>, std::set<EntityId>> tails;
  std::map<std::pair<RelationId, EntityId>, std::set<EntityId>> heads;
  for (const Triple& t : train) {
    tails[{t.relation, t.head}].insert(t.tail);
    heads[{t.relation, t.tail}].insert(t.head);
  }
  const size_t nr = static_cast<size_t>(num_relations);
  std::vector<double> tph_sum(nr, 0.0), tph_count(nr, 0.0);
  std::vector<double> hpt_sum(nr, 0.0), hpt_count(nr, 0.0);
  for (const auto& [key, set] : tails) {
    tph_sum[static_cast<size_t>(key.first)] += double(set.size());
    tph_count[static_cast<size_t>(key.first)] += 1.0;
  }
  for (const auto& [key, set] : heads) {
    hpt_sum[static_cast<size_t>(key.first)] += double(set.size());
    hpt_count[static_cast<size_t>(key.first)] += 1.0;
  }
  for (size_t r = 0; r < nr; ++r) {
    if (tph_count[r] == 0.0 || hpt_count[r] == 0.0) continue;
    const double tph = tph_sum[r] / tph_count[r];
    const double hpt = hpt_sum[r] / hpt_count[r];
    head_probability_[r] = tph / (tph + hpt);
  }
}

double NegativeSampler::HeadCorruptionProbability(RelationId relation) const {
  KGE_DCHECK(relation >= 0 &&
             static_cast<size_t>(relation) < head_probability_.size());
  return head_probability_[static_cast<size_t>(relation)];
}

Triple NegativeSampler::Sample(const Triple& positive, Rng* rng) const {
  const double p_head = HeadCorruptionProbability(positive.relation);
  Triple corrupted = positive;
  for (int attempt = 0;; ++attempt) {
    const bool corrupt_head = rng->NextBool(p_head);
    const EntityId replacement =
        static_cast<EntityId>(rng->NextBounded(uint64_t(num_entities_)));
    corrupted = positive;
    if (corrupt_head) {
      corrupted.head = replacement;
    } else {
      corrupted.tail = replacement;
    }
    if (corrupted == positive) continue;
    if (options_.reject_known == nullptr ||
        attempt >= options_.max_rejection_attempts ||
        !options_.reject_known->Contains(corrupted)) {
      return corrupted;
    }
  }
}

void NegativeSampler::SampleMany(const Triple& positive, int count, Rng* rng,
                                 std::vector<Triple>* out) const {
  // kge-hotpath: allow(appends into the caller's reused thread_local buffer)
  for (int i = 0; i < count; ++i) out->push_back(Sample(positive, rng));
}

}  // namespace kge
