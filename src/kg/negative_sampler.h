// Negative sampling (§4): for each valid training triple (h, t, r),
// produce invalid triples by replacing the head or the tail with a random
// entity [4][20]. Two corruption-side policies:
//   * kUniform  — corrupt head or tail with probability 1/2 (the paper's
//                 setting, following Bordes et al.).
//   * kBernoulli— corrupt with per-relation probabilities from the
//                 tph/hpt statistics of Wang et al. (TransH), which
//                 reduces false negatives for 1-N / N-1 relations.
// Optionally rejects corruptions that are known true triples.
#ifndef KGE_KG_NEGATIVE_SAMPLER_H_
#define KGE_KG_NEGATIVE_SAMPLER_H_

#include <vector>

#include "kg/filter_index.h"
#include "kg/triple.h"
#include "util/random.h"

namespace kge {

enum class CorruptionSide {
  kUniform,
  kBernoulli,
};

struct NegativeSamplerOptions {
  CorruptionSide side = CorruptionSide::kUniform;
  // If non-null, sampled corruptions that are known valid triples are
  // rejected and resampled (up to a bounded number of attempts).
  const FilterIndex* reject_known = nullptr;
  int max_rejection_attempts = 16;
};

class NegativeSampler {
 public:
  // `train` is needed only for kBernoulli statistics; may be empty for
  // kUniform.
  NegativeSampler(int32_t num_entities, int32_t num_relations,
                  const std::vector<Triple>& train,
                  const NegativeSamplerOptions& options);

  // Produces one corrupted triple from `positive`.
  Triple Sample(const Triple& positive, Rng* rng) const;

  // Produces `count` corrupted triples appended to `out`.
  void SampleMany(const Triple& positive, int count, Rng* rng,
                  std::vector<Triple>* out) const;

  // Probability of corrupting the head for `relation` (0.5 for kUniform).
  double HeadCorruptionProbability(RelationId relation) const;

 private:
  int32_t num_entities_;
  NegativeSamplerOptions options_;
  // Per-relation probability of replacing the head (Bernoulli scheme).
  std::vector<double> head_probability_;
};

}  // namespace kge

#endif  // KGE_KG_NEGATIVE_SAMPLER_H_
