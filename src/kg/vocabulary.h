// Bidirectional string <-> dense id interning for entities or relations.
#ifndef KGE_KG_VOCABULARY_H_
#define KGE_KG_VOCABULARY_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace kge {

class Vocabulary {
 public:
  Vocabulary() = default;

  // Returns the id for `name`, adding it if absent. Ids are dense and
  // assigned in first-seen order.
  int32_t GetOrAdd(const std::string& name);

  // Pre-sizes the intern structures for `capacity` names, so bulk
  // construction (e.g. the million-entity synthetic generators) does
  // not rehash/reallocate its way up.
  void Reserve(int32_t capacity);

  // Returns the id for `name` or -1 if absent.
  int32_t Find(const std::string& name) const;

  // Returns the name for `id`; id must be in range.
  const std::string& NameOf(int32_t id) const;

  int32_t size() const { return static_cast<int32_t>(names_.size()); }
  bool empty() const { return names_.empty(); }

  const std::vector<std::string>& names() const { return names_; }

 private:
  std::unordered_map<std::string, int32_t> ids_;
  std::vector<std::string> names_;
};

}  // namespace kge

#endif  // KGE_KG_VOCABULARY_H_
