#include "models/er_mlp.h"

#include <algorithm>
#include <vector>

#include "util/check.h"
#include "util/scratch.h"

namespace kge {

ErMlp::ErMlp(int32_t num_entities, int32_t num_relations, int32_t dim,
             int32_t hidden_dim, uint64_t seed)
    : name_("ER-MLP"),
      entities_("ErMlp.entities", num_entities, 1, dim),
      relations_("ErMlp.relations", num_relations, 1, dim),
      hidden_("ErMlp.hidden", 3 * dim, hidden_dim, Activation::kTanh),
      output_("ErMlp.output", hidden_dim, 1, Activation::kLinear) {
  InitParameters(seed);
}

void ErMlp::InitParameters(uint64_t seed) {
  Rng rng(seed);
  entities_.InitXavier(&rng);
  relations_.InitXavier(&rng);
  hidden_.Init(&rng);
  output_.Init(&rng);
}

void ErMlp::Concatenate(std::span<const float> h, std::span<const float> t,
                        std::span<const float> r, std::span<float> x) const {
  const size_t d = size_t(dim());
  KGE_DCHECK(x.size() == 3 * d);
  std::copy(h.begin(), h.end(), x.begin());
  std::copy(t.begin(), t.end(), x.begin() + std::ptrdiff_t(d));
  std::copy(r.begin(), r.end(), x.begin() + std::ptrdiff_t(2 * d));
}

double ErMlp::Score(const Triple& triple) const {
  static thread_local std::vector<float> x_buf;
  const std::span<float> x = ScratchSpan(x_buf, static_cast<size_t>(3 * dim()));
  Concatenate(entities_.Of(triple.head), entities_.Of(triple.tail),
              relations_.Of(triple.relation), x);
  static thread_local std::vector<float> a_buf;
  const std::span<float> a =
      ScratchSpan(a_buf, static_cast<size_t>(hidden_dim()));
  hidden_.Forward(x, a);
  float s = 0.0f;
  output_.Forward(a, std::span<float>(&s, 1));
  return double(s);
}

void ErMlp::ScoreAllTails(EntityId head, RelationId relation,
                          std::span<float> out) const {
  KGE_CHECK(out.size() == size_t(entities_.num_ids()));
  // No fold trick for an MLP: full forward per candidate (the expense the
  // paper's §2.2.2 critique refers to). Scratch still makes the outer call
  // allocation-free.
  static thread_local std::vector<float> x_buf;
  static thread_local std::vector<float> a_buf;
  const std::span<float> x = ScratchSpan(x_buf, static_cast<size_t>(3 * dim()));
  const std::span<float> a =
      ScratchSpan(a_buf, static_cast<size_t>(hidden_dim()));
  const auto h = entities_.Of(head);
  const auto r = relations_.Of(relation);
  for (int32_t e = 0; e < entities_.num_ids(); ++e) {
    Concatenate(h, entities_.Of(e), r, x);
    hidden_.Forward(x, a);
    float s = 0.0f;
    output_.Forward(a, std::span<float>(&s, 1));
    out[size_t(e)] = s;
  }
}

void ErMlp::ScoreAllHeads(EntityId tail, RelationId relation,
                          std::span<float> out) const {
  KGE_CHECK(out.size() == size_t(entities_.num_ids()));
  static thread_local std::vector<float> x_buf;
  static thread_local std::vector<float> a_buf;
  const std::span<float> x = ScratchSpan(x_buf, static_cast<size_t>(3 * dim()));
  const std::span<float> a =
      ScratchSpan(a_buf, static_cast<size_t>(hidden_dim()));
  const auto t = entities_.Of(tail);
  const auto r = relations_.Of(relation);
  for (int32_t e = 0; e < entities_.num_ids(); ++e) {
    Concatenate(entities_.Of(e), t, r, x);
    hidden_.Forward(x, a);
    float s = 0.0f;
    output_.Forward(a, std::span<float>(&s, 1));
    out[size_t(e)] = s;
  }
}

std::vector<ParameterBlock*> ErMlp::Blocks() {
  return {entities_.block(), relations_.block(), hidden_.weights(),
          hidden_.bias(),    output_.weights(),  output_.bias()};
}

void ErMlp::AccumulateGradients(const Triple& triple, float dscore,
                                GradientBuffer* grads) {
  const size_t d = size_t(dim());
  static thread_local std::vector<float> x_buf;
  const std::span<float> x = ScratchSpan(x_buf, 3 * d);
  Concatenate(entities_.Of(triple.head), entities_.Of(triple.tail),
              relations_.Of(triple.relation), x);
  static thread_local std::vector<float> a_buf;
  const std::span<float> a = ScratchSpan(a_buf, size_t(hidden_dim()));
  hidden_.Forward(x, a);
  float s = 0.0f;
  output_.Forward(a, std::span<float>(&s, 1));

  // Backprop: output layer -> hidden activations -> hidden layer -> x.
  // Both deltas are accumulated into, so zero the reused scratch first.
  static thread_local std::vector<float> da_buf;
  const std::span<float> da = ScratchSpan(da_buf, size_t(hidden_dim()));
  std::fill(da.begin(), da.end(), 0.0f);
  output_.Backward(a, std::span<const float>(&s, 1),
                   std::span<const float>(&dscore, 1), grads, kOutputWeights,
                   kOutputBias, da);
  static thread_local std::vector<float> dx_buf;
  const std::span<float> dx = ScratchSpan(dx_buf, 3 * d);
  std::fill(dx.begin(), dx.end(), 0.0f);
  hidden_.Backward(x, a, da, grads, kHiddenWeights, kHiddenBias, dx);

  // Split dx into the three embedding gradients.
  std::span<float> gh = grads->GradFor(kEntityBlock, triple.head);
  std::span<float> gt = grads->GradFor(kEntityBlock, triple.tail);
  std::span<float> gr = grads->GradFor(kRelationBlock, triple.relation);
  for (size_t i = 0; i < d; ++i) {
    gh[i] += dx[i];
    gt[i] += dx[d + i];
    gr[i] += dx[2 * d + i];
  }
}

void ErMlp::NormalizeEntities(std::span<const EntityId> entities) {
  for (EntityId e : entities) entities_.NormalizeVectorsOf(e);
}

std::unique_ptr<ErMlp> MakeErMlp(int32_t num_entities, int32_t num_relations,
                                 int32_t dim, int32_t hidden_dim,
                                 uint64_t seed) {
  return std::make_unique<ErMlp>(num_entities, num_relations, dim,
                                 hidden_dim, seed);
}

}  // namespace kge
