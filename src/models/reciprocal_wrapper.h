// ReciprocalWrapper: the standard evaluation adapter for models trained
// on inverse-augmented data (Lacroix et al.'s protocol for CP, and
// ConvE's reciprocal relations): a head query (?, t, r) is answered as
// the tail query (t, ?, r_inverse) on the base model, where
// r_inverse = r + original_relation_count (kg/augmentation.h's mapping).
//
// This matters because an augmented model's ScoreAllHeads direction was
// never trained — all training queries are tail queries — so evaluating
// it directly understates the model (and is why plain CP + augmentation
// evaluated naively looks worse than CPh).
#ifndef KGE_MODELS_RECIPROCAL_WRAPPER_H_
#define KGE_MODELS_RECIPROCAL_WRAPPER_H_

#include <string>

#include "models/kge_model.h"
#include "util/hotpath.h"

namespace kge {

class ReciprocalWrapper : public KgeModel {
 public:
  // `base` must have been built with 2 * original_relations relations
  // (the augmented layout); it is borrowed, not owned.
  ReciprocalWrapper(KgeModel* base, int32_t original_relations);

  const std::string& name() const override { return name_; }
  int32_t num_entities() const override { return base_->num_entities(); }
  // Presents the ORIGINAL relation count to the evaluator.
  int32_t num_relations() const override { return original_relations_; }

  double Score(const Triple& triple) const override {
    return base_->Score(triple);
  }
  KGE_HOT_NOALLOC
  void ScoreAllTails(EntityId head, RelationId relation,
                     std::span<float> out) const override {
    base_->ScoreAllTails(head, relation, out);
  }
  // Head query -> reciprocal tail query.
  KGE_HOT_NOALLOC
  void ScoreAllHeads(EntityId tail, RelationId relation,
                     std::span<float> out) const override;
  // Batched candidate scoring delegates unchanged, like Score: the
  // trainer only issues queries over the augmented relation set.
  KGE_HOT_NOALLOC
  void ScoreTailBatch(EntityId head, RelationId relation,
                      std::span<const EntityId> tails,
                      std::span<float> out) const override {
    base_->ScoreTailBatch(head, relation, tails, out);
  }
  KGE_HOT_NOALLOC
  void ScoreHeadBatch(EntityId tail, RelationId relation,
                      std::span<const EntityId> heads,
                      std::span<float> out) const override {
    base_->ScoreHeadBatch(tail, relation, heads, out);
  }

  // Training-related methods delegate unchanged.
  std::vector<ParameterBlock*> Blocks() override { return base_->Blocks(); }
  KGE_HOT_NOALLOC
  void AccumulateGradients(const Triple& triple, float dscore,
                           GradientBuffer* grads) override {
    base_->AccumulateGradients(triple, dscore, grads);
  }
  void NormalizeEntities(std::span<const EntityId> entities) override {
    base_->NormalizeEntities(entities);
  }
  void InitParameters(uint64_t seed) override {
    base_->InitParameters(seed);
  }

 private:
  KgeModel* base_;
  int32_t original_relations_;
  std::string name_;
};

}  // namespace kge

#endif  // KGE_MODELS_RECIPROCAL_WRAPPER_H_
