#include "models/conve.h"

#include <algorithm>

#include "math/vec_ops.h"
#include "util/check.h"
#include "util/scratch.h"
#include "util/string_utils.h"

namespace kge {

ConvE::ConvE(int32_t num_entities, int32_t num_relations,
             const ConvEOptions& options, uint64_t seed)
    : name_("ConvE"),
      options_(options),
      entities_("ConvE.entities", num_entities, 1, options.dim),
      relations_("ConvE.relations", num_relations, 1, options.dim),
      conv_("ConvE.conv", /*in_channels=*/1,
            /*in_height=*/2 * options.grid_height,
            /*in_width=*/options.grid_width, options.num_filters,
            /*kernel_height=*/3, /*kernel_width=*/3),
      projection_("ConvE.projection",
                  int32_t(conv_.output_size()), options.dim,
                  Activation::kLinear),
      entity_bias_("ConvE.entity_bias", num_entities, 1) {
  KGE_CHECK(options.grid_height * options.grid_width == options.dim);
  InitParameters(seed);
}

void ConvE::InitParameters(uint64_t seed) {
  Rng rng(seed);
  entities_.InitXavier(&rng);
  relations_.InitXavier(&rng);
  conv_.Init(&rng);
  projection_.Init(&rng);
  entity_bias_.Zero();
}

void ConvE::ForwardQuery(EntityId head, RelationId relation,
                         Activations* acts) const {
  const auto h = entities_.Of(head);
  const auto r = relations_.Of(relation);
  // Stack the two grids: channel 0 is [h-grid; r-grid] vertically.
  // kge-hotpath: allow(thread_local Activations high-water growth)
  acts->input.resize(size_t(conv_.input_size()));
  std::copy(h.begin(), h.end(), acts->input.begin());
  std::copy(r.begin(), r.end(),
            acts->input.begin() + std::ptrdiff_t(h.size()));

  // kge-hotpath: allow(thread_local Activations high-water growth)
  acts->conv_out.resize(size_t(conv_.output_size()));
  conv_.Forward(acts->input, acts->conv_out);
  Relu(acts->conv_out);

  // kge-hotpath: allow(thread_local Activations high-water growth)
  acts->fc_out.resize(size_t(dim()));
  projection_.Forward(acts->conv_out, acts->fc_out);
  acts->projected = acts->fc_out;
  Relu(acts->projected);
}

double ConvE::Score(const Triple& triple) const {
  // Activations hold their vectors across calls (resize becomes a no-op
  // after the first call on each thread), so scoring never allocates.
  static thread_local Activations acts;
  ForwardQuery(triple.head, triple.relation, &acts);
  return Dot(acts.projected, entities_.Of(triple.tail)) +
         double(entity_bias_.Row(triple.tail)[0]);
}

void ConvE::ScoreAllTails(EntityId head, RelationId relation,
                          std::span<float> out) const {
  KGE_CHECK(out.size() == size_t(entities_.num_ids()));
  // One forward pass; per candidate only a dot product + bias (the
  // 1-N scoring efficiency ConvE is trained with). The dots run as one
  // batched pass over the entity table, then the bias column is added.
  static thread_local Activations acts;
  ForwardQuery(head, relation, &acts);
  DotBatch(acts.projected, entities_.block().Flat(), out);
  Axpy(1.0f, entity_bias_.Flat(), out);
}

void ConvE::ScoreAllHeads(EntityId tail, RelationId relation,
                          std::span<float> out) const {
  KGE_CHECK(out.size() == size_t(entities_.num_ids()));
  // No shared computation across candidate heads: full forward each.
  const auto t = entities_.Of(tail);
  const double tail_bias = double(entity_bias_.Row(tail)[0]);
  static thread_local Activations acts;
  for (int32_t e = 0; e < entities_.num_ids(); ++e) {
    ForwardQuery(e, relation, &acts);
    out[size_t(e)] = static_cast<float>(Dot(acts.projected, t) + tail_bias);
  }
}

std::vector<ParameterBlock*> ConvE::Blocks() {
  return {entities_.block(), relations_.block(), conv_.filters(),
          conv_.bias(),      projection_.weights(), projection_.bias(),
          &entity_bias_};
}

void ConvE::AccumulateGradients(const Triple& triple, float dscore,
                                GradientBuffer* grads) {
  static thread_local Activations acts;
  ForwardQuery(triple.head, triple.relation, &acts);
  const auto t = entities_.Of(triple.tail);

  // dS/db_t = 1; dS/dt = projected; dS/dprojected = t.
  grads->GradFor(kEntityBias, triple.tail)[0] += dscore;
  std::span<float> gt = grads->GradFor(kEntityBlock, triple.tail);
  Axpy(dscore, acts.projected, gt);

  static thread_local std::vector<float> dprojected_buf, dfc_buf, dconv_buf,
      dconv_pre_buf, dinput_buf;
  const std::span<float> dprojected =
      ScratchSpan(dprojected_buf, size_t(dim()));
  const std::span<float> dfc = ScratchSpan(dfc_buf, size_t(dim()));
  std::fill(dfc.begin(), dfc.end(), 0.0f);
  for (size_t i = 0; i < dprojected.size(); ++i) {
    dprojected[i] = dscore * t[i];
  }
  // Back through the output ReLU (projected = ReLU(fc_out)).
  ReluBackward(acts.projected, dprojected, dfc);

  // Back through the projection layer into the conv activations.
  const std::span<float> dconv =
      ScratchSpan(dconv_buf, size_t(conv_.output_size()));
  std::fill(dconv.begin(), dconv.end(), 0.0f);
  projection_.Backward(acts.conv_out, acts.fc_out, dfc, grads,
                       kProjectionWeights, kProjectionBias, dconv);

  // Back through the conv ReLU (conv_out stored post-ReLU).
  const std::span<float> dconv_pre =
      ScratchSpan(dconv_pre_buf, size_t(conv_.output_size()));
  std::fill(dconv_pre.begin(), dconv_pre.end(), 0.0f);
  ReluBackward(acts.conv_out, dconv, dconv_pre);

  // Back through the convolution into the stacked input grids.
  const std::span<float> dinput =
      ScratchSpan(dinput_buf, size_t(conv_.input_size()));
  std::fill(dinput.begin(), dinput.end(), 0.0f);
  conv_.Backward(acts.input, dconv_pre, grads, kConvFilters, kConvBias,
                 dinput);

  // Split the input gradient into head and relation parts.
  std::span<float> gh = grads->GradFor(kEntityBlock, triple.head);
  std::span<float> gr = grads->GradFor(kRelationBlock, triple.relation);
  const size_t d = size_t(dim());
  for (size_t i = 0; i < d; ++i) {
    gh[i] += dinput[i];
    gr[i] += dinput[d + i];
  }
}

void ConvE::NormalizeEntities(std::span<const EntityId> entities) {
  for (EntityId e : entities) entities_.NormalizeVectorsOf(e);
}

std::unique_ptr<ConvE> MakeConvE(int32_t num_entities, int32_t num_relations,
                                 const ConvEOptions& options, uint64_t seed) {
  return std::make_unique<ConvE>(num_entities, num_relations, options, seed);
}

}  // namespace kge
