#include "models/transe.h"

#include <cmath>
#include <vector>

#include "math/vec_ops.h"
#include "util/check.h"
#include "util/scratch.h"
#include "util/string_utils.h"

namespace kge {

TransE::TransE(int32_t num_entities, int32_t num_relations, int32_t dim,
               int norm_p, uint64_t seed)
    : name_(StrFormat("TransE-L%d", norm_p)),
      norm_p_(norm_p),
      entities_("TransE.entities", num_entities, 1, dim),
      relations_("TransE.relations", num_relations, 1, dim) {
  KGE_CHECK(norm_p == 1 || norm_p == 2);
  InitParameters(seed);
}

void TransE::InitParameters(uint64_t seed) {
  Rng rng(seed);
  entities_.InitXavier(&rng);
  relations_.InitXavier(&rng);
}

double TransE::Score(const Triple& triple) const {
  const auto h = entities_.Of(triple.head);
  const auto t = entities_.Of(triple.tail);
  const auto r = relations_.Of(triple.relation);
  double distance = 0.0;
  if (norm_p_ == 1) {
    for (size_t d = 0; d < h.size(); ++d) {
      distance += std::fabs(double(h[d]) + double(r[d]) - double(t[d]));
    }
  } else {
    for (size_t d = 0; d < h.size(); ++d) {
      const double diff = double(h[d]) + double(r[d]) - double(t[d]);
      distance += diff * diff;
    }
  }
  return -distance;
}

void TransE::ScoreAllTails(EntityId head, RelationId relation,
                           std::span<float> out) const {
  KGE_CHECK(out.size() == size_t(entities_.num_ids()));
  const auto h = entities_.Of(head);
  const auto r = relations_.Of(relation);
  static thread_local std::vector<float> translated_buf;
  const std::span<float> translated = ScratchSpan(translated_buf, h.size());
  for (size_t d = 0; d < h.size(); ++d) translated[d] = h[d] + r[d];
  for (int32_t e = 0; e < entities_.num_ids(); ++e) {
    out[size_t(e)] = static_cast<float>(
        -LpDistance(translated, entities_.Of(e), norm_p_));
  }
}

void TransE::ScoreAllHeads(EntityId tail, RelationId relation,
                           std::span<float> out) const {
  KGE_CHECK(out.size() == size_t(entities_.num_ids()));
  const auto t = entities_.Of(tail);
  const auto r = relations_.Of(relation);
  // ||h + r − t|| = ||h − (t − r)||.
  static thread_local std::vector<float> target_buf;
  const std::span<float> target = ScratchSpan(target_buf, t.size());
  for (size_t d = 0; d < t.size(); ++d) target[d] = t[d] - r[d];
  for (int32_t e = 0; e < entities_.num_ids(); ++e) {
    out[size_t(e)] =
        static_cast<float>(-LpDistance(entities_.Of(e), target, norm_p_));
  }
}

std::vector<ParameterBlock*> TransE::Blocks() {
  return {entities_.block(), relations_.block()};
}

void TransE::AccumulateGradients(const Triple& triple, float dscore,
                                 GradientBuffer* grads) {
  const auto h = entities_.Of(triple.head);
  const auto t = entities_.Of(triple.tail);
  const auto r = relations_.Of(triple.relation);
  std::span<float> gh = grads->GradFor(kEntityBlock, triple.head);
  std::span<float> gt = grads->GradFor(kEntityBlock, triple.tail);
  std::span<float> gr = grads->GradFor(kRelationBlock, triple.relation);
  for (size_t d = 0; d < h.size(); ++d) {
    const double diff = double(h[d]) + double(r[d]) - double(t[d]);
    double ddiff;  // ∂S/∂diff
    if (norm_p_ == 1) {
      ddiff = diff > 0.0 ? -1.0 : (diff < 0.0 ? 1.0 : 0.0);
    } else {
      ddiff = -2.0 * diff;
    }
    const float g = dscore * static_cast<float>(ddiff);
    gh[d] += g;
    gr[d] += g;
    gt[d] -= g;
  }
}

void TransE::NormalizeEntities(std::span<const EntityId> entities) {
  for (EntityId e : entities) entities_.NormalizeVectorsOf(e);
}

std::unique_ptr<TransE> MakeTransE(int32_t num_entities,
                                   int32_t num_relations, int32_t dim,
                                   int norm_p, uint64_t seed) {
  return std::make_unique<TransE>(num_entities, num_relations, dim, norm_p,
                                  seed);
}

}  // namespace kge
