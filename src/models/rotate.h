// RotatE (Sun et al. 2019) — rotation-based scoring in the complex
// plane, a natural companion to the paper's analysis: where ComplEx uses
// the complex trilinear product, RotatE keeps ComplEx's complex-valued
// entities but models the relation as a unit rotation and measures
// translation-style distance:
//
//   S(h, t, r) = −|| h ∘ e^{iθ_r} − t ||²   over C^D
//
// (∘ = elementwise complex multiplication; the relation parameter is the
// phase vector θ_r, so |r_d| = 1 by construction). Rotations compose,
// invert, and can be half-turns, so RotatE models composition, inversion,
// symmetry, and antisymmetry — the pattern checklist this repository's
// generators probe.
#ifndef KGE_MODELS_ROTATE_H_
#define KGE_MODELS_ROTATE_H_

#include <memory>
#include <string>

#include "core/embedding_store.h"
#include "models/kge_model.h"
#include "util/hotpath.h"

namespace kge {

class RotatE : public KgeModel {
 public:
  // `dim` is the complex dimension: entities get 2*dim real parameters
  // (re, im), relations get dim phases.
  RotatE(int32_t num_entities, int32_t num_relations, int32_t dim,
         uint64_t seed);

  const std::string& name() const override { return name_; }
  int32_t num_entities() const override { return entities_.num_ids(); }
  int32_t num_relations() const override { return phases_.num_ids(); }
  int32_t dim() const { return phases_.dim(); }

  double Score(const Triple& triple) const override;
  KGE_HOT_NOALLOC
  void ScoreAllTails(EntityId head, RelationId relation,
                     std::span<float> out) const override;
  KGE_HOT_NOALLOC
  void ScoreAllHeads(EntityId tail, RelationId relation,
                     std::span<float> out) const override;

  std::vector<ParameterBlock*> Blocks() override;
  KGE_HOT_NOALLOC
  void AccumulateGradients(const Triple& triple, float dscore,
                           GradientBuffer* grads) override;
  void NormalizeEntities(std::span<const EntityId> entities) override;
  void InitParameters(uint64_t seed) override;

  static constexpr size_t kEntityBlock = 0;
  static constexpr size_t kPhaseBlock = 1;

 private:
  // Writes h rotated by relation's phases into (out_re, out_im).
  void RotateHead(std::span<const float> h, RelationId relation,
                  std::span<float> out_re, std::span<float> out_im) const;

  std::string name_;
  EmbeddingStore entities_;  // 2 vectors per id: [re | im]
  EmbeddingStore phases_;    // 1 vector of angles per relation
};

std::unique_ptr<RotatE> MakeRotatE(int32_t num_entities,
                                   int32_t num_relations, int32_t dim,
                                   uint64_t seed);

}  // namespace kge

#endif  // KGE_MODELS_ROTATE_H_
