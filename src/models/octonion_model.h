// The eight-embedding interaction model over octonions — this library's
// realization of the paper's §7 future-work direction ("the effective
// extension to additional embedding vectors"), following the same recipe
// that produced the quaternion model from ComplEx:
//
//   S(h, t, r) = Re( (h ⊗ conj(t)) ⊗ r )  over O^D
//
// expanded into a 8x8x8 signed weight table on the shared
// multi-embedding engine. Octonions are non-associative, but the REAL
// PART of a triple product is association-independent (the associator of
// an alternative algebra is purely imaginary), so Re((h⊗t̄)⊗r) and
// Re(h⊗(t̄⊗r)) define the same score function — verified by test. The
// association enum is kept for the derivation API; both values yield the
// identical table.
#ifndef KGE_MODELS_OCTONION_MODEL_H_
#define KGE_MODELS_OCTONION_MODEL_H_

#include <memory>

#include "core/weight_table.h"
#include "models/trilinear_models.h"

namespace kge {

enum class OctonionAssociation {
  kLeft,   // Re((h ⊗ t̄) ⊗ r)
  kRight,  // Re(h ⊗ (t̄ ⊗ r))
};

const char* OctonionAssociationToString(OctonionAssociation association);

// Expands Re over the octonion basis into the 512-entry table (64
// nonzero ±1 terms).
WeightTable DeriveOctonionWeightTable(OctonionAssociation association);

// Eight embedding vectors of `dim` dimensions each.
std::unique_ptr<MultiEmbeddingModel> MakeOctonionModel(
    int32_t num_entities, int32_t num_relations, int32_t dim, uint64_t seed,
    OctonionAssociation association = OctonionAssociation::kLeft);

}  // namespace kge

#endif  // KGE_MODELS_OCTONION_MODEL_H_
