#include "models/rescal.h"

#include <vector>

#include "math/vec_ops.h"
#include "util/check.h"
#include "util/scratch.h"

namespace kge {

Rescal::Rescal(int32_t num_entities, int32_t num_relations, int32_t dim,
               uint64_t seed)
    : name_("RESCAL"),
      entities_("RESCAL.entities", num_entities, 1, dim),
      relation_matrices_("RESCAL.relations", num_relations,
                         int64_t(dim) * int64_t(dim)) {
  KGE_CHECK(dim > 0);
  InitParameters(seed);
}

void Rescal::InitParameters(uint64_t seed) {
  Rng rng(seed);
  entities_.InitXavier(&rng);
  relation_matrices_.InitXavierUniform(&rng, 2 * int64_t(dim()));
}

double Rescal::Score(const Triple& triple) const {
  const auto h = entities_.Of(triple.head);
  const auto t = entities_.Of(triple.tail);
  const auto w = MatrixOf(triple.relation);
  const int32_t d = dim();
  double score = 0.0;
  for (int32_t a = 0; a < d; ++a) {
    // Row dot: (W_r[a, :] · t) * h_a, accumulated over rows.
    double row = 0.0;
    const float* w_row = w.data() + size_t(a) * size_t(d);
    for (int32_t b = 0; b < d; ++b)
      row += double(w_row[b]) * double(t[size_t(b)]);
    score += double(h[size_t(a)]) * row;
  }
  return score;
}

void Rescal::ScoreAllTails(EntityId head, RelationId relation,
                           std::span<float> out) const {
  KGE_CHECK(out.size() == size_t(entities_.num_ids()));
  const auto h = entities_.Of(head);
  const auto w = MatrixOf(relation);
  const int32_t d = dim();
  // v = hᵀ W_r (one D² pass), then one batched v · t over all candidates.
  static thread_local std::vector<float> v_buf;
  const std::span<float> v = ScratchSpan(v_buf, size_t(d));
  Fill(v, 0.0f);
  for (int32_t a = 0; a < d; ++a) {
    const float ha = h[size_t(a)];
    const float* w_row = w.data() + size_t(a) * size_t(d);
    for (int32_t b = 0; b < d; ++b) v[size_t(b)] += ha * w_row[b];
  }
  DotBatch(v, entities_.block().Flat(), out);
}

void Rescal::ScoreAllHeads(EntityId tail, RelationId relation,
                           std::span<float> out) const {
  KGE_CHECK(out.size() == size_t(entities_.num_ids()));
  const auto t = entities_.Of(tail);
  const auto w = MatrixOf(relation);
  const int32_t d = dim();
  // u = W_r t, then one batched h · u over all candidates.
  static thread_local std::vector<float> u_buf;
  const std::span<float> u = ScratchSpan(u_buf, size_t(d));
  for (int32_t a = 0; a < d; ++a) {
    const float* w_row = w.data() + size_t(a) * size_t(d);
    u[size_t(a)] = static_cast<float>(Dot(
        std::span<const float>(w_row, size_t(d)), t));
  }
  DotBatch(u, entities_.block().Flat(), out);
}

std::vector<ParameterBlock*> Rescal::Blocks() {
  return {entities_.block(), &relation_matrices_};
}

void Rescal::AccumulateGradients(const Triple& triple, float dscore,
                                 GradientBuffer* grads) {
  const auto h = entities_.Of(triple.head);
  const auto t = entities_.Of(triple.tail);
  const auto w = MatrixOf(triple.relation);
  const int32_t d = dim();
  std::span<float> gh = grads->GradFor(kEntityBlock, triple.head);
  std::span<float> gt = grads->GradFor(kEntityBlock, triple.tail);
  std::span<float> gw = grads->GradFor(kRelationBlock, triple.relation);
  // dS/dh = W t; dS/dt = Wᵀ h; dS/dW = h tᵀ.
  for (int32_t a = 0; a < d; ++a) {
    const float* w_row = w.data() + size_t(a) * size_t(d);
    float* gw_row = gw.data() + size_t(a) * size_t(d);
    double wt = 0.0;
    const float ha = h[size_t(a)];
    const float scaled_ha = dscore * ha;
    for (int32_t b = 0; b < d; ++b) {
      wt += double(w_row[b]) * double(t[size_t(b)]);
      gt[size_t(b)] += scaled_ha * w_row[b];
      gw_row[b] += scaled_ha * t[size_t(b)];
    }
    gh[size_t(a)] += dscore * static_cast<float>(wt);
  }
}

void Rescal::NormalizeEntities(std::span<const EntityId> entities) {
  for (EntityId e : entities) entities_.NormalizeVectorsOf(e);
}

std::unique_ptr<Rescal> MakeRescal(int32_t num_entities,
                                   int32_t num_relations, int32_t dim,
                                   uint64_t seed) {
  return std::make_unique<Rescal>(num_entities, num_relations, dim, seed);
}

}  // namespace kge
