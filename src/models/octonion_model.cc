#include "models/octonion_model.h"

#include <array>
#include <vector>

#include "math/octonion.h"
#include "util/check.h"
#include "util/string_utils.h"

namespace kge {

const char* OctonionAssociationToString(OctonionAssociation association) {
  switch (association) {
    case OctonionAssociation::kLeft:
      return "Re((h*conj(t))*r)";
    case OctonionAssociation::kRight:
      return "Re(h*(conj(t)*r))";
  }
  return "?";
}

WeightTable DeriveOctonionWeightTable(OctonionAssociation association) {
  std::array<Octonion, 8> basis;
  for (int i = 0; i < 8; ++i) {
    std::array<double, 8> c{};
    c[size_t(i)] = 1.0;
    basis[size_t(i)] = Octonion::FromComponents(c);
  }
  WeightTable table(8, 8);
  std::vector<float> flat(static_cast<size_t>(table.size()), 0.0f);
  for (int32_t i = 0; i < 8; ++i) {
    for (int32_t j = 0; j < 8; ++j) {
      for (int32_t k = 0; k < 8; ++k) {
        const Octonion product =
            association == OctonionAssociation::kLeft
                ? (basis[size_t(i)] * basis[size_t(j)].Conjugate()) *
                      basis[size_t(k)]
                : basis[size_t(i)] *
                      (basis[size_t(j)].Conjugate() * basis[size_t(k)]);
        flat[static_cast<size_t>(table.Index(i, j, k))] =
            static_cast<float>(product.real());
      }
    }
  }
  table.SetFlat(flat);
  return table;
}

std::unique_ptr<MultiEmbeddingModel> MakeOctonionModel(
    int32_t num_entities, int32_t num_relations, int32_t dim, uint64_t seed,
    OctonionAssociation association) {
  std::string name = "Octonion";
  if (association != OctonionAssociation::kLeft) {
    name += StrFormat("[%s]", OctonionAssociationToString(association));
  }
  return std::make_unique<MultiEmbeddingModel>(
      std::move(name), num_entities, num_relations, dim,
      DeriveOctonionWeightTable(association), seed);
}

}  // namespace kge
