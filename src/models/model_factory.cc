#include "models/model_factory.h"

#include <algorithm>

#include <cmath>

#include "models/conve.h"
#include "models/er_mlp.h"
#include "models/learned_weight_model.h"
#include "models/ntn.h"
#include "models/octonion_model.h"
#include "models/quaternion_model.h"
#include "models/rescal.h"
#include "models/rotate.h"
#include "models/transe.h"
#include "models/transh.h"
#include "models/trilinear_models.h"
#include "util/string_utils.h"

namespace kge {
namespace {

int32_t DimFor(int32_t dim_budget, int32_t num_vectors) {
  return std::max(1, dim_budget / num_vectors);
}

}  // namespace

Result<std::unique_ptr<KgeModel>> MakeModelByName(const std::string& name,
                                                  int32_t num_entities,
                                                  int32_t num_relations,
                                                  int32_t dim_budget,
                                                  uint64_t seed) {
  if (num_entities <= 0 || num_relations <= 0 || dim_budget <= 0) {
    return Status::InvalidArgument("bad model shape");
  }
  if (name == "distmult") {
    return std::unique_ptr<KgeModel>(MakeDistMult(
        num_entities, num_relations, DimFor(dim_budget, 1), seed));
  }
  if (name == "complex") {
    return std::unique_ptr<KgeModel>(MakeComplEx(
        num_entities, num_relations, DimFor(dim_budget, 2), seed));
  }
  if (name == "cp") {
    return std::unique_ptr<KgeModel>(
        MakeCp(num_entities, num_relations, DimFor(dim_budget, 2), seed));
  }
  if (name == "cph") {
    return std::unique_ptr<KgeModel>(
        MakeCph(num_entities, num_relations, DimFor(dim_budget, 2), seed));
  }
  if (name == "simple") {
    return std::unique_ptr<KgeModel>(MakeMultiEmbedding(
        "SimplE", num_entities, num_relations, DimFor(dim_budget, 2),
        WeightTable::SimplE(), seed));
  }
  if (name == "quaternion") {
    return std::unique_ptr<KgeModel>(MakeQuaternionModel(
        num_entities, num_relations, DimFor(dim_budget, 4), seed));
  }
  if (name == "octonion") {
    return std::unique_ptr<KgeModel>(MakeOctonionModel(
        num_entities, num_relations, DimFor(dim_budget, 8), seed));
  }
  if (name == "uniform") {
    return std::unique_ptr<KgeModel>(MakeMultiEmbedding(
        "Uniform", num_entities, num_relations, DimFor(dim_budget, 2),
        WeightTable::Uniform(2, 2), seed));
  }
  if (name == "transe-l1") {
    return std::unique_ptr<KgeModel>(MakeTransE(
        num_entities, num_relations, DimFor(dim_budget, 1), 1, seed));
  }
  if (name == "transe-l2") {
    return std::unique_ptr<KgeModel>(MakeTransE(
        num_entities, num_relations, DimFor(dim_budget, 1), 2, seed));
  }
  if (name == "transh") {
    return std::unique_ptr<KgeModel>(MakeTransH(
        num_entities, num_relations, DimFor(dim_budget, 1), seed));
  }
  if (name == "rescal") {
    return std::unique_ptr<KgeModel>(MakeRescal(
        num_entities, num_relations, DimFor(dim_budget, 1), seed));
  }
  if (name == "rotate") {
    // Complex dimension = budget / 2 (re + im per complex coordinate).
    return std::unique_ptr<KgeModel>(MakeRotatE(
        num_entities, num_relations, DimFor(dim_budget, 2), seed));
  }
  if (name == "er-mlp") {
    const int32_t dim = DimFor(dim_budget, 1);
    return std::unique_ptr<KgeModel>(MakeErMlp(
        num_entities, num_relations, dim, /*hidden_dim=*/dim, seed));
  }
  if (name == "ntn") {
    return std::unique_ptr<KgeModel>(MakeNtn(num_entities, num_relations,
                                             DimFor(dim_budget, 1),
                                             /*num_slices=*/2, seed));
  }
  if (name == "conve") {
    // Factor the budget into the squarest 2D grid (ConvE reshapes the
    // embedding into grid_height x grid_width).
    ConvEOptions options;
    options.dim = DimFor(dim_budget, 1);
    int32_t gh = int32_t(std::sqrt(double(options.dim)));
    while (gh > 1 && options.dim % gh != 0) --gh;
    options.grid_height = gh;
    options.grid_width = options.dim / gh;
    if (options.grid_height < 2 || options.grid_width < 3) {
      return Status::InvalidArgument(
          StrFormat("conve needs a dim budget that factors into a grid of "
                    "height>=2 (x2 stacked) and width>=3; got %d",
                    options.dim));
    }
    return std::unique_ptr<KgeModel>(
        MakeConvE(num_entities, num_relations, options, seed));
  }
  if (StartsWith(name, "autoweight")) {
    LearnedWeightOptions options;
    std::string rest = name.substr(std::string("autoweight").size());
    if (EndsWith(rest, "-sparse")) {
      options.dirichlet = DirichletOptions{};
      rest = rest.substr(0, rest.size() - std::string("-sparse").size());
    }
    if (rest.empty() || rest == "-none") {
      options.restriction = RestrictionKind::kNone;
    } else if (rest == "-tanh") {
      options.restriction = RestrictionKind::kTanh;
    } else if (rest == "-sigmoid") {
      options.restriction = RestrictionKind::kSigmoid;
    } else if (rest == "-softmax") {
      options.restriction = RestrictionKind::kSoftmax;
    } else {
      return Status::InvalidArgument("unknown autoweight variant: " + name);
    }
    return std::unique_ptr<KgeModel>(MakeLearnedWeightModel(
        num_entities, num_relations, DimFor(dim_budget, 2), options, seed));
  }
  return Status::NotFound("unknown model: " + name +
                          " (known: " + JoinStrings(KnownModelNames(), ", ") +
                          ")");
}

std::vector<std::string> KnownModelNames() {
  return {"distmult",  "complex",   "cp",
          "cph",       "simple",    "quaternion",
          "octonion",  "uniform",   "transe-l1", "transe-l2",
          "transh",    "rotate",    "rescal",    "er-mlp",
          "ntn",       "conve",     "autoweight", "autoweight-tanh",
          "autoweight-sigmoid", "autoweight-softmax", "autoweight-sparse"};
}

}  // namespace kge
