#include "models/ntn.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "math/activations.h"
#include "math/vec_ops.h"
#include "util/check.h"
#include "util/scratch.h"

namespace kge {

Ntn::Ntn(int32_t num_entities, int32_t num_relations, int32_t dim,
         int32_t num_slices, uint64_t seed)
    : name_("NTN"),
      num_slices_(num_slices),
      entities_("NTN.entities", num_entities, 1, dim),
      relations_("NTN.relations", num_relations,
                 int64_t(num_slices) * dim * dim +
                     int64_t(num_slices) * 2 * dim + 2 * int64_t(num_slices)) {
  KGE_CHECK(num_slices > 0 && dim > 0);
  InitParameters(seed);
}

int64_t Ntn::RowSize() const { return relations_.row_dim(); }

Ntn::RelationView Ntn::ViewOf(RelationId relation) const {
  const std::span<const float> row = relations_.Row(relation);
  const size_t d = size_t(dim());
  const size_t k = size_t(num_slices_);
  RelationView view;
  size_t offset = 0;
  view.w = row.subspan(offset, k * d * d);
  offset += k * d * d;
  view.v = row.subspan(offset, k * 2 * d);
  offset += k * 2 * d;
  view.b = row.subspan(offset, k);
  offset += k;
  view.u = row.subspan(offset, k);
  return view;
}

void Ntn::InitParameters(uint64_t seed) {
  Rng rng(seed);
  entities_.InitXavier(&rng);
  // Per-component scales: W like a D→D map, V like a 2D→1 map, b zero,
  // u small.
  const size_t d = size_t(dim());
  const size_t k = size_t(num_slices_);
  const float w_bound = std::sqrt(6.0f / float(2 * d));
  const float v_bound = std::sqrt(6.0f / float(2 * d + 1));
  for (int32_t r = 0; r < num_relations(); ++r) {
    std::span<float> row = relations_.Row(r);
    size_t offset = 0;
    for (size_t i = 0; i < k * d * d; ++i)
      row[offset++] = rng.NextUniform(-w_bound, w_bound);
    for (size_t i = 0; i < k * 2 * d; ++i)
      row[offset++] = rng.NextUniform(-v_bound, v_bound);
    for (size_t i = 0; i < k; ++i) row[offset++] = 0.0f;  // b
    for (size_t i = 0; i < k; ++i)
      row[offset++] = rng.NextUniform(-0.5f, 0.5f);  // u
  }
}

void Ntn::SlicePreactivations(std::span<const float> h,
                              std::span<const float> t, RelationId relation,
                              std::span<double> z) const {
  const RelationView view = ViewOf(relation);
  const size_t d = size_t(dim());
  for (int32_t slice = 0; slice < num_slices_; ++slice) {
    const float* w = view.w.data() + size_t(slice) * d * d;
    double bilinear = 0.0;
    for (size_t a = 0; a < d; ++a) {
      double row_dot = 0.0;
      for (size_t bcol = 0; bcol < d; ++bcol) {
        row_dot += double(w[a * d + bcol]) * double(t[bcol]);
      }
      bilinear += double(h[a]) * row_dot;
    }
    const float* v = view.v.data() + size_t(slice) * 2 * d;
    double linear = 0.0;
    for (size_t a = 0; a < d; ++a) {
      linear += double(v[a]) * double(h[a]) + double(v[d + a]) * double(t[a]);
    }
    z[size_t(slice)] = bilinear + linear + double(view.b[size_t(slice)]);
  }
}

double Ntn::Score(const Triple& triple) const {
  static thread_local std::vector<double> z_buf;
  const std::span<double> z =
      ScratchSpan(z_buf, static_cast<size_t>(num_slices_));
  SlicePreactivations(entities_.Of(triple.head), entities_.Of(triple.tail),
                      triple.relation, z);
  const RelationView view = ViewOf(triple.relation);
  double score = 0.0;
  for (int32_t slice = 0; slice < num_slices_; ++slice) {
    score += double(view.u[size_t(slice)]) * std::tanh(z[size_t(slice)]);
  }
  return score;
}

void Ntn::ScoreAllTails(EntityId head, RelationId relation,
                        std::span<float> out) const {
  KGE_CHECK(out.size() == size_t(entities_.num_ids()));
  // Precompute per-slice hᵀW (k vectors of D) and hᵀV_h; per candidate t
  // each slice costs O(D).
  const auto h = entities_.Of(head);
  const RelationView view = ViewOf(relation);
  const size_t d = size_t(dim());
  const size_t k = size_t(num_slices_);
  static thread_local std::vector<double> hw_buf;
  static thread_local std::vector<double> h_linear_buf;
  const std::span<double> hw = ScratchSpan(hw_buf, k * d);
  const std::span<double> h_linear = ScratchSpan(h_linear_buf, k);
  std::fill(hw.begin(), hw.end(), 0.0);
  std::fill(h_linear.begin(), h_linear.end(), 0.0);
  for (size_t slice = 0; slice < k; ++slice) {
    const float* w = view.w.data() + slice * d * d;
    for (size_t a = 0; a < d; ++a) {
      const double ha = h[a];
      for (size_t bcol = 0; bcol < d; ++bcol) {
        hw[slice * d + bcol] += ha * double(w[a * d + bcol]);
      }
    }
    const float* v = view.v.data() + slice * 2 * d;
    for (size_t a = 0; a < d; ++a) h_linear[slice] += double(v[a]) * h[a];
  }
  for (int32_t e = 0; e < entities_.num_ids(); ++e) {
    const auto t = entities_.Of(e);
    double score = 0.0;
    for (size_t slice = 0; slice < k; ++slice) {
      const float* v = view.v.data() + slice * 2 * d;
      double z = h_linear[slice] + double(view.b[slice]);
      for (size_t a = 0; a < d; ++a) {
        z += (hw[slice * d + a] + double(v[d + a])) * double(t[a]);
      }
      score += double(view.u[slice]) * std::tanh(z);
    }
    out[size_t(e)] = static_cast<float>(score);
  }
}

void Ntn::ScoreAllHeads(EntityId tail, RelationId relation,
                        std::span<float> out) const {
  KGE_CHECK(out.size() == size_t(entities_.num_ids()));
  const auto t = entities_.Of(tail);
  const RelationView view = ViewOf(relation);
  const size_t d = size_t(dim());
  const size_t k = size_t(num_slices_);
  // Precompute per-slice W t and tᵀV_t.
  static thread_local std::vector<double> wt_buf;
  static thread_local std::vector<double> t_linear_buf;
  const std::span<double> wt = ScratchSpan(wt_buf, k * d);
  const std::span<double> t_linear = ScratchSpan(t_linear_buf, k);
  std::fill(t_linear.begin(), t_linear.end(), 0.0);
  for (size_t slice = 0; slice < k; ++slice) {
    const float* w = view.w.data() + slice * d * d;
    for (size_t a = 0; a < d; ++a) {
      double row_dot = 0.0;
      for (size_t bcol = 0; bcol < d; ++bcol) {
        row_dot += double(w[a * d + bcol]) * double(t[bcol]);
      }
      wt[slice * d + a] = row_dot;
    }
    const float* v = view.v.data() + slice * 2 * d;
    for (size_t a = 0; a < d; ++a) t_linear[slice] += double(v[d + a]) * t[a];
  }
  for (int32_t e = 0; e < entities_.num_ids(); ++e) {
    const auto h = entities_.Of(e);
    double score = 0.0;
    for (size_t slice = 0; slice < k; ++slice) {
      const float* v = view.v.data() + slice * 2 * d;
      double z = t_linear[slice] + double(view.b[slice]);
      for (size_t a = 0; a < d; ++a) {
        z += (wt[slice * d + a] + double(v[a])) * double(h[a]);
      }
      score += double(view.u[slice]) * std::tanh(z);
    }
    out[size_t(e)] = static_cast<float>(score);
  }
}

std::vector<ParameterBlock*> Ntn::Blocks() {
  return {entities_.block(), &relations_};
}

void Ntn::AccumulateGradients(const Triple& triple, float dscore,
                              GradientBuffer* grads) {
  const auto h = entities_.Of(triple.head);
  const auto t = entities_.Of(triple.tail);
  const RelationView view = ViewOf(triple.relation);
  const size_t d = size_t(dim());
  const size_t k = size_t(num_slices_);

  static thread_local std::vector<double> z_buf;
  const std::span<double> z = ScratchSpan(z_buf, k);
  SlicePreactivations(h, t, triple.relation, z);

  std::span<float> gh = grads->GradFor(kEntityBlock, triple.head);
  std::span<float> gt = grads->GradFor(kEntityBlock, triple.tail);
  std::span<float> gr = grads->GradFor(kRelationBlock, triple.relation);

  // Relation-row gradient offsets matching ViewOf's layout.
  const size_t w_offset = 0;
  const size_t v_offset = k * d * d;
  const size_t b_offset = v_offset + k * 2 * d;
  const size_t u_offset = b_offset + k;

  for (size_t slice = 0; slice < k; ++slice) {
    const double tanh_z = std::tanh(z[slice]);
    // dS/du = tanh(z).
    gr[u_offset + slice] += dscore * static_cast<float>(tanh_z);
    // dz = u * (1 - tanh²(z)).
    const double dz = double(dscore) * double(view.u[slice]) *
                      TanhDerivFromOutput(tanh_z);
    if (dz == 0.0) continue;
    const float dzf = static_cast<float>(dz);
    // b.
    gr[b_offset + slice] += dzf;
    // V and entity linear parts.
    const float* v = view.v.data() + slice * 2 * d;
    float* gv = gr.data() + v_offset + slice * 2 * d;
    for (size_t a = 0; a < d; ++a) {
      gv[a] += dzf * h[a];
      gv[d + a] += dzf * t[a];
      gh[a] += dzf * v[a];
      gt[a] += dzf * v[d + a];
    }
    // W slice and bilinear entity parts.
    const float* w = view.w.data() + slice * d * d;
    float* gw = gr.data() + w_offset + slice * d * d;
    for (size_t a = 0; a < d; ++a) {
      const float ha = h[a];
      double wt_a = 0.0;
      for (size_t bcol = 0; bcol < d; ++bcol) {
        gw[a * d + bcol] += dzf * ha * t[bcol];
        gt[bcol] += dzf * ha * w[a * d + bcol];
        wt_a += double(w[a * d + bcol]) * double(t[bcol]);
      }
      gh[a] += dzf * static_cast<float>(wt_a);
    }
  }
}

void Ntn::NormalizeEntities(std::span<const EntityId> entities) {
  for (EntityId e : entities) entities_.NormalizeVectorsOf(e);
}

std::unique_ptr<Ntn> MakeNtn(int32_t num_entities, int32_t num_relations,
                             int32_t dim, int32_t num_slices,
                             uint64_t seed) {
  return std::make_unique<Ntn>(num_entities, num_relations, dim, num_slices,
                               seed);
}

}  // namespace kge
