#include "models/trilinear_models.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "math/simd.h"
#include "math/vec_ops.h"
#include "util/check.h"
#include "util/scratch.h"

namespace kge {

MultiEmbeddingModel::MultiEmbeddingModel(std::string name,
                                         int32_t num_entities,
                                         int32_t num_relations, int32_t dim,
                                         WeightTable weights, uint64_t seed)
    : name_(std::move(name)),
      dim_(dim),
      weights_(std::move(weights)),
      entities_(name_ + ".entities", num_entities, weights_.ne(), dim),
      relations_(name_ + ".relations", num_relations, weights_.nr(), dim),
      entity_replica_(entities_.block()) {
  KGE_CHECK(dim > 0);
  InitParameters(seed);
}

void MultiEmbeddingModel::InitParameters(uint64_t seed) {
  Rng rng(seed);
  entities_.InitXavier(&rng);
  relations_.InitXavier(&rng);
}

double MultiEmbeddingModel::Score(const Triple& triple) const {
  return ScoreTriple(weights_, dim_, entities_.Of(triple.head),
                     entities_.Of(triple.tail),
                     relations_.Of(triple.relation));
}

void MultiEmbeddingModel::ScoreAllTails(EntityId head, RelationId relation,
                                        std::span<float> out) const {
  KGE_CHECK(out.size() == size_t(entities_.num_ids()));
  // Fold once into per-thread scratch, then one tiled matrix-vector
  // product over the whole entity table (rows are contiguous in the
  // parameter block). Zero heap allocations at steady state.
  static thread_local std::vector<float> fold_buf;
  const std::span<float> fold =
      ScratchSpan(fold_buf, size_t(weights_.ne()) * size_t(dim_));
  FoldForTail(weights_, dim_, entities_.Of(head), relations_.Of(relation),
              fold);
  DotBatch(fold, entities_.block().Flat(), out);
}

void MultiEmbeddingModel::ScoreAllHeads(EntityId tail, RelationId relation,
                                        std::span<float> out) const {
  KGE_CHECK(out.size() == size_t(entities_.num_ids()));
  static thread_local std::vector<float> fold_buf;
  const std::span<float> fold =
      ScratchSpan(fold_buf, size_t(weights_.ne()) * size_t(dim_));
  FoldForHead(weights_, dim_, entities_.Of(tail), relations_.Of(relation),
              fold);
  DotBatch(fold, entities_.block().Flat(), out);
}

void MultiEmbeddingModel::ScoreTailBatch(EntityId head, RelationId relation,
                                         std::span<const EntityId> tails,
                                         std::span<float> out) const {
  KGE_CHECK(out.size() == tails.size());
  const size_t width = size_t(weights_.ne()) * size_t(dim_);
  static thread_local std::vector<float> fold_buf;
  const std::span<float> fold = ScratchSpan(fold_buf, width);
  FoldForTail(weights_, dim_, entities_.Of(head), relations_.Of(relation),
              fold);
  // Candidate rows are scored in place in the entity table via the
  // id-indirected kernel — no per-call gather copy.
  DotBatchIndexed(fold, entities_.block().Flat(), tails, out);
}

void MultiEmbeddingModel::ScoreHeadBatch(EntityId tail, RelationId relation,
                                         std::span<const EntityId> heads,
                                         std::span<float> out) const {
  KGE_CHECK(out.size() == heads.size());
  const size_t width = size_t(weights_.ne()) * size_t(dim_);
  static thread_local std::vector<float> fold_buf;
  const std::span<float> fold = ScratchSpan(fold_buf, width);
  FoldForHead(weights_, dim_, entities_.Of(tail), relations_.Of(relation),
              fold);
  DotBatchIndexed(fold, entities_.block().Flat(), heads, out);
}

void MultiEmbeddingModel::ScoreAllTailsBatch(std::span<const EntityId> heads,
                                             RelationId relation,
                                             std::span<float> out) const {
  ScoreAllTailsBatch(heads, relation, out, ScorePrecision::kDouble);
}

void MultiEmbeddingModel::ScoreAllHeadsBatch(std::span<const EntityId> tails,
                                             RelationId relation,
                                             std::span<float> out) const {
  ScoreAllHeadsBatch(tails, relation, out, ScorePrecision::kDouble);
}

namespace {

// The per-tier multi-query product behind both batched scorers: one
// kernel dispatch against the entity table (double and float32 tiers
// stream the same master rows; int8 streams the quantized replica,
// which must be fresh — PrepareForScoring runs before the fanout).
KGE_HOT_NOALLOC
void DotBatchMultiAt(ScorePrecision precision, std::span<const float> folds,
                     size_t num_queries, const ParameterBlock& entity_block,
                     const ScoringReplica& replica, std::span<float> out) {
  switch (precision) {
    case ScorePrecision::kDouble:
      DotBatchMulti(folds, num_queries, entity_block.Flat(), out);
      return;
    case ScorePrecision::kFloat32:
      DotBatchMultiF32(folds, num_queries, entity_block.Flat(), out);
      return;
    case ScorePrecision::kInt8:
      KGE_DCHECK(replica.IsFresh(ScorePrecision::kInt8));
      DotBatchMultiI8(folds, num_queries, replica.Int8Rows(),
                      replica.Int8Scales(), out);
      return;
  }
  KGE_CHECK(false);
}

}  // namespace

void MultiEmbeddingModel::ScoreAllTailsBatch(std::span<const EntityId> heads,
                                             RelationId relation,
                                             std::span<float> out,
                                             ScorePrecision precision) const {
  const size_t num = size_t(entities_.num_ids());
  KGE_CHECK(out.size() == heads.size() * num);
  if (heads.empty()) return;
  const size_t width = size_t(weights_.ne()) * size_t(dim_);
  // Fold every (head, relation) context into one row-major B × width
  // scratch matrix, then a single multi-query product over the entity
  // table. Zero heap allocations at steady state.
  static thread_local std::vector<float> folds_buf;
  const std::span<float> folds = ScratchSpan(folds_buf, heads.size() * width);
  const std::span<const float> rel = relations_.Of(relation);
  for (size_t q = 0; q < heads.size(); ++q) {
    FoldForTail(weights_, dim_, entities_.Of(heads[q]), rel,
                folds.subspan(q * width, width));
  }
  DotBatchMultiAt(precision, folds, heads.size(), entities_.block(),
                  entity_replica_, out);
}

void MultiEmbeddingModel::ScoreAllHeadsBatch(std::span<const EntityId> tails,
                                             RelationId relation,
                                             std::span<float> out,
                                             ScorePrecision precision) const {
  const size_t num = size_t(entities_.num_ids());
  KGE_CHECK(out.size() == tails.size() * num);
  if (tails.empty()) return;
  const size_t width = size_t(weights_.ne()) * size_t(dim_);
  static thread_local std::vector<float> folds_buf;
  const std::span<float> folds = ScratchSpan(folds_buf, tails.size() * width);
  const std::span<const float> rel = relations_.Of(relation);
  for (size_t q = 0; q < tails.size(); ++q) {
    FoldForHead(weights_, dim_, entities_.Of(tails[q]), rel,
                folds.subspan(q * width, width));
  }
  DotBatchMultiAt(precision, folds, tails.size(), entities_.block(),
                  entity_replica_, out);
}

namespace {

// Scores entity rows [row0, row0 + len) against one fold at `precision`
// — the range-restricted twin of DotBatchMultiAt. Each output value is
// bit-identical to the corresponding cell of the full-table batched
// product (the per-cell contract of math/simd.h), so tiling, sharding,
// and pruning are pure scheduling.
KGE_HOT_NOALLOC
void ScoreRowsAt(ScorePrecision precision, const float* fold, size_t width,
                 const ParameterBlock& entity_block,
                 const ScoringReplica& replica, size_t row0, size_t len,
                 float* out) {
  switch (precision) {
    case ScorePrecision::kDouble:
      simd::DotBatch(fold, entity_block.Flat().data() + row0 * width, len,
                     width, out);
      return;
    case ScorePrecision::kFloat32:
      simd::DotBatchMultiF32(fold, 1, entity_block.Flat().data() + row0 * width,
                             len, width, out);
      return;
    case ScorePrecision::kInt8:
      KGE_DCHECK(replica.IsFresh(ScorePrecision::kInt8));
      simd::DotBatchMultiI8(fold, 1, replica.Int8Rows().data() + row0 * width,
                            replica.Int8Scales().data() + row0, len, width,
                            out);
      return;
  }
  KGE_CHECK(false);
}

}  // namespace

void MultiEmbeddingModel::PrunedCountScan(
    std::span<const float> fold, float threshold, EntityId begin,
    EntityId end, std::span<const EntityId> excluded, EntityId also_skip,
    ScorePrecision precision, bool prune, uint64_t* better, uint64_t* equal,
    RankScanStats* stats) const {
  if (begin >= end) return;
  const size_t width = fold.size();
  const size_t rows_per_tile = simd::PrunedTileRows(width);
  static thread_local std::vector<float> tile_buf;
  const std::span<float> tile_scores = ScratchSpan(tile_buf, rows_per_tile);
  std::span<const float> bounds;
  double query_norm = 0.0;
  if (prune) {
    KGE_DCHECK(entity_replica_.BoundsFresh(precision));
    bounds = entity_replica_.TileBounds(precision);
    query_norm = std::sqrt(simd::SquaredNorm(fold.data(), width)) *
                 simd::kPruneBoundSlack;
  }
  const bool skip_in_excluded =
      std::binary_search(excluded.begin(), excluded.end(), also_skip);
  size_t cursor = 0;
  while (cursor < excluded.size() && excluded[cursor] < begin) ++cursor;
  uint64_t g_total = 0;
  uint64_t e_total = 0;
  for (size_t row0 = size_t(begin); row0 < size_t(end);) {
    const size_t tile = row0 / rows_per_tile;
    const size_t tile_end =
        std::min(size_t(end), (tile + 1) * rows_per_tile);
    stats->tiles_total += 1;
    // Strict <: a tile whose bound equals the threshold can still hold
    // equal-scoring candidates, which the tie-aware rank counts.
    if (prune && query_norm * double(bounds[tile]) < double(threshold)) {
      stats->tiles_skipped += 1;
      // A skipped tile provably holds no score >= threshold, so its
      // excluded ids would have contributed nothing either.
      while (cursor < excluded.size() && size_t(excluded[cursor]) < tile_end) {
        ++cursor;
      }
      row0 = tile_end;
      continue;
    }
    const size_t len = tile_end - row0;
    ScoreRowsAt(precision, fold.data(), width, entities_.block(),
                entity_replica_, row0, len, tile_scores.data());
    size_t tile_greater = 0;
    size_t tile_equal = 0;
    simd::CountGreaterEqual(tile_scores.data(), len, threshold, &tile_greater,
                            &tile_equal);
    // Back out the candidates the rank must not count: filtered ids and
    // the true entity (subtracted once even when it is also filtered).
    for (; cursor < excluded.size() && size_t(excluded[cursor]) < tile_end;
         ++cursor) {
      const float s = tile_scores[size_t(excluded[cursor]) - row0];
      if (s > threshold) {
        --tile_greater;
      } else if (s == threshold) {
        --tile_equal;
      }
    }
    if (!skip_in_excluded && also_skip >= EntityId(row0) &&
        also_skip < EntityId(tile_end)) {
      const float s = tile_scores[size_t(also_skip) - row0];
      if (s > threshold) {
        --tile_greater;
      } else if (s == threshold) {
        --tile_equal;
      }
    }
    g_total += tile_greater;
    e_total += tile_equal;
    row0 = tile_end;
  }
  *better += g_total;
  *equal += e_total;
}

void MultiEmbeddingModel::PrunedTopKScan(
    std::span<const float> fold, EntityId begin, EntityId end,
    std::span<const EntityId> excluded, ScorePrecision precision, bool prune,
    TopKHeap<float, EntityId>* heap, RankScanStats* stats) const {
  if (begin >= end) return;
  const size_t width = fold.size();
  const size_t rows_per_tile = simd::PrunedTileRows(width);
  static thread_local std::vector<float> tile_buf;
  const std::span<float> tile_scores = ScratchSpan(tile_buf, rows_per_tile);
  std::span<const float> bounds;
  double query_norm = 0.0;
  if (prune) {
    KGE_DCHECK(entity_replica_.BoundsFresh(precision));
    bounds = entity_replica_.TileBounds(precision);
    query_norm = std::sqrt(simd::SquaredNorm(fold.data(), width)) *
                 simd::kPruneBoundSlack;
  }
  size_t cursor = 0;
  while (cursor < excluded.size() && excluded[cursor] < begin) ++cursor;
  for (size_t row0 = size_t(begin); row0 < size_t(end);) {
    const size_t tile = row0 / rows_per_tile;
    const size_t tile_end =
        std::min(size_t(end), (tile + 1) * rows_per_tile);
    stats->tiles_total += 1;
    // Skip only on strict <, against the heap minimum once full or the
    // shared prune floor a sharded caller installed: an equal-score
    // candidate can still enter via the smaller-id tie-break, so a
    // bound equal to the threshold must be scanned.
    if (prune && heap->CanSkipBound(query_norm * double(bounds[tile]))) {
      stats->tiles_skipped += 1;
      while (cursor < excluded.size() && size_t(excluded[cursor]) < tile_end) {
        ++cursor;
      }
      row0 = tile_end;
      continue;
    }
    const size_t len = tile_end - row0;
    ScoreRowsAt(precision, fold.data(), width, entities_.block(),
                entity_replica_, row0, len, tile_scores.data());
    for (size_t i = 0; i < len; ++i) {
      const EntityId id = EntityId(row0 + i);
      if (cursor < excluded.size() && excluded[cursor] == id) {
        ++cursor;
        continue;
      }
      heap->PushCandidate(id, tile_scores[i]);
    }
    row0 = tile_end;
  }
}

void MultiEmbeddingModel::CountTailsAbove(
    EntityId head, RelationId relation, float threshold, EntityId begin,
    EntityId end, std::span<const EntityId> excluded, EntityId also_skip,
    ScorePrecision precision, bool prune, uint64_t* better, uint64_t* equal,
    RankScanStats* stats) const {
  const size_t width = size_t(weights_.ne()) * size_t(dim_);
  static thread_local std::vector<float> fold_buf;
  const std::span<float> fold = ScratchSpan(fold_buf, width);
  FoldForTail(weights_, dim_, entities_.Of(head), relations_.Of(relation),
              fold);
  PrunedCountScan(fold, threshold, begin, end, excluded, also_skip, precision,
                  prune, better, equal, stats);
}

void MultiEmbeddingModel::CountHeadsAbove(
    EntityId tail, RelationId relation, float threshold, EntityId begin,
    EntityId end, std::span<const EntityId> excluded, EntityId also_skip,
    ScorePrecision precision, bool prune, uint64_t* better, uint64_t* equal,
    RankScanStats* stats) const {
  const size_t width = size_t(weights_.ne()) * size_t(dim_);
  static thread_local std::vector<float> fold_buf;
  const std::span<float> fold = ScratchSpan(fold_buf, width);
  FoldForHead(weights_, dim_, entities_.Of(tail), relations_.Of(relation),
              fold);
  PrunedCountScan(fold, threshold, begin, end, excluded, also_skip, precision,
                  prune, better, equal, stats);
}

float MultiEmbeddingModel::ScoreOneTail(EntityId head, EntityId tail,
                                        RelationId relation,
                                        ScorePrecision precision) const {
  const size_t width = size_t(weights_.ne()) * size_t(dim_);
  static thread_local std::vector<float> fold_buf;
  const std::span<float> fold = ScratchSpan(fold_buf, width);
  FoldForTail(weights_, dim_, entities_.Of(head), relations_.Of(relation),
              fold);
  float out = 0.0f;
  ScoreRowsAt(precision, fold.data(), width, entities_.block(),
              entity_replica_, size_t(tail), 1, &out);
  return out;
}

float MultiEmbeddingModel::ScoreOneHead(EntityId head, EntityId tail,
                                        RelationId relation,
                                        ScorePrecision precision) const {
  const size_t width = size_t(weights_.ne()) * size_t(dim_);
  static thread_local std::vector<float> fold_buf;
  const std::span<float> fold = ScratchSpan(fold_buf, width);
  FoldForHead(weights_, dim_, entities_.Of(tail), relations_.Of(relation),
              fold);
  float out = 0.0f;
  ScoreRowsAt(precision, fold.data(), width, entities_.block(),
              entity_replica_, size_t(head), 1, &out);
  return out;
}

void MultiEmbeddingModel::TopKTailsInRange(
    EntityId head, RelationId relation, EntityId begin, EntityId end,
    std::span<const EntityId> excluded, ScorePrecision precision, bool prune,
    TopKHeap<float, EntityId>* heap, RankScanStats* stats) const {
  const size_t width = size_t(weights_.ne()) * size_t(dim_);
  static thread_local std::vector<float> fold_buf;
  const std::span<float> fold = ScratchSpan(fold_buf, width);
  FoldForTail(weights_, dim_, entities_.Of(head), relations_.Of(relation),
              fold);
  PrunedTopKScan(fold, begin, end, excluded, precision, prune, heap, stats);
}

void MultiEmbeddingModel::TopKHeadsInRange(
    EntityId tail, RelationId relation, EntityId begin, EntityId end,
    std::span<const EntityId> excluded, ScorePrecision precision, bool prune,
    TopKHeap<float, EntityId>* heap, RankScanStats* stats) const {
  const size_t width = size_t(weights_.ne()) * size_t(dim_);
  static thread_local std::vector<float> fold_buf;
  const std::span<float> fold = ScratchSpan(fold_buf, width);
  FoldForHead(weights_, dim_, entities_.Of(tail), relations_.Of(relation),
              fold);
  PrunedTopKScan(fold, begin, end, excluded, precision, prune, heap, stats);
}

std::vector<ParameterBlock*> MultiEmbeddingModel::Blocks() {
  return {entities_.block(), relations_.block()};
}

void MultiEmbeddingModel::AccumulateGradients(const Triple& triple,
                                              float dscore,
                                              GradientBuffer* grads) {
  std::span<float> gh = grads->GradFor(kEntityBlock, triple.head);
  std::span<float> gt = grads->GradFor(kEntityBlock, triple.tail);
  std::span<float> gr = grads->GradFor(kRelationBlock, triple.relation);
  AccumulateTripleGradients(weights_, dim_, entities_.Of(triple.head),
                            entities_.Of(triple.tail),
                            relations_.Of(triple.relation), dscore, gh, gt,
                            gr);
}

void MultiEmbeddingModel::NormalizeEntities(
    std::span<const EntityId> entities) {
  for (EntityId e : entities) entities_.NormalizeVectorsOf(e);
}

std::unique_ptr<MultiEmbeddingModel> MakeDistMult(int32_t num_entities,
                                                  int32_t num_relations,
                                                  int32_t dim, uint64_t seed) {
  return std::make_unique<MultiEmbeddingModel>(
      "DistMult", num_entities, num_relations, dim, WeightTable::DistMult(),
      seed);
}

std::unique_ptr<MultiEmbeddingModel> MakeComplEx(int32_t num_entities,
                                                 int32_t num_relations,
                                                 int32_t dim, uint64_t seed) {
  return std::make_unique<MultiEmbeddingModel>(
      "ComplEx", num_entities, num_relations, dim, WeightTable::ComplEx(),
      seed);
}

std::unique_ptr<MultiEmbeddingModel> MakeCp(int32_t num_entities,
                                            int32_t num_relations,
                                            int32_t dim, uint64_t seed) {
  return std::make_unique<MultiEmbeddingModel>("CP", num_entities,
                                               num_relations, dim,
                                               WeightTable::Cp(), seed);
}

std::unique_ptr<MultiEmbeddingModel> MakeCph(int32_t num_entities,
                                             int32_t num_relations,
                                             int32_t dim, uint64_t seed) {
  return std::make_unique<MultiEmbeddingModel>("CPh", num_entities,
                                               num_relations, dim,
                                               WeightTable::Cph(), seed);
}

std::unique_ptr<MultiEmbeddingModel> MakeMultiEmbedding(
    std::string name, int32_t num_entities, int32_t num_relations,
    int32_t dim, WeightTable weights, uint64_t seed) {
  return std::make_unique<MultiEmbeddingModel>(std::move(name), num_entities,
                                               num_relations, dim,
                                               std::move(weights), seed);
}

}  // namespace kge
