#include "models/trilinear_models.h"

#include <vector>

#include "math/vec_ops.h"
#include "util/check.h"
#include "util/scratch.h"

namespace kge {

MultiEmbeddingModel::MultiEmbeddingModel(std::string name,
                                         int32_t num_entities,
                                         int32_t num_relations, int32_t dim,
                                         WeightTable weights, uint64_t seed)
    : name_(std::move(name)),
      dim_(dim),
      weights_(std::move(weights)),
      entities_(name_ + ".entities", num_entities, weights_.ne(), dim),
      relations_(name_ + ".relations", num_relations, weights_.nr(), dim),
      entity_replica_(entities_.block()) {
  KGE_CHECK(dim > 0);
  InitParameters(seed);
}

void MultiEmbeddingModel::InitParameters(uint64_t seed) {
  Rng rng(seed);
  entities_.InitXavier(&rng);
  relations_.InitXavier(&rng);
}

double MultiEmbeddingModel::Score(const Triple& triple) const {
  return ScoreTriple(weights_, dim_, entities_.Of(triple.head),
                     entities_.Of(triple.tail),
                     relations_.Of(triple.relation));
}

void MultiEmbeddingModel::ScoreAllTails(EntityId head, RelationId relation,
                                        std::span<float> out) const {
  KGE_CHECK(out.size() == size_t(entities_.num_ids()));
  // Fold once into per-thread scratch, then one tiled matrix-vector
  // product over the whole entity table (rows are contiguous in the
  // parameter block). Zero heap allocations at steady state.
  static thread_local std::vector<float> fold_buf;
  const std::span<float> fold =
      ScratchSpan(fold_buf, size_t(weights_.ne()) * size_t(dim_));
  FoldForTail(weights_, dim_, entities_.Of(head), relations_.Of(relation),
              fold);
  DotBatch(fold, entities_.block().Flat(), out);
}

void MultiEmbeddingModel::ScoreAllHeads(EntityId tail, RelationId relation,
                                        std::span<float> out) const {
  KGE_CHECK(out.size() == size_t(entities_.num_ids()));
  static thread_local std::vector<float> fold_buf;
  const std::span<float> fold =
      ScratchSpan(fold_buf, size_t(weights_.ne()) * size_t(dim_));
  FoldForHead(weights_, dim_, entities_.Of(tail), relations_.Of(relation),
              fold);
  DotBatch(fold, entities_.block().Flat(), out);
}

void MultiEmbeddingModel::ScoreTailBatch(EntityId head, RelationId relation,
                                         std::span<const EntityId> tails,
                                         std::span<float> out) const {
  KGE_CHECK(out.size() == tails.size());
  const size_t width = size_t(weights_.ne()) * size_t(dim_);
  static thread_local std::vector<float> fold_buf;
  const std::span<float> fold = ScratchSpan(fold_buf, width);
  FoldForTail(weights_, dim_, entities_.Of(head), relations_.Of(relation),
              fold);
  // Candidate rows are scored in place in the entity table via the
  // id-indirected kernel — no per-call gather copy.
  DotBatchIndexed(fold, entities_.block().Flat(), tails, out);
}

void MultiEmbeddingModel::ScoreHeadBatch(EntityId tail, RelationId relation,
                                         std::span<const EntityId> heads,
                                         std::span<float> out) const {
  KGE_CHECK(out.size() == heads.size());
  const size_t width = size_t(weights_.ne()) * size_t(dim_);
  static thread_local std::vector<float> fold_buf;
  const std::span<float> fold = ScratchSpan(fold_buf, width);
  FoldForHead(weights_, dim_, entities_.Of(tail), relations_.Of(relation),
              fold);
  DotBatchIndexed(fold, entities_.block().Flat(), heads, out);
}

void MultiEmbeddingModel::ScoreAllTailsBatch(std::span<const EntityId> heads,
                                             RelationId relation,
                                             std::span<float> out) const {
  ScoreAllTailsBatch(heads, relation, out, ScorePrecision::kDouble);
}

void MultiEmbeddingModel::ScoreAllHeadsBatch(std::span<const EntityId> tails,
                                             RelationId relation,
                                             std::span<float> out) const {
  ScoreAllHeadsBatch(tails, relation, out, ScorePrecision::kDouble);
}

namespace {

// The per-tier multi-query product behind both batched scorers: one
// kernel dispatch against the entity table (double and float32 tiers
// stream the same master rows; int8 streams the quantized replica,
// which must be fresh — PrepareForScoring runs before the fanout).
KGE_HOT_NOALLOC
void DotBatchMultiAt(ScorePrecision precision, std::span<const float> folds,
                     size_t num_queries, const ParameterBlock& entity_block,
                     const ScoringReplica& replica, std::span<float> out) {
  switch (precision) {
    case ScorePrecision::kDouble:
      DotBatchMulti(folds, num_queries, entity_block.Flat(), out);
      return;
    case ScorePrecision::kFloat32:
      DotBatchMultiF32(folds, num_queries, entity_block.Flat(), out);
      return;
    case ScorePrecision::kInt8:
      KGE_DCHECK(replica.IsFresh(ScorePrecision::kInt8));
      DotBatchMultiI8(folds, num_queries, replica.Int8Rows(),
                      replica.Int8Scales(), out);
      return;
  }
  KGE_CHECK(false);
}

}  // namespace

void MultiEmbeddingModel::ScoreAllTailsBatch(std::span<const EntityId> heads,
                                             RelationId relation,
                                             std::span<float> out,
                                             ScorePrecision precision) const {
  const size_t num = size_t(entities_.num_ids());
  KGE_CHECK(out.size() == heads.size() * num);
  if (heads.empty()) return;
  const size_t width = size_t(weights_.ne()) * size_t(dim_);
  // Fold every (head, relation) context into one row-major B × width
  // scratch matrix, then a single multi-query product over the entity
  // table. Zero heap allocations at steady state.
  static thread_local std::vector<float> folds_buf;
  const std::span<float> folds = ScratchSpan(folds_buf, heads.size() * width);
  const std::span<const float> rel = relations_.Of(relation);
  for (size_t q = 0; q < heads.size(); ++q) {
    FoldForTail(weights_, dim_, entities_.Of(heads[q]), rel,
                folds.subspan(q * width, width));
  }
  DotBatchMultiAt(precision, folds, heads.size(), entities_.block(),
                  entity_replica_, out);
}

void MultiEmbeddingModel::ScoreAllHeadsBatch(std::span<const EntityId> tails,
                                             RelationId relation,
                                             std::span<float> out,
                                             ScorePrecision precision) const {
  const size_t num = size_t(entities_.num_ids());
  KGE_CHECK(out.size() == tails.size() * num);
  if (tails.empty()) return;
  const size_t width = size_t(weights_.ne()) * size_t(dim_);
  static thread_local std::vector<float> folds_buf;
  const std::span<float> folds = ScratchSpan(folds_buf, tails.size() * width);
  const std::span<const float> rel = relations_.Of(relation);
  for (size_t q = 0; q < tails.size(); ++q) {
    FoldForHead(weights_, dim_, entities_.Of(tails[q]), rel,
                folds.subspan(q * width, width));
  }
  DotBatchMultiAt(precision, folds, tails.size(), entities_.block(),
                  entity_replica_, out);
}

std::vector<ParameterBlock*> MultiEmbeddingModel::Blocks() {
  return {entities_.block(), relations_.block()};
}

void MultiEmbeddingModel::AccumulateGradients(const Triple& triple,
                                              float dscore,
                                              GradientBuffer* grads) {
  std::span<float> gh = grads->GradFor(kEntityBlock, triple.head);
  std::span<float> gt = grads->GradFor(kEntityBlock, triple.tail);
  std::span<float> gr = grads->GradFor(kRelationBlock, triple.relation);
  AccumulateTripleGradients(weights_, dim_, entities_.Of(triple.head),
                            entities_.Of(triple.tail),
                            relations_.Of(triple.relation), dscore, gh, gt,
                            gr);
}

void MultiEmbeddingModel::NormalizeEntities(
    std::span<const EntityId> entities) {
  for (EntityId e : entities) entities_.NormalizeVectorsOf(e);
}

std::unique_ptr<MultiEmbeddingModel> MakeDistMult(int32_t num_entities,
                                                  int32_t num_relations,
                                                  int32_t dim, uint64_t seed) {
  return std::make_unique<MultiEmbeddingModel>(
      "DistMult", num_entities, num_relations, dim, WeightTable::DistMult(),
      seed);
}

std::unique_ptr<MultiEmbeddingModel> MakeComplEx(int32_t num_entities,
                                                 int32_t num_relations,
                                                 int32_t dim, uint64_t seed) {
  return std::make_unique<MultiEmbeddingModel>(
      "ComplEx", num_entities, num_relations, dim, WeightTable::ComplEx(),
      seed);
}

std::unique_ptr<MultiEmbeddingModel> MakeCp(int32_t num_entities,
                                            int32_t num_relations,
                                            int32_t dim, uint64_t seed) {
  return std::make_unique<MultiEmbeddingModel>("CP", num_entities,
                                               num_relations, dim,
                                               WeightTable::Cp(), seed);
}

std::unique_ptr<MultiEmbeddingModel> MakeCph(int32_t num_entities,
                                             int32_t num_relations,
                                             int32_t dim, uint64_t seed) {
  return std::make_unique<MultiEmbeddingModel>("CPh", num_entities,
                                               num_relations, dim,
                                               WeightTable::Cph(), seed);
}

std::unique_ptr<MultiEmbeddingModel> MakeMultiEmbedding(
    std::string name, int32_t num_entities, int32_t num_relations,
    int32_t dim, WeightTable weights, uint64_t seed) {
  return std::make_unique<MultiEmbeddingModel>(std::move(name), num_entities,
                                               num_relations, dim,
                                               std::move(weights), seed);
}

}  // namespace kge
