// TransH (Wang et al. 2014), cited by the paper (§2.2.1) as a
// representative extension of TransE: entities are translated on a
// relation-specific hyperplane, which lets a single entity embedding play
// different roles per relation:
//
//   h⊥ = h − (w_rᵀ h) w_r ,  t⊥ = t − (w_rᵀ t) w_r
//   S(h, t, r) = −|| h⊥ + d_r − t⊥ ||²
//
// with w_r kept at unit norm. Relative to TransE this fixes the
// 1-N/N-1 collapse (all tails of a 1-N relation being forced to the same
// point) while remaining a translation-based model.
#ifndef KGE_MODELS_TRANSH_H_
#define KGE_MODELS_TRANSH_H_

#include <memory>
#include <string>

#include "core/embedding_store.h"
#include "models/kge_model.h"
#include "util/hotpath.h"

namespace kge {

class TransH : public KgeModel {
 public:
  TransH(int32_t num_entities, int32_t num_relations, int32_t dim,
         uint64_t seed);

  const std::string& name() const override { return name_; }
  int32_t num_entities() const override { return entities_.num_ids(); }
  int32_t num_relations() const override { return translations_.num_ids(); }
  int32_t dim() const { return entities_.dim(); }

  double Score(const Triple& triple) const override;
  KGE_HOT_NOALLOC
  void ScoreAllTails(EntityId head, RelationId relation,
                     std::span<float> out) const override;
  KGE_HOT_NOALLOC
  void ScoreAllHeads(EntityId tail, RelationId relation,
                     std::span<float> out) const override;

  std::vector<ParameterBlock*> Blocks() override;
  KGE_HOT_NOALLOC
  void AccumulateGradients(const Triple& triple, float dscore,
                           GradientBuffer* grads) override;
  // Normalizes the given entity embeddings AND re-normalizes all
  // hyperplane normals w_r to unit length (the TransH constraint); called
  // by the trainer once per iteration.
  void NormalizeEntities(std::span<const EntityId> entities) override;
  void InitParameters(uint64_t seed) override;

  static constexpr size_t kEntityBlock = 0;
  static constexpr size_t kTranslationBlock = 1;
  static constexpr size_t kNormalBlock = 2;

 private:
  std::string name_;
  EmbeddingStore entities_;
  EmbeddingStore translations_;  // d_r
  EmbeddingStore normals_;       // w_r, unit norm

  // Writes h⊥ + d − t⊥ into diff.
  void ProjectedDifference(std::span<const float> h, std::span<const float> t,
                           RelationId relation, std::span<float> diff) const;
};

std::unique_ptr<TransH> MakeTransH(int32_t num_entities,
                                   int32_t num_relations, int32_t dim,
                                   uint64_t seed);

}  // namespace kge

#endif  // KGE_MODELS_TRANSH_H_
