#include "models/kge_model.h"

#include "util/check.h"
#include "util/scratch.h"

namespace kge {
namespace {

// Full-vocabulary scratch for the exhaustive range-scan fallbacks: one
// per-thread buffer reused across calls (contents overwritten each use).
KGE_HOT_NOALLOC
std::span<float> FullScanScratch(size_t num_entities) {
  static thread_local std::vector<float> buf;
  return ScratchSpan(buf, num_entities);
}

// Walks scores[begin, end) counting strictly-greater / equal candidates
// against `threshold`, skipping `excluded` ids (sorted ascending) and
// `also_skip`. Shared by the base-class fallbacks; `scores` is indexed
// by absolute entity id.
KGE_HOT_NOALLOC
void CountRangeAgainstThreshold(std::span<const float> scores,
                                float threshold, EntityId begin,
                                EntityId end,
                                std::span<const EntityId> excluded,
                                EntityId also_skip, uint64_t* better,
                                uint64_t* equal) {
  size_t cursor = 0;
  while (cursor < excluded.size() && excluded[cursor] < begin) ++cursor;
  uint64_t g = 0;
  uint64_t eq = 0;
  for (EntityId e = begin; e < end; ++e) {
    if (cursor < excluded.size() && excluded[cursor] == e) {
      ++cursor;
      continue;
    }
    if (e == also_skip) continue;
    const float s = scores[size_t(e)];
    if (s > threshold) {
      ++g;
    } else if (s == threshold) {
      ++eq;
    }
  }
  *better += g;
  *equal += eq;
}

// Offers scores[begin, end) to `heap`, skipping `excluded` ids.
KGE_HOT_NOALLOC
void PushRangeExcluding(std::span<const float> scores, EntityId begin,
                        EntityId end, std::span<const EntityId> excluded,
                        TopKHeap<float, EntityId>* heap) {
  size_t cursor = 0;
  while (cursor < excluded.size() && excluded[cursor] < begin) ++cursor;
  for (EntityId e = begin; e < end; ++e) {
    if (cursor < excluded.size() && excluded[cursor] == e) {
      ++cursor;
      continue;
    }
    heap->PushCandidate(e, scores[size_t(e)]);
  }
}

}  // namespace

void KgeModel::ScoreAllTailsBatch(std::span<const EntityId> heads,
                                  RelationId relation,
                                  std::span<float> out) const {
  const size_t num = size_t(num_entities());
  KGE_DCHECK(out.size() == heads.size() * num);
  for (size_t q = 0; q < heads.size(); ++q) {
    ScoreAllTails(heads[q], relation, out.subspan(q * num, num));
  }
}

void KgeModel::ScoreAllHeadsBatch(std::span<const EntityId> tails,
                                  RelationId relation,
                                  std::span<float> out) const {
  const size_t num = size_t(num_entities());
  KGE_DCHECK(out.size() == tails.size() * num);
  for (size_t q = 0; q < tails.size(); ++q) {
    ScoreAllHeads(tails[q], relation, out.subspan(q * num, num));
  }
}

void KgeModel::ScoreAllTailsBatch(std::span<const EntityId> heads,
                                  RelationId relation, std::span<float> out,
                                  ScorePrecision precision) const {
  KGE_CHECK(precision == ScorePrecision::kDouble);
  ScoreAllTailsBatch(heads, relation, out);
}

void KgeModel::ScoreAllHeadsBatch(std::span<const EntityId> tails,
                                  RelationId relation, std::span<float> out,
                                  ScorePrecision precision) const {
  KGE_CHECK(precision == ScorePrecision::kDouble);
  ScoreAllHeadsBatch(tails, relation, out);
}

void KgeModel::CountTailsAbove(EntityId head, RelationId relation,
                               float threshold, EntityId begin, EntityId end,
                               std::span<const EntityId> excluded,
                               EntityId also_skip, ScorePrecision precision,
                               bool prune, uint64_t* better, uint64_t* equal,
                               RankScanStats* stats) const {
  (void)prune;  // no tile bounds in the exhaustive fallback
  if (begin >= end) return;
  const std::span<float> scores = FullScanScratch(size_t(num_entities()));
  const EntityId heads[1] = {head};
  ScoreAllTailsBatch(std::span<const EntityId>(heads, 1), relation, scores,
                     precision);
  CountRangeAgainstThreshold(scores, threshold, begin, end, excluded,
                             also_skip, better, equal);
  stats->tiles_total += 1;
}

void KgeModel::CountHeadsAbove(EntityId tail, RelationId relation,
                               float threshold, EntityId begin, EntityId end,
                               std::span<const EntityId> excluded,
                               EntityId also_skip, ScorePrecision precision,
                               bool prune, uint64_t* better, uint64_t* equal,
                               RankScanStats* stats) const {
  (void)prune;
  if (begin >= end) return;
  const std::span<float> scores = FullScanScratch(size_t(num_entities()));
  const EntityId tails[1] = {tail};
  ScoreAllHeadsBatch(std::span<const EntityId>(tails, 1), relation, scores,
                     precision);
  CountRangeAgainstThreshold(scores, threshold, begin, end, excluded,
                             also_skip, better, equal);
  stats->tiles_total += 1;
}

float KgeModel::ScoreOneTail(EntityId head, EntityId tail,
                             RelationId relation,
                             ScorePrecision precision) const {
  const std::span<float> scores = FullScanScratch(size_t(num_entities()));
  const EntityId heads[1] = {head};
  ScoreAllTailsBatch(std::span<const EntityId>(heads, 1), relation, scores,
                     precision);
  return scores[size_t(tail)];
}

float KgeModel::ScoreOneHead(EntityId head, EntityId tail,
                             RelationId relation,
                             ScorePrecision precision) const {
  const std::span<float> scores = FullScanScratch(size_t(num_entities()));
  const EntityId tails[1] = {tail};
  ScoreAllHeadsBatch(std::span<const EntityId>(tails, 1), relation, scores,
                     precision);
  return scores[size_t(head)];
}

void KgeModel::TopKTailsInRange(EntityId head, RelationId relation,
                                EntityId begin, EntityId end,
                                std::span<const EntityId> excluded,
                                ScorePrecision precision, bool prune,
                                TopKHeap<float, EntityId>* heap,
                                RankScanStats* stats) const {
  (void)prune;
  if (begin >= end) return;
  const std::span<float> scores = FullScanScratch(size_t(num_entities()));
  const EntityId heads[1] = {head};
  ScoreAllTailsBatch(std::span<const EntityId>(heads, 1), relation, scores,
                     precision);
  PushRangeExcluding(scores, begin, end, excluded, heap);
  stats->tiles_total += 1;
}

void KgeModel::TopKHeadsInRange(EntityId tail, RelationId relation,
                                EntityId begin, EntityId end,
                                std::span<const EntityId> excluded,
                                ScorePrecision precision, bool prune,
                                TopKHeap<float, EntityId>* heap,
                                RankScanStats* stats) const {
  (void)prune;
  if (begin >= end) return;
  const std::span<float> scores = FullScanScratch(size_t(num_entities()));
  const EntityId tails[1] = {tail};
  ScoreAllHeadsBatch(std::span<const EntityId>(tails, 1), relation, scores,
                     precision);
  PushRangeExcluding(scores, begin, end, excluded, heap);
  stats->tiles_total += 1;
}

void KgeModel::ScoreTailBatch(EntityId head, RelationId relation,
                              std::span<const EntityId> tails,
                              std::span<float> out) const {
  KGE_DCHECK(out.size() == tails.size());
  for (size_t i = 0; i < tails.size(); ++i) {
    out[i] = static_cast<float>(Score({head, tails[i], relation}));
  }
}

void KgeModel::ScoreHeadBatch(EntityId tail, RelationId relation,
                              std::span<const EntityId> heads,
                              std::span<float> out) const {
  KGE_DCHECK(out.size() == heads.size());
  for (size_t i = 0; i < heads.size(); ++i) {
    out[i] = static_cast<float>(Score({heads[i], tail, relation}));
  }
}

std::vector<const ParameterBlock*> KgeModel::Blocks() const {
  // The virtual Blocks() cannot be const (the trainer mutates blocks
  // through it), but the block list itself is configuration, not state:
  // collecting the pointers mutates nothing.
  std::vector<ParameterBlock*> blocks = const_cast<KgeModel*>(this)->Blocks();
  return std::vector<const ParameterBlock*>(blocks.begin(), blocks.end());
}

int64_t KgeModel::NumParameters() const {
  int64_t total = 0;
  for (const ParameterBlock* block : Blocks()) total += block->size();
  return total;
}

}  // namespace kge
