#include "models/kge_model.h"

namespace kge {

int64_t KgeModel::NumParameters() {
  int64_t total = 0;
  for (const ParameterBlock* block : Blocks()) total += block->size();
  return total;
}

}  // namespace kge
