#include "models/kge_model.h"

#include "util/check.h"

namespace kge {

void KgeModel::ScoreAllTailsBatch(std::span<const EntityId> heads,
                                  RelationId relation,
                                  std::span<float> out) const {
  const size_t num = size_t(num_entities());
  KGE_DCHECK(out.size() == heads.size() * num);
  for (size_t q = 0; q < heads.size(); ++q) {
    ScoreAllTails(heads[q], relation, out.subspan(q * num, num));
  }
}

void KgeModel::ScoreAllHeadsBatch(std::span<const EntityId> tails,
                                  RelationId relation,
                                  std::span<float> out) const {
  const size_t num = size_t(num_entities());
  KGE_DCHECK(out.size() == tails.size() * num);
  for (size_t q = 0; q < tails.size(); ++q) {
    ScoreAllHeads(tails[q], relation, out.subspan(q * num, num));
  }
}

void KgeModel::ScoreAllTailsBatch(std::span<const EntityId> heads,
                                  RelationId relation, std::span<float> out,
                                  ScorePrecision precision) const {
  KGE_CHECK(precision == ScorePrecision::kDouble);
  ScoreAllTailsBatch(heads, relation, out);
}

void KgeModel::ScoreAllHeadsBatch(std::span<const EntityId> tails,
                                  RelationId relation, std::span<float> out,
                                  ScorePrecision precision) const {
  KGE_CHECK(precision == ScorePrecision::kDouble);
  ScoreAllHeadsBatch(tails, relation, out);
}

void KgeModel::ScoreTailBatch(EntityId head, RelationId relation,
                              std::span<const EntityId> tails,
                              std::span<float> out) const {
  KGE_DCHECK(out.size() == tails.size());
  for (size_t i = 0; i < tails.size(); ++i) {
    out[i] = static_cast<float>(Score({head, tails[i], relation}));
  }
}

void KgeModel::ScoreHeadBatch(EntityId tail, RelationId relation,
                              std::span<const EntityId> heads,
                              std::span<float> out) const {
  KGE_DCHECK(out.size() == heads.size());
  for (size_t i = 0; i < heads.size(); ++i) {
    out[i] = static_cast<float>(Score({heads[i], tail, relation}));
  }
}

std::vector<const ParameterBlock*> KgeModel::Blocks() const {
  // The virtual Blocks() cannot be const (the trainer mutates blocks
  // through it), but the block list itself is configuration, not state:
  // collecting the pointers mutates nothing.
  std::vector<ParameterBlock*> blocks = const_cast<KgeModel*>(this)->Blocks();
  return std::vector<const ParameterBlock*>(blocks.begin(), blocks.end());
}

int64_t KgeModel::NumParameters() const {
  int64_t total = 0;
  for (const ParameterBlock* block : Blocks()) total += block->size();
  return total;
}

}  // namespace kge
