#include "models/learned_weight_model.h"

#include "core/interaction.h"
#include "util/check.h"

namespace kge {
namespace {

WeightTable InitialTable(const LearnedWeightOptions& options) {
  // Placeholder; the real ω is installed by RefreshWeights().
  return WeightTable(options.ne, options.nr);
}

}  // namespace

LearnedWeightModel::LearnedWeightModel(std::string name, int32_t num_entities,
                                       int32_t num_relations, int32_t dim,
                                       const LearnedWeightOptions& options,
                                       uint64_t seed)
    : MultiEmbeddingModel(std::move(name), num_entities, num_relations, dim,
                          InitialTable(options), seed),
      options_(options),
      raw_weights_("omega_raw", 1,
                   int64_t(options.ne) * options.ne * options.nr),
      omega_grad_(size_t(options.ne) * size_t(options.ne) * size_t(options.nr),
                  0.0f) {
  for (float& x : raw_weights_.Row(0)) x = options_.initial_raw_weight;
  RefreshWeights();
}

void LearnedWeightModel::InitParameters(uint64_t seed) {
  MultiEmbeddingModel::InitParameters(seed);
  // raw_weights_ is not yet constructed when the base constructor invokes
  // the base InitParameters; on explicit calls reset it too.
  if (raw_weights_.size() > 0) {
    for (float& x : raw_weights_.Row(0)) x = options_.initial_raw_weight;
    RefreshWeights();
  }
}

std::vector<ParameterBlock*> LearnedWeightModel::Blocks() {
  std::vector<ParameterBlock*> blocks = MultiEmbeddingModel::Blocks();
  KGE_CHECK(blocks.size() == kOmegaBlock);
  blocks.push_back(&raw_weights_);
  return blocks;
}

void LearnedWeightModel::RefreshWeights() {
  WeightTable table(options_.ne, options_.nr);
  std::vector<float> omega(size_t(raw_weights_.row_dim()));
  ApplyRestriction(options_.restriction, raw_weights_.Row(0), omega);
  table.SetFlat(omega);
  SetWeights(table);
}

void LearnedWeightModel::BeginBatch() {
  RefreshWeights();
  std::fill(omega_grad_.begin(), omega_grad_.end(), 0.0f);
}

void LearnedWeightModel::AccumulateGradients(const Triple& triple,
                                             float dscore,
                                             GradientBuffer* grads) {
  // Embedding gradients via the shared engine (uses the current ω).
  MultiEmbeddingModel::AccumulateGradients(triple, dscore, grads);
  // dL/dω accumulates locally; chained through f at FinishBatch.
  AccumulateOmegaGradients(weights(), dim(), entity_store().Of(triple.head),
                           entity_store().Of(triple.tail),
                           relation_store().Of(triple.relation), dscore,
                           omega_grad_);
}

double LearnedWeightModel::FinishBatch(GradientBuffer* grads) {
  std::vector<float> omega = CurrentOmega();
  double extra_loss = 0.0;
  if (options_.dirichlet.has_value()) {
    extra_loss = DirichletNll(omega, *options_.dirichlet);
    AddDirichletGradient(omega, *options_.dirichlet, omega_grad_);
  }
  std::span<float> raw_grad = grads->GradFor(kOmegaBlock, 0);
  RestrictionBackward(options_.restriction, omega, omega_grad_, raw_grad);
  return extra_loss;
}

std::vector<float> LearnedWeightModel::CurrentOmega() const {
  const auto flat = weights().Flat();
  return std::vector<float>(flat.begin(), flat.end());
}

std::unique_ptr<LearnedWeightModel> MakeLearnedWeightModel(
    int32_t num_entities, int32_t num_relations, int32_t dim,
    const LearnedWeightOptions& options, uint64_t seed) {
  std::string name = "AutoWeight[";
  name += RestrictionKindToString(options.restriction);
  if (options.dirichlet.has_value()) name += ",sparse";
  name += "]";
  return std::make_unique<LearnedWeightModel>(std::move(name), num_entities,
                                              num_relations, dim, options,
                                              seed);
}

}  // namespace kge
