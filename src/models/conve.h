// ConvE (Dettmers et al. 2018), the paper's example of recent
// convolutional KGE models (§2.2.2). The head and relation embeddings
// are reshaped into 2D grids, stacked, convolved, and projected back to
// embedding space; the score is the dot product with the tail embedding
// plus a per-entity bias:
//
//   v = ReLU( W · vec( ReLU( conv2d([h̄; r̄]) ) ) + w₀ )
//   S(h, t, r) = v · t + b_t
//
// Tail queries share one forward pass across all candidates (v is
// computed once), like the trilinear fold; head queries need a full
// forward per candidate — ConvE's well-known asymmetry (the original
// implementation adds reversed relations instead).
#ifndef KGE_MODELS_CONVE_H_
#define KGE_MODELS_CONVE_H_

#include <memory>
#include <string>

#include "core/embedding_store.h"
#include "models/kge_model.h"
#include "nn/conv2d.h"
#include "nn/dense_layer.h"
#include "util/hotpath.h"

namespace kge {

struct ConvEOptions {
  // Embedding dimension; must factor into the 2D grid below.
  int32_t dim = 64;
  int32_t grid_height = 8;  // grid_height * grid_width == dim
  int32_t grid_width = 8;
  int32_t num_filters = 8;   // 3x3 filters
};

class ConvE : public KgeModel {
 public:
  ConvE(int32_t num_entities, int32_t num_relations,
        const ConvEOptions& options, uint64_t seed);

  const std::string& name() const override { return name_; }
  int32_t num_entities() const override { return entities_.num_ids(); }
  int32_t num_relations() const override { return relations_.num_ids(); }
  int32_t dim() const { return entities_.dim(); }

  double Score(const Triple& triple) const override;
  KGE_HOT_NOALLOC
  void ScoreAllTails(EntityId head, RelationId relation,
                     std::span<float> out) const override;
  KGE_HOT_NOALLOC
  void ScoreAllHeads(EntityId tail, RelationId relation,
                     std::span<float> out) const override;

  std::vector<ParameterBlock*> Blocks() override;
  KGE_HOT_NOALLOC
  void AccumulateGradients(const Triple& triple, float dscore,
                           GradientBuffer* grads) override;
  void NormalizeEntities(std::span<const EntityId> entities) override;
  void InitParameters(uint64_t seed) override;

  static constexpr size_t kEntityBlock = 0;
  static constexpr size_t kRelationBlock = 1;
  static constexpr size_t kConvFilters = 2;
  static constexpr size_t kConvBias = 3;
  static constexpr size_t kProjectionWeights = 4;
  static constexpr size_t kProjectionBias = 5;
  static constexpr size_t kEntityBias = 6;

 private:
  // Runs the conv stack for (head, relation); fills the caller-provided
  // activations (sized by the accessors below). Returns the projected
  // vector in `projected` (dim floats, post-ReLU).
  struct Activations {
    std::vector<float> input;       // stacked grids
    std::vector<float> conv_out;    // post-conv pre-ReLU? (we store post)
    std::vector<float> projected;   // post-FC post-ReLU
    std::vector<float> fc_out;      // post-FC pre-ReLU
  };
  void ForwardQuery(EntityId head, RelationId relation,
                    Activations* acts) const;

  std::string name_;
  ConvEOptions options_;
  EmbeddingStore entities_;
  EmbeddingStore relations_;
  Conv2dLayer conv_;
  DenseLayer projection_;
  ParameterBlock entity_bias_;  // num_entities rows of 1
};

std::unique_ptr<ConvE> MakeConvE(int32_t num_entities, int32_t num_relations,
                                 const ConvEOptions& options, uint64_t seed);

}  // namespace kge

#endif  // KGE_MODELS_CONVE_H_
