#include "models/transh.h"

#include <vector>

#include "math/vec_ops.h"
#include "util/check.h"
#include "util/scratch.h"

namespace kge {

TransH::TransH(int32_t num_entities, int32_t num_relations, int32_t dim,
               uint64_t seed)
    : name_("TransH"),
      entities_("TransH.entities", num_entities, 1, dim),
      translations_("TransH.translations", num_relations, 1, dim),
      normals_("TransH.normals", num_relations, 1, dim) {
  InitParameters(seed);
}

void TransH::InitParameters(uint64_t seed) {
  Rng rng(seed);
  entities_.InitXavier(&rng);
  translations_.InitXavier(&rng);
  normals_.InitXavier(&rng);
  for (int32_t r = 0; r < normals_.num_ids(); ++r) {
    normals_.NormalizeVectorsOf(r);
  }
}

void TransH::ProjectedDifference(std::span<const float> h,
                                 std::span<const float> t,
                                 RelationId relation,
                                 std::span<float> diff) const {
  const auto d = translations_.Of(relation);
  const auto w = normals_.Of(relation);
  const double alpha = Dot(w, h);
  const double beta = Dot(w, t);
  const float gap = static_cast<float>(alpha - beta);
  for (size_t i = 0; i < h.size(); ++i) {
    diff[i] = h[i] - t[i] + d[i] - gap * w[i];
  }
}

double TransH::Score(const Triple& triple) const {
  static thread_local std::vector<float> diff_buf;
  const std::span<float> diff =
      ScratchSpan(diff_buf, static_cast<size_t>(dim()));
  ProjectedDifference(entities_.Of(triple.head), entities_.Of(triple.tail),
                      triple.relation, diff);
  return -SquaredNorm(diff);
}

void TransH::ScoreAllTails(EntityId head, RelationId relation,
                           std::span<float> out) const {
  KGE_CHECK(out.size() == size_t(entities_.num_ids()));
  // h⊥ + d is fixed; per candidate t the score is −||(h⊥ + d) − t⊥||².
  const auto h = entities_.Of(head);
  const auto d = translations_.Of(relation);
  const auto w = normals_.Of(relation);
  const int32_t n = dim();
  static thread_local std::vector<float> base_buf;
  const std::span<float> base = ScratchSpan(base_buf, static_cast<size_t>(n));
  const double alpha = Dot(w, h);
  for (int32_t i = 0; i < n; ++i) {
    base[size_t(i)] = h[size_t(i)] - float(alpha) * w[size_t(i)] + d[size_t(i)];
  }
  static thread_local std::vector<float> t_proj_buf;
  const std::span<float> t_proj =
      ScratchSpan(t_proj_buf, static_cast<size_t>(n));
  for (int32_t e = 0; e < entities_.num_ids(); ++e) {
    const auto t = entities_.Of(e);
    const double beta = Dot(w, t);
    for (int32_t i = 0; i < n; ++i) {
      t_proj[size_t(i)] = t[size_t(i)] - float(beta) * w[size_t(i)];
    }
    out[size_t(e)] = static_cast<float>(-LpDistance(base, t_proj, 2));
  }
}

void TransH::ScoreAllHeads(EntityId tail, RelationId relation,
                           std::span<float> out) const {
  KGE_CHECK(out.size() == size_t(entities_.num_ids()));
  const auto t = entities_.Of(tail);
  const auto d = translations_.Of(relation);
  const auto w = normals_.Of(relation);
  const int32_t n = dim();
  static thread_local std::vector<float> target_buf;  // t⊥ − d
  const std::span<float> target =
      ScratchSpan(target_buf, static_cast<size_t>(n));
  const double beta = Dot(w, t);
  for (int32_t i = 0; i < n; ++i) {
    target[size_t(i)] =
        t[size_t(i)] - float(beta) * w[size_t(i)] - d[size_t(i)];
  }
  static thread_local std::vector<float> h_proj_buf;
  const std::span<float> h_proj =
      ScratchSpan(h_proj_buf, static_cast<size_t>(n));
  for (int32_t e = 0; e < entities_.num_ids(); ++e) {
    const auto h = entities_.Of(e);
    const double alpha = Dot(w, h);
    for (int32_t i = 0; i < n; ++i) {
      h_proj[size_t(i)] = h[size_t(i)] - float(alpha) * w[size_t(i)];
    }
    out[size_t(e)] = static_cast<float>(-LpDistance(h_proj, target, 2));
  }
}

std::vector<ParameterBlock*> TransH::Blocks() {
  return {entities_.block(), translations_.block(), normals_.block()};
}

void TransH::AccumulateGradients(const Triple& triple, float dscore,
                                 GradientBuffer* grads) {
  const auto h = entities_.Of(triple.head);
  const auto t = entities_.Of(triple.tail);
  const auto w = normals_.Of(triple.relation);
  const int32_t n = dim();
  static thread_local std::vector<float> diff_buf;
  const std::span<float> diff = ScratchSpan(diff_buf, static_cast<size_t>(n));
  ProjectedDifference(h, t, triple.relation, diff);

  // g = dscore * dS/ddiff = -2 * dscore * diff.
  static thread_local std::vector<float> g_buf;
  const std::span<float> g = ScratchSpan(g_buf, static_cast<size_t>(n));
  for (int32_t i = 0; i < n; ++i) g[size_t(i)] = -2.0f * dscore * diff[size_t(i)];

  std::span<float> gh = grads->GradFor(kEntityBlock, triple.head);
  std::span<float> gt = grads->GradFor(kEntityBlock, triple.tail);
  std::span<float> gd = grads->GradFor(kTranslationBlock, triple.relation);
  std::span<float> gw = grads->GradFor(kNormalBlock, triple.relation);

  const double gw_dot = Dot(g, w);
  const double alpha = Dot(w, h);
  const double beta = Dot(w, t);
  const float gap = static_cast<float>(alpha - beta);
  for (int32_t i = 0; i < n; ++i) {
    const float gi = g[size_t(i)];
    const float proj = gi - float(gw_dot) * w[size_t(i)];
    gh[size_t(i)] += proj;
    gt[size_t(i)] -= proj;
    gd[size_t(i)] += gi;
    gw[size_t(i)] +=
        -float(gw_dot) * (h[size_t(i)] - t[size_t(i)]) - gap * gi;
  }
}

void TransH::NormalizeEntities(std::span<const EntityId> entities) {
  for (EntityId e : entities) entities_.NormalizeVectorsOf(e);
  // Re-impose the unit-norm constraint on the hyperplane normals after
  // each optimizer step (TransH's hard constraint on w_r).
  for (int32_t r = 0; r < normals_.num_ids(); ++r) {
    normals_.NormalizeVectorsOf(r);
  }
}

std::unique_ptr<TransH> MakeTransH(int32_t num_entities,
                                   int32_t num_relations, int32_t dim,
                                   uint64_t seed) {
  return std::make_unique<TransH>(num_entities, num_relations, dim, seed);
}

}  // namespace kge
