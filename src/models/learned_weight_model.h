// LearnedWeightModel (§3.3): the multi-embedding interaction model with a
// trainable weight vector ω learned end-to-end together with the
// embeddings. ω = f(ρ) for raw parameters ρ under a configurable range
// restriction f ∈ {none, tanh, sigmoid, softmax}, optionally with the
// Dirichlet negative log-likelihood sparsity regularizer of Eq. (12).
#ifndef KGE_MODELS_LEARNED_WEIGHT_MODEL_H_
#define KGE_MODELS_LEARNED_WEIGHT_MODEL_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/dirichlet_regularizer.h"
#include "core/restriction.h"
#include "models/trilinear_models.h"

namespace kge {

struct LearnedWeightOptions {
  int32_t ne = 2;  // number of entity embedding vectors
  int32_t nr = 2;  // number of relation embedding vectors
  RestrictionKind restriction = RestrictionKind::kNone;
  // Engaged => add the Dirichlet sparsity loss on ω.
  std::optional<DirichletOptions> dirichlet;
  // Initial value of every raw weight ρ_m (the paper's uniform start; the
  // observation that training barely moves ω off uniform is one of its
  // findings).
  float initial_raw_weight = 1.0f;
};

class LearnedWeightModel : public MultiEmbeddingModel {
 public:
  LearnedWeightModel(std::string name, int32_t num_entities,
                     int32_t num_relations, int32_t dim,
                     const LearnedWeightOptions& options, uint64_t seed);

  std::vector<ParameterBlock*> Blocks() override;
  void BeginBatch() override;
  void AccumulateGradients(const Triple& triple, float dscore,
                           GradientBuffer* grads) override;
  double FinishBatch(GradientBuffer* grads) override;
  void InitParameters(uint64_t seed) override;
  // AccumulateGradients writes the shared omega_grad_ accumulator.
  bool SupportsParallelGradients() const override { return false; }

  // Current ω = f(ρ) (valid after BeginBatch / RefreshWeights).
  std::vector<float> CurrentOmega() const;
  // Recomputes ω from ρ outside of training (e.g. before evaluation).
  void RefreshWeights();

  static constexpr size_t kOmegaBlock = 2;

 private:
  LearnedWeightOptions options_;
  ParameterBlock raw_weights_;        // ρ, one row of ne*ne*nr floats
  std::vector<float> omega_grad_;     // dL/dω accumulated over the batch
};

// Factory with a descriptive name, e.g.
// "AutoWeight[softmax,sparse]" for Table 3 rows.
std::unique_ptr<LearnedWeightModel> MakeLearnedWeightModel(
    int32_t num_entities, int32_t num_relations, int32_t dim,
    const LearnedWeightOptions& options, uint64_t seed);

}  // namespace kge

#endif  // KGE_MODELS_LEARNED_WEIGHT_MODEL_H_
