#include "models/quaternion_model.h"

#include <vector>

#include "math/quaternion.h"
#include "util/check.h"
#include "util/string_utils.h"

namespace kge {

const char* QuaternionProductOrderToString(QuaternionProductOrder order) {
  switch (order) {
    case QuaternionProductOrder::kHConjTR:
      return "Re(h*conj(t)*r)";
    case QuaternionProductOrder::kHRConjT:
      return "Re(h*r*conj(t))";
    case QuaternionProductOrder::kRHConjT:
      return "Re(r*h*conj(t))";
  }
  return "?";
}

WeightTable DeriveQuaternionWeightTable(QuaternionProductOrder order) {
  // Basis quaternions 1, i, j, k.
  const Quaternion basis[4] = {
      {1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 1, 0}, {0, 0, 0, 1}};
  WeightTable table(4, 4);
  std::vector<float> flat(static_cast<size_t>(table.size()), 0.0f);
  for (int32_t i = 0; i < 4; ++i) {
    for (int32_t j = 0; j < 4; ++j) {
      for (int32_t k = 0; k < 4; ++k) {
        Quaternion product;
        switch (order) {
          case QuaternionProductOrder::kHConjTR:
            product = basis[i] * basis[j].Conjugate() * basis[k];
            break;
          case QuaternionProductOrder::kHRConjT:
            product = basis[i] * basis[k] * basis[j].Conjugate();
            break;
          case QuaternionProductOrder::kRHConjT:
            product = basis[k] * basis[i] * basis[j].Conjugate();
            break;
        }
        // The coefficient of the real part of h(i)*t(j)*r(k) in the
        // expanded score, per Eq. (14)'s derivation.
        flat[static_cast<size_t>(table.Index(i, j, k))] =
            static_cast<float>(product.a);
      }
    }
  }
  table.SetFlat(flat);
  return table;
}

std::unique_ptr<MultiEmbeddingModel> MakeQuaternionModel(
    int32_t num_entities, int32_t num_relations, int32_t dim, uint64_t seed,
    QuaternionProductOrder order) {
  std::string name = "Quaternion";
  if (order != QuaternionProductOrder::kHConjTR) {
    name += StrFormat("[%s]", QuaternionProductOrderToString(order));
  }
  return std::make_unique<MultiEmbeddingModel>(
      std::move(name), num_entities, num_relations, dim,
      DeriveQuaternionWeightTable(order), seed);
}

}  // namespace kge
