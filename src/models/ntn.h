// NTN — Neural Tensor Network (Socher et al. 2013), cited by the paper
// (§2.2.2) as the earlier neural model that "employs nonlinear activation
// functions to generalize the linear model RESCAL":
//
//   S(h, t, r) = uᵣᵀ · tanh( hᵀ Wᵣ[1..k] t  +  Vᵣ [h; t]  +  bᵣ )
//
// with k tensor slices per relation. Each slice contributes a bilinear
// form hᵀ Wᵣ⁽ⁱ⁾ t (RESCAL's score); V adds a linear term and tanh + u
// the nonlinearity. Expressive but parameter-hungry: O(k·D²) per
// relation.
#ifndef KGE_MODELS_NTN_H_
#define KGE_MODELS_NTN_H_

#include <memory>
#include <string>

#include "core/embedding_store.h"
#include "models/kge_model.h"
#include "util/hotpath.h"

namespace kge {

class Ntn : public KgeModel {
 public:
  Ntn(int32_t num_entities, int32_t num_relations, int32_t dim,
      int32_t num_slices, uint64_t seed);

  const std::string& name() const override { return name_; }
  int32_t num_entities() const override { return entities_.num_ids(); }
  int32_t num_relations() const override {
    return int32_t(relations_.num_rows());
  }
  int32_t dim() const { return entities_.dim(); }
  int32_t num_slices() const { return num_slices_; }

  double Score(const Triple& triple) const override;
  KGE_HOT_NOALLOC
  void ScoreAllTails(EntityId head, RelationId relation,
                     std::span<float> out) const override;
  KGE_HOT_NOALLOC
  void ScoreAllHeads(EntityId tail, RelationId relation,
                     std::span<float> out) const override;

  std::vector<ParameterBlock*> Blocks() override;
  KGE_HOT_NOALLOC
  void AccumulateGradients(const Triple& triple, float dscore,
                           GradientBuffer* grads) override;
  void NormalizeEntities(std::span<const EntityId> entities) override;
  void InitParameters(uint64_t seed) override;

  static constexpr size_t kEntityBlock = 0;
  static constexpr size_t kRelationBlock = 1;

 private:
  // One relation row layout: [ W: k·D·D | V: k·2D | b: k | u: k ].
  struct RelationView {
    std::span<const float> w;  // k slices of D×D, row-major
    std::span<const float> v;  // k rows of 2D
    std::span<const float> b;  // k
    std::span<const float> u;  // k
  };
  RelationView ViewOf(RelationId relation) const;
  int64_t RowSize() const;

  // Computes per-slice pre-activations z[i] for (h, t, r).
  void SlicePreactivations(std::span<const float> h,
                           std::span<const float> t, RelationId relation,
                           std::span<double> z) const;

  std::string name_;
  int32_t num_slices_;
  EmbeddingStore entities_;
  ParameterBlock relations_;
};

std::unique_ptr<Ntn> MakeNtn(int32_t num_entities, int32_t num_relations,
                             int32_t dim, int32_t num_slices, uint64_t seed);

}  // namespace kge

#endif  // KGE_MODELS_NTN_H_
