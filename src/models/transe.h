// TransE (Bordes et al. 2013), the representative translation-based model
// of the paper's §2.2.1, implemented as a baseline outside the
// trilinear-product family:
//
//   S(h, t, r) = −||h + r − t||_p ,  p ∈ {1, 2}
//
// (for p = 2 we use the squared distance, which is the differentiable
// form commonly trained). Included to contrast the categories the paper
// describes: translation-based models cannot represent some relational
// patterns the trilinear family can (e.g. non-trivial symmetry forces
// r ≈ 0).
#ifndef KGE_MODELS_TRANSE_H_
#define KGE_MODELS_TRANSE_H_

#include <memory>
#include <string>

#include "core/embedding_store.h"
#include "models/kge_model.h"
#include "util/hotpath.h"

namespace kge {

class TransE : public KgeModel {
 public:
  TransE(int32_t num_entities, int32_t num_relations, int32_t dim, int norm_p,
         uint64_t seed);

  const std::string& name() const override { return name_; }
  int32_t num_entities() const override { return entities_.num_ids(); }
  int32_t num_relations() const override { return relations_.num_ids(); }
  int32_t dim() const { return entities_.dim(); }

  double Score(const Triple& triple) const override;
  KGE_HOT_NOALLOC
  void ScoreAllTails(EntityId head, RelationId relation,
                     std::span<float> out) const override;
  KGE_HOT_NOALLOC
  void ScoreAllHeads(EntityId tail, RelationId relation,
                     std::span<float> out) const override;

  std::vector<ParameterBlock*> Blocks() override;
  KGE_HOT_NOALLOC
  void AccumulateGradients(const Triple& triple, float dscore,
                           GradientBuffer* grads) override;
  void NormalizeEntities(std::span<const EntityId> entities) override;
  void InitParameters(uint64_t seed) override;

  static constexpr size_t kEntityBlock = 0;
  static constexpr size_t kRelationBlock = 1;

 private:
  std::string name_;
  int norm_p_;
  EmbeddingStore entities_;
  EmbeddingStore relations_;
};

std::unique_ptr<TransE> MakeTransE(int32_t num_entities,
                                   int32_t num_relations, int32_t dim,
                                   int norm_p, uint64_t seed);

}  // namespace kge

#endif  // KGE_MODELS_TRANSE_H_
