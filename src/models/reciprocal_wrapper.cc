#include "models/reciprocal_wrapper.h"

#include "kg/augmentation.h"
#include "util/check.h"

namespace kge {

ReciprocalWrapper::ReciprocalWrapper(KgeModel* base,
                                     int32_t original_relations)
    : base_(base),
      original_relations_(original_relations),
      name_(base->name() + "+reciprocal") {
  KGE_CHECK(base_ != nullptr);
  KGE_CHECK(base_->num_relations() == 2 * original_relations);
}

void ReciprocalWrapper::ScoreAllHeads(EntityId tail, RelationId relation,
                                      std::span<float> out) const {
  KGE_CHECK(relation >= 0 && relation < original_relations_);
  base_->ScoreAllTails(
      tail, AugmentedRelationOf(relation, original_relations_), out);
}

}  // namespace kge
