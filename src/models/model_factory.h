// Model construction by name — the registry behind the CLI tools and
// grid-search drivers. `dim_budget` is the total number of embedding
// parameters per entity (the paper's fixed-budget comparison, §5.3); it
// is split across the model's embedding vectors, e.g. budget 400 gives
// DistMult 1x400, ComplEx 2x200, the quaternion model 4x100.
#ifndef KGE_MODELS_MODEL_FACTORY_H_
#define KGE_MODELS_MODEL_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "models/kge_model.h"
#include "util/status.h"

namespace kge {

// Known names: distmult, complex, cp, cph, simple, quaternion, transe-l1,
// transe-l2, transh, rescal, er-mlp, uniform, autoweight[-tanh|-sigmoid|
// -softmax][-sparse].
Result<std::unique_ptr<KgeModel>> MakeModelByName(const std::string& name,
                                                  int32_t num_entities,
                                                  int32_t num_relations,
                                                  int32_t dim_budget,
                                                  uint64_t seed);

// All registered model names, for --help output and sweeps.
std::vector<std::string> KnownModelNames();

}  // namespace kge

#endif  // KGE_MODELS_MODEL_FACTORY_H_
