// MultiEmbeddingModel: the concrete trilinear-product model family —
// Eq. (8) with a fixed weight table ω. DistMult, ComplEx, CP, CPh, the
// quaternion model, and the hand-picked good/bad weight vectors of
// Table 2 are all instances (this is the paper's unification claim made
// executable). Factory functions construct each named configuration with
// the paper's parameter-budget conventions.
#ifndef KGE_MODELS_TRILINEAR_MODELS_H_
#define KGE_MODELS_TRILINEAR_MODELS_H_

#include <memory>
#include <string>

#include "core/embedding_store.h"
#include "core/interaction.h"
#include "core/scoring_replica.h"
#include "core/weight_table.h"
#include "models/kge_model.h"
#include "util/hotpath.h"

namespace kge {

class MultiEmbeddingModel : public KgeModel {
 public:
  // `dim` is the per-vector dimension; entities get weights.ne() vectors
  // and relations weights.nr() vectors.
  MultiEmbeddingModel(std::string name, int32_t num_entities,
                      int32_t num_relations, int32_t dim, WeightTable weights,
                      uint64_t seed);

  const std::string& name() const override { return name_; }
  int32_t num_entities() const override { return entities_.num_ids(); }
  int32_t num_relations() const override { return relations_.num_ids(); }
  int32_t dim() const { return dim_; }

  double Score(const Triple& triple) const override;
  KGE_HOT_NOALLOC
  void ScoreAllTails(EntityId head, RelationId relation,
                     std::span<float> out) const override;
  KGE_HOT_NOALLOC
  void ScoreAllHeads(EntityId tail, RelationId relation,
                     std::span<float> out) const override;
  // Batched candidate scoring: fold the fixed (h, r) / (t, r) context
  // once, then score the candidates straight out of the entity table
  // with the id-indirected kernel (simd::DotBatchIndexed) — no copy of
  // the candidate rows. Each score is exactly float(Dot(fold, candidate))
  // — the same value ScoreAllTails/Heads computes for that entity.
  KGE_HOT_NOALLOC
  void ScoreTailBatch(EntityId head, RelationId relation,
                      std::span<const EntityId> tails,
                      std::span<float> out) const override;
  KGE_HOT_NOALLOC
  void ScoreHeadBatch(EntityId tail, RelationId relation,
                      std::span<const EntityId> heads,
                      std::span<float> out) const override;
  // Batched full-vocabulary scoring: fold all B contexts into one
  // per-thread B × width scratch matrix, then a single cache-blocked
  // multi-query product against the entity table (simd::DotBatchMulti).
  // Row q equals ScoreAllTails(heads[q], relation) bit-for-bit.
  KGE_HOT_NOALLOC
  void ScoreAllTailsBatch(std::span<const EntityId> heads,
                          RelationId relation,
                          std::span<float> out) const override;
  KGE_HOT_NOALLOC
  void ScoreAllHeadsBatch(std::span<const EntityId> tails,
                          RelationId relation,
                          std::span<float> out) const override;
  // Precision-tiered variants: the same fold step, with the multi-query
  // product dispatched per tier — DotBatchMulti (kDouble),
  // DotBatchMultiF32 (float accumulation over the same entity table), or
  // DotBatchMultiI8 against the entity block's quantized ScoringReplica.
  // The folds themselves always evaluate in float (they already do),
  // so tiers differ only in the candidate product.
  KGE_HOT_NOALLOC
  void ScoreAllTailsBatch(std::span<const EntityId> heads,
                          RelationId relation, std::span<float> out,
                          ScorePrecision precision) const override;
  KGE_HOT_NOALLOC
  void ScoreAllHeadsBatch(std::span<const EntityId> tails,
                          RelationId relation, std::span<float> out,
                          ScorePrecision precision) const override;

  // Range-scoped pruned scans (DESIGN.md §5h): fold the fixed context
  // once, then walk only the entity-table tiles overlapping
  // [begin, end); with `prune`, a tile whose Cauchy–Schwarz bound
  // (‖fold‖₂ · tile max row norm · simd::kPruneBoundSlack) cannot reach
  // the threshold / current heap minimum is skipped without streaming a
  // byte of it. Per-cell kernel contract ⇒ surviving scores are
  // bit-identical to the exhaustive batched path, so pruning and
  // sharding never change a metric or a top-k result.
  KGE_HOT_NOALLOC
  void CountTailsAbove(EntityId head, RelationId relation, float threshold,
                       EntityId begin, EntityId end,
                       std::span<const EntityId> excluded, EntityId also_skip,
                       ScorePrecision precision, bool prune, uint64_t* better,
                       uint64_t* equal, RankScanStats* stats) const override;
  KGE_HOT_NOALLOC
  void CountHeadsAbove(EntityId tail, RelationId relation, float threshold,
                       EntityId begin, EntityId end,
                       std::span<const EntityId> excluded, EntityId also_skip,
                       ScorePrecision precision, bool prune, uint64_t* better,
                       uint64_t* equal, RankScanStats* stats) const override;
  KGE_HOT_NOALLOC
  float ScoreOneTail(EntityId head, EntityId tail, RelationId relation,
                     ScorePrecision precision) const override;
  KGE_HOT_NOALLOC
  float ScoreOneHead(EntityId head, EntityId tail, RelationId relation,
                     ScorePrecision precision) const override;
  KGE_HOT_NOALLOC
  void TopKTailsInRange(EntityId head, RelationId relation, EntityId begin,
                        EntityId end, std::span<const EntityId> excluded,
                        ScorePrecision precision, bool prune,
                        TopKHeap<float, EntityId>* heap,
                        RankScanStats* stats) const override;
  KGE_HOT_NOALLOC
  void TopKHeadsInRange(EntityId tail, RelationId relation, EntityId begin,
                        EntityId end, std::span<const EntityId> excluded,
                        ScorePrecision precision, bool prune,
                        TopKHeap<float, EntityId>* heap,
                        RankScanStats* stats) const override;

  // The trilinear family supports every tier.
  bool SupportsScorePrecision(ScorePrecision precision) const override {
    (void)precision;
    return true;
  }

  // Requantizes the entity replica if training moved the master table.
  void PrepareForScoring(ScorePrecision precision) const override {
    entity_replica_.EnsureFresh(precision);
  }

  // Additionally rebuilds the per-tile score bounds the pruned scans
  // read (stale iff training moved the master table).
  void PrepareForPrunedScoring(ScorePrecision precision) const override {
    entity_replica_.EnsureFresh(precision);
    entity_replica_.EnsureBoundsFresh(precision);
  }

  std::vector<ParameterBlock*> Blocks() override;
  KGE_HOT_NOALLOC
  void AccumulateGradients(const Triple& triple, float dscore,
                           GradientBuffer* grads) override;
  void NormalizeEntities(std::span<const EntityId> entities) override;
  void InitParameters(uint64_t seed) override;

  const WeightTable& weights() const { return weights_; }
  EmbeddingStore& entity_store() { return entities_; }
  const EmbeddingStore& entity_store() const { return entities_; }
  EmbeddingStore& relation_store() { return relations_; }
  const EmbeddingStore& relation_store() const { return relations_; }

  // Block indices within Blocks().
  static constexpr size_t kEntityBlock = 0;
  static constexpr size_t kRelationBlock = 1;

 protected:
  // Subclass hook: replace ω (LearnedWeightModel recomputes it per batch).
  void SetWeights(const WeightTable& weights) { weights_ = weights; }

 private:
  // Shared tile walks behind the range-scoped scans (the fold — tail- or
  // head-side — is the only thing that differs between the two sides).
  KGE_HOT_NOALLOC
  void PrunedCountScan(std::span<const float> fold, float threshold,
                       EntityId begin, EntityId end,
                       std::span<const EntityId> excluded, EntityId also_skip,
                       ScorePrecision precision, bool prune, uint64_t* better,
                       uint64_t* equal, RankScanStats* stats) const;
  KGE_HOT_NOALLOC
  void PrunedTopKScan(std::span<const float> fold, EntityId begin,
                      EntityId end, std::span<const EntityId> excluded,
                      ScorePrecision precision, bool prune,
                      TopKHeap<float, EntityId>* heap,
                      RankScanStats* stats) const;

  std::string name_;
  int32_t dim_;
  WeightTable weights_;
  EmbeddingStore entities_;
  EmbeddingStore relations_;
  // Derived scoring cache over the entity block (mutable: rebuilding a
  // replica in PrepareForScoring does not change model state). Guarded
  // by the generation stamp, rebuilt single-threaded, read-only during
  // concurrent scoring.
  mutable ScoringReplica entity_replica_;
};

// ---- Named factories -------------------------------------------------------
// `dim` below is the *per-vector* embedding size. The paper compares
// models at matched parameter budgets: DistMult 400, ComplEx/CP/CPh 200,
// quaternion 100 — pass the matching dim for such comparisons.

std::unique_ptr<MultiEmbeddingModel> MakeDistMult(int32_t num_entities,
                                                  int32_t num_relations,
                                                  int32_t dim, uint64_t seed);

std::unique_ptr<MultiEmbeddingModel> MakeComplEx(int32_t num_entities,
                                                 int32_t num_relations,
                                                 int32_t dim, uint64_t seed);

std::unique_ptr<MultiEmbeddingModel> MakeCp(int32_t num_entities,
                                            int32_t num_relations,
                                            int32_t dim, uint64_t seed);

// CPh as the derived two-embedding weight vector (Table 1). Equivalent to
// CP + inverse augmentation at training time; see also Trainer's
// augment_inverses option for the data-augmentation formulation.
std::unique_ptr<MultiEmbeddingModel> MakeCph(int32_t num_entities,
                                             int32_t num_relations,
                                             int32_t dim, uint64_t seed);

// Any fixed weight table (e.g. Table 2's good/bad examples or uniform).
std::unique_ptr<MultiEmbeddingModel> MakeMultiEmbedding(
    std::string name, int32_t num_entities, int32_t num_relations,
    int32_t dim, WeightTable weights, uint64_t seed);

}  // namespace kge

#endif  // KGE_MODELS_TRILINEAR_MODELS_H_
