// KgeModel: the abstract interface every knowledge graph embedding model
// implements (§2.1's three-component architecture: embedding lookup +
// interaction mechanism + prediction). The trainer and evaluator are
// written against this interface only.
//
// Training protocol per mini-batch:
//   model->BeginBatch();
//   for each (triple, dscore): model->AccumulateGradients(...);
//   loss += model->FinishBatch(&grads);
//   optimizer->Apply(grads);
//   model->NormalizeEntities(touched_entities);
#ifndef KGE_MODELS_KGE_MODEL_H_
#define KGE_MODELS_KGE_MODEL_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/parameter_block.h"
#include "core/scoring_replica.h"
#include "core/topk_heap.h"
#include "kg/triple.h"
#include "util/hotpath.h"

namespace kge {

// Counters reported by the range-scoped ranking scans (DESIGN.md §5h):
// how many bound tiles the scan covered and how many it proved
// sub-threshold and skipped without touching their rows. Exhaustive
// fallbacks count their whole range as one unskipped tile.
struct RankScanStats {
  uint64_t tiles_total = 0;
  uint64_t tiles_skipped = 0;
};

// Start of shard s when [0, n) is split into `shards` contiguous
// near-equal ranges: shard s covers
// [ShardBegin(n, shards, s), ShardBegin(n, shards, s + 1)). Computed in
// 64-bit so n·shards never overflows, monotone in s, and exactly
// partitioning — the sharded ranking paths rely on every id landing in
// exactly one shard.
constexpr EntityId ShardBegin(EntityId n, int shards, int s) {
  return EntityId((int64_t(n) * int64_t(s)) / int64_t(shards));
}

class KgeModel {
 public:
  virtual ~KgeModel() = default;

  virtual const std::string& name() const = 0;
  virtual int32_t num_entities() const = 0;
  virtual int32_t num_relations() const = 0;

  // Matching score S(h, t, r); higher = more likely valid.
  virtual double Score(const Triple& triple) const = 0;

  // Scores (h, t', r) for every candidate tail t' in [0, num_entities);
  // `out` has num_entities floats. Must be thread-safe for concurrent
  // calls (used by the parallel evaluator).
  KGE_HOT_NOALLOC
  virtual void ScoreAllTails(EntityId head, RelationId relation,
                             std::span<float> out) const = 0;
  // Scores (h', t, r) for every candidate head h'.
  KGE_HOT_NOALLOC
  virtual void ScoreAllHeads(EntityId tail, RelationId relation,
                             std::span<float> out) const = 0;

  // Batched full-vocabulary scoring: for each query q, scores
  // (heads[q], t', r) for every candidate tail t' into the row-major
  // heads.size() × num_entities matrix `out` (row q = query q's scores).
  // Row q is element-for-element identical to ScoreAllTails(heads[q], r)
  // — batching is a scheduling contract, never a numeric one. The base
  // implementation loops ScoreAllTails per query (correct for every
  // model); the trilinear family overrides it to fold all B contexts
  // into one scratch matrix and run a single cache-blocked multi-query
  // kernel (simd::DotBatchMulti), which loads each entity row once per
  // batch instead of once per query. Must be thread-safe for concurrent
  // calls (used by the batched parallel evaluator and the 1-vs-All
  // trainer).
  KGE_HOT_NOALLOC
  virtual void ScoreAllTailsBatch(std::span<const EntityId> heads,
                                  RelationId relation,
                                  std::span<float> out) const;
  // Batched head-side twin: row q scores (h', tails[q], r) for every h'.
  KGE_HOT_NOALLOC
  virtual void ScoreAllHeadsBatch(std::span<const EntityId> tails,
                                  RelationId relation,
                                  std::span<float> out) const;

  // Precision-tiered batched scoring (EvalOptions::score_precision):
  // the same contract as the 3-argument overloads with candidate scores
  // computed at `precision` — kDouble is exact, kFloat32 accumulates in
  // float over the master table, kInt8 reads a quantized scoring
  // replica (see core/scoring_replica.h and math/simd.h's precision-tier
  // contract). The base implementation supports kDouble only (and
  // KGE_CHECK-fails otherwise — callers gate on SupportsScorePrecision);
  // models that maintain replicas override all four. Non-double tiers
  // require a PrepareForScoring(precision) call before concurrent use.
  KGE_HOT_NOALLOC
  virtual void ScoreAllTailsBatch(std::span<const EntityId> heads,
                                  RelationId relation, std::span<float> out,
                                  ScorePrecision precision) const;
  KGE_HOT_NOALLOC
  virtual void ScoreAllHeadsBatch(std::span<const EntityId> tails,
                                  RelationId relation, std::span<float> out,
                                  ScorePrecision precision) const;

  // True when the model can score full-vocabulary batches at
  // `precision`. Every model supports kDouble; only models with scoring
  // replicas (the trilinear family) report the reduced tiers.
  virtual bool SupportsScorePrecision(ScorePrecision precision) const {
    return precision == ScorePrecision::kDouble;
  }

  // Rebuilds any scoring replica `precision` needs if it is stale
  // against the master parameters — free at pure-eval time, one
  // requantization pass after training steps. Must be called from one
  // thread with no concurrent scoring; `const` because replicas are
  // derived caches, not model state. No-op by default and for kDouble.
  virtual void PrepareForScoring(ScorePrecision precision) const {
    (void)precision;
  }

  // PrepareForScoring plus a rebuild of the per-tile score bounds the
  // pruned range scans read (ScoringReplica::EnsureBoundsFresh). Models
  // without tile bounds just forward to PrepareForScoring — their
  // exhaustive range-scan fallbacks need no bounds. Same threading
  // contract as PrepareForScoring: one thread, no concurrent scoring.
  virtual void PrepareForPrunedScoring(ScorePrecision precision) const {
    PrepareForScoring(precision);
  }

  // ---- Range-scoped ranking scans (sharded / pruned path, §5h) -------------
  //
  // These four scans restrict ranking to the candidate range
  // [begin, end) of the entity table. Scores are the exact float values
  // the batched kernels produce at `precision` (the per-cell numerics
  // contract of math/simd.h), so restricting the range is pure
  // scheduling: counts summed over any shard partition of
  // [0, num_entities) equal the single-range counts bit-for-bit, and a
  // top-k heap fed per shard then merged returns exactly the single-pass
  // result. When `prune` is set, models with precomputed tile bounds
  // (the trilinear family, via ScoringReplica) skip tiles whose
  // Cauchy–Schwarz upper bound proves every score in them is below the
  // current threshold — exact, never approximate. The base
  // implementations are exhaustive (score the full vocabulary into
  // thread-local scratch, then walk the range) and report the range as
  // one unskipped tile. All four must be thread-safe for concurrent
  // calls; non-double tiers require PrepareForScoring first.

  // Counts candidate tails t' in [begin, end) with score strictly above
  // (*better) resp. equal to (*equal) `threshold`, skipping ids in
  // `excluded` (sorted ascending) and `also_skip` (pass kNoSkipEntity
  // for none; an also_skip id that also appears in `excluded` is skipped
  // once). Adds to *better/*equal and to `stats`.
  KGE_HOT_NOALLOC
  virtual void CountTailsAbove(EntityId head, RelationId relation,
                               float threshold, EntityId begin, EntityId end,
                               std::span<const EntityId> excluded,
                               EntityId also_skip, ScorePrecision precision,
                               bool prune, uint64_t* better, uint64_t* equal,
                               RankScanStats* stats) const;
  // Head-side twin: counts candidate heads h' for (h', tail, relation).
  KGE_HOT_NOALLOC
  virtual void CountHeadsAbove(EntityId tail, RelationId relation,
                               float threshold, EntityId begin, EntityId end,
                               std::span<const EntityId> excluded,
                               EntityId also_skip, ScorePrecision precision,
                               bool prune, uint64_t* better, uint64_t* equal,
                               RankScanStats* stats) const;

  // Sentinel for CountTailsAbove/CountHeadsAbove's also_skip.
  static constexpr EntityId kNoSkipEntity = EntityId(-1);

  // Prefix length sharded+pruned callers scan exhaustively to prime a
  // shared prune floor (TopKHeap::SetPruneFloor) before fanning out.
  // The k-th best of the prefix lower-bounds the global k-th best, so
  // the floor keeps per-shard pruning exact; a few thousand candidates
  // make it tight enough to bite (k alone is too noisy — a high-norm
  // row does not guarantee a high score), while staying a negligible
  // fraction of a 100k+ entity table.
  static constexpr EntityId kPrunePrimePrefix = EntityId(2048);

  // The float score of the single cell (head, tail) exactly as the
  // batched kernels produce it at `precision` — the rank threshold of
  // the pruned evaluator. (float(Score(triple)) is NOT the same value
  // for reduced tiers, and can differ in the last bit even at kDouble
  // for models whose ScoreAll* path reassociates.)
  KGE_HOT_NOALLOC
  virtual float ScoreOneTail(EntityId head, EntityId tail,
                             RelationId relation,
                             ScorePrecision precision) const;
  KGE_HOT_NOALLOC
  virtual float ScoreOneHead(EntityId head, EntityId tail,
                             RelationId relation,
                             ScorePrecision precision) const;

  // Offers every candidate tail in [begin, end) not in `excluded`
  // (sorted ascending) to `heap`. With `prune`, tiles whose bound
  // cannot beat the heap's current minimum are skipped — only once the
  // heap is full, and only on a strictly-less comparison (an
  // equal-score candidate can still win its way in via the smaller-id
  // tie-break, so equality never skips).
  KGE_HOT_NOALLOC
  virtual void TopKTailsInRange(EntityId head, RelationId relation,
                                EntityId begin, EntityId end,
                                std::span<const EntityId> excluded,
                                ScorePrecision precision, bool prune,
                                TopKHeap<float, EntityId>* heap,
                                RankScanStats* stats) const;
  KGE_HOT_NOALLOC
  virtual void TopKHeadsInRange(EntityId tail, RelationId relation,
                                EntityId begin, EntityId end,
                                std::span<const EntityId> excluded,
                                ScorePrecision precision, bool prune,
                                TopKHeap<float, EntityId>* heap,
                                RankScanStats* stats) const;

  // Scores (h, t', r) for each candidate tail t' in `tails`;
  // out[i] = float(Score({h, tails[i], r})). The base implementation
  // loops over Score; models with a fold decomposition override this to
  // fold the (h, r) context once and score all candidates with a single
  // batched matrix-vector product. Must be thread-safe for concurrent
  // calls (used by the parallel trainer shards).
  KGE_HOT_NOALLOC
  virtual void ScoreTailBatch(EntityId head, RelationId relation,
                              std::span<const EntityId> tails,
                              std::span<float> out) const;
  // Scores (h', t, r) for each candidate head h' in `heads`.
  KGE_HOT_NOALLOC
  virtual void ScoreHeadBatch(EntityId tail, RelationId relation,
                              std::span<const EntityId> heads,
                              std::span<float> out) const;

  // Parameter blocks in a fixed order; the index of a block in this
  // vector is its block index in GradientBuffer.
  virtual std::vector<ParameterBlock*> Blocks() = 0;

  // Const view of the same blocks, for serialization and analysis code
  // that only reads parameters (e.g. SaveModelCheckpoint).
  std::vector<const ParameterBlock*> Blocks() const;

  // Hook called before gradient accumulation of each batch.
  virtual void BeginBatch() {}

  // Accumulates dL/dparams for one triple given upstream dscore = dL/dS.
  KGE_HOT_NOALLOC
  virtual void AccumulateGradients(const Triple& triple, float dscore,
                                   GradientBuffer* grads) = 0;

  // Hook called after all triples of a batch; flushes any batch-level
  // gradients (e.g. the learned-ω chain rule) and returns any extra
  // regularization loss incurred this batch.
  virtual double FinishBatch(GradientBuffer* grads) {
    (void)grads;
    return 0.0;
  }

  // Applies the paper's unit-norm constraint to the given entities.
  virtual void NormalizeEntities(std::span<const EntityId> entities) = 0;

  // True when AccumulateGradients only reads model parameters and writes
  // the given GradientBuffer (no shared mutable state), allowing the
  // trainer to compute a batch's gradients concurrently into per-shard
  // buffers. Models with batch-level internal accumulators (e.g. the
  // learned-ω model) must return false.
  virtual bool SupportsParallelGradients() const { return true; }

  // Deterministic (re-)initialization of all parameters.
  virtual void InitParameters(uint64_t seed) = 0;

  int64_t NumParameters() const;
};

}  // namespace kge

#endif  // KGE_MODELS_KGE_MODEL_H_
