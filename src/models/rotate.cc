#include "models/rotate.h"

#include <cmath>
#include <vector>

#include "math/vec_ops.h"
#include "util/check.h"
#include "util/scratch.h"

namespace kge {

RotatE::RotatE(int32_t num_entities, int32_t num_relations, int32_t dim,
               uint64_t seed)
    : name_("RotatE"),
      entities_("RotatE.entities", num_entities, 2, dim),
      phases_("RotatE.phases", num_relations, 1, dim) {
  InitParameters(seed);
}

void RotatE::InitParameters(uint64_t seed) {
  Rng rng(seed);
  entities_.InitXavier(&rng);
  // Phases uniform over the full circle.
  for (int32_t r = 0; r < phases_.num_ids(); ++r) {
    for (float& theta : phases_.Of(r)) {
      theta = rng.NextUniform(-float(M_PI), float(M_PI));
    }
  }
}

void RotatE::RotateHead(std::span<const float> h, RelationId relation,
                        std::span<float> out_re,
                        std::span<float> out_im) const {
  const int32_t d = dim();
  const auto theta = phases_.Of(relation);
  const auto h_re = h.subspan(0, size_t(d));
  const auto h_im = h.subspan(size_t(d), size_t(d));
  for (int32_t i = 0; i < d; ++i) {
    const float c = std::cos(theta[size_t(i)]);
    const float s = std::sin(theta[size_t(i)]);
    out_re[size_t(i)] = h_re[size_t(i)] * c - h_im[size_t(i)] * s;
    out_im[size_t(i)] = h_re[size_t(i)] * s + h_im[size_t(i)] * c;
  }
}

double RotatE::Score(const Triple& triple) const {
  const int32_t d = dim();
  static thread_local std::vector<float> rotated_buf;
  const std::span<float> rotated =
      ScratchSpan(rotated_buf, 2 * static_cast<size_t>(d));
  const std::span<float> hr_re = rotated.subspan(0, size_t(d));
  const std::span<float> hr_im = rotated.subspan(size_t(d), size_t(d));
  RotateHead(entities_.Of(triple.head), triple.relation, hr_re, hr_im);
  const auto t = entities_.Of(triple.tail);
  const auto t_re = t.subspan(0, size_t(d));
  const auto t_im = t.subspan(size_t(d), size_t(d));
  double distance = 0.0;
  for (int32_t i = 0; i < d; ++i) {
    const double dre = double(hr_re[size_t(i)]) - double(t_re[size_t(i)]);
    const double dim_part = double(hr_im[size_t(i)]) - double(t_im[size_t(i)]);
    distance += dre * dre + dim_part * dim_part;
  }
  return -distance;
}

void RotatE::ScoreAllTails(EntityId head, RelationId relation,
                           std::span<float> out) const {
  KGE_CHECK(out.size() == size_t(entities_.num_ids()));
  const int32_t d = dim();
  static thread_local std::vector<float> rotated_buf;
  const std::span<float> rotated =
      ScratchSpan(rotated_buf, 2 * size_t(d));
  const std::span<float> hr_re = rotated.subspan(0, size_t(d));
  const std::span<float> hr_im = rotated.subspan(size_t(d), size_t(d));
  RotateHead(entities_.Of(head), relation, hr_re, hr_im);
  // ||rotated − t||² over the concatenated (re | im) layout.
  for (int32_t e = 0; e < entities_.num_ids(); ++e) {
    out[size_t(e)] =
        static_cast<float>(-LpDistance(rotated, entities_.Of(e), 2));
  }
}

void RotatE::ScoreAllHeads(EntityId tail, RelationId relation,
                           std::span<float> out) const {
  KGE_CHECK(out.size() == size_t(entities_.num_ids()));
  // Rotation is an isometry: ||h∘r − t|| = ||h − t∘r⁻¹||, so rotate the
  // tail backwards once and compare all heads directly.
  const int32_t d = dim();
  const auto theta = phases_.Of(relation);
  const auto t = entities_.Of(tail);
  static thread_local std::vector<float> target_buf;
  const std::span<float> target = ScratchSpan(target_buf, 2 * size_t(d));
  for (int32_t i = 0; i < d; ++i) {
    const float c = std::cos(theta[size_t(i)]);
    const float s = std::sin(theta[size_t(i)]);
    // t ∘ e^{-iθ}
    target[size_t(i)] = t[size_t(i)] * c + t[size_t(d + i)] * s;
    target[size_t(d + i)] = -t[size_t(i)] * s + t[size_t(d + i)] * c;
  }
  for (int32_t e = 0; e < entities_.num_ids(); ++e) {
    out[size_t(e)] =
        static_cast<float>(-LpDistance(entities_.Of(e), target, 2));
  }
}

std::vector<ParameterBlock*> RotatE::Blocks() {
  return {entities_.block(), phases_.block()};
}

void RotatE::AccumulateGradients(const Triple& triple, float dscore,
                                 GradientBuffer* grads) {
  const int32_t d = dim();
  const auto h = entities_.Of(triple.head);
  const auto t = entities_.Of(triple.tail);
  const auto theta = phases_.Of(triple.relation);
  std::span<float> gh = grads->GradFor(kEntityBlock, triple.head);
  std::span<float> gt = grads->GradFor(kEntityBlock, triple.tail);
  std::span<float> gtheta = grads->GradFor(kPhaseBlock, triple.relation);

  for (int32_t i = 0; i < d; ++i) {
    const float c = std::cos(theta[size_t(i)]);
    const float s = std::sin(theta[size_t(i)]);
    const float h_re = h[size_t(i)];
    const float h_im = h[size_t(d + i)];
    const float hr_re = h_re * c - h_im * s;
    const float hr_im = h_re * s + h_im * c;
    const float diff_re = hr_re - t[size_t(i)];
    const float diff_im = hr_im - t[size_t(d + i)];
    // g = dscore * dS/ddiff = -2 * dscore * diff.
    const float g_re = -2.0f * dscore * diff_re;
    const float g_im = -2.0f * dscore * diff_im;
    // Chain into h (inverse rotation of g), t, and θ.
    gh[size_t(i)] += g_re * c + g_im * s;
    gh[size_t(d + i)] += -g_re * s + g_im * c;
    gt[size_t(i)] -= g_re;
    gt[size_t(d + i)] -= g_im;
    gtheta[size_t(i)] += g_re * (-hr_im) + g_im * hr_re;
  }
}

void RotatE::NormalizeEntities(std::span<const EntityId> entities) {
  for (EntityId e : entities) entities_.NormalizeVectorsOf(e);
}

std::unique_ptr<RotatE> MakeRotatE(int32_t num_entities,
                                   int32_t num_relations, int32_t dim,
                                   uint64_t seed) {
  return std::make_unique<RotatE>(num_entities, num_relations, dim, seed);
}

}  // namespace kge
