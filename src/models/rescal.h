// RESCAL (Nickel et al. 2011), cited by the paper (§2.2.2) as the
// bilinear model that NTN generalizes. Included as the full-bilinear
// contrast to the trilinear family: the relation is a dense D×D matrix
// instead of diag(r),
//
//   S(h, t, r) = hᵀ W_r t = Σ_{a,b} h_a · W_r[a,b] · t_b
//
// which is strictly more expressive per relation but costs O(D²)
// parameters and compute per relation — the inefficiency the
// trilinear-product family (Eq. 3) removes.
#ifndef KGE_MODELS_RESCAL_H_
#define KGE_MODELS_RESCAL_H_

#include <memory>
#include <string>

#include "core/embedding_store.h"
#include "models/kge_model.h"
#include "util/hotpath.h"

namespace kge {

class Rescal : public KgeModel {
 public:
  Rescal(int32_t num_entities, int32_t num_relations, int32_t dim,
         uint64_t seed);

  const std::string& name() const override { return name_; }
  int32_t num_entities() const override { return entities_.num_ids(); }
  int32_t num_relations() const override {
    return int32_t(relation_matrices_.num_rows());
  }
  int32_t dim() const { return entities_.dim(); }

  double Score(const Triple& triple) const override;
  KGE_HOT_NOALLOC
  void ScoreAllTails(EntityId head, RelationId relation,
                     std::span<float> out) const override;
  KGE_HOT_NOALLOC
  void ScoreAllHeads(EntityId tail, RelationId relation,
                     std::span<float> out) const override;

  std::vector<ParameterBlock*> Blocks() override;
  KGE_HOT_NOALLOC
  void AccumulateGradients(const Triple& triple, float dscore,
                           GradientBuffer* grads) override;
  void NormalizeEntities(std::span<const EntityId> entities) override;
  void InitParameters(uint64_t seed) override;

  static constexpr size_t kEntityBlock = 0;
  static constexpr size_t kRelationBlock = 1;

 private:
  // W_r stored row-major: W[a * dim + b].
  std::span<const float> MatrixOf(RelationId relation) const {
    return relation_matrices_.Row(relation);
  }

  std::string name_;
  EmbeddingStore entities_;
  ParameterBlock relation_matrices_;  // one row of dim*dim per relation
};

std::unique_ptr<Rescal> MakeRescal(int32_t num_entities,
                                   int32_t num_relations, int32_t dim,
                                   uint64_t seed);

}  // namespace kge

#endif  // KGE_MODELS_RESCAL_H_
