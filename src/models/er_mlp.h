// ER-MLP (Dong et al. 2014, "Knowledge Vault"), the paper's example of
// the neural-network-based category (§2.2.2): concatenate the three
// embedding vectors and score with a multi-layer perceptron,
//
//   S(h, t, r) = w₂ᵀ · tanh(W₁ · [h; t; r] + b₁) + b₂ .
//
// Included to make the paper's three-category taxonomy executable and to
// exhibit the trade-off it describes: a universal approximator that is
// harder to interpret and much more expensive to rank with (no fold
// trick — every candidate needs a full forward pass).
#ifndef KGE_MODELS_ER_MLP_H_
#define KGE_MODELS_ER_MLP_H_

#include <memory>
#include <string>

#include "core/embedding_store.h"
#include "models/kge_model.h"
#include "nn/dense_layer.h"
#include "util/hotpath.h"

namespace kge {

class ErMlp : public KgeModel {
 public:
  ErMlp(int32_t num_entities, int32_t num_relations, int32_t dim,
        int32_t hidden_dim, uint64_t seed);

  const std::string& name() const override { return name_; }
  int32_t num_entities() const override { return entities_.num_ids(); }
  int32_t num_relations() const override { return relations_.num_ids(); }
  int32_t dim() const { return entities_.dim(); }
  int32_t hidden_dim() const { return hidden_.out_dim(); }

  double Score(const Triple& triple) const override;
  KGE_HOT_NOALLOC
  void ScoreAllTails(EntityId head, RelationId relation,
                     std::span<float> out) const override;
  KGE_HOT_NOALLOC
  void ScoreAllHeads(EntityId tail, RelationId relation,
                     std::span<float> out) const override;

  std::vector<ParameterBlock*> Blocks() override;
  KGE_HOT_NOALLOC
  void AccumulateGradients(const Triple& triple, float dscore,
                           GradientBuffer* grads) override;
  void NormalizeEntities(std::span<const EntityId> entities) override;
  void InitParameters(uint64_t seed) override;

  static constexpr size_t kEntityBlock = 0;
  static constexpr size_t kRelationBlock = 1;
  static constexpr size_t kHiddenWeights = 2;
  static constexpr size_t kHiddenBias = 3;
  static constexpr size_t kOutputWeights = 4;
  static constexpr size_t kOutputBias = 5;

 private:
  void Concatenate(std::span<const float> h, std::span<const float> t,
                   std::span<const float> r, std::span<float> x) const;

  std::string name_;
  EmbeddingStore entities_;
  EmbeddingStore relations_;
  DenseLayer hidden_;  // (3*dim) -> hidden, tanh
  DenseLayer output_;  // hidden -> 1, linear
};

std::unique_ptr<ErMlp> MakeErMlp(int32_t num_entities, int32_t num_relations,
                                 int32_t dim, int32_t hidden_dim,
                                 uint64_t seed);

}  // namespace kge

#endif  // KGE_MODELS_ER_MLP_H_
