#include "models/checkpoint.h"

#include "util/failpoint.h"
#include "util/string_utils.h"

namespace kge {
namespace {

// v1 body, after the magic: model name, block count, blocks. No CRC.
Status LoadV1Body(KgeModel* model, BinaryReader* reader) {
  Result<std::string> saved_name = reader->ReadString();
  if (!saved_name.ok()) return saved_name.status();
  if (*saved_name != model->name()) {
    return Status::InvalidArgument(
        StrFormat("checkpoint holds model '%s' but got '%s'",
                  saved_name->c_str(), model->name().c_str()));
  }
  Result<uint32_t> block_count = reader->ReadUint32();
  if (!block_count.ok()) return block_count.status();
  const std::vector<ParameterBlock*> blocks = model->Blocks();
  if (*block_count != blocks.size()) {
    return Status::InvalidArgument("checkpoint block count mismatch");
  }
  for (ParameterBlock* block : blocks) {
    Result<std::string> name = reader->ReadString();
    if (!name.ok()) return name.status();
    Result<uint64_t> rows = reader->ReadUint64();
    if (!rows.ok()) return rows.status();
    Result<uint64_t> dim = reader->ReadUint64();
    if (!dim.ok()) return dim.status();
    if (*name != block->name() || int64_t(*rows) != block->num_rows() ||
        int64_t(*dim) != block->row_dim()) {
      return Status::InvalidArgument(
          StrFormat("checkpoint block '%s' (%llux%llu) does not match "
                    "model block '%s' (%lldx%lld)",
                    name->c_str(), (unsigned long long)*rows,
                    (unsigned long long)*dim, block->name().c_str(),
                    (long long)block->num_rows(),
                    (long long)block->row_dim()));
    }
    KGE_RETURN_IF_ERROR(reader->ReadFloatArray(block->Flat().data(),
                                               block->Flat().size()));
  }
  return reader->Close();
}

}  // namespace

Status WriteCheckpointHeader(CheckpointKind kind, BinaryWriter* writer) {
  KGE_RETURN_IF_ERROR(writer->WriteUint32(kCheckpointMagicV2));
  KGE_RETURN_IF_ERROR(writer->WriteUint32(kCheckpointVersion));
  return writer->WriteUint32(static_cast<uint32_t>(kind));
}

Result<CheckpointKind> ReadCheckpointHeader(BinaryReader* reader,
                                            const std::string& path) {
  Result<uint32_t> magic = reader->ReadUint32();
  if (!magic.ok()) return magic.status();
  if (*magic != kCheckpointMagicV2)
    return Status::InvalidArgument(path + " is not a v2 kge checkpoint");
  Result<uint32_t> version = reader->ReadUint32();
  if (!version.ok()) return version.status();
  if (*version != kCheckpointVersion) {
    return Status::InvalidArgument(
        StrFormat("%s: unsupported checkpoint version %u", path.c_str(),
                  *version));
  }
  Result<uint32_t> kind = reader->ReadUint32();
  if (!kind.ok()) return kind.status();
  if (*kind > static_cast<uint32_t>(CheckpointKind::kTrainingState)) {
    return Status::InvalidArgument(
        StrFormat("%s: unknown checkpoint kind %u", path.c_str(), *kind));
  }
  return static_cast<CheckpointKind>(*kind);
}

Status WriteModelSection(const KgeModel& model, BinaryWriter* writer) {
  KGE_RETURN_IF_ERROR(writer->WriteString(model.name()));
  const std::vector<const ParameterBlock*> blocks = model.Blocks();
  KGE_RETURN_IF_ERROR(writer->WriteUint32(uint32_t(blocks.size())));
  for (const ParameterBlock* block : blocks) {
    KGE_RETURN_IF_ERROR(writer->WriteString(block->name()));
    KGE_RETURN_IF_ERROR(writer->WriteUint64(uint64_t(block->num_rows())));
    KGE_RETURN_IF_ERROR(writer->WriteUint64(uint64_t(block->row_dim())));
    KGE_RETURN_IF_ERROR(writer->WriteFloatArray(block->Flat().data(),
                                                block->Flat().size()));
  }
  return Status::Ok();
}

Status ReadModelSection(KgeModel* model, BinaryReader* reader) {
  Result<std::string> saved_name = reader->ReadString();
  if (!saved_name.ok()) return saved_name.status();
  if (*saved_name != model->name()) {
    return Status::InvalidArgument(
        StrFormat("checkpoint holds model '%s' but got '%s'",
                  saved_name->c_str(), model->name().c_str()));
  }
  Result<uint32_t> block_count = reader->ReadUint32();
  if (!block_count.ok()) return block_count.status();
  const std::vector<ParameterBlock*> blocks = model->Blocks();
  if (*block_count != blocks.size()) {
    return Status::InvalidArgument("checkpoint block count mismatch");
  }
  for (ParameterBlock* block : blocks) {
    Result<std::string> name = reader->ReadString();
    if (!name.ok()) return name.status();
    Result<uint64_t> rows = reader->ReadUint64();
    if (!rows.ok()) return rows.status();
    Result<uint64_t> dim = reader->ReadUint64();
    if (!dim.ok()) return dim.status();
    if (*name != block->name() || int64_t(*rows) != block->num_rows() ||
        int64_t(*dim) != block->row_dim()) {
      return Status::InvalidArgument(
          StrFormat("checkpoint block '%s' (%llux%llu) does not match "
                    "model block '%s' (%lldx%lld)",
                    name->c_str(), (unsigned long long)*rows,
                    (unsigned long long)*dim, block->name().c_str(),
                    (long long)block->num_rows(),
                    (long long)block->row_dim()));
    }
    KGE_RETURN_IF_ERROR(reader->ReadFloatArray(block->Flat().data(),
                                               block->Flat().size()));
  }
  return Status::Ok();
}

Status WriteCheckpointFooter(BinaryWriter* writer) {
  // Snapshot the running CRC before WriteUint32 extends it.
  const uint32_t crc = writer->crc();
  return writer->WriteUint32(crc);
}

Status ReadCheckpointFooter(BinaryReader* reader) {
  const uint32_t computed = reader->crc();
  Result<uint32_t> stored = reader->ReadUint32();
  if (!stored.ok()) return stored.status();
  if (*stored != computed)
    return Status::IoError("checkpoint CRC mismatch (torn or corrupt file)");
  if (reader->remaining() != 0)
    return Status::InvalidArgument("trailing bytes after checkpoint CRC");
  return Status::Ok();
}

Status SaveModelCheckpoint(const KgeModel& model, const std::string& path) {
  KGE_RETURN_IF_ERROR(KGE_FAILPOINT("ckpt.save.begin"));
  BinaryWriter writer;
  KGE_RETURN_IF_ERROR(writer.OpenAtomic(path));
  KGE_RETURN_IF_ERROR(WriteCheckpointHeader(CheckpointKind::kModelOnly,
                                            &writer));
  KGE_RETURN_IF_ERROR(WriteModelSection(model, &writer));
  KGE_RETURN_IF_ERROR(WriteCheckpointFooter(&writer));
  return writer.Close();
}

Status LoadModelCheckpoint(KgeModel* model, const std::string& path) {
  KGE_RETURN_IF_ERROR(KGE_FAILPOINT("ckpt.load.begin"));
  BinaryReader reader;
  KGE_RETURN_IF_ERROR(reader.Open(path));
  Result<uint32_t> magic = reader.ReadUint32();
  if (!magic.ok()) return magic.status();
  if (*magic == kCheckpointMagicV1) return LoadV1Body(model, &reader);
  if (*magic != kCheckpointMagicV2)
    return Status::InvalidArgument(path + " is not a kge checkpoint");
  Result<uint32_t> version = reader.ReadUint32();
  if (!version.ok()) return version.status();
  if (*version != kCheckpointVersion) {
    return Status::InvalidArgument(
        StrFormat("%s: unsupported checkpoint version %u", path.c_str(),
                  *version));
  }
  Result<uint32_t> kind = reader.ReadUint32();
  if (!kind.ok()) return kind.status();
  if (*kind > static_cast<uint32_t>(CheckpointKind::kTrainingState)) {
    return Status::InvalidArgument(
        StrFormat("%s: unknown checkpoint kind %u", path.c_str(), *kind));
  }
  KGE_RETURN_IF_ERROR(ReadModelSection(model, &reader));
  if (static_cast<CheckpointKind>(*kind) == CheckpointKind::kTrainingState) {
    // Skip the training-state section (still feeds the CRC), so model
    // consumers like kge_eval can read trainer checkpoints. Everything
    // between here and the 4-byte footer is training state.
    if (reader.remaining() < sizeof(uint32_t))
      return Status::IoError(path + ": truncated checkpoint");
    KGE_RETURN_IF_ERROR(reader.Skip(reader.remaining() - sizeof(uint32_t)));
  }
  KGE_RETURN_IF_ERROR(ReadCheckpointFooter(&reader));
  return reader.Close();
}

Status VerifyCheckpoint(const std::string& path) {
  BinaryReader reader;
  KGE_RETURN_IF_ERROR(reader.Open(path));
  Result<uint32_t> magic = reader.ReadUint32();
  if (!magic.ok()) return magic.status();
  if (*magic != kCheckpointMagicV2)
    return Status::InvalidArgument(path + " is not a v2 kge checkpoint");
  Result<uint32_t> version = reader.ReadUint32();
  if (!version.ok()) return version.status();
  if (*version != kCheckpointVersion)
    return Status::InvalidArgument(path + ": unsupported checkpoint version");
  if (reader.remaining() < sizeof(uint32_t))
    return Status::IoError(path + ": truncated checkpoint");
  KGE_RETURN_IF_ERROR(reader.Skip(reader.remaining() - sizeof(uint32_t)));
  KGE_RETURN_IF_ERROR(ReadCheckpointFooter(&reader));
  return reader.Close();
}

}  // namespace kge
