#include "models/checkpoint.h"

#include "util/io.h"
#include "util/string_utils.h"

namespace kge {
namespace {

constexpr uint32_t kMagic = 0x4B474531;  // "KGE1"

}  // namespace

Status SaveModelCheckpoint(KgeModel* model, const std::string& path) {
  BinaryWriter writer;
  KGE_RETURN_IF_ERROR(writer.Open(path));
  KGE_RETURN_IF_ERROR(writer.WriteUint32(kMagic));
  KGE_RETURN_IF_ERROR(writer.WriteString(model->name()));
  const std::vector<ParameterBlock*> blocks = model->Blocks();
  KGE_RETURN_IF_ERROR(writer.WriteUint32(uint32_t(blocks.size())));
  for (ParameterBlock* block : blocks) {
    KGE_RETURN_IF_ERROR(writer.WriteString(block->name()));
    KGE_RETURN_IF_ERROR(writer.WriteUint64(uint64_t(block->num_rows())));
    KGE_RETURN_IF_ERROR(writer.WriteUint64(uint64_t(block->row_dim())));
    KGE_RETURN_IF_ERROR(writer.WriteFloatArray(block->Flat().data(),
                                               block->Flat().size()));
  }
  return writer.Close();
}

Status LoadModelCheckpoint(KgeModel* model, const std::string& path) {
  BinaryReader reader;
  KGE_RETURN_IF_ERROR(reader.Open(path));
  Result<uint32_t> magic = reader.ReadUint32();
  if (!magic.ok()) return magic.status();
  if (*magic != kMagic)
    return Status::InvalidArgument(path + " is not a kge checkpoint");
  Result<std::string> saved_name = reader.ReadString();
  if (!saved_name.ok()) return saved_name.status();
  if (*saved_name != model->name()) {
    return Status::InvalidArgument(
        StrFormat("checkpoint holds model '%s' but got '%s'",
                  saved_name->c_str(), model->name().c_str()));
  }
  Result<uint32_t> block_count = reader.ReadUint32();
  if (!block_count.ok()) return block_count.status();
  const std::vector<ParameterBlock*> blocks = model->Blocks();
  if (*block_count != blocks.size()) {
    return Status::InvalidArgument("checkpoint block count mismatch");
  }
  for (ParameterBlock* block : blocks) {
    Result<std::string> name = reader.ReadString();
    if (!name.ok()) return name.status();
    Result<uint64_t> rows = reader.ReadUint64();
    if (!rows.ok()) return rows.status();
    Result<uint64_t> dim = reader.ReadUint64();
    if (!dim.ok()) return dim.status();
    if (*name != block->name() || int64_t(*rows) != block->num_rows() ||
        int64_t(*dim) != block->row_dim()) {
      return Status::InvalidArgument(
          StrFormat("checkpoint block '%s' (%llux%llu) does not match "
                    "model block '%s' (%lldx%lld)",
                    name->c_str(), (unsigned long long)*rows,
                    (unsigned long long)*dim, block->name().c_str(),
                    (long long)block->num_rows(),
                    (long long)block->row_dim()));
    }
    KGE_RETURN_IF_ERROR(reader.ReadFloatArray(block->Flat().data(),
                                              block->Flat().size()));
  }
  return reader.Close();
}

}  // namespace kge
