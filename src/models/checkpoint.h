// Whole-model checkpointing: serializes every parameter block of a
// KgeModel (embeddings, relation matrices, learned ω, MLP weights — the
// block list is the single source of truth) with a shape-checked header,
// so a trained model can be reloaded for serving or analysis.
#ifndef KGE_MODELS_CHECKPOINT_H_
#define KGE_MODELS_CHECKPOINT_H_

#include <string>

#include "models/kge_model.h"
#include "util/status.h"

namespace kge {

// Writes all parameter blocks of `model` to `path`.
Status SaveModelCheckpoint(KgeModel* model, const std::string& path);

// Restores all parameter blocks. The model must have been constructed
// with the same configuration (block names and shapes are verified).
Status LoadModelCheckpoint(KgeModel* model, const std::string& path);

}  // namespace kge

#endif  // KGE_MODELS_CHECKPOINT_H_
