// Whole-model checkpointing: serializes every parameter block of a
// KgeModel (embeddings, relation matrices, learned ω, MLP weights — the
// block list is the single source of truth) with a shape-checked header,
// so a trained model can be reloaded for serving or analysis.
//
// Format v2 ("KGE2") adds crash safety on top of the v1 layout:
//
//   u32    magic 0x4B474532 ("KGE2", little-endian)
//   u32    format version (2)
//   u32    kind: 0 = model only, 1 = full training state
//   string model name
//   u32    block count
//   per block: string name, u64 rows, u64 dim, float[rows*dim] data
//   [kind 1 only] training-state section (layout in
//          train/train_checkpoint.cc; model-only readers skip straight
//          to the footer using the file size)
//   u32    CRC32C over every preceding byte of the file
//
// Files are written atomically (BinaryWriter::OpenAtomic: temp file +
// fsync + rename), so a crash mid-save can never corrupt an existing
// checkpoint, and the trailing CRC detects torn or bit-rotted files at
// load time. v1 files (magic "KGE1": no version/kind fields, no CRC)
// remain loadable.
#ifndef KGE_MODELS_CHECKPOINT_H_
#define KGE_MODELS_CHECKPOINT_H_

#include <cstdint>
#include <string>

#include "models/kge_model.h"
#include "util/io.h"
#include "util/status.h"

namespace kge {

inline constexpr uint32_t kCheckpointMagicV1 = 0x4B474531;  // "KGE1"
inline constexpr uint32_t kCheckpointMagicV2 = 0x4B474532;  // "KGE2"
inline constexpr uint32_t kCheckpointVersion = 2;

enum class CheckpointKind : uint32_t {
  kModelOnly = 0,
  kTrainingState = 1,
};

// Writes all parameter blocks of `model` to `path` (format v2, model
// only). Atomic: `path` either keeps its previous content or holds the
// complete new checkpoint.
Status SaveModelCheckpoint(const KgeModel& model, const std::string& path);

// Restores all parameter blocks from a v1 or v2 checkpoint. The model
// must have been constructed with the same configuration (block names
// and shapes are verified). A v2 training checkpoint also works: the
// training-state section is skipped, so evaluation tools can read any
// checkpoint the trainer produces. v2 files are CRC-verified.
Status LoadModelCheckpoint(KgeModel* model, const std::string& path);

// Structurally validates a v2 checkpoint without needing a model: magic,
// version, and whole-file CRC. This is what the kill-and-resume harness
// runs against the `latest` pointer after every injected crash.
Status VerifyCheckpoint(const std::string& path);

// Low-level pieces of the v2 format, shared with the training-state
// writer in train/train_checkpoint.cc so both checkpoint kinds stay in
// one format.
Status WriteCheckpointHeader(CheckpointKind kind, BinaryWriter* writer);
Status WriteModelSection(const KgeModel& model, BinaryWriter* writer);
Status ReadModelSection(KgeModel* model, BinaryReader* reader);
// Appends the running CRC; call last.
Status WriteCheckpointFooter(BinaryWriter* writer);
// Reads the stored CRC, compares against the reader's running CRC, and
// rejects trailing garbage.
Status ReadCheckpointFooter(BinaryReader* reader);
// Reads magic/version/kind. Fails on v1 files (callers that support v1
// dispatch on the magic themselves).
Result<CheckpointKind> ReadCheckpointHeader(BinaryReader* reader,
                                            const std::string& path);

}  // namespace kge

#endif  // KGE_MODELS_CHECKPOINT_H_
