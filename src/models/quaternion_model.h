// The paper's quaternion-based four-embedding interaction model (§3.4):
// entities and relations are quaternion-valued vectors in H^D, scored by
// S = Re(⟨h, t̄, r⟩) (Eq. 13), realized as the 16-term weight table of
// Eq. (14) on the shared multi-embedding engine.
//
// DeriveQuaternionWeightTable() computes the table *from quaternion
// algebra* (expanding Re(e_i · conj(e_j) · e_k) over the basis
// {1, i, j, k}) rather than from the hardcoded Eq. (14) constants —
// tests assert both agree, mechanically re-deriving the paper's equation.
#ifndef KGE_MODELS_QUATERNION_MODEL_H_
#define KGE_MODELS_QUATERNION_MODEL_H_

#include <memory>

#include "core/weight_table.h"
#include "models/trilinear_models.h"

namespace kge {

// Which Hamilton-product order the score uses; H is noncommutative, so
// these are genuinely different score functions (paper §3.4 notes the
// choice). The paper's Eq. (14) uses kHConjTR.
enum class QuaternionProductOrder {
  kHConjTR,  // Re(h · t̄ · r)
  kHRConjT,  // Re(h · r · t̄)
  kRHConjT,  // Re(r · h · t̄)
};

const char* QuaternionProductOrderToString(QuaternionProductOrder order);

// Expands Re(basis_i · conj(basis_j) · basis_k) into a 4x4x4 table.
WeightTable DeriveQuaternionWeightTable(QuaternionProductOrder order);

// The paper's model: four embedding vectors of `dim` dimensions each.
std::unique_ptr<MultiEmbeddingModel> MakeQuaternionModel(
    int32_t num_entities, int32_t num_relations, int32_t dim, uint64_t seed,
    QuaternionProductOrder order = QuaternionProductOrder::kHConjTR);

}  // namespace kge

#endif  // KGE_MODELS_QUATERNION_MODEL_H_
