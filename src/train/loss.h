// The negative log-likelihood / logistic loss of Eq. (15)/(16):
//   L = log(1 + exp(−y · S)),  y ∈ {−1, +1}
// with dL/dS = −y · σ(−y · S).
#ifndef KGE_TRAIN_LOSS_H_
#define KGE_TRAIN_LOSS_H_

namespace kge {

// Loss for one example with score `s` and label `y` (+1 valid, −1 invalid).
double LogisticLoss(double score, double label);

// dL/dS for the same example.
double LogisticLossGradient(double score, double label);

// Predicted probability that the triple is valid: σ(S).
double PredictedProbability(double score);

// Margin ranking loss over a (positive, negative) score pair — the
// objective the translation-based family (TransE/TransH, §2.2.1) was
// originally trained with:
//   L = max(0, margin − s_pos + s_neg)
double MarginRankingLoss(double positive_score, double negative_score,
                         double margin);

// True when the pair is inside the margin, i.e. gradients flow:
// dL/ds_pos = −1 and dL/ds_neg = +1.
bool MarginIsViolated(double positive_score, double negative_score,
                      double margin);

}  // namespace kge

#endif  // KGE_TRAIN_LOSS_H_
