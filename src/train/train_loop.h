// TrainLoop: the epoch-level control loop shared by Trainer (negative
// sampling) and OneVsAllTrainer — epoch timing, logging, periodic
// validation with early stopping and best-parameter restore, durable
// checkpointing with exact resume, and divergence rollback.
//
// The trainers keep their own batch/gradient inner loops and hand them
// to Run() as a run-one-epoch callback; everything that must behave
// identically across trainers (and must be serialized for crash-safe
// resume) lives here, in exactly one place.
#ifndef KGE_TRAIN_TRAIN_LOOP_H_
#define KGE_TRAIN_TRAIN_LOOP_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "models/kge_model.h"
#include "optim/optimizer.h"
#include "train/train_checkpoint.h"
#include "util/random.h"
#include "util/status.h"

namespace kge {

// Called with the current epoch; returns the validation metric (higher
// = better, typically filtered MRR). Pass nullptr to train for
// max_epochs without early stopping.
using ValidationFn = std::function<double(int epoch)>;

// Cumulative pipeline-stage timings reported by the trainers
// (Trainer::stage_stats() / OneVsAllTrainer::stage_stats()).
// `sample_seconds`/`score_seconds` are busy time summed across the tasks
// of the overlapped stages (sampling prefetch / shard scoring — or flag
// clearing / fused fold+score for 1-vs-all), so with T threads they can
// exceed the wall clock; `merge_seconds`/`apply_seconds` are the caller's
// wall time in those critical-path sections. Occupancy for the bench
// report is stage_seconds / wall_seconds.
struct TrainStageStats {
  double sample_seconds = 0.0;
  double score_seconds = 0.0;
  double merge_seconds = 0.0;
  double apply_seconds = 0.0;
  double wall_seconds = 0.0;
};

struct TrainResult {
  int epochs_run = 0;
  double final_mean_loss = 0.0;
  double best_validation_metric = 0.0;
  int best_epoch = -1;
  bool stopped_early = false;
  // First epoch this process ran (> 0 when resumed from a checkpoint).
  int start_epoch = 0;
  // Divergence-guard rollbacks performed (cumulative across resumes).
  int divergence_rollbacks = 0;
  // Mean per-example loss after each epoch (learning curve). On resume
  // this includes the epochs of the original run, so a resumed run's
  // history is identical to an uninterrupted one.
  std::vector<double> loss_history;
  // Wall-clock seconds per epoch (throughput = triples / epoch_seconds).
  std::vector<double> epoch_seconds;
  // (epoch, metric) for every validation performed.
  std::vector<std::pair<int, double>> validation_history;
};

struct TrainLoopConfig {
  // Stamped into checkpoints and verified on resume.
  std::string trainer_kind;
  int max_epochs = 500;
  int eval_every_epochs = 50;
  int patience_epochs = 100;
  bool restore_best = true;
  uint64_t seed = 1234;
  int log_every_epochs = 0;
  // Name used in log lines (typically the model name).
  std::string log_name;
  // Items processed per epoch, for throughput log lines (0 = omit).
  int64_t log_throughput_items = 0;
  CheckpointingOptions checkpointing;
  DivergenceGuardOptions divergence;
};

class TrainLoop {
 public:
  // `model` and `optimizer` must outlive the loop. The optimizer must be
  // the one updating the model inside `run_epoch`.
  TrainLoop(KgeModel* model, Optimizer* optimizer, TrainLoopConfig config);

  // Runs epochs until max_epochs, early stop, or an error. `run_epoch`
  // performs one full pass and returns its mean loss, drawing epoch-
  // level randomness (shuffles) only from the passed Rng. A non-null
  // `batch_counter` is the trainer's DeriveStreamSeed counter: it is
  // restored before the first epoch on resume and persisted into every
  // checkpoint.
  Result<TrainResult> Run(const std::function<double(Rng*)>& run_epoch,
                          const ValidationFn& validate,
                          uint64_t* batch_counter);

 private:
  // True when any parameter (or the epoch loss) went non-finite.
  bool HasNonFiniteState(double mean_loss) const;

  std::vector<std::vector<float>> SnapshotParameters() const;
  void RestoreParameters(const std::vector<std::vector<float>>& snapshot);

  KgeModel* model_;
  Optimizer* optimizer_;
  TrainLoopConfig config_;
};

}  // namespace kge

#endif  // KGE_TRAIN_TRAIN_LOOP_H_
