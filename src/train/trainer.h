// Trainer: the full §4/§5.3 training loop — shuffled mini-batches,
// negative sampling, logistic loss, L2 regularization, an optimizer over
// the model's parameter blocks, the unit-norm entity constraint, and
// periodic validation with early stopping (restoring the best
// checkpoint).
//
// The epoch inner loop is a software pipeline (DESIGN.md §5f): while
// batch N's shards are scored, batch N+1..N+depth-1's negatives are
// sampled into double-buffered per-batch sample buffers by otherwise
// idle pool workers. Sampling is the only stage that reads no model
// parameters (each shard draws from an independent
// DeriveStreamSeed(seed, batch, shard) stream), so the overlap is
// bit-identical to the unpipelined loop by construction — pipeline depth
// and thread count can never change losses or final parameters. The only
// overlap that cannot be deterministic — merging shard gradients in
// completion order while later shards still score — is the opt-in
// `deterministic = false` fast mode.
#ifndef KGE_TRAIN_TRAINER_H_
#define KGE_TRAIN_TRAINER_H_

#include <atomic>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "kg/negative_sampler.h"
#include "kg/triple.h"
#include "models/kge_model.h"
#include "optim/optimizer.h"
#include "train/train_loop.h"
#include "util/hotpath.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace kge {

enum class LossKind {
  // Negative log-likelihood / logistic loss of Eq. (15)/(16) — the
  // paper's objective.
  kLogistic,
  // Margin ranking loss over (positive, negative) pairs — the
  // translation family's native objective (Bordes et al.).
  kMarginRanking,
};

// True worst-case distinct gradient rows per block for `positives`
// examples with `negatives` corruptions each: head + tail rows per
// positive, one fresh corrupted entity per negative, plus one auxiliary
// row (a model's shared weight row accumulated in FinishBatch). Used to
// pre-Reserve every GradientBuffer so the steady state — at any thread
// count — performs zero heap allocations.
constexpr size_t WorstCaseGradRows(size_t positives, size_t negatives) {
  return positives * (2 + negatives) + 1;
}

struct TrainerOptions {
  int max_epochs = 500;
  int batch_size = 512;
  LossKind loss = LossKind::kLogistic;
  // Margin γ for LossKind::kMarginRanking.
  double margin = 1.0;
  int num_negatives = 1;  // negatives per positive (paper: 1)
  // When true, each negative example's loss (and gradient) is scaled by
  // 1/num_negatives so that the positive:negative gradient mass stays
  // balanced as num_negatives grows. Eq. (15) sums unscaled; this option
  // is the standard variant that lets many negatives help rather than
  // drown the positives at a fixed epoch budget.
  bool normalize_negatives = false;
  // Self-adversarial negative weighting (Sun et al., RotatE): with
  // num_negatives > 1, weight each negative's loss by
  // softmax(alpha * score) across the positive's negatives, focusing
  // gradient on the hardest (highest-scoring) corruptions. Overrides
  // normalize_negatives (the softmax weights already sum to 1).
  bool self_adversarial = false;
  double adversarial_temperature = 1.0;
  std::string optimizer = "adam";
  double learning_rate = 1e-3;
  // L2 regularization strength λ of Eq. (16); 0 disables.
  double l2_lambda = 0.0;
  // Unit L2-norm constraint on entity embedding vectors after each
  // iteration (paper §5.3).
  bool unit_norm_entities = true;
  // Corruption-side policy for negative sampling.
  CorruptionSide corruption_side = CorruptionSide::kUniform;
  // Validation cadence and patience, in epochs (paper: 50 / 100).
  int eval_every_epochs = 50;
  int patience_epochs = 100;
  // Restore the best-validation parameters at the end of training.
  bool restore_best = true;
  uint64_t seed = 1234;
  // Log progress every N epochs (0 = silent).
  int log_every_epochs = 0;
  // Worker threads; 0 auto-detects std::thread::hardware_concurrency()
  // (ResolveNumThreads). Every batch is split into fixed virtual shards
  // of `grad_shard_size` positives, each with an independent seed-derived
  // sampling stream and its own gradient buffer; shard gradients are
  // merged in shard order and applied with per-row-independent updates.
  // Threads only decide how many shards run concurrently, so epoch
  // losses and final parameters are bit-identical for every num_threads.
  // Models whose AccumulateGradients is not thread-safe
  // (KgeModel::SupportsParallelGradients) compute their shards serially
  // but keep the same shard structure and results.
  int num_threads = 1;
  // Positives per virtual gradient shard. Part of the numerics: changing
  // it regroups the sampling streams (results stay deterministic for any
  // thread count, but differ across shard sizes).
  int grad_shard_size = 64;
  // Batches whose negative samples may be in flight at once (1–3).
  // Depth d > 1 overlaps sampling of batches N+1..N+d-1 with the
  // score/merge/apply stages of batch N. Sampling streams are keyed by
  // batch index, never by schedule, so the depth cannot change results.
  int pipeline_depth = 2;
  // When false AND the model supports parallel gradients, shard
  // gradients are merged into the batch accumulator in completion order
  // (streaming, overlapped with later shards' scoring) instead of shard
  // order. Race-free, but float summation order then depends on thread
  // timing, so results are only equivalent to ~ulp precision — see the
  // loss-curve-equivalence test. The default keeps the bit-identical
  // shard-order merge.
  bool deterministic = true;
  // Durable checkpointing + exact resume (off unless `dir` is set) and
  // non-finite-loss rollback; see train/train_checkpoint.h.
  CheckpointingOptions checkpointing;
  DivergenceGuardOptions divergence;
};

// TrainResult and ValidationFn live in train/train_loop.h (the epoch
// loop shared with OneVsAllTrainer).

class Trainer {
 public:
  // `validate` is called with the current epoch and must return the
  // validation metric (higher = better, typically filtered MRR); pass
  // nullptr to train for max_epochs without early stopping.
  using ValidationFn = ::kge::ValidationFn;

  Trainer(KgeModel* model, const TrainerOptions& options);

  // Trains on `train_triples` (entity/relation ids must be within the
  // model's ranges).
  Result<TrainResult> Train(const std::vector<Triple>& train_triples,
                            const ValidationFn& validate);

  // Runs a single epoch and returns its mean per-example loss (exposed
  // for tests and custom loops).
  double RunEpoch(const std::vector<Triple>& train_triples,
                  const NegativeSampler& sampler, Rng* rng);

  // Cumulative stage timings since construction (or the last reset);
  // see TrainStageStats for the busy-vs-wall semantics per field.
  TrainStageStats stage_stats() const;
  void ResetStageStats();

 private:
  // One batch's presampled negatives: `num_negatives` triples per
  // positive, contiguous in batch order. `depth` buffers rotate so
  // sampling for batch N+depth can fill the buffer batch N just
  // consumed.
  struct SampledBatch {
    std::vector<Triple> negatives;
  };
  // Context records handed to the pool's POD stage queue; member storage
  // (not stack) because prefetch tasks outlive the scheduling frame.
  struct SampleCtx {
    Trainer* trainer;
    size_t batch_index;
  };

  static void SampleTrampoline(void* ctx, size_t begin, size_t end);
  static void ComputeTrampoline(void* ctx, size_t begin, size_t end);

  // Pipeline stage roots (KGE_HOT_NOALLOC: steady state may not
  // allocate; scripts/hotpath_check.py audits their call graphs).
  //
  // Sample stage: draws the negatives for `batch_index`'s shard `shard`
  // from its own Rng(DeriveStreamSeed(seed, batch, shard)) stream into
  // the batch's rotating buffer. Parameter-independent, so it may run
  // arbitrarily far ahead of scoring.
  KGE_HOT_NOALLOC
  void SampleShard(size_t batch_index, size_t shard);
  // Score stage: clears shard state and accumulates the shard's loss
  // gradients from the presampled negatives of the current batch.
  KGE_HOT_NOALLOC
  void ComputeShard(size_t shard);
  // Fast-mode merge stage: enqueues `shard` for merging; at most one
  // task drains the queue at a time (merge_mutex_ hands the accumulator
  // off), overlapping the merge with later shards' scoring.
  KGE_HOT_NOALLOC
  void StreamingMergeShard(size_t shard) KGE_EXCLUDES(merge_mutex_);
  // Adds one shard buffer's rows into grads_ (registering new rows —
  // only ever called with the accumulator owned exclusively).
  KGE_HOT_NOALLOC
  void MergeOneShard(size_t shard);

  // Resizes + schedules the sample-stage tasks for `batch_index` into
  // its buffer's completion group.
  void ScheduleSampling(size_t batch_index);

  // Accumulates loss gradients (and L2) for order[begin..end) into
  // `grads`; adds to *loss and *examples. `negatives` holds
  // num_negatives presampled corruptions per positive, indexed relative
  // to `begin`; each positive is scored together with its negatives
  // through the model's batched scoring API (at most two fold+GEMV calls
  // per positive). Thread-compatible: touches only the given buffer and
  // per-thread scratch.
  KGE_HOT_NOALLOC
  void ProcessRange(const std::vector<Triple>& train_triples,
                    const std::vector<size_t>& order, size_t begin,
                    size_t end, std::span<const Triple> negatives,
                    GradientBuffer* grads, double* loss,
                    size_t* examples) const;
  // Adds shard buffers [0, num_shards)'s gradients into grads_: rows are
  // registered serially, then accumulated with simd::Axpy in shard order
  // per row, hash-partitioned across the pool. Bit-identical for every
  // thread count.
  KGE_HOT_NOALLOC
  void MergeShardGradients(size_t num_shards);

  void AddStageNanos(int stage, double seconds) {
    stage_nanos_[stage].fetch_add(int64_t(seconds * 1e9),
                                  std::memory_order_relaxed);
  }

  KgeModel* model_;
  TrainerOptions options_;
  std::unique_ptr<Optimizer> optimizer_;
  std::unique_ptr<GradientBuffer> grads_;
  // Worker pool for the pipeline stages, the merge, and the optimizer
  // apply. Always constructed; 1 thread means "run inline".
  std::unique_ptr<ThreadPool> pool_;
  // Per-virtual-shard state, grown to the epoch high-water shard count.
  std::vector<std::unique_ptr<GradientBuffer>> shard_grads_;
  std::vector<double> shard_loss_;
  std::vector<size_t> shard_examples_;
  uint64_t batch_counter_ = 0;
  // Epoch-level scratch reused across epochs (zero steady-state allocs).
  std::vector<size_t> order_;
  std::vector<EntityId> touched_entities_;
  std::vector<ParameterBlock*> blocks_;

  // ---- Pipeline state ----
  size_t depth_ = 1;  // clamp(options_.pipeline_depth)
  std::vector<SampledBatch> sampled_;  // depth_ rotating buffers
  std::vector<std::unique_ptr<ThreadPool::StageGroup>> sample_groups_;
  std::vector<SampleCtx> sample_ctx_;
  ThreadPool::StageGroup compute_group_;
  // Current-epoch context for stage tasks (set in RunEpoch, constant
  // while any task is in flight).
  const std::vector<Triple>* epoch_triples_ = nullptr;
  const NegativeSampler* epoch_sampler_ = nullptr;
  uint64_t epoch_base_counter_ = 0;
  // Current-batch window for ComputeShard (set before compute tasks are
  // scheduled, constant until their WaitStage).
  size_t cur_batch_index_ = 0;
  size_t cur_begin_ = 0;
  size_t cur_end_ = 0;
  bool streaming_merge_ = false;

  // Fast-mode streaming merge: completed shard indices queue up here;
  // exactly one task at a time owns grads_ and drains the queue.
  Mutex merge_mutex_;
  std::vector<size_t> merge_queue_ KGE_GUARDED_BY(merge_mutex_);
  size_t merge_queue_size_ KGE_GUARDED_BY(merge_mutex_) = 0;
  size_t merge_cursor_ KGE_GUARDED_BY(merge_mutex_) = 0;
  bool merge_active_ KGE_GUARDED_BY(merge_mutex_) = false;

  // Stage timing (sample/score/merge/apply; see TrainStageStats).
  std::atomic<int64_t> stage_nanos_[4] = {};
  std::atomic<int64_t> wall_nanos_{0};
};

}  // namespace kge

#endif  // KGE_TRAIN_TRAINER_H_
