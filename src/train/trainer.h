// Trainer: the full §4/§5.3 training loop — shuffled mini-batches,
// negative sampling, logistic loss, L2 regularization, an optimizer over
// the model's parameter blocks, the unit-norm entity constraint, and
// periodic validation with early stopping (restoring the best
// checkpoint).
#ifndef KGE_TRAIN_TRAINER_H_
#define KGE_TRAIN_TRAINER_H_

#include <functional>
#include <string>
#include <vector>

#include "kg/negative_sampler.h"
#include "kg/triple.h"
#include "models/kge_model.h"
#include "optim/optimizer.h"
#include "train/train_loop.h"
#include "util/hotpath.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace kge {

enum class LossKind {
  // Negative log-likelihood / logistic loss of Eq. (15)/(16) — the
  // paper's objective.
  kLogistic,
  // Margin ranking loss over (positive, negative) pairs — the
  // translation family's native objective (Bordes et al.).
  kMarginRanking,
};

struct TrainerOptions {
  int max_epochs = 500;
  int batch_size = 512;
  LossKind loss = LossKind::kLogistic;
  // Margin γ for LossKind::kMarginRanking.
  double margin = 1.0;
  int num_negatives = 1;  // negatives per positive (paper: 1)
  // When true, each negative example's loss (and gradient) is scaled by
  // 1/num_negatives so that the positive:negative gradient mass stays
  // balanced as num_negatives grows. Eq. (15) sums unscaled; this option
  // is the standard variant that lets many negatives help rather than
  // drown the positives at a fixed epoch budget.
  bool normalize_negatives = false;
  // Self-adversarial negative weighting (Sun et al., RotatE): with
  // num_negatives > 1, weight each negative's loss by
  // softmax(alpha * score) across the positive's negatives, focusing
  // gradient on the hardest (highest-scoring) corruptions. Overrides
  // normalize_negatives (the softmax weights already sum to 1).
  bool self_adversarial = false;
  double adversarial_temperature = 1.0;
  std::string optimizer = "adam";
  double learning_rate = 1e-3;
  // L2 regularization strength λ of Eq. (16); 0 disables.
  double l2_lambda = 0.0;
  // Unit L2-norm constraint on entity embedding vectors after each
  // iteration (paper §5.3).
  bool unit_norm_entities = true;
  // Corruption-side policy for negative sampling.
  CorruptionSide corruption_side = CorruptionSide::kUniform;
  // Validation cadence and patience, in epochs (paper: 50 / 100).
  int eval_every_epochs = 50;
  int patience_epochs = 100;
  // Restore the best-validation parameters at the end of training.
  bool restore_best = true;
  uint64_t seed = 1234;
  // Log progress every N epochs (0 = silent).
  int log_every_epochs = 0;
  // Gradient-computation threads. Every batch is split into fixed
  // virtual shards of `grad_shard_size` positives, each with an
  // independent seed-derived sampling stream and its own gradient
  // buffer; shard gradients are merged in shard order and applied with
  // per-row-independent updates. Threads only decide how many shards run
  // concurrently, so epoch losses and final parameters are bit-identical
  // for every num_threads. Models whose AccumulateGradients is not
  // thread-safe (KgeModel::SupportsParallelGradients) compute their
  // shards serially but keep the same shard structure and results.
  int num_threads = 1;
  // Positives per virtual gradient shard. Part of the numerics: changing
  // it regroups the sampling streams (results stay deterministic for any
  // thread count, but differ across shard sizes).
  int grad_shard_size = 64;
  // Durable checkpointing + exact resume (off unless `dir` is set) and
  // non-finite-loss rollback; see train/train_checkpoint.h.
  CheckpointingOptions checkpointing;
  DivergenceGuardOptions divergence;
};

// TrainResult and ValidationFn live in train/train_loop.h (the epoch
// loop shared with OneVsAllTrainer).

class Trainer {
 public:
  // `validate` is called with the current epoch and must return the
  // validation metric (higher = better, typically filtered MRR); pass
  // nullptr to train for max_epochs without early stopping.
  using ValidationFn = ::kge::ValidationFn;

  Trainer(KgeModel* model, const TrainerOptions& options);

  // Trains on `train_triples` (entity/relation ids must be within the
  // model's ranges).
  Result<TrainResult> Train(const std::vector<Triple>& train_triples,
                            const ValidationFn& validate);

  // Runs a single epoch and returns its mean per-example loss (exposed
  // for tests and custom loops).
  double RunEpoch(const std::vector<Triple>& train_triples,
                  const NegativeSampler& sampler, Rng* rng);

 private:
  // Accumulates loss gradients (and L2) for order[begin..end) into
  // `grads`; adds to *loss and *examples. Negatives are sampled up front
  // per positive and scored together with it through the model's batched
  // scoring API (at most two fold+GEMV calls per positive). Thread-
  // compatible: touches only the given buffer, rng, and per-thread
  // scratch.
  KGE_HOT_NOALLOC
  void ProcessRange(const std::vector<Triple>& train_triples,
                    const std::vector<size_t>& order, size_t begin,
                    size_t end, const NegativeSampler& sampler, Rng* rng,
                    GradientBuffer* grads, double* loss,
                    size_t* examples) const;
  // Adds shard buffers [0, num_shards)'s gradients into grads_: rows are
  // registered serially, then accumulated with simd::Axpy in shard order
  // per row, hash-partitioned across the pool. Bit-identical for every
  // thread count.
  KGE_HOT_NOALLOC
  void MergeShardGradients(size_t num_shards);

  KgeModel* model_;
  TrainerOptions options_;
  std::unique_ptr<Optimizer> optimizer_;
  std::unique_ptr<GradientBuffer> grads_;
  // Worker pool for shard gradients, the merge, and the optimizer apply
  // (num_threads > 1).
  std::unique_ptr<ThreadPool> pool_;
  // Per-virtual-shard state, grown to the high-water shard count once.
  std::vector<std::unique_ptr<GradientBuffer>> shard_grads_;
  std::vector<double> shard_loss_;
  std::vector<size_t> shard_examples_;
  uint64_t batch_counter_ = 0;
  // Epoch-level scratch reused across epochs (zero steady-state allocs).
  std::vector<size_t> order_;
  std::vector<EntityId> touched_entities_;
  std::vector<ParameterBlock*> blocks_;
};

}  // namespace kge

#endif  // KGE_TRAIN_TRAINER_H_
