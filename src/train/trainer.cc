#include "train/trainer.h"

#include <algorithm>
#include <utility>

#include "math/activations.h"
#include "math/vec_ops.h"
#include "optim/constraints.h"
#include "train/loss.h"
#include "util/check.h"
#include "util/scratch.h"
#include "util/timer.h"

namespace kge {

namespace {
// Indices into Trainer::stage_nanos_.
constexpr int kStageSample = 0;
constexpr int kStageScore = 1;
constexpr int kStageMerge = 2;
constexpr int kStageApply = 3;
}  // namespace

Trainer::Trainer(KgeModel* model, const TrainerOptions& options)
    : model_(model), options_(options) {
  KGE_CHECK(model_ != nullptr);
  KGE_CHECK(options_.batch_size > 0 && options_.num_negatives >= 0);
  KGE_CHECK(options_.num_threads >= 0 && options_.grad_shard_size >= 1);
  KGE_CHECK(options_.pipeline_depth >= 1 && options_.pipeline_depth <= 8);
  options_.num_threads = int(ResolveNumThreads(options_.num_threads));
  blocks_ = model_->Blocks();
  Result<std::unique_ptr<Optimizer>> optimizer =
      MakeOptimizer(options_.optimizer, blocks_, options_.learning_rate);
  KGE_CHECK_OK(optimizer.status());
  optimizer_ = std::move(*optimizer);
  grads_ = std::make_unique<GradientBuffer>(blocks_);
  // Reserving the true worst case up front makes the steady state
  // allocation-free from the first batch — at every thread count.
  const size_t batch_size = size_t(options_.batch_size);
  const size_t negatives = size_t(options_.num_negatives);
  grads_->Reserve(WorstCaseGradRows(batch_size, negatives));
  // The pool runs the pipeline stages (sampling prefetch, shard
  // gradients, merge, optimizer apply); 1 thread degenerates to inline
  // execution. Shard buffers themselves are grown on first use (their
  // count depends on batch size, not thread count).
  pool_ = std::make_unique<ThreadPool>(size_t(options_.num_threads));
  depth_ = size_t(options_.pipeline_depth);
  sampled_.resize(depth_);
  for (SampledBatch& buffer : sampled_) {
    buffer.negatives.reserve(batch_size * negatives);
  }
  sample_ctx_.resize(depth_);
  sample_groups_.reserve(depth_);
  for (size_t d = 0; d < depth_; ++d) {
    sample_groups_.push_back(std::make_unique<ThreadPool::StageGroup>());
  }
  // Pre-size the pool's stage ring for the worst concurrent task load:
  // one compute task per shard plus `depth_` batches of sample tasks.
  const size_t shards_per_batch =
      (batch_size + size_t(options_.grad_shard_size) - 1) /
      size_t(options_.grad_shard_size);
  pool_->ReserveStageTasks(shards_per_batch * (depth_ + 1) + 64);
}

void Trainer::ProcessRange(const std::vector<Triple>& train_triples,
                           const std::vector<size_t>& order, size_t begin,
                           size_t end, std::span<const Triple> negatives,
                           GradientBuffer* grads, double* loss,
                           size_t* examples) const {
  L2Regularizer regularizer(options_.l2_lambda);
  const size_t negatives_per_positive = size_t(options_.num_negatives);
  // Per-thread scratch: each container grows to its high-water mark once
  // per thread, so the steady-state inner loop performs zero heap
  // allocations.
  static thread_local std::vector<EntityId> tail_ids;
  static thread_local std::vector<EntityId> head_ids;
  // Per negative: (group slot << 1) | (1 iff head-side).
  static thread_local std::vector<uint32_t> negative_slot;
  static thread_local std::vector<float> tail_scores_buf;
  static thread_local std::vector<float> head_scores_buf;
  static thread_local std::vector<double> adv_logits_buf;
  static thread_local std::vector<double> adv_weights_buf;
  static thread_local std::vector<std::pair<size_t, int64_t>> reg_rows;

  auto add_l2 = [&](const Triple& triple) {
    if (options_.l2_lambda <= 0.0) return;
    // Regularize exactly the parameter rows this example's score read
    // (Eq. 16's per-triple Θ). Block indices 0/1 = entity/relation by the
    // KgeModel convention.
    reg_rows.clear();
    // kge-hotpath: allow(3 slots in a reused thread_local buffer)
    reg_rows.emplace_back(0, triple.head);
    // kge-hotpath: allow(3 slots in a reused thread_local buffer)
    reg_rows.emplace_back(0, triple.tail);
    // kge-hotpath: allow(3 slots in a reused thread_local buffer)
    reg_rows.emplace_back(1, triple.relation);
    *loss += regularizer.Accumulate(grads, reg_rows);
  };
  const double negative_scale =
      options_.normalize_negatives && options_.num_negatives > 1
          ? 1.0 / double(options_.num_negatives)
          : 1.0;
  const bool adversarial =
      options_.self_adversarial && options_.num_negatives > 1;

  for (size_t i = begin; i < end; ++i) {
    const Triple& positive = train_triples[order[i]];
    // The presampled corruptions for this positive, then the positive
    // and every negative scored with at most two batched calls:
    // tail-side corruptions share the positive's (h, r) fold, head-side
    // corruptions its (t, r) fold. The positive rides along as tail
    // candidate 0.
    const std::span<const Triple> negs = negatives.subspan(
        (i - begin) * negatives_per_positive, negatives_per_positive);
    tail_ids.clear();
    head_ids.clear();
    negative_slot.clear();
    // kge-hotpath: allow(reused thread_local buffers; num_negatives high-water)
    tail_ids.push_back(positive.tail);
    for (const Triple& negative : negs) {
      if (negative.head == positive.head) {
        // kge-hotpath: allow(reused thread_local buffers; num_negatives high-water)
        negative_slot.push_back(uint32_t(tail_ids.size()) << 1);
        // kge-hotpath: allow(reused thread_local buffers; num_negatives high-water)
        tail_ids.push_back(negative.tail);
      } else {
        // kge-hotpath: allow(reused thread_local buffers; num_negatives high-water)
        negative_slot.push_back((uint32_t(head_ids.size()) << 1) | 1u);
        // kge-hotpath: allow(reused thread_local buffers; num_negatives high-water)
        head_ids.push_back(negative.head);
      }
    }
    const std::span<float> tail_scores =
        ScratchSpan(tail_scores_buf, tail_ids.size());
    model_->ScoreTailBatch(positive.head, positive.relation, tail_ids,
                           tail_scores);
    const std::span<float> head_scores =
        ScratchSpan(head_scores_buf, head_ids.size());
    if (!head_ids.empty()) {
      model_->ScoreHeadBatch(positive.tail, positive.relation, head_ids,
                             head_scores);
    }
    const double positive_score = double(tail_scores[0]);
    auto negative_score = [&](size_t n) {
      const uint32_t slot = negative_slot[n];
      return double((slot & 1u) ? head_scores[slot >> 1]
                                : tail_scores[slot >> 1]);
    };

    if (options_.loss == LossKind::kLogistic) {
      *loss += LogisticLoss(positive_score, 1.0);
      model_->AccumulateGradients(
          positive,
          static_cast<float>(LogisticLossGradient(positive_score, 1.0)),
          grads);
      add_l2(positive);
      ++*examples;
      const std::span<double> adv_weights =
          ScratchSpan(adv_weights_buf, negs.size());
      if (adversarial) {
        // Weight the negatives by softmax(alpha * score): hard (highly
        // scored) corruptions dominate the gradient. The weights reuse
        // the batched scores — no second scoring pass.
        const std::span<double> adv_logits =
            ScratchSpan(adv_logits_buf, negs.size());
        for (size_t n = 0; n < negs.size(); ++n) {
          adv_logits[n] = options_.adversarial_temperature * negative_score(n);
        }
        Softmax(adv_logits, adv_weights);
      }
      for (size_t n = 0; n < negs.size(); ++n) {
        // Adversarial weights are treated as constants (no gradient
        // through the softmax), as in the original formulation.
        const double scale = adversarial ? adv_weights[n] : negative_scale;
        const double score = negative_score(n);
        *loss += scale * LogisticLoss(score, -1.0);
        model_->AccumulateGradients(
            negs[n], static_cast<float>(scale * LogisticLossGradient(score, -1.0)),
            grads);
        add_l2(negs[n]);
        ++*examples;
      }
    } else {
      // Margin ranking: one hinge per (positive, negative) pair.
      for (size_t n = 0; n < negs.size(); ++n) {
        const double score = negative_score(n);
        *loss += MarginRankingLoss(positive_score, score, options_.margin);
        ++*examples;
        if (MarginIsViolated(positive_score, score, options_.margin)) {
          model_->AccumulateGradients(positive, -1.0f, grads);
          model_->AccumulateGradients(negs[n], 1.0f, grads);
        }
        add_l2(negs[n]);
      }
      add_l2(positive);
    }
  }
}

void Trainer::SampleShard(size_t batch_index, size_t shard) {
  SampledBatch& buffer = sampled_[batch_index % depth_];
  const size_t batch_size = size_t(options_.batch_size);
  const size_t shard_size = size_t(options_.grad_shard_size);
  const size_t negatives_per_positive = size_t(options_.num_negatives);
  const size_t begin = batch_index * batch_size;
  const size_t end = std::min(order_.size(), begin + batch_size);
  const size_t shard_begin = begin + shard * shard_size;
  const size_t shard_end = std::min(end, shard_begin + shard_size);
  // Independent sampling stream per (seed, batch, shard) — the stream
  // assignment depends only on the shard structure, never on the thread
  // count, the pipeline depth, or how far ahead this prefetch runs.
  Rng rng(DeriveStreamSeed(options_.seed,
                           epoch_base_counter_ + batch_index + 1, shard));
  // Thread-local staging keeps SampleMany appends off the shared buffer;
  // grows to shard_size * num_negatives once per thread.
  static thread_local std::vector<Triple> scratch;
  scratch.clear();
  for (size_t i = shard_begin; i < shard_end; ++i) {
    // SampleMany appends exactly num_negatives corruptions per positive.
    epoch_sampler_->SampleMany((*epoch_triples_)[order_[i]],
                               options_.num_negatives, &rng, &scratch);
  }
  std::copy(scratch.begin(), scratch.end(),
            buffer.negatives.begin() +
                (shard_begin - begin) * negatives_per_positive);
}

void Trainer::ComputeShard(size_t shard) {
  const size_t shard_size = size_t(options_.grad_shard_size);
  const size_t negatives_per_positive = size_t(options_.num_negatives);
  const size_t begin = cur_begin_ + shard * shard_size;
  const size_t end = std::min(cur_end_, begin + shard_size);
  shard_grads_[shard]->Clear();
  shard_loss_[shard] = 0.0;
  shard_examples_[shard] = 0;
  const SampledBatch& buffer = sampled_[cur_batch_index_ % depth_];
  const std::span<const Triple> negatives(
      buffer.negatives.data() + (begin - cur_begin_) * negatives_per_positive,
      (end - begin) * negatives_per_positive);
  ProcessRange(*epoch_triples_, order_, begin, end, negatives,
               shard_grads_[shard].get(), &shard_loss_[shard],
               &shard_examples_[shard]);
}

void Trainer::MergeOneShard(size_t shard) {
  shard_grads_[shard]->ForEach(
      [&](size_t block, int64_t row, std::span<const float> src) {
        // GradFor registers the row on first touch (zero-filled), so the
        // streaming merge needs no separate registration pass.
        Axpy(1.0f, src, grads_->GradFor(block, row));
      });
}

void Trainer::StreamingMergeShard(size_t shard) {
  {
    MutexLock lock(merge_mutex_);
    merge_queue_[merge_queue_size_++] = shard;
    if (merge_active_) return;  // The active merger will drain this too.
    merge_active_ = true;
  }
  // This task now owns grads_ exclusively; drain until the queue is
  // empty. The mutex hand-off orders every merge after the previous one,
  // so the accumulator is never written concurrently (race-free) — only
  // the shard summation ORDER depends on completion timing, which is
  // exactly the documented deterministic=false trade.
  for (;;) {
    size_t next;
    {
      MutexLock lock(merge_mutex_);
      if (merge_cursor_ == merge_queue_size_) {
        merge_active_ = false;
        return;
      }
      next = merge_queue_[merge_cursor_++];
    }
    MergeOneShard(next);
  }
}

void Trainer::SampleTrampoline(void* ctx, size_t begin, size_t end) {
  auto* sample = static_cast<SampleCtx*>(ctx);
  Stopwatch watch;
  for (size_t s = begin; s < end; ++s) {
    sample->trainer->SampleShard(sample->batch_index, s);
  }
  sample->trainer->AddStageNanos(kStageSample, watch.ElapsedSeconds());
}

void Trainer::ComputeTrampoline(void* ctx, size_t begin, size_t end) {
  auto* trainer = static_cast<Trainer*>(ctx);
  for (size_t s = begin; s < end; ++s) {
    {
      Stopwatch watch;
      trainer->ComputeShard(s);
      trainer->AddStageNanos(kStageScore, watch.ElapsedSeconds());
    }
    if (trainer->streaming_merge_) {
      Stopwatch watch;
      trainer->StreamingMergeShard(s);
      trainer->AddStageNanos(kStageMerge, watch.ElapsedSeconds());
    }
  }
}

void Trainer::ScheduleSampling(size_t batch_index) {
  const size_t batch_size = size_t(options_.batch_size);
  const size_t shard_size = size_t(options_.grad_shard_size);
  const size_t begin = batch_index * batch_size;
  const size_t end = std::min(order_.size(), begin + batch_size);
  const size_t shards = (end - begin + shard_size - 1) / shard_size;
  SampledBatch& buffer = sampled_[batch_index % depth_];
  // Within the capacity reserved at construction, so no allocation.
  buffer.negatives.resize((end - begin) * size_t(options_.num_negatives));
  SampleCtx& ctx = sample_ctx_[batch_index % depth_];
  ctx = {this, batch_index};
  ThreadPool::StageGroup* group = sample_groups_[batch_index % depth_].get();
  for (size_t s = 0; s < shards; ++s) {
    pool_->ScheduleRange(group, &Trainer::SampleTrampoline, &ctx, s, s + 1);
  }
}

void Trainer::MergeShardGradients(size_t num_shards) {
  // Register the union of touched rows serially (GradFor may insert, and
  // inserts are not concurrent-safe); visiting shard 0's rows first makes
  // the registration order independent of the thread count.
  for (size_t s = 0; s < num_shards; ++s) {
    shard_grads_[s]->ForEach(
        [&](size_t block, int64_t row, std::span<const float>) {
          grads_->GradFor(block, row);
        });
  }
  // Accumulate each row over the shard buffers in shard order — the
  // summation order per row never depends on which thread merges it.
  auto merge_row = [this, num_shards](size_t block, int64_t row,
                                      std::span<float> acc) {
    for (size_t s = 0; s < num_shards; ++s) {
      const std::span<const float> src = shard_grads_[s]->Find(block, row);
      if (!src.empty()) Axpy(1.0f, src, acc);
    }
  };
  constexpr size_t kMinRowsForParallel = 64;
  const size_t workers = pool_->num_threads();
  if (workers == 1 || grads_->NumTouchedRows() < kMinRowsForParallel) {
    grads_->ForEachShardMut(0, 1, merge_row);
    return;
  }
  pool_->StageFor(0, workers, [this, workers, &merge_row](size_t mb,
                                                          size_t me) {
    for (size_t m = mb; m < me; ++m) {
      grads_->ForEachShardMut(m, workers, merge_row);
    }
  });
}

double Trainer::RunEpoch(const std::vector<Triple>& train_triples,
                         const NegativeSampler& sampler, Rng* rng) {
  Stopwatch epoch_watch;
  order_.resize(train_triples.size());
  for (size_t i = 0; i < order_.size(); ++i) order_[i] = i;
  rng->Shuffle(&order_);

  epoch_triples_ = &train_triples;
  epoch_sampler_ = &sampler;
  epoch_base_counter_ = batch_counter_;

  const size_t batch_size = size_t(options_.batch_size);
  const size_t shard_size = size_t(options_.grad_shard_size);
  const size_t n = order_.size();
  const size_t num_batches = (n + batch_size - 1) / batch_size;
  // The whole epoch's sampling streams are numbered up front (stream of
  // batch b = epoch_base_counter_ + b + 1), matching the unpipelined
  // per-batch increment exactly — which is what lets prefetch sampling
  // run ahead without changing any draw.
  batch_counter_ += num_batches;

  // Grow per-shard state to the epoch high-water mark now so the batch
  // loop never allocates.
  const size_t max_per_batch = std::min(batch_size, n);
  const size_t max_shards =
      n == 0 ? 0 : (max_per_batch + shard_size - 1) / shard_size;
  while (shard_grads_.size() < max_shards) {
    shard_grads_.push_back(std::make_unique<GradientBuffer>(blocks_));
    shard_grads_.back()->Reserve(
        WorstCaseGradRows(shard_size, size_t(options_.num_negatives)));
  }
  if (shard_loss_.size() < max_shards) {
    shard_loss_.resize(max_shards);
    shard_examples_.resize(max_shards);
  }
  {
    MutexLock lock(merge_mutex_);
    if (merge_queue_.size() < max_shards) merge_queue_.resize(max_shards);
  }

  // Shard gradients run concurrently only for models whose
  // AccumulateGradients is thread-safe; the shard structure (and thus
  // every number produced) is the same either way.
  const bool concurrent_shards =
      pool_->num_threads() > 1 && model_->SupportsParallelGradients();

  double total_loss = 0.0;
  size_t total_examples = 0;

  // Pipeline prologue: prefetch the first `depth_` batches' negatives.
  for (size_t b = 0; b < std::min(depth_, num_batches); ++b) {
    ScheduleSampling(b);
  }

  for (size_t batch = 0; batch < num_batches; ++batch) {
    pool_->WaitStage(sample_groups_[batch % depth_].get());
    cur_batch_index_ = batch;
    cur_begin_ = batch * batch_size;
    cur_end_ = std::min(n, cur_begin_ + batch_size);
    const size_t shards =
        (cur_end_ - cur_begin_ + shard_size - 1) / shard_size;
    grads_->Clear();
    model_->BeginBatch();
    streaming_merge_ = !options_.deterministic && concurrent_shards;
    if (streaming_merge_) {
      MutexLock lock(merge_mutex_);
      merge_queue_size_ = 0;
      merge_cursor_ = 0;
      merge_active_ = false;
    }
    if (concurrent_shards) {
      for (size_t s = 0; s < shards; ++s) {
        pool_->ScheduleRange(&compute_group_, &Trainer::ComputeTrampoline,
                             this, s, s + 1);
      }
      pool_->WaitStage(&compute_group_);
    } else {
      Stopwatch watch;
      for (size_t s = 0; s < shards; ++s) ComputeShard(s);
      AddStageNanos(kStageScore, watch.ElapsedSeconds());
    }
    // This batch's sample buffer is free again: refill it with the batch
    // `depth_` ahead while the merge/apply tail runs. (With depth 1 the
    // prefetch still overlaps sampling with merge + apply.)
    if (batch + depth_ < num_batches) ScheduleSampling(batch + depth_);

    if (!streaming_merge_) {
      Stopwatch watch;
      MergeShardGradients(shards);
      AddStageNanos(kStageMerge, watch.ElapsedSeconds());
    }
    for (size_t s = 0; s < shards; ++s) {
      total_loss += shard_loss_[s];
      total_examples += shard_examples_[s];
    }

    total_loss += model_->FinishBatch(grads_.get());
    {
      Stopwatch watch;
      optimizer_->Apply(*grads_, pool_.get());
      if (options_.unit_norm_entities) {
        CollectTouchedRows(*grads_, 0, &touched_entities_);
        model_->NormalizeEntities(touched_entities_);
      }
      AddStageNanos(kStageApply, watch.ElapsedSeconds());
    }
  }
  epoch_triples_ = nullptr;
  epoch_sampler_ = nullptr;
  wall_nanos_.fetch_add(int64_t(epoch_watch.ElapsedSeconds() * 1e9),
                        std::memory_order_relaxed);
  return total_examples == 0 ? 0.0 : total_loss / double(total_examples);
}

TrainStageStats Trainer::stage_stats() const {
  TrainStageStats stats;
  stats.sample_seconds =
      double(stage_nanos_[kStageSample].load(std::memory_order_relaxed)) *
      1e-9;
  stats.score_seconds =
      double(stage_nanos_[kStageScore].load(std::memory_order_relaxed)) *
      1e-9;
  stats.merge_seconds =
      double(stage_nanos_[kStageMerge].load(std::memory_order_relaxed)) *
      1e-9;
  stats.apply_seconds =
      double(stage_nanos_[kStageApply].load(std::memory_order_relaxed)) *
      1e-9;
  stats.wall_seconds =
      double(wall_nanos_.load(std::memory_order_relaxed)) * 1e-9;
  return stats;
}

void Trainer::ResetStageStats() {
  for (std::atomic<int64_t>& nanos : stage_nanos_) {
    nanos.store(0, std::memory_order_relaxed);
  }
  wall_nanos_.store(0, std::memory_order_relaxed);
}

Result<TrainResult> Trainer::Train(const std::vector<Triple>& train_triples,
                                   const ValidationFn& validate) {
  if (train_triples.empty())
    return Status::InvalidArgument("empty training set");

  NegativeSamplerOptions sampler_options;
  sampler_options.side = options_.corruption_side;
  NegativeSampler sampler(model_->num_entities(), model_->num_relations(),
                          train_triples, sampler_options);

  TrainLoopConfig config;
  config.trainer_kind = "negative_sampling";
  config.max_epochs = options_.max_epochs;
  config.eval_every_epochs = options_.eval_every_epochs;
  config.patience_epochs = options_.patience_epochs;
  config.restore_best = options_.restore_best;
  config.seed = options_.seed;
  config.log_every_epochs = options_.log_every_epochs;
  config.log_name = model_->name();
  config.log_throughput_items = int64_t(train_triples.size());
  config.checkpointing = options_.checkpointing;
  config.divergence = options_.divergence;

  TrainLoop loop(model_, optimizer_.get(), config);
  // batch_counter_ both seeds the per-shard sampling streams and is
  // checkpointed/restored by the loop, so a resumed run draws exactly
  // the streams the uninterrupted run would have.
  return loop.Run(
      [&](Rng* rng) { return RunEpoch(train_triples, sampler, rng); },
      validate, &batch_counter_);
}

}  // namespace kge
