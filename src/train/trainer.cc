#include "train/trainer.h"

#include <algorithm>
#include <utility>

#include "math/activations.h"
#include "math/vec_ops.h"
#include "optim/constraints.h"
#include "train/loss.h"
#include "util/check.h"
#include "util/scratch.h"

namespace kge {

Trainer::Trainer(KgeModel* model, const TrainerOptions& options)
    : model_(model), options_(options) {
  KGE_CHECK(model_ != nullptr);
  KGE_CHECK(options_.batch_size > 0 && options_.num_negatives >= 0);
  KGE_CHECK(options_.num_threads >= 1 && options_.grad_shard_size >= 1);
  blocks_ = model_->Blocks();
  Result<std::unique_ptr<Optimizer>> optimizer =
      MakeOptimizer(options_.optimizer, blocks_, options_.learning_rate);
  KGE_CHECK_OK(optimizer.status());
  optimizer_ = std::move(*optimizer);
  grads_ = std::make_unique<GradientBuffer>(blocks_);
  // Worst-case distinct rows per batch and block: head + tail per
  // positive plus one corrupted entity per negative. Reserving up front
  // makes the steady state allocation-free from the first batch.
  grads_->Reserve(size_t(options_.batch_size) *
                  size_t(2 + options_.num_negatives));
  // The pool accelerates the shard gradients, the merge, and the
  // optimizer apply; shard buffers themselves are grown on first use
  // (their count depends on batch size, not thread count).
  if (options_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(size_t(options_.num_threads));
  }
}

void Trainer::ProcessRange(const std::vector<Triple>& train_triples,
                           const std::vector<size_t>& order, size_t begin,
                           size_t end, const NegativeSampler& sampler,
                           Rng* rng, GradientBuffer* grads, double* loss,
                           size_t* examples) const {
  L2Regularizer regularizer(options_.l2_lambda);
  // Per-thread scratch: each container grows to its high-water mark once
  // per thread, so the steady-state inner loop performs zero heap
  // allocations.
  static thread_local std::vector<Triple> negatives;
  static thread_local std::vector<EntityId> tail_ids;
  static thread_local std::vector<EntityId> head_ids;
  // Per negative: (group slot << 1) | (1 iff head-side).
  static thread_local std::vector<uint32_t> negative_slot;
  static thread_local std::vector<float> tail_scores_buf;
  static thread_local std::vector<float> head_scores_buf;
  static thread_local std::vector<double> adv_logits_buf;
  static thread_local std::vector<double> adv_weights_buf;
  static thread_local std::vector<std::pair<size_t, int64_t>> reg_rows;

  auto add_l2 = [&](const Triple& triple) {
    if (options_.l2_lambda <= 0.0) return;
    // Regularize exactly the parameter rows this example's score read
    // (Eq. 16's per-triple Θ). Block indices 0/1 = entity/relation by the
    // KgeModel convention.
    reg_rows.clear();
    // kge-hotpath: allow(3 slots in a reused thread_local buffer)
    reg_rows.emplace_back(0, triple.head);
    // kge-hotpath: allow(3 slots in a reused thread_local buffer)
    reg_rows.emplace_back(0, triple.tail);
    // kge-hotpath: allow(3 slots in a reused thread_local buffer)
    reg_rows.emplace_back(1, triple.relation);
    *loss += regularizer.Accumulate(grads, reg_rows);
  };
  const double negative_scale =
      options_.normalize_negatives && options_.num_negatives > 1
          ? 1.0 / double(options_.num_negatives)
          : 1.0;
  const bool adversarial =
      options_.self_adversarial && options_.num_negatives > 1;

  for (size_t i = begin; i < end; ++i) {
    const Triple& positive = train_triples[order[i]];
    // Sample all negatives up front, then score the positive and every
    // negative with at most two batched calls: tail-side corruptions
    // share the positive's (h, r) fold, head-side corruptions its (t, r)
    // fold. The positive rides along as tail candidate 0.
    negatives.clear();
    sampler.SampleMany(positive, options_.num_negatives, rng, &negatives);
    tail_ids.clear();
    head_ids.clear();
    negative_slot.clear();
    // kge-hotpath: allow(reused thread_local buffers; num_negatives high-water)
    tail_ids.push_back(positive.tail);
    for (const Triple& negative : negatives) {
      if (negative.head == positive.head) {
        // kge-hotpath: allow(reused thread_local buffers; num_negatives high-water)
        negative_slot.push_back(uint32_t(tail_ids.size()) << 1);
        // kge-hotpath: allow(reused thread_local buffers; num_negatives high-water)
        tail_ids.push_back(negative.tail);
      } else {
        // kge-hotpath: allow(reused thread_local buffers; num_negatives high-water)
        negative_slot.push_back((uint32_t(head_ids.size()) << 1) | 1u);
        // kge-hotpath: allow(reused thread_local buffers; num_negatives high-water)
        head_ids.push_back(negative.head);
      }
    }
    const std::span<float> tail_scores =
        ScratchSpan(tail_scores_buf, tail_ids.size());
    model_->ScoreTailBatch(positive.head, positive.relation, tail_ids,
                           tail_scores);
    const std::span<float> head_scores =
        ScratchSpan(head_scores_buf, head_ids.size());
    if (!head_ids.empty()) {
      model_->ScoreHeadBatch(positive.tail, positive.relation, head_ids,
                             head_scores);
    }
    const double positive_score = double(tail_scores[0]);
    auto negative_score = [&](size_t n) {
      const uint32_t slot = negative_slot[n];
      return double((slot & 1u) ? head_scores[slot >> 1]
                                : tail_scores[slot >> 1]);
    };

    if (options_.loss == LossKind::kLogistic) {
      *loss += LogisticLoss(positive_score, 1.0);
      model_->AccumulateGradients(
          positive,
          static_cast<float>(LogisticLossGradient(positive_score, 1.0)),
          grads);
      add_l2(positive);
      ++*examples;
      const std::span<double> adv_weights =
          ScratchSpan(adv_weights_buf, negatives.size());
      if (adversarial) {
        // Weight the negatives by softmax(alpha * score): hard (highly
        // scored) corruptions dominate the gradient. The weights reuse
        // the batched scores — no second scoring pass.
        const std::span<double> adv_logits =
            ScratchSpan(adv_logits_buf, negatives.size());
        for (size_t n = 0; n < negatives.size(); ++n) {
          adv_logits[n] = options_.adversarial_temperature * negative_score(n);
        }
        Softmax(adv_logits, adv_weights);
      }
      for (size_t n = 0; n < negatives.size(); ++n) {
        // Adversarial weights are treated as constants (no gradient
        // through the softmax), as in the original formulation.
        const double scale = adversarial ? adv_weights[n] : negative_scale;
        const double score = negative_score(n);
        *loss += scale * LogisticLoss(score, -1.0);
        model_->AccumulateGradients(
            negatives[n],
            static_cast<float>(scale * LogisticLossGradient(score, -1.0)),
            grads);
        add_l2(negatives[n]);
        ++*examples;
      }
    } else {
      // Margin ranking: one hinge per (positive, negative) pair.
      for (size_t n = 0; n < negatives.size(); ++n) {
        const double score = negative_score(n);
        *loss += MarginRankingLoss(positive_score, score, options_.margin);
        ++*examples;
        if (MarginIsViolated(positive_score, score, options_.margin)) {
          model_->AccumulateGradients(positive, -1.0f, grads);
          model_->AccumulateGradients(negatives[n], 1.0f, grads);
        }
        add_l2(negatives[n]);
      }
      add_l2(positive);
    }
  }
}

void Trainer::MergeShardGradients(size_t num_shards) {
  // Register the union of touched rows serially (GradFor may insert, and
  // inserts are not concurrent-safe); visiting shard 0's rows first makes
  // the registration order independent of the thread count.
  for (size_t s = 0; s < num_shards; ++s) {
    shard_grads_[s]->ForEach(
        [&](size_t block, int64_t row, std::span<const float>) {
          grads_->GradFor(block, row);
        });
  }
  // Accumulate each row over the shard buffers in shard order — the
  // summation order per row never depends on which thread merges it.
  auto merge_row = [this, num_shards](size_t block, int64_t row,
                                      std::span<float> acc) {
    for (size_t s = 0; s < num_shards; ++s) {
      const std::span<const float> src = shard_grads_[s]->Find(block, row);
      if (!src.empty()) Axpy(1.0f, src, acc);
    }
  };
  constexpr size_t kMinRowsForParallel = 64;
  if (pool_ == nullptr || grads_->NumTouchedRows() < kMinRowsForParallel) {
    grads_->ForEachShardMut(0, 1, merge_row);
    return;
  }
  const size_t workers = pool_->num_threads();
  for (size_t m = 0; m < workers; ++m) {
    pool_->Schedule([this, m, workers, &merge_row] {
      grads_->ForEachShardMut(m, workers, merge_row);
    });
  }
  pool_->Wait();
}

double Trainer::RunEpoch(const std::vector<Triple>& train_triples,
                         const NegativeSampler& sampler, Rng* rng) {
  order_.resize(train_triples.size());
  for (size_t i = 0; i < order_.size(); ++i) order_[i] = i;
  rng->Shuffle(&order_);

  double total_loss = 0.0;
  size_t total_examples = 0;
  // Shard gradients run concurrently only for models whose
  // AccumulateGradients is thread-safe; the shard structure (and thus
  // every number produced) is the same either way.
  const bool concurrent_shards =
      pool_ != nullptr && model_->SupportsParallelGradients();

  const size_t batch_size = size_t(options_.batch_size);
  const size_t shard_size = size_t(options_.grad_shard_size);
  for (size_t begin = 0; begin < order_.size(); begin += batch_size) {
    const size_t end = std::min(begin + batch_size, order_.size());
    const size_t shards = (end - begin + shard_size - 1) / shard_size;
    grads_->Clear();
    model_->BeginBatch();
    ++batch_counter_;

    while (shard_grads_.size() < shards) {
      shard_grads_.push_back(std::make_unique<GradientBuffer>(blocks_));
      shard_grads_.back()->Reserve(shard_size *
                                   size_t(2 + options_.num_negatives));
    }
    if (shard_loss_.size() < shards) {
      shard_loss_.resize(shards);
      shard_examples_.resize(shards);
    }
    auto run_shard = [&](size_t s) {
      // Independent sampling stream per (seed, batch, shard) — the
      // stream assignment depends only on the shard structure, never on
      // the thread count.
      Rng shard_rng(DeriveStreamSeed(options_.seed, batch_counter_, s));
      shard_grads_[s]->Clear();
      shard_loss_[s] = 0.0;
      shard_examples_[s] = 0;
      const size_t shard_begin = begin + s * shard_size;
      const size_t shard_end = std::min(end, shard_begin + shard_size);
      ProcessRange(train_triples, order_, shard_begin, shard_end, sampler,
                   &shard_rng, shard_grads_[s].get(), &shard_loss_[s],
                   &shard_examples_[s]);
    };
    if (concurrent_shards) {
      for (size_t s = 0; s < shards; ++s) {
        pool_->Schedule([&run_shard, s] { run_shard(s); });
      }
      pool_->Wait();
    } else {
      for (size_t s = 0; s < shards; ++s) run_shard(s);
    }
    MergeShardGradients(shards);
    for (size_t s = 0; s < shards; ++s) {
      total_loss += shard_loss_[s];
      total_examples += shard_examples_[s];
    }

    total_loss += model_->FinishBatch(grads_.get());
    optimizer_->Apply(*grads_, pool_.get());
    if (options_.unit_norm_entities) {
      CollectTouchedRows(*grads_, 0, &touched_entities_);
      model_->NormalizeEntities(touched_entities_);
    }
  }
  return total_examples == 0 ? 0.0 : total_loss / double(total_examples);
}

Result<TrainResult> Trainer::Train(const std::vector<Triple>& train_triples,
                                   const ValidationFn& validate) {
  if (train_triples.empty())
    return Status::InvalidArgument("empty training set");

  NegativeSamplerOptions sampler_options;
  sampler_options.side = options_.corruption_side;
  NegativeSampler sampler(model_->num_entities(), model_->num_relations(),
                          train_triples, sampler_options);

  TrainLoopConfig config;
  config.trainer_kind = "negative_sampling";
  config.max_epochs = options_.max_epochs;
  config.eval_every_epochs = options_.eval_every_epochs;
  config.patience_epochs = options_.patience_epochs;
  config.restore_best = options_.restore_best;
  config.seed = options_.seed;
  config.log_every_epochs = options_.log_every_epochs;
  config.log_name = model_->name();
  config.log_throughput_items = int64_t(train_triples.size());
  config.checkpointing = options_.checkpointing;
  config.divergence = options_.divergence;

  TrainLoop loop(model_, optimizer_.get(), config);
  // batch_counter_ both seeds the per-shard sampling streams and is
  // checkpointed/restored by the loop, so a resumed run draws exactly
  // the streams the uninterrupted run would have.
  return loop.Run(
      [&](Rng* rng) { return RunEpoch(train_triples, sampler, rng); },
      validate, &batch_counter_);
}

}  // namespace kge
