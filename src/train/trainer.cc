#include "train/trainer.h"

#include <algorithm>
#include <utility>

#include "math/activations.h"
#include "optim/constraints.h"
#include "train/early_stopping.h"
#include "train/loss.h"
#include "util/check.h"
#include "util/logging.h"

namespace kge {

Trainer::Trainer(KgeModel* model, const TrainerOptions& options)
    : model_(model), options_(options) {
  KGE_CHECK(model_ != nullptr);
  KGE_CHECK(options_.batch_size > 0 && options_.num_negatives >= 0);
  KGE_CHECK(options_.num_threads >= 1);
  blocks_ = model_->Blocks();
  Result<std::unique_ptr<Optimizer>> optimizer =
      MakeOptimizer(options_.optimizer, blocks_, options_.learning_rate);
  KGE_CHECK_OK(optimizer.status());
  optimizer_ = std::move(*optimizer);
  grads_ = std::make_unique<GradientBuffer>(blocks_);
  if (options_.num_threads > 1 && model_->SupportsParallelGradients()) {
    pool_ = std::make_unique<ThreadPool>(size_t(options_.num_threads));
    for (int s = 0; s < options_.num_threads; ++s) {
      shard_grads_.push_back(std::make_unique<GradientBuffer>(blocks_));
    }
  }
}

void Trainer::ProcessRange(const std::vector<Triple>& train_triples,
                           const std::vector<size_t>& order, size_t begin,
                           size_t end, const NegativeSampler& sampler,
                           Rng* rng, GradientBuffer* grads, double* loss,
                           size_t* examples) const {
  L2Regularizer regularizer(options_.l2_lambda);
  std::vector<std::pair<size_t, int64_t>> reg_rows;
  auto add_l2 = [&](const Triple& triple) {
    if (options_.l2_lambda <= 0.0) return;
    // Regularize exactly the parameter rows this example's score read
    // (Eq. 16's per-triple Θ). Block indices 0/1 = entity/relation by the
    // KgeModel convention.
    reg_rows.clear();
    reg_rows.emplace_back(0, triple.head);
    reg_rows.emplace_back(0, triple.tail);
    reg_rows.emplace_back(1, triple.relation);
    *loss += regularizer.Accumulate(grads, reg_rows);
  };
  const double negative_scale =
      options_.normalize_negatives && options_.num_negatives > 1
          ? 1.0 / double(options_.num_negatives)
          : 1.0;
  auto train_example = [&](const Triple& triple, double label,
                           double scale_override = -1.0) {
    const double scale = scale_override >= 0.0
                             ? scale_override
                             : (label < 0.0 ? negative_scale : 1.0);
    const double score = model_->Score(triple);
    *loss += scale * LogisticLoss(score, label);
    const float dscore =
        static_cast<float>(scale * LogisticLossGradient(score, label));
    model_->AccumulateGradients(triple, dscore, grads);
    add_l2(triple);
    ++*examples;
  };

  const bool adversarial =
      options_.self_adversarial && options_.num_negatives > 1;
  std::vector<Triple> negatives;
  std::vector<double> negative_scores;
  std::vector<double> weights;

  for (size_t i = begin; i < end; ++i) {
    const Triple& positive = train_triples[order[i]];
    if (options_.loss == LossKind::kLogistic) {
      train_example(positive, 1.0);
      if (adversarial) {
        // Weight the negatives by softmax(alpha * score): hard (highly
        // scored) corruptions dominate the gradient.
        negatives.clear();
        negative_scores.clear();
        for (int n = 0; n < options_.num_negatives; ++n) {
          negatives.push_back(sampler.Sample(positive, rng));
          negative_scores.push_back(options_.adversarial_temperature *
                                    model_->Score(negatives.back()));
        }
        weights.resize(negatives.size());
        Softmax(negative_scores, weights);
        for (size_t n = 0; n < negatives.size(); ++n) {
          // The weight is treated as a constant (no gradient through the
          // softmax), as in the original formulation.
          train_example(negatives[n], -1.0, weights[n]);
        }
      } else {
        for (int n = 0; n < options_.num_negatives; ++n) {
          train_example(sampler.Sample(positive, rng), -1.0);
        }
      }
    } else {
      // Margin ranking: one hinge per (positive, negative) pair.
      const double positive_score = model_->Score(positive);
      for (int n = 0; n < options_.num_negatives; ++n) {
        const Triple negative = sampler.Sample(positive, rng);
        const double negative_score = model_->Score(negative);
        *loss += MarginRankingLoss(positive_score, negative_score,
                                   options_.margin);
        ++*examples;
        if (MarginIsViolated(positive_score, negative_score,
                             options_.margin)) {
          model_->AccumulateGradients(positive, -1.0f, grads);
          model_->AccumulateGradients(negative, 1.0f, grads);
        }
        add_l2(negative);
      }
      add_l2(positive);
    }
  }
}

void Trainer::MergeGradients(const GradientBuffer& src) {
  src.ForEach([&](size_t block, int64_t row, std::span<const float> grad) {
    std::span<float> acc = grads_->GradFor(block, row);
    for (size_t d = 0; d < grad.size(); ++d) acc[d] += grad[d];
  });
}

double Trainer::RunEpoch(const std::vector<Triple>& train_triples,
                         const NegativeSampler& sampler, Rng* rng) {
  std::vector<size_t> order(train_triples.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng->Shuffle(&order);

  std::vector<EntityId> touched_entities;
  double total_loss = 0.0;
  size_t total_examples = 0;
  const bool parallel = pool_ != nullptr;

  const size_t batch_size = size_t(options_.batch_size);
  for (size_t begin = 0; begin < order.size(); begin += batch_size) {
    const size_t end = std::min(begin + batch_size, order.size());
    grads_->Clear();
    model_->BeginBatch();
    ++batch_counter_;

    if (!parallel) {
      ProcessRange(train_triples, order, begin, end, sampler, rng,
                   grads_.get(), &total_loss, &total_examples);
    } else {
      // Fixed shards; per-shard RNG derived from (seed, batch, shard) so
      // results are deterministic for a fixed thread count.
      const size_t shards = shard_grads_.size();
      const size_t count = end - begin;
      const size_t chunk = (count + shards - 1) / shards;
      std::vector<double> shard_loss(shards, 0.0);
      std::vector<size_t> shard_examples(shards, 0);
      for (size_t s = 0; s < shards; ++s) {
        const size_t sb = begin + std::min(count, s * chunk);
        const size_t se = begin + std::min(count, (s + 1) * chunk);
        pool_->Schedule([this, &train_triples, &order, sb, se, &sampler,
                         &shard_loss, &shard_examples, s] {
          Rng shard_rng(options_.seed ^ (batch_counter_ * 0x9E3779B97F4AULL) ^
                        (s * 0xBF58476D1CE4ULL));
          shard_grads_[s]->Clear();
          ProcessRange(train_triples, order, sb, se, sampler, &shard_rng,
                       shard_grads_[s].get(), &shard_loss[s],
                       &shard_examples[s]);
        });
      }
      pool_->Wait();
      for (size_t s = 0; s < shards; ++s) {
        MergeGradients(*shard_grads_[s]);
        total_loss += shard_loss[s];
        total_examples += shard_examples[s];
      }
    }

    total_loss += model_->FinishBatch(grads_.get());
    optimizer_->Apply(*grads_);
    if (options_.unit_norm_entities) {
      CollectTouchedRows(*grads_, 0, &touched_entities);
      model_->NormalizeEntities(touched_entities);
    }
  }
  return total_examples == 0 ? 0.0 : total_loss / double(total_examples);
}

std::vector<std::vector<float>> Trainer::SnapshotParameters() const {
  std::vector<std::vector<float>> snapshot;
  snapshot.reserve(blocks_.size());
  for (const ParameterBlock* block : blocks_) {
    const auto flat = block->Flat();
    snapshot.emplace_back(flat.begin(), flat.end());
  }
  return snapshot;
}

void Trainer::RestoreParameters(
    const std::vector<std::vector<float>>& snapshot) {
  KGE_CHECK(snapshot.size() == blocks_.size());
  for (size_t b = 0; b < blocks_.size(); ++b) {
    const auto flat = blocks_[b]->Flat();
    KGE_CHECK(snapshot[b].size() == flat.size());
    std::copy(snapshot[b].begin(), snapshot[b].end(), flat.begin());
  }
}

Result<TrainResult> Trainer::Train(const std::vector<Triple>& train_triples,
                                   const ValidationFn& validate) {
  if (train_triples.empty())
    return Status::InvalidArgument("empty training set");

  NegativeSamplerOptions sampler_options;
  sampler_options.side = options_.corruption_side;
  NegativeSampler sampler(model_->num_entities(), model_->num_relations(),
                          train_triples, sampler_options);
  Rng rng(options_.seed);

  EarlyStopping stopping(options_.patience_epochs);
  std::vector<std::vector<float>> best_snapshot;
  TrainResult result;

  for (int epoch = 1; epoch <= options_.max_epochs; ++epoch) {
    const double mean_loss = RunEpoch(train_triples, sampler, &rng);
    result.epochs_run = epoch;
    result.final_mean_loss = mean_loss;
    result.loss_history.push_back(mean_loss);
    if (options_.log_every_epochs > 0 &&
        epoch % options_.log_every_epochs == 0) {
      KGE_LOG(Info) << model_->name() << " epoch " << epoch << " loss "
                    << mean_loss;
    }
    if (validate && epoch % options_.eval_every_epochs == 0) {
      const double metric = validate(epoch);
      result.validation_history.emplace_back(epoch, metric);
      if (stopping.Observe(epoch, metric)) {
        if (options_.restore_best) best_snapshot = SnapshotParameters();
      }
      if (options_.log_every_epochs > 0) {
        KGE_LOG(Info) << model_->name() << " epoch " << epoch
                      << " validation " << metric << " (best "
                      << stopping.best_metric() << " @ "
                      << stopping.best_epoch() << ")";
      }
      if (stopping.ShouldStop(epoch)) {
        result.stopped_early = true;
        break;
      }
    }
  }
  if (stopping.has_observation()) {
    result.best_validation_metric = stopping.best_metric();
    result.best_epoch = stopping.best_epoch();
    if (options_.restore_best && !best_snapshot.empty()) {
      RestoreParameters(best_snapshot);
    }
  }
  return result;
}

}  // namespace kge
