#include "train/one_vs_all.h"

#include <algorithm>
#include <atomic>
#include <unordered_map>

#include "core/interaction.h"
#include "math/activations.h"
#include "math/vec_ops.h"
#include "util/check.h"

namespace kge {

OneVsAllTrainer::OneVsAllTrainer(MultiEmbeddingModel* model,
                                 const OneVsAllOptions& options)
    : model_(model), options_(options) {
  KGE_CHECK(model_ != nullptr);
  KGE_CHECK(options_.batch_queries > 0);
  KGE_CHECK(options_.num_threads >= 1);
  blocks_ = model_->Blocks();
  Result<std::unique_ptr<Optimizer>> optimizer =
      MakeOptimizer(options_.optimizer, blocks_, options_.learning_rate);
  KGE_CHECK_OK(optimizer.status());
  optimizer_ = std::move(*optimizer);
  grads_ = std::make_unique<GradientBuffer>(blocks_);
  // Worst case per batch and block: every entity as a candidate plus one
  // head and one relation row per query.
  grads_->Reserve(size_t(model_->num_entities()) +
                  size_t(options_.batch_queries));
  if (options_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(size_t(options_.num_threads));
  }
}

void OneVsAllTrainer::BuildQueries(
    const std::vector<Triple>& train_triples) {
  std::unordered_map<uint64_t, size_t> index_of;
  queries_.clear();
  for (const Triple& t : train_triples) {
    const uint64_t key =
        (uint64_t(uint32_t(t.head)) << 32) | uint32_t(t.relation);
    auto [it, inserted] = index_of.try_emplace(key, queries_.size());
    if (inserted) {
      queries_.push_back({t.head, t.relation, {}});
    }
    queries_[it->second].tails.push_back(t.tail);
  }
  for (Query& q : queries_) {
    std::sort(q.tails.begin(), q.tails.end());
    q.tails.erase(std::unique(q.tails.begin(), q.tails.end()),
                  q.tails.end());
  }
}

double OneVsAllTrainer::ScoreQuery(const Query& query, std::span<float> fold,
                                   std::span<float> g,
                                   std::span<float> dfold) {
  const WeightTable& weights = model_->weights();
  const int32_t dim = model_->dim();
  const EmbeddingStore& entities = model_->entity_store();
  const auto h = entities.Of(query.head);
  const auto r = model_->relation_store().Of(query.relation);

  FoldForTail(weights, dim, h, r, fold);
  // Score every entity in one blocked GEMV. By the DotBatch contract each
  // score is exactly float(Dot(fold, t_e)) — bitwise what the per-entity
  // loop computed.
  DotBatch(fold, entities.block().Flat(), g);
  return ComputeQueryGrad(query, g, dfold);
}

double OneVsAllTrainer::ComputeQueryGrad(const Query& query,
                                         std::span<float> g,
                                         std::span<float> dfold) {
  const int32_t num_entities = model_->num_entities();
  const EmbeddingStore& entities = model_->entity_store();

  // Labels with optional smoothing.
  const double ls = options_.label_smoothing;
  const double negative_label = ls / double(num_entities);
  const double positive_label = 1.0 - ls + negative_label;

  std::fill(dfold.begin(), dfold.end(), 0.0f);
  double loss = 0.0;
  size_t tail_cursor = 0;
  for (int32_t e = 0; e < num_entities; ++e) {
    while (tail_cursor < query.tails.size() && query.tails[tail_cursor] < e) {
      ++tail_cursor;
    }
    const bool is_positive =
        tail_cursor < query.tails.size() && query.tails[tail_cursor] == e;
    const double label = is_positive ? positive_label : negative_label;
    const double s = double(g[size_t(e)]);
    // Stable BCE-with-logits: softplus(s) − y·s.
    loss += Softplus(s) - label * s;
    // The score slot becomes the upstream gradient dL/ds_e.
    const float ge = static_cast<float>(Sigmoid(s) - label);
    g[size_t(e)] = ge;
    if (ge == 0.0f) continue;
    // Concurrent queries may flag the same entity; relaxed stores of the
    // same value commute, so the flag array is deterministic.
    std::atomic_ref<uint8_t>(entity_touched_[size_t(e)])
        .store(1, std::memory_order_relaxed);
    // dL/dfold += g * t_e.
    Axpy(ge, entities.Of(e), dfold);
  }
  return loss;
}

double OneVsAllTrainer::RunEpoch(Rng* rng) {
  order_.resize(queries_.size());
  for (size_t i = 0; i < order_.size(); ++i) order_[i] = i;
  rng->Shuffle(&order_);

  const size_t num_entities = size_t(model_->num_entities());
  const size_t width =
      size_t(model_->weights().ne()) * size_t(model_->dim());
  const EmbeddingStore& entities = model_->entity_store();
  const WeightTable& weights = model_->weights();
  const int32_t dim = model_->dim();

  double total_loss = 0.0;
  const size_t batch = size_t(options_.batch_queries);
  for (size_t begin = 0; begin < order_.size(); begin += batch) {
    const size_t end = std::min(begin + batch, order_.size());
    const size_t count = end - begin;
    grads_->Clear();
    folds_.resize(count * width);
    dfolds_.resize(count * width);
    g_.resize(count * num_entities);
    query_loss_.resize(count);
    entity_touched_.assign(num_entities, 0);

    // Stage A — independent per query: fold, batched scores, dL/ds and
    // dL/dfold. Writes only the query's own slices (plus the commuting
    // touched flags), so any partition across threads is safe and
    // bit-identical.
    if (options_.batched_scoring) {
      // A1: fold every (h, r) context into its row of the fold matrix.
      auto stage_a1 = [&](size_t qb, size_t qe) {
        for (size_t i = qb; i < qe; ++i) {
          const Query& query = queries_[order_[begin + i]];
          FoldForTail(weights, dim, entities.Of(query.head),
                      model_->relation_store().Of(query.relation),
                      std::span<float>(folds_.data() + i * width, width));
        }
      };
      // A2: score a chunk of queries with one cache-blocked multi-query
      // product over the entity table. Per-cell scores are exactly the
      // per-query DotBatch scores (simd contract), so the chunking is
      // invisible to the numerics.
      auto stage_a2 = [&](size_t qb, size_t qe) {
        if (qb == qe) return;
        DotBatchMulti(
            std::span<const float>(folds_.data() + qb * width,
                                   (qe - qb) * width),
            qe - qb, entities.block().Flat(),
            std::span<float>(g_.data() + qb * num_entities,
                             (qe - qb) * num_entities));
      };
      // A3: per-query loss, dL/ds in place, dL/dfold, touched flags.
      auto stage_a3 = [&](size_t qb, size_t qe) {
        for (size_t i = qb; i < qe; ++i) {
          query_loss_[i] = ComputeQueryGrad(
              queries_[order_[begin + i]],
              std::span<float>(g_.data() + i * num_entities, num_entities),
              std::span<float>(dfolds_.data() + i * width, width));
        }
      };
      if (pool_ != nullptr) {
        pool_->ParallelFor(0, count, stage_a1);
        pool_->ParallelFor(0, count, stage_a2);
        pool_->ParallelFor(0, count, stage_a3);
      } else {
        stage_a1(0, count);
        stage_a2(0, count);
        stage_a3(0, count);
      }
    } else {
      auto stage_a = [&](size_t qb, size_t qe) {
        for (size_t i = qb; i < qe; ++i) {
          query_loss_[i] = ScoreQuery(
              queries_[order_[begin + i]],
              std::span<float>(folds_.data() + i * width, width),
              std::span<float>(g_.data() + i * num_entities, num_entities),
              std::span<float>(dfolds_.data() + i * width, width));
        }
      };
      if (pool_ != nullptr) {
        pool_->ParallelFor(0, count, stage_a);
      } else {
        stage_a(0, count);
      }
    }

    // Register every touched entity row serially, in ascending id order —
    // GradFor inserts are not concurrent-safe, and this order does not
    // depend on the thread count.
    for (size_t e = 0; e < num_entities; ++e) {
      if (entity_touched_[e]) {
        grads_->GradFor(MultiEmbeddingModel::kEntityBlock, int64_t(e));
      }
    }

    // Stage B — per entity: dL/dt_e = Σ_i g_i[e] · fold_i, summed in
    // batch order for every partition. Rows are pre-registered, so the
    // concurrent GradFor calls are pure lookups of disjoint rows.
    auto stage_b = [&](size_t eb, size_t ee) {
      for (size_t e = eb; e < ee; ++e) {
        if (!entity_touched_[e]) continue;
        std::span<float> acc =
            grads_->GradFor(MultiEmbeddingModel::kEntityBlock, int64_t(e));
        for (size_t i = 0; i < count; ++i) {
          const float ge = g_[i * num_entities + e];
          if (ge == 0.0f) continue;
          Axpy(ge,
               std::span<const float>(folds_.data() + i * width, width),
               acc);
        }
      }
    };
    if (pool_ != nullptr) {
      pool_->ParallelFor(0, num_entities, stage_b);
    } else {
      stage_b(0, num_entities);
    }

    // Stage C — serial: backpropagate each query's dfold into its head
    // and relation rows via the transposed folds. Heads can repeat
    // across a batch's queries, so these accumulations stay serial (and
    // in batch order).
    for (size_t i = 0; i < count; ++i) {
      const Query& query = queries_[order_[begin + i]];
      const std::span<const float> dfold(dfolds_.data() + i * width, width);
      std::span<float> gh = grads_->GradFor(
          MultiEmbeddingModel::kEntityBlock, query.head);
      std::span<float> gr = grads_->GradFor(
          MultiEmbeddingModel::kRelationBlock, query.relation);
      head_fold_.resize(gh.size());
      FoldForHead(weights, dim, dfold, model_->relation_store().Of(query.relation),
                  head_fold_);
      Axpy(1.0f, head_fold_, gh);
      relation_fold_.resize(gr.size());
      FoldForRelation(weights, dim, entities.Of(query.head), dfold,
                      relation_fold_);
      Axpy(1.0f, relation_fold_, gr);
      total_loss += query_loss_[i];
    }

    optimizer_->Apply(*grads_, pool_.get());
  }
  return queries_.empty() ? 0.0 : total_loss / double(queries_.size());
}

Result<TrainResult> OneVsAllTrainer::Train(
    const std::vector<Triple>& train_triples, const ValidationFn& validate) {
  if (train_triples.empty())
    return Status::InvalidArgument("empty training set");
  BuildQueries(train_triples);

  TrainLoopConfig config;
  config.trainer_kind = "one_vs_all";
  config.max_epochs = options_.max_epochs;
  config.eval_every_epochs = options_.eval_every_epochs;
  config.patience_epochs = options_.patience_epochs;
  config.restore_best = options_.restore_best;
  config.seed = options_.seed;
  config.log_name = model_->name();
  config.log_throughput_items = int64_t(queries_.size());
  config.checkpointing = options_.checkpointing;
  config.divergence = options_.divergence;

  TrainLoop loop(model_, optimizer_.get(), config);
  // No batch counter: the 1-N loop draws all randomness from the
  // epoch-level rng (query-order shuffles).
  return loop.Run([&](Rng* rng) { return RunEpoch(rng); }, validate,
                  /*batch_counter=*/nullptr);
}

}  // namespace kge
