#include "train/one_vs_all.h"

#include <algorithm>
#include <unordered_map>

#include "core/interaction.h"
#include "math/activations.h"
#include "math/vec_ops.h"
#include "train/early_stopping.h"
#include "util/check.h"
#include "util/logging.h"

namespace kge {

OneVsAllTrainer::OneVsAllTrainer(MultiEmbeddingModel* model,
                                 const OneVsAllOptions& options)
    : model_(model), options_(options) {
  KGE_CHECK(model_ != nullptr);
  KGE_CHECK(options_.batch_queries > 0);
  blocks_ = model_->Blocks();
  Result<std::unique_ptr<Optimizer>> optimizer =
      MakeOptimizer(options_.optimizer, blocks_, options_.learning_rate);
  KGE_CHECK_OK(optimizer.status());
  optimizer_ = std::move(*optimizer);
  grads_ = std::make_unique<GradientBuffer>(blocks_);
}

void OneVsAllTrainer::BuildQueries(
    const std::vector<Triple>& train_triples) {
  std::unordered_map<uint64_t, size_t> index_of;
  queries_.clear();
  for (const Triple& t : train_triples) {
    const uint64_t key =
        (uint64_t(uint32_t(t.head)) << 32) | uint32_t(t.relation);
    auto [it, inserted] = index_of.try_emplace(key, queries_.size());
    if (inserted) {
      queries_.push_back({t.head, t.relation, {}});
    }
    queries_[it->second].tails.push_back(t.tail);
  }
  for (Query& q : queries_) {
    std::sort(q.tails.begin(), q.tails.end());
    q.tails.erase(std::unique(q.tails.begin(), q.tails.end()),
                  q.tails.end());
  }
}

double OneVsAllTrainer::ProcessQuery(const Query& query,
                                     GradientBuffer* grads,
                                     std::vector<float>* scratch_scores,
                                     std::vector<float>* scratch_fold,
                                     std::vector<float>* scratch_dfold) {
  const int32_t num_entities = model_->num_entities();
  const WeightTable& weights = model_->weights();
  const int32_t dim = model_->dim();
  const EmbeddingStore& entities = model_->entity_store();
  const auto h = entities.Of(query.head);
  const auto r = model_->relation_store().Of(query.relation);

  std::vector<float>& fold = *scratch_fold;
  fold.resize(size_t(weights.ne()) * size_t(dim));
  FoldForTail(weights, dim, h, r, fold);

  std::vector<float>& scores = *scratch_scores;
  scores.resize(size_t(num_entities));
  for (int32_t e = 0; e < num_entities; ++e) {
    scores[size_t(e)] = static_cast<float>(Dot(fold, entities.Of(e)));
  }

  // Labels with optional smoothing.
  const double ls = options_.label_smoothing;
  const double negative_label = ls / double(num_entities);
  const double positive_label = 1.0 - ls + negative_label;

  std::vector<float>& dfold = *scratch_dfold;
  dfold.assign(fold.size(), 0.0f);
  double loss = 0.0;
  size_t tail_cursor = 0;
  for (int32_t e = 0; e < num_entities; ++e) {
    while (tail_cursor < query.tails.size() && query.tails[tail_cursor] < e) {
      ++tail_cursor;
    }
    const bool is_positive =
        tail_cursor < query.tails.size() && query.tails[tail_cursor] == e;
    const double label = is_positive ? positive_label : negative_label;
    const double s = scores[size_t(e)];
    // Stable BCE-with-logits: softplus(s) − y·s.
    loss += Softplus(s) - label * s;
    const float g = static_cast<float>(Sigmoid(s) - label);
    if (g == 0.0f) continue;
    // dL/dt_e += g * fold.
    Axpy(g, fold, grads->GradFor(MultiEmbeddingModel::kEntityBlock, e));
    // dL/dfold += g * t_e.
    Axpy(g, entities.Of(e), dfold);
  }

  // Backpropagate dfold into h and r via the transposed folds.
  std::span<float> gh =
      grads->GradFor(MultiEmbeddingModel::kEntityBlock, query.head);
  std::span<float> gr =
      grads->GradFor(MultiEmbeddingModel::kRelationBlock, query.relation);
  std::vector<float> tmp(gh.size());
  FoldForHead(weights, dim, dfold, r, tmp);
  for (size_t d = 0; d < gh.size(); ++d) gh[d] += tmp[d];
  std::vector<float> tmp_r(gr.size());
  FoldForRelation(weights, dim, h, dfold, tmp_r);
  for (size_t d = 0; d < gr.size(); ++d) gr[d] += tmp_r[d];
  return loss;
}

double OneVsAllTrainer::RunEpoch(Rng* rng) {
  std::vector<size_t> order(queries_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng->Shuffle(&order);

  std::vector<float> scratch_scores, scratch_fold, scratch_dfold;
  double total_loss = 0.0;
  const size_t batch = size_t(options_.batch_queries);
  for (size_t begin = 0; begin < order.size(); begin += batch) {
    const size_t end = std::min(begin + batch, order.size());
    grads_->Clear();
    for (size_t i = begin; i < end; ++i) {
      total_loss += ProcessQuery(queries_[order[i]], grads_.get(),
                                 &scratch_scores, &scratch_fold,
                                 &scratch_dfold);
    }
    optimizer_->Apply(*grads_);
  }
  return queries_.empty() ? 0.0 : total_loss / double(queries_.size());
}

Result<TrainResult> OneVsAllTrainer::Train(
    const std::vector<Triple>& train_triples, const ValidationFn& validate) {
  if (train_triples.empty())
    return Status::InvalidArgument("empty training set");
  BuildQueries(train_triples);

  Rng rng(options_.seed);
  EarlyStopping stopping(options_.patience_epochs);
  std::vector<std::vector<float>> best_snapshot;
  TrainResult result;
  for (int epoch = 1; epoch <= options_.max_epochs; ++epoch) {
    const double mean_loss = RunEpoch(&rng);
    result.epochs_run = epoch;
    result.final_mean_loss = mean_loss;
    result.loss_history.push_back(mean_loss);
    if (validate && epoch % options_.eval_every_epochs == 0) {
      const double metric = validate(epoch);
      result.validation_history.emplace_back(epoch, metric);
      if (stopping.Observe(epoch, metric) && options_.restore_best) {
        best_snapshot.clear();
        for (ParameterBlock* block : blocks_) {
          const auto flat = block->Flat();
          best_snapshot.emplace_back(flat.begin(), flat.end());
        }
      }
      if (stopping.ShouldStop(epoch)) {
        result.stopped_early = true;
        break;
      }
    }
  }
  if (stopping.has_observation()) {
    result.best_validation_metric = stopping.best_metric();
    result.best_epoch = stopping.best_epoch();
    if (options_.restore_best && !best_snapshot.empty()) {
      for (size_t b = 0; b < blocks_.size(); ++b) {
        const auto flat = blocks_[b]->Flat();
        std::copy(best_snapshot[b].begin(), best_snapshot[b].end(),
                  flat.begin());
      }
    }
  }
  return result;
}

}  // namespace kge
