#include "train/one_vs_all.h"

#include <algorithm>
#include <atomic>
#include <unordered_map>

#include "core/interaction.h"
#include "math/activations.h"
#include "math/vec_ops.h"
#include "util/check.h"
#include "util/timer.h"

namespace kge {

namespace {
// Indices into OneVsAllTrainer::stage_nanos_.
constexpr int kStageSample = 0;  // overlapped touched-flag clears
constexpr int kStageScore = 1;
constexpr int kStageMerge = 2;
constexpr int kStageApply = 3;
}  // namespace

OneVsAllTrainer::OneVsAllTrainer(MultiEmbeddingModel* model,
                                 const OneVsAllOptions& options)
    : model_(model), options_(options) {
  KGE_CHECK(model_ != nullptr);
  KGE_CHECK(options_.batch_queries > 0);
  KGE_CHECK(options_.num_threads >= 0);
  KGE_CHECK(options_.pipeline_depth >= 1 && options_.pipeline_depth <= 8);
  options_.num_threads = int(ResolveNumThreads(options_.num_threads));
  blocks_ = model_->Blocks();
  Result<std::unique_ptr<Optimizer>> optimizer =
      MakeOptimizer(options_.optimizer, blocks_, options_.learning_rate);
  KGE_CHECK_OK(optimizer.status());
  optimizer_ = std::move(*optimizer);
  grads_ = std::make_unique<GradientBuffer>(blocks_);
  // Worst case per batch and block: every entity as a candidate plus one
  // head and one relation row per query.
  grads_->Reserve(size_t(model_->num_entities()) +
                  size_t(options_.batch_queries));
  pool_ = std::make_unique<ThreadPool>(size_t(options_.num_threads));
  // The dense 1-N gradient has no parameter-independent stage to run
  // ahead, so depth only buys the overlapped flag clear (and only when
  // there are idle workers to run it).
  overlap_clear_ = options_.pipeline_depth > 1 && pool_->num_threads() > 1;
  pool_->ReserveStageTasks(pool_->num_threads() * 4 + 8);
}

void OneVsAllTrainer::BuildQueries(
    const std::vector<Triple>& train_triples) {
  std::unordered_map<uint64_t, size_t> index_of;
  queries_.clear();
  for (const Triple& t : train_triples) {
    const uint64_t key =
        (uint64_t(uint32_t(t.head)) << 32) | uint32_t(t.relation);
    auto [it, inserted] = index_of.try_emplace(key, queries_.size());
    if (inserted) {
      queries_.push_back({t.head, t.relation, {}});
    }
    queries_[it->second].tails.push_back(t.tail);
  }
  for (Query& q : queries_) {
    std::sort(q.tails.begin(), q.tails.end());
    q.tails.erase(std::unique(q.tails.begin(), q.tails.end()),
                  q.tails.end());
  }
}

double OneVsAllTrainer::ScoreQuery(const Query& query, std::span<float> fold,
                                   std::span<float> g,
                                   std::span<float> dfold) {
  const WeightTable& weights = model_->weights();
  const int32_t dim = model_->dim();
  const EmbeddingStore& entities = model_->entity_store();
  const auto h = entities.Of(query.head);
  const auto r = model_->relation_store().Of(query.relation);

  FoldForTail(weights, dim, h, r, fold);
  // Score every entity in one blocked GEMV. By the DotBatch contract each
  // score is exactly float(Dot(fold, t_e)) — bitwise what the per-entity
  // loop computed.
  DotBatch(fold, entities.block().Flat(), g);
  return ComputeQueryGrad(query, g, dfold);
}

double OneVsAllTrainer::ComputeQueryGrad(const Query& query,
                                         std::span<float> g,
                                         std::span<float> dfold) {
  const int32_t num_entities = model_->num_entities();
  const EmbeddingStore& entities = model_->entity_store();

  // Labels with optional smoothing.
  const double ls = options_.label_smoothing;
  const double negative_label = ls / double(num_entities);
  const double positive_label = 1.0 - ls + negative_label;

  std::fill(dfold.begin(), dfold.end(), 0.0f);
  double loss = 0.0;
  size_t tail_cursor = 0;
  for (int32_t e = 0; e < num_entities; ++e) {
    while (tail_cursor < query.tails.size() && query.tails[tail_cursor] < e) {
      ++tail_cursor;
    }
    const bool is_positive =
        tail_cursor < query.tails.size() && query.tails[tail_cursor] == e;
    const double label = is_positive ? positive_label : negative_label;
    const double s = double(g[size_t(e)]);
    // Stable BCE-with-logits: softplus(s) − y·s.
    loss += Softplus(s) - label * s;
    // The score slot becomes the upstream gradient dL/ds_e.
    const float ge = static_cast<float>(Sigmoid(s) - label);
    g[size_t(e)] = ge;
    if (ge == 0.0f) continue;
    // Concurrent queries may flag the same entity; relaxed stores of the
    // same value commute, so the flag array is deterministic.
    std::atomic_ref<uint8_t>(touched_data_[size_t(e)])
        .store(1, std::memory_order_relaxed);
    // dL/dfold += g * t_e.
    Axpy(ge, entities.Of(e), dfold);
  }
  return loss;
}

void OneVsAllTrainer::ScoreChunk(size_t qb, size_t qe) {
  if (qb == qe) return;
  const WeightTable& weights = model_->weights();
  const int32_t dim = model_->dim();
  const EmbeddingStore& entities = model_->entity_store();
  const size_t width = size_t(weights.ne()) * size_t(dim);
  const size_t num_entities = size_t(model_->num_entities());
  if (options_.batched_scoring) {
    // Fold every (h, r) context of the chunk, score them together with
    // one cache-blocked multi-query product over the entity table, then
    // turn scores into per-query gradients. Fusing the three passes per
    // chunk (instead of three barriers per batch) costs one join.
    for (size_t i = qb; i < qe; ++i) {
      const Query& query = queries_[order_[cur_begin_ + i]];
      FoldForTail(weights, dim, entities.Of(query.head),
                  model_->relation_store().Of(query.relation),
                  std::span<float>(folds_.data() + i * width, width));
    }
    DotBatchMulti(
        std::span<const float>(folds_.data() + qb * width,
                               (qe - qb) * width),
        qe - qb, entities.block().Flat(),
        std::span<float>(g_.data() + qb * num_entities,
                         (qe - qb) * num_entities));
    for (size_t i = qb; i < qe; ++i) {
      query_loss_[i] = ComputeQueryGrad(
          queries_[order_[cur_begin_ + i]],
          std::span<float>(g_.data() + i * num_entities, num_entities),
          std::span<float>(dfolds_.data() + i * width, width));
    }
  } else {
    for (size_t i = qb; i < qe; ++i) {
      query_loss_[i] = ScoreQuery(
          queries_[order_[cur_begin_ + i]],
          std::span<float>(folds_.data() + i * width, width),
          std::span<float>(g_.data() + i * num_entities, num_entities),
          std::span<float>(dfolds_.data() + i * width, width));
    }
  }
}

void OneVsAllTrainer::AccumulateEntityChunk(size_t eb, size_t ee) {
  const size_t width =
      size_t(model_->weights().ne()) * size_t(model_->dim());
  const size_t num_entities = size_t(model_->num_entities());
  for (size_t e = eb; e < ee; ++e) {
    if (!touched_data_[e]) continue;
    std::span<float> acc =
        grads_->GradFor(MultiEmbeddingModel::kEntityBlock, int64_t(e));
    for (size_t i = 0; i < cur_count_; ++i) {
      const float ge = g_[i * num_entities + e];
      if (ge == 0.0f) continue;
      Axpy(ge, std::span<const float>(folds_.data() + i * width, width),
           acc);
    }
  }
}

void OneVsAllTrainer::FoldBackChunk(size_t qb, size_t qe) {
  const WeightTable& weights = model_->weights();
  const int32_t dim = model_->dim();
  const EmbeddingStore& entities = model_->entity_store();
  const size_t width = size_t(weights.ne()) * size_t(dim);
  const size_t head_dim =
      size_t(blocks_[MultiEmbeddingModel::kEntityBlock]->row_dim());
  const size_t relation_dim =
      size_t(blocks_[MultiEmbeddingModel::kRelationBlock]->row_dim());
  for (size_t i = qb; i < qe; ++i) {
    const Query& query = queries_[order_[cur_begin_ + i]];
    const std::span<const float> dfold(dfolds_.data() + i * width, width);
    FoldForHead(weights, dim, dfold,
                model_->relation_store().Of(query.relation),
                std::span<float>(head_folds_.data() + i * head_dim,
                                 head_dim));
    FoldForRelation(weights, dim, entities.Of(query.head), dfold,
                    std::span<float>(relation_folds_.data() +
                                         i * relation_dim,
                                     relation_dim));
  }
}

void OneVsAllTrainer::ClearTouched(size_t buffer) {
  std::fill(touched_[buffer].begin(), touched_[buffer].end(), uint8_t(0));
}

void OneVsAllTrainer::ClearTrampoline(void* ctx, size_t begin, size_t end) {
  (void)begin;
  (void)end;
  auto* clear = static_cast<ClearCtx*>(ctx);
  Stopwatch watch;
  clear->trainer->ClearTouched(clear->buffer);
  clear->trainer->AddStageNanos(kStageSample, watch.ElapsedSeconds());
}

double OneVsAllTrainer::RunEpoch(Rng* rng) {
  Stopwatch epoch_watch;
  order_.resize(queries_.size());
  for (size_t i = 0; i < order_.size(); ++i) order_[i] = i;
  rng->Shuffle(&order_);

  const size_t num_entities = size_t(model_->num_entities());
  const size_t width =
      size_t(model_->weights().ne()) * size_t(model_->dim());
  const size_t head_dim =
      size_t(blocks_[MultiEmbeddingModel::kEntityBlock]->row_dim());
  const size_t relation_dim =
      size_t(blocks_[MultiEmbeddingModel::kRelationBlock]->row_dim());

  // First-use growth of the touched-flag buffers (both stay all-zero
  // between batches: the non-overlapped path re-assigns per batch, the
  // overlapped path clears each spent buffer before its reuse and joins
  // the last clears at epoch end).
  const size_t buffers = overlap_clear_ ? 2 : 1;
  for (size_t b = 0; b < buffers; ++b) {
    if (touched_[b].size() != num_entities) {
      touched_[b].assign(num_entities, 0);
    }
  }

  double total_loss = 0.0;
  const size_t batch = size_t(options_.batch_queries);
  for (size_t batch_index = 0; batch_index * batch < order_.size();
       ++batch_index) {
    cur_begin_ = batch_index * batch;
    const size_t end = std::min(cur_begin_ + batch, order_.size());
    cur_count_ = end - cur_begin_;
    grads_->Clear();
    folds_.resize(cur_count_ * width);
    dfolds_.resize(cur_count_ * width);
    g_.resize(cur_count_ * num_entities);
    query_loss_.resize(cur_count_);
    head_folds_.resize(cur_count_ * head_dim);
    relation_folds_.resize(cur_count_ * relation_dim);

    size_t buffer = 0;
    if (overlap_clear_) {
      // The clears scheduled up to two batches ago have this buffer
      // zeroed again; join them before writing new flags.
      pool_->WaitStage(&clear_group_);
      buffer = batch_index & 1;
    } else {
      touched_[0].assign(num_entities, 0);
    }
    touched_data_ = touched_[buffer].data();

    // Stage A — independent per query: fold, batched scores, dL/ds and
    // dL/dfold. Writes only the query's own slices (plus the commuting
    // touched flags), so any partition across threads is safe and
    // bit-identical.
    {
      Stopwatch watch;
      pool_->StageFor(0, cur_count_,
                      [this](size_t qb, size_t qe) { ScoreChunk(qb, qe); });
      AddStageNanos(kStageScore, watch.ElapsedSeconds());
    }

    Stopwatch merge_watch;
    // Register every touched entity row serially, in ascending id order —
    // GradFor inserts are not concurrent-safe, and this order does not
    // depend on the thread count.
    for (size_t e = 0; e < num_entities; ++e) {
      if (touched_data_[e]) {
        grads_->GradFor(MultiEmbeddingModel::kEntityBlock, int64_t(e));
      }
    }

    // Stage B — per entity: dL/dt_e = Σ_i g_i[e] · fold_i, summed in
    // batch order for every partition.
    pool_->StageFor(0, num_entities, [this](size_t eb, size_t ee) {
      AccumulateEntityChunk(eb, ee);
    });

    // The flags are dead from here: clear the spent buffer on idle
    // workers while fold-back and apply finish the batch.
    if (overlap_clear_) {
      clear_ctx_[buffer] = {this, buffer};
      pool_->ScheduleRange(&clear_group_, &OneVsAllTrainer::ClearTrampoline,
                           &clear_ctx_[buffer], 0, 1);
    }

    // Stage C — fold each query's dL/dfold back through the transposed
    // folds in parallel (disjoint per-query rows), then accumulate into
    // the head/relation gradient rows serially: heads can repeat across
    // a batch's queries, so the Axpy order stays fixed batch order.
    pool_->StageFor(0, cur_count_, [this](size_t qb, size_t qe) {
      FoldBackChunk(qb, qe);
    });
    for (size_t i = 0; i < cur_count_; ++i) {
      const Query& query = queries_[order_[cur_begin_ + i]];
      Axpy(1.0f,
           std::span<const float>(head_folds_.data() + i * head_dim,
                                  head_dim),
           grads_->GradFor(MultiEmbeddingModel::kEntityBlock, query.head));
      Axpy(1.0f,
           std::span<const float>(relation_folds_.data() + i * relation_dim,
                                  relation_dim),
           grads_->GradFor(MultiEmbeddingModel::kRelationBlock,
                           query.relation));
      total_loss += query_loss_[i];
    }
    AddStageNanos(kStageMerge, merge_watch.ElapsedSeconds());

    {
      Stopwatch watch;
      optimizer_->Apply(*grads_, pool_.get());
      AddStageNanos(kStageApply, watch.ElapsedSeconds());
    }
  }
  if (overlap_clear_) pool_->WaitStage(&clear_group_);
  wall_nanos_.fetch_add(int64_t(epoch_watch.ElapsedSeconds() * 1e9),
                        std::memory_order_relaxed);
  return queries_.empty() ? 0.0 : total_loss / double(queries_.size());
}

TrainStageStats OneVsAllTrainer::stage_stats() const {
  TrainStageStats stats;
  stats.sample_seconds =
      double(stage_nanos_[kStageSample].load(std::memory_order_relaxed)) *
      1e-9;
  stats.score_seconds =
      double(stage_nanos_[kStageScore].load(std::memory_order_relaxed)) *
      1e-9;
  stats.merge_seconds =
      double(stage_nanos_[kStageMerge].load(std::memory_order_relaxed)) *
      1e-9;
  stats.apply_seconds =
      double(stage_nanos_[kStageApply].load(std::memory_order_relaxed)) *
      1e-9;
  stats.wall_seconds =
      double(wall_nanos_.load(std::memory_order_relaxed)) * 1e-9;
  return stats;
}

void OneVsAllTrainer::ResetStageStats() {
  for (std::atomic<int64_t>& nanos : stage_nanos_) {
    nanos.store(0, std::memory_order_relaxed);
  }
  wall_nanos_.store(0, std::memory_order_relaxed);
}

Result<TrainResult> OneVsAllTrainer::Train(
    const std::vector<Triple>& train_triples, const ValidationFn& validate) {
  if (train_triples.empty())
    return Status::InvalidArgument("empty training set");
  BuildQueries(train_triples);

  TrainLoopConfig config;
  config.trainer_kind = "one_vs_all";
  config.max_epochs = options_.max_epochs;
  config.eval_every_epochs = options_.eval_every_epochs;
  config.patience_epochs = options_.patience_epochs;
  config.restore_best = options_.restore_best;
  config.seed = options_.seed;
  config.log_name = model_->name();
  config.log_throughput_items = int64_t(queries_.size());
  config.checkpointing = options_.checkpointing;
  config.divergence = options_.divergence;

  TrainLoop loop(model_, optimizer_.get(), config);
  // No batch counter: the 1-N loop draws all randomness from the
  // epoch-level rng (query-order shuffles).
  return loop.Run([&](Rng* rng) { return RunEpoch(rng); }, validate,
                  /*batch_counter=*/nullptr);
}

}  // namespace kge
