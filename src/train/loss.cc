#include "train/loss.h"

#include "math/activations.h"
#include "util/check.h"

namespace kge {

double LogisticLoss(double score, double label) {
  KGE_DCHECK(label == 1.0 || label == -1.0);
  return Softplus(-label * score);
}

double LogisticLossGradient(double score, double label) {
  KGE_DCHECK(label == 1.0 || label == -1.0);
  return -label * Sigmoid(-label * score);
}

double PredictedProbability(double score) { return Sigmoid(score); }

double MarginRankingLoss(double positive_score, double negative_score,
                         double margin) {
  const double violation = margin - positive_score + negative_score;
  return violation > 0.0 ? violation : 0.0;
}

bool MarginIsViolated(double positive_score, double negative_score,
                      double margin) {
  return margin - positive_score + negative_score > 0.0;
}

}  // namespace kge
