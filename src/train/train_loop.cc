#include "train/train_loop.h"

#include <chrono>
#include <cmath>
#include <memory>

#include "train/early_stopping.h"
#include "util/check.h"
#include "util/failpoint.h"
#include "util/logging.h"

namespace kge {

TrainLoop::TrainLoop(KgeModel* model, Optimizer* optimizer,
                     TrainLoopConfig config)
    : model_(model), optimizer_(optimizer), config_(std::move(config)) {
  KGE_CHECK(model_ != nullptr && optimizer_ != nullptr);
  KGE_CHECK(!config_.trainer_kind.empty());
}

bool TrainLoop::HasNonFiniteState(double mean_loss) const {
  if (!std::isfinite(mean_loss)) return true;
  const KgeModel& model = *model_;
  for (const ParameterBlock* block : model.Blocks()) {
    for (float value : block->Flat()) {
      if (!std::isfinite(value)) return true;
    }
  }
  return false;
}

std::vector<std::vector<float>> TrainLoop::SnapshotParameters() const {
  std::vector<std::vector<float>> snapshot;
  const KgeModel& model = *model_;
  const std::vector<const ParameterBlock*> blocks = model.Blocks();
  snapshot.reserve(blocks.size());
  for (const ParameterBlock* block : blocks) {
    const auto flat = block->Flat();
    snapshot.emplace_back(flat.begin(), flat.end());
  }
  return snapshot;
}

void TrainLoop::RestoreParameters(
    const std::vector<std::vector<float>>& snapshot) {
  const std::vector<ParameterBlock*> blocks = model_->Blocks();
  KGE_CHECK(snapshot.size() == blocks.size());
  for (size_t b = 0; b < blocks.size(); ++b) {
    const auto flat = blocks[b]->Flat();
    KGE_CHECK(snapshot[b].size() == flat.size());
    std::copy(snapshot[b].begin(), snapshot[b].end(), flat.begin());
  }
}

Result<TrainResult> TrainLoop::Run(
    const std::function<double(Rng*)>& run_epoch, const ValidationFn& validate,
    uint64_t* batch_counter) {
  Rng rng(config_.seed);
  EarlyStopping stopping(config_.patience_epochs);
  std::vector<std::vector<float>> best_snapshot;
  TrainResult result;
  int start_epoch = 0;
  int retries_used = 0;

  std::unique_ptr<CheckpointManager> manager;
  if (!config_.checkpointing.dir.empty()) {
    manager = std::make_unique<CheckpointManager>(
        config_.checkpointing.dir, config_.checkpointing.keep_last);
    KGE_RETURN_IF_ERROR(manager->Init());
  }

  // Reinstates loop state from a checkpoint (resume and rollback paths).
  auto restore_from = [&](const TrainingState& state) -> Status {
    if (state.trainer_kind != config_.trainer_kind) {
      return Status::InvalidArgument(
          "checkpoint was written by trainer '" + state.trainer_kind +
          "', cannot resume '" + config_.trainer_kind + "'");
    }
    if (state.seed != config_.seed) {
      return Status::FailedPrecondition(
          "checkpoint seed " + std::to_string(state.seed) +
          " does not match configured seed " + std::to_string(config_.seed) +
          "; resume would not reproduce the original run");
    }
    start_epoch = state.epoch;
    rng.SetState(state.rng);
    if (batch_counter != nullptr) *batch_counter = state.batch_counter;
    stopping.Restore(state.best_epoch, state.best_metric);
    best_snapshot = state.best_snapshot;
    retries_used = state.divergence_retries_used;
    result.loss_history = state.loss_history;
    result.epoch_seconds = state.epoch_seconds;
    result.validation_history = state.validation_history;
    result.epochs_run = state.epoch;
    result.divergence_rollbacks = retries_used;
    if (!state.loss_history.empty()) {
      result.final_mean_loss = state.loss_history.back();
    }
    return Status::Ok();
  };

  if (manager != nullptr && config_.checkpointing.resume) {
    Result<std::string> latest = manager->LatestPath();
    if (latest.ok()) {
      TrainingState state;
      KGE_RETURN_IF_ERROR(
          LoadTrainingCheckpoint(model_, optimizer_, &state, *latest));
      KGE_RETURN_IF_ERROR(restore_from(state));
      if (config_.log_every_epochs > 0) {
        KGE_LOG(Info) << config_.log_name << " resumed from " << *latest
                      << " after epoch " << start_epoch;
      }
    } else if (latest.status().code() != StatusCode::kNotFound) {
      // A missing checkpoint means "start fresh"; anything else (torn
      // pointer file, unreadable directory) is a real error.
      return latest.status();
    }
  }
  result.start_epoch = start_epoch;

  auto save_checkpoint = [&](int epoch) -> Status {
    TrainingState state;
    state.trainer_kind = config_.trainer_kind;
    state.seed = config_.seed;
    state.epoch = epoch;
    state.batch_counter = batch_counter != nullptr ? *batch_counter : 0;
    state.rng = rng.GetState();
    state.loss_history = result.loss_history;
    state.epoch_seconds = result.epoch_seconds;
    state.validation_history = result.validation_history;
    state.best_epoch = stopping.best_epoch();
    state.best_metric = stopping.has_observation() ? stopping.best_metric()
                                                   : 0.0;
    state.divergence_retries_used = retries_used;
    state.best_snapshot = best_snapshot;
    return manager->Save(*model_, *optimizer_, state);
  };

  for (int epoch = start_epoch + 1; epoch <= config_.max_epochs; ++epoch) {
    const auto epoch_start = std::chrono::steady_clock::now();
    const double mean_loss = run_epoch(&rng);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      epoch_start)
            .count();

    if (config_.divergence.enabled && HasNonFiniteState(mean_loss)) {
      // Non-finite loss or parameters: roll back to the last good
      // checkpoint with a smaller learning rate rather than training on.
      if (manager == nullptr) {
        return Status::FailedPrecondition(
            config_.log_name + ": non-finite loss/parameters at epoch " +
            std::to_string(epoch) +
            " and no checkpoint directory configured to roll back to");
      }
      if (retries_used >= config_.divergence.max_retries) {
        return Status::FailedPrecondition(
            config_.log_name + ": still diverging after " +
            std::to_string(retries_used) + " rollbacks");
      }
      Result<std::string> latest = manager->LatestPath();
      if (!latest.ok()) {
        return Status::FailedPrecondition(
            config_.log_name + ": diverged at epoch " +
            std::to_string(epoch) + " before the first checkpoint (" +
            latest.status().message() + ")");
      }
      TrainingState state;
      KGE_RETURN_IF_ERROR(
          LoadTrainingCheckpoint(model_, optimizer_, &state, *latest));
      // The checkpoint predates this (and possibly earlier) rollbacks,
      // so its stored retry count is stale: keep counting from the live
      // one or the budget would never deplete.
      const int retries_before = retries_used;
      KGE_RETURN_IF_ERROR(restore_from(state));
      retries_used = retries_before + 1;
      result.divergence_rollbacks = retries_used;
      const double lr =
          optimizer_->learning_rate() * config_.divergence.lr_backoff;
      optimizer_->set_learning_rate(lr);
      KGE_LOG(Warning) << config_.log_name << " diverged at epoch " << epoch
                       << "; rolled back to epoch " << state.epoch
                       << ", learning rate reduced to " << lr;
      epoch = state.epoch;  // The loop increment resumes at epoch + 1.
      continue;
    }

    result.epochs_run = epoch;
    result.final_mean_loss = mean_loss;
    result.loss_history.push_back(mean_loss);
    result.epoch_seconds.push_back(seconds);
    if (config_.log_every_epochs > 0 &&
        epoch % config_.log_every_epochs == 0) {
      internal::LogMessage log(LogLevel::kInfo, __FILE__, __LINE__);
      log << config_.log_name << " epoch " << epoch << " loss " << mean_loss;
      if (config_.log_throughput_items > 0 && seconds > 0.0) {
        log << " (" << double(config_.log_throughput_items) / seconds
            << " items/s)";
      }
    }

    bool new_best = false;
    bool should_stop = false;
    if (validate && epoch % config_.eval_every_epochs == 0) {
      const double metric = validate(epoch);
      result.validation_history.emplace_back(epoch, metric);
      if (stopping.Observe(epoch, metric)) {
        new_best = true;
        if (config_.restore_best) best_snapshot = SnapshotParameters();
      }
      if (config_.log_every_epochs > 0) {
        KGE_LOG(Info) << config_.log_name << " epoch " << epoch
                      << " validation " << metric << " (best "
                      << stopping.best_metric() << " @ "
                      << stopping.best_epoch() << ")";
      }
      if (stopping.ShouldStop(epoch)) {
        result.stopped_early = true;
        should_stop = true;
      }
    }

    KGE_RETURN_IF_ERROR(KGE_FAILPOINT("train.epoch.end"));
    if (manager != nullptr) {
      const bool cadence = config_.checkpointing.every_epochs > 0 &&
                           epoch % config_.checkpointing.every_epochs == 0;
      if (cadence || new_best || should_stop ||
          epoch == config_.max_epochs) {
        KGE_RETURN_IF_ERROR(save_checkpoint(epoch));
        KGE_RETURN_IF_ERROR(KGE_FAILPOINT("train.epoch.after_ckpt"));
      }
    }
    if (should_stop) break;
  }

  if (stopping.has_observation()) {
    result.best_validation_metric = stopping.best_metric();
    result.best_epoch = stopping.best_epoch();
    if (config_.restore_best && !best_snapshot.empty()) {
      RestoreParameters(best_snapshot);
    }
  }
  return result;
}

}  // namespace kge
