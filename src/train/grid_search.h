// Hyperparameter grid search, as the paper runs it (§5.3): "we found
// good hyperparameters with grid search on learning rates ∈ {1e-3, 1e-4},
// embedding regularization strengths ∈ {1e-2 ... 0}, and batch sizes
// ∈ {2^12, 2^14}", selecting by validation filtered MRR.
#ifndef KGE_TRAIN_GRID_SEARCH_H_
#define KGE_TRAIN_GRID_SEARCH_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "kg/triple.h"
#include "models/kge_model.h"
#include "train/trainer.h"
#include "util/status.h"

namespace kge {

struct GridSearchSpace {
  std::vector<double> learning_rates = {1e-3, 1e-4};
  std::vector<double> l2_lambdas = {1e-2, 3e-3, 1e-3, 3e-4, 1e-4, 0.0};
  std::vector<int> batch_sizes = {1 << 12, 1 << 14};
};

struct GridPoint {
  double learning_rate = 0.0;
  double l2_lambda = 0.0;
  int batch_size = 0;
  std::string ToString() const;
};

struct GridSearchResult {
  GridPoint best;
  double best_metric = 0.0;
  TrainResult best_train_result;
  // One entry per evaluated point, in evaluation order.
  std::vector<std::pair<GridPoint, double>> all;
};

class GridSearch {
 public:
  // `make_model` constructs a fresh model per grid point (same seed →
  // comparable inits). `validate` computes the selection metric (higher
  // is better; typically validation filtered MRR) for the trained model.
  using ModelFactory = std::function<std::unique_ptr<KgeModel>()>;
  using ValidateFn = std::function<double(KgeModel*)>;

  GridSearch(GridSearchSpace space, TrainerOptions base_options)
      : space_(std::move(space)), base_options_(base_options) {}

  // Trains one model per grid point and returns the best configuration.
  // The per-epoch early-stopping validation inside Trainer still runs
  // through `validate` as well.
  Result<GridSearchResult> Run(const ModelFactory& make_model,
                               const std::vector<Triple>& train,
                               const ValidateFn& validate) const;

  // All points in the space, in sweep order.
  std::vector<GridPoint> Points() const;

 private:
  GridSearchSpace space_;
  TrainerOptions base_options_;
};

}  // namespace kge

#endif  // KGE_TRAIN_GRID_SEARCH_H_
