#include "train/grid_search.h"

#include "util/logging.h"
#include "util/string_utils.h"

namespace kge {

std::string GridPoint::ToString() const {
  return StrFormat("lr=%g lambda=%g batch=%d", learning_rate, l2_lambda,
                   batch_size);
}

std::vector<GridPoint> GridSearch::Points() const {
  std::vector<GridPoint> points;
  for (double lr : space_.learning_rates) {
    for (double lambda : space_.l2_lambdas) {
      for (int batch : space_.batch_sizes) {
        points.push_back({lr, lambda, batch});
      }
    }
  }
  return points;
}

Result<GridSearchResult> GridSearch::Run(
    const ModelFactory& make_model, const std::vector<Triple>& train,
    const ValidateFn& validate) const {
  const std::vector<GridPoint> points = Points();
  if (points.empty()) return Status::InvalidArgument("empty grid");

  GridSearchResult result;
  bool have_best = false;
  for (const GridPoint& point : points) {
    std::unique_ptr<KgeModel> model = make_model();
    if (model == nullptr) return Status::InvalidArgument("null model");
    TrainerOptions options = base_options_;
    options.learning_rate = point.learning_rate;
    options.l2_lambda = point.l2_lambda;
    options.batch_size = point.batch_size;
    Trainer trainer(model.get(), options);
    Result<TrainResult> train_result = trainer.Train(
        train, [&](int) { return validate(model.get()); });
    if (!train_result.ok()) return train_result.status();
    const double metric = validate(model.get());
    KGE_LOG(Info) << "grid point " << point.ToString() << " -> " << metric;
    result.all.emplace_back(point, metric);
    if (!have_best || metric > result.best_metric) {
      have_best = true;
      result.best = point;
      result.best_metric = metric;
      result.best_train_result = *train_result;
    }
  }
  return result;
}

}  // namespace kge
