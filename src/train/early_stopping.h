// Early stopping on a validation metric (§5.3: "All training runs were
// stopped early by checking the filtered MRR on the validation set after
// every 50 epochs, with 100 epochs patient").
#ifndef KGE_TRAIN_EARLY_STOPPING_H_
#define KGE_TRAIN_EARLY_STOPPING_H_

#include <cstdint>

namespace kge {

class EarlyStopping {
 public:
  // `patience_epochs`: stop when no improvement for this many epochs.
  // `min_delta`: improvements smaller than this do not reset patience.
  explicit EarlyStopping(int patience_epochs, double min_delta = 0.0)
      : patience_epochs_(patience_epochs), min_delta_(min_delta) {}

  // Records a validation metric (higher = better) observed at `epoch`.
  // Returns true if this is a new best.
  bool Observe(int epoch, double metric);

  bool ShouldStop(int epoch) const;

  double best_metric() const { return best_metric_; }
  int best_epoch() const { return best_epoch_; }
  bool has_observation() const { return best_epoch_ >= 0; }

  // Reinstates state captured in a checkpoint (the resume path), so a
  // resumed run stops at exactly the same epoch as an uninterrupted one.
  // A checkpoint taken before any validation stores best_epoch -1, which
  // restores to the no-observation initial state.
  void Restore(int best_epoch, double best_metric) {
    best_epoch_ = best_epoch;
    best_metric_ = best_metric;
  }

 private:
  int patience_epochs_;
  double min_delta_;
  double best_metric_ = -1e300;
  int best_epoch_ = -1;
};

}  // namespace kge

#endif  // KGE_TRAIN_EARLY_STOPPING_H_
