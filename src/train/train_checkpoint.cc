#include "train/train_checkpoint.h"

#include <dirent.h>

#include <algorithm>
#include <cstdio>

#include "util/failpoint.h"
#include "util/string_utils.h"

namespace kge {
namespace {

// Training-state section layout (inside the v2 container, after the
// model section; all through the file CRC):
//   string trainer_kind
//   u64    seed
//   u64    last completed epoch
//   u64    batch counter
//   u64[4] rng state words, u32 has_cached_gaussian, f64 cached gaussian
//   u64 n, f64[n]          loss history
//   u64 n, f64[n]          epoch seconds
//   u64 n, (u64, f64)[n]   validation history
//   u64    best epoch + 1 (0 = none), f64 best metric
//   u64    divergence retries used
//   u64 b, float[][b]      best-parameter snapshot (0 blocks = none)
//   optimizer state (Optimizer::SaveState: name, lr, moments, steps)

Status WriteDoubleVector(const std::vector<double>& values,
                         BinaryWriter* writer) {
  KGE_RETURN_IF_ERROR(writer->WriteUint64(values.size()));
  for (double value : values) KGE_RETURN_IF_ERROR(writer->WriteDouble(value));
  return Status::Ok();
}

Status ReadDoubleVector(BinaryReader* reader, std::vector<double>* values) {
  Result<uint64_t> count = reader->ReadUint64();
  if (!count.ok()) return count.status();
  if (*count * sizeof(double) > reader->remaining())
    return Status::IoError("history length exceeds file size");
  values->clear();
  values->reserve(size_t(*count));
  for (uint64_t i = 0; i < *count; ++i) {
    Result<double> value = reader->ReadDouble();
    if (!value.ok()) return value.status();
    values->push_back(*value);
  }
  return Status::Ok();
}

Status WriteTrainingSection(const Optimizer& optimizer,
                            const TrainingState& state,
                            BinaryWriter* writer) {
  KGE_RETURN_IF_ERROR(writer->WriteString(state.trainer_kind));
  KGE_RETURN_IF_ERROR(writer->WriteUint64(state.seed));
  KGE_RETURN_IF_ERROR(writer->WriteUint64(uint64_t(state.epoch)));
  KGE_RETURN_IF_ERROR(writer->WriteUint64(state.batch_counter));
  for (uint64_t word : state.rng.s) {
    KGE_RETURN_IF_ERROR(writer->WriteUint64(word));
  }
  KGE_RETURN_IF_ERROR(
      writer->WriteUint32(state.rng.has_cached_gaussian ? 1u : 0u));
  KGE_RETURN_IF_ERROR(writer->WriteDouble(state.rng.cached_gaussian));
  KGE_RETURN_IF_ERROR(WriteDoubleVector(state.loss_history, writer));
  KGE_RETURN_IF_ERROR(WriteDoubleVector(state.epoch_seconds, writer));
  KGE_RETURN_IF_ERROR(writer->WriteUint64(state.validation_history.size()));
  for (const auto& [epoch, metric] : state.validation_history) {
    KGE_RETURN_IF_ERROR(writer->WriteUint64(uint64_t(epoch)));
    KGE_RETURN_IF_ERROR(writer->WriteDouble(metric));
  }
  KGE_RETURN_IF_ERROR(writer->WriteUint64(uint64_t(state.best_epoch + 1)));
  KGE_RETURN_IF_ERROR(writer->WriteDouble(state.best_metric));
  KGE_RETURN_IF_ERROR(
      writer->WriteUint64(uint64_t(state.divergence_retries_used)));
  KGE_RETURN_IF_ERROR(writer->WriteUint64(state.best_snapshot.size()));
  for (const std::vector<float>& block : state.best_snapshot) {
    KGE_RETURN_IF_ERROR(writer->WriteFloatArray(block.data(), block.size()));
  }
  return optimizer.SaveState(writer);
}

Status ReadTrainingSection(const KgeModel& model, Optimizer* optimizer,
                           TrainingState* state, BinaryReader* reader) {
  Result<std::string> kind = reader->ReadString();
  if (!kind.ok()) return kind.status();
  state->trainer_kind = *kind;
  Result<uint64_t> seed = reader->ReadUint64();
  if (!seed.ok()) return seed.status();
  state->seed = *seed;
  Result<uint64_t> epoch = reader->ReadUint64();
  if (!epoch.ok()) return epoch.status();
  state->epoch = int(*epoch);
  Result<uint64_t> batch_counter = reader->ReadUint64();
  if (!batch_counter.ok()) return batch_counter.status();
  state->batch_counter = *batch_counter;
  for (uint64_t& word : state->rng.s) {
    Result<uint64_t> value = reader->ReadUint64();
    if (!value.ok()) return value.status();
    word = *value;
  }
  Result<uint32_t> has_gaussian = reader->ReadUint32();
  if (!has_gaussian.ok()) return has_gaussian.status();
  state->rng.has_cached_gaussian = *has_gaussian != 0;
  Result<double> gaussian = reader->ReadDouble();
  if (!gaussian.ok()) return gaussian.status();
  state->rng.cached_gaussian = *gaussian;
  KGE_RETURN_IF_ERROR(ReadDoubleVector(reader, &state->loss_history));
  KGE_RETURN_IF_ERROR(ReadDoubleVector(reader, &state->epoch_seconds));
  Result<uint64_t> validations = reader->ReadUint64();
  if (!validations.ok()) return validations.status();
  if (*validations * (sizeof(uint64_t) + sizeof(double)) > reader->remaining())
    return Status::IoError("validation history exceeds file size");
  state->validation_history.clear();
  for (uint64_t i = 0; i < *validations; ++i) {
    Result<uint64_t> at_epoch = reader->ReadUint64();
    if (!at_epoch.ok()) return at_epoch.status();
    Result<double> metric = reader->ReadDouble();
    if (!metric.ok()) return metric.status();
    state->validation_history.emplace_back(int(*at_epoch), *metric);
  }
  Result<uint64_t> best_epoch = reader->ReadUint64();
  if (!best_epoch.ok()) return best_epoch.status();
  state->best_epoch = int(*best_epoch) - 1;
  Result<double> best_metric = reader->ReadDouble();
  if (!best_metric.ok()) return best_metric.status();
  state->best_metric = *best_metric;
  Result<uint64_t> retries = reader->ReadUint64();
  if (!retries.ok()) return retries.status();
  state->divergence_retries_used = int(*retries);
  Result<uint64_t> snapshot_blocks = reader->ReadUint64();
  if (!snapshot_blocks.ok()) return snapshot_blocks.status();
  const std::vector<const ParameterBlock*> blocks = model.Blocks();
  if (*snapshot_blocks != 0 && *snapshot_blocks != blocks.size()) {
    return Status::InvalidArgument(
        "best-snapshot block count does not match model");
  }
  state->best_snapshot.clear();
  for (uint64_t b = 0; b < *snapshot_blocks; ++b) {
    std::vector<float> block(size_t(blocks[size_t(b)]->size()));
    KGE_RETURN_IF_ERROR(reader->ReadFloatArray(block.data(), block.size()));
    state->best_snapshot.push_back(std::move(block));
  }
  return optimizer->LoadState(reader);
}

// Parses "<prefix>ckpt_<epoch>.kge2" file names; returns -1 otherwise.
int EpochOfCheckpointName(const std::string& name) {
  if (!StartsWith(name, "ckpt_") || !EndsWith(name, ".kge2")) return -1;
  const std::string digits = name.substr(5, name.size() - 10);
  Result<int64_t> epoch = ParseInt64(digits);
  if (!epoch.ok() || *epoch < 0) return -1;
  return int(*epoch);
}

}  // namespace

Status SaveTrainingCheckpoint(const KgeModel& model,
                              const Optimizer& optimizer,
                              const TrainingState& state,
                              const std::string& path) {
  KGE_RETURN_IF_ERROR(KGE_FAILPOINT("ckpt.save.begin"));
  BinaryWriter writer;
  KGE_RETURN_IF_ERROR(writer.OpenAtomic(path));
  KGE_RETURN_IF_ERROR(
      WriteCheckpointHeader(CheckpointKind::kTrainingState, &writer));
  KGE_RETURN_IF_ERROR(WriteModelSection(model, &writer));
  KGE_RETURN_IF_ERROR(WriteTrainingSection(optimizer, state, &writer));
  KGE_RETURN_IF_ERROR(WriteCheckpointFooter(&writer));
  return writer.Close();
}

Status LoadTrainingCheckpoint(KgeModel* model, Optimizer* optimizer,
                              TrainingState* state, const std::string& path) {
  KGE_RETURN_IF_ERROR(KGE_FAILPOINT("ckpt.load.begin"));
  // CRC pass first: a torn or bit-rotted file must be rejected before a
  // single model parameter or optimizer moment is overwritten.
  KGE_RETURN_IF_ERROR(VerifyCheckpoint(path));
  BinaryReader reader;
  KGE_RETURN_IF_ERROR(reader.Open(path));
  Result<CheckpointKind> header_kind = ReadCheckpointHeader(&reader, path);
  if (!header_kind.ok()) return header_kind.status();
  if (*header_kind != CheckpointKind::kTrainingState) {
    return Status::InvalidArgument(path +
                                   " holds no training state (model-only "
                                   "checkpoint; cannot resume from it)");
  }
  KGE_RETURN_IF_ERROR(ReadModelSection(model, &reader));
  KGE_RETURN_IF_ERROR(ReadTrainingSection(*model, optimizer, state, &reader));
  KGE_RETURN_IF_ERROR(ReadCheckpointFooter(&reader));
  return reader.Close();
}

CheckpointManager::CheckpointManager(std::string dir, int keep_last)
    : dir_(std::move(dir)), keep_last_(std::max(keep_last, 1)) {}

Status CheckpointManager::Init() {
  KGE_RETURN_IF_ERROR(CreateDirectories(dir_));
  saved_epochs_.clear();
  DIR* dir = ::opendir(dir_.c_str());
  if (dir == nullptr) return Status::IoError("cannot read " + dir_);
  while (struct dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    // A crash can strand an uncommitted `<file>.tmp` from an atomic
    // write; it is never referenced, so sweep it on startup.
    if (EndsWith(name, ".tmp")) {
      std::remove((dir_ + "/" + name).c_str());
      continue;
    }
    const int epoch = EpochOfCheckpointName(name);
    if (epoch >= 0) saved_epochs_.push_back(epoch);
  }
  ::closedir(dir);
  std::sort(saved_epochs_.begin(), saved_epochs_.end());
  return Status::Ok();
}

std::string CheckpointManager::PathForEpoch(int epoch) const {
  return dir_ + "/ckpt_" + std::to_string(epoch) + ".kge2";
}

Result<std::string> CheckpointManager::LatestPath() const {
  const std::string pointer = dir_ + "/LATEST";
  if (!FileExists(pointer))
    return Status::NotFound("no checkpoint in " + dir_);
  Result<std::string> name = ReadFileToString(pointer);
  if (!name.ok()) return name.status();
  const std::string target = dir_ + "/" + std::string(TrimString(*name));
  if (!FileExists(target))
    return Status::NotFound("LATEST references missing file " + target);
  return target;
}

Status CheckpointManager::Save(const KgeModel& model,
                               const Optimizer& optimizer,
                               const TrainingState& state) {
  KGE_RETURN_IF_ERROR(
      SaveTrainingCheckpoint(model, optimizer, state, PathForEpoch(state.epoch)));
  if (!std::binary_search(saved_epochs_.begin(), saved_epochs_.end(),
                          state.epoch)) {
    saved_epochs_.insert(std::upper_bound(saved_epochs_.begin(),
                                          saved_epochs_.end(), state.epoch),
                         state.epoch);
  }
  // The checkpoint file is durable before LATEST moves: a crash here
  // leaves LATEST on the previous (complete) checkpoint.
  KGE_RETURN_IF_ERROR(KGE_FAILPOINT("ckpt.save.latest"));
  KGE_RETURN_IF_ERROR(AtomicWriteStringToFile(
      dir_ + "/LATEST", "ckpt_" + std::to_string(state.epoch) + ".kge2\n"));
  KGE_RETURN_IF_ERROR(KGE_FAILPOINT("ckpt.save.retention"));
  return GarbageCollect(state.epoch, state.best_epoch);
}

Status CheckpointManager::GarbageCollect(int latest_epoch, int best_epoch) {
  if (int(saved_epochs_.size()) <= keep_last_) return Status::Ok();
  // Keep the newest keep_last_ epochs, plus the best-validation epoch
  // and whatever LATEST points to (normally among the newest anyway).
  std::vector<int> keep(saved_epochs_.end() - keep_last_,
                        saved_epochs_.end());
  std::vector<int> remaining;
  for (int epoch : saved_epochs_) {
    const bool kept = epoch == latest_epoch || epoch == best_epoch ||
                      std::find(keep.begin(), keep.end(), epoch) != keep.end();
    if (kept) {
      remaining.push_back(epoch);
      continue;
    }
    if (std::remove(PathForEpoch(epoch).c_str()) != 0) {
      return Status::IoError("cannot delete " + PathForEpoch(epoch));
    }
  }
  saved_epochs_ = std::move(remaining);
  return Status::Ok();
}

}  // namespace kge
