// Full training-state checkpoints and their on-disk management.
//
// A training checkpoint is a format-v2 file (models/checkpoint.h) of
// kind kTrainingState: the model section every reader understands, plus
// a training-state section holding everything needed to resume a run
// bit-identically — optimizer moments and step counts, the epoch-level
// RNG state, loss/validation histories, early-stopping state, and the
// best-parameters snapshot for restore_best. kge_eval can read these
// files directly (it skips the training section).
//
// CheckpointManager owns a checkpoint directory:
//
//   <dir>/ckpt_<epoch>.kge2   one durable checkpoint per saved epoch
//   <dir>/LATEST              text file naming the newest checkpoint
//
// Save order is crash-safe by construction: the checkpoint file is
// fully written, fsynced, and renamed into place BEFORE the LATEST
// pointer is (atomically) updated, and retention deletes only files
// LATEST no longer references. A crash at any instant leaves LATEST
// pointing at a complete, CRC-valid checkpoint (or no LATEST at all,
// for a first save) — the property the failpoint kill-and-resume
// harness enforces at every injected crash site.
#ifndef KGE_TRAIN_TRAIN_CHECKPOINT_H_
#define KGE_TRAIN_TRAIN_CHECKPOINT_H_

#include <string>
#include <utility>
#include <vector>

#include "models/checkpoint.h"
#include "models/kge_model.h"
#include "optim/optimizer.h"
#include "util/random.h"
#include "util/status.h"

namespace kge {

// Where/how often a training run checkpoints. An empty `dir` disables
// checkpointing entirely (the default — no behavior change for
// existing callers).
struct CheckpointingOptions {
  std::string dir;
  // Save a checkpoint every N completed epochs (also at early stop and
  // at the final epoch).
  int every_epochs = 1;
  // Retention: keep this many newest checkpoints (the best-validation
  // epoch's file and the LATEST target are always kept).
  int keep_last = 3;
  // Resume from <dir>/LATEST if it exists; an empty/missing directory
  // starts fresh.
  bool resume = false;
};

// Per-epoch non-finite loss/parameter detection with rollback.
struct DivergenceGuardOptions {
  bool enabled = true;
  // How many rollbacks to attempt before giving up.
  int max_retries = 2;
  // Learning-rate multiplier applied after each rollback.
  double lr_backoff = 0.5;
};

// Everything the epoch loop needs to continue exactly where a previous
// process stopped. `epoch` is the last COMPLETED epoch; resume starts
// at epoch + 1.
struct TrainingState {
  // Which loop wrote this state ("negative_sampling" | "one_vs_all");
  // verified on resume so checkpoints cannot cross trainers.
  std::string trainer_kind;
  uint64_t seed = 0;
  int epoch = 0;
  // Trainer's global batch counter (drives DeriveStreamSeed); unused by
  // the one-vs-all loop.
  uint64_t batch_counter = 0;
  // Epoch-level RNG (shuffles) at the moment the epoch completed.
  RngState rng;
  std::vector<double> loss_history;
  std::vector<double> epoch_seconds;
  std::vector<std::pair<int, double>> validation_history;
  // EarlyStopping state (best_epoch -1 = no observation yet).
  int best_epoch = -1;
  double best_metric = 0.0;
  int divergence_retries_used = 0;
  // Parameter snapshot at the best validation epoch (for restore_best);
  // empty when no validation has happened yet.
  std::vector<std::vector<float>> best_snapshot;
};

// Writes a kind-kTrainingState v2 checkpoint (atomic + CRC).
Status SaveTrainingCheckpoint(const KgeModel& model,
                              const Optimizer& optimizer,
                              const TrainingState& state,
                              const std::string& path);

// Restores model parameters, optimizer state, and `state` from `path`.
// The file's CRC is verified BEFORE any state is mutated. The model and
// optimizer must match the saving configuration (names and shapes are
// checked).
Status LoadTrainingCheckpoint(KgeModel* model, Optimizer* optimizer,
                              TrainingState* state, const std::string& path);

class CheckpointManager {
 public:
  CheckpointManager(std::string dir, int keep_last);

  // Creates the directory if needed and indexes existing checkpoints
  // (so retention keeps working across resumed processes).
  Status Init();

  // Path of the checkpoint file for `epoch`.
  std::string PathForEpoch(int epoch) const;

  // Path the LATEST pointer currently references; NotFound when the
  // directory holds no committed checkpoint yet.
  Result<std::string> LatestPath() const;

  // Durably saves `state` (at state.epoch), updates LATEST, then
  // applies retention (keep_last newest + state.best_epoch + LATEST).
  Status Save(const KgeModel& model, const Optimizer& optimizer,
              const TrainingState& state);

 private:
  Status GarbageCollect(int latest_epoch, int best_epoch);

  std::string dir_;
  int keep_last_;
  // Epochs with an on-disk checkpoint file, ascending.
  std::vector<int> saved_epochs_;
};

}  // namespace kge

#endif  // KGE_TRAIN_TRAIN_CHECKPOINT_H_
