#include "train/early_stopping.h"

namespace kge {

bool EarlyStopping::Observe(int epoch, double metric) {
  if (!has_observation() || metric > best_metric_ + min_delta_) {
    best_metric_ = metric;
    best_epoch_ = epoch;
    return true;
  }
  return false;
}

bool EarlyStopping::ShouldStop(int epoch) const {
  if (!has_observation()) return false;
  return epoch - best_epoch_ >= patience_epochs_;
}

}  // namespace kge
