// 1-N ("KvsAll") training for multi-embedding interaction models — the
// regime ConvE introduced and modern trilinear implementations adopt:
// instead of sampling negatives, each training query (h, ?, r) is scored
// against EVERY entity at once and trained with multi-label binary
// cross-entropy, where the positive labels are all tails known in the
// training set.
//
// This exploits the fold structure of Eq. (8): per query the scores are
// one fold (O(|ω|·D)) plus N dot products, and the full gradient is
//   dL/ds_e    = σ(s_e) − y_e
//   dL/dt_e    = (σ(s_e) − y_e) · fold            (every entity row!)
//   dL/dfold   = Σ_e (σ(s_e) − y_e) · t_e
//   dL/dh, dL/dr = the transposed folds of dL/dfold.
//
// Head queries are covered by training on inverse-augmented triples
// (kg/augmentation.h), as ConvE does with reciprocal relations.
//
// The batch machine is a pipeline of fork-join stages (DESIGN.md §5f):
// a fused per-chunk score stage (fold + cache-blocked multi-query scores
// + per-query gradients), a per-entity accumulate stage, a parallel
// head/relation fold-back stage with a serial batch-order apply, and —
// with pipeline_depth > 1 — the next batch's touched-flag clear runs on
// idle workers while this batch finishes. All stages partition writes
// disjointly and sum in fixed batch order, so losses and parameters are
// bit-identical for every thread count and depth.
#ifndef KGE_TRAIN_ONE_VS_ALL_H_
#define KGE_TRAIN_ONE_VS_ALL_H_

#include <atomic>
#include <functional>
#include <vector>

#include "models/trilinear_models.h"
#include "optim/optimizer.h"
#include "train/trainer.h"
#include "util/hotpath.h"
#include "util/status.h"

namespace kge {

struct OneVsAllOptions {
  int max_epochs = 200;
  // Queries (distinct (h, r) pairs) per optimizer step.
  int batch_queries = 128;
  std::string optimizer = "adam";
  double learning_rate = 1e-3;
  // ConvE-style label smoothing: y := y(1 − ls) + ls/N.
  double label_smoothing = 0.0;
  int eval_every_epochs = 20;
  int patience_epochs = 60;
  bool restore_best = true;
  uint64_t seed = 1234;
  // Worker threads; 0 auto-detects std::thread::hardware_concurrency()
  // (ResolveNumThreads). Queries fan out across the pool (folds +
  // batched scores), then entity gradient rows do; every per-row sum
  // runs in fixed batch order, so losses and parameters are
  // bit-identical for every num_threads.
  int num_threads = 1;
  // Score a batch's queries with one cache-blocked multi-query product
  // (simd::DotBatchMulti) over the entity table instead of one GEMV per
  // query, streaming each entity tile once per batch. Scores — and
  // therefore losses and updated parameters — are bit-identical either
  // way; false keeps the per-query path (used by the equality tests).
  bool batched_scoring = true;
  // Pipeline depth (1–3, matching TrainerOptions). Depth > 1
  // double-buffers the batch's touched-entity flags and clears the spent
  // buffer on idle workers while the next batch is already scoring; the
  // flags are cleared to the same zeros either way, so the depth cannot
  // change results. (The 1-N gradient is dense in the entity table, so
  // unlike negative sampling there is no sampling stage to run ahead;
  // effective overlap saturates at depth 2.)
  int pipeline_depth = 2;
  // Durable checkpointing + exact resume (off unless `dir` is set) and
  // non-finite-loss rollback; see train/train_checkpoint.h.
  CheckpointingOptions checkpointing;
  DivergenceGuardOptions divergence;
};

class OneVsAllTrainer {
 public:
  using ValidationFn = ::kge::ValidationFn;

  OneVsAllTrainer(MultiEmbeddingModel* model, const OneVsAllOptions& options);

  // Trains on the tail queries of `train_triples` (augment with inverses
  // beforehand to cover head queries).
  Result<TrainResult> Train(const std::vector<Triple>& train_triples,
                            const ValidationFn& validate);

  // One pass over all queries; returns mean per-query loss.
  double RunEpoch(Rng* rng);

  // Cumulative stage timings since construction (or the last reset);
  // sample = overlapped flag clears, score = fused fold+score+grad,
  // merge = entity accumulate + fold-back, apply = optimizer.
  TrainStageStats stage_stats() const;
  void ResetStageStats();

 private:
  struct Query {
    EntityId head;
    RelationId relation;
    std::vector<EntityId> tails;
  };
  struct ClearCtx {
    OneVsAllTrainer* trainer;
    size_t buffer;
  };

  void BuildQueries(const std::vector<Triple>& train_triples);

  static void ClearTrampoline(void* ctx, size_t begin, size_t end);

  // Stage A of the batch pipeline, independent per query: fold (h, r),
  // score every entity with one DotBatch GEMV, convert scores in place
  // to dL/ds values in `g`, accumulate dL/dfold into `dfold`, and flag
  // touched entities. Returns the query's BCE loss. The batched-scoring
  // path fuses this per chunk in ScoreChunk instead.
  KGE_HOT_NOALLOC
  double ScoreQuery(const Query& query, std::span<float> fold,
                    std::span<float> g, std::span<float> dfold);
  // The post-scoring half of ScoreQuery: `g` holds the query's scores on
  // entry and its dL/ds values on exit; accumulates dL/dfold and flags
  // touched entities. Returns the query's BCE loss.
  KGE_HOT_NOALLOC
  double ComputeQueryGrad(const Query& query, std::span<float> g,
                          std::span<float> dfold);

  // Pipeline stage roots over the current batch (cur_begin_/cur_count_),
  // each writing only its chunk's disjoint slices:
  //
  // Score stage: folds queries [qb, qe), scores them against the whole
  // entity table with one cache-blocked DotBatchMulti (per-cell scores
  // equal the per-query DotBatch scores by the simd contract, so the
  // chunking is invisible to the numerics), then ComputeQueryGrad each.
  KGE_HOT_NOALLOC
  void ScoreChunk(size_t qb, size_t qe);
  // Accumulate stage: dL/dt_e = Σ_i g_i[e] · fold_i for entities
  // [eb, ee), summed in batch order for every partition; rows are
  // pre-registered, so the concurrent GradFor calls are pure lookups.
  KGE_HOT_NOALLOC
  void AccumulateEntityChunk(size_t eb, size_t ee);
  // Fold-back stage: per query, the transposed folds of dL/dfold into
  // per-query head/relation gradient rows (accumulated serially, in
  // batch order, by RunEpoch afterwards — heads can repeat in a batch).
  KGE_HOT_NOALLOC
  void FoldBackChunk(size_t qb, size_t qe);
  // Clear stage (the depth > 1 overlap): zeroes a spent touched-flag
  // buffer on idle workers while the next batch is already scoring.
  KGE_HOT_NOALLOC
  void ClearTouched(size_t buffer);

  void AddStageNanos(int stage, double seconds) {
    stage_nanos_[stage].fetch_add(int64_t(seconds * 1e9),
                                  std::memory_order_relaxed);
  }

  MultiEmbeddingModel* model_;
  OneVsAllOptions options_;
  std::vector<Query> queries_;
  std::unique_ptr<Optimizer> optimizer_;
  std::unique_ptr<GradientBuffer> grads_;
  // Always constructed; 1 thread means "run inline".
  std::unique_ptr<ThreadPool> pool_;
  std::vector<ParameterBlock*> blocks_;
  // Batch-level scratch, reused every batch (zero steady-state allocs):
  // per-query fold / dfold / per-entity dL/ds matrices, per-query loss
  // and head/relation fold-back rows, and the double-buffered
  // touched-entity flags (written with relaxed atomic_ref stores from
  // concurrent queries; cleared on idle workers when depth > 1).
  std::vector<size_t> order_;
  std::vector<float> folds_;
  std::vector<float> dfolds_;
  std::vector<float> g_;
  std::vector<double> query_loss_;
  std::vector<uint8_t> touched_[2];
  std::vector<float> head_folds_;
  std::vector<float> relation_folds_;

  // ---- Pipeline state ----
  bool overlap_clear_ = false;  // depth > 1 and a real pool
  ThreadPool::StageGroup clear_group_;
  ClearCtx clear_ctx_[2] = {};
  // Current-batch window for the stage roots (set before the stages are
  // scheduled, constant until their joins).
  size_t cur_begin_ = 0;
  size_t cur_count_ = 0;
  uint8_t* touched_data_ = nullptr;

  // Stage timing (sample/score/merge/apply; see TrainStageStats).
  std::atomic<int64_t> stage_nanos_[4] = {};
  std::atomic<int64_t> wall_nanos_{0};
};

}  // namespace kge

#endif  // KGE_TRAIN_ONE_VS_ALL_H_
