// 1-N ("KvsAll") training for multi-embedding interaction models — the
// regime ConvE introduced and modern trilinear implementations adopt:
// instead of sampling negatives, each training query (h, ?, r) is scored
// against EVERY entity at once and trained with multi-label binary
// cross-entropy, where the positive labels are all tails known in the
// training set.
//
// This exploits the fold structure of Eq. (8): per query the scores are
// one fold (O(|ω|·D)) plus N dot products, and the full gradient is
//   dL/ds_e    = σ(s_e) − y_e
//   dL/dt_e    = (σ(s_e) − y_e) · fold            (every entity row!)
//   dL/dfold   = Σ_e (σ(s_e) − y_e) · t_e
//   dL/dh, dL/dr = the transposed folds of dL/dfold.
//
// Head queries are covered by training on inverse-augmented triples
// (kg/augmentation.h), as ConvE does with reciprocal relations.
#ifndef KGE_TRAIN_ONE_VS_ALL_H_
#define KGE_TRAIN_ONE_VS_ALL_H_

#include <functional>
#include <vector>

#include "models/trilinear_models.h"
#include "optim/optimizer.h"
#include "train/trainer.h"
#include "util/hotpath.h"
#include "util/status.h"

namespace kge {

struct OneVsAllOptions {
  int max_epochs = 200;
  // Queries (distinct (h, r) pairs) per optimizer step.
  int batch_queries = 128;
  std::string optimizer = "adam";
  double learning_rate = 1e-3;
  // ConvE-style label smoothing: y := y(1 − ls) + ls/N.
  double label_smoothing = 0.0;
  int eval_every_epochs = 20;
  int patience_epochs = 60;
  bool restore_best = true;
  uint64_t seed = 1234;
  // Worker threads. Queries fan out across the pool (folds + batched
  // scores), then entity gradient rows do; every per-row sum runs in
  // fixed batch order, so losses and parameters are bit-identical for
  // every num_threads.
  int num_threads = 1;
  // Score a batch's queries with one cache-blocked multi-query product
  // (simd::DotBatchMulti) over the entity table instead of one GEMV per
  // query, streaming each entity tile once per batch. Scores — and
  // therefore losses and updated parameters — are bit-identical either
  // way; false keeps the per-query path (used by the equality tests).
  bool batched_scoring = true;
  // Durable checkpointing + exact resume (off unless `dir` is set) and
  // non-finite-loss rollback; see train/train_checkpoint.h.
  CheckpointingOptions checkpointing;
  DivergenceGuardOptions divergence;
};

class OneVsAllTrainer {
 public:
  using ValidationFn = ::kge::ValidationFn;

  OneVsAllTrainer(MultiEmbeddingModel* model, const OneVsAllOptions& options);

  // Trains on the tail queries of `train_triples` (augment with inverses
  // beforehand to cover head queries).
  Result<TrainResult> Train(const std::vector<Triple>& train_triples,
                            const ValidationFn& validate);

  // One pass over all queries; returns mean per-query loss.
  double RunEpoch(Rng* rng);

 private:
  struct Query {
    EntityId head;
    RelationId relation;
    std::vector<EntityId> tails;
  };
  void BuildQueries(const std::vector<Triple>& train_triples);
  // Stage A of the batch pipeline, independent per query: fold (h, r),
  // score every entity with one DotBatch GEMV, convert scores in place
  // to dL/ds values in `g`, accumulate dL/dfold into `dfold`, and flag
  // touched entities. Returns the query's BCE loss. The batched-scoring
  // path splits this into a fold stage, one DotBatchMulti over the whole
  // batch, and ComputeQueryGrad.
  KGE_HOT_NOALLOC
  double ScoreQuery(const Query& query, std::span<float> fold,
                    std::span<float> g, std::span<float> dfold);
  // The post-scoring half of ScoreQuery: `g` holds the query's scores on
  // entry and its dL/ds values on exit; accumulates dL/dfold and flags
  // touched entities. Returns the query's BCE loss.
  KGE_HOT_NOALLOC
  double ComputeQueryGrad(const Query& query, std::span<float> g,
                          std::span<float> dfold);

  MultiEmbeddingModel* model_;
  OneVsAllOptions options_;
  std::vector<Query> queries_;
  std::unique_ptr<Optimizer> optimizer_;
  std::unique_ptr<GradientBuffer> grads_;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<ParameterBlock*> blocks_;
  // Batch-level scratch, reused every batch (zero steady-state allocs):
  // per-query fold / dfold / per-entity dL/ds matrices, per-query loss,
  // and the batch's touched-entity flags (written with relaxed
  // atomic_ref stores from concurrent queries).
  std::vector<size_t> order_;
  std::vector<float> folds_;
  std::vector<float> dfolds_;
  std::vector<float> g_;
  std::vector<double> query_loss_;
  std::vector<uint8_t> entity_touched_;
  std::vector<float> head_fold_;
  std::vector<float> relation_fold_;
};

}  // namespace kge

#endif  // KGE_TRAIN_ONE_VS_ALL_H_
