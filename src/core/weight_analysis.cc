#include "core/weight_analysis.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/string_utils.h"

namespace kge {

double WeightProperties::Overall() const {
  return std::cbrt(completeness * stability * distinguishability);
}

std::string WeightProperties::ToString() const {
  return StrFormat(
      "completeness=%.3f stability=%.3f distinguishability=%.3f overall=%.3f",
      completeness, stability, distinguishability, Overall());
}

WeightProperties AnalyzeWeightTable(const WeightTable& weights) {
  WeightProperties props;
  const int32_t ne = weights.ne();
  const int32_t nr = weights.nr();

  // Total |weight| carried by each slot of each group.
  std::vector<double> head_mass(size_t(ne), 0.0);
  std::vector<double> tail_mass(size_t(ne), 0.0);
  std::vector<double> relation_mass(size_t(nr), 0.0);
  double total_mass = 0.0;
  for (const WeightTable::Term& term : weights.terms()) {
    const double w = std::fabs(double(term.weight));
    head_mass[size_t(term.i)] += w;
    tail_mass[size_t(term.j)] += w;
    relation_mass[size_t(term.k)] += w;
    total_mass += w;
  }

  // Completeness: fraction of slots with any mass.
  int covered = 0;
  int total_slots = 2 * ne + nr;
  for (double m : head_mass) covered += m > 0.0;
  for (double m : tail_mass) covered += m > 0.0;
  for (double m : relation_mass) covered += m > 0.0;
  props.completeness = double(covered) / double(total_slots);

  // Stability: min over groups of (min slot mass / max slot mass).
  auto balance = [](const std::vector<double>& mass) {
    const double lo = *std::min_element(mass.begin(), mass.end());
    const double hi = *std::max_element(mass.begin(), mass.end());
    return hi <= 0.0 ? 0.0 : lo / hi;
  };
  props.stability = std::min(
      {balance(head_mass), balance(tail_mass), balance(relation_mass)});

  // Distinguishability: normalized distance to the head/tail transpose.
  if (total_mass > 0.0) {
    const WeightTable transposed = weights.HeadTailTransposed();
    double diff = 0.0;
    const auto a = weights.Flat();
    const auto b = transposed.Flat();
    for (size_t m = 0; m < a.size(); ++m) {
      diff += std::fabs(double(a[m]) - double(b[m]));
    }
    props.distinguishability = diff / (2.0 * total_mass);
  }
  return props;
}

}  // namespace kge
