// Range restrictions on the learnable weight vector ω (§3.3): ω = f(ρ)
// for raw parameters ρ, with f ∈ {identity, tanh, sigmoid, softmax}.
// Backward() implements the exact chain rule dL/dρ from dL/dω; softmax
// needs the full Jacobian-vector product because its outputs are coupled.
#ifndef KGE_CORE_RESTRICTION_H_
#define KGE_CORE_RESTRICTION_H_

#include <span>
#include <string>

#include "util/status.h"

namespace kge {

enum class RestrictionKind {
  kNone,     // ω = ρ, unrestricted
  kTanh,     // ω ∈ (−1, 1)
  kSigmoid,  // ω ∈ (0, 1)
  kSoftmax,  // ω ∈ (0, 1), Σω = 1
};

const char* RestrictionKindToString(RestrictionKind kind);
Result<RestrictionKind> RestrictionKindFromString(const std::string& name);

// omega_m = f(raw)_m; spans must have equal size.
void ApplyRestriction(RestrictionKind kind, std::span<const float> raw,
                      std::span<float> omega);

// Given omega = f(raw) (as produced by ApplyRestriction) and the upstream
// gradient dL/dω, accumulates (+=) dL/dρ into `raw_grad`.
void RestrictionBackward(RestrictionKind kind, std::span<const float> omega,
                         std::span<const float> omega_grad,
                         std::span<float> raw_grad);

}  // namespace kge

#endif  // KGE_CORE_RESTRICTION_H_
