// ParameterBlock: a named, row-structured flat float parameter array —
// the unit of storage the optimizers update. Embedding matrices are
// blocks with one row per entity/relation; the learnable weight vector ω
// is a block with a single row. GradientBuffer accumulates sparse
// per-row gradients for one mini-batch.
#ifndef KGE_CORE_PARAMETER_BLOCK_H_
#define KGE_CORE_PARAMETER_BLOCK_H_

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/hotpath.h"
#include "util/random.h"

namespace kge {

class ParameterBlock {
 public:
  ParameterBlock(std::string name, int64_t num_rows, int64_t row_dim);

  const std::string& name() const { return name_; }
  int64_t num_rows() const { return num_rows_; }
  int64_t row_dim() const { return row_dim_; }
  int64_t size() const { return num_rows_ * row_dim_; }

  std::span<float> Row(int64_t row);
  std::span<const float> Row(int64_t row) const;
  std::span<float> Flat() {
    BumpGeneration();
    return std::span<float>(mutable_storage(), size_t(size()));
  }
  std::span<const float> Flat() const {
    return std::span<const float>(storage(), size_t(size()));
  }

  // Re-points the block at caller-owned storage of exactly size()
  // floats, releasing the internally owned array. The serving layer
  // uses this to back blocks directly by an mmap'ed checkpoint so
  // startup does not copy the embedding tables. The storage must stay
  // valid and writable (MAP_PRIVATE is fine) for the block's lifetime.
  // Bumps the generation stamp: any derived cache must rebuild.
  void BorrowStorage(float* backing, int64_t count);

  bool borrows_storage() const { return view_ != nullptr; }

  // Initializers (deterministic given the Rng state).
  void InitUniform(Rng* rng, float lo, float hi);
  void InitGaussian(Rng* rng, float stddev);
  // Xavier/Glorot-style range ±sqrt(6 / (rows_per_id + dim)); for
  // embedding tables the conventional choice is ±sqrt(6/dim) — pass the
  // per-vector dimension explicitly.
  void InitXavierUniform(Rng* rng, int64_t fan);
  void Zero();

  // Monotone mutation stamp: bumped by every mutable access (non-const
  // Row/Flat, the initializers, Zero) and never by const reads. Derived
  // caches — the precision-tiered ScoringReplica — compare it against
  // the generation they were built at to decide whether a rebuild is
  // due. Starts at 1 so "never built" (0) is distinguishable. The bump
  // is a relaxed atomic because the optimizer's parallel apply writes
  // disjoint rows from several threads; the stamp only answers "has
  // anything changed", so ordering beyond the count does not matter.
  uint64_t generation() const {
    return generation_.load(std::memory_order_relaxed);
  }

 private:
  KGE_HOT_NOALLOC
  void BumpGeneration() {
    generation_.fetch_add(1, std::memory_order_relaxed);
  }

  float* mutable_storage() { return view_ != nullptr ? view_ : data_.data(); }
  const float* storage() const {
    return view_ != nullptr ? view_ : data_.data();
  }

  std::string name_;
  int64_t num_rows_;
  int64_t row_dim_;
  std::vector<float> data_;
  // When non-null, the block reads/writes this caller-owned storage
  // instead of data_ (see BorrowStorage).
  float* view_ = nullptr;
  std::atomic<uint64_t> generation_{1};
};

// Sparse per-(block, row) gradient accumulator. Rows are indexed through
// an open-addressing flat table with generation-stamped slots, so the
// steady-state training loop performs ZERO heap allocations: Clear() is
// a generation bump, row storage is recycled, and the probe table only
// grows (rehashes) until the high-water row count is reached.
//
// Thread-safety: GradFor may insert and is NOT safe to call
// concurrently. Once a row is registered (touched since the last
// Clear()), concurrent GradFor/Find calls for registered rows are pure
// reads of the probe table and are safe, as is writing the returned
// spans from one thread per row — the parallel merge/apply path
// registers rows serially and then fans row work out by ShardOfRow().
class GradientBuffer {
 public:
  // The referenced blocks must outlive the buffer.
  explicit GradientBuffer(std::vector<ParameterBlock*> blocks);

  size_t num_blocks() const { return blocks_.size(); }
  ParameterBlock* block(size_t index) const { return blocks_[index]; }

  // Returns the gradient accumulator row for (block_index, row), zeroed on
  // first touch within the current batch. Accumulate with +=.
  KGE_HOT_NOALLOC
  std::span<float> GradFor(size_t block_index, int64_t row);

  // Read-only lookup: the accumulator for (block_index, row), or an empty
  // span if the row is untouched in the current batch. Never inserts.
  KGE_HOT_NOALLOC
  std::span<const float> Find(size_t block_index, int64_t row) const;

  // Resets all touched rows; keeps capacity.
  void Clear();

  // Pre-sizes every block's row pool and probe table for up to
  // `rows_per_block` touched rows, so batches within that bound never
  // allocate. Callers that know a worst-case rows-per-batch (the
  // trainers) use this to make the steady state allocation-free from
  // the first batch instead of after capacity has warmed up.
  void Reserve(size_t rows_per_block);

  // Deterministic row -> shard assignment (SplitMix64 over the pair) used
  // to partition touched rows across threads for the parallel gradient
  // merge and optimizer apply. Stable across platforms and runs.
  KGE_HOT_NOALLOC
  static size_t ShardOfRow(size_t block_index, int64_t row,
                           size_t num_shards);

  // Calls fn(block_index, row, grad) for every touched row.
  template <typename Fn>
  KGE_HOT_NOALLOC void ForEach(Fn&& fn) const {
    for (size_t b = 0; b < blocks_.size(); ++b) {
      const PerBlock& pb = per_block_[b];
      for (size_t slot = 0; slot < pb.rows.size(); ++slot) {
        fn(b, pb.rows[slot], std::span<const float>(pb.pool[slot]));
      }
    }
  }

  // ForEach restricted to rows with ShardOfRow(block, row) == shard.
  // Iterating every shard in [0, num_shards) visits each touched row
  // exactly once; per-row visit order (registration order) is identical
  // for every num_shards, so shard-parallel per-row work is bit-stable.
  template <typename Fn>
  KGE_HOT_NOALLOC void ForEachShard(size_t shard, size_t num_shards, Fn&& fn) const {
    for (size_t b = 0; b < blocks_.size(); ++b) {
      const PerBlock& pb = per_block_[b];
      for (size_t slot = 0; slot < pb.rows.size(); ++slot) {
        if (ShardOfRow(b, pb.rows[slot], num_shards) != shard) continue;
        fn(b, pb.rows[slot], std::span<const float>(pb.pool[slot]));
      }
    }
  }

  // Mutable variant of ForEachShard for the parallel gradient merge.
  template <typename Fn>
  KGE_HOT_NOALLOC void ForEachShardMut(size_t shard, size_t num_shards, Fn&& fn) {
    for (size_t b = 0; b < blocks_.size(); ++b) {
      PerBlock& pb = per_block_[b];
      for (size_t slot = 0; slot < pb.rows.size(); ++slot) {
        if (ShardOfRow(b, pb.rows[slot], num_shards) != shard) continue;
        fn(b, pb.rows[slot], std::span<float>(pb.pool[slot]));
      }
    }
  }

  // Number of touched rows across all blocks.
  size_t NumTouchedRows() const;

 private:
  struct PerBlock {
    // Touched rows in registration order.
    std::vector<int64_t> rows;
    // One stable allocation per slot: spans handed out by GradFor must
    // stay valid while later calls add slots. Slots are recycled across
    // Clear() calls, so steady-state training does not allocate.
    std::vector<std::vector<float>> pool;
    // Open-addressing row -> slot map (linear probing, power-of-two
    // capacity). A table entry is live iff its stamp equals `generation`,
    // which lets Clear() invalidate the whole table in O(1).
    std::vector<int64_t> table_rows;
    std::vector<uint32_t> table_slots;
    std::vector<uint32_t> table_stamps;
    uint32_t generation = 1;
  };

  // Probe for `row`; returns the table index holding it or the first
  // free index. `found` reports which.
  static size_t Probe(const PerBlock& pb, int64_t row, bool* found);
  // Rebuilds the probe table at `capacity` entries (a power of two at
  // least twice the registered row count).
  static void Grow(PerBlock& pb, size_t capacity);

  std::vector<ParameterBlock*> blocks_;
  std::vector<PerBlock> per_block_;
};

}  // namespace kge

#endif  // KGE_CORE_PARAMETER_BLOCK_H_
