// ParameterBlock: a named, row-structured flat float parameter array —
// the unit of storage the optimizers update. Embedding matrices are
// blocks with one row per entity/relation; the learnable weight vector ω
// is a block with a single row. GradientBuffer accumulates sparse
// per-row gradients for one mini-batch.
#ifndef KGE_CORE_PARAMETER_BLOCK_H_
#define KGE_CORE_PARAMETER_BLOCK_H_

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/random.h"

namespace kge {

class ParameterBlock {
 public:
  ParameterBlock(std::string name, int64_t num_rows, int64_t row_dim);

  const std::string& name() const { return name_; }
  int64_t num_rows() const { return num_rows_; }
  int64_t row_dim() const { return row_dim_; }
  int64_t size() const { return num_rows_ * row_dim_; }

  std::span<float> Row(int64_t row);
  std::span<const float> Row(int64_t row) const;
  std::span<float> Flat() { return data_; }
  std::span<const float> Flat() const { return data_; }

  // Initializers (deterministic given the Rng state).
  void InitUniform(Rng* rng, float lo, float hi);
  void InitGaussian(Rng* rng, float stddev);
  // Xavier/Glorot-style range ±sqrt(6 / (rows_per_id + dim)); for
  // embedding tables the conventional choice is ±sqrt(6/dim) — pass the
  // per-vector dimension explicitly.
  void InitXavierUniform(Rng* rng, int64_t fan);
  void Zero();

 private:
  std::string name_;
  int64_t num_rows_;
  int64_t row_dim_;
  std::vector<float> data_;
};

// Sparse per-(block, row) gradient accumulator. Memory is pooled and
// reused across Clear() calls so steady-state training does not allocate.
class GradientBuffer {
 public:
  // The referenced blocks must outlive the buffer.
  explicit GradientBuffer(std::vector<ParameterBlock*> blocks);

  size_t num_blocks() const { return blocks_.size(); }
  ParameterBlock* block(size_t index) const { return blocks_[index]; }

  // Returns the gradient accumulator row for (block_index, row), zeroed on
  // first touch within the current batch. Accumulate with +=.
  std::span<float> GradFor(size_t block_index, int64_t row);

  // Resets all touched rows; keeps capacity.
  void Clear();

  // Calls fn(block_index, row, grad) for every touched row.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t b = 0; b < blocks_.size(); ++b) {
      const PerBlock& pb = per_block_[b];
      for (size_t slot = 0; slot < pb.rows.size(); ++slot) {
        fn(b, pb.rows[slot], std::span<const float>(pb.pool[slot]));
      }
    }
  }

  // Number of touched rows across all blocks.
  size_t NumTouchedRows() const;

 private:
  struct PerBlock {
    std::unordered_map<int64_t, size_t> slot_of_row;
    std::vector<int64_t> rows;
    // One stable allocation per slot: spans handed out by GradFor must
    // stay valid while later calls add slots. Slots are recycled across
    // Clear() calls, so steady-state training does not allocate.
    std::vector<std::vector<float>> pool;
  };

  std::vector<ParameterBlock*> blocks_;
  std::vector<PerBlock> per_block_;
};

}  // namespace kge

#endif  // KGE_CORE_PARAMETER_BLOCK_H_
