// The Dirichlet negative log-likelihood sparsity regularizer on ω
// (Eq. 12):
//
//   L_dir = −λ_dir Σ_m (α − 1) · log(|ω_m| / ||ω||₁)
//
// With α < 1 the term is minimized by sparse ω (mass concentrated on few
// components). The paper tunes α = 1/16 and λ_dir = 1e-2.
#ifndef KGE_CORE_DIRICHLET_REGULARIZER_H_
#define KGE_CORE_DIRICHLET_REGULARIZER_H_

#include <span>

namespace kge {

struct DirichletOptions {
  double alpha = 1.0 / 16.0;
  double lambda = 1e-2;
  // Floor on |ω_m| and ||ω||₁ to keep log/division finite.
  double epsilon = 1e-8;
};

// Loss value (including the −λ(α−1) factor).
double DirichletNll(std::span<const float> omega,
                    const DirichletOptions& options);

// Accumulates (+=) dL_dir/dω into `grad`:
//   dL/dω_p = −λ(α−1) · sign(ω_p) · (1/|ω_p| − M/||ω||₁),
// where M is the number of components.
void AddDirichletGradient(std::span<const float> omega,
                          const DirichletOptions& options,
                          std::span<float> grad);

}  // namespace kge

#endif  // KGE_CORE_DIRICHLET_REGULARIZER_H_
