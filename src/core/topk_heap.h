// TopKHeap: the bounded top-k selector shared by offline prediction
// (eval/topk.h), the online serving reduction (serve/micro_batcher.h),
// and the sharded/pruned ranking scans (models/kge_model.h). It lives in
// core/ — below both eval/ and models/ — so the model interface can take
// a heap parameter without an include cycle.
//
// Ordering is deterministic: higher score first, ties broken by smaller
// id. Because (score, id) is a strict total order, the top-k set over any
// candidate stream is unique — which is what makes per-shard selection
// followed by MergeFrom return exactly the single-pass result regardless
// of how the candidates were partitioned.
#ifndef KGE_CORE_TOPK_HEAP_H_
#define KGE_CORE_TOPK_HEAP_H_

#include <algorithm>
#include <span>
#include <vector>

#include "util/hotpath.h"

namespace kge {

template <typename ScoreT, typename IdT>
struct ScoredItem {
  IdT entity{};
  ScoreT score{};
};

// Bounded top-k selector. `ResetCapacity(k)` arms the heap for one
// selection pass; `PushCandidate` offers one (id, score) pair;
// `TakeSorted` returns the k best seen so far, best first (score
// descending, ties by ascending id — fully deterministic regardless of
// push order). The backing storage is reused across resets so the push
// path performs no allocation in steady state, making it safe to call
// from KGE_HOT_NOALLOC roots; `Reserve` pre-grows the storage so even
// the first ResetCapacity of a reused heap stays allocation-free.
//
// Internally a min-heap of the k best candidates: the root is the worst
// kept entry, so a new candidate is accepted iff it beats the root under
// the (score, id) order.
template <typename ScoreT, typename IdT>
class TopKHeap {
 public:
  using Entry = ScoredItem<ScoreT, IdT>;

  TopKHeap() = default;
  explicit TopKHeap(int k) { ResetCapacity(k); }

  // Pre-grows the backing storage for capacities up to k without arming
  // the heap. Cold path (serve worker / scan setup); after this,
  // ResetCapacity(j) for any j <= k performs no allocation.
  void Reserve(int k) {
    if (k > 0 && entries_.size() < size_t(k)) entries_.resize(size_t(k));
  }

  // Clears the heap and sets the number of entries to keep. Negative k
  // is treated as 0. Grows the backing storage on first use only. Also
  // drops any prune floor from the previous selection pass.
  void ResetCapacity(int k) {
    capacity_ = std::max(k, 0);
    if (entries_.size() < size_t(capacity_)) {
      // kge-hotpath: allow(cold-start high-water growth of a reused buffer)
      entries_.resize(size_t(capacity_));
    }
    size_ = 0;
    has_floor_ = false;
    floor_ = ScoreT{};
  }

  int capacity() const { return capacity_; }
  int size() const { return size_; }
  bool full() const { return size_ == capacity_; }

  // The worst kept score (the heap root). Only meaningful when full():
  // until the heap holds k entries every candidate is accepted, so there
  // is no pruning threshold yet.
  ScoreT WorstScore() const { return entries_[0].score; }

  // Installs a global lower bound on the final k-th best score, letting
  // bound-based scans skip candidate tiles even before this heap fills.
  // This is what makes pruning effective for *sharded* selection: a
  // shard heap's own minimum only reflects its shard, but the k-th best
  // score of ANY >= k candidates (e.g. a primed prefix scan) lower-
  // bounds the global k-th best, so tiles strictly below it can hold no
  // final top-k member in any shard. Cleared by ResetCapacity.
  void SetPruneFloor(ScoreT floor) {
    floor_ = floor;
    has_floor_ = true;
  }

  // True when a tile whose scores are all <= `bound` cannot contribute
  // to the final top-k: either the bound is strictly below the shared
  // prune floor, or the heap is full and the bound is strictly below
  // the current k-th best. Equality never skips — a candidate scoring
  // exactly the threshold may still win its tie on smaller id.
  KGE_HOT_NOALLOC
  bool CanSkipBound(double bound) const {
    if (has_floor_ && bound < double(floor_)) return true;
    return full() && bound < double(entries_[0].score);
  }

  // Offers one candidate. O(log k) worst case, O(1) when the candidate
  // is worse than the current k-th best (the common case once warm).
  KGE_HOT_NOALLOC
  void PushCandidate(IdT id, ScoreT score) {
    if (capacity_ == 0) return;
    if (size_ < capacity_) {
      entries_[size_t(size_)] = Entry{id, score};
      ++size_;
      SiftUpFromBack();
      return;
    }
    if (!BeatsEntry(id, score, entries_[0])) return;
    entries_[0] = Entry{id, score};
    SiftDownFromRoot();
  }

  // Offers scores[e] for every id e in [0, scores.size()) that does not
  // appear in `excluded` (which must be sorted ascending, as
  // FilterIndex::Known* spans are).
  KGE_HOT_NOALLOC
  void PushScoresExcluding(std::span<const ScoreT> scores,
                           std::span<const IdT> excluded) {
    size_t cursor = 0;
    for (size_t e = 0; e < scores.size(); ++e) {
      while (cursor < excluded.size() && size_t(excluded[cursor]) < e) {
        ++cursor;
      }
      if (cursor < excluded.size() && size_t(excluded[cursor]) == e) continue;
      PushCandidate(IdT(e), scores[e]);
    }
  }

  // Merges another heap's kept entries into this one (the shard-merge
  // step of sharded top-k). Because the (score, id) order is total, the
  // merged result is exactly the top-k of the union — independent of
  // shard count, shard boundaries, and merge order. Zero-alloc: only
  // PushCandidate on already-reserved storage.
  KGE_HOT_NOALLOC
  void MergeFrom(const TopKHeap& other) {
    for (int i = 0; i < other.size_; ++i) {
      PushCandidate(other.entries_[size_t(i)].entity,
                    other.entries_[size_t(i)].score);
    }
  }

  // Sorts the kept entries best-first and returns a view into the
  // heap's storage. Invalidates the heap order: call ResetCapacity
  // before the next selection pass. The span is valid until then.
  KGE_HOT_NOALLOC
  std::span<const Entry> TakeSorted() {
    std::sort(entries_.begin(), entries_.begin() + size_,
              [](const Entry& a, const Entry& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.entity < b.entity;
              });
    return std::span<const Entry>(entries_.data(), size_t(size_));
  }

 private:
  // True when candidate (id, score) ranks strictly better than `e`:
  // higher score, or equal score with smaller id.
  static bool BeatsEntry(IdT id, ScoreT score, const Entry& e) {
    if (score != e.score) return score > e.score;
    return id < e.entity;
  }

  KGE_HOT_NOALLOC
  void SiftUpFromBack() {
    size_t i = size_t(size_) - 1;
    while (i > 0) {
      const size_t parent = (i - 1) / 2;
      // Heap property: every parent ranks worse than its children, so
      // the root is the worst kept entry. Swap while violated.
      if (!BeatsEntry(entries_[parent].entity, entries_[parent].score,
                      entries_[i])) {
        break;
      }
      const Entry tmp = entries_[parent];
      entries_[parent] = entries_[i];
      entries_[i] = tmp;
      i = parent;
    }
  }

  KGE_HOT_NOALLOC
  void SiftDownFromRoot() {
    size_t i = 0;
    const size_t n = size_t(size_);
    while (true) {
      const size_t left = 2 * i + 1;
      const size_t right = left + 1;
      size_t worst = i;
      if (left < n && !BeatsEntry(entries_[left].entity, entries_[left].score,
                                  entries_[worst])) {
        worst = left;
      }
      if (right < n &&
          !BeatsEntry(entries_[right].entity, entries_[right].score,
                      entries_[worst])) {
        worst = right;
      }
      if (worst == i) break;
      const Entry tmp = entries_[worst];
      entries_[worst] = entries_[i];
      entries_[i] = tmp;
      i = worst;
    }
  }

  std::vector<Entry> entries_;
  int capacity_ = 0;
  int size_ = 0;
  ScoreT floor_{};
  bool has_floor_ = false;
};

}  // namespace kge

#endif  // KGE_CORE_TOPK_HEAP_H_
