#include "core/restriction.h"

#include <cmath>
#include <vector>

#include "math/activations.h"
#include "util/check.h"

namespace kge {

const char* RestrictionKindToString(RestrictionKind kind) {
  switch (kind) {
    case RestrictionKind::kNone:
      return "none";
    case RestrictionKind::kTanh:
      return "tanh";
    case RestrictionKind::kSigmoid:
      return "sigmoid";
    case RestrictionKind::kSoftmax:
      return "softmax";
  }
  return "?";
}

Result<RestrictionKind> RestrictionKindFromString(const std::string& name) {
  if (name == "none") return RestrictionKind::kNone;
  if (name == "tanh") return RestrictionKind::kTanh;
  if (name == "sigmoid") return RestrictionKind::kSigmoid;
  if (name == "softmax") return RestrictionKind::kSoftmax;
  return Status::InvalidArgument("unknown restriction: " + name);
}

void ApplyRestriction(RestrictionKind kind, std::span<const float> raw,
                      std::span<float> omega) {
  KGE_CHECK(raw.size() == omega.size());
  switch (kind) {
    case RestrictionKind::kNone:
      for (size_t m = 0; m < raw.size(); ++m) omega[m] = raw[m];
      return;
    case RestrictionKind::kTanh:
      for (size_t m = 0; m < raw.size(); ++m)
        omega[m] = static_cast<float>(std::tanh(double(raw[m])));
      return;
    case RestrictionKind::kSigmoid:
      for (size_t m = 0; m < raw.size(); ++m)
        omega[m] = static_cast<float>(Sigmoid(double(raw[m])));
      return;
    case RestrictionKind::kSoftmax: {
      std::vector<double> in(raw.begin(), raw.end());
      std::vector<double> out(raw.size());
      Softmax(in, out);
      for (size_t m = 0; m < raw.size(); ++m)
        omega[m] = static_cast<float>(out[m]);
      return;
    }
  }
}

void RestrictionBackward(RestrictionKind kind, std::span<const float> omega,
                         std::span<const float> omega_grad,
                         std::span<float> raw_grad) {
  KGE_CHECK(omega.size() == omega_grad.size() &&
            omega.size() == raw_grad.size());
  switch (kind) {
    case RestrictionKind::kNone:
      for (size_t m = 0; m < omega.size(); ++m) raw_grad[m] += omega_grad[m];
      return;
    case RestrictionKind::kTanh:
      for (size_t m = 0; m < omega.size(); ++m) {
        raw_grad[m] += omega_grad[m] *
                       static_cast<float>(TanhDerivFromOutput(omega[m]));
      }
      return;
    case RestrictionKind::kSigmoid:
      for (size_t m = 0; m < omega.size(); ++m) {
        raw_grad[m] += omega_grad[m] *
                       static_cast<float>(SigmoidDerivFromOutput(omega[m]));
      }
      return;
    case RestrictionKind::kSoftmax: {
      std::vector<double> y(omega.begin(), omega.end());
      std::vector<double> g(omega_grad.begin(), omega_grad.end());
      std::vector<double> out(omega.size());
      SoftmaxBackward(y, g, out);
      for (size_t m = 0; m < omega.size(); ++m) {
        raw_grad[m] += static_cast<float>(out[m]);
      }
      return;
    }
  }
}

}  // namespace kge
