// EmbeddingStore: the multi-embedding table of §3.1 — for each id (entity
// or relation) it holds `num_vectors` embedding vectors of `dim`
// dimensions, stored contiguously per id so the ranking kernels can treat
// an id's full multi-embedding as one flat row of num_vectors * dim
// floats.
#ifndef KGE_CORE_EMBEDDING_STORE_H_
#define KGE_CORE_EMBEDDING_STORE_H_

#include <span>
#include <string>

#include "core/parameter_block.h"
#include "util/status.h"

namespace kge {

class BinaryReader;
class BinaryWriter;

class EmbeddingStore {
 public:
  EmbeddingStore(std::string name, int32_t num_ids, int32_t num_vectors,
                 int32_t dim);

  int32_t num_ids() const { return num_ids_; }
  int32_t num_vectors() const { return num_vectors_; }
  int32_t dim() const { return dim_; }

  // The whole multi-embedding of `id`: num_vectors * dim floats, vector v
  // occupying [v*dim, (v+1)*dim).
  std::span<float> Of(int32_t id) { return block_.Row(id); }
  std::span<const float> Of(int32_t id) const { return block_.Row(id); }

  // The v-th embedding vector of `id`.
  std::span<float> Vec(int32_t id, int32_t v);
  std::span<const float> Vec(int32_t id, int32_t v) const;

  ParameterBlock* block() { return &block_; }
  const ParameterBlock& block() const { return block_; }

  // Paper §5.3 default init; range scaled to the per-vector dimension.
  void InitXavier(Rng* rng) { block_.InitXavierUniform(rng, dim_); }

  // Renormalizes every individual embedding vector of `id` to unit L2
  // norm (the paper's entity constraint, applied after each iteration).
  void NormalizeVectorsOf(int32_t id);

  // Checkpoint round trip (shape header + raw floats).
  Status Save(BinaryWriter* writer) const;
  Status Load(BinaryReader* reader);

 private:
  int32_t num_ids_;
  int32_t num_vectors_;
  int32_t dim_;
  ParameterBlock block_;
};

}  // namespace kge

#endif  // KGE_CORE_EMBEDDING_STORE_H_
