// ScoringReplica: precision-tiered read-only companions to a
// ParameterBlock for the DRAM-bound full-vocabulary ranking path.
// Full-vocab ranking streams the whole entity table per query batch, so
// bytes-per-candidate — not FLOPs — bound throughput once the table
// outgrows L3. The tiers trade accumulation width and candidate bytes
// for speed (see math/simd.h's precision-tier contract for the exact
// numerics):
//
//   kDouble  — the exact baseline: double-accumulation kernels over the
//              float master table. No replica involved.
//   kFloat32 — float-accumulation kernels over the SAME master rows: the
//              master table already stores float, so this tier changes
//              arithmetic width only, never the bytes streamed. No copy,
//              always fresh.
//   kInt8    — a materialized per-row absmax-quantized int8 copy of the
//              master block: 1 byte per element instead of 4, plus one
//              float scale per row. The only tier that owns storage.
//
// Lifecycle: the int8 replica is rebuilt on demand, synced to the master
// via ParameterBlock::generation() — every mutable access to the master
// bumps the stamp, and EnsureFresh() requantizes iff the stamp moved
// since the last build. During pure evaluation the master never mutates,
// so the rebuild happens once and scoring is replica-read-only from then
// on; interleaved train/eval pays one requantization pass per eval.
//
// Thread-safety: EnsureFresh() mutates and is NOT safe to call
// concurrently with anything. Models call it from
// KgeModel::PrepareForScoring before fanning scoring out; the hot
// accessors (Int8Rows/Int8Scales) are then pure reads.
#ifndef KGE_CORE_SCORING_REPLICA_H_
#define KGE_CORE_SCORING_REPLICA_H_

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "core/parameter_block.h"
#include "util/hotpath.h"

namespace kge {

// The numeric tier full-vocabulary ranking kernels score at
// (EvalOptions::score_precision, kge_eval/kge_train --eval-precision).
enum class ScorePrecision { kDouble, kFloat32, kInt8 };

// "double", "float32", or "int8" — the CLI spelling, also stamped into
// BENCH_eval.json's precision section.
const char* ScorePrecisionName(ScorePrecision precision);

// Parses a --eval-precision value ("double" | "float32" | "int8") into
// `*out`; returns false (leaving `*out` untouched) on anything else.
bool ParseScorePrecision(std::string_view text, ScorePrecision* out);

class ScoringReplica {
 public:
  // The master block must outlive the replica. Construction is cheap;
  // no tier is materialized until EnsureFresh() asks for one.
  explicit ScoringReplica(const ParameterBlock* master);

  // True when scoring at `precision` needs no rebuild. The double and
  // float32 tiers read the master table directly, so they are always
  // fresh; the int8 tier is fresh iff its quantized table was built at
  // the master's current generation.
  bool IsFresh(ScorePrecision precision) const;

  // Materializes (or requantizes) the tier's backing data if stale; a
  // cheap stamp comparison when fresh. NOT thread-safe — run once
  // before fanning scoring out.
  void EnsureFresh(ScorePrecision precision);

  // The quantized table: num_rows × row_dim int8 codes and one
  // dequantization scale per row, laid out for simd::DotBatchMultiI8.
  // The int8 tier must be fresh.
  KGE_HOT_NOALLOC
  std::span<const std::int8_t> Int8Rows() const;
  KGE_HOT_NOALLOC
  std::span<const float> Int8Scales() const;

  // ---- Per-tile score bounds (pruned ranking path, DESIGN.md §5h) ----------
  //
  // One float per simd::PrunedTileRows(row_dim) tile of the table: the
  // max row L2 norm inside the tile (master tiers) resp. the max of
  // scales[row]·‖codes_row‖₂ (int8 tier). Multiplied by a query's fold
  // norm and simd::kPruneBoundSlack this is a conservative upper bound
  // on every score the tile can produce (Cauchy–Schwarz), which is what
  // lets the pruned scans skip provably sub-threshold tiles without
  // ever changing a result. Generation-stamped exactly like the int8
  // table; EnsureBoundsFresh is NOT thread-safe (call it from
  // PrepareForScoring, before the scoring fanout).

  bool BoundsFresh(ScorePrecision precision) const;
  void EnsureBoundsFresh(ScorePrecision precision);

  // The bound array for `precision`'s table (kDouble and kFloat32 share
  // the master-table bounds). Bounds must be fresh.
  KGE_HOT_NOALLOC
  std::span<const float> TileBounds(ScorePrecision precision) const;

  // Master generation the int8 table was built at; 0 = never built.
  uint64_t built_generation() const { return int8_generation_; }

 private:
  const ParameterBlock* master_;
  std::vector<std::int8_t> int8_rows_;
  std::vector<float> int8_scales_;
  uint64_t int8_generation_ = 0;
  // Tile bounds over the master float table (serves kDouble + kFloat32)
  // and over the quantized table, each with its own build stamp.
  std::vector<float> master_bounds_;
  std::vector<float> int8_bounds_;
  uint64_t master_bounds_generation_ = 0;
  uint64_t int8_bounds_generation_ = 0;
};

}  // namespace kge

#endif  // KGE_CORE_SCORING_REPLICA_H_
