#include "core/parameter_block.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/check.h"

namespace kge {

ParameterBlock::ParameterBlock(std::string name, int64_t num_rows,
                               int64_t row_dim)
    : name_(std::move(name)), num_rows_(num_rows), row_dim_(row_dim) {
  KGE_CHECK(num_rows_ >= 0 && row_dim_ > 0);
  data_.assign(static_cast<size_t>(num_rows_ * row_dim_), 0.0f);
}

std::span<float> ParameterBlock::Row(int64_t row) {
  KGE_DCHECK(row >= 0 && row < num_rows_);
  BumpGeneration();
  return std::span<float>(
      mutable_storage() + size_t(row) * size_t(row_dim_), size_t(row_dim_));
}

std::span<const float> ParameterBlock::Row(int64_t row) const {
  KGE_DCHECK(row >= 0 && row < num_rows_);
  return std::span<const float>(
      storage() + size_t(row) * size_t(row_dim_), size_t(row_dim_));
}

void ParameterBlock::BorrowStorage(float* backing, int64_t count) {
  KGE_CHECK(backing != nullptr);
  KGE_CHECK(count == size());
  view_ = backing;
  // Release the internally owned copy — with a view installed it can
  // never be read again, and for embedding tables it is the dominant
  // memory cost.
  data_.clear();
  data_.shrink_to_fit();
  BumpGeneration();
}

void ParameterBlock::InitUniform(Rng* rng, float lo, float hi) {
  for (float& x : Flat()) x = rng->NextUniform(lo, hi);
}

void ParameterBlock::InitGaussian(Rng* rng, float stddev) {
  for (float& x : Flat()) x = static_cast<float>(rng->NextGaussian()) * stddev;
}

void ParameterBlock::InitXavierUniform(Rng* rng, int64_t fan) {
  KGE_CHECK(fan > 0);
  const float bound = std::sqrt(6.0f / static_cast<float>(fan));
  InitUniform(rng, -bound, bound);
}

void ParameterBlock::Zero() {
  BumpGeneration();
  std::memset(mutable_storage(), 0, size_t(size()) * 4);
}

namespace {

// SplitMix64 finalizer over a precombined key — the probe hash and the
// row -> shard assignment both need a platform-stable avalanche.
inline uint64_t MixKey(uint64_t key) {
  uint64_t z = key + 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

GradientBuffer::GradientBuffer(std::vector<ParameterBlock*> blocks)
    : blocks_(std::move(blocks)), per_block_(blocks_.size()) {
  for (ParameterBlock* block : blocks_) KGE_CHECK(block != nullptr);
}

size_t GradientBuffer::ShardOfRow(size_t block_index, int64_t row,
                                  size_t num_shards) {
  KGE_DCHECK(num_shards > 0);
  const uint64_t key =
      (uint64_t(block_index) << 48) ^ uint64_t(row);
  return size_t(MixKey(key) % uint64_t(num_shards));
}

size_t GradientBuffer::Probe(const PerBlock& pb, int64_t row, bool* found) {
  const size_t mask = pb.table_rows.size() - 1;
  size_t i = size_t(MixKey(uint64_t(row))) & mask;
  while (pb.table_stamps[i] == pb.generation) {
    if (pb.table_rows[i] == row) {
      *found = true;
      return i;
    }
    i = (i + 1) & mask;
  }
  *found = false;
  return i;
}

void GradientBuffer::Grow(PerBlock& pb, size_t capacity) {
  // kge-hotpath: allow(probe-table rehash: doubling growth, amortized constant)
  pb.table_rows.assign(capacity, 0);
  // kge-hotpath: allow(probe-table rehash: doubling growth, amortized constant)
  pb.table_slots.assign(capacity, 0);
  // kge-hotpath: allow(probe-table rehash: doubling growth, amortized constant)
  pb.table_stamps.assign(capacity, 0);
  pb.generation = 1;
  // Re-insert every registered row into the fresh table.
  for (size_t slot = 0; slot < pb.rows.size(); ++slot) {
    bool found = false;
    const size_t i = Probe(pb, pb.rows[slot], &found);
    KGE_DCHECK(!found);
    pb.table_rows[i] = pb.rows[slot];
    pb.table_slots[i] = uint32_t(slot);
    pb.table_stamps[i] = pb.generation;
  }
}

std::span<float> GradientBuffer::GradFor(size_t block_index, int64_t row) {
  KGE_DCHECK(block_index < blocks_.size());
  PerBlock& pb = per_block_[block_index];
  const auto dim = static_cast<size_t>(blocks_[block_index]->row_dim());
  // Keep load factor below 1/2 (counting the pending insert).
  if ((pb.rows.size() + 1) * 2 > pb.table_rows.size()) {
    Grow(pb, pb.table_rows.empty() ? 64 : pb.table_rows.size() * 2);
  }
  bool found = false;
  const size_t i = Probe(pb, row, &found);
  if (found) return std::span<float>(pb.pool[pb.table_slots[i]]);
  const size_t slot = pb.rows.size();
  // kge-hotpath: allow(row registration: bounded by Reserve/high-water)
  pb.rows.push_back(row);
  if (slot == pb.pool.size()) {
    // kge-hotpath: allow(one stable pool slot per high-water row)
    pb.pool.emplace_back(dim, 0.0f);
  } else {
    // Recycled slot from a previous batch; zero it.
    std::memset(pb.pool[slot].data(), 0, dim * sizeof(float));
  }
  pb.table_rows[i] = row;
  pb.table_slots[i] = uint32_t(slot);
  pb.table_stamps[i] = pb.generation;
  return std::span<float>(pb.pool[slot]);
}

std::span<const float> GradientBuffer::Find(size_t block_index,
                                            int64_t row) const {
  KGE_DCHECK(block_index < blocks_.size());
  const PerBlock& pb = per_block_[block_index];
  if (pb.table_rows.empty()) return {};
  bool found = false;
  const size_t i = Probe(pb, row, &found);
  if (!found) return {};
  return std::span<const float>(pb.pool[pb.table_slots[i]]);
}

void GradientBuffer::Reserve(size_t rows_per_block) {
  for (size_t b = 0; b < blocks_.size(); ++b) {
    PerBlock& pb = per_block_[b];
    const auto dim = static_cast<size_t>(blocks_[b]->row_dim());
    pb.rows.reserve(rows_per_block);
    while (pb.pool.size() < rows_per_block) pb.pool.emplace_back(dim, 0.0f);
    size_t capacity = pb.table_rows.empty() ? 64 : pb.table_rows.size();
    while (capacity < (rows_per_block + 1) * 2) capacity *= 2;
    if (capacity > pb.table_rows.size()) Grow(pb, capacity);
  }
}

void GradientBuffer::Clear() {
  for (PerBlock& pb : per_block_) {
    pb.rows.clear();
    // Invalidate the probe table by bumping the generation; on the (rare)
    // wrap back to 0, scrub the stamps so stale entries cannot alias.
    if (++pb.generation == 0) {
      std::fill(pb.table_stamps.begin(), pb.table_stamps.end(), 0u);
      pb.generation = 1;
    }
    // pool allocations are kept and recycled by GradFor.
  }
}

size_t GradientBuffer::NumTouchedRows() const {
  size_t total = 0;
  for (const PerBlock& pb : per_block_) total += pb.rows.size();
  return total;
}

}  // namespace kge
