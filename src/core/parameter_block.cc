#include "core/parameter_block.h"

#include <cmath>
#include <cstring>

#include "util/check.h"

namespace kge {

ParameterBlock::ParameterBlock(std::string name, int64_t num_rows,
                               int64_t row_dim)
    : name_(std::move(name)), num_rows_(num_rows), row_dim_(row_dim) {
  KGE_CHECK(num_rows_ >= 0 && row_dim_ > 0);
  data_.assign(static_cast<size_t>(num_rows_ * row_dim_), 0.0f);
}

std::span<float> ParameterBlock::Row(int64_t row) {
  KGE_DCHECK(row >= 0 && row < num_rows_);
  return std::span<float>(data_.data() + size_t(row) * size_t(row_dim_),
                          size_t(row_dim_));
}

std::span<const float> ParameterBlock::Row(int64_t row) const {
  KGE_DCHECK(row >= 0 && row < num_rows_);
  return std::span<const float>(data_.data() + size_t(row) * size_t(row_dim_),
                                size_t(row_dim_));
}

void ParameterBlock::InitUniform(Rng* rng, float lo, float hi) {
  for (float& x : data_) x = rng->NextUniform(lo, hi);
}

void ParameterBlock::InitGaussian(Rng* rng, float stddev) {
  for (float& x : data_) x = static_cast<float>(rng->NextGaussian()) * stddev;
}

void ParameterBlock::InitXavierUniform(Rng* rng, int64_t fan) {
  KGE_CHECK(fan > 0);
  const float bound = std::sqrt(6.0f / static_cast<float>(fan));
  InitUniform(rng, -bound, bound);
}

void ParameterBlock::Zero() { std::memset(data_.data(), 0, data_.size() * 4); }

GradientBuffer::GradientBuffer(std::vector<ParameterBlock*> blocks)
    : blocks_(std::move(blocks)), per_block_(blocks_.size()) {
  for (ParameterBlock* block : blocks_) KGE_CHECK(block != nullptr);
}

std::span<float> GradientBuffer::GradFor(size_t block_index, int64_t row) {
  KGE_DCHECK(block_index < blocks_.size());
  PerBlock& pb = per_block_[block_index];
  const auto dim = static_cast<size_t>(blocks_[block_index]->row_dim());
  auto [it, inserted] = pb.slot_of_row.try_emplace(row, pb.rows.size());
  if (inserted) {
    const size_t slot = pb.rows.size();
    pb.rows.push_back(row);
    if (slot == pb.pool.size()) {
      pb.pool.emplace_back(dim, 0.0f);
    } else {
      // Recycled slot from a previous batch; zero it.
      std::memset(pb.pool[slot].data(), 0, dim * sizeof(float));
    }
  }
  return std::span<float>(pb.pool[it->second]);
}

void GradientBuffer::Clear() {
  for (PerBlock& pb : per_block_) {
    pb.slot_of_row.clear();
    pb.rows.clear();
    // pool allocations are kept and recycled by GradFor.
  }
}

size_t GradientBuffer::NumTouchedRows() const {
  size_t total = 0;
  for (const PerBlock& pb : per_block_) total += pb.rows.size();
  return total;
}

}  // namespace kge
