#include "core/dirichlet_regularizer.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace kge {
namespace {

double SafeAbs(double x, double epsilon) {
  return std::max(std::fabs(x), epsilon);
}

}  // namespace

double DirichletNll(std::span<const float> omega,
                    const DirichletOptions& options) {
  if (omega.empty()) return 0.0;
  double l1 = 0.0;
  for (float w : omega) l1 += std::fabs(double(w));
  l1 = std::max(l1, options.epsilon);
  double sum = 0.0;
  for (float w : omega) {
    sum += std::log(SafeAbs(double(w), options.epsilon) / l1);
  }
  return -options.lambda * (options.alpha - 1.0) * sum;
}

void AddDirichletGradient(std::span<const float> omega,
                          const DirichletOptions& options,
                          std::span<float> grad) {
  KGE_CHECK(omega.size() == grad.size());
  if (omega.empty()) return;
  double l1 = 0.0;
  for (float w : omega) l1 += std::fabs(double(w));
  l1 = std::max(l1, options.epsilon);
  const double m = static_cast<double>(omega.size());
  const double scale = -options.lambda * (options.alpha - 1.0);
  for (size_t p = 0; p < omega.size(); ++p) {
    const double w = omega[p];
    const double sign = w > 0.0 ? 1.0 : (w < 0.0 ? -1.0 : 0.0);
    const double d = scale * sign * (1.0 / SafeAbs(w, options.epsilon) - m / l1);
    grad[p] += static_cast<float>(d);
  }
}

}  // namespace kge
