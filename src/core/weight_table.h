// WeightTable: the interaction weight vector ω of Eq. (8), stored as a
// dense (ne × ne × nr) table with a precomputed list of nonzero terms for
// fast iteration. Provides every named preset of the paper's Table 1 plus
// the hand-picked good/bad examples of Table 2 and the quaternion table
// of Eq. (14).
#ifndef KGE_CORE_WEIGHT_TABLE_H_
#define KGE_CORE_WEIGHT_TABLE_H_

#include <array>
#include <span>
#include <string>
#include <vector>

namespace kge {

class WeightTable {
 public:
  // All weights zero.
  WeightTable(int32_t ne, int32_t nr);

  int32_t ne() const { return ne_; }
  int32_t nr() const { return nr_; }
  int32_t size() const { return ne_ * ne_ * nr_; }

  // ω(i, j, k): head index i, tail index j, relation index k (0-based).
  float At(int32_t i, int32_t j, int32_t k) const {
    return data_[static_cast<size_t>(Index(i, j, k))];
  }
  void Set(int32_t i, int32_t j, int32_t k, float value);

  std::span<const float> Flat() const { return data_; }
  // Replaces all weights; size must match.
  void SetFlat(std::span<const float> values);

  struct Term {
    int32_t i, j, k;
    float weight;
  };
  // Nonzero terms, rebuilt by Set/SetFlat.
  const std::vector<Term>& terms() const { return terms_; }

  // Flat index of ω(i,j,k) in row-major (i, j, k) order — the paper's
  // Table 1 ordering for ne = nr = 2: (111,112,121,122,211,212,221,222).
  int32_t Index(int32_t i, int32_t j, int32_t k) const;

  // Transposed table ω'(i,j,k) = ω(j,i,k) (head/tail swap); used by the
  // distinguishability analysis.
  WeightTable HeadTailTransposed() const;

  std::string ToString() const;

  // ---- Paper presets -------------------------------------------------------
  static WeightTable DistMult();        // ne=1, nr=1
  static WeightTable ComplEx();         // ne=2, nr=2
  static WeightTable ComplExEquiv1();
  static WeightTable ComplExEquiv2();
  static WeightTable ComplExEquiv3();
  static WeightTable Cp();              // ne=2, nr=1
  static WeightTable Cph();             // ne=2, nr=2
  static WeightTable CphEquiv();
  static WeightTable Quaternion();      // ne=4, nr=4, Eq. (14)
  static WeightTable Uniform(int32_t ne, int32_t nr);  // all ones
  // SimplE (Kazemi & Poole 2018): the average of CP's two directions,
  // i.e. CPh scaled by 1/2 — expressible directly as a weight vector in
  // the multi-embedding view.
  static WeightTable SimplE();          // ne=2, nr=2

  // Builds an ne=2, nr=2 table from the paper's 8-element ordering
  // used throughout Tables 1–2.
  static WeightTable FromPaperVector(const std::array<float, 8>& w);

  // Table 2 rows: bad/good hand-picked weight examples.
  static WeightTable BadExample1();   // (0,0,20,0,0,1,0,0)
  static WeightTable BadExample2();   // (0,0,1,1,1,1,0,0)
  static WeightTable GoodExample1();  // (0,0,20,1,1,20,0,0)
  static WeightTable GoodExample2();  // (1,1,-1,1,1,-1,1,1)

 private:
  void RebuildTerms();

  int32_t ne_;
  int32_t nr_;
  std::vector<float> data_;
  std::vector<Term> terms_;
};

}  // namespace kge

#endif  // KGE_CORE_WEIGHT_TABLE_H_
