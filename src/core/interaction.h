// The multi-embedding interaction mechanism (Eq. 8) and its analytic
// gradients. This is the single scoring engine behind every
// trilinear-product-based model in the repository (DistMult, ComplEx, CP,
// CPh, the quaternion model, and arbitrary/learned weight vectors).
//
// Conventions: an id's multi-embedding is a flat span of n * dim floats
// with vector v at [v*dim, (v+1)*dim) — exactly EmbeddingStore::Of().
//
// Gradients of Eq. (8):
//   ∂S/∂h(i) = Σ_{j,k} ω(i,j,k) · (t(j) ⊙ r(k))   ("head fold")
//   ∂S/∂t(j) = Σ_{i,k} ω(i,j,k) · (h(i) ⊙ r(k))   ("tail fold")
//   ∂S/∂r(k) = Σ_{i,j} ω(i,j,k) · (h(i) ⊙ t(j))   ("relation fold")
//   ∂S/∂ω(i,j,k) = ⟨h(i), t(j), r(k)⟩
//
// The folds also drive fast ranking: score(t') = Σ_j tailfold(j) · t'(j)
// is one dot product of length n*dim per candidate entity.
#ifndef KGE_CORE_INTERACTION_H_
#define KGE_CORE_INTERACTION_H_

#include <span>

#include "core/weight_table.h"

namespace kge {

// S(h, t, r; ω). Spans have sizes ne*dim, ne*dim, nr*dim.
double ScoreTriple(const WeightTable& weights, int32_t dim,
                   std::span<const float> h, std::span<const float> t,
                   std::span<const float> r);

// out(j) = Σ_{i,k} ω(i,j,k) (h(i) ⊙ r(k)); out has ne*dim floats,
// overwritten. score(t') = Dot(out, t').
void FoldForTail(const WeightTable& weights, int32_t dim,
                 std::span<const float> h, std::span<const float> r,
                 std::span<float> out);

// out(i) = Σ_{j,k} ω(i,j,k) (t(j) ⊙ r(k)); score(h') = Dot(out, h').
void FoldForHead(const WeightTable& weights, int32_t dim,
                 std::span<const float> t, std::span<const float> r,
                 std::span<float> out);

// out(k) = Σ_{i,j} ω(i,j,k) (h(i) ⊙ t(j)); out has nr*dim floats.
void FoldForRelation(const WeightTable& weights, int32_t dim,
                     std::span<const float> h, std::span<const float> t,
                     std::span<float> out);

// Accumulates (+=) dscore-scaled score gradients into gh/gt/gr, which must
// have the same shapes as h/t/r. Equivalent to three folds but fused.
void AccumulateTripleGradients(const WeightTable& weights, int32_t dim,
                               std::span<const float> h,
                               std::span<const float> t,
                               std::span<const float> r, float dscore,
                               std::span<float> gh, std::span<float> gt,
                               std::span<float> gr);

// Writes ∂S/∂ω — all ne*ne*nr trilinear products, including those whose
// current weight is zero (needed when ω is being learned) — into `out`
// (size ne*ne*nr), scaled by dscore and accumulated (+=).
void AccumulateOmegaGradients(const WeightTable& weights, int32_t dim,
                              std::span<const float> h,
                              std::span<const float> t,
                              std::span<const float> r, float dscore,
                              std::span<float> out);

}  // namespace kge

#endif  // KGE_CORE_INTERACTION_H_
