#include "core/scoring_replica.h"

#include "math/simd.h"
#include "util/check.h"

namespace kge {

const char* ScorePrecisionName(ScorePrecision precision) {
  switch (precision) {
    case ScorePrecision::kDouble:
      return "double";
    case ScorePrecision::kFloat32:
      return "float32";
    case ScorePrecision::kInt8:
      return "int8";
  }
  return "?";
}

bool ParseScorePrecision(std::string_view text, ScorePrecision* out) {
  KGE_CHECK(out != nullptr);
  if (text == "double") {
    *out = ScorePrecision::kDouble;
  } else if (text == "float32") {
    *out = ScorePrecision::kFloat32;
  } else if (text == "int8") {
    *out = ScorePrecision::kInt8;
  } else {
    return false;
  }
  return true;
}

ScoringReplica::ScoringReplica(const ParameterBlock* master)
    : master_(master) {
  KGE_CHECK(master_ != nullptr);
}

bool ScoringReplica::IsFresh(ScorePrecision precision) const {
  if (precision != ScorePrecision::kInt8) return true;
  return int8_generation_ == master_->generation();
}

void ScoringReplica::EnsureFresh(ScorePrecision precision) {
  if (IsFresh(precision)) return;
  // Only the int8 tier reaches here. Record the stamp BEFORE reading the
  // table: if a (misbehaving) concurrent writer mutates the master
  // mid-quantization, the replica stays marked stale rather than
  // silently serving half-old codes.
  const uint64_t generation = master_->generation();
  const auto num_rows = size_t(master_->num_rows());
  const auto dim = size_t(master_->row_dim());
  const std::span<const float> master_rows = master_->Flat();
  int8_rows_.resize(num_rows * dim);
  int8_scales_.resize(num_rows);
  simd::QuantizeRowsI8(master_rows.data(), num_rows, dim, int8_rows_.data(),
                       int8_scales_.data());
  int8_generation_ = generation;
}

bool ScoringReplica::BoundsFresh(ScorePrecision precision) const {
  if (precision == ScorePrecision::kInt8) {
    return IsFresh(precision) &&
           int8_bounds_generation_ == master_->generation();
  }
  return master_bounds_generation_ == master_->generation();
}

void ScoringReplica::EnsureBoundsFresh(ScorePrecision precision) {
  if (BoundsFresh(precision)) return;
  const uint64_t generation = master_->generation();
  const auto num_rows = size_t(master_->num_rows());
  const auto dim = size_t(master_->row_dim());
  const size_t rows_per_tile = simd::PrunedTileRows(dim);
  const size_t tiles = simd::PrunedTileCount(num_rows, dim);
  if (precision == ScorePrecision::kInt8) {
    EnsureFresh(precision);
    int8_bounds_.resize(tiles);
    simd::TileMaxRowNormsI8(int8_rows_.data(), int8_scales_.data(), num_rows,
                            dim, rows_per_tile, int8_bounds_.data());
    int8_bounds_generation_ = generation;
    return;
  }
  master_bounds_.resize(tiles);
  simd::TileMaxRowNorms(master_->Flat().data(), num_rows, dim, rows_per_tile,
                        master_bounds_.data());
  master_bounds_generation_ = generation;
}

std::span<const float> ScoringReplica::TileBounds(
    ScorePrecision precision) const {
  KGE_DCHECK(BoundsFresh(precision));
  return precision == ScorePrecision::kInt8 ? int8_bounds_ : master_bounds_;
}

std::span<const std::int8_t> ScoringReplica::Int8Rows() const {
  KGE_DCHECK(IsFresh(ScorePrecision::kInt8));
  return int8_rows_;
}

std::span<const float> ScoringReplica::Int8Scales() const {
  KGE_DCHECK(IsFresh(ScorePrecision::kInt8));
  return int8_scales_;
}

}  // namespace kge
