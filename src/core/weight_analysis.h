// Quantitative versions of the paper's three qualitative properties of
// good weight vectors (§6.1.2):
//
//   * Completeness — "all embedding vectors in a triple should be
//     involved in the weighted-sum matching score": the fraction of
//     embedding slots (ne head + ne tail + nr relation) that appear in at
//     least one nonzero term.
//   * Stability — "all embedding vectors for the same entity or relation
//     should contribute equally": for each of the three slot groups,
//     min/max of the total |weight| carried by each slot; the reported
//     score is the minimum over groups. 1.0 = perfectly balanced.
//   * Distinguishability — "the weighted-sum matching scores for
//     different triples should be distinguishable", in particular the
//     score must not be invariant under swapping h and t: normalized L1
//     distance between ω and its head/tail transpose,
//     ||ω − ωᵀ||₁ / (2·||ω||₁) ∈ [0, 1]. 0 for symmetric tables
//     (DistMult, uniform), which collapse (h,t,r) and (t,h,r).
//
// These metrics let weight_search rank random weight vectors, and the
// tests assert that the paper's good examples dominate the bad ones.
#ifndef KGE_CORE_WEIGHT_ANALYSIS_H_
#define KGE_CORE_WEIGHT_ANALYSIS_H_

#include <string>

#include "core/weight_table.h"

namespace kge {

struct WeightProperties {
  double completeness = 0.0;      // [0, 1]
  double stability = 0.0;         // [0, 1]
  double distinguishability = 0.0;  // [0, 1]

  // A single ranking score in [0, 1]; the geometric mean of the three.
  double Overall() const;

  std::string ToString() const;
};

WeightProperties AnalyzeWeightTable(const WeightTable& weights);

}  // namespace kge

#endif  // KGE_CORE_WEIGHT_ANALYSIS_H_
