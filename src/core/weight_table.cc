#include "core/weight_table.h"

#include "util/check.h"
#include "util/string_utils.h"

namespace kge {

WeightTable::WeightTable(int32_t ne, int32_t nr) : ne_(ne), nr_(nr) {
  KGE_CHECK(ne > 0 && nr > 0);
  data_.assign(static_cast<size_t>(size()), 0.0f);
}

int32_t WeightTable::Index(int32_t i, int32_t j, int32_t k) const {
  KGE_DCHECK(i >= 0 && i < ne_ && j >= 0 && j < ne_ && k >= 0 && k < nr_);
  return (i * ne_ + j) * nr_ + k;
}

void WeightTable::Set(int32_t i, int32_t j, int32_t k, float value) {
  data_[static_cast<size_t>(Index(i, j, k))] = value;
  RebuildTerms();
}

void WeightTable::SetFlat(std::span<const float> values) {
  KGE_CHECK(values.size() == data_.size());
  data_.assign(values.begin(), values.end());
  RebuildTerms();
}

void WeightTable::RebuildTerms() {
  terms_.clear();
  for (int32_t i = 0; i < ne_; ++i) {
    for (int32_t j = 0; j < ne_; ++j) {
      for (int32_t k = 0; k < nr_; ++k) {
        const float w = At(i, j, k);
        if (w != 0.0f) terms_.push_back({i, j, k, w});
      }
    }
  }
}

WeightTable WeightTable::HeadTailTransposed() const {
  WeightTable t(ne_, nr_);
  for (int32_t i = 0; i < ne_; ++i) {
    for (int32_t j = 0; j < ne_; ++j) {
      for (int32_t k = 0; k < nr_; ++k) {
        t.data_[static_cast<size_t>(t.Index(i, j, k))] = At(j, i, k);
      }
    }
  }
  t.RebuildTerms();
  return t;
}

std::string WeightTable::ToString() const {
  std::string out = StrFormat("WeightTable(ne=%d, nr=%d):", ne_, nr_);
  for (const Term& term : terms_) {
    out += StrFormat(" %+g*<h%d,t%d,r%d>", term.weight, term.i + 1,
                     term.j + 1, term.k + 1);
  }
  return out;
}

namespace {

WeightTable MakeTable(int32_t ne, int32_t nr,
                      std::initializer_list<WeightTable::Term> terms) {
  WeightTable table(ne, nr);
  std::vector<float> flat(static_cast<size_t>(table.size()), 0.0f);
  for (const WeightTable::Term& t : terms) {
    flat[static_cast<size_t>(table.Index(t.i, t.j, t.k))] = t.weight;
  }
  table.SetFlat(flat);
  return table;
}

}  // namespace

WeightTable WeightTable::DistMult() {
  return MakeTable(1, 1, {{0, 0, 0, 1.0f}});
}

// Eq. (10): Re<h, conj(t), r> = <h1,t1,r1> + <h1,t2,r2> - <h2,t1,r2>
//                             + <h2,t2,r1>.
WeightTable WeightTable::ComplEx() {
  return MakeTable(2, 2,
                   {{0, 0, 0, 1.0f},
                    {0, 1, 1, 1.0f},
                    {1, 0, 1, -1.0f},
                    {1, 1, 0, 1.0f}});
}

// Table 1 column "ComplEx equiv. 1": (1, 0, 0, -1, 0, 1, 1, 0).
WeightTable WeightTable::ComplExEquiv1() {
  return MakeTable(2, 2,
                   {{0, 0, 0, 1.0f},
                    {0, 1, 1, -1.0f},
                    {1, 0, 1, 1.0f},
                    {1, 1, 0, 1.0f}});
}

// Table 1 column "ComplEx equiv. 2": (0, 1, -1, 0, 1, 0, 0, 1).
WeightTable WeightTable::ComplExEquiv2() {
  return MakeTable(2, 2,
                   {{0, 0, 1, 1.0f},
                    {0, 1, 0, -1.0f},
                    {1, 0, 0, 1.0f},
                    {1, 1, 1, 1.0f}});
}

// Table 1 column "ComplEx equiv. 3": (0, 1, 1, 0, -1, 0, 0, 1).
WeightTable WeightTable::ComplExEquiv3() {
  return MakeTable(2, 2,
                   {{0, 0, 1, 1.0f},
                    {0, 1, 0, 1.0f},
                    {1, 0, 0, -1.0f},
                    {1, 1, 1, 1.0f}});
}

WeightTable WeightTable::Cp() { return MakeTable(2, 1, {{0, 1, 0, 1.0f}}); }

// S = <h, t(2), r> + <t, h(2), r(a)>: mapping r(a) to r(2) gives terms
// (h1,t2,r1) and (h2,t1,r2).
WeightTable WeightTable::Cph() {
  return MakeTable(2, 2, {{0, 1, 0, 1.0f}, {1, 0, 1, 1.0f}});
}

// Table 1 column "CPh equiv.": (0, 0, 0, 1, 1, 0, 0, 0).
WeightTable WeightTable::CphEquiv() {
  return MakeTable(2, 2, {{0, 1, 1, 1.0f}, {1, 0, 0, 1.0f}});
}

// Eq. (14): the 16 signed terms of Re<h, conj(t), r> over H.
WeightTable WeightTable::Quaternion() {
  return MakeTable(4, 4,
                   {
                       // r(1) block
                       {0, 0, 0, 1.0f},
                       {1, 1, 0, 1.0f},
                       {2, 2, 0, 1.0f},
                       {3, 3, 0, 1.0f},
                       // r(2) block
                       {0, 1, 1, 1.0f},
                       {1, 0, 1, -1.0f},
                       {2, 3, 1, 1.0f},
                       {3, 2, 1, -1.0f},
                       // r(3) block
                       {0, 2, 2, 1.0f},
                       {1, 3, 2, -1.0f},
                       {2, 0, 2, -1.0f},
                       {3, 1, 2, 1.0f},
                       // r(4) block
                       {0, 3, 3, 1.0f},
                       {1, 2, 3, 1.0f},
                       {2, 1, 3, -1.0f},
                       {3, 0, 3, -1.0f},
                   });
}

WeightTable WeightTable::Uniform(int32_t ne, int32_t nr) {
  WeightTable table(ne, nr);
  std::vector<float> flat(static_cast<size_t>(table.size()), 1.0f);
  table.SetFlat(flat);
  return table;
}

WeightTable WeightTable::SimplE() {
  return MakeTable(2, 2, {{0, 1, 0, 0.5f}, {1, 0, 1, 0.5f}});
}

WeightTable WeightTable::FromPaperVector(const std::array<float, 8>& w) {
  // Paper ordering for ne = nr = 2: <h1t1r1>, <h1t1r2>, <h1t2r1>,
  // <h1t2r2>, <h2t1r1>, <h2t1r2>, <h2t2r1>, <h2t2r2> — which is exactly
  // row-major (i, j, k).
  WeightTable table(2, 2);
  table.SetFlat(std::span<const float>(w.data(), w.size()));
  return table;
}

WeightTable WeightTable::BadExample1() {
  return FromPaperVector({0, 0, 20, 0, 0, 1, 0, 0});
}
WeightTable WeightTable::BadExample2() {
  return FromPaperVector({0, 0, 1, 1, 1, 1, 0, 0});
}
WeightTable WeightTable::GoodExample1() {
  return FromPaperVector({0, 0, 20, 1, 1, 20, 0, 0});
}
WeightTable WeightTable::GoodExample2() {
  return FromPaperVector({1, 1, -1, 1, 1, -1, 1, 1});
}

}  // namespace kge
