#include "core/interaction.h"

#include "math/simd.h"
#include "math/vec_ops.h"
#include "util/check.h"

namespace kge {
namespace {

inline std::span<const float> VecOf(std::span<const float> multi, int32_t v,
                                    int32_t dim) {
  return multi.subspan(size_t(v) * size_t(dim), size_t(dim));
}

inline std::span<float> VecOf(std::span<float> multi, int32_t v,
                              int32_t dim) {
  return multi.subspan(size_t(v) * size_t(dim), size_t(dim));
}

inline void CheckShapes(const WeightTable& w, int32_t dim,
                        std::span<const float> h, std::span<const float> t,
                        std::span<const float> r) {
  KGE_DCHECK(h.size() == size_t(w.ne()) * size_t(dim));
  KGE_DCHECK(t.size() == size_t(w.ne()) * size_t(dim));
  KGE_DCHECK(r.size() == size_t(w.nr()) * size_t(dim));
  (void)w, (void)dim, (void)h, (void)t, (void)r;
}

}  // namespace

double ScoreTriple(const WeightTable& weights, int32_t dim,
                   std::span<const float> h, std::span<const float> t,
                   std::span<const float> r) {
  CheckShapes(weights, dim, h, t, r);
  double score = 0.0;
  for (const WeightTable::Term& term : weights.terms()) {
    score += double(term.weight) * TrilinearDot(VecOf(h, term.i, dim),
                                                VecOf(t, term.j, dim),
                                                VecOf(r, term.k, dim));
  }
  return score;
}

void FoldForTail(const WeightTable& weights, int32_t dim,
                 std::span<const float> h, std::span<const float> r,
                 std::span<float> out) {
  KGE_DCHECK(out.size() == size_t(weights.ne()) * size_t(dim));
  Fill(out, 0.0f);
  for (const WeightTable::Term& term : weights.terms()) {
    HadamardAxpy(term.weight, VecOf(h, term.i, dim), VecOf(r, term.k, dim),
                 VecOf(out, term.j, dim));
  }
}

void FoldForHead(const WeightTable& weights, int32_t dim,
                 std::span<const float> t, std::span<const float> r,
                 std::span<float> out) {
  KGE_DCHECK(out.size() == size_t(weights.ne()) * size_t(dim));
  Fill(out, 0.0f);
  for (const WeightTable::Term& term : weights.terms()) {
    HadamardAxpy(term.weight, VecOf(t, term.j, dim), VecOf(r, term.k, dim),
                 VecOf(out, term.i, dim));
  }
}

void FoldForRelation(const WeightTable& weights, int32_t dim,
                     std::span<const float> h, std::span<const float> t,
                     std::span<float> out) {
  KGE_DCHECK(out.size() == size_t(weights.nr()) * size_t(dim));
  Fill(out, 0.0f);
  for (const WeightTable::Term& term : weights.terms()) {
    HadamardAxpy(term.weight, VecOf(h, term.i, dim), VecOf(t, term.j, dim),
                 VecOf(out, term.k, dim));
  }
}

void AccumulateTripleGradients(const WeightTable& weights, int32_t dim,
                               std::span<const float> h,
                               std::span<const float> t,
                               std::span<const float> r, float dscore,
                               std::span<float> gh, std::span<float> gt,
                               std::span<float> gr) {
  CheckShapes(weights, dim, h, t, r);
  KGE_DCHECK(gh.size() == h.size() && gt.size() == t.size() &&
             gr.size() == r.size());
  const size_t d = size_t(dim);
  for (const WeightTable::Term& term : weights.terms()) {
    // One fused pass per term: loads h(i)/t(j)/r(k) once and updates all
    // three gradient folds, bit-identical to the three HadamardAxpy calls
    // it replaces (see simd::TripleGradAxpy).
    const float w = dscore * term.weight;
    simd::TripleGradAxpy(w, VecOf(h, term.i, dim).data(),
                         VecOf(t, term.j, dim).data(),
                         VecOf(r, term.k, dim).data(),
                         VecOf(gh, term.i, dim).data(),
                         VecOf(gt, term.j, dim).data(),
                         VecOf(gr, term.k, dim).data(), d);
  }
}

void AccumulateOmegaGradients(const WeightTable& weights, int32_t dim,
                              std::span<const float> h,
                              std::span<const float> t,
                              std::span<const float> r, float dscore,
                              std::span<float> out) {
  CheckShapes(weights, dim, h, t, r);
  KGE_DCHECK(out.size() == size_t(weights.size()));
  for (int32_t i = 0; i < weights.ne(); ++i) {
    for (int32_t j = 0; j < weights.ne(); ++j) {
      for (int32_t k = 0; k < weights.nr(); ++k) {
        out[size_t(weights.Index(i, j, k))] +=
            dscore * float(TrilinearDot(VecOf(h, i, dim), VecOf(t, j, dim),
                                        VecOf(r, k, dim)));
      }
    }
  }
}

}  // namespace kge
