#include "core/embedding_store.h"

#include "math/vec_ops.h"
#include "util/check.h"
#include "util/io.h"

namespace kge {

EmbeddingStore::EmbeddingStore(std::string name, int32_t num_ids,
                               int32_t num_vectors, int32_t dim)
    : num_ids_(num_ids),
      num_vectors_(num_vectors),
      dim_(dim),
      block_(std::move(name), num_ids,
             int64_t(num_vectors) * int64_t(dim)) {
  KGE_CHECK(num_ids >= 0 && num_vectors > 0 && dim > 0);
}

std::span<float> EmbeddingStore::Vec(int32_t id, int32_t v) {
  KGE_DCHECK(v >= 0 && v < num_vectors_);
  return Of(id).subspan(size_t(v) * size_t(dim_), size_t(dim_));
}

std::span<const float> EmbeddingStore::Vec(int32_t id, int32_t v) const {
  KGE_DCHECK(v >= 0 && v < num_vectors_);
  return Of(id).subspan(size_t(v) * size_t(dim_), size_t(dim_));
}

void EmbeddingStore::NormalizeVectorsOf(int32_t id) {
  for (int32_t v = 0; v < num_vectors_; ++v) NormalizeL2(Vec(id, v));
}

Status EmbeddingStore::Save(BinaryWriter* writer) const {
  KGE_RETURN_IF_ERROR(writer->WriteString(block_.name()));
  KGE_RETURN_IF_ERROR(writer->WriteUint32(uint32_t(num_ids_)));
  KGE_RETURN_IF_ERROR(writer->WriteUint32(uint32_t(num_vectors_)));
  KGE_RETURN_IF_ERROR(writer->WriteUint32(uint32_t(dim_)));
  return writer->WriteFloatArray(block_.Flat().data(), block_.Flat().size());
}

Status EmbeddingStore::Load(BinaryReader* reader) {
  Result<std::string> name = reader->ReadString();
  if (!name.ok()) return name.status();
  Result<uint32_t> ids = reader->ReadUint32();
  if (!ids.ok()) return ids.status();
  Result<uint32_t> vectors = reader->ReadUint32();
  if (!vectors.ok()) return vectors.status();
  Result<uint32_t> dim = reader->ReadUint32();
  if (!dim.ok()) return dim.status();
  if (int32_t(*ids) != num_ids_ || int32_t(*vectors) != num_vectors_ ||
      int32_t(*dim) != dim_) {
    return Status::InvalidArgument(
        "checkpoint shape does not match embedding store shape");
  }
  return reader->ReadFloatArray(block_.Flat().data(), block_.Flat().size());
}

}  // namespace kge
