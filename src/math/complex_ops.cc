#include "math/complex_ops.h"

#include "util/check.h"

namespace kge {

double ComplexScore(const ComplexVectorView& h, const ComplexVectorView& t,
                    const ComplexVectorView& r) {
  KGE_DCHECK(h.size() == t.size() && t.size() == r.size());
  KGE_DCHECK(h.re.size() == h.im.size());
  double sum = 0.0;
  for (size_t d = 0; d < h.size(); ++d) {
    const double hr = h.re[d], hi = h.im[d];
    const double tr = t.re[d], ti = t.im[d];
    const double rr = r.re[d], ri = r.im[d];
    // Re((hr + hi·i) * (tr − ti·i) * (rr + ri·i))
    const double prod_re = hr * tr + hi * ti;   // Re(h * conj(t))
    const double prod_im = hi * tr - hr * ti;   // Im(h * conj(t))
    sum += prod_re * rr - prod_im * ri;
  }
  return sum;
}

double ComplexScoreNoConjugate(const ComplexVectorView& h,
                               const ComplexVectorView& t,
                               const ComplexVectorView& r) {
  KGE_DCHECK(h.size() == t.size() && t.size() == r.size());
  double sum = 0.0;
  for (size_t d = 0; d < h.size(); ++d) {
    const double hr = h.re[d], hi = h.im[d];
    const double tr = t.re[d], ti = t.im[d];
    const double rr = r.re[d], ri = r.im[d];
    const double prod_re = hr * tr - hi * ti;
    const double prod_im = hi * tr + hr * ti;
    sum += prod_re * rr - prod_im * ri;
  }
  return sum;
}

}  // namespace kge
