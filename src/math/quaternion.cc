#include "math/quaternion.h"

#include <cmath>

#include "util/check.h"
#include "util/string_utils.h"

namespace kge {

double Quaternion::Norm() const { return std::sqrt(NormSquared()); }

Quaternion Quaternion::Normalized() const {
  const double n = Norm();
  if (n == 0.0) return *this;
  const double inv = 1.0 / n;
  return {a * inv, b * inv, c * inv, d * inv};
}

Quaternion Quaternion::Inverse() const {
  const double n2 = NormSquared();
  KGE_CHECK(n2 > 0.0);
  const double inv = 1.0 / n2;
  const Quaternion conj = Conjugate();
  return {conj.a * inv, conj.b * inv, conj.c * inv, conj.d * inv};
}

std::string Quaternion::ToString() const {
  return StrFormat("(%g + %gi + %gj + %gk)", a, b, c, d);
}

Quaternion operator+(const Quaternion& x, const Quaternion& y) {
  return {x.a + y.a, x.b + y.b, x.c + y.c, x.d + y.d};
}

Quaternion operator-(const Quaternion& x, const Quaternion& y) {
  return {x.a - y.a, x.b - y.b, x.c - y.c, x.d - y.d};
}

Quaternion operator*(const Quaternion& x, const Quaternion& y) {
  // Hamilton product.
  return {
      x.a * y.a - x.b * y.b - x.c * y.c - x.d * y.d,
      x.a * y.b + x.b * y.a + x.c * y.d - x.d * y.c,
      x.a * y.c - x.b * y.d + x.c * y.a + x.d * y.b,
      x.a * y.d + x.b * y.c - x.c * y.b + x.d * y.a,
  };
}

Quaternion operator*(double s, const Quaternion& y) {
  return {s * y.a, s * y.b, s * y.c, s * y.d};
}

bool operator==(const Quaternion& x, const Quaternion& y) {
  return x.a == y.a && x.b == y.b && x.c == y.c && x.d == y.d;
}

namespace {

// Shared driver: sums Re(product(h_d, t_d, r_d)) over dimensions.
template <typename ProductFn>
double SumRealProduct(const QuaternionVectorView& h,
                      const QuaternionVectorView& t,
                      const QuaternionVectorView& r, ProductFn product) {
  KGE_DCHECK(h.size() == t.size() && t.size() == r.size());
  double sum = 0.0;
  for (size_t dim = 0; dim < h.size(); ++dim) {
    sum += product(h.At(dim), t.At(dim), r.At(dim)).a;
  }
  return sum;
}

}  // namespace

double QuaternionScoreHConjTR(const QuaternionVectorView& h,
                              const QuaternionVectorView& t,
                              const QuaternionVectorView& r) {
  return SumRealProduct(
      h, t, r, [](const Quaternion& hq, const Quaternion& tq,
                  const Quaternion& rq) { return hq * tq.Conjugate() * rq; });
}

double QuaternionScoreHRConjT(const QuaternionVectorView& h,
                              const QuaternionVectorView& t,
                              const QuaternionVectorView& r) {
  return SumRealProduct(
      h, t, r, [](const Quaternion& hq, const Quaternion& tq,
                  const Quaternion& rq) { return hq * rq * tq.Conjugate(); });
}

double QuaternionScoreRHConjT(const QuaternionVectorView& h,
                              const QuaternionVectorView& t,
                              const QuaternionVectorView& r) {
  return SumRealProduct(
      h, t, r, [](const Quaternion& hq, const Quaternion& tq,
                  const Quaternion& rq) { return rq * hq * tq.Conjugate(); });
}

}  // namespace kge
