#include "math/activations.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace kge {

double Sigmoid(double x) {
  if (x >= 0.0) {
    const double z = std::exp(-x);
    return 1.0 / (1.0 + z);
  }
  const double z = std::exp(x);
  return z / (1.0 + z);
}

double Softplus(double x) {
  // log(1+e^x) = max(x,0) + log1p(e^{-|x|})
  return std::max(x, 0.0) + std::log1p(std::exp(-std::fabs(x)));
}

double TanhDerivFromOutput(double y) { return 1.0 - y * y; }

double SigmoidDerivFromOutput(double y) { return y * (1.0 - y); }

void Softmax(std::span<const double> in, std::span<double> out) {
  KGE_DCHECK(in.size() == out.size());
  if (in.empty()) return;
  double max_value = in[0];
  for (double x : in) max_value = std::max(max_value, x);
  double sum = 0.0;
  for (size_t i = 0; i < in.size(); ++i) {
    out[i] = std::exp(in[i] - max_value);
    sum += out[i];
  }
  const double inv = 1.0 / sum;
  for (size_t i = 0; i < out.size(); ++i) out[i] *= inv;
}

void SoftmaxBackward(std::span<const double> y, std::span<const double> g,
                     std::span<double> out) {
  KGE_DCHECK(y.size() == g.size() && y.size() == out.size());
  double weighted = 0.0;
  for (size_t i = 0; i < y.size(); ++i) weighted += g[i] * y[i];
  for (size_t i = 0; i < y.size(); ++i) out[i] = y[i] * (g[i] - weighted);
}

}  // namespace kge
