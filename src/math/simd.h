// SIMD kernel layer: the single dispatch point for every dense float
// kernel on the scoring and gradient hot paths. One implementation is
// selected at compile time from the target ISA:
//
//   * AVX2 + FMA   when __AVX2__ and __FMA__ are defined (x86-64; enable
//                  with -DKGE_AVX2=ON or -DKGE_NATIVE_ARCH=ON),
//   * NEON         on AArch64 (always available there),
//   * scalar       otherwise — a portable fallback that mirrors the SIMD
//                  accumulation scheme exactly (see the numerics contract).
//
// Callers normally go through the std::span API in math/vec_ops.h; this
// header is the raw-pointer layer underneath it, plus the batch-ranking
// and fused-gradient kernels that only exist here.
//
// ## Numerics contract
//
// Reductions (Dot, TrilinearDot, DotBatch, SquaredNorm, L1Norm, the
// distances) accumulate in double precision with kAccumulatorLanes (= 8)
// interleaved partial sums: element d contributes to partial sum d mod 8,
// and the partials are combined in the fixed order
//
//   ((p0+p1) + (p2+p3)) + ((p4+p5) + (p6+p7)).
//
// The scalar fallback implements this scheme with explicit per-statement
// temporaries, so builds differing only in ISA agree *bit-for-bit* on
// Dot, DotBatch and SquaredNorm: the product of two floats is exact in
// double, which makes an FMA indistinguishable from mul-then-add there.
// Kernels whose inner products are inexact in double (TrilinearDot, the
// L2 distance) deliberately avoid FMA and round exactly where the scalar
// scheme rounds, so they are bit-identical across ISAs too. Elementwise
// kernels (Hadamard, HadamardAxpy, Axpy, TripleGradAxpy, Scale) evaluate
// in float with a fixed association, again FMA-free, and match exactly.
//
// What is NOT preserved is the pre-SIMD strictly sequential accumulation
// order: a partial-sum reduction reassociates the sum, so scores can
// differ from a naive left-to-right loop by O(n·eps) — the kernel
// equivalence suite (tests/simd_test.cc) bounds this against the naive
// references in simd::ref.
//
// DotBatch additionally guarantees out[row] == float(Dot(v, row)) for
// every row: the tiled multi-row path uses the same per-row lane scheme,
// so batching is a pure scheduling change, never a numeric one. The same
// holds for the id-indirected DotBatchIndexed and for the multi-query
// DotBatchMulti: every (query, row) cell of the latter keeps its own
// 8-lane accumulator group, so cache blocking over entity rows and
// register blocking over queries never change a single output bit.
//
// ## Precision-tier contract (DotBatchMultiF32 / DotBatchMultiI8)
//
// The reduced-precision ranking tiers (core/scoring_replica.h) carry the
// same bit-identical-across-ISAs guarantee, but in float: each (query,
// row) cell accumulates kAccumulatorLanes interleaved *float* partial
// sums (element d → lane d mod 8) combined in the same fixed
// ((p0+p1)+(p2+p3)) + ((p4+p5)+(p6+p7)) tree. Because a float product is
// NOT exact in float, an FMA would skip a rounding the scalar scheme
// performs — so every path is strictly mul-then-add (the AVX2 build uses
// vmulps/vaddps, never vfmadd*ps). The int8 tier converts each code to
// float (exact: |code| ≤ 127), runs the same float lane scheme against
// the query, and applies the row's dequantization scale in one final
// float multiply. Unlike the double kernels, simd::ref's baselines for
// these tiers implement the *same* lane scheme — there is no more
// precise canonical float value to appeal to; the scheme IS each tier's
// semantic definition — so tests pin kernel == ref bit-exactly per ISA.
#ifndef KGE_MATH_SIMD_H_
#define KGE_MATH_SIMD_H_

#include <cstddef>
#include <cstdint>

#include "util/hotpath.h"

namespace kge::simd {

// Number of interleaved double partial sums every reduction uses; element
// d accumulates into partial d % kAccumulatorLanes on every ISA.
inline constexpr size_t kAccumulatorLanes = 8;

// Rows per tile in DotBatch: the tiled loop keeps this many independent
// accumulator groups live so candidate rows share each load of `v`.
inline constexpr size_t kDotBatchTileRows = 4;

// Entity-tile budget for DotBatchMulti: the multi-query driver walks the
// row matrix in blocks of at most this many bytes so a block loaded for
// the first query is still resident in L1/L2 when the last query of the
// batch scores it. 24 KiB leaves room in a 32 KiB L1d for the query rows
// and the output slices alongside the entity tile.
inline constexpr size_t kDotBatchMultiTileBytes = 24 * 1024;

enum class Isa { kScalar, kAvx2Fma, kNeon };

// The ISA this translation unit was compiled for.
Isa ActiveIsa();
// "avx2+fma", "neon", or "scalar" — stamped into BENCH_kernels.json.
const char* IsaName();

// ---- Reductions (double accumulation, 8 interleaved partials) -------------

// Σ_d a[d]·b[d]
KGE_HOT_NOALLOC
double Dot(const float* a, const float* b, size_t n);

// Σ_d a[d]·b[d]·c[d]
KGE_HOT_NOALLOC
double TrilinearDot(const float* a, const float* b, const float* c, size_t n);

// Σ_d a[d]²
KGE_HOT_NOALLOC
double SquaredNorm(const float* a, size_t n);

// Σ_d |a[d]|
KGE_HOT_NOALLOC
double L1Norm(const float* a, size_t n);

// Σ_d |a[d] − b[d]|
KGE_HOT_NOALLOC
double L1Distance(const float* a, const float* b, size_t n);

// Σ_d (a[d] − b[d])²
KGE_HOT_NOALLOC
double SquaredL2Distance(const float* a, const float* b, size_t n);

// max_d |a[d] − b[d]|
KGE_HOT_NOALLOC
double MaxAbsDiff(const float* a, const float* b, size_t n);

// ---- Batch ranking kernel --------------------------------------------------

// out[row] = float(Dot(v, rows + row·n)) for row in [0, num_rows): one
// query vector against a row-major matrix — the fold-then-dot ranking
// step of every trilinear model, executed as a tiled matrix-vector
// product (kDotBatchTileRows rows per tile, each with its own
// accumulator group) instead of num_rows separate Dot calls.
KGE_HOT_NOALLOC
void DotBatch(const float* v, const float* rows, size_t num_rows, size_t n,
              float* out);

// out[q·num_rows + row] = float(Dot(queries + q·n, rows + row·n)) for
// every (q, row): a batch of query vectors against the same row-major
// matrix — the GEMV→GEMM step behind batched full-vocabulary ranking.
// The driver walks `rows` in cache blocks of ≤ kDotBatchMultiTileBytes
// so a block fetched for the first query is served from L1/L2 for the
// remaining queries of the batch; inside a block the AVX2 build runs a
// 2-query × 2-row register kernel that shares each row load/convert
// across both queries. Every (q, row) cell keeps the per-pair 8-lane
// accumulation scheme of Dot, so batching across queries — like
// batching across rows in DotBatch — is a scheduling change only:
// results are bit-identical to num_queries separate DotBatch calls on
// every ISA.
KGE_HOT_NOALLOC
void DotBatchMulti(const float* queries, size_t num_queries,
                   const float* rows, size_t num_rows, size_t n, float* out);

// out[i] = float(Dot(v, rows + size_t(ids[i])·n)) for i in [0,
// num_ids): DotBatch with an id-indirected row set, scoring gathered
// candidates (e.g. negative samples) straight out of the embedding
// table instead of memcpy-compacting them first. Duplicate and
// unsorted ids are fine; each id must be in [0, rows_in_table).
KGE_HOT_NOALLOC
void DotBatchIndexed(const float* v, const float* rows,
                     const std::int32_t* ids, size_t num_ids, size_t n,
                     float* out);

// ---- Precision-tiered batch ranking kernels --------------------------------

// out[q·num_rows + row] = F32Dot(queries + q·n, rows + row·n): the
// float-accumulation twin of DotBatchMulti (the float32 scoring tier).
// Same ≤ kDotBatchMultiTileBytes cache blocking and, on AVX2, the same
// 2-query × 2-row register kernel — with float lanes doubling the SIMD
// width (8 floats per ymm vs 4 doubles). See the precision-tier
// contract above: 8 interleaved float partials, mul-then-add, no FMA,
// bit-identical across ISAs and to simd::ref::DotBatchMultiF32.
KGE_HOT_NOALLOC
void DotBatchMultiF32(const float* queries, size_t num_queries,
                      const float* rows, size_t num_rows, size_t n,
                      float* out);

// out[q·num_rows + row] = scales[row] · F32Dot(queries + q·n,
// float(rows8 + row·n)): the int8 scoring tier. `rows8` is a row-major
// per-row absmax-quantized table with dequantization factors `scales`
// (built by QuantizeRowsI8 / core/scoring_replica.h). Each int8 code
// converts to float exactly, accumulates through the float lane scheme,
// and the combined sum is scaled once. Streams 1 byte per candidate
// element instead of 4 — a 4x DRAM-traffic cut on the ranking path.
KGE_HOT_NOALLOC
void DotBatchMultiI8(const float* queries, size_t num_queries,
                     const std::int8_t* rows8, const float* scales,
                     size_t num_rows, size_t n, float* out);

// Per-row absmax quantization backing the int8 tier: for each row,
// scales[row] = absmax/127 (0 for an all-zero row, whose codes are all
// 0) and out8[row·n + d] = clamp(lround(x[d]/scale), -127, 127). Cold
// path (replica rebuild, never per-triple) and shared scalar code on
// every ISA, so a quantized table is bit-identical across builds.
void QuantizeRowsI8(const float* rows, size_t num_rows, size_t n,
                    std::int8_t* out8, float* scales);

// ---- Pruned-ranking support kernels ----------------------------------------
//
// The bound-based pruning path (DESIGN.md §5h) walks the entity table in
// the same ≤ kDotBatchMultiTileBytes tiles as DotBatchMulti and skips a
// tile when a precomputed Cauchy–Schwarz upper bound proves no row in it
// can reach the current threshold. The bound for tile t is
//
//   ‖fold‖₂ · tile_norms[t] · kPruneBoundSlack
//
// where tile_norms[t] is the max row L2 norm inside the tile (for the
// int8 tier, the max of scales[row]·‖codes_row‖₂). kPruneBoundSlack
// absorbs every rounding the finite-precision pipeline can introduce
// (float-rounded norms, float/double accumulation error in the scoring
// kernels, the sqrt), so the bound is conservative and pruning is EXACT:
// a skipped tile provably contains no score ≥ the threshold. Relative
// accumulation error is O(n·eps) ≈ 3e-5 for float at n = 1024; 2⁻¹⁰ is
// ~30x above that.
inline constexpr double kPruneBoundSlack = 1.0 + 0x1p-10;

// Rows per bound tile for an entity table whose rows are n floats wide.
// One geometry serves every precision tier (keyed to the master float
// row width), so a single bound array index maps to the same row range
// regardless of tier.
constexpr size_t PrunedTileRows(size_t n) {
  const size_t bytes = n * sizeof(float);
  if (bytes == 0) return 1;
  const size_t rows = kDotBatchMultiTileBytes / bytes;
  return rows == 0 ? 1 : rows;
}

// Number of bound tiles covering num_rows rows (= ceil division).
constexpr size_t PrunedTileCount(size_t num_rows, size_t n) {
  const size_t rows_per_tile = PrunedTileRows(n);
  return (num_rows + rows_per_tile - 1) / rows_per_tile;
}

// tile_norms[t] = max over rows r in tile t of float(sqrt(SquaredNorm(r)))
// where tile t covers rows [t·rows_per_tile, (t+1)·rows_per_tile). Cold
// path (replica rebuild); SquaredNorm is bit-identical across ISAs, so
// the bound table is too.
void TileMaxRowNorms(const float* rows, size_t num_rows, size_t n,
                     size_t rows_per_tile, float* tile_norms);

// Int8-tier twin: tile_norms[t] = max over rows of
// float(scales[row]·sqrt(Σ_d codes[d]²)). The code sum is an exact
// integer in double, so this is bit-identical across ISAs by
// construction (shared scalar code).
void TileMaxRowNormsI8(const std::int8_t* rows8, const float* scales,
                       size_t num_rows, size_t n, size_t rows_per_tile,
                       float* tile_norms);

// *greater = |{i < n : scores[i] > threshold}| and
// *equal = |{i < n : scores[i] == threshold}| — the fused
// compare-and-count inner step of the pruned rank-counting scan.
// Integer outputs are order-independent, hence trivially bit-identical
// across ISAs.
KGE_HOT_NOALLOC
void CountGreaterEqual(const float* scores, size_t n, float threshold,
                       size_t* greater, size_t* equal);

// ---- Elementwise kernels (float, fixed association, FMA-free) --------------

// out[d] = a[d]·b[d]
KGE_HOT_NOALLOC
void Hadamard(const float* a, const float* b, float* out, size_t n);

// out[d] += (scale·a[d])·b[d]
KGE_HOT_NOALLOC
void HadamardAxpy(float scale, const float* a, const float* b, float* out,
                  size_t n);

// out[d] += scale·a[d]
KGE_HOT_NOALLOC
void Axpy(float scale, const float* a, float* out, size_t n);

// out[d] = value
KGE_HOT_NOALLOC
void Fill(float* out, float value, size_t n);

// out[d] *= scale
KGE_HOT_NOALLOC
void Scale(float* out, float scale, size_t n);

// The fused Eq. (8) gradient update — one pass over d performing
//   gh[d] += (w·t[d])·r[d],  gt[d] += (w·h[d])·r[d],  gr[d] += (w·h[d])·t[d]
// with the same association as three separate HadamardAxpy calls (so the
// fusion is bit-exact); loads h/t/r once instead of twice each.
KGE_HOT_NOALLOC
void TripleGradAxpy(float w, const float* h, const float* t, const float* r,
                    float* gh, float* gt, float* gr, size_t n);

// ---- Naive references ------------------------------------------------------
// Strictly sequential left-to-right implementations, used by the kernel
// equivalence tests as ground truth and by bench/perf_report as the
// pre-SIMD baseline. Reductions accumulate in a single double.
namespace ref {

double Dot(const float* a, const float* b, size_t n);
double TrilinearDot(const float* a, const float* b, const float* c, size_t n);
double SquaredNorm(const float* a, size_t n);
double L1Norm(const float* a, size_t n);
double L1Distance(const float* a, const float* b, size_t n);
double SquaredL2Distance(const float* a, const float* b, size_t n);
double MaxAbsDiff(const float* a, const float* b, size_t n);
void DotBatch(const float* v, const float* rows, size_t num_rows, size_t n,
              float* out);
void DotBatchMulti(const float* queries, size_t num_queries,
                   const float* rows, size_t num_rows, size_t n, float* out);
void DotBatchIndexed(const float* v, const float* rows,
                     const std::int32_t* ids, size_t num_ids, size_t n,
                     float* out);
// Tier baselines: these implement the float lane scheme itself (see the
// precision-tier contract) — the vector kernels must match bit-exactly.
void DotBatchMultiF32(const float* queries, size_t num_queries,
                      const float* rows, size_t num_rows, size_t n,
                      float* out);
void DotBatchMultiI8(const float* queries, size_t num_queries,
                     const std::int8_t* rows8, const float* scales,
                     size_t num_rows, size_t n, float* out);
void TileMaxRowNorms(const float* rows, size_t num_rows, size_t n,
                     size_t rows_per_tile, float* tile_norms);
void TileMaxRowNormsI8(const std::int8_t* rows8, const float* scales,
                       size_t num_rows, size_t n, size_t rows_per_tile,
                       float* tile_norms);
void CountGreaterEqual(const float* scores, size_t n, float threshold,
                       size_t* greater, size_t* equal);
void Hadamard(const float* a, const float* b, float* out, size_t n);
void HadamardAxpy(float scale, const float* a, const float* b, float* out,
                  size_t n);
void Axpy(float scale, const float* a, float* out, size_t n);
void TripleGradAxpy(float w, const float* h, const float* t, const float* r,
                    float* gh, float* gt, float* gr, size_t n);

}  // namespace ref

}  // namespace kge::simd

#endif  // KGE_MATH_SIMD_H_
