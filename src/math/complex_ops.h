// Complex-valued scoring helpers used to verify the paper's Eq. (9)/(10):
// ComplEx's score Re(⟨h, t̄, r⟩) over C^D expands into four weighted real
// trilinear products. The production scoring path uses the real-valued
// multi-embedding engine (core/interaction.h); this module is the
// independent "native complex algebra" implementation the equivalence
// tests and bench/table1_equivalence compare against.
#ifndef KGE_MATH_COMPLEX_OPS_H_
#define KGE_MATH_COMPLEX_OPS_H_

#include <span>

namespace kge {

// A complex vector as parallel (real, imag) float arrays of equal length.
struct ComplexVectorView {
  std::span<const float> re;
  std::span<const float> im;

  size_t size() const { return re.size(); }
};

// Σ_d Re(h_d * conj(t_d) * r_d): ComplEx's score function (Eq. 5).
double ComplexScore(const ComplexVectorView& h, const ComplexVectorView& t,
                    const ComplexVectorView& r);

// Σ_d Re(h_d * t_d * r_d): the same product without the tail conjugate.
// Included to demonstrate that the conjugate is what breaks symmetry.
double ComplexScoreNoConjugate(const ComplexVectorView& h,
                               const ComplexVectorView& t,
                               const ComplexVectorView& r);

}  // namespace kge

#endif  // KGE_MATH_COMPLEX_OPS_H_
