#include "math/octonion.h"

#include <cmath>

#include "util/string_utils.h"

namespace kge {

Octonion Octonion::FromComponents(const std::array<double, 8>& c) {
  return Octonion(Quaternion(c[0], c[1], c[2], c[3]),
                  Quaternion(c[4], c[5], c[6], c[7]));
}

std::array<double, 8> Octonion::Components() const {
  return {a.a, a.b, a.c, a.d, b.a, b.b, b.c, b.d};
}

Octonion Octonion::Conjugate() const {
  return Octonion(a.Conjugate(), -1.0 * b);
}

double Octonion::NormSquared() const {
  return a.NormSquared() + b.NormSquared();
}

double Octonion::Norm() const { return std::sqrt(NormSquared()); }

std::string Octonion::ToString() const {
  const auto c = Components();
  std::string out = "(";
  for (int i = 0; i < 8; ++i) {
    out += StrFormat("%s%ge%d", i > 0 ? " + " : "", c[size_t(i)], i);
  }
  return out + ")";
}

Octonion operator+(const Octonion& x, const Octonion& y) {
  return Octonion(x.a + y.a, x.b + y.b);
}

Octonion operator-(const Octonion& x, const Octonion& y) {
  return Octonion(x.a - y.a, x.b - y.b);
}

Octonion operator*(const Octonion& x, const Octonion& y) {
  // (a, b)(c, d) = (ac − d̄b, da + bc̄)
  return Octonion(x.a * y.a - y.b.Conjugate() * x.b,
                  y.b * x.a + x.b * y.a.Conjugate());
}

bool operator==(const Octonion& x, const Octonion& y) {
  return x.a == y.a && x.b == y.b;
}

}  // namespace kge
