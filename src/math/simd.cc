// ISA-specific kernel implementations. See simd.h for the dispatch rules
// and the numerics contract; the short version is that every reduction
// accumulates into kAccumulatorLanes (8) interleaved double partial sums
// combined in a fixed order, and every kernel keeps each rounding step in
// a named temporary so no compiler may contract mul+add into an FMA where
// the contract forbids it. FMA is used only where the product is exact in
// double (products of two converted floats), which keeps the AVX2, NEON,
// and scalar builds bit-identical on Dot / DotBatch / SquaredNorm.
#include "math/simd.h"

#include <algorithm>
#include <cmath>

#if defined(__AVX2__) && defined(__FMA__)
#define KGE_SIMD_ISA_AVX2 1
#include <immintrin.h>
#elif defined(__aarch64__) && defined(__ARM_NEON)
#define KGE_SIMD_ISA_NEON 1
#include <arm_neon.h>
#else
#define KGE_SIMD_ISA_SCALAR 1
#endif

namespace kge::simd {
namespace {

// Fixed combine order of the 8 partial sums (see simd.h): a balanced tree
// whose shape matches the in-register pairwise adds of the SIMD paths.
inline double Combine8(const double p[kAccumulatorLanes]) {
  const double s01 = p[0] + p[1];
  const double s23 = p[2] + p[3];
  const double s45 = p[4] + p[5];
  const double s67 = p[6] + p[7];
  const double lo = s01 + s23;
  const double hi = s45 + s67;
  return lo + hi;
}

// ---- Portable 8-lane reference scheme --------------------------------------
// These define the bit-exact semantics of every reduction. The scalar
// build dispatches straight to them (the independent lanes let the
// compiler auto-vectorize legally); the AVX2/NEON paths reuse them for
// loop tails by continuing the lane pattern from an extracted partial
// array (element d of a tail starting at a multiple of 8 belongs to lane
// d mod 8 — exactly lane d − tail_start).

inline void DotTail(const float* a, const float* b, size_t begin, size_t n,
                    double p[kAccumulatorLanes]) {
  for (size_t d = begin; d < n; ++d) {
    const double x = double(a[d]);
    const double y = double(b[d]);
    const double m = x * y;
    p[d % kAccumulatorLanes] += m;
  }
}

inline void TrilinearTail(const float* a, const float* b, const float* c,
                          size_t begin, size_t n,
                          double p[kAccumulatorLanes]) {
  for (size_t d = begin; d < n; ++d) {
    const double m = double(a[d]) * double(b[d]);  // exact
    const double q = m * double(c[d]);             // rounds once
    p[d % kAccumulatorLanes] += q;
  }
}

inline void L1NormTail(const float* a, size_t begin, size_t n,
                       double p[kAccumulatorLanes]) {
  for (size_t d = begin; d < n; ++d) {
    p[d % kAccumulatorLanes] += std::fabs(double(a[d]));
  }
}

inline void L1DistanceTail(const float* a, const float* b, size_t begin,
                           size_t n, double p[kAccumulatorLanes]) {
  for (size_t d = begin; d < n; ++d) {
    const double diff = double(a[d]) - double(b[d]);
    p[d % kAccumulatorLanes] += std::fabs(diff);
  }
}

inline void L2DistanceTail(const float* a, const float* b, size_t begin,
                           size_t n, double p[kAccumulatorLanes]) {
  for (size_t d = begin; d < n; ++d) {
    const double diff = double(a[d]) - double(b[d]);
    const double sq = diff * diff;  // rounds; no FMA with the add below
    p[d % kAccumulatorLanes] += sq;
  }
}

[[maybe_unused]] inline double ScalarDot(const float* a, const float* b, size_t n) {
  double p[kAccumulatorLanes] = {};
  DotTail(a, b, 0, n, p);
  return Combine8(p);
}

[[maybe_unused]] inline double ScalarTrilinearDot(const float* a, const float* b,
                                 const float* c, size_t n) {
  double p[kAccumulatorLanes] = {};
  TrilinearTail(a, b, c, 0, n, p);
  return Combine8(p);
}

[[maybe_unused]] inline double ScalarL1Norm(const float* a, size_t n) {
  double p[kAccumulatorLanes] = {};
  L1NormTail(a, 0, n, p);
  return Combine8(p);
}

[[maybe_unused]] inline double ScalarL1Distance(const float* a, const float* b, size_t n) {
  double p[kAccumulatorLanes] = {};
  L1DistanceTail(a, b, 0, n, p);
  return Combine8(p);
}

[[maybe_unused]] inline double ScalarSquaredL2Distance(const float* a, const float* b,
                                      size_t n) {
  double p[kAccumulatorLanes] = {};
  L2DistanceTail(a, b, 0, n, p);
  return Combine8(p);
}

// ---- Float 8-lane scheme (precision tiers) ---------------------------------
// The float twins of Combine8/DotTail define the bit-exact semantics of
// the float32 and int8 scoring tiers (see simd.h's precision-tier
// contract). A float product is inexact in float, so every path —
// including the vector kernels below — is strictly mul-then-add; an FMA
// would skip the per-product rounding these tails perform.

inline float CombineF32(const float p[kAccumulatorLanes]) {
  const float s01 = p[0] + p[1];
  const float s23 = p[2] + p[3];
  const float s45 = p[4] + p[5];
  const float s67 = p[6] + p[7];
  const float lo = s01 + s23;
  const float hi = s45 + s67;
  return lo + hi;
}

inline void DotTailF32(const float* a, const float* b, size_t begin, size_t n,
                       float p[kAccumulatorLanes]) {
  for (size_t d = begin; d < n; ++d) {
    const float m = a[d] * b[d];  // rounds once; the add rounds once
    p[d % kAccumulatorLanes] += m;
  }
}

inline void DotTailI8(const float* q, const std::int8_t* r, size_t begin,
                      size_t n, float p[kAccumulatorLanes]) {
  for (size_t d = begin; d < n; ++d) {
    const float m = q[d] * float(r[d]);  // int8 → float is exact
    p[d % kAccumulatorLanes] += m;
  }
}

[[maybe_unused]] inline float ScalarDotF32(const float* a, const float* b,
                                           size_t n) {
  float p[kAccumulatorLanes] = {};
  DotTailF32(a, b, 0, n, p);
  return CombineF32(p);
}

[[maybe_unused]] inline float ScalarDotI8(const float* q, const std::int8_t* r,
                                          float scale, size_t n) {
  float p[kAccumulatorLanes] = {};
  DotTailI8(q, r, 0, n, p);
  const float sum = CombineF32(p);
  return scale * sum;
}

}  // namespace

// ---- ISA id ----------------------------------------------------------------

Isa ActiveIsa() {
#if defined(KGE_SIMD_ISA_AVX2)
  return Isa::kAvx2Fma;
#elif defined(KGE_SIMD_ISA_NEON)
  return Isa::kNeon;
#else
  return Isa::kScalar;
#endif
}

const char* IsaName() {
  switch (ActiveIsa()) {
    case Isa::kAvx2Fma:
      return "avx2+fma";
    case Isa::kNeon:
      return "neon";
    case Isa::kScalar:
      return "scalar";
  }
  return "?";
}

// ---- AVX2 + FMA ------------------------------------------------------------

#if defined(KGE_SIMD_ISA_AVX2)

namespace {

// Extracts [acc_lo | acc_hi] into the 8-lane partial array so scalar
// tails can continue the lane pattern.
inline void StorePartials(__m256d acc_lo, __m256d acc_hi,
                          double p[kAccumulatorLanes]) {
  _mm256_storeu_pd(p, acc_lo);
  _mm256_storeu_pd(p + 4, acc_hi);
}

inline __m256d CvtLo(const float* x) {
  return _mm256_cvtps_pd(_mm_loadu_ps(x));
}

}  // namespace

double Dot(const float* a, const float* b, size_t n) {
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  size_t d = 0;
  for (; d + kAccumulatorLanes <= n; d += kAccumulatorLanes) {
    // Products of converted floats are exact in double: FMA == mul+add.
    acc_lo = _mm256_fmadd_pd(CvtLo(a + d), CvtLo(b + d), acc_lo);
    acc_hi = _mm256_fmadd_pd(CvtLo(a + d + 4), CvtLo(b + d + 4), acc_hi);
  }
  double p[kAccumulatorLanes];
  StorePartials(acc_lo, acc_hi, p);
  DotTail(a, b, d, n, p);
  return Combine8(p);
}

double TrilinearDot(const float* a, const float* b, const float* c,
                    size_t n) {
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  size_t d = 0;
  for (; d + kAccumulatorLanes <= n; d += kAccumulatorLanes) {
    // m is exact, q rounds once, the add rounds once — FMA would skip q's
    // rounding and diverge from the scalar scheme, so stay mul+add.
    const __m256d m_lo = _mm256_mul_pd(CvtLo(a + d), CvtLo(b + d));
    const __m256d q_lo = _mm256_mul_pd(m_lo, CvtLo(c + d));
    acc_lo = _mm256_add_pd(acc_lo, q_lo);
    const __m256d m_hi = _mm256_mul_pd(CvtLo(a + d + 4), CvtLo(b + d + 4));
    const __m256d q_hi = _mm256_mul_pd(m_hi, CvtLo(c + d + 4));
    acc_hi = _mm256_add_pd(acc_hi, q_hi);
  }
  double p[kAccumulatorLanes];
  StorePartials(acc_lo, acc_hi, p);
  TrilinearTail(a, b, c, d, n, p);
  return Combine8(p);
}

double SquaredNorm(const float* a, size_t n) { return Dot(a, a, n); }

double L1Norm(const float* a, size_t n) {
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  size_t d = 0;
  for (; d + kAccumulatorLanes <= n; d += kAccumulatorLanes) {
    acc_lo = _mm256_add_pd(acc_lo,
                           _mm256_andnot_pd(sign_mask, CvtLo(a + d)));
    acc_hi = _mm256_add_pd(acc_hi,
                           _mm256_andnot_pd(sign_mask, CvtLo(a + d + 4)));
  }
  double p[kAccumulatorLanes];
  StorePartials(acc_lo, acc_hi, p);
  L1NormTail(a, d, n, p);
  return Combine8(p);
}

double L1Distance(const float* a, const float* b, size_t n) {
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  size_t d = 0;
  for (; d + kAccumulatorLanes <= n; d += kAccumulatorLanes) {
    const __m256d diff_lo = _mm256_sub_pd(CvtLo(a + d), CvtLo(b + d));
    acc_lo = _mm256_add_pd(acc_lo, _mm256_andnot_pd(sign_mask, diff_lo));
    const __m256d diff_hi = _mm256_sub_pd(CvtLo(a + d + 4), CvtLo(b + d + 4));
    acc_hi = _mm256_add_pd(acc_hi, _mm256_andnot_pd(sign_mask, diff_hi));
  }
  double p[kAccumulatorLanes];
  StorePartials(acc_lo, acc_hi, p);
  L1DistanceTail(a, b, d, n, p);
  return Combine8(p);
}

double SquaredL2Distance(const float* a, const float* b, size_t n) {
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  size_t d = 0;
  for (; d + kAccumulatorLanes <= n; d += kAccumulatorLanes) {
    // diff² is inexact in double, so no FMA (see TrilinearDot).
    const __m256d diff_lo = _mm256_sub_pd(CvtLo(a + d), CvtLo(b + d));
    const __m256d sq_lo = _mm256_mul_pd(diff_lo, diff_lo);
    acc_lo = _mm256_add_pd(acc_lo, sq_lo);
    const __m256d diff_hi = _mm256_sub_pd(CvtLo(a + d + 4), CvtLo(b + d + 4));
    const __m256d sq_hi = _mm256_mul_pd(diff_hi, diff_hi);
    acc_hi = _mm256_add_pd(acc_hi, sq_hi);
  }
  double p[kAccumulatorLanes];
  StorePartials(acc_lo, acc_hi, p);
  L2DistanceTail(a, b, d, n, p);
  return Combine8(p);
}

double MaxAbsDiff(const float* a, const float* b, size_t n) {
  // Subtract in double like the scalar path: the difference of two
  // floats is not always representable in float, so a float subtract
  // would round differently. Max itself is order-insensitive.
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  __m256d vmax_lo = _mm256_setzero_pd();
  __m256d vmax_hi = _mm256_setzero_pd();
  size_t d = 0;
  for (; d + kAccumulatorLanes <= n; d += kAccumulatorLanes) {
    const __m256d diff_lo = _mm256_sub_pd(CvtLo(a + d), CvtLo(b + d));
    vmax_lo = _mm256_max_pd(vmax_lo, _mm256_andnot_pd(sign_mask, diff_lo));
    const __m256d diff_hi = _mm256_sub_pd(CvtLo(a + d + 4), CvtLo(b + d + 4));
    vmax_hi = _mm256_max_pd(vmax_hi, _mm256_andnot_pd(sign_mask, diff_hi));
  }
  double lanes[kAccumulatorLanes];
  StorePartials(vmax_lo, vmax_hi, lanes);
  double max_diff = 0.0;
  for (double lane : lanes) {
    if (lane > max_diff) max_diff = lane;
  }
  for (; d < n; ++d) {
    const double diff = std::fabs(double(a[d]) - double(b[d]));
    if (diff > max_diff) max_diff = diff;
  }
  return max_diff;
}

namespace {

// One kDotBatchTileRows-row tile of DotBatch: four independent two-
// register accumulator groups, each following the exact Dot scheme, with
// every load/convert of v shared across the four rows. Writes
// out[0..3] = float(Dot(v, r_i)). Factored out so the contiguous
// (DotBatch) and id-indirected (DotBatchIndexed) drivers share one body.
inline void DotTile4(const float* v, const float* r0, const float* r1,
                     const float* r2, const float* r3, size_t n,
                     float* out) {
  __m256d a0_lo = _mm256_setzero_pd(), a0_hi = _mm256_setzero_pd();
  __m256d a1_lo = _mm256_setzero_pd(), a1_hi = _mm256_setzero_pd();
  __m256d a2_lo = _mm256_setzero_pd(), a2_hi = _mm256_setzero_pd();
  __m256d a3_lo = _mm256_setzero_pd(), a3_hi = _mm256_setzero_pd();
  size_t d = 0;
  for (; d + kAccumulatorLanes <= n; d += kAccumulatorLanes) {
    const __m256d v_lo = CvtLo(v + d);
    const __m256d v_hi = CvtLo(v + d + 4);
    a0_lo = _mm256_fmadd_pd(CvtLo(r0 + d), v_lo, a0_lo);
    a0_hi = _mm256_fmadd_pd(CvtLo(r0 + d + 4), v_hi, a0_hi);
    a1_lo = _mm256_fmadd_pd(CvtLo(r1 + d), v_lo, a1_lo);
    a1_hi = _mm256_fmadd_pd(CvtLo(r1 + d + 4), v_hi, a1_hi);
    a2_lo = _mm256_fmadd_pd(CvtLo(r2 + d), v_lo, a2_lo);
    a2_hi = _mm256_fmadd_pd(CvtLo(r2 + d + 4), v_hi, a2_hi);
    a3_lo = _mm256_fmadd_pd(CvtLo(r3 + d), v_lo, a3_lo);
    a3_hi = _mm256_fmadd_pd(CvtLo(r3 + d + 4), v_hi, a3_hi);
  }
  double p0[kAccumulatorLanes], p1[kAccumulatorLanes];
  double p2[kAccumulatorLanes], p3[kAccumulatorLanes];
  StorePartials(a0_lo, a0_hi, p0);
  StorePartials(a1_lo, a1_hi, p1);
  StorePartials(a2_lo, a2_hi, p2);
  StorePartials(a3_lo, a3_hi, p3);
  DotTail(v, r0, d, n, p0);
  DotTail(v, r1, d, n, p1);
  DotTail(v, r2, d, n, p2);
  DotTail(v, r3, d, n, p3);
  out[0] = float(Combine8(p0));
  out[1] = float(Combine8(p1));
  out[2] = float(Combine8(p2));
  out[3] = float(Combine8(p3));
}

// 2-query × 2-row register block of DotBatchMulti: four accumulator
// groups (q×r), eight live __m256d accumulators, with each row
// load/convert shared across both queries and each query load/convert
// shared across both rows. out0/out1 receive the two rows' scores for
// q0/q1 respectively; every cell rounds exactly like Dot.
inline void DotTile2x2(const float* q0, const float* q1, const float* r0,
                       const float* r1, size_t n, float* out0, float* out1) {
  __m256d a00_lo = _mm256_setzero_pd(), a00_hi = _mm256_setzero_pd();
  __m256d a01_lo = _mm256_setzero_pd(), a01_hi = _mm256_setzero_pd();
  __m256d a10_lo = _mm256_setzero_pd(), a10_hi = _mm256_setzero_pd();
  __m256d a11_lo = _mm256_setzero_pd(), a11_hi = _mm256_setzero_pd();
  size_t d = 0;
  for (; d + kAccumulatorLanes <= n; d += kAccumulatorLanes) {
    const __m256d q0_lo = CvtLo(q0 + d);
    const __m256d q0_hi = CvtLo(q0 + d + 4);
    const __m256d q1_lo = CvtLo(q1 + d);
    const __m256d q1_hi = CvtLo(q1 + d + 4);
    const __m256d r0_lo = CvtLo(r0 + d);
    const __m256d r0_hi = CvtLo(r0 + d + 4);
    a00_lo = _mm256_fmadd_pd(r0_lo, q0_lo, a00_lo);
    a00_hi = _mm256_fmadd_pd(r0_hi, q0_hi, a00_hi);
    a10_lo = _mm256_fmadd_pd(r0_lo, q1_lo, a10_lo);
    a10_hi = _mm256_fmadd_pd(r0_hi, q1_hi, a10_hi);
    const __m256d r1_lo = CvtLo(r1 + d);
    const __m256d r1_hi = CvtLo(r1 + d + 4);
    a01_lo = _mm256_fmadd_pd(r1_lo, q0_lo, a01_lo);
    a01_hi = _mm256_fmadd_pd(r1_hi, q0_hi, a01_hi);
    a11_lo = _mm256_fmadd_pd(r1_lo, q1_lo, a11_lo);
    a11_hi = _mm256_fmadd_pd(r1_hi, q1_hi, a11_hi);
  }
  double p00[kAccumulatorLanes], p01[kAccumulatorLanes];
  double p10[kAccumulatorLanes], p11[kAccumulatorLanes];
  StorePartials(a00_lo, a00_hi, p00);
  StorePartials(a01_lo, a01_hi, p01);
  StorePartials(a10_lo, a10_hi, p10);
  StorePartials(a11_lo, a11_hi, p11);
  DotTail(q0, r0, d, n, p00);
  DotTail(q0, r1, d, n, p01);
  DotTail(q1, r0, d, n, p10);
  DotTail(q1, r1, d, n, p11);
  out0[0] = float(Combine8(p00));
  out0[1] = float(Combine8(p01));
  out1[0] = float(Combine8(p10));
  out1[1] = float(Combine8(p11));
}

// Two queries against a contiguous row block: row pairs go through the
// 2×2 register kernel, a trailing odd row falls back to Dot per query.
inline void DotBatchDual(const float* q0, const float* q1, const float* rows,
                         size_t num_rows, size_t n, float* out0,
                         float* out1) {
  size_t row = 0;
  for (; row + 2 <= num_rows; row += 2) {
    DotTile2x2(q0, q1, rows + row * n, rows + (row + 1) * n, n, out0 + row,
               out1 + row);
  }
  if (row < num_rows) {
    const float* r = rows + row * n;
    out0[row] = float(Dot(q0, r, n));
    out1[row] = float(Dot(q1, r, n));
  }
}

// ---- Precision-tier cells (float 8-lane scheme; see simd.h) ----------------

// 8 int8 codes → 8 floats, exactly (|code| ≤ 127 « 2^24).
inline __m256 CvtI8(const std::int8_t* r) {
  const __m128i codes =
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(r));
  return _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(codes));
}

// One (query, row) cell of the float32 tier: a single __m256 holds the 8
// float lanes, mul-then-add only (vfmadd*ps would skip the per-product
// rounding the scalar scheme performs).
inline float DotCellF32(const float* a, const float* b, size_t n) {
  __m256 acc = _mm256_setzero_ps();
  size_t d = 0;
  for (; d + kAccumulatorLanes <= n; d += kAccumulatorLanes) {
    const __m256 m = _mm256_mul_ps(_mm256_loadu_ps(a + d),
                                   _mm256_loadu_ps(b + d));
    acc = _mm256_add_ps(acc, m);
  }
  float p[kAccumulatorLanes];
  _mm256_storeu_ps(p, acc);
  DotTailF32(a, b, d, n, p);
  return CombineF32(p);
}

// One (query, row) cell of the int8 tier: convert 8 codes per step
// (exact), run the float lane scheme, scale once after the combine.
inline float DotCellI8(const float* q, const std::int8_t* r, float scale,
                       size_t n) {
  __m256 acc = _mm256_setzero_ps();
  size_t d = 0;
  for (; d + kAccumulatorLanes <= n; d += kAccumulatorLanes) {
    const __m256 m = _mm256_mul_ps(_mm256_loadu_ps(q + d), CvtI8(r + d));
    acc = _mm256_add_ps(acc, m);
  }
  float p[kAccumulatorLanes];
  _mm256_storeu_ps(p, acc);
  DotTailI8(q, r, d, n, p);
  const float sum = CombineF32(p);
  return scale * sum;
}

// 2-query × 2-row register block of DotBatchMultiF32 (DotTile2x2's float
// twin): four live __m256 accumulators, each row load shared across both
// queries and vice versa, every cell rounding exactly like DotCellF32.
inline void DotTile2x2F32(const float* q0, const float* q1, const float* r0,
                          const float* r1, size_t n, float* out0,
                          float* out1) {
  __m256 a00 = _mm256_setzero_ps(), a01 = _mm256_setzero_ps();
  __m256 a10 = _mm256_setzero_ps(), a11 = _mm256_setzero_ps();
  size_t d = 0;
  for (; d + kAccumulatorLanes <= n; d += kAccumulatorLanes) {
    const __m256 vq0 = _mm256_loadu_ps(q0 + d);
    const __m256 vq1 = _mm256_loadu_ps(q1 + d);
    const __m256 vr0 = _mm256_loadu_ps(r0 + d);
    a00 = _mm256_add_ps(a00, _mm256_mul_ps(vr0, vq0));
    a10 = _mm256_add_ps(a10, _mm256_mul_ps(vr0, vq1));
    const __m256 vr1 = _mm256_loadu_ps(r1 + d);
    a01 = _mm256_add_ps(a01, _mm256_mul_ps(vr1, vq0));
    a11 = _mm256_add_ps(a11, _mm256_mul_ps(vr1, vq1));
  }
  float p00[kAccumulatorLanes], p01[kAccumulatorLanes];
  float p10[kAccumulatorLanes], p11[kAccumulatorLanes];
  _mm256_storeu_ps(p00, a00);
  _mm256_storeu_ps(p01, a01);
  _mm256_storeu_ps(p10, a10);
  _mm256_storeu_ps(p11, a11);
  DotTailF32(q0, r0, d, n, p00);
  DotTailF32(q0, r1, d, n, p01);
  DotTailF32(q1, r0, d, n, p10);
  DotTailF32(q1, r1, d, n, p11);
  out0[0] = CombineF32(p00);
  out0[1] = CombineF32(p01);
  out1[0] = CombineF32(p10);
  out1[1] = CombineF32(p11);
}

// The int8 twin: each row's 8-code convert is shared across both queries.
inline void DotTile2x2I8(const float* q0, const float* q1,
                         const std::int8_t* r0, const std::int8_t* r1,
                         float s0, float s1, size_t n, float* out0,
                         float* out1) {
  __m256 a00 = _mm256_setzero_ps(), a01 = _mm256_setzero_ps();
  __m256 a10 = _mm256_setzero_ps(), a11 = _mm256_setzero_ps();
  size_t d = 0;
  for (; d + kAccumulatorLanes <= n; d += kAccumulatorLanes) {
    const __m256 vq0 = _mm256_loadu_ps(q0 + d);
    const __m256 vq1 = _mm256_loadu_ps(q1 + d);
    const __m256 vr0 = CvtI8(r0 + d);
    a00 = _mm256_add_ps(a00, _mm256_mul_ps(vr0, vq0));
    a10 = _mm256_add_ps(a10, _mm256_mul_ps(vr0, vq1));
    const __m256 vr1 = CvtI8(r1 + d);
    a01 = _mm256_add_ps(a01, _mm256_mul_ps(vr1, vq0));
    a11 = _mm256_add_ps(a11, _mm256_mul_ps(vr1, vq1));
  }
  float p00[kAccumulatorLanes], p01[kAccumulatorLanes];
  float p10[kAccumulatorLanes], p11[kAccumulatorLanes];
  _mm256_storeu_ps(p00, a00);
  _mm256_storeu_ps(p01, a01);
  _mm256_storeu_ps(p10, a10);
  _mm256_storeu_ps(p11, a11);
  DotTailI8(q0, r0, d, n, p00);
  DotTailI8(q0, r1, d, n, p01);
  DotTailI8(q1, r0, d, n, p10);
  DotTailI8(q1, r1, d, n, p11);
  const float sum00 = CombineF32(p00);
  const float sum01 = CombineF32(p01);
  const float sum10 = CombineF32(p10);
  const float sum11 = CombineF32(p11);
  out0[0] = s0 * sum00;
  out0[1] = s1 * sum01;
  out1[0] = s0 * sum10;
  out1[1] = s1 * sum11;
}

// Two queries against a contiguous float32 row block (DotBatchDual's
// float twin); a trailing odd row falls back to the single cell.
inline void DotBatchDualF32(const float* q0, const float* q1,
                            const float* rows, size_t num_rows, size_t n,
                            float* out0, float* out1) {
  size_t row = 0;
  for (; row + 2 <= num_rows; row += 2) {
    DotTile2x2F32(q0, q1, rows + row * n, rows + (row + 1) * n, n,
                  out0 + row, out1 + row);
  }
  if (row < num_rows) {
    const float* r = rows + row * n;
    out0[row] = DotCellF32(q0, r, n);
    out1[row] = DotCellF32(q1, r, n);
  }
}

inline void DotBatchDualI8(const float* q0, const float* q1,
                           const std::int8_t* rows8, const float* scales,
                           size_t num_rows, size_t n, float* out0,
                           float* out1) {
  size_t row = 0;
  for (; row + 2 <= num_rows; row += 2) {
    DotTile2x2I8(q0, q1, rows8 + row * n, rows8 + (row + 1) * n,
                 scales[row], scales[row + 1], n, out0 + row, out1 + row);
  }
  if (row < num_rows) {
    const std::int8_t* r = rows8 + row * n;
    out0[row] = DotCellI8(q0, r, scales[row], n);
    out1[row] = DotCellI8(q1, r, scales[row], n);
  }
}

}  // namespace

void DotBatch(const float* v, const float* rows, size_t num_rows, size_t n,
              float* out) {
  // Tiles of kDotBatchTileRows rows; each row keeps the same two-register
  // accumulator group as Dot, so out[row] == float(Dot(v, row)) exactly.
  // The tile shares every load/convert of v across its rows, turning the
  // ranking loop into a blocked matrix-vector product.
  size_t row = 0;
  for (; row + kDotBatchTileRows <= num_rows; row += kDotBatchTileRows) {
    DotTile4(v, rows + (row + 0) * n, rows + (row + 1) * n,
             rows + (row + 2) * n, rows + (row + 3) * n, n, out + row);
  }
  for (; row < num_rows; ++row) {
    out[row] = float(Dot(v, rows + row * n, n));
  }
}

void DotBatchIndexed(const float* v, const float* rows,
                     const std::int32_t* ids, size_t num_ids, size_t n,
                     float* out) {
  size_t i = 0;
  for (; i + kDotBatchTileRows <= num_ids; i += kDotBatchTileRows) {
    DotTile4(v, rows + size_t(ids[i + 0]) * n, rows + size_t(ids[i + 1]) * n,
             rows + size_t(ids[i + 2]) * n, rows + size_t(ids[i + 3]) * n, n,
             out + i);
  }
  for (; i < num_ids; ++i) {
    out[i] = float(Dot(v, rows + size_t(ids[i]) * n, n));
  }
}

void Hadamard(const float* a, const float* b, float* out, size_t n) {
  size_t d = 0;
  for (; d + 8 <= n; d += 8) {
    const __m256 m = _mm256_mul_ps(_mm256_loadu_ps(a + d),
                                   _mm256_loadu_ps(b + d));
    _mm256_storeu_ps(out + d, m);
  }
  for (; d < n; ++d) out[d] = a[d] * b[d];
}

void HadamardAxpy(float scale, const float* a, const float* b, float* out,
                  size_t n) {
  const __m256 vs = _mm256_set1_ps(scale);
  size_t d = 0;
  for (; d + 8 <= n; d += 8) {
    const __m256 sa = _mm256_mul_ps(vs, _mm256_loadu_ps(a + d));
    const __m256 sab = _mm256_mul_ps(sa, _mm256_loadu_ps(b + d));
    const __m256 sum = _mm256_add_ps(_mm256_loadu_ps(out + d), sab);
    _mm256_storeu_ps(out + d, sum);
  }
  for (; d < n; ++d) {
    const float sa = scale * a[d];
    const float sab = sa * b[d];
    out[d] += sab;
  }
}

void Axpy(float scale, const float* a, float* out, size_t n) {
  const __m256 vs = _mm256_set1_ps(scale);
  size_t d = 0;
  for (; d + 8 <= n; d += 8) {
    const __m256 sa = _mm256_mul_ps(vs, _mm256_loadu_ps(a + d));
    const __m256 sum = _mm256_add_ps(_mm256_loadu_ps(out + d), sa);
    _mm256_storeu_ps(out + d, sum);
  }
  for (; d < n; ++d) {
    const float sa = scale * a[d];
    out[d] += sa;
  }
}

void Fill(float* out, float value, size_t n) {
  const __m256 vv = _mm256_set1_ps(value);
  size_t d = 0;
  for (; d + 8 <= n; d += 8) _mm256_storeu_ps(out + d, vv);
  for (; d < n; ++d) out[d] = value;
}

void Scale(float* out, float scale, size_t n) {
  const __m256 vs = _mm256_set1_ps(scale);
  size_t d = 0;
  for (; d + 8 <= n; d += 8) {
    _mm256_storeu_ps(out + d, _mm256_mul_ps(vs, _mm256_loadu_ps(out + d)));
  }
  for (; d < n; ++d) out[d] *= scale;
}

void TripleGradAxpy(float w, const float* h, const float* t, const float* r,
                    float* gh, float* gt, float* gr, size_t n) {
  const __m256 vw = _mm256_set1_ps(w);
  size_t d = 0;
  for (; d + 8 <= n; d += 8) {
    const __m256 vh = _mm256_loadu_ps(h + d);
    const __m256 vt = _mm256_loadu_ps(t + d);
    const __m256 vr = _mm256_loadu_ps(r + d);
    const __m256 wh = _mm256_mul_ps(vw, vh);
    const __m256 wt = _mm256_mul_ps(vw, vt);
    const __m256 dgh = _mm256_mul_ps(wt, vr);
    const __m256 dgt = _mm256_mul_ps(wh, vr);
    const __m256 dgr = _mm256_mul_ps(wh, vt);
    _mm256_storeu_ps(gh + d, _mm256_add_ps(_mm256_loadu_ps(gh + d), dgh));
    _mm256_storeu_ps(gt + d, _mm256_add_ps(_mm256_loadu_ps(gt + d), dgt));
    _mm256_storeu_ps(gr + d, _mm256_add_ps(_mm256_loadu_ps(gr + d), dgr));
  }
  for (; d < n; ++d) {
    const float wh = w * h[d];
    const float wt = w * t[d];
    const float dgh = wt * r[d];
    const float dgt = wh * r[d];
    const float dgr = wh * t[d];
    gh[d] += dgh;
    gt[d] += dgt;
    gr[d] += dgr;
  }
}

// ---- NEON (AArch64) --------------------------------------------------------

#elif defined(KGE_SIMD_ISA_NEON)

namespace {

struct Acc8 {
  // Lane layout matches the 8-lane scheme: a = {p0,p1}, b = {p2,p3},
  // c = {p4,p5}, d = {p6,p7}.
  float64x2_t a, b, c, d;
};

inline Acc8 ZeroAcc8() {
  const float64x2_t z = vdupq_n_f64(0.0);
  return Acc8{z, z, z, z};
}

inline void StorePartials(const Acc8& acc, double p[kAccumulatorLanes]) {
  vst1q_f64(p + 0, acc.a);
  vst1q_f64(p + 2, acc.b);
  vst1q_f64(p + 4, acc.c);
  vst1q_f64(p + 6, acc.d);
}

struct Dbl8 {
  float64x2_t a, b, c, d;
};

inline Dbl8 Widen8(const float* x) {
  const float32x4_t lo = vld1q_f32(x);
  const float32x4_t hi = vld1q_f32(x + 4);
  return Dbl8{vcvt_f64_f32(vget_low_f32(lo)), vcvt_high_f64_f32(lo),
              vcvt_f64_f32(vget_low_f32(hi)), vcvt_high_f64_f32(hi)};
}

}  // namespace

double Dot(const float* a, const float* b, size_t n) {
  Acc8 acc = ZeroAcc8();
  size_t d = 0;
  for (; d + kAccumulatorLanes <= n; d += kAccumulatorLanes) {
    const Dbl8 xa = Widen8(a + d);
    const Dbl8 xb = Widen8(b + d);
    acc.a = vfmaq_f64(acc.a, xa.a, xb.a);
    acc.b = vfmaq_f64(acc.b, xa.b, xb.b);
    acc.c = vfmaq_f64(acc.c, xa.c, xb.c);
    acc.d = vfmaq_f64(acc.d, xa.d, xb.d);
  }
  double p[kAccumulatorLanes];
  StorePartials(acc, p);
  DotTail(a, b, d, n, p);
  return Combine8(p);
}

double TrilinearDot(const float* a, const float* b, const float* c,
                    size_t n) {
  Acc8 acc = ZeroAcc8();
  size_t d = 0;
  for (; d + kAccumulatorLanes <= n; d += kAccumulatorLanes) {
    const Dbl8 xa = Widen8(a + d);
    const Dbl8 xb = Widen8(b + d);
    const Dbl8 xc = Widen8(c + d);
    // Same two-rounding structure as the scalar scheme: no FMA.
    acc.a = vaddq_f64(acc.a, vmulq_f64(vmulq_f64(xa.a, xb.a), xc.a));
    acc.b = vaddq_f64(acc.b, vmulq_f64(vmulq_f64(xa.b, xb.b), xc.b));
    acc.c = vaddq_f64(acc.c, vmulq_f64(vmulq_f64(xa.c, xb.c), xc.c));
    acc.d = vaddq_f64(acc.d, vmulq_f64(vmulq_f64(xa.d, xb.d), xc.d));
  }
  double p[kAccumulatorLanes];
  StorePartials(acc, p);
  TrilinearTail(a, b, c, d, n, p);
  return Combine8(p);
}

double SquaredNorm(const float* a, size_t n) { return Dot(a, a, n); }

double L1Norm(const float* a, size_t n) {
  Acc8 acc = ZeroAcc8();
  size_t d = 0;
  for (; d + kAccumulatorLanes <= n; d += kAccumulatorLanes) {
    const Dbl8 xa = Widen8(a + d);
    acc.a = vaddq_f64(acc.a, vabsq_f64(xa.a));
    acc.b = vaddq_f64(acc.b, vabsq_f64(xa.b));
    acc.c = vaddq_f64(acc.c, vabsq_f64(xa.c));
    acc.d = vaddq_f64(acc.d, vabsq_f64(xa.d));
  }
  double p[kAccumulatorLanes];
  StorePartials(acc, p);
  L1NormTail(a, d, n, p);
  return Combine8(p);
}

double L1Distance(const float* a, const float* b, size_t n) {
  Acc8 acc = ZeroAcc8();
  size_t d = 0;
  for (; d + kAccumulatorLanes <= n; d += kAccumulatorLanes) {
    const Dbl8 xa = Widen8(a + d);
    const Dbl8 xb = Widen8(b + d);
    acc.a = vaddq_f64(acc.a, vabsq_f64(vsubq_f64(xa.a, xb.a)));
    acc.b = vaddq_f64(acc.b, vabsq_f64(vsubq_f64(xa.b, xb.b)));
    acc.c = vaddq_f64(acc.c, vabsq_f64(vsubq_f64(xa.c, xb.c)));
    acc.d = vaddq_f64(acc.d, vabsq_f64(vsubq_f64(xa.d, xb.d)));
  }
  double p[kAccumulatorLanes];
  StorePartials(acc, p);
  L1DistanceTail(a, b, d, n, p);
  return Combine8(p);
}

double SquaredL2Distance(const float* a, const float* b, size_t n) {
  Acc8 acc = ZeroAcc8();
  size_t d = 0;
  for (; d + kAccumulatorLanes <= n; d += kAccumulatorLanes) {
    const Dbl8 xa = Widen8(a + d);
    const Dbl8 xb = Widen8(b + d);
    const float64x2_t da = vsubq_f64(xa.a, xb.a);
    const float64x2_t db = vsubq_f64(xa.b, xb.b);
    const float64x2_t dc = vsubq_f64(xa.c, xb.c);
    const float64x2_t dd = vsubq_f64(xa.d, xb.d);
    acc.a = vaddq_f64(acc.a, vmulq_f64(da, da));
    acc.b = vaddq_f64(acc.b, vmulq_f64(db, db));
    acc.c = vaddq_f64(acc.c, vmulq_f64(dc, dc));
    acc.d = vaddq_f64(acc.d, vmulq_f64(dd, dd));
  }
  double p[kAccumulatorLanes];
  StorePartials(acc, p);
  L2DistanceTail(a, b, d, n, p);
  return Combine8(p);
}

double MaxAbsDiff(const float* a, const float* b, size_t n) {
  // Subtract in double like the scalar path: the difference of two
  // floats is not always representable in float, so a float subtract
  // would round differently. Max itself is order-insensitive.
  float64x2_t vmax = vdupq_n_f64(0.0);
  size_t d = 0;
  for (; d + 4 <= n; d += 4) {
    const float32x4_t af = vld1q_f32(a + d);
    const float32x4_t bf = vld1q_f32(b + d);
    const float64x2_t diff_lo = vsubq_f64(vcvt_f64_f32(vget_low_f32(af)),
                                          vcvt_f64_f32(vget_low_f32(bf)));
    const float64x2_t diff_hi =
        vsubq_f64(vcvt_high_f64_f32(af), vcvt_high_f64_f32(bf));
    vmax = vmaxq_f64(vmax, vabsq_f64(diff_lo));
    vmax = vmaxq_f64(vmax, vabsq_f64(diff_hi));
  }
  double max_diff = vmaxvq_f64(vmax);
  for (; d < n; ++d) {
    const double diff = std::fabs(double(a[d]) - double(b[d]));
    if (diff > max_diff) max_diff = diff;
  }
  return max_diff;
}

namespace {

// One kDotBatchTileRows-row tile of DotBatch (see the AVX2 twin): four
// accumulator groups sharing every widen of v, each row rounding exactly
// like Dot. Shared by the contiguous and id-indirected drivers.
inline void DotTile4(const float* v, const float* r0, const float* r1,
                     const float* r2, const float* r3, size_t n,
                     float* out) {
  Acc8 acc0 = ZeroAcc8(), acc1 = ZeroAcc8();
  Acc8 acc2 = ZeroAcc8(), acc3 = ZeroAcc8();
  size_t d = 0;
  for (; d + kAccumulatorLanes <= n; d += kAccumulatorLanes) {
    const Dbl8 xv = Widen8(v + d);
    const Dbl8 x0 = Widen8(r0 + d);
    acc0.a = vfmaq_f64(acc0.a, x0.a, xv.a);
    acc0.b = vfmaq_f64(acc0.b, x0.b, xv.b);
    acc0.c = vfmaq_f64(acc0.c, x0.c, xv.c);
    acc0.d = vfmaq_f64(acc0.d, x0.d, xv.d);
    const Dbl8 x1 = Widen8(r1 + d);
    acc1.a = vfmaq_f64(acc1.a, x1.a, xv.a);
    acc1.b = vfmaq_f64(acc1.b, x1.b, xv.b);
    acc1.c = vfmaq_f64(acc1.c, x1.c, xv.c);
    acc1.d = vfmaq_f64(acc1.d, x1.d, xv.d);
    const Dbl8 x2 = Widen8(r2 + d);
    acc2.a = vfmaq_f64(acc2.a, x2.a, xv.a);
    acc2.b = vfmaq_f64(acc2.b, x2.b, xv.b);
    acc2.c = vfmaq_f64(acc2.c, x2.c, xv.c);
    acc2.d = vfmaq_f64(acc2.d, x2.d, xv.d);
    const Dbl8 x3 = Widen8(r3 + d);
    acc3.a = vfmaq_f64(acc3.a, x3.a, xv.a);
    acc3.b = vfmaq_f64(acc3.b, x3.b, xv.b);
    acc3.c = vfmaq_f64(acc3.c, x3.c, xv.c);
    acc3.d = vfmaq_f64(acc3.d, x3.d, xv.d);
  }
  double p0[kAccumulatorLanes], p1[kAccumulatorLanes];
  double p2[kAccumulatorLanes], p3[kAccumulatorLanes];
  StorePartials(acc0, p0);
  StorePartials(acc1, p1);
  StorePartials(acc2, p2);
  StorePartials(acc3, p3);
  DotTail(v, r0, d, n, p0);
  DotTail(v, r1, d, n, p1);
  DotTail(v, r2, d, n, p2);
  DotTail(v, r3, d, n, p3);
  out[0] = float(Combine8(p0));
  out[1] = float(Combine8(p1));
  out[2] = float(Combine8(p2));
  out[3] = float(Combine8(p3));
}

// ---- Precision-tier cells (float 8-lane scheme; see simd.h) ----------------
// Lanes 0–3 live in acc_lo, 4–7 in acc_hi; mul-then-add only.

inline float DotCellF32(const float* a, const float* b, size_t n) {
  float32x4_t acc_lo = vdupq_n_f32(0.0f);
  float32x4_t acc_hi = vdupq_n_f32(0.0f);
  size_t d = 0;
  for (; d + kAccumulatorLanes <= n; d += kAccumulatorLanes) {
    const float32x4_t m_lo = vmulq_f32(vld1q_f32(a + d), vld1q_f32(b + d));
    acc_lo = vaddq_f32(acc_lo, m_lo);
    const float32x4_t m_hi =
        vmulq_f32(vld1q_f32(a + d + 4), vld1q_f32(b + d + 4));
    acc_hi = vaddq_f32(acc_hi, m_hi);
  }
  float p[kAccumulatorLanes];
  vst1q_f32(p, acc_lo);
  vst1q_f32(p + 4, acc_hi);
  DotTailF32(a, b, d, n, p);
  return CombineF32(p);
}

inline float DotCellI8(const float* q, const std::int8_t* r, float scale,
                       size_t n) {
  float32x4_t acc_lo = vdupq_n_f32(0.0f);
  float32x4_t acc_hi = vdupq_n_f32(0.0f);
  size_t d = 0;
  for (; d + kAccumulatorLanes <= n; d += kAccumulatorLanes) {
    const int16x8_t w16 = vmovl_s8(vld1_s8(r + d));  // exact widening
    const float32x4_t r_lo = vcvtq_f32_s32(vmovl_s16(vget_low_s16(w16)));
    const float32x4_t r_hi = vcvtq_f32_s32(vmovl_s16(vget_high_s16(w16)));
    acc_lo = vaddq_f32(acc_lo, vmulq_f32(vld1q_f32(q + d), r_lo));
    acc_hi = vaddq_f32(acc_hi, vmulq_f32(vld1q_f32(q + d + 4), r_hi));
  }
  float p[kAccumulatorLanes];
  vst1q_f32(p, acc_lo);
  vst1q_f32(p + 4, acc_hi);
  DotTailI8(q, r, d, n, p);
  const float sum = CombineF32(p);
  return scale * sum;
}

}  // namespace

void DotBatch(const float* v, const float* rows, size_t num_rows, size_t n,
              float* out) {
  size_t row = 0;
  for (; row + kDotBatchTileRows <= num_rows; row += kDotBatchTileRows) {
    DotTile4(v, rows + (row + 0) * n, rows + (row + 1) * n,
             rows + (row + 2) * n, rows + (row + 3) * n, n, out + row);
  }
  for (; row < num_rows; ++row) {
    out[row] = float(Dot(v, rows + row * n, n));
  }
}

void DotBatchIndexed(const float* v, const float* rows,
                     const std::int32_t* ids, size_t num_ids, size_t n,
                     float* out) {
  size_t i = 0;
  for (; i + kDotBatchTileRows <= num_ids; i += kDotBatchTileRows) {
    DotTile4(v, rows + size_t(ids[i + 0]) * n, rows + size_t(ids[i + 1]) * n,
             rows + size_t(ids[i + 2]) * n, rows + size_t(ids[i + 3]) * n, n,
             out + i);
  }
  for (; i < num_ids; ++i) {
    out[i] = float(Dot(v, rows + size_t(ids[i]) * n, n));
  }
}

void Hadamard(const float* a, const float* b, float* out, size_t n) {
  size_t d = 0;
  for (; d + 4 <= n; d += 4) {
    vst1q_f32(out + d, vmulq_f32(vld1q_f32(a + d), vld1q_f32(b + d)));
  }
  for (; d < n; ++d) out[d] = a[d] * b[d];
}

void HadamardAxpy(float scale, const float* a, const float* b, float* out,
                  size_t n) {
  const float32x4_t vs = vdupq_n_f32(scale);
  size_t d = 0;
  for (; d + 4 <= n; d += 4) {
    const float32x4_t sa = vmulq_f32(vs, vld1q_f32(a + d));
    const float32x4_t sab = vmulq_f32(sa, vld1q_f32(b + d));
    vst1q_f32(out + d, vaddq_f32(vld1q_f32(out + d), sab));
  }
  for (; d < n; ++d) {
    const float sa = scale * a[d];
    const float sab = sa * b[d];
    out[d] += sab;
  }
}

void Axpy(float scale, const float* a, float* out, size_t n) {
  const float32x4_t vs = vdupq_n_f32(scale);
  size_t d = 0;
  for (; d + 4 <= n; d += 4) {
    const float32x4_t sa = vmulq_f32(vs, vld1q_f32(a + d));
    vst1q_f32(out + d, vaddq_f32(vld1q_f32(out + d), sa));
  }
  for (; d < n; ++d) {
    const float sa = scale * a[d];
    out[d] += sa;
  }
}

void Fill(float* out, float value, size_t n) {
  const float32x4_t vv = vdupq_n_f32(value);
  size_t d = 0;
  for (; d + 4 <= n; d += 4) vst1q_f32(out + d, vv);
  for (; d < n; ++d) out[d] = value;
}

void Scale(float* out, float scale, size_t n) {
  const float32x4_t vs = vdupq_n_f32(scale);
  size_t d = 0;
  for (; d + 4 <= n; d += 4) {
    vst1q_f32(out + d, vmulq_f32(vs, vld1q_f32(out + d)));
  }
  for (; d < n; ++d) out[d] *= scale;
}

void TripleGradAxpy(float w, const float* h, const float* t, const float* r,
                    float* gh, float* gt, float* gr, size_t n) {
  const float32x4_t vw = vdupq_n_f32(w);
  size_t d = 0;
  for (; d + 4 <= n; d += 4) {
    const float32x4_t vh = vld1q_f32(h + d);
    const float32x4_t vt = vld1q_f32(t + d);
    const float32x4_t vr = vld1q_f32(r + d);
    const float32x4_t wh = vmulq_f32(vw, vh);
    const float32x4_t wt = vmulq_f32(vw, vt);
    vst1q_f32(gh + d, vaddq_f32(vld1q_f32(gh + d), vmulq_f32(wt, vr)));
    vst1q_f32(gt + d, vaddq_f32(vld1q_f32(gt + d), vmulq_f32(wh, vr)));
    vst1q_f32(gr + d, vaddq_f32(vld1q_f32(gr + d), vmulq_f32(wh, vt)));
  }
  for (; d < n; ++d) {
    const float wh = w * h[d];
    const float wt = w * t[d];
    const float dgh = wt * r[d];
    const float dgt = wh * r[d];
    const float dgr = wh * t[d];
    gh[d] += dgh;
    gt[d] += dgt;
    gr[d] += dgr;
  }
}

// ---- Scalar fallback -------------------------------------------------------

#else  // KGE_SIMD_ISA_SCALAR

namespace {

// Precision-tier cells: the scalar build dispatches straight to the
// float 8-lane scheme (see simd.h's precision-tier contract).
inline float DotCellF32(const float* a, const float* b, size_t n) {
  return ScalarDotF32(a, b, n);
}

inline float DotCellI8(const float* q, const std::int8_t* r, float scale,
                       size_t n) {
  return ScalarDotI8(q, r, scale, n);
}

}  // namespace

double Dot(const float* a, const float* b, size_t n) {
  return ScalarDot(a, b, n);
}

double TrilinearDot(const float* a, const float* b, const float* c,
                    size_t n) {
  return ScalarTrilinearDot(a, b, c, n);
}

double SquaredNorm(const float* a, size_t n) { return ScalarDot(a, a, n); }

double L1Norm(const float* a, size_t n) { return ScalarL1Norm(a, n); }

double L1Distance(const float* a, const float* b, size_t n) {
  return ScalarL1Distance(a, b, n);
}

double SquaredL2Distance(const float* a, const float* b, size_t n) {
  return ScalarSquaredL2Distance(a, b, n);
}

double MaxAbsDiff(const float* a, const float* b, size_t n) {
  double max_diff = 0.0;
  for (size_t d = 0; d < n; ++d) {
    const double diff = std::fabs(double(a[d]) - double(b[d]));
    if (diff > max_diff) max_diff = diff;
  }
  return max_diff;
}

void DotBatch(const float* v, const float* rows, size_t num_rows, size_t n,
              float* out) {
  for (size_t row = 0; row < num_rows; ++row) {
    out[row] = float(ScalarDot(v, rows + row * n, n));
  }
}

void DotBatchIndexed(const float* v, const float* rows,
                     const std::int32_t* ids, size_t num_ids, size_t n,
                     float* out) {
  for (size_t i = 0; i < num_ids; ++i) {
    out[i] = float(ScalarDot(v, rows + size_t(ids[i]) * n, n));
  }
}

void Hadamard(const float* a, const float* b, float* out, size_t n) {
  for (size_t d = 0; d < n; ++d) out[d] = a[d] * b[d];
}

void HadamardAxpy(float scale, const float* a, const float* b, float* out,
                  size_t n) {
  for (size_t d = 0; d < n; ++d) {
    const float sa = scale * a[d];
    const float sab = sa * b[d];
    out[d] += sab;
  }
}

void Axpy(float scale, const float* a, float* out, size_t n) {
  for (size_t d = 0; d < n; ++d) {
    const float sa = scale * a[d];
    out[d] += sa;
  }
}

void Fill(float* out, float value, size_t n) {
  for (size_t d = 0; d < n; ++d) out[d] = value;
}

void Scale(float* out, float scale, size_t n) {
  for (size_t d = 0; d < n; ++d) out[d] *= scale;
}

void TripleGradAxpy(float w, const float* h, const float* t, const float* r,
                    float* gh, float* gt, float* gr, size_t n) {
  for (size_t d = 0; d < n; ++d) {
    const float wh = w * h[d];
    const float wt = w * t[d];
    const float dgh = wt * r[d];
    const float dgt = wh * r[d];
    const float dgr = wh * t[d];
    gh[d] += dgh;
    gt[d] += dgt;
    gr[d] += dgr;
  }
}

#endif  // ISA selection

// ---- Multi-query driver (shared across ISAs) -------------------------------
// Cache blocking is ISA-independent: walk the row matrix in tiles small
// enough to stay resident in L1/L2, and score every query against the
// tile before moving on — the GEMV→GEMM step. Each (query, tile) pair
// then goes through the ISA's DotBatch (or, on AVX2, a dual-query
// register kernel for query pairs), so every output cell inherits the
// bit-exact per-cell Dot contract; the tiling itself never splits a
// reduction, only reorders whole (query, row) cells.

void DotBatchMulti(const float* queries, size_t num_queries,
                   const float* rows, size_t num_rows, size_t n, float* out) {
  if (num_queries == 0 || num_rows == 0) return;
  const size_t row_bytes = n * sizeof(float);
  size_t tile_rows =
      row_bytes == 0 ? num_rows : kDotBatchMultiTileBytes / row_bytes;
  if (tile_rows < kDotBatchTileRows) tile_rows = kDotBatchTileRows;
  for (size_t row0 = 0; row0 < num_rows; row0 += tile_rows) {
    const size_t tile = std::min(tile_rows, num_rows - row0);
    const float* tile_rows_ptr = rows + row0 * n;
    float* tile_out = out + row0;
    size_t q = 0;
#if defined(KGE_SIMD_ISA_AVX2)
    for (; q + 2 <= num_queries; q += 2) {
      DotBatchDual(queries + q * n, queries + (q + 1) * n, tile_rows_ptr,
                   tile, n, tile_out + q * num_rows,
                   tile_out + (q + 1) * num_rows);
    }
#endif
    for (; q < num_queries; ++q) {
      DotBatch(queries + q * n, tile_rows_ptr, tile, n,
               tile_out + q * num_rows);
    }
  }
}

// ---- Precision-tier drivers (shared across ISAs) ---------------------------
// Same cache-blocked walk as DotBatchMulti; only the per-cell kernel and
// the bytes per row differ. A float32 row is n·4 bytes, an int8 row n·1,
// so the ≤ kDotBatchMultiTileBytes blocks hold 1x/4x more rows than the
// row width suggests — the tiling never splits a reduction, so cells are
// bit-identical to single-query DotCell calls on every ISA.

void DotBatchMultiF32(const float* queries, size_t num_queries,
                      const float* rows, size_t num_rows, size_t n,
                      float* out) {
  if (num_queries == 0 || num_rows == 0) return;
  const size_t row_bytes = n * sizeof(float);
  size_t tile_rows =
      row_bytes == 0 ? num_rows : kDotBatchMultiTileBytes / row_bytes;
  if (tile_rows < kDotBatchTileRows) tile_rows = kDotBatchTileRows;
  for (size_t row0 = 0; row0 < num_rows; row0 += tile_rows) {
    const size_t tile = std::min(tile_rows, num_rows - row0);
    const float* tile_rows_ptr = rows + row0 * n;
    float* tile_out = out + row0;
    size_t q = 0;
#if defined(KGE_SIMD_ISA_AVX2)
    for (; q + 2 <= num_queries; q += 2) {
      DotBatchDualF32(queries + q * n, queries + (q + 1) * n, tile_rows_ptr,
                      tile, n, tile_out + q * num_rows,
                      tile_out + (q + 1) * num_rows);
    }
#endif
    for (; q < num_queries; ++q) {
      const float* query = queries + q * n;
      float* qout = tile_out + q * num_rows;
      for (size_t r = 0; r < tile; ++r) {
        qout[r] = DotCellF32(query, tile_rows_ptr + r * n, n);
      }
    }
  }
}

void DotBatchMultiI8(const float* queries, size_t num_queries,
                     const std::int8_t* rows8, const float* scales,
                     size_t num_rows, size_t n, float* out) {
  if (num_queries == 0 || num_rows == 0) return;
  const size_t row_bytes = n * sizeof(std::int8_t);
  size_t tile_rows =
      row_bytes == 0 ? num_rows : kDotBatchMultiTileBytes / row_bytes;
  if (tile_rows < kDotBatchTileRows) tile_rows = kDotBatchTileRows;
  for (size_t row0 = 0; row0 < num_rows; row0 += tile_rows) {
    const size_t tile = std::min(tile_rows, num_rows - row0);
    const std::int8_t* tile_rows_ptr = rows8 + row0 * n;
    const float* tile_scales = scales + row0;
    float* tile_out = out + row0;
    size_t q = 0;
#if defined(KGE_SIMD_ISA_AVX2)
    for (; q + 2 <= num_queries; q += 2) {
      DotBatchDualI8(queries + q * n, queries + (q + 1) * n, tile_rows_ptr,
                     tile_scales, tile, n, tile_out + q * num_rows,
                     tile_out + (q + 1) * num_rows);
    }
#endif
    for (; q < num_queries; ++q) {
      const float* query = queries + q * n;
      float* qout = tile_out + q * num_rows;
      for (size_t r = 0; r < tile; ++r) {
        qout[r] = DotCellI8(query, tile_rows_ptr + r * n, tile_scales[r], n);
      }
    }
  }
}

void QuantizeRowsI8(const float* rows, size_t num_rows, size_t n,
                    std::int8_t* out8, float* scales) {
  for (size_t row = 0; row < num_rows; ++row) {
    const float* x = rows + row * n;
    std::int8_t* codes = out8 + row * n;
    float absmax = 0.0f;
    for (size_t d = 0; d < n; ++d) {
      const float a = std::fabs(x[d]);
      if (a > absmax) absmax = a;
    }
    if (absmax == 0.0f) {
      scales[row] = 0.0f;
      for (size_t d = 0; d < n; ++d) codes[d] = 0;
      continue;
    }
    const float scale = absmax / 127.0f;
    scales[row] = scale;
    for (size_t d = 0; d < n; ++d) {
      // lround can land on ±128 when x[d]/scale rounds past the absmax
      // code (scale itself rounded down), so clamp to the symmetric range.
      const long code = std::lround(x[d] / scale);
      codes[d] = std::int8_t(std::clamp<long>(code, -127, 127));
    }
  }
}

// ---- Pruned-ranking support kernels (see simd.h) ---------------------------
// The bound builders are cold (replica rebuild) and shared-scalar on
// every ISA; determinism comes from SquaredNorm's cross-ISA contract
// (master tier) resp. exact integer arithmetic (int8 tier). The rounding
// direction of float(sqrt(...)) does not matter for correctness: the
// query-time kPruneBoundSlack multiplier absorbs it.

void TileMaxRowNorms(const float* rows, size_t num_rows, size_t n,
                     size_t rows_per_tile, float* tile_norms) {
  size_t t = 0;
  for (size_t row0 = 0; row0 < num_rows; row0 += rows_per_tile, ++t) {
    const size_t limit = std::min(num_rows, row0 + rows_per_tile);
    double max_sq = 0.0;
    for (size_t row = row0; row < limit; ++row) {
      const double sq = SquaredNorm(rows + row * n, n);
      if (sq > max_sq) max_sq = sq;
    }
    tile_norms[t] = float(std::sqrt(max_sq));
  }
}

void TileMaxRowNormsI8(const std::int8_t* rows8, const float* scales,
                       size_t num_rows, size_t n, size_t rows_per_tile,
                       float* tile_norms) {
  size_t t = 0;
  for (size_t row0 = 0; row0 < num_rows; row0 += rows_per_tile, ++t) {
    const size_t limit = std::min(num_rows, row0 + rows_per_tile);
    double max_bound = 0.0;
    for (size_t row = row0; row < limit; ++row) {
      const std::int8_t* codes = rows8 + row * n;
      // Σ code² ≤ 127²·n fits a double exactly, so the sum is
      // order-independent and identical on every ISA.
      double sq = 0.0;
      for (size_t d = 0; d < n; ++d) {
        const double c = double(codes[d]);
        sq += c * c;
      }
      const double bound = double(scales[row]) * std::sqrt(sq);
      if (bound > max_bound) max_bound = bound;
    }
    tile_norms[t] = float(max_bound);
  }
}

void CountGreaterEqual(const float* scores, size_t n, float threshold,
                       size_t* greater, size_t* equal) {
  size_t g = 0;
  size_t e = 0;
  size_t i = 0;
#if defined(KGE_SIMD_ISA_AVX2)
  const __m256 th = _mm256_set1_ps(threshold);
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(scores + i);
    const int gt = _mm256_movemask_ps(_mm256_cmp_ps(v, th, _CMP_GT_OQ));
    const int eq = _mm256_movemask_ps(_mm256_cmp_ps(v, th, _CMP_EQ_OQ));
    g += size_t(__builtin_popcount(unsigned(gt)));
    e += size_t(__builtin_popcount(unsigned(eq)));
  }
#endif
  for (; i < n; ++i) {
    const float s = scores[i];
    if (s > threshold) {
      ++g;
    } else if (s == threshold) {
      ++e;
    }
  }
  *greater = g;
  *equal = e;
}

// ---- Naive references ------------------------------------------------------

namespace ref {

double Dot(const float* a, const float* b, size_t n) {
  double sum = 0.0;
  for (size_t d = 0; d < n; ++d) sum += double(a[d]) * double(b[d]);
  return sum;
}

double TrilinearDot(const float* a, const float* b, const float* c,
                    size_t n) {
  double sum = 0.0;
  for (size_t d = 0; d < n; ++d) {
    sum += double(a[d]) * double(b[d]) * double(c[d]);
  }
  return sum;
}

double SquaredNorm(const float* a, size_t n) { return Dot(a, a, n); }

double L1Norm(const float* a, size_t n) {
  double sum = 0.0;
  for (size_t d = 0; d < n; ++d) sum += std::fabs(double(a[d]));
  return sum;
}

double L1Distance(const float* a, const float* b, size_t n) {
  double sum = 0.0;
  for (size_t d = 0; d < n; ++d) {
    sum += std::fabs(double(a[d]) - double(b[d]));
  }
  return sum;
}

double SquaredL2Distance(const float* a, const float* b, size_t n) {
  double sum = 0.0;
  for (size_t d = 0; d < n; ++d) {
    const double diff = double(a[d]) - double(b[d]);
    sum += diff * diff;
  }
  return sum;
}

double MaxAbsDiff(const float* a, const float* b, size_t n) {
  double max_diff = 0.0;
  for (size_t d = 0; d < n; ++d) {
    const double diff = std::fabs(double(a[d]) - double(b[d]));
    if (diff > max_diff) max_diff = diff;
  }
  return max_diff;
}

void DotBatch(const float* v, const float* rows, size_t num_rows, size_t n,
              float* out) {
  for (size_t row = 0; row < num_rows; ++row) {
    out[row] = float(Dot(v, rows + row * n, n));
  }
}

void DotBatchMulti(const float* queries, size_t num_queries,
                   const float* rows, size_t num_rows, size_t n, float* out) {
  for (size_t q = 0; q < num_queries; ++q) {
    DotBatch(queries + q * n, rows, num_rows, n, out + q * num_rows);
  }
}

void DotBatchIndexed(const float* v, const float* rows,
                     const std::int32_t* ids, size_t num_ids, size_t n,
                     float* out) {
  for (size_t i = 0; i < num_ids; ++i) {
    out[i] = float(Dot(v, rows + size_t(ids[i]) * n, n));
  }
}

// The tier baselines implement the float lane scheme itself — it is the
// tier's semantic definition (see simd.h), so the vector kernels must
// reproduce it bit-for-bit rather than merely approximate it.

void DotBatchMultiF32(const float* queries, size_t num_queries,
                      const float* rows, size_t num_rows, size_t n,
                      float* out) {
  for (size_t q = 0; q < num_queries; ++q) {
    for (size_t row = 0; row < num_rows; ++row) {
      out[q * num_rows + row] =
          ScalarDotF32(queries + q * n, rows + row * n, n);
    }
  }
}

void DotBatchMultiI8(const float* queries, size_t num_queries,
                     const std::int8_t* rows8, const float* scales,
                     size_t num_rows, size_t n, float* out) {
  for (size_t q = 0; q < num_queries; ++q) {
    for (size_t row = 0; row < num_rows; ++row) {
      out[q * num_rows + row] =
          ScalarDotI8(queries + q * n, rows8 + row * n, scales[row], n);
    }
  }
}

void TileMaxRowNorms(const float* rows, size_t num_rows, size_t n,
                     size_t rows_per_tile, float* tile_norms) {
  size_t t = 0;
  for (size_t row0 = 0; row0 < num_rows; row0 += rows_per_tile, ++t) {
    const size_t limit = std::min(num_rows, row0 + rows_per_tile);
    double max_sq = 0.0;
    for (size_t row = row0; row < limit; ++row) {
      const double sq = SquaredNorm(rows + row * n, n);
      if (sq > max_sq) max_sq = sq;
    }
    tile_norms[t] = float(std::sqrt(max_sq));
  }
}

void TileMaxRowNormsI8(const std::int8_t* rows8, const float* scales,
                       size_t num_rows, size_t n, size_t rows_per_tile,
                       float* tile_norms) {
  size_t t = 0;
  for (size_t row0 = 0; row0 < num_rows; row0 += rows_per_tile, ++t) {
    const size_t limit = std::min(num_rows, row0 + rows_per_tile);
    double max_bound = 0.0;
    for (size_t row = row0; row < limit; ++row) {
      const std::int8_t* codes = rows8 + row * n;
      double sq = 0.0;
      for (size_t d = 0; d < n; ++d) {
        const double c = double(codes[d]);
        sq += c * c;
      }
      const double bound = double(scales[row]) * std::sqrt(sq);
      if (bound > max_bound) max_bound = bound;
    }
    tile_norms[t] = float(max_bound);
  }
}

void CountGreaterEqual(const float* scores, size_t n, float threshold,
                       size_t* greater, size_t* equal) {
  size_t g = 0;
  size_t e = 0;
  for (size_t i = 0; i < n; ++i) {
    if (scores[i] > threshold) {
      ++g;
    } else if (scores[i] == threshold) {
      ++e;
    }
  }
  *greater = g;
  *equal = e;
}

void Hadamard(const float* a, const float* b, float* out, size_t n) {
  for (size_t d = 0; d < n; ++d) out[d] = a[d] * b[d];
}

void HadamardAxpy(float scale, const float* a, const float* b, float* out,
                  size_t n) {
  for (size_t d = 0; d < n; ++d) out[d] += scale * a[d] * b[d];
}

void Axpy(float scale, const float* a, float* out, size_t n) {
  for (size_t d = 0; d < n; ++d) out[d] += scale * a[d];
}

void TripleGradAxpy(float w, const float* h, const float* t, const float* r,
                    float* gh, float* gt, float* gr, size_t n) {
  for (size_t d = 0; d < n; ++d) {
    gh[d] += w * t[d] * r[d];
    gt[d] += w * h[d] * r[d];
    gr[d] += w * h[d] * t[d];
  }
}

}  // namespace ref

}  // namespace kge::simd
