// Quaternion algebra (Hamilton's H) used by the paper's four-embedding
// interaction model (§3.4). A quaternion q = a + bi + cj + dk with one real
// component and three imaginary components; multiplication follows
// i² = j² = k² = ijk = −1, which makes the product noncommutative.
//
// This module exists both as a substrate for QuaternionModel and to verify
// (in tests and bench/table1_equivalence) that the paper's hand-expanded
// 16-term weight table in Eq. (14) matches direct quaternion arithmetic.
#ifndef KGE_MATH_QUATERNION_H_
#define KGE_MATH_QUATERNION_H_

#include <span>
#include <string>

namespace kge {

struct Quaternion {
  double a = 0.0;  // real
  double b = 0.0;  // i
  double c = 0.0;  // j
  double d = 0.0;  // k

  Quaternion() = default;
  Quaternion(double a_in, double b_in, double c_in, double d_in)
      : a(a_in), b(b_in), c(c_in), d(d_in) {}

  Quaternion Conjugate() const { return {a, -b, -c, -d}; }
  double NormSquared() const { return a * a + b * b + c * c + d * d; }
  double Norm() const;
  // q / |q|; returns the zero quaternion unchanged.
  Quaternion Normalized() const;
  // Multiplicative inverse; requires a nonzero quaternion.
  Quaternion Inverse() const;

  std::string ToString() const;
};

Quaternion operator+(const Quaternion& x, const Quaternion& y);
Quaternion operator-(const Quaternion& x, const Quaternion& y);
// Hamilton product (noncommutative).
Quaternion operator*(const Quaternion& x, const Quaternion& y);
Quaternion operator*(double s, const Quaternion& y);
bool operator==(const Quaternion& x, const Quaternion& y);

// Component-wise sum over D of the Hamilton product chain x_d * y_d * z_d,
// i.e. the quaternion trilinear product ⟨x, y, z⟩ with the given
// multiplication order. Inputs are given as 4 parallel component arrays
// (a, b, c, d), each of length D.
struct QuaternionVectorView {
  std::span<const float> a;
  std::span<const float> b;
  std::span<const float> c;
  std::span<const float> d;

  size_t size() const { return a.size(); }
  Quaternion At(size_t index) const {
    return Quaternion(a[index], b[index], c[index], d[index]);
  }
};

// Σ_d Re(h_d * conj(t_d) * r_d): the paper's score function Eq. (13), with
// the conjugate on the tail embedding (analogous to ComplEx).
double QuaternionScoreHConjTR(const QuaternionVectorView& h,
                              const QuaternionVectorView& t,
                              const QuaternionVectorView& r);

// Alternative multiplication orders for the ablation in
// bench/ablation_quaternion_order (the paper notes the product order is a
// modeling choice because H is noncommutative).
double QuaternionScoreHRConjT(const QuaternionVectorView& h,
                              const QuaternionVectorView& t,
                              const QuaternionVectorView& r);
double QuaternionScoreRHConjT(const QuaternionVectorView& h,
                              const QuaternionVectorView& t,
                              const QuaternionVectorView& r);

}  // namespace kge

#endif  // KGE_MATH_QUATERNION_H_
