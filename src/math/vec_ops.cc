// Thin std::span wrappers over the ISA dispatch layer in math/simd.h.
// Shape checks live here; the kernels themselves are pointer+size.
#include "math/vec_ops.h"

#include <cmath>

#include "math/simd.h"
#include "util/check.h"

namespace kge {

double Dot(std::span<const float> a, std::span<const float> b) {
  KGE_DCHECK(a.size() == b.size());
  return simd::Dot(a.data(), b.data(), a.size());
}

void DotBatch(std::span<const float> v, std::span<const float> rows,
              std::span<float> out) {
  KGE_DCHECK(rows.size() == v.size() * out.size());
  simd::DotBatch(v.data(), rows.data(), out.size(), v.size(), out.data());
}

void DotBatchMulti(std::span<const float> queries, size_t num_queries,
                   std::span<const float> rows, std::span<float> out) {
  KGE_DCHECK(num_queries > 0);
  KGE_DCHECK(queries.size() % num_queries == 0);
  const size_t n = queries.size() / num_queries;
  KGE_DCHECK(out.size() % num_queries == 0);
  const size_t num_rows = out.size() / num_queries;
  KGE_DCHECK(rows.size() == num_rows * n);
  simd::DotBatchMulti(queries.data(), num_queries, rows.data(), num_rows, n,
                      out.data());
}

void DotBatchIndexed(std::span<const float> v, std::span<const float> rows,
                     std::span<const int32_t> ids, std::span<float> out) {
  KGE_DCHECK(out.size() == ids.size());
  KGE_DCHECK(v.empty() || rows.size() % v.size() == 0);
  simd::DotBatchIndexed(v.data(), rows.data(), ids.data(), ids.size(),
                        v.size(), out.data());
}

void DotBatchMultiF32(std::span<const float> queries, size_t num_queries,
                      std::span<const float> rows, std::span<float> out) {
  KGE_DCHECK(num_queries > 0);
  KGE_DCHECK(queries.size() % num_queries == 0);
  const size_t n = queries.size() / num_queries;
  KGE_DCHECK(out.size() % num_queries == 0);
  const size_t num_rows = out.size() / num_queries;
  KGE_DCHECK(rows.size() == num_rows * n);
  simd::DotBatchMultiF32(queries.data(), num_queries, rows.data(), num_rows,
                         n, out.data());
}

void DotBatchMultiI8(std::span<const float> queries, size_t num_queries,
                     std::span<const int8_t> rows8,
                     std::span<const float> scales, std::span<float> out) {
  KGE_DCHECK(num_queries > 0);
  KGE_DCHECK(queries.size() % num_queries == 0);
  const size_t n = queries.size() / num_queries;
  KGE_DCHECK(out.size() % num_queries == 0);
  const size_t num_rows = out.size() / num_queries;
  KGE_DCHECK(rows8.size() == num_rows * n);
  KGE_DCHECK(scales.size() == num_rows);
  simd::DotBatchMultiI8(queries.data(), num_queries, rows8.data(),
                        scales.data(), num_rows, n, out.data());
}

double TrilinearDot(std::span<const float> a, std::span<const float> b,
                    std::span<const float> c) {
  KGE_DCHECK(a.size() == b.size() && b.size() == c.size());
  return simd::TrilinearDot(a.data(), b.data(), c.data(), a.size());
}

void Hadamard(std::span<const float> a, std::span<const float> b,
              std::span<float> out) {
  KGE_DCHECK(a.size() == b.size() && a.size() == out.size());
  simd::Hadamard(a.data(), b.data(), out.data(), a.size());
}

void HadamardAxpy(float scale, std::span<const float> a,
                  std::span<const float> b, std::span<float> out) {
  KGE_DCHECK(a.size() == b.size() && a.size() == out.size());
  simd::HadamardAxpy(scale, a.data(), b.data(), out.data(), a.size());
}

void Axpy(float scale, std::span<const float> a, std::span<float> out) {
  KGE_DCHECK(a.size() == out.size());
  simd::Axpy(scale, a.data(), out.data(), a.size());
}

void Fill(std::span<float> out, float value) {
  simd::Fill(out.data(), value, out.size());
}

void Scale(std::span<float> out, float scale) {
  simd::Scale(out.data(), scale, out.size());
}

double SquaredNorm(std::span<const float> a) {
  return simd::SquaredNorm(a.data(), a.size());
}

double Norm(std::span<const float> a) { return std::sqrt(SquaredNorm(a)); }

double L1Norm(std::span<const float> a) {
  return simd::L1Norm(a.data(), a.size());
}

double LpDistance(std::span<const float> a, std::span<const float> b, int p) {
  KGE_DCHECK(a.size() == b.size());
  KGE_DCHECK(p == 1 || p == 2);
  if (p == 1) return simd::L1Distance(a.data(), b.data(), a.size());
  return simd::SquaredL2Distance(a.data(), b.data(), a.size());
}

void NormalizeL2(std::span<float> a) {
  const double norm = Norm(a);
  if (norm <= 0.0) return;
  const float inv = static_cast<float>(1.0 / norm);
  simd::Scale(a.data(), inv, a.size());
}

double MaxAbsDiff(std::span<const float> a, std::span<const float> b) {
  KGE_DCHECK(a.size() == b.size());
  return simd::MaxAbsDiff(a.data(), b.data(), a.size());
}

}  // namespace kge
