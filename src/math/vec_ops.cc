#include "math/vec_ops.h"

#include <cmath>

#include "util/check.h"

namespace kge {

double Dot(std::span<const float> a, std::span<const float> b) {
  KGE_DCHECK(a.size() == b.size());
  double sum = 0.0;
  for (size_t d = 0; d < a.size(); ++d) sum += double(a[d]) * double(b[d]);
  return sum;
}

double TrilinearDot(std::span<const float> a, std::span<const float> b,
                    std::span<const float> c) {
  KGE_DCHECK(a.size() == b.size() && b.size() == c.size());
  double sum = 0.0;
  for (size_t d = 0; d < a.size(); ++d) {
    sum += double(a[d]) * double(b[d]) * double(c[d]);
  }
  return sum;
}

void Hadamard(std::span<const float> a, std::span<const float> b,
              std::span<float> out) {
  KGE_DCHECK(a.size() == b.size() && a.size() == out.size());
  for (size_t d = 0; d < a.size(); ++d) out[d] = a[d] * b[d];
}

void HadamardAxpy(float scale, std::span<const float> a,
                  std::span<const float> b, std::span<float> out) {
  KGE_DCHECK(a.size() == b.size() && a.size() == out.size());
  for (size_t d = 0; d < a.size(); ++d) out[d] += scale * a[d] * b[d];
}

void Axpy(float scale, std::span<const float> a, std::span<float> out) {
  KGE_DCHECK(a.size() == out.size());
  for (size_t d = 0; d < a.size(); ++d) out[d] += scale * a[d];
}

void Fill(std::span<float> out, float value) {
  for (float& x : out) x = value;
}

void Scale(std::span<float> out, float scale) {
  for (float& x : out) x *= scale;
}

double SquaredNorm(std::span<const float> a) {
  double sum = 0.0;
  for (float x : a) sum += double(x) * double(x);
  return sum;
}

double Norm(std::span<const float> a) { return std::sqrt(SquaredNorm(a)); }

double L1Norm(std::span<const float> a) {
  double sum = 0.0;
  for (float x : a) sum += std::fabs(double(x));
  return sum;
}

double LpDistance(std::span<const float> a, std::span<const float> b, int p) {
  KGE_DCHECK(a.size() == b.size());
  KGE_DCHECK(p == 1 || p == 2);
  double sum = 0.0;
  if (p == 1) {
    for (size_t d = 0; d < a.size(); ++d)
      sum += std::fabs(double(a[d]) - double(b[d]));
  } else {
    for (size_t d = 0; d < a.size(); ++d) {
      const double diff = double(a[d]) - double(b[d]);
      sum += diff * diff;
    }
  }
  return sum;
}

void NormalizeL2(std::span<float> a) {
  const double norm = Norm(a);
  if (norm <= 0.0) return;
  const float inv = static_cast<float>(1.0 / norm);
  for (float& x : a) x *= inv;
}

double MaxAbsDiff(std::span<const float> a, std::span<const float> b) {
  KGE_DCHECK(a.size() == b.size());
  double max_diff = 0.0;
  for (size_t d = 0; d < a.size(); ++d) {
    const double diff = std::fabs(double(a[d]) - double(b[d]));
    if (diff > max_diff) max_diff = diff;
  }
  return max_diff;
}

}  // namespace kge
