// Dense float vector kernels used by the scoring and gradient code: the
// std::span layer over the ISA dispatch in math/simd.h (AVX2+FMA, NEON,
// or scalar — selected at compile time). Reductions accumulate in double
// (8 interleaved partial sums; see simd.h's numerics contract) to keep
// ranking scores stable at D = several hundred.
#ifndef KGE_MATH_VEC_OPS_H_
#define KGE_MATH_VEC_OPS_H_

#include <cstddef>
#include <cstdint>
#include <span>

#include "util/hotpath.h"

namespace kge {

// Σ a_d b_d
KGE_HOT_NOALLOC
double Dot(std::span<const float> a, std::span<const float> b);

// out[row] = float(Dot(v, rows[row])) where `rows` is a row-major
// out.size() × v.size() matrix — the fold-then-dot ranking step executed
// as one tiled matrix-vector product (see simd::DotBatch). Guaranteed to
// produce exactly float(Dot(v, row)) per row.
KGE_HOT_NOALLOC
void DotBatch(std::span<const float> v, std::span<const float> rows,
              std::span<float> out);

// out[q*R + r] = float(Dot(queries[q], rows[r])) where `queries` is a
// row-major num_queries × n matrix, `rows` an R × n matrix, and `out`
// num_queries × R — the cache-blocked GEMV→GEMM ranking step (see
// simd::DotBatchMulti). Every cell is exactly float(Dot(query, row)):
// identical to num_queries separate DotBatch calls, just faster.
KGE_HOT_NOALLOC
void DotBatchMulti(std::span<const float> queries, size_t num_queries,
                   std::span<const float> rows, std::span<float> out);

// out[i] = float(Dot(v, rows[ids[i]])) where `rows` is a row-major
// (rows.size()/v.size()) × v.size() matrix — DotBatch over an
// id-indirected row set, scoring gathered candidates straight out of the
// embedding table without compacting them first (see
// simd::DotBatchIndexed).
KGE_HOT_NOALLOC
void DotBatchIndexed(std::span<const float> v, std::span<const float> rows,
                     std::span<const int32_t> ids, std::span<float> out);

// DotBatchMulti's float32 scoring tier: identical shapes, but every cell
// accumulates in float through the 8-lane scheme of simd.h's
// precision-tier contract (bit-identical across ISAs, ~1e-7 relative to
// the double cells). Used by reduced-precision full-vocab ranking.
KGE_HOT_NOALLOC
void DotBatchMultiF32(std::span<const float> queries, size_t num_queries,
                      std::span<const float> rows, std::span<float> out);

// The int8 scoring tier: `rows8` is a row-major R × n per-row
// absmax-quantized table with dequantization factors `scales` (one per
// row, built by a ScoringReplica); out[q*R + r] = scales[r] ·
// F32Dot(queries[q], float(rows8[r])). Streams 1 byte per candidate
// element instead of 4.
KGE_HOT_NOALLOC
void DotBatchMultiI8(std::span<const float> queries, size_t num_queries,
                     std::span<const int8_t> rows8,
                     std::span<const float> scales, std::span<float> out);

// Σ a_d b_d c_d — the trilinear product ⟨a,b,c⟩ of Eq. (3).
KGE_HOT_NOALLOC
double TrilinearDot(std::span<const float> a, std::span<const float> b,
                    std::span<const float> c);

// out_d = a_d * b_d (Hadamard product)
KGE_HOT_NOALLOC
void Hadamard(std::span<const float> a, std::span<const float> b,
              std::span<float> out);

// out_d += scale * a_d * b_d
KGE_HOT_NOALLOC
void HadamardAxpy(float scale, std::span<const float> a,
                  std::span<const float> b, std::span<float> out);

// out_d += scale * a_d
KGE_HOT_NOALLOC
void Axpy(float scale, std::span<const float> a, std::span<float> out);

// out_d = value
KGE_HOT_NOALLOC
void Fill(std::span<float> out, float value);

// out_d *= scale
KGE_HOT_NOALLOC
void Scale(std::span<float> out, float scale);

// Σ a_d²
KGE_HOT_NOALLOC
double SquaredNorm(std::span<const float> a);

// sqrt(Σ a_d²)
KGE_HOT_NOALLOC
double Norm(std::span<const float> a);

// Σ |a_d|
KGE_HOT_NOALLOC
double L1Norm(std::span<const float> a);

// Σ |a_d - b_d|^p for p in {1, 2} (TransE distances).
KGE_HOT_NOALLOC
double LpDistance(std::span<const float> a, std::span<const float> b, int p);

// Scales `a` to unit L2 norm; leaves an all-zero vector unchanged.
KGE_HOT_NOALLOC
void NormalizeL2(std::span<float> a);

// max_d |a_d - b_d|
KGE_HOT_NOALLOC
double MaxAbsDiff(std::span<const float> a, std::span<const float> b);

}  // namespace kge

#endif  // KGE_MATH_VEC_OPS_H_
