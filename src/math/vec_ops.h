// Dense float vector kernels used by the scoring and gradient code: the
// std::span layer over the ISA dispatch in math/simd.h (AVX2+FMA, NEON,
// or scalar — selected at compile time). Reductions accumulate in double
// (8 interleaved partial sums; see simd.h's numerics contract) to keep
// ranking scores stable at D = several hundred.
#ifndef KGE_MATH_VEC_OPS_H_
#define KGE_MATH_VEC_OPS_H_

#include <cstddef>
#include <span>

namespace kge {

// Σ a_d b_d
double Dot(std::span<const float> a, std::span<const float> b);

// out[row] = float(Dot(v, rows[row])) where `rows` is a row-major
// out.size() × v.size() matrix — the fold-then-dot ranking step executed
// as one tiled matrix-vector product (see simd::DotBatch). Guaranteed to
// produce exactly float(Dot(v, row)) per row.
void DotBatch(std::span<const float> v, std::span<const float> rows,
              std::span<float> out);

// Σ a_d b_d c_d — the trilinear product ⟨a,b,c⟩ of Eq. (3).
double TrilinearDot(std::span<const float> a, std::span<const float> b,
                    std::span<const float> c);

// out_d = a_d * b_d (Hadamard product)
void Hadamard(std::span<const float> a, std::span<const float> b,
              std::span<float> out);

// out_d += scale * a_d * b_d
void HadamardAxpy(float scale, std::span<const float> a,
                  std::span<const float> b, std::span<float> out);

// out_d += scale * a_d
void Axpy(float scale, std::span<const float> a, std::span<float> out);

// out_d = value
void Fill(std::span<float> out, float value);

// out_d *= scale
void Scale(std::span<float> out, float scale);

// Σ a_d²
double SquaredNorm(std::span<const float> a);

// sqrt(Σ a_d²)
double Norm(std::span<const float> a);

// Σ |a_d|
double L1Norm(std::span<const float> a);

// Σ |a_d - b_d|^p for p in {1, 2} (TransE distances).
double LpDistance(std::span<const float> a, std::span<const float> b, int p);

// Scales `a` to unit L2 norm; leaves an all-zero vector unchanged.
void NormalizeL2(std::span<float> a);

// max_d |a_d - b_d|
double MaxAbsDiff(std::span<const float> a, std::span<const float> b);

}  // namespace kge

#endif  // KGE_MATH_VEC_OPS_H_
