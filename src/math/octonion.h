// Octonion algebra via the Cayley–Dickson construction: an octonion is a
// pair of quaternions (a, b) with
//
//   (a, b) · (c, d) = (a c − d̄ b,  d a + b c̄)
//   conj((a, b))    = (ā, −b)
//
// Octonions are the next step after quaternions in the paper's own
// future-work direction ("the effective extension to additional
// embedding vectors", §7): they give an 8-embedding interaction model.
// The algebra is noncommutative AND non-associative (though alternative),
// so the score function additionally depends on how the triple product is
// associated — exposed as an explicit choice.
#ifndef KGE_MATH_OCTONION_H_
#define KGE_MATH_OCTONION_H_

#include <array>
#include <string>

#include "math/quaternion.h"

namespace kge {

struct Octonion {
  Quaternion a;  // components e0..e3
  Quaternion b;  // components e4..e7

  Octonion() = default;
  Octonion(const Quaternion& a_in, const Quaternion& b_in)
      : a(a_in), b(b_in) {}

  // From the 8 real components e0..e7.
  static Octonion FromComponents(const std::array<double, 8>& c);
  std::array<double, 8> Components() const;

  double real() const { return a.a; }
  Octonion Conjugate() const;
  double NormSquared() const;
  double Norm() const;

  std::string ToString() const;
};

Octonion operator+(const Octonion& x, const Octonion& y);
Octonion operator-(const Octonion& x, const Octonion& y);
// Cayley–Dickson product (noncommutative, non-associative).
Octonion operator*(const Octonion& x, const Octonion& y);
bool operator==(const Octonion& x, const Octonion& y);

}  // namespace kge

#endif  // KGE_MATH_OCTONION_H_
