// Scalar activations and the vector restriction functions applied to the
// weight vector ω in §3.3 of the paper (tanh, sigmoid, softmax), together
// with their exact derivatives / Jacobian-vector products, and the
// numerically-stable softplus used by the logistic loss (Eq. 16).
#ifndef KGE_MATH_ACTIVATIONS_H_
#define KGE_MATH_ACTIVATIONS_H_

#include <span>

namespace kge {

// 1 / (1 + exp(-x)), stable for large |x|.
double Sigmoid(double x);

// log(1 + exp(x)), stable for large |x|. Softplus(x) = -log(sigmoid(-x)).
double Softplus(double x);

// d tanh(x)/dx given y = tanh(x).
double TanhDerivFromOutput(double y);

// d sigmoid(x)/dx given y = sigmoid(x).
double SigmoidDerivFromOutput(double y);

// out_i = softmax(in)_i, stable via max subtraction.
void Softmax(std::span<const double> in, std::span<double> out);

// Jacobian-vector product of softmax: given y = softmax(x) and an upstream
// gradient g = dL/dy, writes dL/dx into `out`:
//   dL/dx_i = y_i * (g_i - Σ_j g_j y_j)
void SoftmaxBackward(std::span<const double> y, std::span<const double> g,
                     std::span<double> out);

}  // namespace kge

#endif  // KGE_MATH_ACTIVATIONS_H_
