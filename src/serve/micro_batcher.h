// Deadline-aware micro-batcher — the serving layer's throughput and
// robustness core.
//
// Concurrent in-flight queries are coalesced by (relation, side) and
// fed through the batched full-vocabulary kernels
// (ScoreAllTailsBatch/ScoreAllHeadsBatch -> simd::DotBatchMulti), which
// stream each entity row once per batch instead of once per query.
// Batch composition is deadline-driven: each dispatch picks the group
// of the earliest-deadline request, so a query never waits behind an
// unrelated full batch.
//
// Robustness contract:
//   * Admission control: the queue is a fixed pool of max_queue slots.
//     A Submit with no free slot completes immediately with kShed —
//     overload degrades into explicit rejections, never into unbounded
//     queueing.
//   * Deadlines: every request carries one (or inherits the default).
//     Requests that expire before a batch picks them up complete with
//     kDeadlineExceeded instead of occupying kernel time.
//   * Graceful degradation: sustained queue pressure (an EWMA of slot
//     occupancy) downshifts scoring to the float32 and then int8
//     replica tiers when the model supports them and options allow,
//     trading a little score fidelity for 2-4x candidate bandwidth.
//     Replies report the tier that actually scored them.
//   * Zero steady-state allocation: slots, queues, score matrices, and
//     the top-k heap are preallocated or high-water grown; the
//     assemble/score/reduce roots are KGE_HOT_NOALLOC and gated by
//     scripts/hotpath_check.py.
//
// Completion is a callback (plain function pointer + context, so the
// submit path stays allocation-free). It fires exactly once per Submit,
// on a worker thread — or inline on the submitting thread for requests
// rejected at admission. The results span is valid only during the
// callback; copy what you need.
#ifndef KGE_SERVE_MICRO_BATCHER_H_
#define KGE_SERVE_MICRO_BATCHER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "serve/serve_protocol.h"
#include "serve/snapshot.h"
#include "util/hotpath.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace kge {

struct BatcherOptions {
  // Admission-queue slots; Submit sheds beyond this.
  int max_queue = 256;
  // Max queries coalesced into one kernel dispatch.
  int max_batch = 32;
  int num_workers = 1;
  // Server-side cap on per-request k (kge_serve --topk); requests
  // asking for more are clamped, never rejected.
  uint32_t max_topk = kServeMaxTopK;
  // Applied when a request carries deadline_ms == 0.
  uint32_t default_deadline_ms = 50;
  // Lowest tier pressure may downshift to: kDouble disables
  // degradation, kFloat32 allows one step, kInt8 the full ladder.
  ScorePrecision degrade_floor = ScorePrecision::kDouble;
  // Occupancy EWMA thresholds (percent of max_queue in use) that arm
  // the float32 / int8 tiers.
  int degrade_float32_pct = 50;
  int degrade_int8_pct = 85;
  // Entity-table shards for the top-k reduction (kge_serve --shards).
  // With > 1 (or prune set) each query runs the range-scoped
  // TopKTailsInRange/TopKHeadsInRange scans — per-shard heaps fanned
  // across a shared shard pool, merged deterministically — instead of
  // materializing a B × num_entities score matrix. Results are
  // identical at every setting ((score, id) is a total order); only the
  // peak footprint and latency change.
  int num_shards = 1;
  // Skip candidate tiles whose Cauchy–Schwarz bound cannot beat the
  // current heap minimum (kge_serve --prune). Exact, never approximate.
  // Snapshots must be loaded with their tile bounds prepared
  // (CheckpointWatcher::Options::prepare_bounds /
  // KgeModel::PrepareForPrunedScoring) before workers score them.
  bool prune = false;
};

struct ServeReply {
  ServeStatusCode status = ServeStatusCode::kError;
  ScorePrecision tier = ScorePrecision::kDouble;
  // Snapshot that produced the scores; 0 for non-kOk replies.
  uint64_t snapshot_version = 0;
  // Valid only for the duration of the callback.
  std::span<const ScoredEntity> results;
};

using ServeDoneFn = void (*)(void* ctx, const ServeReply& reply);

struct BatcherStatsView {
  uint64_t submitted = 0;
  uint64_t admitted = 0;
  uint64_t shed = 0;
  uint64_t expired = 0;
  uint64_t invalid = 0;
  uint64_t completed = 0;
  uint64_t errors = 0;
  uint64_t shutdown_replies = 0;
  uint64_t batches = 0;
  uint64_t batched_queries = 0;
  uint64_t batches_float32 = 0;
  uint64_t batches_int8 = 0;
  // Range-scan tile counters (sharded/pruned reduction only; zero on
  // the matrix path). tiles_skipped / tiles_total is the serving-side
  // pruning effectiveness BENCH_serving reports.
  uint64_t tiles_total = 0;
  uint64_t tiles_skipped = 0;
};

class MicroBatcher {
 public:
  // The registry must outlive the batcher. Queries score against
  // whatever snapshot is current when their batch dispatches.
  MicroBatcher(const SnapshotRegistry* registry, BatcherOptions options);
  ~MicroBatcher();
  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  // Spawns the worker threads. Requests submitted before Start() queue
  // up (until max_queue) and dispatch once workers run — tests use this
  // to compose batches deterministically.
  void Start();

  // Drains: queued requests complete with kShuttingDown, workers join.
  // Safe to call twice; the destructor calls it. After Stop, Submit
  // completes everything with kShuttingDown inline.
  void Stop();

  // Never blocks. Admission failures (queue full, shutting down)
  // complete inline on this thread; admitted requests complete later on
  // a worker thread. `done` must be non-null and may be invoked
  // concurrently with other callbacks.
  void Submit(const ServeRequest& request, ServeDoneFn done, void* done_ctx);

  BatcherStatsView stats() const;
  // Current occupancy-EWMA percentage driving tier selection.
  int ewma_queue_pct() const;

 private:
  struct Slot {
    ServeRequest request;
    int64_t deadline_ns = 0;
    ServeDoneFn done = nullptr;
    void* done_ctx = nullptr;
  };

  // One dispatch's worth of work, extracted under the lock.
  struct Assembled {
    std::vector<int> batch;    // slot ids, FIFO within the group
    int batch_count = 0;
    std::vector<int> expired;  // slot ids past deadline (any group)
    int expired_count = 0;
    RelationId relation = 0;
    QuerySide side = QuerySide::kTail;
  };

  // Per-worker preallocated storage: the thread plus every buffer the
  // score/reduce path writes, so workers never contend on scratch.
  struct WorkerState {
    std::thread thread;
    Assembled assembled;
    std::vector<EntityId> contexts;
    std::vector<uint8_t> valid;
    std::vector<float> scores;
    std::vector<ScoredEntity> results;
    TopKHeap<float, EntityId> heap;
    // Sharded-reduction scratch (one slot per shard, Reserve'd at
    // Start): the shard fan-out writes disjoint slots, the merge reads
    // them back in shard order.
    std::vector<TopKHeap<float, EntityId>> shard_heaps;
    std::vector<RankScanStats> shard_stats;
    // Primes the shared prune floor for the sharded+pruned reduction
    // (the k best of an exhaustive prefix scan, see ReduceQuerySharded).
    TopKHeap<float, EntityId> prime_heap;
  };

  void WorkerLoop(WorkerState* ws);

  // Sweeps expired requests into ws->expired, then extracts up to
  // max_batch pending requests sharing the earliest-deadline request's
  // (relation, side). FIFO order within the group is preserved, so
  // batch composition is deterministic given arrival order.
  KGE_HOT_NOALLOC
  void AssembleLocked(int64_t now_ns, Assembled* out) KGE_REQUIRES(mutex_);

  // Moves every pending request into out->expired (shutdown drain).
  void DrainAllLocked(Assembled* out) KGE_REQUIRES(mutex_);

  // Updates the occupancy EWMA and picks the tier it arms.
  ScorePrecision DecideTierLocked() KGE_REQUIRES(mutex_);

  // Folds the batch contexts, range-checks each query against the
  // snapshot (ws->valid), and runs one batched kernel dispatch at
  // `tier` (falling back to kDouble when the model lacks the replica).
  // Returns the tier actually used.
  KGE_HOT_NOALLOC
  ScorePrecision ScoreAssembled(const ModelSnapshot& snapshot,
                                ScorePrecision tier, WorkerState* ws);

  // Top-k reduction of one query's score row into ws->results.
  KGE_HOT_NOALLOC
  std::span<const ScoredEntity> ReduceQuery(std::span<const float> row,
                                            uint32_t k, WorkerState* ws);

  // Sharded / pruned top-k reduction of one query (DESIGN.md §5h): runs
  // the range-scoped scans per shard — fanned across shard_pool_ when
  // num_shards > 1 — then merges the per-shard heaps in shard order.
  // Returns exactly what ReduceQuery over the full score row would (the
  // (score, id) total order makes the top-k set partition-invariant);
  // only the footprint and the skipped-tile work differ. Accumulates
  // tile counters into ws->shard_stats.
  KGE_HOT_NOALLOC
  std::span<const ScoredEntity> ReduceQuerySharded(
      const KgeModel& model, EntityId entity, RelationId relation,
      QuerySide side, ScorePrecision tier, uint32_t k, WorkerState* ws);

  void RespondEmpty(const Slot& slot, ServeStatusCode status);
  void ReleaseSlots(const int* ids, int count);

  const SnapshotRegistry* registry_;
  const BatcherOptions options_;

  mutable Mutex mutex_;
  CondVar cv_;
  bool stop_ KGE_GUARDED_BY(mutex_) = true;  // flips false in ctor body
  // Slot pool. The `slots_` array itself is handoff-owned: a slot id in
  // free_/pending_ is owned by whoever pops it under the lock, and its
  // fields are then read/written lock-free by that single owner — which
  // is why slots_ carries no GUARDED_BY.
  std::vector<Slot> slots_;
  std::vector<int> free_ KGE_GUARDED_BY(mutex_);
  int free_count_ KGE_GUARDED_BY(mutex_) = 0;
  std::vector<int> pending_ KGE_GUARDED_BY(mutex_);
  int pending_count_ KGE_GUARDED_BY(mutex_) = 0;
  int ewma_pct_ KGE_GUARDED_BY(mutex_) = 0;

  std::vector<std::unique_ptr<WorkerState>> workers_;
  // Shared fork-join pool for the per-query shard fan-out (created in
  // Start() when the sharded reduction is enabled with num_shards > 1).
  // StageFor is safe from multiple workers concurrently: tasks live in
  // a mutex-protected POD ring and waiters help drain it.
  std::unique_ptr<ThreadPool> shard_pool_;

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> expired_{0};
  std::atomic<uint64_t> invalid_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> shutdown_replies_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> batched_queries_{0};
  std::atomic<uint64_t> batches_float32_{0};
  std::atomic<uint64_t> batches_int8_{0};
  std::atomic<uint64_t> tiles_total_{0};
  std::atomic<uint64_t> tiles_skipped_{0};
};

}  // namespace kge

#endif  // KGE_SERVE_MICRO_BATCHER_H_
