#include "serve/serve_protocol.h"

#include <cstring>

namespace kge {
namespace {

// Little-endian host (static_asserted in io.cc), so raw memcpy of the
// integer representations is the wire encoding.
template <typename T>
void PutScalar(std::span<uint8_t> out, size_t offset, T value) {
  std::memcpy(out.data() + offset, &value, sizeof(T));
}

template <typename T>
T GetScalar(std::span<const uint8_t> in, size_t offset) {
  T value;
  std::memcpy(&value, in.data() + offset, sizeof(T));
  return value;
}

}  // namespace

const char* ServeStatusCodeName(ServeStatusCode code) {
  switch (code) {
    case ServeStatusCode::kOk:
      return "ok";
    case ServeStatusCode::kShed:
      return "shed";
    case ServeStatusCode::kInvalid:
      return "invalid";
    case ServeStatusCode::kError:
      return "error";
    case ServeStatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case ServeStatusCode::kShuttingDown:
      return "shutting_down";
  }
  return "unknown";
}

size_t EncodeServeRequest(const ServeRequest& request,
                          std::span<uint8_t> out) {
  if (out.size() < kRequestFrameBytes) return 0;
  PutScalar<uint32_t>(out, 0, kServeRequestMagic);
  PutScalar<uint32_t>(out, 4, uint32_t(kRequestBodyBytes));
  PutScalar<uint8_t>(out, 8, kServeProtocolVersion);
  PutScalar<uint8_t>(out, 9, uint8_t(request.side));
  PutScalar<uint16_t>(out, 10, 0);
  PutScalar<int32_t>(out, 12, request.entity);
  PutScalar<int32_t>(out, 16, request.relation);
  PutScalar<uint32_t>(out, 20, request.k);
  PutScalar<uint32_t>(out, 24, request.deadline_ms);
  PutScalar<uint64_t>(out, 28, request.request_id);
  return kRequestFrameBytes;
}

Status DecodeServeRequestFrame(std::span<const uint8_t> frame,
                               ServeRequest* out) {
  if (frame.size() != kRequestFrameBytes) {
    return Status::InvalidArgument("request frame size mismatch");
  }
  if (GetScalar<uint32_t>(frame, 0) != kServeRequestMagic) {
    return Status::InvalidArgument("bad request magic");
  }
  if (GetScalar<uint32_t>(frame, 4) != uint32_t(kRequestBodyBytes)) {
    return Status::InvalidArgument("bad request body length");
  }
  if (GetScalar<uint8_t>(frame, 8) != kServeProtocolVersion) {
    return Status::InvalidArgument("unsupported protocol version");
  }
  const uint8_t side = GetScalar<uint8_t>(frame, 9);
  if (side > uint8_t(QuerySide::kHead)) {
    return Status::InvalidArgument("bad query side");
  }
  if (GetScalar<uint16_t>(frame, 10) != 0) {
    return Status::InvalidArgument("nonzero reserved bits");
  }
  const uint32_t k = GetScalar<uint32_t>(frame, 20);
  if (k > kServeMaxTopK) return Status::InvalidArgument("k out of range");
  const uint32_t deadline_ms = GetScalar<uint32_t>(frame, 24);
  if (deadline_ms > kServeMaxDeadlineMs) {
    return Status::InvalidArgument("deadline out of range");
  }
  out->side = QuerySide(side);
  out->entity = GetScalar<int32_t>(frame, 12);
  out->relation = GetScalar<int32_t>(frame, 16);
  out->k = k;
  out->deadline_ms = deadline_ms;
  out->request_id = GetScalar<uint64_t>(frame, 28);
  return Status::Ok();
}

size_t EncodeServeResponse(const ServeResponseHeader& header,
                           std::span<const ScoredEntity> results,
                           std::span<uint8_t> out) {
  if (results.size() != header.count) return 0;
  const size_t frame_bytes = MaxResponseFrameBytes(header.count);
  if (out.size() < frame_bytes) return 0;
  PutScalar<uint32_t>(out, 0, kServeResponseMagic);
  PutScalar<uint32_t>(
      out, 4,
      uint32_t(kResponseBodyBaseBytes + results.size() * kResponseEntryBytes));
  PutScalar<uint8_t>(out, 8, kServeProtocolVersion);
  PutScalar<uint8_t>(out, 9, uint8_t(header.status));
  PutScalar<uint8_t>(out, 10, uint8_t(header.tier));
  PutScalar<uint8_t>(out, 11, uint8_t(header.side));
  PutScalar<uint32_t>(out, 12, header.count);
  PutScalar<uint64_t>(out, 16, header.request_id);
  PutScalar<uint64_t>(out, 24, header.snapshot_version);
  size_t offset = kFrameHeaderBytes + kResponseBodyBaseBytes;
  for (const ScoredEntity& entry : results) {
    PutScalar<int32_t>(out, offset, entry.entity);
    PutScalar<float>(out, offset + 4, entry.score);
    offset += kResponseEntryBytes;
  }
  return frame_bytes;
}

Status DecodeServeResponseFrame(std::span<const uint8_t> frame,
                                ServeResponseHeader* header,
                                std::vector<ScoredEntity>* results) {
  if (frame.size() < kFrameHeaderBytes + kResponseBodyBaseBytes) {
    return Status::InvalidArgument("response frame too short");
  }
  if (GetScalar<uint32_t>(frame, 0) != kServeResponseMagic) {
    return Status::InvalidArgument("bad response magic");
  }
  const uint32_t body_len = GetScalar<uint32_t>(frame, 4);
  if (frame.size() != kFrameHeaderBytes + size_t(body_len)) {
    return Status::InvalidArgument("response body length mismatch");
  }
  if (GetScalar<uint8_t>(frame, 8) != kServeProtocolVersion) {
    return Status::InvalidArgument("unsupported protocol version");
  }
  const uint8_t status = GetScalar<uint8_t>(frame, 9);
  if (status > uint8_t(ServeStatusCode::kShuttingDown)) {
    return Status::InvalidArgument("bad response status");
  }
  const uint8_t tier = GetScalar<uint8_t>(frame, 10);
  if (tier > uint8_t(ScorePrecision::kInt8)) {
    return Status::InvalidArgument("bad response tier");
  }
  const uint8_t side = GetScalar<uint8_t>(frame, 11);
  if (side > uint8_t(QuerySide::kHead)) {
    return Status::InvalidArgument("bad response side");
  }
  const uint32_t count = GetScalar<uint32_t>(frame, 12);
  if (count > kServeMaxTopK ||
      size_t(body_len) !=
          kResponseBodyBaseBytes + size_t(count) * kResponseEntryBytes) {
    return Status::InvalidArgument("response count/length mismatch");
  }
  header->status = ServeStatusCode(status);
  header->tier = ScorePrecision(tier);
  header->side = QuerySide(side);
  header->count = count;
  header->request_id = GetScalar<uint64_t>(frame, 16);
  header->snapshot_version = GetScalar<uint64_t>(frame, 24);
  size_t offset = kFrameHeaderBytes + kResponseBodyBaseBytes;
  for (uint32_t i = 0; i < count; ++i) {
    ScoredEntity entry;
    entry.entity = GetScalar<int32_t>(frame, offset);
    entry.score = GetScalar<float>(frame, offset + 4);
    results->push_back(entry);
    offset += kResponseEntryBytes;
  }
  return Status::Ok();
}

void DecodeFrameHeader(std::span<const uint8_t> header, uint32_t* magic,
                       uint32_t* body_len) {
  *magic = GetScalar<uint32_t>(header, 0);
  *body_len = GetScalar<uint32_t>(header, 4);
}

}  // namespace kge
