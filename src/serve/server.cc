#include "serve/server.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/failpoint.h"
#include "util/logging.h"

namespace kge {
namespace {

// Completion rendezvous between the connection thread (waits) and the
// batcher worker (fills + signals). Reused across requests; results
// capacity is reserved once so the steady-state callback does not
// allocate.
struct PendingReply {
  Mutex mutex;
  CondVar cv;
  bool done KGE_GUARDED_BY(mutex) = false;
  ServeStatusCode status KGE_GUARDED_BY(mutex) = ServeStatusCode::kError;
  ScorePrecision tier KGE_GUARDED_BY(mutex) = ScorePrecision::kDouble;
  uint64_t snapshot_version KGE_GUARDED_BY(mutex) = 0;
  std::vector<ScoredEntity> results KGE_GUARDED_BY(mutex);

  void Reset() {
    MutexLock lock(mutex);
    done = false;
    results.clear();
  }
};

void OnBatcherReply(void* ctx, const ServeReply& reply) {
  auto* pending = static_cast<PendingReply*>(ctx);
  MutexLock lock(pending->mutex);
  pending->status = reply.status;
  pending->tier = reply.tier;
  pending->snapshot_version = reply.snapshot_version;
  pending->results.assign(reply.results.begin(), reply.results.end());
  pending->done = true;
  pending->cv.NotifyAll();
}

// Best-effort empty response (e.g. INVALID for a malformed frame).
bool SendEmptyResponse(int fd, std::span<uint8_t> buffer,
                       ServeStatusCode status, QuerySide side,
                       uint64_t request_id) {
  ServeResponseHeader header;
  header.status = status;
  header.side = side;
  header.request_id = request_id;
  const size_t encoded =
      EncodeServeResponse(header, std::span<const ScoredEntity>(), buffer);
  if (encoded == 0) return false;
  return WriteAll(fd, buffer.data(), encoded);
}

}  // namespace

bool ReadExact(int fd, void* buffer, size_t count) {
  uint8_t* cursor = static_cast<uint8_t*>(buffer);
  size_t remaining = count;
  while (remaining > 0) {
    const ssize_t got = ::recv(fd, cursor, remaining, 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (got == 0) return false;
    cursor += got;
    remaining -= size_t(got);
  }
  return true;
}

bool WriteAll(int fd, const void* buffer, size_t count) {
  const uint8_t* cursor = static_cast<const uint8_t*>(buffer);
  size_t remaining = count;
  while (remaining > 0) {
    const ssize_t sent = ::send(fd, cursor, remaining, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    cursor += sent;
    remaining -= size_t(sent);
  }
  return true;
}

KgeServer::KgeServer(MicroBatcher* batcher, ServerOptions options)
    : batcher_(batcher), options_(options) {}

KgeServer::~KgeServer() { Stop(); }

Status KgeServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::IoError("socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(uint16_t(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("bind() failed");
  }
  if (::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("listen() failed");
  }
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("getsockname() failed");
  }
  port_ = int(ntohs(bound.sin_port));
  stopping_.store(false, std::memory_order_relaxed);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void KgeServer::Stop() {
  if (stopping_.exchange(true, std::memory_order_relaxed)) {
    // A second Stop still waits for the first teardown's threads if the
    // first caller has not finished joining yet; the joins below are
    // guarded by joinable()/reap bookkeeping.
  }
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Drain the batcher so connection threads blocked on a completion
  // callback always get one (kShuttingDown), then unblock their reads.
  batcher_->Stop();
  {
    MutexLock lock(mutex_);
    for (auto& conn : connections_) {
      if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  ReapConnections(/*all=*/true);
}

void KgeServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down
    }
    if (stopping_.load(std::memory_order_relaxed)) {
      ::close(fd);
      return;
    }
    ReapConnections(/*all=*/false);
    size_t live = 0;
    {
      MutexLock lock(mutex_);
      live = connections_.size();
    }
    if (live >= size_t(options_.max_connections)) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    conn->thread = std::thread([this, raw] { ConnectionLoop(raw); });
    MutexLock lock(mutex_);
    connections_.push_back(std::move(conn));
  }
}

void KgeServer::ConnectionLoop(Connection* conn) {
  std::vector<uint8_t> in_buf(kRequestFrameBytes);
  std::vector<uint8_t> out_buf(MaxResponseFrameBytes(kServeMaxTopK));
  PendingReply pending;
  {
    MutexLock lock(pending.mutex);
    pending.results.reserve(kServeMaxTopK);
  }
  while (true) {
    if (!ReadExact(conn->fd, in_buf.data(), kFrameHeaderBytes)) break;
    uint32_t magic = 0;
    uint32_t body_len = 0;
    DecodeFrameHeader(std::span<const uint8_t>(in_buf.data(),
                                               kFrameHeaderBytes),
                      &magic, &body_len);
    if (magic != kServeRequestMagic || body_len != kRequestBodyBytes) {
      // Never trust a hostile length: answer INVALID from the fixed
      // buffer and drop the connection — the frame boundary is gone.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      SendEmptyResponse(conn->fd, out_buf, ServeStatusCode::kInvalid,
                        QuerySide::kTail, 0);
      break;
    }
    if (!ReadExact(conn->fd, in_buf.data() + kFrameHeaderBytes,
                   kRequestBodyBytes)) {
      break;
    }
    ServeRequest request;
    const Status decoded = DecodeServeRequestFrame(
        std::span<const uint8_t>(in_buf.data(), kRequestFrameBytes),
        &request);
    if (!decoded.ok()) {
      // Frame boundary intact (fixed body length): report and keep the
      // connection. Echo the request id from its fixed offset.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      uint64_t echo_id = 0;
      std::memcpy(&echo_id, in_buf.data() + kRequestFrameBytes - 8, 8);
      if (!SendEmptyResponse(conn->fd, out_buf, ServeStatusCode::kInvalid,
                             QuerySide::kTail, echo_id)) {
        break;
      }
      continue;
    }
    pending.Reset();
    batcher_->Submit(request, &OnBatcherReply, &pending);
    ServeResponseHeader header;
    {
      MutexLock lock(pending.mutex);
      while (!pending.done) pending.cv.Wait(pending.mutex);
      header.status = pending.status;
      header.tier = pending.tier;
      header.snapshot_version = pending.snapshot_version;
      header.count = uint32_t(pending.results.size());
      header.side = request.side;
      header.request_id = request.request_id;
      if (!KGE_FAILPOINT("serve.respond.write").ok()) break;
      const size_t encoded = EncodeServeResponse(
          header,
          std::span<const ScoredEntity>(pending.results.data(),
                                        pending.results.size()),
          out_buf);
      if (encoded == 0 || !WriteAll(conn->fd, out_buf.data(), encoded)) {
        break;
      }
    }
  }
  // Signal EOF to the peer immediately; the fd itself is closed by the
  // reaper (accept loop or Stop), which also owns the join.
  ::shutdown(conn->fd, SHUT_RDWR);
  conn->finished.store(true, std::memory_order_release);
}

void KgeServer::ReapConnections(bool all) {
  std::vector<std::unique_ptr<Connection>> to_join;
  {
    MutexLock lock(mutex_);
    auto it = connections_.begin();
    while (it != connections_.end()) {
      if (all || (*it)->finished.load(std::memory_order_acquire)) {
        to_join.push_back(std::move(*it));
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& conn : to_join) {
    if (conn->thread.joinable()) conn->thread.join();
    if (conn->fd >= 0) {
      ::close(conn->fd);
      conn->fd = -1;
    }
  }
}

KgeServer::StatsView KgeServer::stats() const {
  StatsView view;
  view.accepted = accepted_.load(std::memory_order_relaxed);
  view.rejected = rejected_.load(std::memory_order_relaxed);
  view.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  return view;
}

}  // namespace kge
