#include "serve/snapshot.h"

#include <dirent.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "models/checkpoint.h"
#include "util/failpoint.h"
#include "util/io.h"
#include "util/logging.h"
#include "util/string_utils.h"

namespace kge {

Result<std::shared_ptr<ModelSnapshot>> LoadServingSnapshot(
    const std::string& path, const ModelFactory& factory,
    const std::vector<ScorePrecision>& prepare_tiers, bool prepare_bounds) {
  Result<std::unique_ptr<MappedCheckpoint>> mapping =
      MappedCheckpoint::Open(path);
  if (!mapping.ok()) return mapping.status();
  Result<std::unique_ptr<KgeModel>> model = factory();
  if (!model.ok()) return model.status();
  KGE_RETURN_IF_ERROR((*mapping)->LoadInto(model->get()));
  for (ScorePrecision tier : prepare_tiers) {
    if ((*model)->SupportsScorePrecision(tier)) {
      if (prepare_bounds) {
        (*model)->PrepareForPrunedScoring(tier);
      } else {
        (*model)->PrepareForScoring(tier);
      }
    }
  }
  auto snapshot = std::make_shared<ModelSnapshot>();
  snapshot->mapping = std::move(*mapping);
  snapshot->model = std::move(*model);
  snapshot->source_path = path;
  return snapshot;
}

std::shared_ptr<const ModelSnapshot> SnapshotRegistry::Acquire() const {
  MutexLock lock(mutex_);
  return current_;
}

void SnapshotRegistry::Publish(std::shared_ptr<ModelSnapshot> snapshot) {
  MutexLock lock(mutex_);
  snapshot->version = ++publish_counter_;
  current_ = std::move(snapshot);
}

uint64_t SnapshotRegistry::current_version() const {
  MutexLock lock(mutex_);
  return current_ != nullptr ? current_->version : 0;
}

CheckpointWatcher::CheckpointWatcher(SnapshotRegistry* registry,
                                     ModelFactory factory, Options options)
    : registry_(registry),
      factory_(std::move(factory)),
      options_(std::move(options)) {}

CheckpointWatcher::~CheckpointWatcher() { Stop(); }

std::string CheckpointWatcher::ResolveLatestTarget() const {
  const std::string pointer = options_.dir + "/LATEST";
  if (!FileExists(pointer)) return "";
  Result<std::string> name = ReadFileToString(pointer);
  if (!name.ok()) return "";
  const std::string trimmed(TrimString(*name));
  if (trimmed.empty()) return "";
  return options_.dir + "/" + trimmed;
}

Status CheckpointWatcher::TryAdopt(const std::string& path) {
  // Cheap pre-pass: reject torn files via the streaming verifier before
  // building a model for them. LoadServingSnapshot re-validates the
  // mapped bytes, so a file that changes between the two checks still
  // cannot be served.
  KGE_RETURN_IF_ERROR(VerifyCheckpoint(path));
  Result<std::shared_ptr<ModelSnapshot>> snapshot =
      LoadServingSnapshot(path, factory_, options_.prepare_tiers,
                          options_.prepare_bounds);
  if (!snapshot.ok()) return snapshot.status();
  KGE_RETURN_IF_ERROR(KGE_FAILPOINT("serve.swap.publish"));
  registry_->Publish(std::move(*snapshot));
  active_path_ = path;
  swaps_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

bool CheckpointWatcher::QuarantineFile(const std::string& path) {
  const std::string quarantined = path + ".quarantine";
  if (std::rename(path.c_str(), quarantined.c_str()) == 0) {
    KGE_LOG(Warning) << "quarantined bad checkpoint " << path << " -> "
                     << quarantined;
    quarantines_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  KGE_LOG(Warning) << "failed to quarantine " << path;
  return false;
}

Status CheckpointWatcher::LoadInitial() {
  const std::string target = ResolveLatestTarget();
  if (!target.empty() && FileExists(target)) {
    const Status adopted = TryAdopt(target);
    if (adopted.ok()) return adopted;
    failed_loads_.fetch_add(1, std::memory_order_relaxed);
    KGE_LOG(Warning) << "LATEST target unusable (" << adopted.ToString()
                     << "); falling back to newest valid checkpoint";
    QuarantineFile(target);
  }
  Result<std::string> fallback = FindNewestValidCheckpoint(options_.dir);
  if (!fallback.ok()) return fallback.status();
  return TryAdopt(*fallback);
}

Status CheckpointWatcher::AdoptPath(const std::string& path) {
  const Status adopted = TryAdopt(path);
  if (!adopted.ok()) failed_loads_.fetch_add(1, std::memory_order_relaxed);
  return adopted;
}

void CheckpointWatcher::PollOnce() {
  polls_.fetch_add(1, std::memory_order_relaxed);
  const std::string target = ResolveLatestTarget();
  if (target.empty() || !FileExists(target)) return;
  if (target == active_path_ || target == last_failed_path_) return;
  const Status adopted = TryAdopt(target);
  if (adopted.ok()) {
    last_failed_path_.clear();
    KGE_LOG(Info) << "hot-swapped to " << target;
    return;
  }
  failed_loads_.fetch_add(1, std::memory_order_relaxed);
  KGE_LOG(Warning) << "rejecting checkpoint " << target << ": "
                   << adopted.ToString();
  // A successful quarantine takes the file out of rotation — a future
  // file of the same name is genuinely new and must be retried. Only
  // when the rename fails (e.g. permissions) must the next poll avoid
  // spinning on the same bad file.
  if (QuarantineFile(target)) {
    last_failed_path_.clear();
  } else {
    last_failed_path_ = target;
  }
}

void CheckpointWatcher::Start() {
  {
    MutexLock lock(mutex_);
    stop_ = false;
  }
  thread_ = std::thread([this] {
    while (true) {
      {
        MutexLock lock(mutex_);
        if (stop_) return;
        cv_.WaitFor(mutex_, std::chrono::milliseconds(options_.poll_ms));
        if (stop_) return;
      }
      PollOnce();
    }
  });
}

void CheckpointWatcher::Stop() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_.NotifyAll();
  if (thread_.joinable()) thread_.join();
}

CheckpointWatcher::StatsView CheckpointWatcher::stats() const {
  StatsView view;
  view.polls = polls_.load(std::memory_order_relaxed);
  view.swaps = swaps_.load(std::memory_order_relaxed);
  view.quarantines = quarantines_.load(std::memory_order_relaxed);
  view.failed_loads = failed_loads_.load(std::memory_order_relaxed);
  return view;
}

Result<std::string> FindNewestValidCheckpoint(const std::string& dir) {
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) return Status::NotFound("cannot open " + dir);
  std::vector<int> epochs;
  while (struct dirent* entry = ::readdir(handle)) {
    const std::string name = entry->d_name;
    if (name.rfind("ckpt_", 0) != 0) continue;
    const size_t suffix = name.find(".kge2");
    if (suffix == std::string::npos || suffix + 5 != name.size()) continue;
    const std::string digits = name.substr(5, suffix - 5);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    epochs.push_back(std::atoi(digits.c_str()));
  }
  ::closedir(handle);
  std::sort(epochs.begin(), epochs.end(), std::greater<int>());
  for (int epoch : epochs) {
    const std::string path =
        dir + "/ckpt_" + std::to_string(epoch) + ".kge2";
    if (VerifyCheckpoint(path).ok()) return path;
  }
  return Status::NotFound("no CRC-valid checkpoint in " + dir);
}

}  // namespace kge
