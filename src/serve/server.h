// Socket front-end for the serving layer: a loopback TCP listener
// speaking the length-prefixed protocol from serve_protocol.h, one
// thread per connection, one outstanding request per connection.
// Requests are handed to the MicroBatcher; the connection thread blocks
// on the completion callback and writes the response frame.
//
// Robustness:
//   * Hostile frames never crash or balloon memory: the server reads at
//     most kRequestFrameBytes into a fixed buffer, validates the header
//     before reading the body, and closes the connection whenever the
//     frame boundary becomes untrustworthy (after a best-effort INVALID
//     response). Lengths from the wire are never used to size a buffer.
//   * Stop() never wedges: the listener is shut down, the batcher is
//     drained (queued requests complete with kShuttingDown), every
//     connection socket is shut down, and all threads are joined.
//   * The response-write path carries the "serve.respond.write"
//     failpoint so the crash/corruption matrix can prove a mid-response
//     death leaves no torn server state behind.
#ifndef KGE_SERVE_SERVER_H_
#define KGE_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "serve/micro_batcher.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace kge {

// Reads exactly `count` bytes; false on EOF or error. Retries EINTR.
bool ReadExact(int fd, void* buffer, size_t count);
// Writes all `count` bytes (MSG_NOSIGNAL); false on error.
bool WriteAll(int fd, const void* buffer, size_t count);

struct ServerOptions {
  // 0 = pick an ephemeral port; see port() after Start(). The listener
  // binds loopback only.
  int port = 0;
  // Connections beyond this are accepted and immediately closed.
  int max_connections = 64;
};

class KgeServer {
 public:
  // The batcher must outlive the server. Stop() drains it (MicroBatcher
  // ::Stop is idempotent) so blocked connections always complete.
  KgeServer(MicroBatcher* batcher, ServerOptions options);
  ~KgeServer();
  KgeServer(const KgeServer&) = delete;
  KgeServer& operator=(const KgeServer&) = delete;

  Status Start();
  void Stop();

  // Bound port; valid after a successful Start().
  int port() const { return port_; }

  struct StatsView {
    uint64_t accepted = 0;
    uint64_t rejected = 0;
    uint64_t protocol_errors = 0;
  };
  StatsView stats() const;

 private:
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> finished{false};
  };

  void AcceptLoop();
  void ConnectionLoop(Connection* conn);
  // Joins and closes connections whose thread has finished (all of
  // them when `all` is set — Stop()'s path, after shutting the sockets
  // down).
  void ReapConnections(bool all);

  MicroBatcher* batcher_;
  const ServerOptions options_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};

  Mutex mutex_;
  std::vector<std::unique_ptr<Connection>> connections_
      KGE_GUARDED_BY(mutex_);

  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> protocol_errors_{0};
};

}  // namespace kge

#endif  // KGE_SERVE_SERVER_H_
