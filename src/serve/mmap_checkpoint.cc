#include "serve/mmap_checkpoint.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>

#include "models/checkpoint.h"
#include "util/crc32c.h"
#include "util/failpoint.h"
#include "util/string_utils.h"

namespace kge {
namespace {

// Bounds-checked forward reader over the mapping. Every Read* returns
// false instead of walking past the end, so a truncated or hostile
// header can never cause an out-of-bounds access.
class ByteCursor {
 public:
  ByteCursor(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  size_t position() const { return pos_; }
  size_t remaining() const { return size_ - pos_; }

  bool ReadU32(uint32_t* out) { return ReadScalar(out); }
  bool ReadU64(uint64_t* out) { return ReadScalar(out); }

  // Length-prefixed string (u64 length + bytes, the BinaryWriter
  // convention), validated against the bytes actually remaining.
  // Returns a view into the mapping.
  bool ReadStringView(std::string_view* out) {
    uint64_t length = 0;
    if (!ReadScalar(&length)) return false;
    if (length > remaining()) return false;
    *out = std::string_view(reinterpret_cast<const char*>(data_ + pos_),
                            size_t(length));
    pos_ += size_t(length);
    return true;
  }

  // Advances past `count` bytes and reports where they start, or fails
  // if fewer remain.
  bool Span(size_t count, const uint8_t** out) {
    if (count > remaining()) return false;
    *out = data_ + pos_;
    pos_ += count;
    return true;
  }

 private:
  template <typename T>
  bool ReadScalar(T* out) {
    if (sizeof(T) > remaining()) return false;
    std::memcpy(out, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

Status Malformed(const std::string& path, const char* what) {
  return Status::InvalidArgument(path + ": " + what);
}

}  // namespace

Result<std::unique_ptr<MappedCheckpoint>> MappedCheckpoint::Open(
    const std::string& path) {
  KGE_RETURN_IF_ERROR(KGE_FAILPOINT("serve.load.map"));
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::NotFound("cannot open " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
    ::close(fd);
    return Status::IoError(path + ": empty or unstatable");
  }
  const size_t length = size_t(st.st_size);
  // MAP_PRIVATE + PROT_WRITE: the blocks may be written through
  // BorrowStorage views (copy-on-write), and the file on disk is never
  // modified by the mapping.
  void* base =
      ::mmap(nullptr, length, PROT_READ | PROT_WRITE, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (base == MAP_FAILED) return Status::IoError(path + ": mmap failed");
  return std::make_unique<MappedCheckpoint>(base, length, path);
}

MappedCheckpoint::MappedCheckpoint(void* base, size_t length,
                                   std::string path)
    : base_(base), length_(length), path_(std::move(path)) {}

MappedCheckpoint::~MappedCheckpoint() {
  if (base_ != nullptr) ::munmap(base_, length_);
}

Status MappedCheckpoint::LoadInto(KgeModel* model) {
  KGE_RETURN_IF_ERROR(KGE_FAILPOINT("serve.load.verify"));
  const uint8_t* bytes = static_cast<const uint8_t*>(base_);
  if (length_ < 4 * sizeof(uint32_t)) {
    return Malformed(path_, "truncated checkpoint");
  }
  // Whole-file CRC first: nothing in a torn file is trusted, not even
  // the header fields the shape checks below would read.
  const size_t crc_offset = length_ - sizeof(uint32_t);
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes + crc_offset, sizeof(uint32_t));
  if (Crc32c(bytes, crc_offset) != stored_crc) {
    return Status::IoError(path_ +
                           ": checkpoint CRC mismatch (torn or corrupt file)");
  }

  ByteCursor cursor(bytes, crc_offset);
  uint32_t magic = 0;
  uint32_t version = 0;
  uint32_t kind = 0;
  if (!cursor.ReadU32(&magic) || magic != kCheckpointMagicV2) {
    return Malformed(path_, "not a v2 kge checkpoint");
  }
  if (!cursor.ReadU32(&version) || version != kCheckpointVersion) {
    return Malformed(path_, "unsupported checkpoint version");
  }
  if (!cursor.ReadU32(&kind) ||
      kind > uint32_t(CheckpointKind::kTrainingState)) {
    return Malformed(path_, "unknown checkpoint kind");
  }

  std::string_view saved_name;
  if (!cursor.ReadStringView(&saved_name)) {
    return Malformed(path_, "truncated model name");
  }
  if (saved_name != model->name()) {
    return Status::InvalidArgument(
        StrFormat("%s holds model '%.*s' but got '%s'", path_.c_str(),
                  int(saved_name.size()), saved_name.data(),
                  model->name().c_str()));
  }
  uint32_t block_count = 0;
  if (!cursor.ReadU32(&block_count)) {
    return Malformed(path_, "truncated block count");
  }
  const std::vector<ParameterBlock*> blocks = model->Blocks();
  if (block_count != blocks.size()) {
    return Malformed(path_, "checkpoint block count mismatch");
  }
  borrowed_blocks_ = 0;
  copied_blocks_ = 0;
  for (ParameterBlock* block : blocks) {
    std::string_view name;
    uint64_t rows = 0;
    uint64_t dim = 0;
    if (!cursor.ReadStringView(&name) || !cursor.ReadU64(&rows) ||
        !cursor.ReadU64(&dim)) {
      return Malformed(path_, "truncated block header");
    }
    if (name != block->name() || int64_t(rows) != block->num_rows() ||
        int64_t(dim) != block->row_dim()) {
      return Malformed(path_, "checkpoint block shape mismatch");
    }
    // WriteFloatArray prefixes the payload with its own element count.
    uint64_t payload_count = 0;
    if (!cursor.ReadU64(&payload_count) ||
        payload_count != uint64_t(block->size())) {
      return Malformed(path_, "checkpoint block payload count mismatch");
    }
    // rows*dim fits: it equals a real block's size(), and the payload
    // length check below caps it at the file size anyway.
    const size_t payload_bytes = size_t(block->size()) * sizeof(float);
    const uint8_t* payload = nullptr;
    if (!cursor.Span(payload_bytes, &payload)) {
      return Malformed(path_, "truncated block payload");
    }
    if (reinterpret_cast<uintptr_t>(payload) % alignof(float) == 0) {
      // The mapping is MAP_PRIVATE with PROT_WRITE, so the non-const
      // view is safe: writes COW into anonymous pages.
      block->BorrowStorage(
          const_cast<float*>(reinterpret_cast<const float*>(payload)),
          block->size());
      ++borrowed_blocks_;
    } else {
      std::memcpy(block->Flat().data(), payload, payload_bytes);
      ++copied_blocks_;
    }
  }
  if (CheckpointKind(kind) == CheckpointKind::kModelOnly &&
      cursor.remaining() != 0) {
    return Malformed(path_, "trailing bytes after model section");
  }
  // Training-state checkpoints carry optimizer/progress state between
  // the model section and the CRC; the serving layer skips it.
  return Status::Ok();
}

}  // namespace kge
