// Wire protocol for kge_serve — length-prefixed binary frames over a
// byte stream (TCP). One request frame yields exactly one response
// frame. All integers are little-endian (the repo's BinaryWriter
// convention; a little-endian host is static_asserted in io.cc).
//
// Request frame (fixed 36 bytes):
//   u32 magic            kServeRequestMagic
//   u32 body_len         must equal kRequestBodyBytes (28)
//   u8  version          kServeProtocolVersion
//   u8  side             0 = predict tails for (entity, ?, relation)
//                        1 = predict heads for (?, entity, relation)
//   u16 reserved         must be 0
//   i32 entity           the known entity of the partial triple
//   i32 relation
//   u32 k                top-k to return, <= kServeMaxTopK
//   u32 deadline_ms      0 = server default, <= kServeMaxDeadlineMs
//   u64 request_id       opaque, echoed back
//
// Response frame (8 + 24 + 8*count bytes):
//   u32 magic            kServeResponseMagic
//   u32 body_len         24 + 8*count
//   u8  version
//   u8  status           ServeStatusCode
//   u8  tier             ScorePrecision the scores were computed at
//   u8  side             echoed
//   u32 count            results returned (0 unless status == kOk)
//   u64 request_id       echoed
//   u64 snapshot_version the model snapshot that produced the scores
//   count x { i32 entity, f32 score }   best first
//
// Hostile-input contract: decoding never allocates — frames are parsed
// in place from caller-owned buffers, every length is validated against
// the fixed bounds above before use, and a reader must reject any
// body_len it is not prepared to buffer (the server only ever reads
// kRequestBodyBytes). Mirrors the checkpoint reader's "clean Status
// instead of a giant allocation" rule.
#ifndef KGE_SERVE_SERVE_PROTOCOL_H_
#define KGE_SERVE_SERVE_PROTOCOL_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/scoring_replica.h"
#include "eval/topk.h"
#include "kg/triple.h"
#include "util/hotpath.h"
#include "util/status.h"

namespace kge {

inline constexpr uint32_t kServeRequestMagic = 0x51524B47;   // "GKRQ"
inline constexpr uint32_t kServeResponseMagic = 0x50524B47;  // "GKRP"
inline constexpr uint8_t kServeProtocolVersion = 1;

inline constexpr uint32_t kServeMaxTopK = 1024;
inline constexpr uint32_t kServeMaxDeadlineMs = 60 * 1000;

inline constexpr size_t kFrameHeaderBytes = 8;
inline constexpr size_t kRequestBodyBytes = 28;
inline constexpr size_t kRequestFrameBytes =
    kFrameHeaderBytes + kRequestBodyBytes;
inline constexpr size_t kResponseBodyBaseBytes = 24;
inline constexpr size_t kResponseEntryBytes = 8;

enum class QuerySide : uint8_t { kTail = 0, kHead = 1 };

enum class ServeStatusCode : uint8_t {
  kOk = 0,
  // Admission control rejected the request (queue full).
  kShed = 1,
  // Malformed frame or out-of-range entity/relation/k.
  kInvalid = 2,
  // Internal failure (e.g. no snapshot loaded yet).
  kError = 3,
  // The request expired in the queue before a batch picked it up.
  kDeadlineExceeded = 4,
  // The server is draining; retry against a new instance.
  kShuttingDown = 5,
};

// "ok", "shed", ... for logs and the kge_query CLI.
const char* ServeStatusCodeName(ServeStatusCode code);

struct ServeRequest {
  QuerySide side = QuerySide::kTail;
  EntityId entity = 0;
  RelationId relation = 0;
  uint32_t k = 10;
  uint32_t deadline_ms = 0;  // 0 = server default
  uint64_t request_id = 0;
};

struct ServeResponseHeader {
  ServeStatusCode status = ServeStatusCode::kError;
  ScorePrecision tier = ScorePrecision::kDouble;
  QuerySide side = QuerySide::kTail;
  uint32_t count = 0;
  uint64_t request_id = 0;
  uint64_t snapshot_version = 0;
};

// Upper bound on an encoded response for `k` results; size client and
// connection buffers with this.
inline constexpr size_t MaxResponseFrameBytes(uint32_t k) {
  return kFrameHeaderBytes + kResponseBodyBaseBytes +
         size_t(k) * kResponseEntryBytes;
}

// Encodes `request` into `out` (>= kRequestFrameBytes). Returns the
// encoded size, or 0 when `out` is too small.
size_t EncodeServeRequest(const ServeRequest& request,
                          std::span<uint8_t> out);

// Validates and decodes a full request frame (header + body). Rejects
// bad magic/length/version/reserved bits and out-of-bound k/deadline.
// Entity/relation range checks happen against the live snapshot at
// scoring time, not here.
Status DecodeServeRequestFrame(std::span<const uint8_t> frame,
                               ServeRequest* out);

// Encodes a response frame into `out`; `results.size()` must equal
// `header.count`. Returns the encoded size, or 0 when `out` is too
// small. No allocation: safe inside the serving hot path.
KGE_HOT_NOALLOC
size_t EncodeServeResponse(const ServeResponseHeader& header,
                           std::span<const ScoredEntity> results,
                           std::span<uint8_t> out);

// Decodes a full response frame (client side; cold path). Appends
// decoded results to `*results`.
Status DecodeServeResponseFrame(std::span<const uint8_t> frame,
                                ServeResponseHeader* header,
                                std::vector<ScoredEntity>* results);

// Splits a frame header into (magic, body_len). `header` must hold
// kFrameHeaderBytes.
void DecodeFrameHeader(std::span<const uint8_t> header, uint32_t* magic,
                       uint32_t* body_len);

}  // namespace kge

#endif  // KGE_SERVE_SERVE_PROTOCOL_H_
