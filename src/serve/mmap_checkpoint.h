// Zero-copy checkpoint loading for the serving layer. A `.kge2` file is
// mmap'ed (MAP_PRIVATE) and CRC-verified in place, then each parameter
// block payload that lands 4-byte-aligned in the mapping is handed to
// ParameterBlock::BorrowStorage — startup never copies the embedding
// tables, so a multi-GB model is query-ready in page-fault time rather
// than read-and-copy time. Misaligned payloads (possible because the
// header contains variable-length strings) fall back to one memcpy.
//
// Corruption safety mirrors models/checkpoint.cc exactly: magic,
// version, kind, per-block shape, and the trailing whole-file CRC32C
// are all validated with bounds-checked cursor reads before any byte is
// trusted; a torn or hostile file yields a clean Status, never an
// oversized allocation or out-of-bounds read.
#ifndef KGE_SERVE_MMAP_CHECKPOINT_H_
#define KGE_SERVE_MMAP_CHECKPOINT_H_

#include <cstddef>
#include <memory>
#include <string>

#include "models/kge_model.h"
#include "util/status.h"

namespace kge {

class MappedCheckpoint {
 public:
  // Maps `path` read-only-private into memory. Fails cleanly on
  // missing, empty, or unmappable files. Failpoint: "serve.load.map".
  static Result<std::unique_ptr<MappedCheckpoint>> Open(
      const std::string& path);

  // Takes ownership of an established mapping; prefer Open().
  MappedCheckpoint(void* base, size_t length, std::string path);
  ~MappedCheckpoint();
  MappedCheckpoint(const MappedCheckpoint&) = delete;
  MappedCheckpoint& operator=(const MappedCheckpoint&) = delete;

  // Verifies the whole mapping (header + CRC32C footer) and points
  // `model`'s parameter blocks at the mapped payloads (BorrowStorage)
  // where aligned, copying otherwise. On error the model may hold a
  // mix of old and new block contents and must be discarded — the
  // serving layer always loads into a freshly constructed model and
  // publishes only on Ok. The mapping must outlive the model.
  // Failpoint: "serve.load.verify".
  Status LoadInto(KgeModel* model);

  const std::string& path() const { return path_; }
  size_t length() const { return length_; }
  // How many blocks LoadInto backed by the mapping vs. copied.
  int borrowed_blocks() const { return borrowed_blocks_; }
  int copied_blocks() const { return copied_blocks_; }

 private:
  void* base_ = nullptr;
  size_t length_ = 0;
  std::string path_;
  int borrowed_blocks_ = 0;
  int copied_blocks_ = 0;
};

}  // namespace kge

#endif  // KGE_SERVE_MMAP_CHECKPOINT_H_
