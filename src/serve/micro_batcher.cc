#include "serve/micro_batcher.h"

#include <algorithm>
#include <chrono>

#include "util/check.h"
#include "util/scratch.h"

namespace kge {
namespace {

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

MicroBatcher::MicroBatcher(const SnapshotRegistry* registry,
                           BatcherOptions options)
    : registry_(registry), options_(options) {
  KGE_CHECK(registry_ != nullptr);
  KGE_CHECK(options_.max_queue > 0);
  KGE_CHECK(options_.max_batch > 0);
  KGE_CHECK(options_.num_workers > 0);
  KGE_CHECK(options_.num_shards > 0);
  slots_.resize(size_t(options_.max_queue));
  MutexLock lock(mutex_);
  free_.resize(size_t(options_.max_queue));
  pending_.resize(size_t(options_.max_queue));
  for (int i = 0; i < options_.max_queue; ++i) free_[size_t(i)] = i;
  free_count_ = options_.max_queue;
  pending_count_ = 0;
  stop_ = false;
}

MicroBatcher::~MicroBatcher() { Stop(); }

void MicroBatcher::Start() {
  const int num_shards = options_.num_shards;
  const int heap_capacity =
      int(std::min(options_.max_topk, kServeMaxTopK));
  if (num_shards > 1 && shard_pool_ == nullptr) {
    // Per-query shard fan-out pool, shared by all workers. Sized to the
    // shard count (capped at the machine) and pre-reserved so the
    // steady-state StageFor never grows the task ring.
    shard_pool_ = std::make_unique<ThreadPool>(
        std::min(size_t(num_shards), ResolveNumThreads(0)));
    shard_pool_->ReserveStageTasks(size_t(options_.num_workers) *
                                   size_t(num_shards));
  }
  for (int w = 0; w < options_.num_workers; ++w) {
    auto ws = std::make_unique<WorkerState>();
    ws->assembled.batch.resize(size_t(options_.max_batch));
    ws->assembled.expired.resize(size_t(options_.max_queue));
    ws->contexts.resize(size_t(options_.max_batch));
    ws->valid.resize(size_t(options_.max_batch));
    ws->results.resize(size_t(kServeMaxTopK));
    // Pre-grow every heap the sharded reduction can touch so the
    // per-query ResetCapacity calls never allocate.
    ws->heap.Reserve(heap_capacity);
    ws->shard_heaps.resize(size_t(num_shards));
    for (auto& heap : ws->shard_heaps) heap.Reserve(heap_capacity);
    ws->prime_heap.Reserve(heap_capacity);
    ws->shard_stats.resize(size_t(num_shards));
    WorkerState* raw = ws.get();
    ws->thread = std::thread([this, raw] { WorkerLoop(raw); });
    workers_.push_back(std::move(ws));
  }
}

void MicroBatcher::Stop() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (auto& ws : workers_) {
    if (ws->thread.joinable()) ws->thread.join();
  }
  workers_.clear();
  // Drain anything still queued (covers the never-Started case; after
  // a worker join the queue is normally already empty).
  Assembled leftovers;
  leftovers.expired.resize(size_t(options_.max_queue));
  while (true) {
    {
      MutexLock lock(mutex_);
      if (pending_count_ == 0) break;
      DrainAllLocked(&leftovers);
    }
    for (int i = 0; i < leftovers.expired_count; ++i) {
      // Counters are bumped before the callback fires: a waiter woken by
      // the reply must observe its own request in stats() immediately.
      shutdown_replies_.fetch_add(1, std::memory_order_relaxed);
      RespondEmpty(slots_[size_t(leftovers.expired[size_t(i)])],
                   ServeStatusCode::kShuttingDown);
    }
    ReleaseSlots(leftovers.expired.data(), leftovers.expired_count);
  }
}

void MicroBatcher::Submit(const ServeRequest& request, ServeDoneFn done,
                          void* done_ctx) {
  KGE_CHECK(done != nullptr);
  submitted_.fetch_add(1, std::memory_order_relaxed);
  bool shutting_down = false;
  int slot_id = -1;
  {
    MutexLock lock(mutex_);
    if (stop_) {
      shutting_down = true;
    } else if (free_count_ > 0) {
      slot_id = free_[size_t(--free_count_)];
      Slot& slot = slots_[size_t(slot_id)];
      slot.request = request;
      slot.request.k =
          std::min(std::min(request.k, options_.max_topk), kServeMaxTopK);
      uint32_t deadline_ms = request.deadline_ms != 0
                                 ? request.deadline_ms
                                 : options_.default_deadline_ms;
      if (deadline_ms == 0 || deadline_ms > kServeMaxDeadlineMs) {
        deadline_ms = kServeMaxDeadlineMs;
      }
      slot.deadline_ns = NowNanos() + int64_t(deadline_ms) * 1000000;
      slot.done = done;
      slot.done_ctx = done_ctx;
      pending_[size_t(pending_count_++)] = slot_id;
    }
  }
  if (slot_id >= 0) {
    admitted_.fetch_add(1, std::memory_order_relaxed);
    cv_.NotifyOne();
    return;
  }
  ServeReply reply;
  reply.status = shutting_down ? ServeStatusCode::kShuttingDown
                               : ServeStatusCode::kShed;
  if (shutting_down) {
    shutdown_replies_.fetch_add(1, std::memory_order_relaxed);
  } else {
    shed_.fetch_add(1, std::memory_order_relaxed);
  }
  done(done_ctx, reply);
}

void MicroBatcher::AssembleLocked(int64_t now_ns, Assembled* out) {
  out->batch_count = 0;
  out->expired_count = 0;
  // Pass 1: sweep expired requests out of the queue (any group) and
  // find the earliest-deadline survivor.
  int kept = 0;
  int pick = -1;
  int64_t best_deadline = 0;
  for (int i = 0; i < pending_count_; ++i) {
    const int id = pending_[size_t(i)];
    const Slot& slot = slots_[size_t(id)];
    if (slot.deadline_ns <= now_ns) {
      out->expired[size_t(out->expired_count++)] = id;
      continue;
    }
    pending_[size_t(kept++)] = id;
    if (pick < 0 || slot.deadline_ns < best_deadline) {
      pick = id;
      best_deadline = slot.deadline_ns;
    }
  }
  pending_count_ = kept;
  if (pick < 0) return;
  out->relation = slots_[size_t(pick)].request.relation;
  out->side = slots_[size_t(pick)].request.side;
  // Pass 2: extract up to max_batch requests of the picked group,
  // preserving FIFO order; everything else stays queued.
  kept = 0;
  for (int i = 0; i < pending_count_; ++i) {
    const int id = pending_[size_t(i)];
    const Slot& slot = slots_[size_t(id)];
    if (out->batch_count < options_.max_batch &&
        slot.request.relation == out->relation &&
        slot.request.side == out->side) {
      out->batch[size_t(out->batch_count++)] = id;
    } else {
      pending_[size_t(kept++)] = id;
    }
  }
  pending_count_ = kept;
}

void MicroBatcher::DrainAllLocked(Assembled* out) {
  out->batch_count = 0;
  out->expired_count = 0;
  for (int i = 0; i < pending_count_; ++i) {
    out->expired[size_t(out->expired_count++)] = pending_[size_t(i)];
  }
  pending_count_ = 0;
}

ScorePrecision MicroBatcher::DecideTierLocked() {
  const int in_use = options_.max_queue - free_count_;
  const int pct = (100 * in_use) / options_.max_queue;
  ewma_pct_ = (3 * ewma_pct_ + pct) / 4;
  ScorePrecision tier = ScorePrecision::kDouble;
  if (int(options_.degrade_floor) >= int(ScorePrecision::kFloat32) &&
      ewma_pct_ >= options_.degrade_float32_pct) {
    tier = ScorePrecision::kFloat32;
  }
  if (int(options_.degrade_floor) >= int(ScorePrecision::kInt8) &&
      ewma_pct_ >= options_.degrade_int8_pct) {
    tier = ScorePrecision::kInt8;
  }
  return tier;
}

ScorePrecision MicroBatcher::ScoreAssembled(const ModelSnapshot& snapshot,
                                            ScorePrecision tier,
                                            WorkerState* ws) {
  const KgeModel& model = *snapshot.model;
  if (!model.SupportsScorePrecision(tier)) tier = ScorePrecision::kDouble;
  const Assembled& assembled = ws->assembled;
  const int batch = assembled.batch_count;
  const int32_t num_entities = model.num_entities();
  const bool relation_ok =
      assembled.relation >= 0 && assembled.relation < model.num_relations();
  std::span<EntityId> contexts = ScratchSpan(ws->contexts, size_t(batch));
  std::span<uint8_t> valid = ScratchSpan(ws->valid, size_t(batch));
  for (int i = 0; i < batch; ++i) {
    const ServeRequest& request =
        slots_[size_t(assembled.batch[size_t(i)])].request;
    const bool ok = relation_ok && request.entity >= 0 &&
                    request.entity < num_entities;
    valid[size_t(i)] = ok ? 1 : 0;
    contexts[size_t(i)] = ok ? request.entity : 0;
  }
  if (!relation_ok) return tier;
  std::span<float> scores =
      ScratchSpan(ws->scores, size_t(batch) * size_t(num_entities));
  if (assembled.side == QuerySide::kTail) {
    model.ScoreAllTailsBatch(contexts, assembled.relation, scores, tier);
  } else {
    model.ScoreAllHeadsBatch(contexts, assembled.relation, scores, tier);
  }
  return tier;
}

std::span<const ScoredEntity> MicroBatcher::ReduceQuery(
    std::span<const float> row, uint32_t k, WorkerState* ws) {
  const uint32_t bounded =
      std::min(std::min(k, kServeMaxTopK), uint32_t(row.size()));
  ws->heap.ResetCapacity(int(bounded));
  ws->heap.PushScoresExcluding(row, std::span<const EntityId>());
  const auto sorted = ws->heap.TakeSorted();
  for (size_t i = 0; i < sorted.size(); ++i) {
    ws->results[i] = ScoredEntity{sorted[i].entity, sorted[i].score};
  }
  return std::span<const ScoredEntity>(ws->results.data(), sorted.size());
}

std::span<const ScoredEntity> MicroBatcher::ReduceQuerySharded(
    const KgeModel& model, EntityId entity, RelationId relation,
    QuerySide side, ScorePrecision tier, uint32_t k, WorkerState* ws) {
  const EntityId num_entities = model.num_entities();
  const uint32_t bounded =
      std::min(std::min(k, kServeMaxTopK), uint32_t(num_entities));
  const int shards = options_.num_shards;
  const std::span<const EntityId> no_excluded;
  if (shards == 1) {
    ws->heap.ResetCapacity(int(bounded));
    if (side == QuerySide::kTail) {
      model.TopKTailsInRange(entity, relation, 0, num_entities, no_excluded,
                             tier, options_.prune, &ws->heap,
                             &ws->shard_stats[0]);
    } else {
      model.TopKHeadsInRange(entity, relation, 0, num_entities, no_excluded,
                             tier, options_.prune, &ws->heap,
                             &ws->shard_stats[0]);
    }
  } else {
    // Per-shard heaps can only prune against their own shard's minimum,
    // which is useless when norms are skewed across the id range. Prime
    // a shared floor from an exhaustive prefix scan: the k-th best of
    // any >= k candidates lower-bounds the global k-th best, so tiles
    // strictly below the floor are provably dead in every shard and the
    // merge stays exact.
    float prune_floor = 0.0f;
    bool have_floor = false;
    const EntityId prime_end = std::min(
        num_entities,
        std::max(EntityId(bounded), KgeModel::kPrunePrimePrefix));
    if (options_.prune && num_entities > prime_end) {
      ws->prime_heap.ResetCapacity(int(bounded));
      if (side == QuerySide::kTail) {
        model.TopKTailsInRange(entity, relation, 0, prime_end,
                               no_excluded, tier, /*prune=*/false,
                               &ws->prime_heap, &ws->shard_stats[0]);
      } else {
        model.TopKHeadsInRange(entity, relation, 0, prime_end,
                               no_excluded, tier, /*prune=*/false,
                               &ws->prime_heap, &ws->shard_stats[0]);
      }
      if (ws->prime_heap.full()) {
        prune_floor = ws->prime_heap.WorstScore();
        have_floor = true;
      }
    }
    for (int s = 0; s < shards; ++s) {
      ws->shard_heaps[size_t(s)].ResetCapacity(int(bounded));
      if (have_floor) ws->shard_heaps[size_t(s)].SetPruneFloor(prune_floor);
    }
    const auto scan_shards = [&](size_t shard_begin, size_t shard_end) {
      for (size_t s = shard_begin; s < shard_end; ++s) {
        const EntityId begin = ShardBegin(num_entities, shards, int(s));
        const EntityId end = ShardBegin(num_entities, shards, int(s) + 1);
        if (side == QuerySide::kTail) {
          model.TopKTailsInRange(entity, relation, begin, end, no_excluded,
                                 tier, options_.prune, &ws->shard_heaps[s],
                                 &ws->shard_stats[s]);
        } else {
          model.TopKHeadsInRange(entity, relation, begin, end, no_excluded,
                                 tier, options_.prune, &ws->shard_heaps[s],
                                 &ws->shard_stats[s]);
        }
      }
    };
    if (shard_pool_ != nullptr) {
      shard_pool_->StageFor(0, size_t(shards), scan_shards);
    } else {
      scan_shards(0, size_t(shards));
    }
    // Merge in shard order. The (score, id) total order makes the
    // merged set exactly the top-k of the union, so the order here is
    // for determinism of the walk, not of the result.
    ws->heap.ResetCapacity(int(bounded));
    for (int s = 0; s < shards; ++s) {
      ws->heap.MergeFrom(ws->shard_heaps[size_t(s)]);
    }
  }
  const auto sorted = ws->heap.TakeSorted();
  for (size_t i = 0; i < sorted.size(); ++i) {
    ws->results[i] = ScoredEntity{sorted[i].entity, sorted[i].score};
  }
  return std::span<const ScoredEntity>(ws->results.data(), sorted.size());
}

void MicroBatcher::RespondEmpty(const Slot& slot, ServeStatusCode status) {
  ServeReply reply;
  reply.status = status;
  slot.done(slot.done_ctx, reply);
}

void MicroBatcher::ReleaseSlots(const int* ids, int count) {
  if (count == 0) return;
  MutexLock lock(mutex_);
  for (int i = 0; i < count; ++i) {
    free_[size_t(free_count_++)] = ids[i];
  }
}

void MicroBatcher::WorkerLoop(WorkerState* ws) {
  while (true) {
    ScorePrecision tier = ScorePrecision::kDouble;
    bool draining = false;
    {
      MutexLock lock(mutex_);
      while (!stop_ && pending_count_ == 0) cv_.Wait(mutex_);
      if (stop_) {
        if (pending_count_ == 0) return;
        DrainAllLocked(&ws->assembled);
        draining = true;
      } else {
        AssembleLocked(NowNanos(), &ws->assembled);
        tier = DecideTierLocked();
      }
    }
    const Assembled& assembled = ws->assembled;
    const ServeStatusCode expiry_status = draining
                                              ? ServeStatusCode::kShuttingDown
                                              : ServeStatusCode::kDeadlineExceeded;
    for (int i = 0; i < assembled.expired_count; ++i) {
      // Stats before callback, so the reply's waiter sees them (see Stop).
      if (draining) {
        shutdown_replies_.fetch_add(1, std::memory_order_relaxed);
      } else {
        expired_.fetch_add(1, std::memory_order_relaxed);
      }
      RespondEmpty(slots_[size_t(assembled.expired[size_t(i)])],
                   expiry_status);
    }
    ReleaseSlots(assembled.expired.data(), assembled.expired_count);
    if (assembled.batch_count == 0) continue;

    const std::shared_ptr<const ModelSnapshot> snapshot =
        registry_->Acquire();
    if (snapshot == nullptr || snapshot->model == nullptr) {
      for (int i = 0; i < assembled.batch_count; ++i) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        RespondEmpty(slots_[size_t(assembled.batch[size_t(i)])],
                     ServeStatusCode::kError);
      }
      ReleaseSlots(assembled.batch.data(), assembled.batch_count);
      continue;
    }

    const KgeModel& model = *snapshot->model;
    // Sharded / pruned reduction replaces the B × num_entities score
    // matrix with per-query range-scoped top-k scans; the matrix path
    // stays the default. Result contract: both paths return the same
    // top-k for every request ((score, id) is a total order).
    const bool range_reduce = options_.prune || options_.num_shards > 1;
    ScorePrecision used = tier;
    if (range_reduce) {
      if (!model.SupportsScorePrecision(used)) {
        used = ScorePrecision::kDouble;
      }
    } else {
      used = ScoreAssembled(*snapshot, tier, ws);
    }
    batches_.fetch_add(1, std::memory_order_relaxed);
    batched_queries_.fetch_add(uint64_t(assembled.batch_count),
                               std::memory_order_relaxed);
    if (used == ScorePrecision::kFloat32) {
      batches_float32_.fetch_add(1, std::memory_order_relaxed);
    } else if (used == ScorePrecision::kInt8) {
      batches_int8_.fetch_add(1, std::memory_order_relaxed);
    }
    const size_t num_entities = size_t(model.num_entities());
    const bool relation_ok = assembled.relation >= 0 &&
                             assembled.relation < model.num_relations();
    for (int i = 0; i < assembled.batch_count; ++i) {
      const Slot& slot = slots_[size_t(assembled.batch[size_t(i)])];
      const bool ok =
          range_reduce
              ? (relation_ok && slot.request.entity >= 0 &&
                 size_t(slot.request.entity) < num_entities)
              : ws->valid[size_t(i)] != 0;
      if (!ok) {
        invalid_.fetch_add(1, std::memory_order_relaxed);
        RespondEmpty(slot, ServeStatusCode::kInvalid);
        continue;
      }
      ServeReply reply;
      reply.status = ServeStatusCode::kOk;
      reply.tier = used;
      reply.snapshot_version = snapshot->version;
      if (range_reduce) {
        reply.results =
            ReduceQuerySharded(model, slot.request.entity, assembled.relation,
                               assembled.side, used, slot.request.k, ws);
      } else {
        const std::span<const float> row(
            ws->scores.data() + size_t(i) * num_entities, num_entities);
        reply.results = ReduceQuery(row, slot.request.k, ws);
      }
      completed_.fetch_add(1, std::memory_order_relaxed);
      slot.done(slot.done_ctx, reply);
    }
    if (range_reduce) {
      // Flush the per-shard tile counters once per batch (not per scan)
      // to keep atomic traffic off the per-query path.
      uint64_t tiles_total = 0, tiles_skipped = 0;
      for (RankScanStats& stats : ws->shard_stats) {
        tiles_total += stats.tiles_total;
        tiles_skipped += stats.tiles_skipped;
        stats = RankScanStats{};
      }
      tiles_total_.fetch_add(tiles_total, std::memory_order_relaxed);
      tiles_skipped_.fetch_add(tiles_skipped, std::memory_order_relaxed);
    }
    ReleaseSlots(assembled.batch.data(), assembled.batch_count);
  }
}

BatcherStatsView MicroBatcher::stats() const {
  BatcherStatsView view;
  view.submitted = submitted_.load(std::memory_order_relaxed);
  view.admitted = admitted_.load(std::memory_order_relaxed);
  view.shed = shed_.load(std::memory_order_relaxed);
  view.expired = expired_.load(std::memory_order_relaxed);
  view.invalid = invalid_.load(std::memory_order_relaxed);
  view.completed = completed_.load(std::memory_order_relaxed);
  view.errors = errors_.load(std::memory_order_relaxed);
  view.shutdown_replies = shutdown_replies_.load(std::memory_order_relaxed);
  view.batches = batches_.load(std::memory_order_relaxed);
  view.batched_queries = batched_queries_.load(std::memory_order_relaxed);
  view.batches_float32 = batches_float32_.load(std::memory_order_relaxed);
  view.batches_int8 = batches_int8_.load(std::memory_order_relaxed);
  view.tiles_total = tiles_total_.load(std::memory_order_relaxed);
  view.tiles_skipped = tiles_skipped_.load(std::memory_order_relaxed);
  return view;
}

int MicroBatcher::ewma_queue_pct() const {
  MutexLock lock(mutex_);
  return ewma_pct_;
}

}  // namespace kge
