// Model snapshot lifecycle for the serving layer.
//
// A ModelSnapshot bundles a scoring-ready model with the mmap'ed
// checkpoint backing its parameter blocks. SnapshotRegistry publishes
// snapshots RCU-style: readers Acquire() a shared_ptr and score against
// it for the duration of one batch, a writer Publish()es a fully
// constructed replacement, and the old snapshot (plus its mapping) is
// freed when the last in-flight batch drops its reference — queries
// never block on a swap and never observe a half-swapped model.
//
// CheckpointWatcher is the hot-swap driver: a thread polls the
// training-side `LATEST` pointer, CRC-verifies any new target
// (VerifyCheckpoint) before building a snapshot from it, and on any
// failure renames the bad file to `<name>.quarantine` and keeps serving
// the last good snapshot. A corrupt checkpoint is therefore (a) never
// scored from and (b) taken out of the rotation so the next poll does
// not retry it forever.
#ifndef KGE_SERVE_SNAPSHOT_H_
#define KGE_SERVE_SNAPSHOT_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/scoring_replica.h"
#include "models/kge_model.h"
#include "serve/mmap_checkpoint.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace kge {

struct ModelSnapshot {
  // Declared before `model` so the model (whose blocks may borrow the
  // mapping's storage) is destroyed first.
  std::unique_ptr<MappedCheckpoint> mapping;
  std::unique_ptr<KgeModel> model;
  std::string source_path;
  // Monotone publish stamp assigned by SnapshotRegistry::Publish;
  // reported in responses so clients can tell which model answered.
  uint64_t version = 0;
};

// Constructs a fresh model via `factory` and loads `path` into it
// through the mmap loader, then rebuilds the scoring replicas for
// `prepare_tiers` (skipping tiers the model does not support) so the
// snapshot is immediately usable from concurrent scoring threads. With
// `prepare_bounds` the per-tile score bounds of the pruned ranking
// scans are rebuilt too (PrepareForPrunedScoring) — required before a
// batcher with prune enabled scores the snapshot, since bounds cannot
// be rebuilt safely once concurrent workers read the model.
using ModelFactory = std::function<Result<std::unique_ptr<KgeModel>>()>;
Result<std::shared_ptr<ModelSnapshot>> LoadServingSnapshot(
    const std::string& path, const ModelFactory& factory,
    const std::vector<ScorePrecision>& prepare_tiers,
    bool prepare_bounds = false);

class SnapshotRegistry {
 public:
  // Current snapshot, or null before the first Publish. The returned
  // reference keeps the snapshot (and its mapping) alive; hold it for
  // one batch, not longer.
  std::shared_ptr<const ModelSnapshot> Acquire() const;

  // Atomically replaces the current snapshot and stamps
  // `snapshot->version` with the next publish counter (1, 2, ...).
  // In-flight readers finish on the snapshot they acquired.
  void Publish(std::shared_ptr<ModelSnapshot> snapshot);

  // Version of the current snapshot; 0 when none is published.
  uint64_t current_version() const;

 private:
  mutable Mutex mutex_;
  std::shared_ptr<const ModelSnapshot> current_ KGE_GUARDED_BY(mutex_);
  uint64_t publish_counter_ KGE_GUARDED_BY(mutex_) = 0;
};

class CheckpointWatcher {
 public:
  struct Options {
    // Directory holding ckpt_<epoch>.kge2 files and the LATEST pointer.
    std::string dir;
    int poll_ms = 200;
    // Precision tiers to PrepareForScoring on every new snapshot (the
    // degradation ladder the batcher may downshift to).
    std::vector<ScorePrecision> prepare_tiers;
    // Also rebuild each tier's pruned-scan tile bounds
    // (PrepareForPrunedScoring). Set when serving with --prune.
    bool prepare_bounds = false;
  };

  CheckpointWatcher(SnapshotRegistry* registry, ModelFactory factory,
                    Options options);
  ~CheckpointWatcher();
  CheckpointWatcher(const CheckpointWatcher&) = delete;
  CheckpointWatcher& operator=(const CheckpointWatcher&) = delete;

  // Startup load: adopt the LATEST target if it verifies; otherwise
  // quarantine it and fall back to the newest ckpt_*.kge2 that passes
  // VerifyCheckpoint. NotFound when the directory has no usable
  // checkpoint. This is how a restart after a crash resumes from the
  // last CRC-valid checkpoint even when LATEST was the casualty.
  Status LoadInitial();

  // Adopts one explicit checkpoint file (no LATEST indirection) — the
  // --checkpoint startup path. No quarantine on failure.
  Status AdoptPath(const std::string& path);

  // Starts/stops the polling thread. Stop() is prompt (the poll wait is
  // interruptible) and idempotent; the destructor calls it.
  void Start();
  void Stop();

  // One poll step: re-resolve LATEST and swap/quarantine as needed.
  // Called by the polling thread; public so tests can drive the watcher
  // deterministically without timing dependence. Must not race Start().
  void PollOnce();

  struct StatsView {
    uint64_t polls = 0;
    uint64_t swaps = 0;
    uint64_t quarantines = 0;
    uint64_t failed_loads = 0;
  };
  StatsView stats() const;

 private:
  // Resolves the LATEST pointer to a full path; empty when missing.
  std::string ResolveLatestTarget() const;
  Status TryAdopt(const std::string& path);
  // Renames `path` out of the checkpoint rotation; true on success.
  bool QuarantineFile(const std::string& path);

  SnapshotRegistry* registry_;
  ModelFactory factory_;
  Options options_;

  // Touched only from the owner's startup path and the poll thread.
  std::string active_path_;
  std::string last_failed_path_;

  std::atomic<uint64_t> polls_{0};
  std::atomic<uint64_t> swaps_{0};
  std::atomic<uint64_t> quarantines_{0};
  std::atomic<uint64_t> failed_loads_{0};

  Mutex mutex_;
  bool stop_ KGE_GUARDED_BY(mutex_) = false;
  CondVar cv_;
  std::thread thread_;
};

// Newest ckpt_<epoch>.kge2 under `dir` that passes VerifyCheckpoint.
// NotFound when nothing qualifies.
Result<std::string> FindNewestValidCheckpoint(const std::string& dir);

}  // namespace kge

#endif  // KGE_SERVE_SNAPSHOT_H_
