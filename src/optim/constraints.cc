#include "optim/constraints.h"

#include <unordered_set>

#include "math/vec_ops.h"

namespace kge {

void CollectTouchedRows(const GradientBuffer& grads, size_t block_index,
                        std::vector<EntityId>* out) {
  out->clear();
  grads.ForEach([&](size_t b, int64_t row, std::span<const float> grad) {
    (void)grad;
    if (b == block_index) out->push_back(static_cast<EntityId>(row));
  });
}

double L2Regularizer::Accumulate(
    GradientBuffer* grads,
    std::span<const std::pair<size_t, int64_t>> block_rows) {
  if (lambda_ == 0.0 || block_rows.empty()) return 0.0;
  int64_t n_d = 0;
  for (const auto& [block_index, row] : block_rows) {
    n_d += grads->block(block_index)->row_dim();
  }
  const double inv_nd = 1.0 / double(n_d);
  double loss = 0.0;
  for (const auto& [block_index, row] : block_rows) {
    std::span<const float> params = grads->block(block_index)->Row(row);
    loss += lambda_ * inv_nd * SquaredNorm(params);
    std::span<float> grad = grads->GradFor(block_index, row);
    const float scale = static_cast<float>(2.0 * lambda_ * inv_nd);
    for (size_t d = 0; d < params.size(); ++d) grad[d] += scale * params[d];
  }
  return loss;
}

}  // namespace kge
