#include "optim/optimizer.h"

#include <cmath>

#include "util/check.h"

namespace kge {
namespace {

// Runs `row_fn(block, row, grad)` over every touched row — serially, or
// hash-sharded across `pool` when it has workers. Each row is visited by
// exactly one thread, so per-row updates need no synchronization, and
// the arithmetic per row is independent of the shard count: the parallel
// apply is bit-identical to the serial one.
// Shared prologue of every optimizer's serialized state: name (verified
// on load so a checkpoint cannot silently switch optimizers) and the
// current base learning rate.
Status WriteStateHeader(const std::string& name, double learning_rate,
                        BinaryWriter* writer) {
  KGE_RETURN_IF_ERROR(writer->WriteString(name));
  return writer->WriteDouble(learning_rate);
}

Status ReadStateHeader(const std::string& expected_name, BinaryReader* reader,
                       double* learning_rate) {
  Result<std::string> name = reader->ReadString();
  if (!name.ok()) return name.status();
  if (*name != expected_name) {
    return Status::InvalidArgument("checkpoint optimizer '" + *name +
                                   "' does not match '" + expected_name + "'");
  }
  Result<double> stored = reader->ReadDouble();
  if (!stored.ok()) return stored.status();
  *learning_rate = *stored;
  return Status::Ok();
}

// Per-block moment vectors (Adagrad accumulators, Adam m/v) as
// length-checked float arrays.
Status WriteMoments(const std::vector<std::vector<float>>& moments,
                    BinaryWriter* writer) {
  for (const std::vector<float>& m : moments) {
    KGE_RETURN_IF_ERROR(writer->WriteFloatArray(m.data(), m.size()));
  }
  return Status::Ok();
}

Status ReadMoments(std::vector<std::vector<float>>* moments,
                   BinaryReader* reader) {
  for (std::vector<float>& m : *moments) {
    KGE_RETURN_IF_ERROR(reader->ReadFloatArray(m.data(), m.size()));
  }
  return Status::Ok();
}

template <typename RowFn>
void ForEachRowSharded(const GradientBuffer& grads, ThreadPool* pool,
                       const RowFn& row_fn) {
  // Below ~64 rows the fan-out overhead exceeds the update work.
  constexpr size_t kMinRowsForParallel = 64;
  if (pool == nullptr || pool->num_threads() <= 1 ||
      grads.NumTouchedRows() < kMinRowsForParallel) {
    grads.ForEach(row_fn);
    return;
  }
  const size_t shards = pool->num_threads();
  // StageFor passes the body by context pointer through the pool's POD
  // task ring — no std::function, so the per-batch apply allocates
  // nothing at any thread count.
  pool->StageFor(0, shards, [&grads, &row_fn, shards](size_t sb, size_t se) {
    for (size_t s = sb; s < se; ++s) {
      grads.ForEachShard(s, shards, row_fn);
    }
  });
}

class SgdOptimizer : public Optimizer {
 public:
  SgdOptimizer(std::vector<ParameterBlock*> blocks, const SgdOptions& options)
      : blocks_(std::move(blocks)), options_(options), name_("sgd") {}

  const std::string& name() const override { return name_; }

  void Apply(const GradientBuffer& grads, ThreadPool* pool) override {
    const float lr = static_cast<float>(options_.learning_rate);
    ForEachRowSharded(
        grads, pool,
        [&](size_t block_index, int64_t row, std::span<const float> grad) {
          std::span<float> params = blocks_[block_index]->Row(row);
          for (size_t d = 0; d < grad.size(); ++d) params[d] -= lr * grad[d];
        });
  }

  void Reset() override {}

  double learning_rate() const override { return options_.learning_rate; }
  void set_learning_rate(double learning_rate) override {
    options_.learning_rate = learning_rate;
  }

  Status SaveState(BinaryWriter* writer) const override {
    return WriteStateHeader(name_, options_.learning_rate, writer);
  }

  Status LoadState(BinaryReader* reader) override {
    return ReadStateHeader(name_, reader, &options_.learning_rate);
  }

 private:
  std::vector<ParameterBlock*> blocks_;
  SgdOptions options_;
  std::string name_;
};

class AdagradOptimizer : public Optimizer {
 public:
  AdagradOptimizer(std::vector<ParameterBlock*> blocks,
                   const AdagradOptions& options)
      : blocks_(std::move(blocks)), options_(options), name_("adagrad") {
    for (ParameterBlock* block : blocks_) {
      accumulators_.emplace_back(size_t(block->size()), 0.0f);
    }
  }

  const std::string& name() const override { return name_; }

  void Apply(const GradientBuffer& grads, ThreadPool* pool) override {
    const float lr = static_cast<float>(options_.learning_rate);
    const float eps = static_cast<float>(options_.epsilon);
    ForEachRowSharded(
        grads, pool,
        [&](size_t block_index, int64_t row, std::span<const float> grad) {
          ParameterBlock* block = blocks_[block_index];
          std::span<float> params = block->Row(row);
          float* acc = accumulators_[block_index].data() +
                       size_t(row) * size_t(block->row_dim());
          for (size_t d = 0; d < grad.size(); ++d) {
            acc[d] += grad[d] * grad[d];
            params[d] -= lr * grad[d] / (std::sqrt(acc[d]) + eps);
          }
        });
  }

  void Reset() override {
    for (auto& acc : accumulators_) std::fill(acc.begin(), acc.end(), 0.0f);
  }

  double learning_rate() const override { return options_.learning_rate; }
  void set_learning_rate(double learning_rate) override {
    options_.learning_rate = learning_rate;
  }

  Status SaveState(BinaryWriter* writer) const override {
    KGE_RETURN_IF_ERROR(
        WriteStateHeader(name_, options_.learning_rate, writer));
    return WriteMoments(accumulators_, writer);
  }

  Status LoadState(BinaryReader* reader) override {
    KGE_RETURN_IF_ERROR(
        ReadStateHeader(name_, reader, &options_.learning_rate));
    return ReadMoments(&accumulators_, reader);
  }

 private:
  std::vector<ParameterBlock*> blocks_;
  AdagradOptions options_;
  std::string name_;
  std::vector<std::vector<float>> accumulators_;
};

// Lazy Adam: first/second moments are stored for every row but decayed
// and applied only when the row is touched, with bias correction based on
// the global step. This matches the sparse-Adam behaviour of the common
// deep learning frameworks' embedding training.
class AdamOptimizer : public Optimizer {
 public:
  AdamOptimizer(std::vector<ParameterBlock*> blocks, const AdamOptions& options)
      : blocks_(std::move(blocks)), options_(options), name_("adam") {
    for (ParameterBlock* block : blocks_) {
      m_.emplace_back(size_t(block->size()), 0.0f);
      v_.emplace_back(size_t(block->size()), 0.0f);
    }
  }

  const std::string& name() const override { return name_; }

  void Apply(const GradientBuffer& grads, ThreadPool* pool) override {
    ++step_;
    const double beta1 = options_.beta1;
    const double beta2 = options_.beta2;
    const double bias1 = 1.0 - std::pow(beta1, double(step_));
    const double bias2 = 1.0 - std::pow(beta2, double(step_));
    const double lr = options_.learning_rate * std::sqrt(bias2) / bias1;
    const float eps = static_cast<float>(options_.epsilon);
    ForEachRowSharded(
        grads, pool,
        [&](size_t block_index, int64_t row, std::span<const float> grad) {
          ParameterBlock* block = blocks_[block_index];
          std::span<float> params = block->Row(row);
          const size_t offset = size_t(row) * size_t(block->row_dim());
          float* m = m_[block_index].data() + offset;
          float* v = v_[block_index].data() + offset;
          for (size_t d = 0; d < grad.size(); ++d) {
            m[d] = static_cast<float>(beta1 * m[d] + (1.0 - beta1) * grad[d]);
            v[d] = static_cast<float>(beta2 * v[d] +
                                      (1.0 - beta2) * grad[d] * grad[d]);
            params[d] -= static_cast<float>(lr * m[d] /
                                            (std::sqrt(double(v[d])) + eps));
          }
        });
  }

  void Reset() override {
    step_ = 0;
    for (auto& m : m_) std::fill(m.begin(), m.end(), 0.0f);
    for (auto& v : v_) std::fill(v.begin(), v.end(), 0.0f);
  }

  double learning_rate() const override { return options_.learning_rate; }
  void set_learning_rate(double learning_rate) override {
    options_.learning_rate = learning_rate;
  }

  Status SaveState(BinaryWriter* writer) const override {
    KGE_RETURN_IF_ERROR(
        WriteStateHeader(name_, options_.learning_rate, writer));
    KGE_RETURN_IF_ERROR(writer->WriteUint64(uint64_t(step_)));
    KGE_RETURN_IF_ERROR(WriteMoments(m_, writer));
    return WriteMoments(v_, writer);
  }

  Status LoadState(BinaryReader* reader) override {
    KGE_RETURN_IF_ERROR(
        ReadStateHeader(name_, reader, &options_.learning_rate));
    Result<uint64_t> step = reader->ReadUint64();
    if (!step.ok()) return step.status();
    step_ = int64_t(*step);
    KGE_RETURN_IF_ERROR(ReadMoments(&m_, reader));
    return ReadMoments(&v_, reader);
  }

 private:
  std::vector<ParameterBlock*> blocks_;
  AdamOptions options_;
  std::string name_;
  int64_t step_ = 0;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

}  // namespace

std::unique_ptr<Optimizer> MakeSgd(std::vector<ParameterBlock*> blocks,
                                   const SgdOptions& options) {
  return std::make_unique<SgdOptimizer>(std::move(blocks), options);
}

std::unique_ptr<Optimizer> MakeAdagrad(std::vector<ParameterBlock*> blocks,
                                       const AdagradOptions& options) {
  return std::make_unique<AdagradOptimizer>(std::move(blocks), options);
}

std::unique_ptr<Optimizer> MakeAdam(std::vector<ParameterBlock*> blocks,
                                    const AdamOptions& options) {
  return std::make_unique<AdamOptimizer>(std::move(blocks), options);
}

Result<std::unique_ptr<Optimizer>> MakeOptimizer(
    const std::string& name, std::vector<ParameterBlock*> blocks,
    double learning_rate) {
  if (name == "sgd") {
    SgdOptions options;
    options.learning_rate = learning_rate;
    return MakeSgd(std::move(blocks), options);
  }
  if (name == "adagrad") {
    AdagradOptions options;
    options.learning_rate = learning_rate;
    return MakeAdagrad(std::move(blocks), options);
  }
  if (name == "adam") {
    AdamOptions options;
    options.learning_rate = learning_rate;
    return MakeAdam(std::move(blocks), options);
  }
  return Status::InvalidArgument("unknown optimizer: " + name);
}

}  // namespace kge
