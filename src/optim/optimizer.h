// Sparse first-order optimizers over ParameterBlocks. Each Apply() step
// consumes one GradientBuffer (a mini-batch worth of per-row gradients)
// and performs a descent update on exactly the touched rows ("lazy"
// updates — the standard approach for embedding models, where a batch
// touches a tiny fraction of rows).
//
// The paper trains with "SGD with learning rates auto-tuned by Adam"
// (§5.3); Adam is the default in all benches. SGD and Adagrad are
// provided for ablations.
#ifndef KGE_OPTIM_OPTIMIZER_H_
#define KGE_OPTIM_OPTIMIZER_H_

#include <memory>
#include <string>
#include <vector>

#include "core/parameter_block.h"
#include "util/hotpath.h"
#include "util/io.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace kge {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  virtual const std::string& name() const = 0;

  // Applies one descent step for all rows touched in `grads`. The buffer's
  // block list must be the one this optimizer was constructed with.
  //
  // With a non-null `pool`, touched rows are partitioned across the pool
  // by GradientBuffer::ShardOfRow and updated concurrently. Row updates
  // are independent (per-row state only), so the result is bit-identical
  // to the serial apply for every thread count.
  KGE_HOT_NOALLOC
  virtual void Apply(const GradientBuffer& grads,
                     ThreadPool* pool = nullptr) = 0;

  // Resets all optimizer state (moments, step counters).
  virtual void Reset() = 0;

  // Current base learning rate. Mutable at runtime so the divergence
  // guard can back off after a rollback.
  virtual double learning_rate() const = 0;
  virtual void set_learning_rate(double learning_rate) = 0;

  // Serializes / restores all state that affects future updates (name,
  // learning rate, moments, step counters) for exact training resume.
  // LoadState verifies the stored optimizer name and state shapes; the
  // optimizer must have been constructed over the same blocks.
  virtual Status SaveState(BinaryWriter* writer) const = 0;
  virtual Status LoadState(BinaryReader* reader) = 0;
};

struct SgdOptions {
  double learning_rate = 0.1;
};

struct AdagradOptions {
  double learning_rate = 0.1;
  double epsilon = 1e-8;
};

struct AdamOptions {
  double learning_rate = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
};

std::unique_ptr<Optimizer> MakeSgd(std::vector<ParameterBlock*> blocks,
                                   const SgdOptions& options);
std::unique_ptr<Optimizer> MakeAdagrad(std::vector<ParameterBlock*> blocks,
                                       const AdagradOptions& options);
std::unique_ptr<Optimizer> MakeAdam(std::vector<ParameterBlock*> blocks,
                                    const AdamOptions& options);

// Factory by name ("sgd" | "adagrad" | "adam") with the given learning
// rate and otherwise default options.
Result<std::unique_ptr<Optimizer>> MakeOptimizer(
    const std::string& name, std::vector<ParameterBlock*> blocks,
    double learning_rate);

}  // namespace kge

#endif  // KGE_OPTIM_OPTIMIZER_H_
