// Post-update constraints (§5.3: "We constrained entity embedding vectors
// to have unit L2-norm after each training iteration") plus helpers to
// collect which entities a batch touched.
#ifndef KGE_OPTIM_CONSTRAINTS_H_
#define KGE_OPTIM_CONSTRAINTS_H_

#include <vector>

#include "core/parameter_block.h"
#include "kg/triple.h"

namespace kge {

// Collects the distinct rows touched in `grads` for `block_index`,
// appended to `out` (cleared first). Used to apply the unit-norm
// constraint to exactly the entities updated this iteration.
void CollectTouchedRows(const GradientBuffer& grads, size_t block_index,
                        std::vector<EntityId>* out);

// Adds the L2 regularization gradient of Eq. (16) for one triple's
// parameter rows: grad += (2λ / n_D) * θ for each involved row, where
// n_D is the total number of parameters entering the triple's score.
// Call once per positive/negative example, mirroring the per-example sum
// in the loss.
class L2Regularizer {
 public:
  explicit L2Regularizer(double lambda) : lambda_(lambda) {}

  double lambda() const { return lambda_; }

  // Loss contribution (λ / n_D) * ||θ||² for the given rows, adding the
  // matching gradients into `grads`. `blocks_rows` lists (block, row)
  // pairs; duplicated pairs are regularized multiple times, matching the
  // per-example formulation.
  double Accumulate(GradientBuffer* grads,
                    std::span<const std::pair<size_t, int64_t>> block_rows);

 private:
  double lambda_;
};

}  // namespace kge

#endif  // KGE_OPTIM_CONSTRAINTS_H_
