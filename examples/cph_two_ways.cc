// CPh two ways — a runnable demonstration of the paper's Eq. (11)
// equivalence: training CP on inverse-augmented data (the heuristic of
// Lacroix et al. that the paper analyzes) is the same model as the
// two-embedding weight vector (0,0,1,0,0,1,0,0) on the original data.
//
// The example trains both formulations on the same WordNet-like graph
// and shows they reach comparable link-prediction quality — and that
// both vastly outperform plain CP, the paper's central empirical story.
//
// Note the evaluation subtlety for the augmented formulation: a tail
// query (h, ?, r) can also be answered as a head query on the augmented
// relation. We evaluate it the standard way (forward relation only),
// which is how [17] reports CP-augmented results.
//
// Run:  ./cph_two_ways [--entities=N] [--epochs=N]
#include <cstdio>

#include "kge.h"

namespace {

using namespace kge;

RankingMetrics TrainEval(KgeModel* model, const std::vector<Triple>& train,
                         const Dataset& data, const FilterIndex& filter,
                         int epochs) {
  TrainerOptions options;
  options.max_epochs = epochs;
  options.batch_size = 1024;
  Trainer trainer(model, options);
  KGE_CHECK_OK(trainer.Train(train, nullptr).status());
  Evaluator evaluator(&filter, data.num_relations());
  return evaluator.EvaluateOverall(*model, data.test, EvalOptions{});
}

int Run(int argc, char** argv) {
  int64_t entities = 1000;
  int64_t epochs = 150;
  int64_t dim = 64;
  FlagParser parser("cph_two_ways: Eq. (11) — weight vector == augmentation");
  parser.AddInt("entities", &entities, "entities in the generated KG");
  parser.AddInt("epochs", &epochs, "training epochs");
  parser.AddInt("dim", &dim, "per-vector embedding dimension");
  const Status status = parser.Parse(argc, argv);
  if (status.code() == StatusCode::kNotFound) return 0;
  KGE_CHECK_OK(status);

  WordNetLikeOptions generator;
  generator.num_entities = int32_t(entities);
  generator.seed = 33;
  const Dataset data = GenerateWordNetLike(generator);
  std::printf("dataset: %s\n\n", data.StatsString().c_str());
  FilterIndex filter;
  filter.Build(data.train, data.valid, data.test);

  // Formulation 1: plain CP (the paper's failure case).
  auto cp = MakeCp(data.num_entities(), data.num_relations(), int32_t(dim),
                   7);
  const RankingMetrics cp_metrics =
      TrainEval(cp.get(), data.train, data, filter, int(epochs));
  std::printf("CP  (plain)              : %s\n", cp_metrics.ToString().c_str());

  // Formulation 2: CPh as the derived weight vector on original data.
  auto cph = MakeCph(data.num_entities(), data.num_relations(), int32_t(dim),
                     7);
  const RankingMetrics cph_metrics =
      TrainEval(cph.get(), data.train, data, filter, int(epochs));
  std::printf("CPh (weight vector)      : %s\n",
              cph_metrics.ToString().c_str());

  // Formulation 3: CP trained on inverse-augmented data (Eq. 7).
  const AugmentedTriples augmented =
      AugmentWithInverses(data.train, data.num_relations());
  auto cp_aug = MakeCp(data.num_entities(), augmented.num_relations,
                       int32_t(dim), 7);
  // Evaluate against the original relations only; the filter and the
  // protocol are unchanged because augmented relation ids >= original
  // count never appear in test queries.
  const RankingMetrics aug_metrics = TrainEval(
      cp_aug.get(), augmented.triples, data, filter, int(epochs));
  std::printf("CP  (augmented data, Eq.7): %s\n",
              aug_metrics.ToString().c_str());

  std::printf(
      "\nEq. (11) in action: both CPh formulations repair CP's\n"
      "generalization failure (paper Table 2: CP 0.086 vs CPh 0.937 on "
      "WN18).\n");
  const double repaired = std::min(cph_metrics.Mrr(), aug_metrics.Mrr());
  std::printf("min(CPh formulations) MRR %.3f vs plain CP MRR %.3f -> %s\n",
              repaired, cp_metrics.Mrr(),
              repaired > 3 * cp_metrics.Mrr() ? "repaired" : "UNEXPECTED");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
