// Quickstart: the complete mei-kge workflow in ~60 lines of user code.
//
//   1. build a tiny knowledge graph by hand,
//   2. train the paper's ComplEx model (a two-embedding interaction
//      model) with negative sampling and Adam,
//   3. evaluate with the filtered link-prediction protocol,
//   4. query the model: "what is the most likely tail for (h, ?, r)?".
//
// Run:  ./quickstart
#include <cstdio>

#include "kge.h"

namespace {

int Run() {
  using namespace kge;

  // 1. A miniature family knowledge graph. parent_of / child_of are
  // inverse relations; married_to is symmetric.
  Dataset data;
  const RelationId parent_of = data.relations.GetOrAdd("parent_of");
  const RelationId child_of = data.relations.GetOrAdd("child_of");
  const RelationId married_to = data.relations.GetOrAdd("married_to");

  auto person = [&data](const std::string& name) {
    return data.entities.GetOrAdd(name);
  };
  // A few generations of synthetic families.
  for (int family = 0; family < 120; ++family) {
    const EntityId a = person(StrFormat("person_%03d_a", family));
    const EntityId b = person(StrFormat("person_%03d_b", family));
    const EntityId c = person(StrFormat("person_%03d_c", family));
    data.train.push_back({a, b, married_to});
    data.train.push_back({b, a, married_to});
    data.train.push_back({a, c, parent_of});
    data.train.push_back({b, c, parent_of});
    data.train.push_back({c, a, child_of});
    // Hold out one triple per family as test: the model must infer
    // (c, b, child_of) from the inverse (b, c, parent_of).
    data.test.push_back({c, b, child_of});
  }
  std::printf("dataset: %s\n", data.StatsString().c_str());

  // 2. Train ComplEx.
  auto model = MakeComplEx(data.num_entities(), data.num_relations(),
                           /*dim=*/32, /*seed=*/42);
  TrainerOptions options;
  options.max_epochs = 200;
  options.batch_size = 256;
  options.learning_rate = 0.02;
  options.log_every_epochs = 50;
  Trainer trainer(model.get(), options);
  const Result<TrainResult> result = trainer.Train(data.train, nullptr);
  KGE_CHECK_OK(result.status());
  std::printf("trained %d epochs, final mean loss %.4f\n",
              result->epochs_run, result->final_mean_loss);

  // 3. Filtered evaluation on the held-out triples.
  FilterIndex filter;
  filter.Build(data.train, data.valid, data.test);
  Evaluator evaluator(&filter, data.num_relations());
  EvalOptions eval_options;
  const RankingMetrics metrics =
      evaluator.EvaluateOverall(*model, data.test, eval_options);
  std::printf("test metrics: %s\n", metrics.ToString().c_str());

  // 4. Ad-hoc link prediction: top-3 tails for (person_000_c, ?, child_of).
  const EntityId query_head = data.entities.Find("person_000_c");
  TopKOptions topk;
  topk.k = 3;
  std::printf("\ntop tails for (person_000_c, ?, child_of):\n");
  int rank = 0;
  for (const ScoredEntity& hit :
       PredictTails(*model, query_head, child_of, topk)) {
    std::printf("  %d. %-16s score %.3f  p(valid) %.3f\n", ++rank,
                data.entities.NameOf(hit.entity).c_str(), hit.score,
                PredictedProbability(hit.score));
  }
  return 0;
}

}  // namespace

int main() { return Run(); }
