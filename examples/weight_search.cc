// Weight-vector search — explores the paper's §6.1.2 observation that
// good weight vectors share three properties (completeness, stability,
// distinguishability). The example:
//
//   1. scores the paper's named weight vectors with the property
//      analyzer,
//   2. random-searches the 8-dimensional ω space, ranks candidates by
//      the property score, and
//   3. trains the best and worst candidates briefly to show the property
//      score predicts link-prediction quality.
//
// Run:  ./weight_search [--candidates=N] [--train-top=N]
#include <algorithm>
#include <cstdio>

#include "kge.h"

namespace {

using namespace kge;

struct Candidate {
  WeightTable table{2, 2};
  WeightProperties properties;
  std::string label;
};

double TrainAndScore(const WeightTable& table, const std::string& label,
                     const Dataset& data, const FilterIndex& filter,
                     int epochs) {
  auto model = MakeMultiEmbedding(label, data.num_entities(),
                                  data.num_relations(), 16, table, 3);
  TrainerOptions options;
  options.max_epochs = epochs;
  options.batch_size = 512;
  options.learning_rate = 0.02;
  Trainer trainer(model.get(), options);
  KGE_CHECK_OK(trainer.Train(data.train, nullptr).status());
  Evaluator evaluator(&filter, data.num_relations());
  EvalOptions eval_options;
  return evaluator.EvaluateOverall(*model, data.test, eval_options).Mrr();
}

int Run(int argc, char** argv) {
  int64_t candidates = 2000;
  int64_t train_top = 2;
  int64_t entities = 400;
  int64_t epochs = 100;
  FlagParser parser("weight_search: §6.1.2 weight-vector properties");
  parser.AddInt("candidates", &candidates, "random weight vectors to score");
  parser.AddInt("train-top", &train_top,
                "train this many best and worst candidates");
  parser.AddInt("entities", &entities, "entities in the evaluation KG");
  parser.AddInt("epochs", &epochs, "training epochs per candidate");
  const Status status = parser.Parse(argc, argv);
  if (status.code() == StatusCode::kNotFound) return 0;
  KGE_CHECK_OK(status);

  // 1. The paper's named weight vectors under the property analyzer.
  std::printf("== paper weight vectors, property analysis (§6.1.2) ==\n");
  TablePrinter table({"weight vector", "complete", "stable", "disting.",
                      "overall"});
  struct Named {
    const char* name;
    WeightTable weights;
  };
  const Named named[] = {
      {"DistMult", WeightTable::DistMult()},
      {"ComplEx", WeightTable::ComplEx()},
      {"CP", WeightTable::Cp()},
      {"CPh", WeightTable::Cph()},
      {"Bad example 1", WeightTable::BadExample1()},
      {"Bad example 2", WeightTable::BadExample2()},
      {"Good example 1", WeightTable::GoodExample1()},
      {"Good example 2", WeightTable::GoodExample2()},
      {"Uniform", WeightTable::Uniform(2, 2)},
  };
  for (const Named& n : named) {
    const WeightProperties p = AnalyzeWeightTable(n.weights);
    table.AddRow({n.name, StrFormat("%.2f", p.completeness),
                  StrFormat("%.2f", p.stability),
                  StrFormat("%.2f", p.distinguishability),
                  StrFormat("%.2f", p.Overall())});
  }
  table.Print();

  // 2. Random search over ω ∈ {-1, 0, 1}^8 (plus magnitude jitter).
  Rng rng(99);
  std::vector<Candidate> pool;
  for (int64_t c = 0; c < candidates; ++c) {
    std::array<float, 8> w{};
    for (float& x : w) {
      const uint64_t pick = rng.NextBounded(3);
      x = pick == 0 ? 0.0f : (pick == 1 ? 1.0f : -1.0f);
      if (x != 0.0f && rng.NextBool(0.2)) x *= 20.0f;  // bad-example-style
    }
    Candidate candidate;
    candidate.table = WeightTable::FromPaperVector(w);
    candidate.properties = AnalyzeWeightTable(candidate.table);
    std::string label = "[";
    for (float x : w) label += StrFormat(" %g", x);
    label += " ]";
    candidate.label = std::move(label);
    pool.push_back(std::move(candidate));
  }
  std::sort(pool.begin(), pool.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.properties.Overall() > b.properties.Overall();
            });
  std::printf("\n== random search over %lld candidate weight vectors ==\n",
              (long long)candidates);
  std::printf("best by property score:\n");
  for (int64_t k = 0; k < 3 && k < int64_t(pool.size()); ++k) {
    std::printf("  %.2f  %s\n", pool[size_t(k)].properties.Overall(),
                pool[size_t(k)].label.c_str());
  }

  // 3. Does the property score predict training outcomes?
  WordNetLikeOptions generator;
  generator.num_entities = int32_t(entities);
  generator.seed = 31;
  const Dataset data = GenerateWordNetLike(generator);
  FilterIndex filter;
  filter.Build(data.train, data.valid, data.test);

  std::printf("\n== training best vs worst candidates (%lld epochs) ==\n",
              (long long)epochs);
  double best_mean = 0.0, worst_mean = 0.0;
  for (int64_t k = 0; k < train_top; ++k) {
    const Candidate& best = pool[size_t(k)];
    const Candidate& worst = pool[pool.size() - 1 - size_t(k)];
    const double best_mrr = TrainAndScore(best.table, "best", data, filter,
                                          int(epochs));
    const double worst_mrr = TrainAndScore(worst.table, "worst", data,
                                           filter, int(epochs));
    std::printf("  best  %-28s property %.2f -> test MRR %.3f\n",
                best.label.c_str(), best.properties.Overall(), best_mrr);
    std::printf("  worst %-28s property %.2f -> test MRR %.3f\n",
                worst.label.c_str(), worst.properties.Overall(), worst_mrr);
    best_mean += best_mrr;
    worst_mean += worst_mrr;
  }
  std::printf("\nmean test MRR: best candidates %.3f vs worst %.3f\n",
              best_mean / double(train_top), worst_mean / double(train_top));
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
