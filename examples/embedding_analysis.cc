// Embedding analysis — the paper's §3.2 punchline made concrete:
// "For the ComplEx model, instead of using a complex-valued embedding
// vector, we can treat it as two real-valued embedding vectors. ...
// multiple embedding vectors can be concatenated to form a longer vector
// for use in visualization and data analysis."
//
// This example trains ComplEx on a WordNet-like graph, concatenates each
// entity's two embedding vectors into one real feature vector, and uses
// plain cosine nearest-neighbour search to show that taxonomy siblings
// end up close in embedding space — no complex arithmetic needed
// downstream.
//
// Run:  ./embedding_analysis [--entities=N] [--epochs=N]
#include <algorithm>
#include <cstdio>

#include "kge.h"

namespace {

using namespace kge;

double Cosine(std::span<const float> a, std::span<const float> b) {
  const double denom = Norm(a) * Norm(b);
  return denom == 0.0 ? 0.0 : Dot(a, b) / denom;
}

int Run(int argc, char** argv) {
  int64_t entities = 600;
  int64_t epochs = 150;
  FlagParser parser(
      "embedding_analysis: multi-embeddings as plain real feature vectors");
  parser.AddInt("entities", &entities, "entities in the generated KG");
  parser.AddInt("epochs", &epochs, "training epochs");
  const Status status = parser.Parse(argc, argv);
  if (status.code() == StatusCode::kNotFound) return 0;
  KGE_CHECK_OK(status);

  WordNetLikeOptions generator;
  generator.num_entities = int32_t(entities);
  generator.seed = 21;
  Dataset data = GenerateWordNetLike(generator);
  std::printf("dataset: %s\n", data.StatsString().c_str());

  auto model = MakeComplEx(data.num_entities(), data.num_relations(),
                           /*dim=*/32, /*seed=*/3);
  TrainerOptions options;
  options.max_epochs = int(epochs);
  options.batch_size = 1024;
  Trainer trainer(model.get(), options);
  KGE_CHECK_OK(trainer.Train(data.train, nullptr).status());

  // The multi-embedding view: EmbeddingStore::Of(e) is already the
  // concatenation [Re(e); Im(e)] — a flat real vector usable by any
  // downstream tool.
  const EmbeddingStore& store = model->entity_store();
  std::printf("each entity's feature vector: %d vectors x %d dims = %d "
              "real features\n",
              store.num_vectors(), store.dim(),
              store.num_vectors() * store.dim());

  // Pick a parent with several children in the taxonomy; check siblings
  // cluster: mean cosine among siblings vs among random entity pairs.
  TripleStore train_store(data.train);
  train_store.BuildIndexes(data.num_entities(), data.num_relations());
  EntityId best_parent = -1;
  std::vector<EntityId> siblings;
  for (EntityId e = 0; e < data.num_entities(); ++e) {
    std::vector<EntityId> children;
    for (uint32_t pos : train_store.ByTail(e)) {
      const Triple& t = train_store[pos];
      if (t.relation == kHypernym) children.push_back(t.head);
    }
    if (children.size() > siblings.size()) {
      siblings = children;
      best_parent = e;
    }
  }
  KGE_CHECK(best_parent >= 0 && siblings.size() >= 3);
  if (siblings.size() > 10) siblings.resize(10);

  double sibling_cosine = 0.0;
  int sibling_pairs = 0;
  for (size_t a = 0; a < siblings.size(); ++a) {
    for (size_t b = a + 1; b < siblings.size(); ++b) {
      sibling_cosine += Cosine(store.Of(siblings[a]), store.Of(siblings[b]));
      ++sibling_pairs;
    }
  }
  sibling_cosine /= sibling_pairs;

  Rng rng(17);
  double random_cosine = 0.0;
  const int kRandomPairs = 500;
  for (int pair = 0; pair < kRandomPairs; ++pair) {
    const auto a = EntityId(rng.NextBounded(uint64_t(data.num_entities())));
    const auto b = EntityId(rng.NextBounded(uint64_t(data.num_entities())));
    random_cosine += Cosine(store.Of(a), store.Of(b));
  }
  random_cosine /= kRandomPairs;

  std::printf("\nparent %s has %zu sampled children (taxonomy siblings)\n",
              data.entities.NameOf(best_parent).c_str(), siblings.size());
  std::printf("mean cosine among siblings     : %+.3f\n", sibling_cosine);
  std::printf("mean cosine among random pairs : %+.3f\n", random_cosine);
  std::printf("=> siblings are %s in the concatenated embedding space\n",
              sibling_cosine > random_cosine + 0.05 ? "clustered"
                                                    : "not clearly clustered");

  // Nearest neighbours of one sibling, by cosine over concatenated
  // embeddings.
  const EntityId probe = siblings[0];
  std::vector<std::pair<double, EntityId>> neighbours;
  for (EntityId e = 0; e < data.num_entities(); ++e) {
    if (e == probe) continue;
    neighbours.push_back({Cosine(store.Of(probe), store.Of(e)), e});
  }
  std::partial_sort(neighbours.begin(), neighbours.begin() + 5,
                    neighbours.end(), std::greater<>());
  std::printf("\nnearest neighbours of %s:\n",
              data.entities.NameOf(probe).c_str());
  for (int k = 0; k < 5; ++k) {
    std::printf("  %d. %-10s cosine %+.3f\n", k + 1,
                data.entities.NameOf(neighbours[size_t(k)].second).c_str(),
                neighbours[size_t(k)].first);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
