// Recommender system on a knowledge graph — the paper's §1 motivating
// application: "a knowledge graph for recommender systems would have
// triples such as (UserA, Item1, review) and (UserB, Item2, like)", and
// link prediction fills in the missing (user, item, like) triples.
//
// This example synthesizes a user-item-category graph with community
// structure (users belong to taste clusters; items belong to genres;
// users like items of their cluster's genres), trains the CPh model, and
// produces top-k recommendations for a user, measuring recall on
// held-out likes.
//
// Run:  ./recommender [--users=N] [--items=N]
#include <algorithm>
#include <cstdio>

#include "kge.h"

namespace {

using namespace kge;

struct RecommenderData {
  Dataset data;
  RelationId like = 0;
  RelationId belongs_to_genre = 0;
  RelationId follows = 0;
  std::vector<Triple> held_out_likes;
  int num_users = 0;
  int num_items = 0;
};

RecommenderData BuildData(int num_users, int num_items, int num_genres,
                          uint64_t seed) {
  RecommenderData rec;
  rec.num_users = num_users;
  rec.num_items = num_items;
  rec.like = rec.data.relations.GetOrAdd("like");
  rec.belongs_to_genre = rec.data.relations.GetOrAdd("belongs_to_genre");
  rec.follows = rec.data.relations.GetOrAdd("follows");

  Rng rng(seed);
  std::vector<EntityId> users, items, genres;
  for (int u = 0; u < num_users; ++u)
    users.push_back(rec.data.entities.GetOrAdd(StrFormat("user_%04d", u)));
  for (int i = 0; i < num_items; ++i)
    items.push_back(rec.data.entities.GetOrAdd(StrFormat("item_%04d", i)));
  for (int g = 0; g < num_genres; ++g)
    genres.push_back(rec.data.entities.GetOrAdd(StrFormat("genre_%02d", g)));

  // Each item belongs to one genre; each user has two preferred genres.
  std::vector<int> item_genre(static_cast<size_t>(num_items));
  for (int i = 0; i < num_items; ++i) {
    item_genre[size_t(i)] = int(rng.NextBounded(uint64_t(num_genres)));
    rec.data.train.push_back(
        {items[size_t(i)], genres[size_t(item_genre[size_t(i)])],
         rec.belongs_to_genre});
  }
  std::vector<std::pair<int, int>> user_tastes(
      static_cast<size_t>(num_users));
  for (int u = 0; u < num_users; ++u) {
    user_tastes[size_t(u)] = {int(rng.NextBounded(uint64_t(num_genres))),
                              int(rng.NextBounded(uint64_t(num_genres)))};
  }
  // Users follow users with a shared taste (social structure).
  for (int u = 0; u < num_users; ++u) {
    for (int trial = 0; trial < 3; ++trial) {
      const int v = int(rng.NextBounded(uint64_t(num_users)));
      if (v == u) continue;
      if (user_tastes[size_t(u)].first == user_tastes[size_t(v)].first) {
        rec.data.train.push_back(
            {users[size_t(u)], users[size_t(v)], rec.follows});
      }
    }
  }
  // Likes: mostly within preferred genres; hold out ~20% for evaluation.
  for (int u = 0; u < num_users; ++u) {
    const auto [taste_a, taste_b] = user_tastes[size_t(u)];
    int likes = 0;
    for (int trial = 0; trial < num_items && likes < 12; ++trial) {
      const int i = int(rng.NextBounded(uint64_t(num_items)));
      const int genre = item_genre[size_t(i)];
      const bool preferred = genre == taste_a || genre == taste_b;
      if (!preferred && !rng.NextBool(0.05)) continue;
      const Triple triple{users[size_t(u)], items[size_t(i)], rec.like};
      ++likes;
      if (likes % 5 == 0) {
        rec.held_out_likes.push_back(triple);
      } else {
        rec.data.train.push_back(triple);
      }
    }
  }
  rec.data.test = rec.held_out_likes;
  return rec;
}

int Run(int argc, char** argv) {
  int64_t num_users = 300;
  int64_t num_items = 400;
  int64_t epochs = 150;
  FlagParser parser("recommender: KG-embedding recommendations (paper §1)");
  parser.AddInt("users", &num_users, "number of users");
  parser.AddInt("items", &num_items, "number of items");
  parser.AddInt("epochs", &epochs, "training epochs");
  const Status status = parser.Parse(argc, argv);
  if (status.code() == StatusCode::kNotFound) return 0;
  KGE_CHECK_OK(status);

  RecommenderData rec =
      BuildData(int(num_users), int(num_items), /*num_genres=*/8, 13);
  std::printf("recommender KG: %s\n", rec.data.StatsString().c_str());

  auto model = MakeCph(rec.data.num_entities(), rec.data.num_relations(),
                       /*dim=*/32, /*seed=*/5);
  TrainerOptions options;
  options.max_epochs = int(epochs);
  options.batch_size = 512;
  options.learning_rate = 0.02;
  Trainer trainer(model.get(), options);
  KGE_CHECK_OK(trainer.Train(rec.data.train, nullptr).status());

  // Recall@20 over held-out likes: does the liked item appear in the
  // user's top-20 recommendations (excluding items already liked)?
  FilterIndex filter;
  filter.Build(rec.data.train, rec.data.valid, rec.data.test);
  Evaluator evaluator(&filter, rec.data.num_relations());
  EvalOptions eval_options;
  const RankingMetrics metrics =
      evaluator.EvaluateOverall(*model, rec.held_out_likes, eval_options);
  std::printf("held-out like prediction: %s\n", metrics.ToString().c_str());

  // Show recommendations for one user.
  const EntityId user = rec.data.entities.Find("user_0000");
  std::vector<float> scores(size_t(rec.data.num_entities()));
  model->ScoreAllTails(user, rec.like, scores);
  // Exclude non-items and already-liked items.
  std::vector<std::pair<float, EntityId>> ranked;
  const auto known = filter.KnownTails(user, rec.like);
  for (EntityId e = 0; e < rec.data.num_entities(); ++e) {
    const std::string& name = rec.data.entities.NameOf(e);
    if (name.rfind("item_", 0) != 0) continue;
    if (std::binary_search(known.begin(), known.end(), e)) continue;
    ranked.push_back({scores[size_t(e)], e});
  }
  std::partial_sort(ranked.begin(),
                    ranked.begin() +
                        std::ptrdiff_t(std::min<size_t>(5, ranked.size())),
                    ranked.end(), std::greater<>());
  std::printf("\ntop-5 new recommendations for user_0000:\n");
  for (size_t k = 0; k < 5 && k < ranked.size(); ++k) {
    std::printf("  %zu. %-12s score %.3f\n", k + 1,
                rec.data.entities.NameOf(ranked[k].second).c_str(),
                ranked[k].first);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
