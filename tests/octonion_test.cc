#include "math/octonion.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/interaction.h"
#include "models/octonion_model.h"
#include "util/random.h"

namespace kge {
namespace {

Octonion RandomOctonion(Rng* rng) {
  std::array<double, 8> c;
  for (double& x : c) x = rng->NextUniform(-2, 2);
  return Octonion::FromComponents(c);
}

void ExpectNear(const Octonion& x, const Octonion& y, double tol) {
  const auto cx = x.Components();
  const auto cy = y.Components();
  for (int i = 0; i < 8; ++i) EXPECT_NEAR(cx[size_t(i)], cy[size_t(i)], tol);
}

TEST(OctonionTest, ComponentsRoundTrip) {
  const std::array<double, 8> c = {1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_EQ(Octonion::FromComponents(c).Components(), c);
}

TEST(OctonionTest, IdentityElement) {
  Rng rng(1);
  const Octonion one = Octonion::FromComponents({1, 0, 0, 0, 0, 0, 0, 0});
  const Octonion x = RandomOctonion(&rng);
  ExpectNear(one * x, x, 1e-12);
  ExpectNear(x * one, x, 1e-12);
}

TEST(OctonionTest, ImaginaryUnitsSquareToMinusOne) {
  const Octonion minus_one =
      Octonion::FromComponents({-1, 0, 0, 0, 0, 0, 0, 0});
  for (int i = 1; i < 8; ++i) {
    std::array<double, 8> c{};
    c[size_t(i)] = 1.0;
    const Octonion e = Octonion::FromComponents(c);
    ExpectNear(e * e, minus_one, 1e-12);
  }
}

TEST(OctonionTest, EmbedsQuaternions) {
  // Octonions with zero second quaternion multiply like quaternions.
  Rng rng(2);
  const Quaternion qa(rng.NextUniform(-1, 1), rng.NextUniform(-1, 1),
                      rng.NextUniform(-1, 1), rng.NextUniform(-1, 1));
  const Quaternion qb(rng.NextUniform(-1, 1), rng.NextUniform(-1, 1),
                      rng.NextUniform(-1, 1), rng.NextUniform(-1, 1));
  const Octonion oa(qa, Quaternion());
  const Octonion ob(qb, Quaternion());
  const Quaternion expected = qa * qb;
  const Octonion product = oa * ob;
  EXPECT_NEAR(product.a.a, expected.a, 1e-12);
  EXPECT_NEAR(product.a.b, expected.b, 1e-12);
  EXPECT_NEAR(product.a.c, expected.c, 1e-12);
  EXPECT_NEAR(product.a.d, expected.d, 1e-12);
  EXPECT_NEAR(product.b.Norm(), 0.0, 1e-12);
}

TEST(OctonionTest, NormIsMultiplicative) {
  // Octonions are a composition algebra: |xy| = |x||y| despite
  // non-associativity.
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const Octonion x = RandomOctonion(&rng);
    const Octonion y = RandomOctonion(&rng);
    EXPECT_NEAR((x * y).Norm(), x.Norm() * y.Norm(), 1e-9);
  }
}

TEST(OctonionTest, ConjugateReversesProducts) {
  Rng rng(4);
  const Octonion x = RandomOctonion(&rng);
  const Octonion y = RandomOctonion(&rng);
  ExpectNear((x * y).Conjugate(), y.Conjugate() * x.Conjugate(), 1e-9);
}

TEST(OctonionTest, SelfConjugateProductIsNormSquared) {
  Rng rng(5);
  const Octonion x = RandomOctonion(&rng);
  const Octonion self = x * x.Conjugate();
  EXPECT_NEAR(self.real(), x.NormSquared(), 1e-9);
  EXPECT_NEAR(self.Norm(), x.NormSquared(), 1e-9);  // imaginary parts 0
}

TEST(OctonionTest, IsAlternativeButNotAssociative) {
  Rng rng(6);
  const Octonion x = RandomOctonion(&rng);
  const Octonion y = RandomOctonion(&rng);
  const Octonion z = RandomOctonion(&rng);
  // Alternative: x(xy) = (xx)y.
  ExpectNear(x * (x * y), (x * x) * y, 1e-9);
  ExpectNear((y * x) * x, y * (x * x), 1e-9);
  // Non-associative in general: (xy)z != x(yz).
  const Octonion left = (x * y) * z;
  const Octonion right = x * (y * z);
  double diff = 0.0;
  for (int i = 0; i < 8; ++i) {
    diff += std::fabs(left.Components()[size_t(i)] -
                      right.Components()[size_t(i)]);
  }
  EXPECT_GT(diff, 1e-6);
}

TEST(OctonionModelTest, DerivedTableHas64SignedUnitTerms) {
  const WeightTable table =
      DeriveOctonionWeightTable(OctonionAssociation::kLeft);
  EXPECT_EQ(table.ne(), 8);
  EXPECT_EQ(table.nr(), 8);
  EXPECT_EQ(table.terms().size(), 64u);
  for (const WeightTable::Term& term : table.terms()) {
    EXPECT_TRUE(term.weight == 1.0f || term.weight == -1.0f);
  }
}

TEST(OctonionModelTest, AssociationsCoincideInTheRealPart) {
  // Octonions are non-associative, but the associator is purely
  // imaginary, so Re((xy)z) == Re(x(yz)): both associations derive the
  // SAME weight table — the score function is well defined without
  // choosing an association.
  const WeightTable left =
      DeriveOctonionWeightTable(OctonionAssociation::kLeft);
  const WeightTable right =
      DeriveOctonionWeightTable(OctonionAssociation::kRight);
  for (int32_t m = 0; m < left.size(); ++m) {
    EXPECT_EQ(left.Flat()[size_t(m)], right.Flat()[size_t(m)]) << m;
  }
}

TEST(OctonionTest, RealPartOfTripleProductIsAssociationIndependent) {
  // The algebra-level fact behind the previous test, on random elements.
  Rng rng(8);
  for (int trial = 0; trial < 20; ++trial) {
    const Octonion x = RandomOctonion(&rng);
    const Octonion y = RandomOctonion(&rng);
    const Octonion z = RandomOctonion(&rng);
    EXPECT_NEAR(((x * y) * z).real(), (x * (y * z)).real(), 1e-9);
  }
}

TEST(OctonionModelTest, TableScoreMatchesDirectOctonionAlgebra) {
  const WeightTable table =
      DeriveOctonionWeightTable(OctonionAssociation::kLeft);
  Rng rng(7);
  const int32_t dim = 4;
  std::vector<float> h(8 * dim), t(8 * dim), r(8 * dim);
  for (auto* v : {&h, &t, &r}) {
    for (float& x : *v) x = rng.NextUniform(-1, 1);
  }
  double direct = 0.0;
  for (int32_t d = 0; d < dim; ++d) {
    std::array<double, 8> hc, tc, rc;
    for (int i = 0; i < 8; ++i) {
      hc[size_t(i)] = h[size_t(i * dim + d)];
      tc[size_t(i)] = t[size_t(i * dim + d)];
      rc[size_t(i)] = r[size_t(i * dim + d)];
    }
    const Octonion product = (Octonion::FromComponents(hc) *
                              Octonion::FromComponents(tc).Conjugate()) *
                             Octonion::FromComponents(rc);
    direct += product.real();
  }
  EXPECT_NEAR(ScoreTriple(table, dim, h, t, r), direct, 1e-5);
}

TEST(OctonionModelTest, QuaternionTableIsTheUpperCorner) {
  // Restricting the octonion table to the first four components must
  // reproduce the quaternion table (O contains H).
  const WeightTable octonion =
      DeriveOctonionWeightTable(OctonionAssociation::kLeft);
  const WeightTable quaternion = WeightTable::Quaternion();
  for (int32_t i = 0; i < 4; ++i) {
    for (int32_t j = 0; j < 4; ++j) {
      for (int32_t k = 0; k < 4; ++k) {
        EXPECT_EQ(octonion.At(i, j, k), quaternion.At(i, j, k))
            << i << "," << j << "," << k;
      }
    }
  }
}

TEST(OctonionModelTest, ModelConstructsAndRanksConsistently) {
  auto model = MakeOctonionModel(15, 3, 4, 9);
  EXPECT_EQ(model->name(), "Octonion");
  std::vector<float> scores(15);
  model->ScoreAllTails(2, 1, scores);
  for (EntityId t = 0; t < 15; ++t) {
    EXPECT_NEAR(scores[size_t(t)], model->Score({2, t, 1}), 1e-4);
  }
}

}  // namespace
}  // namespace kge
