#include "train/one_vs_all.h"

#include <gtest/gtest.h>

#include <cmath>

#include "datagen/pattern_kg_generator.h"
#include "eval/evaluator.h"
#include "kg/augmentation.h"
#include "math/activations.h"
#include "math/vec_ops.h"
#include "core/interaction.h"

namespace kge {
namespace {

constexpr int32_t kEntities = 40;
constexpr int32_t kRelations = 2;

std::vector<Triple> TinyTrain(uint64_t seed = 3) {
  PatternKgOptions options;
  options.num_entities = kEntities;
  options.seed = seed;
  options.relations = {{RelationPattern::kInversePair, 80, ""}};
  return GeneratePatternKg(options, nullptr);
}

// Reference loss: full BCE over all entities for every distinct (h, r)
// query, computed directly from model scores.
double ReferenceLoss(MultiEmbeddingModel* model,
                     const std::vector<Triple>& train, double smoothing) {
  std::map<std::pair<EntityId, RelationId>, std::set<EntityId>> queries;
  for (const Triple& t : train) queries[{t.head, t.relation}].insert(t.tail);
  double loss = 0.0;
  const double negative_label = smoothing / double(kEntities);
  const double positive_label = 1.0 - smoothing + negative_label;
  for (const auto& [query, tails] : queries) {
    for (EntityId e = 0; e < kEntities; ++e) {
      const double s = model->Score({query.first, e, query.second});
      const double y = tails.contains(e) ? positive_label : negative_label;
      loss += Softplus(s) - y * s;
    }
  }
  return loss / double(queries.size());
}

TEST(OneVsAllTest, FirstEpochLossMatchesReferenceBeforeTraining) {
  // With learning rate 0 the reported epoch loss equals the reference
  // loss of the initial parameters.
  const auto train = TinyTrain();
  auto model = MakeComplEx(kEntities, kRelations, 8, 5);
  const double reference = ReferenceLoss(model.get(), train, 0.0);

  OneVsAllOptions options;
  options.learning_rate = 0.0;
  options.max_epochs = 1;
  OneVsAllTrainer trainer(model.get(), options);
  const Result<TrainResult> result = trainer.Train(train, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->final_mean_loss, reference, 1e-3);
}

TEST(OneVsAllTest, LossDecreasesOverTraining) {
  const auto train = TinyTrain();
  auto model = MakeComplEx(kEntities, kRelations, 8, 5);
  OneVsAllOptions options;
  options.max_epochs = 150;
  options.learning_rate = 0.02;
  OneVsAllTrainer trainer(model.get(), options);
  const Result<TrainResult> result = trainer.Train(train, nullptr);
  ASSERT_TRUE(result.ok());
  ASSERT_GE(result->loss_history.size(), 2u);
  EXPECT_LT(result->loss_history.back(), 0.1 * result->loss_history.front());
}

TEST(OneVsAllTest, GradientsMatchFiniteDifferencesThroughFullLoss) {
  const std::vector<Triple> train = {{0, 1, 0}, {0, 2, 0}, {3, 0, 1}};
  auto model = MakeComplEx(kEntities, kRelations, 4, 7);

  // One epoch with lr so tiny the parameters barely move lets us probe
  // ProcessQuery indirectly; instead we check the analytic gradient by
  // re-deriving it: run with SGD lr=1 on a single batch and compare the
  // parameter delta against the finite-difference gradient of the
  // reference loss (times the number of queries, since the loss is
  // summed per query within the batch).
  OneVsAllOptions options;
  options.optimizer = "sgd";
  options.learning_rate = 1.0;
  options.max_epochs = 1;
  options.batch_queries = 100;  // single batch

  // Snapshot initial parameters.
  std::vector<float> before(model->entity_store().block()->Flat().begin(),
                            model->entity_store().block()->Flat().end());
  auto fresh = MakeComplEx(kEntities, kRelations, 4, 7);  // same init

  OneVsAllTrainer trainer(model.get(), options);
  ASSERT_TRUE(trainer.Train(train, nullptr).ok());
  const auto after = model->entity_store().block()->Flat();

  // delta = -gradient (SGD lr 1, one step). Check a few coordinates of
  // entity 0 (participates as head and tail).
  const double eps = 1e-3;
  const int32_t row_dim = 2 * 4;
  for (int64_t d = 0; d < row_dim; ++d) {
    auto params = fresh->entity_store().block()->Row(0);
    const float saved = params[size_t(d)];
    params[size_t(d)] = saved + float(eps);
    // Reference loss is mean-per-query; the trainer accumulates the sum
    // over the batch's queries. 2 distinct (h, r) queries here:
    // (0, r0) -> {1, 2} and (3, r1) -> {0}.
    const double plus = ReferenceLoss(fresh.get(), train, 0.0) * 2.0;
    params[size_t(d)] = saved - float(eps);
    const double minus = ReferenceLoss(fresh.get(), train, 0.0) * 2.0;
    params[size_t(d)] = saved;
    const double numeric = (plus - minus) / (2 * eps);
    const double delta = double(before[size_t(d)]) - double(after[size_t(d)]);
    EXPECT_NEAR(delta, numeric, 5e-3) << "coord " << d;
  }
}

TEST(OneVsAllTest, LabelSmoothingChangesLoss) {
  const auto train = TinyTrain();
  auto model = MakeComplEx(kEntities, kRelations, 8, 5);
  OneVsAllOptions plain;
  plain.learning_rate = 0.0;
  plain.max_epochs = 1;
  OneVsAllTrainer plain_trainer(model.get(), plain);
  const double plain_loss =
      plain_trainer.Train(train, nullptr)->final_mean_loss;

  OneVsAllOptions smoothed = plain;
  smoothed.label_smoothing = 0.1;
  OneVsAllTrainer smoothed_trainer(model.get(), smoothed);
  const double smoothed_loss =
      smoothed_trainer.Train(train, nullptr)->final_mean_loss;
  EXPECT_NE(plain_loss, smoothed_loss);
  EXPECT_NEAR(smoothed_loss, ReferenceLoss(model.get(), train, 0.1), 1e-3);
}

TEST(OneVsAllTest, ReachesGoodRankingOnInversePatternData) {
  // With inverse augmentation (covering head queries), 1-N training
  // should solve the inverse-pair task like negative sampling does.
  const auto base = TinyTrain(11);
  const AugmentedTriples augmented = AugmentWithInverses(base, kRelations);
  auto model = MakeComplEx(kEntities, augmented.num_relations, 16, 5);
  OneVsAllOptions options;
  options.max_epochs = 120;
  options.learning_rate = 0.02;
  OneVsAllTrainer trainer(model.get(), options);
  ASSERT_TRUE(trainer.Train(augmented.triples, nullptr).ok());

  // Positives should outrank random corruptions.
  Rng rng(1);
  double margin = 0.0;
  for (const Triple& t : base) {
    Triple corrupted = t;
    corrupted.tail = EntityId(rng.NextBounded(kEntities));
    margin += model->Score(t) - model->Score(corrupted);
  }
  EXPECT_GT(margin / double(base.size()), 1.0);
}

TEST(OneVsAllTest, EmptyTrainingSetIsError) {
  auto model = MakeComplEx(kEntities, kRelations, 4, 1);
  OneVsAllOptions options;
  OneVsAllTrainer trainer(model.get(), options);
  EXPECT_FALSE(trainer.Train({}, nullptr).ok());
}

TEST(OneVsAllTest, EarlyStoppingWorks) {
  const auto train = TinyTrain();
  auto model = MakeComplEx(kEntities, kRelations, 8, 5);
  OneVsAllOptions options;
  options.max_epochs = 500;
  options.eval_every_epochs = 5;
  options.patience_epochs = 10;
  OneVsAllTrainer trainer(model.get(), options);
  const Result<TrainResult> result =
      trainer.Train(train, [](int) { return 0.7; });
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->stopped_early);
  EXPECT_LE(result->epochs_run, 20);
}

}  // namespace
}  // namespace kge
