#include "math/complex_ops.h"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <vector>

#include "util/random.h"

namespace kge {
namespace {

struct ComplexVectors {
  std::vector<float> re, im;
  ComplexVectorView View() const { return {re, im}; }
};

ComplexVectors RandomComplexVector(size_t dim, Rng* rng) {
  ComplexVectors v;
  v.re.resize(dim);
  v.im.resize(dim);
  for (size_t d = 0; d < dim; ++d) {
    v.re[d] = rng->NextUniform(-1, 1);
    v.im[d] = rng->NextUniform(-1, 1);
  }
  return v;
}

TEST(ComplexScoreTest, MatchesStdComplexReference) {
  Rng rng(11);
  const size_t dim = 16;
  const auto h = RandomComplexVector(dim, &rng);
  const auto t = RandomComplexVector(dim, &rng);
  const auto r = RandomComplexVector(dim, &rng);

  std::complex<double> sum = 0.0;
  for (size_t d = 0; d < dim; ++d) {
    const std::complex<double> hd(h.re[d], h.im[d]);
    const std::complex<double> td(t.re[d], t.im[d]);
    const std::complex<double> rd(r.re[d], r.im[d]);
    sum += hd * std::conj(td) * rd;
  }
  EXPECT_NEAR(ComplexScore(h.View(), t.View(), r.View()), sum.real(), 1e-9);
}

TEST(ComplexScoreTest, NoConjugateMatchesStdComplexReference) {
  Rng rng(12);
  const size_t dim = 16;
  const auto h = RandomComplexVector(dim, &rng);
  const auto t = RandomComplexVector(dim, &rng);
  const auto r = RandomComplexVector(dim, &rng);

  std::complex<double> sum = 0.0;
  for (size_t d = 0; d < dim; ++d) {
    sum += std::complex<double>(h.re[d], h.im[d]) *
           std::complex<double>(t.re[d], t.im[d]) *
           std::complex<double>(r.re[d], r.im[d]);
  }
  EXPECT_NEAR(ComplexScoreNoConjugate(h.View(), t.View(), r.View()),
              sum.real(), 1e-9);
}

TEST(ComplexScoreTest, ConjugateEnablesAsymmetry) {
  // With the conjugate, swapping h and t changes the score (unless the
  // relation is purely real); without it the score is fully symmetric.
  Rng rng(13);
  const int dim = 8;
  const auto h = RandomComplexVector(dim, &rng);
  const auto t = RandomComplexVector(dim, &rng);
  const auto r = RandomComplexVector(dim, &rng);

  const double forward = ComplexScore(h.View(), t.View(), r.View());
  const double backward = ComplexScore(t.View(), h.View(), r.View());
  EXPECT_GT(std::fabs(forward - backward), 1e-6);

  const double sym_forward =
      ComplexScoreNoConjugate(h.View(), t.View(), r.View());
  const double sym_backward =
      ComplexScoreNoConjugate(t.View(), h.View(), r.View());
  EXPECT_NEAR(sym_forward, sym_backward, 1e-9);
}

TEST(ComplexScoreTest, RealRelationMakesScoreSymmetric) {
  // When Im(r) = 0, ComplEx degenerates to DistMult-like symmetry.
  Rng rng(14);
  const int dim = 8;
  const auto h = RandomComplexVector(dim, &rng);
  const auto t = RandomComplexVector(dim, &rng);
  auto r = RandomComplexVector(dim, &rng);
  std::fill(r.im.begin(), r.im.end(), 0.0f);

  EXPECT_NEAR(ComplexScore(h.View(), t.View(), r.View()),
              ComplexScore(t.View(), h.View(), r.View()), 1e-9);
}

TEST(ComplexScoreTest, PurelyImaginaryRelationMakesScoreAntisymmetric) {
  // When Re(r) = 0 the score is exactly antisymmetric in (h, t).
  Rng rng(15);
  const int dim = 8;
  const auto h = RandomComplexVector(dim, &rng);
  const auto t = RandomComplexVector(dim, &rng);
  auto r = RandomComplexVector(dim, &rng);
  std::fill(r.re.begin(), r.re.end(), 0.0f);

  EXPECT_NEAR(ComplexScore(h.View(), t.View(), r.View()),
              -ComplexScore(t.View(), h.View(), r.View()), 1e-9);
}

TEST(ComplexScoreTest, ZeroVectorsGiveZeroScore) {
  ComplexVectors zero;
  zero.re.assign(4, 0.0f);
  zero.im.assign(4, 0.0f);
  EXPECT_EQ(ComplexScore(zero.View(), zero.View(), zero.View()), 0.0);
}

}  // namespace
}  // namespace kge
