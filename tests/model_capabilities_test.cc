// Capability-matrix tests: each model family's THEORETICAL ability (or
// inability) to represent relation patterns, checked empirically by
// fitting tiny single-pattern knowledge graphs to convergence and
// measuring the train fit. These pin down the capacity arguments the
// paper's analysis rests on:
//   * DistMult: symmetric only (its score is symmetric in h, t — §2.2.3).
//   * ComplEx / CPh / Quaternion: both symmetric and antisymmetric.
//   * CP: can FIT anything (fully expressive on train, §6.1.1) — its
//     failure is generalization, which integration_test covers.
//   * TransE: cannot fit symmetric pairs with distinct entities well
//     (forces r ≈ 0 and h ≈ t).
#include <gtest/gtest.h>

#include <memory>

#include "datagen/pattern_kg_generator.h"
#include "eval/evaluator.h"
#include "models/model_factory.h"
#include "util/check.h"
#include "train/trainer.h"

namespace kge {
namespace {

constexpr int32_t kEntities = 30;

// Generates a single-pattern KG and returns train triples.
std::vector<Triple> PatternTriples(RelationPattern pattern, int pairs,
                                   uint64_t seed) {
  PatternKgOptions options;
  options.num_entities = kEntities;
  options.seed = seed;
  options.relations = {{pattern, pairs, ""}};
  return GeneratePatternKg(options, nullptr);
}

int32_t RelationsOf(RelationPattern pattern) {
  return (pattern == RelationPattern::kInversePair ||
          pattern == RelationPattern::kComposition)
             ? 2
             : 1;
}

// Trains `model_name` on the pattern KG and returns the train-set
// filtered MRR — a measure of how well the model can FIT the pattern.
double TrainFit(const std::string& model_name, RelationPattern pattern,
                uint64_t seed) {
  const auto train = PatternTriples(pattern, 60, seed);
  const int32_t num_relations = RelationsOf(pattern);
  Result<std::unique_ptr<KgeModel>> model =
      MakeModelByName(model_name, kEntities, num_relations, 32, seed + 1);
  KGE_CHECK_OK(model.status());

  TrainerOptions options;
  options.max_epochs = 150;
  options.batch_size = 256;
  options.learning_rate = 0.05;
  options.eval_every_epochs = 1000;
  options.seed = seed + 2;
  // Distance models need their native loss to express "fits exactly".
  if (model_name.rfind("transe", 0) == 0 || model_name == "transh" ||
      model_name == "rotate") {
    options.loss = LossKind::kMarginRanking;
  }
  Trainer trainer(model->get(), options);
  KGE_CHECK_OK(trainer.Train(train, nullptr).status());

  FilterIndex filter;
  filter.Build(train, {}, {});
  Evaluator evaluator(&filter, num_relations);
  EvalOptions eval_options;
  return evaluator.EvaluateOverall(**model, train, eval_options).Mrr();
}

TEST(CapabilityTest, DistMultFitsSymmetricPatterns) {
  EXPECT_GT(TrainFit("distmult", RelationPattern::kSymmetric, 1), 0.9);
}

TEST(CapabilityTest, DistMultCannotFitAntisymmetricPatterns) {
  // DistMult scores (h,t,r) and (t,h,r) identically, so for every
  // antisymmetric edge the (absent) reverse ties it — the tie-averaged
  // filtered rank cannot reach 1 for both directions of evaluation.
  const double fit = TrainFit("distmult", RelationPattern::kAntisymmetric, 2);
  EXPECT_LT(fit, 0.85);
}

TEST(CapabilityTest, ComplExFitsBothSymmetricAndAntisymmetric) {
  EXPECT_GT(TrainFit("complex", RelationPattern::kSymmetric, 3), 0.9);
  EXPECT_GT(TrainFit("complex", RelationPattern::kAntisymmetric, 4), 0.9);
}

TEST(CapabilityTest, CphFitsBothSymmetricAndAntisymmetric) {
  EXPECT_GT(TrainFit("cph", RelationPattern::kSymmetric, 5), 0.9);
  EXPECT_GT(TrainFit("cph", RelationPattern::kAntisymmetric, 6), 0.9);
}

TEST(CapabilityTest, QuaternionFitsBothSymmetricAndAntisymmetric) {
  EXPECT_GT(TrainFit("quaternion", RelationPattern::kSymmetric, 7), 0.9);
  EXPECT_GT(TrainFit("quaternion", RelationPattern::kAntisymmetric, 8),
            0.9);
}

TEST(CapabilityTest, CpFitsAntisymmetricTrainData) {
  // §6.1.1: CP's capacity is fine — it memorizes training data.
  EXPECT_GT(TrainFit("cp", RelationPattern::kAntisymmetric, 9), 0.9);
}

TEST(CapabilityTest, ComplExFitsInversePairs) {
  EXPECT_GT(TrainFit("complex", RelationPattern::kInversePair, 10), 0.9);
}

TEST(CapabilityTest, TransEStrugglesWithSymmetricPatterns) {
  // ||h + r − t|| = ||t + r − h|| = 0 forces r = 0 and h = t; with
  // distinct entities under the unit-norm constraint the fit stays
  // measurably below the trilinear models'.
  const double transe = TrainFit("transe-l2", RelationPattern::kSymmetric, 11);
  const double complex_fit =
      TrainFit("complex", RelationPattern::kSymmetric, 11);
  EXPECT_LT(transe, complex_fit - 0.05);
}

TEST(CapabilityTest, RotatEFitsSymmetricViaHalfTurns) {
  // RotatE repairs TransE's symmetric deficiency: θ = π is a half-turn.
  const double rotate = TrainFit("rotate", RelationPattern::kSymmetric, 12);
  EXPECT_GT(rotate, 0.85);
}

}  // namespace
}  // namespace kge
