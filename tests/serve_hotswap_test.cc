// Hot-swap consistency: a storm of concurrent queries racing an
// RCU-style snapshot swap must each be answered entirely from exactly
// one snapshot — the results always match the snapshot_version the
// reply reports, and no reply mixes old and new embeddings. Run under
// TSan in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "eval/topk.h"
#include "models/model_factory.h"
#include "serve/micro_batcher.h"
#include "serve/snapshot.h"
#include "util/thread_annotations.h"

namespace kge {
namespace {

constexpr int32_t kEntities = 32;
constexpr int32_t kRelations = 2;
constexpr int32_t kBudget = 16;
constexpr int kTopK = 5;
constexpr int kClientThreads = 4;
constexpr int kQueriesPerClient = 50;

std::shared_ptr<ModelSnapshot> MakeSnapshot(uint64_t seed) {
  auto model = MakeModelByName("distmult", kEntities, kRelations, kBudget,
                               seed);
  EXPECT_TRUE(model.ok());
  (*model)->PrepareForScoring(ScorePrecision::kDouble);
  auto snapshot = std::make_shared<ModelSnapshot>();
  snapshot->model = std::move(*model);
  return snapshot;
}

struct Waiter {
  Mutex mutex;
  CondVar cv;
  bool done KGE_GUARDED_BY(mutex) = false;
  ServeStatusCode status KGE_GUARDED_BY(mutex) = ServeStatusCode::kError;
  uint64_t snapshot_version KGE_GUARDED_BY(mutex) = 0;
  std::vector<ScoredEntity> results KGE_GUARDED_BY(mutex);

  static void OnReply(void* ctx, const ServeReply& reply) {
    auto* waiter = static_cast<Waiter*>(ctx);
    MutexLock lock(waiter->mutex);
    waiter->status = reply.status;
    waiter->snapshot_version = reply.snapshot_version;
    waiter->results.assign(reply.results.begin(), reply.results.end());
    waiter->done = true;
    waiter->cv.NotifyAll();
  }

  void Await() {
    MutexLock lock(mutex);
    while (!done) cv.Wait(mutex);
  }
};

TEST(ServeHotSwapTest, StormAcrossSwapSeesExactlyOneSnapshotPerReply) {
  auto snapshot_a = MakeSnapshot(111);
  auto snapshot_b = MakeSnapshot(222);

  // Expected top-k per (entity, relation) for each snapshot, computed
  // offline before any concurrency starts.
  TopKOptions topk_options;
  topk_options.k = kTopK;
  std::vector<std::vector<ScoredEntity>> expected_a;
  std::vector<std::vector<ScoredEntity>> expected_b;
  for (EntityId entity = 0; entity < kEntities; ++entity) {
    expected_a.push_back(
        PredictTails(*snapshot_a->model, entity, 0, topk_options));
    expected_b.push_back(
        PredictTails(*snapshot_b->model, entity, 0, topk_options));
  }

  SnapshotRegistry registry;
  registry.Publish(snapshot_a);  // version 1

  BatcherOptions options;
  options.max_queue = 512;
  options.num_workers = 2;
  options.default_deadline_ms = kServeMaxDeadlineMs;
  MicroBatcher batcher(&registry, options);
  batcher.Start();

  std::atomic<int> mismatches{0};
  std::atomic<int> ok_replies{0};
  std::atomic<uint64_t> versions_seen{0};  // bitmask of versions

  std::vector<std::thread> clients;
  for (int c = 0; c < kClientThreads; ++c) {
    clients.emplace_back([&, c] {
      for (int q = 0; q < kQueriesPerClient; ++q) {
        ServeRequest request;
        request.side = QuerySide::kTail;
        request.entity = EntityId((c * kQueriesPerClient + q) % kEntities);
        request.relation = 0;
        request.k = kTopK;
        Waiter waiter;
        batcher.Submit(request, &Waiter::OnReply, &waiter);
        waiter.Await();
        MutexLock lock(waiter.mutex);
        if (waiter.status != ServeStatusCode::kOk) {
          mismatches.fetch_add(1);
          continue;
        }
        ok_replies.fetch_add(1);
        versions_seen.fetch_or(1ull << waiter.snapshot_version);
        const std::vector<ScoredEntity>& expected =
            waiter.snapshot_version == 1
                ? expected_a[size_t(request.entity)]
                : expected_b[size_t(request.entity)];
        bool matches = waiter.results.size() == expected.size() &&
                       (waiter.snapshot_version == 1 ||
                        waiter.snapshot_version == 2);
        if (matches) {
          for (size_t i = 0; i < expected.size(); ++i) {
            if (waiter.results[i].entity != expected[i].entity ||
                waiter.results[i].score != expected[i].score) {
              matches = false;
              break;
            }
          }
        }
        if (!matches) mismatches.fetch_add(1);
      }
    });
  }

  // Swap mid-storm.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  registry.Publish(snapshot_b);  // version 2

  for (auto& client : clients) client.join();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(ok_replies.load(), kClientThreads * kQueriesPerClient);
  // Only real snapshot versions may ever appear in a reply.
  EXPECT_EQ(versions_seen.load() & ~uint64_t(0b110), 0u);

  // A query issued after the swap must be answered by the new snapshot.
  ServeRequest request;
  request.entity = 1;
  request.relation = 0;
  request.k = kTopK;
  Waiter post_swap;
  batcher.Submit(request, &Waiter::OnReply, &post_swap);
  post_swap.Await();
  {
    MutexLock lock(post_swap.mutex);
    ASSERT_EQ(post_swap.status, ServeStatusCode::kOk);
    EXPECT_EQ(post_swap.snapshot_version, 2u);
    ASSERT_EQ(post_swap.results.size(), expected_b[1].size());
    for (size_t i = 0; i < expected_b[1].size(); ++i) {
      EXPECT_EQ(post_swap.results[i].entity, expected_b[1][i].entity);
      EXPECT_EQ(post_swap.results[i].score, expected_b[1][i].score);
    }
  }
  batcher.Stop();
}

// The registry's RCU property in isolation: a reader that acquired the
// old snapshot can keep scoring on it after the swap; its data is
// untouched until the reference drops.
TEST(ServeHotSwapTest, InFlightReaderSurvivesSwap) {
  SnapshotRegistry registry;
  registry.Publish(MakeSnapshot(7));
  const auto held = registry.Acquire();
  const std::vector<ScoredEntity> before =
      PredictTails(*held->model, 3, 0, TopKOptions{});

  registry.Publish(MakeSnapshot(8));
  const std::vector<ScoredEntity> after =
      PredictTails(*held->model, 3, 0, TopKOptions{});
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i].entity, after[i].entity);
    EXPECT_EQ(before[i].score, after[i].score);
  }
  EXPECT_EQ(registry.Acquire()->version, 2u);
}

}  // namespace
}  // namespace kge
