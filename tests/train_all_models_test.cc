// Parameterized smoke sweep: EVERY registered model must train through
// the full Trainer stack (gradients, optimizer, constraints) with a
// finite decreasing loss and a working ranking path. This pins down the
// KgeModel contract across the whole zoo.
#include <gtest/gtest.h>

#include <cmath>

#include "datagen/pattern_kg_generator.h"
#include "eval/evaluator.h"
#include "models/model_factory.h"
#include "train/trainer.h"

namespace kge {
namespace {

constexpr int32_t kEntities = 60;
constexpr int32_t kRelations = 3;

class TrainAllModelsTest : public testing::TestWithParam<std::string> {
 protected:
  static void SetUpTestSuite() {
    PatternKgOptions options;
    options.num_entities = kEntities;
    options.seed = 5;
    options.relations = {{RelationPattern::kInversePair, 80, ""},
                         {RelationPattern::kSymmetric, 40, ""}};
    train_ = new std::vector<Triple>(GeneratePatternKg(options, nullptr));
  }
  static void TearDownTestSuite() {
    delete train_;
    train_ = nullptr;
  }
  static std::vector<Triple>* train_;
};

std::vector<Triple>* TrainAllModelsTest::train_ = nullptr;

TEST_P(TrainAllModelsTest, TrainsWithFiniteDecreasingLoss) {
  Result<std::unique_ptr<KgeModel>> model =
      MakeModelByName(GetParam(), kEntities, kRelations, 16, 3);
  ASSERT_TRUE(model.ok()) << model.status().ToString();

  TrainerOptions options;
  options.batch_size = 128;
  options.learning_rate = 0.02;
  Trainer trainer(model->get(), options);
  NegativeSamplerOptions sampler_options;
  NegativeSampler sampler(kEntities, kRelations, *train_, sampler_options);
  Rng rng(9);
  const double first = trainer.RunEpoch(*train_, sampler, &rng);
  ASSERT_TRUE(std::isfinite(first));
  double last = first;
  for (int epoch = 0; epoch < 25; ++epoch) {
    last = trainer.RunEpoch(*train_, sampler, &rng);
    ASSERT_TRUE(std::isfinite(last)) << "epoch " << epoch;
  }
  EXPECT_LT(last, first) << GetParam();
}

TEST_P(TrainAllModelsTest, RankingPathIsConsistentAfterTraining) {
  Result<std::unique_ptr<KgeModel>> model =
      MakeModelByName(GetParam(), kEntities, kRelations, 16, 3);
  ASSERT_TRUE(model.ok());
  TrainerOptions options;
  options.max_epochs = 5;
  options.batch_size = 128;
  Trainer trainer(model->get(), options);
  ASSERT_TRUE(trainer.Train(*train_, nullptr).ok());

  std::vector<float> scores(kEntities);
  (*model)->ScoreAllTails(1, 0, scores);
  for (EntityId t = 0; t < kEntities; t += 11) {
    EXPECT_NEAR(scores[size_t(t)], (*model)->Score({1, t, 0}), 1e-3)
        << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, TrainAllModelsTest,
    testing::Values("distmult", "complex", "cp", "cph", "simple",
                    "quaternion", "octonion", "uniform", "transe-l1", "transe-l2",
                    "transh", "rotate", "rescal", "er-mlp", "ntn", "conve", "autoweight",
                    "autoweight-softmax", "autoweight-sparse"));

}  // namespace
}  // namespace kge
