#include "models/rotate.h"

#include <gtest/gtest.h>

#include <cmath>

#include "math/vec_ops.h"

namespace kge {
namespace {

constexpr int32_t kEntities = 14;
constexpr int32_t kRelations = 4;
constexpr int32_t kDim = 6;
constexpr uint64_t kSeed = 81;

TEST(RotatETest, ShapeAndBlocks) {
  auto model = MakeRotatE(kEntities, kRelations, kDim, kSeed);
  EXPECT_EQ(model->name(), "RotatE");
  EXPECT_EQ(model->dim(), kDim);
  EXPECT_EQ(model->NumParameters(),
            kEntities * 2 * kDim + kRelations * kDim);
}

TEST(RotatETest, ScoresAreNonPositive) {
  auto model = MakeRotatE(kEntities, kRelations, kDim, kSeed);
  for (EntityId h = 0; h < 5; ++h) EXPECT_LE(model->Score({h, 9, 1}), 0.0);
}

TEST(RotatETest, ZeroRotationReducesToTransEWithZeroTranslation) {
  // θ = 0: score = −||h − t||²; identical entities score 0.
  auto model = MakeRotatE(kEntities, kRelations, kDim, kSeed);
  auto theta = model->Blocks()[RotatE::kPhaseBlock]->Row(0);
  std::fill(theta.begin(), theta.end(), 0.0f);
  auto h = model->Blocks()[RotatE::kEntityBlock]->Row(0);
  auto t = model->Blocks()[RotatE::kEntityBlock]->Row(1);
  std::copy(h.begin(), h.end(), t.begin());
  EXPECT_NEAR(model->Score({0, 1, 0}), 0.0, 1e-9);
}

TEST(RotatETest, HalfTurnRotationModelsSymmetry) {
  // θ = π in every coordinate: rotating twice is the identity, so the
  // relation is exactly symmetric: S(h, t) == S(t, h).
  auto model = MakeRotatE(kEntities, kRelations, kDim, kSeed);
  auto theta = model->Blocks()[RotatE::kPhaseBlock]->Row(2);
  std::fill(theta.begin(), theta.end(), float(M_PI));
  EXPECT_NEAR(model->Score({3, 7, 2}), model->Score({7, 3, 2}), 1e-4);
}

TEST(RotatETest, GenericRotationIsAsymmetric) {
  auto model = MakeRotatE(kEntities, kRelations, kDim, kSeed);
  EXPECT_GT(std::fabs(model->Score({3, 7, 1}) - model->Score({7, 3, 1})),
            1e-6);
}

TEST(RotatETest, InverseRelationIsNegatedPhases) {
  // If r' has phases −θ then S(h, t, r) == S(t, h, r') exactly.
  auto model = MakeRotatE(kEntities, kRelations, kDim, kSeed);
  auto theta = model->Blocks()[RotatE::kPhaseBlock]->Row(0);
  auto theta_inv = model->Blocks()[RotatE::kPhaseBlock]->Row(1);
  for (size_t i = 0; i < theta.size(); ++i) theta_inv[i] = -theta[i];
  EXPECT_NEAR(model->Score({2, 5, 0}), model->Score({5, 2, 1}), 1e-4);
}

TEST(RotatETest, CompositionOfRotationsIsPhaseAddition) {
  // r3 = r1 ∘ r2 (θ3 = θ1 + θ2): rotating h by r1 then r2 equals
  // rotating by r3 — verified through scores against a fixed tail.
  auto model = MakeRotatE(kEntities, kRelations, kDim, kSeed);
  auto t1 = model->Blocks()[RotatE::kPhaseBlock]->Row(0);
  auto t2 = model->Blocks()[RotatE::kPhaseBlock]->Row(1);
  auto t3 = model->Blocks()[RotatE::kPhaseBlock]->Row(2);
  for (size_t i = 0; i < t1.size(); ++i) t3[i] = t1[i] + t2[i];
  // Build an intermediate entity m = h rotated by r1; then
  // S(m, t, r2) == S(h, t, r3) for every t.
  const auto h = model->Blocks()[RotatE::kEntityBlock]->Row(4);
  auto m = model->Blocks()[RotatE::kEntityBlock]->Row(5);
  for (int32_t i = 0; i < kDim; ++i) {
    const float c = std::cos(t1[size_t(i)]);
    const float s = std::sin(t1[size_t(i)]);
    m[size_t(i)] = h[size_t(i)] * c - h[size_t(kDim + i)] * s;
    m[size_t(kDim + i)] = h[size_t(i)] * s + h[size_t(kDim + i)] * c;
  }
  for (EntityId t = 0; t < 4; ++t) {
    EXPECT_NEAR(model->Score({5, t, 1}), model->Score({4, t, 2}), 1e-4);
  }
}

TEST(RotatETest, ScoreAllTailsAgreesWithScore) {
  auto model = MakeRotatE(kEntities, kRelations, kDim, kSeed);
  std::vector<float> scores(kEntities);
  model->ScoreAllTails(2, 1, scores);
  for (EntityId t = 0; t < kEntities; ++t) {
    EXPECT_NEAR(scores[size_t(t)], model->Score({2, t, 1}), 1e-4);
  }
}

TEST(RotatETest, ScoreAllHeadsAgreesWithScore) {
  auto model = MakeRotatE(kEntities, kRelations, kDim, kSeed);
  std::vector<float> scores(kEntities);
  model->ScoreAllHeads(6, 3, scores);
  for (EntityId h = 0; h < kEntities; ++h) {
    EXPECT_NEAR(scores[size_t(h)], model->Score({h, 6, 3}), 1e-4);
  }
}

TEST(RotatETest, GradientsMatchFiniteDifferences) {
  auto model = MakeRotatE(kEntities, kRelations, kDim, kSeed);
  GradientBuffer grads(model->Blocks());
  const Triple triple{1, 8, 2};
  const float dscore = 1.2f;
  model->AccumulateGradients(triple, dscore, &grads);

  struct Case {
    size_t block;
    int64_t row;
  };
  for (const Case& c : {Case{RotatE::kEntityBlock, 1},
                        Case{RotatE::kEntityBlock, 8},
                        Case{RotatE::kPhaseBlock, 2}}) {
    const auto grad = grads.GradFor(c.block, c.row);
    auto params = model->Blocks()[c.block]->Row(c.row);
    const double eps = 1e-3;
    for (size_t i = 0; i < params.size(); ++i) {
      const float saved = params[i];
      params[i] = saved + float(eps);
      const double plus = model->Score(triple);
      params[i] = saved - float(eps);
      const double minus = model->Score(triple);
      params[i] = saved;
      EXPECT_NEAR(grad[i], dscore * (plus - minus) / (2 * eps), 2e-2)
          << "block " << c.block << " coord " << i;
    }
  }
}

TEST(RotatETest, SelfLoopGradientAccumulatesBothRoles) {
  auto model = MakeRotatE(kEntities, kRelations, kDim, kSeed);
  GradientBuffer grads(model->Blocks());
  const Triple triple{3, 3, 0};
  model->AccumulateGradients(triple, 1.0f, &grads);
  const auto grad = grads.GradFor(RotatE::kEntityBlock, 3);
  auto params = model->Blocks()[RotatE::kEntityBlock]->Row(3);
  const double eps = 1e-3;
  for (size_t i = 0; i < params.size(); i += 2) {
    const float saved = params[i];
    params[i] = saved + float(eps);
    const double plus = model->Score(triple);
    params[i] = saved - float(eps);
    const double minus = model->Score(triple);
    params[i] = saved;
    EXPECT_NEAR(grad[i], (plus - minus) / (2 * eps), 2e-2);
  }
}

}  // namespace
}  // namespace kge
